// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md's experiment index), plus the design-choice
// ablations. Experiment-level benchmarks run a scaled-down version of the
// full experiment per iteration and report the paper's metrics via
// b.ReportMetric; the cmd/ tools regenerate the full-size tables and
// figures.
package jouleguard_test

import (
	"strings"
	"testing"

	"jouleguard"
	"jouleguard/internal/experiments"
	"jouleguard/internal/metrics"
)

// benchScale keeps experiment benchmarks affordable under `go test -bench`.
const benchScale = 0.15

// BenchmarkFig1Motivation reruns the Sec. 2 swish++ experiment and reports
// each approach's energy gap and accuracy.
func BenchmarkFig1Motivation(b *testing.B) {
	goal, err := experiments.Fig1Goal()
	if err != nil {
		b.Fatal(err)
	}
	var rows []experiments.Fig1Row
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig1(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Approach {
		case "JouleGuard":
			b.ReportMetric(metrics.RelativeError(r.EnergyPerIter, goal), "jg-rel-err-%")
			b.ReportMetric(r.ResultsPct, "jg-results-%")
		case "Uncoordinated":
			b.ReportMetric(r.OscillationScore, "uncoord-oscillation")
		case "System-only":
			b.ReportMetric(metrics.RelativeError(r.EnergyPerIter, goal), "sys-rel-err-%")
		}
	}
}

// BenchmarkFig3Characterize sweeps the full efficiency landscapes.
func BenchmarkFig3Characterize(b *testing.B) {
	var curves []experiments.Fig3Curve
	var err error
	for i := 0; i < b.N; i++ {
		curves, err = experiments.Fig3([]string{"bodytrack", "ferret"})
		if err != nil {
			b.Fatal(err)
		}
	}
	var configs int
	for _, c := range curves {
		configs += len(c.Efficiency)
	}
	b.ReportMetric(float64(configs)/float64(len(curves)+1), "configs/curve")
}

// BenchmarkFig4Convergence runs the bodytrack convergence traces and
// reports the worst relative error across platforms.
func BenchmarkFig4Convergence(b *testing.B) {
	var traces []experiments.Fig4Trace
	var err error
	for i := 0; i < b.N; i++ {
		traces, err = experiments.Fig4(130)
		if err != nil {
			b.Fatal(err)
		}
	}
	var worst float64
	for _, tr := range traces {
		if tr.RelativeErr > worst {
			worst = tr.RelativeErr
		}
	}
	b.ReportMetric(worst, "worst-rel-err-%")
}

// BenchmarkFig5RelativeError runs a reduced sweep and reports the mean
// relative error across all feasible cells (the Fig. 5 headline).
func BenchmarkFig5RelativeError(b *testing.B) {
	var cells []experiments.SweepCell
	var err error
	factors := []float64{1.5, 2.0, 3.0}
	for i := 0; i < b.N; i++ {
		cells, err = experiments.Sweep(factors, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	var errs []float64
	for _, c := range cells {
		errs = append(errs, c.RelativeError)
	}
	s := metrics.Summarize(errs)
	b.ReportMetric(s.Mean, "mean-rel-err-%")
	b.ReportMetric(s.P90, "p90-rel-err-%")
	b.ReportMetric(float64(len(cells)), "feasible-cells")
}

// BenchmarkFig6EffectiveAccuracy reports the sweep's accuracy metric.
func BenchmarkFig6EffectiveAccuracy(b *testing.B) {
	var cells []experiments.SweepCell
	var err error
	factors := []float64{1.5, 2.0, 3.0}
	for i := 0; i < b.N; i++ {
		cells, err = experiments.Sweep(factors, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	var accs []float64
	for _, c := range cells {
		accs = append(accs, c.EffectiveAccuracy)
	}
	s := metrics.Summarize(accs)
	b.ReportMetric(s.Mean, "mean-eff-acc")
	b.ReportMetric(s.Min, "min-eff-acc")
}

// BenchmarkFig7Comparison reports how often JouleGuard beats the
// application-only approach at equal goals.
func BenchmarkFig7Comparison(b *testing.B) {
	var results []experiments.Fig7Result
	var err error
	for i := 0; i < b.N; i++ {
		results, err = experiments.Fig7(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	var wins, total, gapSum float64
	for _, r := range results {
		for _, p := range r.Points {
			total++
			gapSum += p.JouleGuard - p.AppOnly
			if p.JouleGuard >= p.AppOnly-1e-9 {
				wins++
			}
		}
	}
	b.ReportMetric(wins/total*100, "jg-wins-%")
	b.ReportMetric(gapSum/total, "mean-acc-gap")
}

// BenchmarkFig8Phases reports the accuracy uplift JouleGuard extracts from
// the easy middle scene.
func BenchmarkFig8Phases(b *testing.B) {
	var traces []experiments.Fig8Trace
	var err error
	for i := 0; i < b.N; i++ {
		traces, err = experiments.Fig8(80, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	var uplift float64
	for _, tr := range traces {
		uplift += tr.PhaseAccuracy[1] - (tr.PhaseAccuracy[0]+tr.PhaseAccuracy[2])/2
	}
	b.ReportMetric(uplift/float64(len(traces)), "easy-scene-acc-uplift")
}

// BenchmarkTable2Profile times the PowerDial/LoopPerforation calibration of
// all eight benchmarks.
func BenchmarkTable2Profile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Overhead* are the paper's Table 4: runtime decision
// latency per iteration managing x264, per platform configuration space.
func benchOverhead(b *testing.B, platName string) {
	tb, err := jouleguard.NewTestbed("x264", platName)
	if err != nil {
		b.Fatal(err)
	}
	gov, err := tb.NewJouleGuard(2.0, b.N+1, jouleguard.Options{})
	if err != nil {
		b.Fatal(err)
	}
	dur := 1 / tb.DefaultRate
	var energy float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		energy += tb.DefaultPower * dur
		experiments.ForceDecisionProbe(gov, i, dur, tb.DefaultPower, energy)
	}
}

func BenchmarkTable4OverheadMobile(b *testing.B) { benchOverhead(b, "Mobile") }
func BenchmarkTable4OverheadTablet(b *testing.B) { benchOverhead(b, "Tablet") }
func BenchmarkTable4OverheadServer(b *testing.B) { benchOverhead(b, "Server") }

// Ablation benchmarks (the design choices DESIGN.md calls out).

// metricUnit sanitises a human label into a ReportMetric unit (no
// whitespace allowed).
func metricUnit(label, suffix string) string {
	r := strings.NewReplacer(" ", "-", "(", "", ")", "")
	return r.Replace(label) + "|" + suffix
}

func reportAblation(b *testing.B, res []experiments.AblationResult, err error) {
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range res {
		b.ReportMetric(r.RelativeError, metricUnit(r.Variant, "rel-err-%"))
	}
}

// BenchmarkAblationPole compares the adaptive pole with fixed poles.
func BenchmarkAblationPole(b *testing.B) {
	var res []experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AblationPole("bodytrack", "Tablet", 2.0, benchScale)
	}
	reportAblation(b, res, err)
}

// BenchmarkAblationPriors compares linear/cubic priors with flat priors.
func BenchmarkAblationPriors(b *testing.B) {
	var res []experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AblationPriors("bodytrack", "Server", 2.0, benchScale)
	}
	reportAblation(b, res, err)
}

// BenchmarkAblationExploration compares VDBE with epsilon-greedy and UCB1.
func BenchmarkAblationExploration(b *testing.B) {
	var res []experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AblationExploration("bodytrack", "Server", 2.0, benchScale)
	}
	reportAblation(b, res, err)
}

// BenchmarkAblationEstimator compares EWMA with Kalman estimation.
func BenchmarkAblationEstimator(b *testing.B) {
	var res []experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AblationEstimator("bodytrack", "Server", 2.0, benchScale)
	}
	reportAblation(b, res, err)
}

// BenchmarkAblationAlpha sweeps the EWMA gain.
func BenchmarkAblationAlpha(b *testing.B) {
	var res []experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AblationAlpha("bodytrack", "Tablet", 2.0, benchScale)
	}
	reportAblation(b, res, err)
}

// BenchmarkRobustness runs the load-variation extension (steady vs diurnal
// vs bursty traces) and reports the worst relative error.
func BenchmarkRobustness(b *testing.B) {
	var cells []experiments.RobustnessCell
	var err error
	for i := 0; i < b.N; i++ {
		cells, err = experiments.Robustness(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	var worst float64
	for _, c := range cells {
		if c.RelativeError > worst {
			worst = c.RelativeError
		}
	}
	b.ReportMetric(worst, "worst-rel-err-%")
}

// BenchmarkDisturbance reports the budget error with and without a mid-run
// co-located load (the Sec. 3.2 external-variation robustness claim).
func BenchmarkDisturbance(b *testing.B) {
	var res []experiments.DisturbanceResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Disturbance("x264", "Server", 2.5, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		b.ReportMetric(r.RelativeError, metricUnit(r.Label, "rel-err-%"))
	}
}

// Micro-benchmarks of the moving parts.

// BenchmarkKernelStep measures one default-configuration iteration of each
// application kernel.
func BenchmarkKernelStep(b *testing.B) {
	for _, name := range jouleguard.Benchmarks() {
		app, err := jouleguard.Benchmark(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				app.Step(app.DefaultConfig(), i%64)
			}
		})
	}
}

// BenchmarkFrontierLookup measures the Eqn 6 binary search.
func BenchmarkFrontierLookup(b *testing.B) {
	tb, err := jouleguard.NewTestbed("x264", "Server")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Frontier.ForSpeedup(1 + float64(i%100)/33)
	}
}
