# Convenience targets for the JouleGuard reproduction.

GO ?= go

.PHONY: all build vet lint check test test-race race bench replicate examples chaos-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Lint: gofmt must leave no file unformatted, and vet must be clean.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

# The pre-merge gate: formatting + vet + the race-detector pass.
check: lint race

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Race-detector pass over the packages that share state across the
# experiment worker pool: the pool itself, the drivers, and the caches.
race:
	$(GO) test -race ./internal/par/ ./internal/experiments/ ./internal/platform/ .

# One scaled-down benchmark pass over every table/figure + ablations,
# leaving a machine-readable timing snapshot in BENCH_experiments.json.
bench:
	$(GO) test -run xxx -bench . -benchmem ./... | $(GO) run ./cmd/benchjson > BENCH_experiments.json

# Full-size regeneration of the paper's evaluation into results/.
replicate:
	$(GO) run ./cmd/replicate

# Scaled-down fault-injection sweep: 3 benchmarks under every default
# chaos scenario, asserting the energy guarantee holds throughout.
chaos-smoke:
	$(GO) run ./cmd/chaos -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/batterylife
	$(GO) run ./examples/serversearch
	$(GO) run ./examples/customapp
	$(GO) run ./examples/approxhw
	$(GO) run ./examples/realmachine

clean:
	rm -rf results
