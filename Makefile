# Convenience targets for the JouleGuard reproduction.

GO ?= go

# The smoke targets pipe loadgen through benchjson; without pipefail a
# failed -check exit would be masked by the pipe's last command.
SHELL := /usr/bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: all build vet lint check test test-race race bench replicate examples chaos-smoke serve-smoke cluster-smoke chaos-cluster clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Lint: gofmt must leave no file unformatted, and vet must be clean.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

# The pre-merge gate: formatting + vet + the race-detector pass + the
# daemon and fleet smoke tests + the coordinator-failover chaos run.
check: lint race serve-smoke cluster-smoke chaos-cluster

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Race-detector pass over the packages that share state across the
# experiment worker pool: the pool itself, the drivers, and the caches —
# plus the daemon, which shares sessions and the budget broker across
# request handlers.
race:
	$(GO) test -race ./internal/par/ ./internal/experiments/ ./internal/platform/ ./internal/server/ ./internal/client/ ./internal/cluster/ ./internal/load/ .

# Daemon smoke test under the race detector: selfhost the daemon, drive
# 8 concurrent tenants for 200 iterations each, restart the daemon
# mid-run from a snapshot, and assert every tenant lands within 105% of
# its grant. Latency quantiles are folded into BENCH_experiments.json.
serve-smoke:
	$(GO) run -race ./cmd/loadgen -tenants 8 -iters 200 -restart-at 800 -check 1.05 \
		| $(GO) run ./cmd/benchjson -merge BENCH_experiments.json > BENCH_experiments.json.tmp
	@mv BENCH_experiments.json.tmp BENCH_experiments.json
	@echo "serve-smoke passed; latency snapshot in BENCH_experiments.json"

# Fleet smoke test under the race detector: run an in-process coordinator
# plus 3 member daemons, drive 12 tenants through coordinator placement,
# kill the busiest node once 360 iterations completed fleet-wide, and
# assert every tenant still lands within 105% of its grant after
# failover. Decision-latency and failover-time quantiles are merged into
# BENCH_experiments.json alongside the single-daemon numbers.
cluster-smoke:
	$(GO) run -race ./cmd/loadgen -cluster -nodes 3 -tenants 12 -iters 60 \
		-apps radar -platform Tablet -kill-at 360 -check 1.05 \
		| $(GO) run ./cmd/benchjson -merge BENCH_experiments.json > BENCH_experiments.json.tmp
	@mv BENCH_experiments.json.tmp BENCH_experiments.json
	@echo "cluster-smoke passed; failover quantiles merged into BENCH_experiments.json"

# Control-plane chaos under the race detector: the same fleet, but the
# coordinator itself is killed after 240 iterations and a WAL-tailing
# standby promotes (bumping the fencing epoch); a node kill at 480 then
# forces clients through coordinator rotation on the new primary. Every
# tenant must still land within 105% of its grant, and the failover
# quantiles are merged into BENCH_experiments.json.
chaos-cluster:
	$(GO) run -race ./cmd/loadgen -cluster -nodes 3 -tenants 12 -iters 60 \
		-apps radar -platform Tablet -kill-coordinator-at 240 -kill-at 480 -check 1.05 \
		| $(GO) run ./cmd/benchjson -merge BENCH_experiments.json > BENCH_experiments.json.tmp
	@mv BENCH_experiments.json.tmp BENCH_experiments.json
	@echo "chaos-cluster passed; coordinator-failover quantiles merged into BENCH_experiments.json"

# One scaled-down benchmark pass over every table/figure + ablations,
# leaving a machine-readable timing snapshot in BENCH_experiments.json.
bench:
	$(GO) test -run xxx -bench . -benchmem ./... | $(GO) run ./cmd/benchjson > BENCH_experiments.json

# Full-size regeneration of the paper's evaluation into results/.
replicate:
	$(GO) run ./cmd/replicate

# Scaled-down fault-injection sweep: 3 benchmarks under every default
# chaos scenario, asserting the energy guarantee holds throughout.
chaos-smoke:
	$(GO) run ./cmd/chaos -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/batterylife
	$(GO) run ./examples/serversearch
	$(GO) run ./examples/customapp
	$(GO) run ./examples/approxhw
	$(GO) run ./examples/realmachine

clean:
	rm -rf results
