# Convenience targets for the JouleGuard reproduction.

GO ?= go

# The smoke targets pipe loadgen through benchjson; without pipefail a
# failed -check exit would be masked by the pipe's last command.
SHELL := /usr/bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: all build vet lint check test test-race race churn-race bench bench-check bench-profile replicate examples chaos-smoke serve-smoke cluster-smoke chaos-cluster hotpath-smoke obs-smoke meter-smoke qos-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Lint: gofmt must leave no file unformatted, and vet must be clean.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

# The pre-merge gate: formatting + vet + the race-detector pass + the
# full-size shard-churn race test + the daemon, fleet and hot-path smoke
# tests + the coordinator-failover chaos run.
check: lint race churn-race serve-smoke cluster-smoke hotpath-smoke chaos-cluster obs-smoke meter-smoke qos-smoke

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Race-detector pass over the packages that share state across the
# experiment worker pool: the pool itself, the drivers, and the caches —
# plus the daemon, which shares sessions and the budget broker across
# request handlers.
race:
	$(GO) test -race ./internal/par/ ./internal/experiments/ ./internal/platform/ ./internal/server/ ./internal/client/ ./internal/cluster/ ./internal/load/ ./internal/measure/ ./internal/qos/ .

# The full-size (10k-session) shard-churn test under the race detector:
# the concurrent registry/broker workload the sharded session map exists
# for. `race` above already runs it at -short scale; this is the
# pre-merge full run.
churn-race:
	$(GO) test -race -run TestShardChurnRace ./internal/server/

# Daemon smoke test under the race detector: selfhost the daemon, drive
# 8 concurrent tenants for 200 iterations each, restart the daemon
# mid-run from a snapshot, and assert every tenant lands within 105% of
# its grant. Latency quantiles are folded into BENCH_experiments.json.
serve-smoke:
	$(GO) run -race ./cmd/loadgen -tenants 8 -iters 200 -restart-at 800 -check 1.05 \
		| $(GO) run ./cmd/benchjson -merge BENCH_experiments.json > BENCH_experiments.json.tmp
	@mv BENCH_experiments.json.tmp BENCH_experiments.json
	@echo "serve-smoke passed; latency snapshot in BENCH_experiments.json"

# Fleet smoke test under the race detector: run an in-process coordinator
# plus 3 member daemons, drive 12 tenants through coordinator placement,
# kill the busiest node once 360 iterations completed fleet-wide, and
# assert every tenant still lands within 105% of its grant after
# failover. Decision-latency and failover-time quantiles are merged into
# BENCH_experiments.json alongside the single-daemon numbers.
cluster-smoke:
	$(GO) run -race ./cmd/loadgen -cluster -nodes 3 -tenants 12 -iters 60 \
		-apps radar -platform Tablet -kill-at 360 -check 1.05 \
		| $(GO) run ./cmd/benchjson -merge BENCH_experiments.json > BENCH_experiments.json.tmp
	@mv BENCH_experiments.json.tmp BENCH_experiments.json
	@echo "cluster-smoke passed; failover quantiles merged into BENCH_experiments.json"

# Control-plane chaos under the race detector: the same fleet, but the
# coordinator itself is killed after 240 iterations and a WAL-tailing
# standby promotes (bumping the fencing epoch); a node kill at 480 then
# forces clients through coordinator rotation on the new primary. Every
# tenant must still land within 105% of its grant, and the failover
# quantiles are merged into BENCH_experiments.json.
chaos-cluster:
	$(GO) run -race ./cmd/loadgen -cluster -nodes 3 -tenants 12 -iters 60 \
		-apps radar -platform Tablet -kill-coordinator-at 240 -kill-at 480 -check 1.05 \
		| $(GO) run ./cmd/benchjson -merge BENCH_experiments.json > BENCH_experiments.json.tmp
	@mv BENCH_experiments.json.tmp BENCH_experiments.json
	@echo "chaos-cluster passed; coordinator-failover quantiles merged into BENCH_experiments.json"

# Observability smoke under the race detector: a traced 3-node fleet
# (v2 frames, every 8th round sampled) with a provenance auditor
# polling both halves of the custody chain while the primary
# coordinator is killed mid-run and a standby promotes. Asserts one
# distributed trace joins client -> daemon -> broker -> coordinator
# across the per-node /traces windows, and that every provenance layer
# sampled — including through the failover — conserves joules to
# within 1e-6.
obs-smoke:
	$(GO) run -race ./cmd/loadgen -cluster -nodes 3 -tenants 8 -iters 60 \
		-apps radar -platform Tablet -v2 -trace-every 8 -obs-check \
		-kill-coordinator-at 240 -check 1.05 > /dev/null
	@echo "obs-smoke passed: cross-node trace join + provenance conservation through coordinator failover"

# Measurement smoke under the race detector: selfhost the daemon with
# the calibrated simulated meter as the billed energy source (client
# readings become physical stimulus) and seeded counter faults injected
# into it. Asserts every tenant lands within 105% of its grant on
# meter-attributed joules alone, and that the plausibility gate rejected
# the injected faults without billing a corrupted sample. Calibration
# and gate tallies are merged into BENCH_experiments.json.
meter-smoke:
	$(GO) run -race ./cmd/loadgen -tenants 8 -iters 200 -meter sim -meter-faults -check 1.05 \
		| $(GO) run ./cmd/benchjson -merge BENCH_experiments.json > BENCH_experiments.json.tmp
	@mv BENCH_experiments.json.tmp BENCH_experiments.json
	@echo "meter-smoke passed; calibration + gate tallies merged into BENCH_experiments.json"

# Tenant-protection smoke under the race detector: selfhost the daemon
# with the QoS ladder enabled and one adversarial tenant claiming ten
# honest tenants' worth of the pool under the best-effort tier. Asserts
# the adversary drew enforcement denials (including at least one shed —
# best-effort is sacrificed first, the guaranteed honest tenants never)
# while every honest tenant landed within 105% of its grant with its
# accuracy floor untouched. Enforcement tallies merge into
# BENCH_experiments.json.
qos-smoke:
	$(GO) run -race ./cmd/loadgen -tenants 6 -adversaries 1 -tier guaranteed -iters 300 \
		-qos-shed-at 0.5 -check 1.05 -expect-shed \
		| $(GO) run ./cmd/benchjson -merge BENCH_experiments.json > BENCH_experiments.json.tmp
	@mv BENCH_experiments.json.tmp BENCH_experiments.json
	@echo "qos-smoke passed; enforcement tallies merged into BENCH_experiments.json"

# Hot-path smoke: the v2 binary frame stream end to end. A closed-loop
# pass pins correctness-under-batching (every tenant within 105% of its
# grant over DoneNext frames), then an open-loop pass measures sustained
# decisions/s and the in-process pass isolates the governor itself; all
# three land in BENCH_experiments.json.
hotpath-smoke:
	$(GO) run -race ./cmd/loadgen -tenants 8 -iters 200 -v2 -check 1.05 \
		| $(GO) run ./cmd/benchjson -merge BENCH_experiments.json > BENCH_experiments.json.tmp
	@mv BENCH_experiments.json.tmp BENCH_experiments.json
	$(GO) run ./cmd/loadgen -tenants 8 -v2 -open-loop 3s \
		| $(GO) run ./cmd/benchjson -merge BENCH_experiments.json > BENCH_experiments.json.tmp
	@mv BENCH_experiments.json.tmp BENCH_experiments.json
	$(GO) run ./cmd/loadgen -inproc -tenants 8 -open-loop 3s \
		| $(GO) run ./cmd/benchjson -merge BENCH_experiments.json > BENCH_experiments.json.tmp
	@mv BENCH_experiments.json.tmp BENCH_experiments.json
	@echo "hotpath-smoke passed; v2 wire + in-process numbers merged into BENCH_experiments.json"

# One scaled-down benchmark pass over every table/figure + ablations,
# leaving a machine-readable timing snapshot in BENCH_experiments.json.
bench:
	$(GO) test -run xxx -bench . -benchmem ./... | $(GO) run ./cmd/benchjson > BENCH_experiments.json

# Perf regression gate: re-measure the pinned hot-path benchmarks and
# fail if any got >20% slower than the committed snapshot — or allocates
# where the snapshot says it must not (the wire codecs and the decision
# path are pinned at 0 allocs/op).
bench-check:
	$(GO) test -run xxx -bench 'BenchmarkFrame|BenchmarkInprocDecision|BenchmarkSessionLookup' \
		-benchmem ./internal/wire/ ./internal/server/ \
		| $(GO) run ./cmd/benchjson -compare BENCH_experiments.json \
			-pin 'Frame|InprocDecision|SessionLookup'

# CPU + allocation profiles of the decision path into results/profiles/,
# ready for `go tool pprof`.
bench-profile:
	@mkdir -p results/profiles
	$(GO) test -run xxx -bench BenchmarkInprocDecision -benchtime 200000x \
		-cpuprofile results/profiles/decision_cpu.prof \
		-memprofile results/profiles/decision_mem.prof ./internal/server/
	$(GO) run ./cmd/loadgen -tenants 8 -v2 -open-loop 3s \
		-cpuprofile results/profiles/wire_cpu.prof \
		-memprofile results/profiles/wire_mem.prof > /dev/null
	@echo "profiles in results/profiles/ (decision_*.prof, wire_*.prof)"

# Full-size regeneration of the paper's evaluation into results/.
replicate:
	$(GO) run ./cmd/replicate

# Scaled-down fault-injection sweep: 3 benchmarks under every default
# chaos scenario, asserting the energy guarantee holds throughout.
chaos-smoke:
	$(GO) run ./cmd/chaos -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/batterylife
	$(GO) run ./examples/serversearch
	$(GO) run ./examples/customapp
	$(GO) run ./examples/approxhw
	$(GO) run ./examples/realmachine

clean:
	rm -rf results
