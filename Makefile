# Convenience targets for the JouleGuard reproduction.

GO ?= go

.PHONY: all build vet test test-race race bench replicate examples chaos-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Race-detector pass over the packages that share state across the
# experiment worker pool: the pool itself, the drivers, and the caches.
race:
	$(GO) test -race ./internal/par/ ./internal/experiments/ ./internal/platform/ .

# One scaled-down benchmark pass over every table/figure + ablations,
# leaving a machine-readable timing snapshot in BENCH_experiments.json.
bench:
	$(GO) test -run xxx -bench . -benchmem ./... | $(GO) run ./cmd/benchjson > BENCH_experiments.json

# Full-size regeneration of the paper's evaluation into results/.
replicate:
	$(GO) run ./cmd/replicate

# Scaled-down fault-injection sweep: 3 benchmarks under every default
# chaos scenario, asserting the energy guarantee holds throughout.
chaos-smoke:
	$(GO) run ./cmd/chaos -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/batterylife
	$(GO) run ./examples/serversearch
	$(GO) run ./examples/customapp
	$(GO) run ./examples/approxhw
	$(GO) run ./examples/realmachine

clean:
	rm -rf results
