package jouleguard

import "testing"

// BenchmarkNewTestbedCacheHit measures the cost a sweep pays per testbed
// once the (app, platform) template exists: a map lookup and a shallow
// struct copy.
func BenchmarkNewTestbedCacheHit(b *testing.B) {
	if _, err := NewTestbed("x264", "Server"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewTestbed("x264", "Server"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewTestbedCacheMiss measures template construction with the
// testbed/oracle caches dropped each iteration (the application kernel and
// frontier caches in internal/apps stay warm — those are profiled once per
// process by design).
func BenchmarkNewTestbedCacheMiss(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resetExperimentCaches()
		if _, err := NewTestbed("x264", "Server"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewOracleCacheHit measures the memoized oracle path; the miss
// case re-profiles the frontier x 1024 Server configurations every call.
func BenchmarkNewOracleCacheHit(b *testing.B) {
	tb, err := NewTestbed("x264", "Server")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := tb.NewOracle(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.NewOracle(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNewTestbedCopiesTemplate(t *testing.T) {
	a, err := NewTestbed("radar", "Tablet")
	if err != nil {
		t.Fatal(err)
	}
	a.Seed = 999
	c, err := NewTestbed("radar", "Tablet")
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed == 999 {
		t.Fatal("Seed mutation leaked through the testbed cache")
	}
	if a == c {
		t.Fatal("NewTestbed returned the same instance twice; copies expected")
	}
	if a.Frontier != c.Frontier || a.Platform != c.Platform {
		t.Fatal("testbed copies should share the immutable frontier and platform")
	}
}

func TestNewOracleMemoised(t *testing.T) {
	a, err := NewTestbed("radar", "Tablet")
	if err != nil {
		t.Fatal(err)
	}
	o1, err := a.NewOracle()
	if err != nil {
		t.Fatal(err)
	}
	o2, err := a.NewOracle()
	if err != nil {
		t.Fatal(err)
	}
	if o1 != o2 {
		t.Fatal("NewOracle rebuilt the oracle for an unchanged testbed")
	}
}
