package jouleguard_test

import (
	"math"
	"testing"

	"jouleguard"
)

func TestBenchmarkRegistry(t *testing.T) {
	names := jouleguard.Benchmarks()
	if len(names) != 8 {
		t.Fatalf("benchmarks: %v", names)
	}
	for _, n := range names {
		a, err := jouleguard.Benchmark(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if a.Name() != n {
			t.Fatalf("name mismatch: %q vs %q", a.Name(), n)
		}
	}
	if _, err := jouleguard.Benchmark("nope"); err == nil {
		t.Fatal("want error for unknown benchmark")
	}
}

func TestPlatformRegistry(t *testing.T) {
	for _, n := range jouleguard.Platforms() {
		p, err := jouleguard.PlatformByName(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if p.NumConfigs() <= 0 {
			t.Fatalf("%s: empty config space", n)
		}
	}
	if _, err := jouleguard.PlatformByName("nope"); err == nil {
		t.Fatal("want error for unknown platform")
	}
}

func TestTable2Exposed(t *testing.T) {
	if len(jouleguard.Table2()) != 8 {
		t.Fatal("Table2 should list 8 benchmarks")
	}
}

func TestTestbedCharacterisation(t *testing.T) {
	tb, err := jouleguard.NewTestbed("radar", "Tablet")
	if err != nil {
		t.Fatal(err)
	}
	if tb.DefaultEnergy <= 0 || tb.DefaultRate <= 0 || tb.DefaultPower <= 0 {
		t.Fatalf("testbed characterisation: %+v", tb)
	}
	if math.Abs(tb.DefaultEnergy-tb.DefaultPower/tb.DefaultRate) > 1e-9 {
		t.Fatal("energy/rate/power identity violated")
	}
	if tb.Frontier.Len() == 0 {
		t.Fatal("empty frontier")
	}
}

func TestBudgetValidation(t *testing.T) {
	tb, err := jouleguard.NewTestbed("radar", "Tablet")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Budget(0, 10); err == nil {
		t.Error("want error for zero factor")
	}
	if _, err := tb.Budget(2, 0); err == nil {
		t.Error("want error for zero iterations")
	}
	b, err := tb.Budget(2, 100)
	if err != nil || math.Abs(b-50*tb.DefaultEnergy) > 1e-9 {
		t.Fatalf("Budget: %v, %v", b, err)
	}
}

// TestAbsoluteCalibration pins the simulator's absolute operating points to
// the paper's published numbers (Sec. 2): swish++ on Server processes
// ~3100 queries/s at ~280 W out of the box, and the best-efficiency
// configuration runs it near 1750 qps at ~125-150 W.
func TestAbsoluteCalibration(t *testing.T) {
	tb, err := jouleguard.NewTestbed("swish++", "Server")
	if err != nil {
		t.Fatal(err)
	}
	// One iteration is a batch of 8 queries.
	qps := tb.DefaultRate * 8
	if qps < 2000 || qps > 4500 {
		t.Errorf("swish++/Server default throughput %.0f qps, paper ~3100", qps)
	}
	if tb.DefaultPower < 260 || tb.DefaultPower > 295 {
		t.Errorf("swish++/Server default power %.1f W, paper ~280", tb.DefaultPower)
	}
	best, _ := tb.Platform.BestEfficiency(tb.Profile)
	bestPower := tb.Platform.Power(best, tb.Profile)
	if bestPower > 200 {
		t.Errorf("best-efficiency power %.1f W, paper ~125", bestPower)
	}
	bestQPS := tb.Platform.Rate(best, tb.Profile) / tb.WorkPerIter * 8
	if bestQPS < 1000 || bestQPS > 3000 {
		t.Errorf("best-efficiency throughput %.0f qps, paper ~1750", bestQPS)
	}
}

// TestEnergyGuaranteeEndToEnd is the headline test: across a spread of
// apps, platforms and goals, JouleGuard must land within a few percent of
// the energy goal (Sec. 5.3's claim).
func TestEnergyGuaranteeEndToEnd(t *testing.T) {
	cases := []struct {
		app, plat string
		factor    float64
		iters     int
	}{
		{"radar", "Tablet", 2.0, 500},
		{"bodytrack", "Mobile", 3.0, 500},
		{"streamcluster", "Mobile", 2.0, 500},
		{"swaptions", "Tablet", 2.5, 500},
	}
	for _, tc := range cases {
		tb, err := jouleguard.NewTestbed(tc.app, tc.plat)
		if err != nil {
			t.Fatal(err)
		}
		gov, err := tb.NewJouleGuard(tc.factor, tc.iters, jouleguard.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := tb.Run(gov, tc.iters)
		if err != nil {
			t.Fatal(err)
		}
		goal := tb.DefaultEnergy / tc.factor
		epi := rec.EnergyPerIterAvg()
		if epi > goal*1.06 {
			t.Errorf("%s/%s f=%v: energy %.4f J/iter exceeds goal %.4f by %.1f%%",
				tc.app, tc.plat, tc.factor, epi, goal, (epi-goal)/goal*100)
		}
	}
}

// TestAccuracyNearOracle: for an easy goal the runtime must deliver close
// to full accuracy (Sec. 5.4's claim, spot-checked).
func TestAccuracyNearOracle(t *testing.T) {
	tb, err := jouleguard.NewTestbed("x264", "Mobile")
	if err != nil {
		t.Fatal(err)
	}
	iters := 400
	gov, err := tb.NewJouleGuard(1.5, iters, jouleguard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tb.Run(gov, iters)
	if err != nil {
		t.Fatal(err)
	}
	orc, err := tb.NewOracle()
	if err != nil {
		t.Fatal(err)
	}
	pt, ok := orc.BestAccuracyForFactor(1.5)
	if !ok {
		t.Fatal("1.5x should be feasible for x264 on Mobile")
	}
	eff := rec.MeanAccuracy() / pt.AppPoint.Accuracy
	if eff < 0.9 {
		t.Fatalf("effective accuracy %.3f below 0.9", eff)
	}
}

// TestPhaseAdaptation: on the Fig. 8 input the middle (easy) scene must be
// encoded with higher accuracy than the flanking hard scenes.
func TestPhaseAdaptation(t *testing.T) {
	framesPer := 120
	app := jouleguard.PhasedX264(framesPer)
	plat, err := jouleguard.PlatformByName("Mobile")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := jouleguard.NewTestbedFrom(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	frames := 3 * framesPer
	gov, err := tb.NewJouleGuard(2.2, frames, jouleguard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tb.Run(gov, frames)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += rec.Accuracies[i]
		}
		return s / float64(hi-lo)
	}
	hard1 := mean(framesPer/2, framesPer) // skip the convergence transient
	easy := mean(framesPer+framesPer/4, 2*framesPer)
	if easy <= hard1 {
		t.Fatalf("easy scene accuracy %.4f not above hard scene %.4f", easy, hard1)
	}
}

// TestInfeasibleGoalSurfaces: an impossible budget must be reported.
func TestInfeasibleGoalSurfaces(t *testing.T) {
	tb, err := jouleguard.NewTestbed("ferret", "Tablet")
	if err != nil {
		t.Fatal(err)
	}
	iters := 300
	gov, err := tb.NewJouleGuard(5, iters, jouleguard.Options{}) // ferret max ~1.3x
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(gov, iters); err != nil {
		t.Fatal(err)
	}
	if !gov.Infeasible() {
		t.Fatal("impossible ferret goal not reported infeasible")
	}
}

// TestBaselineGovernorsRunnable exercises the three baselines through the
// public API.
func TestBaselineGovernorsRunnable(t *testing.T) {
	tb, err := jouleguard.NewTestbed("radar", "Tablet")
	if err != nil {
		t.Fatal(err)
	}
	iters := 200
	govs := map[string]func() (jouleguard.Governor, error){
		"system-only":   func() (jouleguard.Governor, error) { return tb.NewSystemOnly() },
		"app-only":      func() (jouleguard.Governor, error) { return tb.NewAppOnly(2, iters) },
		"uncoordinated": func() (jouleguard.Governor, error) { return tb.NewUncoordinated(2, iters) },
	}
	for name, mk := range govs {
		gov, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := tb.Run(gov, iters); err != nil {
			t.Fatalf("%s run: %v", name, err)
		}
	}
}

// TestRunDefaultMatchesCharacterisation: the out-of-the-box run's energy
// per iteration must agree with the testbed's analytic characterisation.
func TestRunDefaultMatchesCharacterisation(t *testing.T) {
	tb, err := jouleguard.NewTestbed("streamcluster", "Server")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tb.RunDefault(100)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(rec.EnergyPerIterAvg()-tb.DefaultEnergy) / tb.DefaultEnergy; rel > 0.1 {
		t.Fatalf("default run energy %.4f vs characterisation %.4f (%.1f%%)",
			rec.EnergyPerIterAvg(), tb.DefaultEnergy, rel*100)
	}
}
