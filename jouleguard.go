// Package jouleguard is a from-scratch reproduction of JouleGuard (Henry
// Hoffmann, SOSP 2015): a runtime control system that coordinates
// approximate applications with system resource usage to provide
// control-theoretic guarantees of energy consumption while maximising
// accuracy.
//
// The package exposes:
//
//   - The JouleGuard runtime itself (Testbed.NewJouleGuard): a
//     System Energy Optimizer (VDBE multi-armed bandit over system
//     configurations, paper Sec. 3.2) coupled to an Application Accuracy
//     Optimizer (adaptive-pole PI controller over the application's
//     accuracy/performance frontier, Sec. 3.3).
//   - The full simulated testbed the evaluation runs on: the paper's eight
//     approximate benchmarks as real miniature kernels, the three hardware
//     platforms, and their power instrumentation.
//   - The comparison governors (application-only, system-only,
//     uncoordinated) and the omniscient oracle.
//
// Quick start:
//
//	tb, _ := jouleguard.NewTestbed("x264", "Server")
//	gov, _ := tb.NewJouleGuard(2.0, 500, jouleguard.Options{}) // halve energy
//	rec, _ := tb.Run(gov, 500)
//	fmt.Println(rec.MeanAccuracy(), rec.EnergyPerIterAvg())
package jouleguard

import (
	"fmt"
	"sync"

	"jouleguard/internal/apps"
	"jouleguard/internal/baselines"
	"jouleguard/internal/core"
	"jouleguard/internal/faults"
	"jouleguard/internal/guard"
	"jouleguard/internal/hwapprox"
	"jouleguard/internal/knob"
	"jouleguard/internal/learning"
	"jouleguard/internal/linuxsys"
	"jouleguard/internal/oracle"
	"jouleguard/internal/par"
	"jouleguard/internal/platform"
	"jouleguard/internal/sensors"
	"jouleguard/internal/sim"
	"jouleguard/internal/telemetry"
	"jouleguard/internal/workload"
)

// Re-exported types: the stable public surface over the internal packages.
type (
	// App is an approximate application under JouleGuard's control.
	App = apps.App
	// Platform is a simulated hardware platform.
	Platform = platform.Platform
	// Governor decides configurations each iteration and observes feedback.
	Governor = sim.Governor
	// Feedback is the per-iteration measurement a Governor observes.
	Feedback = sim.Feedback
	// Record captures one experiment run.
	Record = sim.Record
	// Runtime is the JouleGuard runtime (Algorithm 1).
	Runtime = core.Runtime
	// Options tunes the runtime; the zero value is the paper's behaviour.
	Options = core.Options
	// Frontier is a profiled application Pareto frontier.
	Frontier = knob.Frontier
	// FrontierPoint is one (config, speedup, accuracy) triple.
	FrontierPoint = knob.Point
	// Oracle answers optimal-accuracy queries.
	Oracle = oracle.Oracle
	// Trace describes a phased workload.
	Trace = workload.Trace
	// AppSpec is one row of the paper's Table 2.
	AppSpec = apps.Spec
	// SelectorKind names an SEO exploration policy.
	SelectorKind = core.SelectorKind
	// AppHardwareProfile characterises how an application exercises
	// hardware (parallel fraction, memory-boundness, hyperthreading gain);
	// register one with RegisterProfile before building a testbed for a
	// custom application.
	AppHardwareProfile = platform.AppProfile
	// FaultInjector bundles sensor, clock and actuator fault models for
	// one run (see RunFaulty and the internal/faults models).
	FaultInjector = faults.Injector
	// FaultScenario is one named, reproducible fault configuration from
	// the chaos suite.
	FaultScenario = faults.Scenario
	// SensorGuard is the hardened sensing layer: median/MAD outlier
	// rejection, stuck-sensor detection and model-based fallback over a
	// raw power/energy stream.
	SensorGuard = guard.Sensor
	// SensorGuardConfig tunes a SensorGuard; the zero value selects the
	// defaults.
	SensorGuardConfig = guard.Config
	// Telemetry is the live observability sink: a Prometheus-style metric
	// registry plus a flight recorder of controller decisions, with an
	// HTTP Handler exposing /metrics, /healthz and /decisions.
	Telemetry = telemetry.Telemetry
	// TelemetrySink receives instrumentation events from the control
	// path; pass one via Options.Telemetry and OnlineController.SetTelemetry.
	TelemetrySink = telemetry.Sink
	// Decision is one flight-recorder event: everything the runtime knew
	// and decided in a single control iteration.
	Decision = telemetry.Decision
)

// Exploration policies for Options.Selector.
const (
	SelectVDBE     = core.SelectVDBE
	SelectFixedEps = core.SelectFixedEps
	SelectUCB      = core.SelectUCB
)

// NewTelemetry builds a live telemetry sink whose flight recorder holds
// the last flightCapacity decisions (a default capacity if <= 0). Wire
// it into a runtime via Options.Telemetry, into an OnlineController via
// SetTelemetry, and serve its Handler to expose the run live.
func NewTelemetry(flightCapacity int) *Telemetry { return telemetry.New(flightCapacity) }

// SetRunnerTelemetry installs a process-wide sink on the parallel
// experiment runner: every experiment job reports start/completion and
// the queue depth behind it. Pass nil to disable.
func SetRunnerTelemetry(s TelemetrySink) { par.SetSink(s) }

// Benchmark returns one of the paper's eight approximate applications by
// name (Table 2): "x264", "swaptions", "bodytrack", "swish++", "radar",
// "canneal", "ferret", "streamcluster".
func Benchmark(name string) (App, error) { return apps.New(name) }

// Benchmarks lists the benchmark names in Table 2 order.
func Benchmarks() []string { return apps.Names() }

// PlatformByName returns a simulated platform: "Mobile", "Tablet" or
// "Server" (Table 3).
func PlatformByName(name string) (*Platform, error) { return platform.ByName(name) }

// Platforms lists the platform names.
func Platforms() []string { return platform.Names() }

// Table2 returns the paper's application characteristics.
func Table2() []AppSpec { return apps.Table2 }

// Testbed binds one application to one platform: it profiles the
// application into a Pareto frontier (the PowerDial calibration step),
// characterises the default configuration, and can construct governors and
// oracles for experiments.
type Testbed struct {
	App      App
	Platform *Platform
	Frontier *Frontier
	Profile  platform.AppProfile

	WorkPerIter   float64 // default-config work units per iteration
	DefaultRate   float64 // default/default iterations per second (true model)
	DefaultPower  float64 // default/default watts (true model)
	DefaultEnergy float64 // default/default joules per iteration (true model)

	Seed int64
}

// The (application, platform) testbed cache. Building a testbed means
// profiling the application into its calibrated frontier and probing its
// default-configuration characteristics — work that is deterministic per
// (app, platform) pair yet used to be repaid by every run of every sweep
// (the full evaluation builds 864+ testbeds). The cache holds one immutable
// template per pair; NewTestbed hands out shallow copies so per-run Seed
// mutations never leak between experiments. Platform, Frontier and App are
// shared read-only (the app kernels' Step methods are deterministic pure
// functions, safe under the concurrent sweeps in internal/experiments).
var (
	testbedMu    sync.Mutex
	testbedCache = map[[2]string]*Testbed{}
)

// NewTestbed builds a testbed for (application, platform) by name, serving
// repeat requests from the process-wide template cache.
func NewTestbed(appName, platName string) (*Testbed, error) {
	key := [2]string{appName, platName}
	testbedMu.Lock()
	tmpl := testbedCache[key]
	testbedMu.Unlock()
	if tmpl == nil {
		app, err := apps.New(appName)
		if err != nil {
			return nil, err
		}
		plat, err := platform.ByName(platName)
		if err != nil {
			return nil, err
		}
		tmpl, err = NewTestbedFrom(app, plat)
		if err != nil {
			return nil, err
		}
		testbedMu.Lock()
		testbedCache[key] = tmpl
		testbedMu.Unlock()
	}
	tb := *tmpl
	return &tb, nil
}

// NewTestbedFrom builds a testbed from already-constructed parts (use this
// to plug in your own App implementation; see examples/customapp).
func NewTestbedFrom(app App, plat *Platform) (*Testbed, error) {
	prof, err := platform.ProfileFor(app.Name())
	if err != nil {
		return nil, err
	}
	frontier, err := apps.CalibratedFrontier(app)
	if err != nil {
		return nil, err
	}
	// Default-config work per iteration, averaged over a few inputs.
	const probe = 4
	var work float64
	for i := 0; i < probe; i++ {
		w, _ := app.Step(app.DefaultConfig(), i)
		work += w
	}
	work /= probe
	def := plat.DefaultConfig()
	rate := plat.Rate(def, prof) / work // iterations per second
	power := plat.Power(def, prof)
	return &Testbed{
		App:           app,
		Platform:      plat,
		Frontier:      frontier,
		Profile:       prof,
		WorkPerIter:   work,
		DefaultRate:   rate,
		DefaultPower:  power,
		DefaultEnergy: power / rate,
		Seed:          1,
	}, nil
}

// RegisterProfile registers a hardware-interaction profile for a custom
// application so testbeds can be built for it.
func RegisterProfile(p platform.AppProfile) {
	platform.Profiles[p.Name] = p
}

// priors returns the paper's optimistic initial models in iteration-rate
// units for this testbed.
func (tb *Testbed) priors() learning.Priors {
	base := tb.Platform.Priors(tb.Profile)
	w := tb.WorkPerIter
	return learning.PriorsFunc(func(arm int) (float64, float64) {
		r, p := base.Estimate(arm)
		return r / w, p
	})
}

// Budget converts an energy-reduction factor f into a joule budget for the
// given number of iterations: E = iters * defaultEnergyPerIter / f
// (Sec. 5.2's methodology).
func (tb *Testbed) Budget(f float64, iters int) (float64, error) {
	if f <= 0 {
		return 0, fmt.Errorf("jouleguard: reduction factor %v must be positive", f)
	}
	if iters <= 0 {
		return 0, fmt.Errorf("jouleguard: iteration count %d must be positive", iters)
	}
	return float64(iters) * tb.DefaultEnergy / f, nil
}

// NewJouleGuard constructs the JouleGuard runtime for an energy-reduction
// factor f over iters iterations.
func (tb *Testbed) NewJouleGuard(f float64, iters int, opts Options) (*Runtime, error) {
	budget, err := tb.Budget(f, iters)
	if err != nil {
		return nil, err
	}
	if opts.Seed == 0 {
		opts.Seed = tb.Seed
	}
	return core.New(float64(iters), budget, tb.Frontier,
		tb.Platform.NumConfigs(), tb.priors(), tb.Platform.DefaultConfig(), opts)
}

// NewJouleGuardBudget constructs the runtime for an absolute joule budget.
func (tb *Testbed) NewJouleGuardBudget(budget float64, iters int, opts Options) (*Runtime, error) {
	if opts.Seed == 0 {
		opts.Seed = tb.Seed
	}
	return core.New(float64(iters), budget, tb.Frontier,
		tb.Platform.NumConfigs(), tb.priors(), tb.Platform.DefaultConfig(), opts)
}

// NewSystemOnly constructs the system-only baseline governor (Sec. 2.1).
func (tb *Testbed) NewSystemOnly() (Governor, error) {
	return baselines.NewSystemOnly(tb.App.DefaultConfig(), tb.Platform.NumConfigs(), tb.priors(), tb.Seed)
}

// NewAppOnly constructs the PowerDial-style application-only baseline
// (Sec. 2.2) for factor f over iters iterations.
func (tb *Testbed) NewAppOnly(f float64, iters int) (Governor, error) {
	budget, err := tb.Budget(f, iters)
	if err != nil {
		return nil, err
	}
	return baselines.NewAppOnly(float64(iters), budget, tb.Frontier,
		tb.Platform.DefaultConfig(), tb.DefaultRate, tb.DefaultPower)
}

// NewUncoordinated constructs the uncoordinated app+system baseline
// (Sec. 2.3).
func (tb *Testbed) NewUncoordinated(f float64, iters int) (Governor, error) {
	budget, err := tb.Budget(f, iters)
	if err != nil {
		return nil, err
	}
	return baselines.NewUncoordinated(float64(iters), budget, tb.Frontier,
		tb.Platform.NumConfigs(), tb.priors(), tb.DefaultRate, tb.DefaultPower, tb.Seed)
}

// The oracle cache. Constructing an oracle exhaustively profiles frontier x
// system configurations (up to 1024 on Server), and the metrics of every
// finished run consult one. Keyed by the identity of the testbed's shared
// parts, so cached testbeds for the same (app, platform) hit the same
// oracle while custom NewTestbedFrom testbeds (distinct Frontier pointers)
// get their own. Oracles are immutable after construction.
type oracleKey struct {
	frontier *Frontier
	plat     *Platform
	prof     platform.AppProfile
	work     float64
}

var (
	oracleMu    sync.Mutex
	oracleCache = map[oracleKey]*Oracle{}
)

// NewOracle constructs the omniscient oracle for this testbed (Sec. 5.2),
// memoized process-wide per (frontier, platform, profile, work) identity.
func (tb *Testbed) NewOracle() (*Oracle, error) {
	key := oracleKey{tb.Frontier, tb.Platform, tb.Profile, tb.WorkPerIter}
	oracleMu.Lock()
	orc := oracleCache[key]
	oracleMu.Unlock()
	if orc != nil {
		return orc, nil
	}
	orc, err := oracle.New(tb.Frontier, tb.Platform, tb.Profile, tb.WorkPerIter)
	if err != nil {
		return nil, err
	}
	oracleMu.Lock()
	oracleCache[key] = orc
	oracleMu.Unlock()
	return orc, nil
}

// resetExperimentCaches drops the testbed and oracle caches (benchmarks
// measuring cold-path construction cost).
func resetExperimentCaches() {
	testbedMu.Lock()
	testbedCache = map[[2]string]*Testbed{}
	testbedMu.Unlock()
	oracleMu.Lock()
	oracleCache = map[oracleKey]*Oracle{}
	oracleMu.Unlock()
}

// Run executes iters iterations under the governor on a fresh simulation
// engine and returns the run record.
func (tb *Testbed) Run(gov Governor, iters int) (*Record, error) {
	return tb.RunTraced(gov, iters, nil)
}

// RunTraced is Run with an external difficulty trace applied to the
// workload (see ThreePhaseVideo for the Fig. 8 input).
func (tb *Testbed) RunTraced(gov Governor, iters int, tr *Trace) (*Record, error) {
	eng, err := sim.New(tb.App, tb.Platform, tb.Seed)
	if err != nil {
		return nil, err
	}
	eng.Trace = tr
	return eng.Run(iters, gov)
}

// RunDisturbed is Run with per-iteration multiplicative disturbances on the
// platform's rate and power — external interference (co-located load,
// thermal events) the runtime must absorb. disturb returns (1, 1) for an
// undisturbed iteration.
func (tb *Testbed) RunDisturbed(gov Governor, iters int, disturb func(iter int) (rateMul, powerMul float64)) (*Record, error) {
	eng, err := sim.New(tb.App, tb.Platform, tb.Seed)
	if err != nil {
		return nil, err
	}
	eng.Disturb = disturb
	return eng.Run(iters, gov)
}

// RunFaulty is Run with a fault injector corrupting the measurement and
// actuation channels and the hardened sensing guard cleaning the power
// stream before it reaches the governor — the configuration the chaos
// harness (cmd/chaos) exercises. Ground truth in the Record stays
// honest; only what the governor perceives is faulted.
func (tb *Testbed) RunFaulty(gov Governor, iters int, inj *FaultInjector) (*Record, error) {
	eng, err := sim.New(tb.App, tb.Platform, tb.Seed)
	if err != nil {
		return nil, err
	}
	eng.Faults = inj
	eng.Guard = guard.New(guard.Config{ModelPower: tb.DefaultPower})
	return eng.Run(iters, gov)
}

// NewSensorGuard builds a hardened sensing guard (see SensorGuardConfig).
func NewSensorGuard(cfg SensorGuardConfig) *SensorGuard { return guard.New(cfg) }

// FaultScenarios returns the chaos harness's standing fault suite: the
// scenarios every JouleGuard build must keep its energy guarantee under.
func FaultScenarios() []FaultScenario { return faults.DefaultSuite() }

// FaultScenariosByName filters the standing suite by name (empty = all).
func FaultScenariosByName(names []string) ([]FaultScenario, error) {
	return faults.SuiteByName(names)
}

// RunDefault runs the out-of-the-box configuration (the paper's baseline
// characterisation).
func (tb *Testbed) RunDefault(iters int) (*Record, error) {
	return tb.Run(sim.FixedGovernor{
		AppCfg: tb.App.DefaultConfig(),
		SysCfg: tb.Platform.DefaultConfig(),
	}, iters)
}

// ThreePhaseVideo reproduces the Fig. 8 input: three scenes of framesPer
// frames, the middle one ~40% easier.
func ThreePhaseVideo(framesPer int) *Trace { return workload.ThreePhaseVideo(framesPer) }

// PhasedX264 builds a fresh x264 instance whose scene content follows the
// three-phase difficulty (for Fig. 8-style experiments the encoder itself
// sees easier scenes, so the speedup is genuine early termination).
func PhasedX264(framesPer int) App {
	return apps.NewX264WithPhases(func(iter int) float64 {
		if iter >= framesPer && iter < 2*framesPer {
			return 0.55
		}
		return 1
	})
}

// LinuxTopology describes a real Linux host's actuatable CPU resources.
type LinuxTopology = linuxsys.Topology

// LinuxActuator applies (cores x frequency) configurations to a real host.
type LinuxActuator = linuxsys.Actuator

// DiscoverLinux reads the host's CPU topology and frequency ladder from
// sysfs — the configuration space the paper controls with affinity masks
// and cpufrequtils (Sec. 4.2).
func DiscoverLinux() (*LinuxTopology, error) { return linuxsys.Discover("") }

// NewLinuxActuator builds an actuator that pins the process via
// sched_setaffinity and writes cpufreq setpoints. Set DryRun to log the
// actions instead of performing them (useful without root).
func NewLinuxActuator(t *LinuxTopology) (*LinuxActuator, error) {
	return linuxsys.NewActuator(t, linuxsys.SchedAffinity)
}

// LinuxRAPL is a real energy reader over the Linux powercap interface
// (/sys/class/powercap): the same package-energy counters the paper reads
// on its Intel platforms. Combine its ReadEnergyAt with an
// OnlineController to drive JouleGuard on an actual machine; fixedW is the
// paper's constant adder for the components RAPL cannot see.
func LinuxRAPL(fixedW float64) (*sensors.LinuxRAPLReader, error) {
	return sensors.NewLinuxRAPLReader("", fixedW)
}

// ---------------------------------------------------------------------
// Approximate hardware (the paper's Sec. 3.7 extension).

// HardwareRuntime is the power-mode JouleGuard variant for approximate
// hardware: approximation scales power instead of timing.
type HardwareRuntime = core.HardwareRuntime

// HardwareUnit is a simulated voltage-overscaled functional unit whose
// accuracy is measured from real fault-injected arithmetic.
type HardwareUnit = hwapprox.Unit

// NewHardwareUnit builds an approximate functional unit with the given
// number of levels, scaling dynamic power down to minPowerScale.
func NewHardwareUnit(levels int, minPowerScale float64, seed int64) (*HardwareUnit, error) {
	return hwapprox.NewUnit(levels, minPowerScale, seed)
}

// HardwareTestbed binds an approximate-hardware unit to a platform.
type HardwareTestbed struct {
	Unit          *HardwareUnit
	Platform      *Platform
	WorkPerIter   float64
	DefaultEnergy float64 // default-config, exact-hardware joules/iteration
	Seed          int64
	profile       platform.AppProfile
}

// NewHardwareTestbed builds the Sec. 3.7 testbed.
func NewHardwareTestbed(unit *HardwareUnit, platName string) (*HardwareTestbed, error) {
	plat, err := platform.ByName(platName)
	if err != nil {
		return nil, err
	}
	prof, err := platform.ProfileFor("hwapprox")
	if err != nil {
		return nil, err
	}
	work, _, _ := unit.Compute(0, 0)
	def := plat.DefaultConfig()
	return &HardwareTestbed{
		Unit:          unit,
		Platform:      plat,
		WorkPerIter:   work,
		DefaultEnergy: plat.Power(def, prof) * work / plat.Rate(def, prof),
		Seed:          1,
		profile:       prof,
	}, nil
}

// NewJouleGuard constructs the power-mode runtime for an energy-reduction
// factor f over iters iterations.
func (tb *HardwareTestbed) NewJouleGuard(f float64, iters int, opts Options) (*HardwareRuntime, error) {
	if f <= 0 || iters <= 0 {
		return nil, fmt.Errorf("jouleguard: invalid factor %v / iterations %d", f, iters)
	}
	base := tb.Platform.Priors(tb.profile)
	w := tb.WorkPerIter
	priors := learning.PriorsFunc(func(arm int) (float64, float64) {
		r, p := base.Estimate(arm)
		return r / w, p
	})
	if opts.Seed == 0 {
		opts.Seed = tb.Seed
	}
	budget := float64(iters) * tb.DefaultEnergy / f
	return core.NewHardware(float64(iters), budget, tb.Unit.MeasureFrontier(32),
		tb.Platform.NumConfigs(), priors, opts)
}

// Run executes iters iterations under the governor.
func (tb *HardwareTestbed) Run(gov Governor, iters int) (*Record, error) {
	eng, err := sim.New(hwapprox.Approx{Unit: tb.Unit}, tb.Platform, tb.Seed)
	if err != nil {
		return nil, err
	}
	return eng.Run(iters, gov)
}
