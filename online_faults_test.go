package jouleguard_test

import (
	"testing"

	"jouleguard"
	"jouleguard/internal/telemetry"
)

// dropTail is a deterministic sensor fault: readings are lost from
// iteration From onward, giving the test an exactly-known failure streak.
type dropTail struct{ From int }

func (d dropTail) Reading(iter int, v float64) (float64, bool) { return v, iter < d.From }

// iterCounter counts IterationDone events for the online-controller
// telemetry assertion.
type iterCounter struct {
	telemetry.Nop
	done, estimated int
}

func (c *iterCounter) IterationDone(_ float64, estimated bool) {
	c.done++
	if estimated {
		c.estimated++
	}
}

// TestOnlineIntrospectionUnderFaults drives the online controller through
// a run whose energy reader and clock are corrupted by the fault
// injector's own models, and checks every introspection accessor reports
// what actually happened: SensorFailures counts the lost readings,
// ConsecutiveFailures tracks the terminal outage streak, ClockAnomalies
// counts backwards clock steps, and GuardCounts accounts for every
// iteration exactly once.
func TestOnlineIntrospectionUnderFaults(t *testing.T) {
	tb, err := jouleguard.NewTestbed("radar", "Tablet")
	if err != nil {
		t.Fatal(err)
	}
	const iters = 120
	const outageFrom = 100 // reader dead for the final 20 iterations
	gov, err := tb.NewJouleGuard(1.5, iters, jouleguard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := &fakeMachine{tb: tb}
	inj := &jouleguard.FaultInjector{Sensor: dropTail{From: outageFrom}}
	ctl, err := jouleguard.NewOnline(gov,
		inj.WrapEnergyReader(m.readEnergy),
		func() float64 { return m.clock })
	if err != nil {
		t.Fatal(err)
	}
	tel := &iterCounter{}
	ctl.SetTelemetry(tel)

	for i := 0; i < iters; i++ {
		appCfg, sysCfg := ctl.Next()
		m.apply(appCfg, sysCfg)
		m.work()
		if err := ctl.Done(1); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}

	if got := ctl.Iterations(); got != iters {
		t.Fatalf("Iterations() = %d, want %d", got, iters)
	}
	// The reader failed for exactly the tail of the run.
	wantFailures := iters - outageFrom
	if got := ctl.SensorFailures(); got < wantFailures {
		t.Errorf("SensorFailures() = %d, want >= %d (tail outage)", got, wantFailures)
	}
	if got := ctl.ConsecutiveFailures(); got != wantFailures {
		t.Errorf("ConsecutiveFailures() = %d, want %d (outage still in progress)", got, wantFailures)
	}
	if ctl.LastSensorError() == nil {
		t.Error("LastSensorError() = nil during an outage")
	}
	// Guard accounting covers every iteration exactly once, and the
	// rejected side includes at least the dropped readings.
	acc, rej := ctl.GuardCounts()
	if acc+rej != iters {
		t.Errorf("GuardCounts() = %d+%d, want total %d", acc, rej, iters)
	}
	if rej < wantFailures {
		t.Errorf("GuardCounts() rejected = %d, want >= %d", rej, wantFailures)
	}
	// Telemetry mirrors the same story.
	if tel.done != iters {
		t.Errorf("telemetry IterationDone count = %d, want %d", tel.done, iters)
	}
	if tel.estimated != ctl.SensorFailures() {
		t.Errorf("telemetry estimated iterations = %d, want %d (one per failure)",
			tel.estimated, ctl.SensorFailures())
	}
}

// TestOnlineClockAnomaliesUnderFaultyClock runs the controller against a
// clock wrapped by the injector's backwards-stepping model and checks the
// anomaly counter: a clock fault large enough to invert every interval
// must be clamped and counted on every iteration, without killing the
// loop.
func TestOnlineClockAnomaliesUnderFaultyClock(t *testing.T) {
	tb, err := jouleguard.NewTestbed("radar", "Tablet")
	if err != nil {
		t.Fatal(err)
	}
	const iters = 30
	gov, err := tb.NewJouleGuard(1.5, iters, jouleguard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := &fakeMachine{tb: tb}
	inj := &jouleguard.FaultInjector{Clock: backEvery{step: 10}}
	ctl, err := jouleguard.NewOnline(gov, m.readEnergy, inj.WrapClock(func() float64 { return m.clock }))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iters; i++ {
		appCfg, sysCfg := ctl.Next()
		m.apply(appCfg, sysCfg)
		m.work()
		if err := ctl.Done(1); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
	if got := ctl.ClockAnomalies(); got != iters {
		t.Errorf("ClockAnomalies() = %d, want %d (every interval inverted)", got, iters)
	}
	if got := ctl.Iterations(); got != iters {
		t.Fatalf("Iterations() = %d, want %d", got, iters)
	}
}

// backEvery subtracts an ever-growing offset from each clock read, so
// consecutive reads always move backwards.
type backEvery struct{ step float64 }

func (b backEvery) Now(iter int, t float64) float64 { return t - float64(iter)*b.step }
