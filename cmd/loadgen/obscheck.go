package main

// Observability acceptance checks for a cluster run (-obs-check): while
// the load runs, a poller continuously samples the joule-provenance
// surfaces and records the worst conservation drift it ever saw — so a
// mid-run coordinator kill is covered, not just the quiescent end state
// — and after the run the harness joins one distributed trace across
// the client's own span buffer, the member daemons' /traces windows and
// the coordinator's, asserting the parent links chain client -> daemon
// -> broker -> coordinator.

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"sync"
	"time"

	"jouleguard/internal/load"
	"jouleguard/internal/telemetry"
	"jouleguard/internal/wire"
)

// provTolJ is the conservation tolerance the provenance layers promise.
const provTolJ = 1e-6

type obsCheck struct {
	sc      *selfcluster
	tracer  *telemetry.SpanBuffer
	tenants int
	httpc   *http.Client
	stop    chan struct{}
	done    chan struct{}

	mu         sync.Mutex
	sessSample int     // successful /v1/provenance samples
	fleetSamp  int     // successful /v1/cluster/provenance samples
	maxDriftJ  float64 // worst |DriftJ| across every sampled layer
	worstLayer string
}

func startObsCheck(sc *selfcluster, tracer *telemetry.SpanBuffer, tenants int) *obsCheck {
	o := &obsCheck{
		sc: sc, tracer: tracer, tenants: tenants,
		httpc: &http.Client{Timeout: 2 * time.Second},
		stop:  make(chan struct{}), done: make(chan struct{}),
	}
	go o.poll()
	return o
}

// poll samples the provenance surfaces until stopped: each round asks
// every node for one rotating tenant key's custody chain (non-owners
// answer 404, dead nodes refuse the connection; both are skipped) and
// the serving coordinator for the fleet chain.
func (o *obsCheck) poll() {
	defer close(o.done)
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	round := 0
	for {
		select {
		case <-o.stop:
			return
		case <-tick.C:
		}
		key := fmt.Sprintf("tenant-%02d", round%max(o.tenants, 1))
		round++
		for _, u := range o.sc.nodeURLs() {
			var p wire.SessionProvenance
			if !o.getJSON(u+wire.ProvenancePath+"?session="+key, &p) {
				continue
			}
			o.fold(p.Layers, 1, 0)
			break
		}
		var cp wire.ClusterProvenance
		if o.getJSON(o.sc.servingURL()+wire.ClusterBasePath+"/provenance", &cp) {
			o.fold(cp.Layers, 0, 1)
		}
	}
}

func (o *obsCheck) getJSON(url string, v any) bool {
	resp, err := o.httpc.Get(url)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	return json.NewDecoder(resp.Body).Decode(v) == nil
}

func (o *obsCheck) fold(layers []wire.ProvenanceLayer, sess, fleet int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.sessSample += sess
	o.fleetSamp += fleet
	for _, l := range layers {
		if d := math.Abs(l.DriftJ); d > o.maxDriftJ {
			o.maxDriftJ, o.worstLayer = d, l.Layer
		}
	}
}

// spanRow is the /traces JSONL export row.
type spanRow struct {
	Trace   string `json:"trace"`
	ID      string `json:"id"`
	Parent  string `json:"parent"`
	Name    string `json:"name"`
	Node    string `json:"node"`
	Session string `json:"session"`
	Iter    int    `json:"iter"`
}

// verify stops the poller and asserts the whole observability plane:
// provenance conserved to within provTolJ at every sampled instant and
// in the final fleet chain, and at least one trace joinable across the
// client, a member daemon and the coordinator.
func (o *obsCheck) verify(rep *load.Report) error {
	close(o.stop)
	<-o.done

	o.mu.Lock()
	sessN, fleetN, maxDrift, worst := o.sessSample, o.fleetSamp, o.maxDriftJ, o.worstLayer
	o.mu.Unlock()
	if sessN == 0 {
		return fmt.Errorf("obs-check: no session provenance chain was ever sampled")
	}
	if fleetN == 0 {
		return fmt.Errorf("obs-check: no cluster provenance chain was ever sampled")
	}
	if maxDrift > provTolJ {
		return fmt.Errorf("obs-check: provenance layer %q drifted %.3g J (tolerance %g)", worst, maxDrift, provTolJ)
	}
	var final wire.ClusterProvenance
	if !o.getJSON(o.sc.servingURL()+wire.ClusterBasePath+"/provenance", &final) {
		return fmt.Errorf("obs-check: final cluster provenance fetch failed")
	}
	for _, l := range final.Layers {
		if math.Abs(l.DriftJ) > provTolJ {
			return fmt.Errorf("obs-check: final cluster provenance layer %q drift %.3g J", l.Layer, l.DriftJ)
		}
	}

	trace, hops, err := o.joinTrace(rep)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "obs-check passed: %d session + %d fleet provenance samples, worst drift %.2g J; "+
		"trace %s joined across client/member/coordinator (%d hops)\n",
		sessN, fleetN, maxDrift, telemetry.FormatID(trace), hops)
	return nil
}

// joinTrace finds one trace whose spans chain end to end: the client's
// root span in the local buffer, member spans parented to it, and a
// coordinator lease span parented to a member span. Trace refs ride
// heartbeats, so the coordinator hop can lag the run's end; candidates
// are retried until the deadline.
func (o *obsCheck) joinTrace(rep *load.Report) (trace uint64, hops int, err error) {
	candidates := make([]uint64, 0, len(rep.Tenants)+8)
	seen := map[uint64]bool{}
	for _, t := range rep.Tenants {
		if t.TraceID != 0 && !seen[t.TraceID] {
			candidates = append(candidates, t.TraceID)
			seen[t.TraceID] = true
		}
	}
	// Every client root span is a candidate too: a tenant's *last* minted
	// trace may have raced the run's end onto a node that died.
	for _, s := range o.tracer.Snapshot(0) {
		if !seen[s.Trace] {
			candidates = append(candidates, s.Trace)
			seen[s.Trace] = true
		}
	}
	if len(candidates) == 0 {
		return 0, 0, fmt.Errorf("obs-check: no tenant minted a trace (tracing disabled?)")
	}
	deadline := time.Now().Add(5 * time.Second)
	var lastErr error
	for {
		for _, tr := range candidates {
			if hops, jerr := o.tryJoin(tr); jerr == nil {
				return tr, hops, nil
			} else {
				lastErr = jerr
			}
		}
		if time.Now().After(deadline) {
			return 0, 0, fmt.Errorf("obs-check: no trace joined across client, member and coordinator: %w", lastErr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// tryJoin fetches one trace id from every surface and checks the chain.
func (o *obsCheck) tryJoin(trace uint64) (hops int, err error) {
	clientIDs := map[uint64]bool{}
	for _, s := range o.tracer.Snapshot(trace) {
		if s.Name == telemetry.SpanClientSend {
			clientIDs[s.ID] = true
		}
	}
	if len(clientIDs) == 0 {
		return 0, fmt.Errorf("trace %s: no client root span recorded", telemetry.FormatID(trace))
	}
	hex := telemetry.FormatID(trace)
	var member []spanRow
	for _, u := range o.sc.nodeURLs() {
		member = append(member, o.fetchSpans(u, hex)...)
	}
	memberIDs := map[uint64]bool{}
	childOfClient := false
	for _, r := range member {
		id, _ := telemetry.ParseID(r.ID)
		memberIDs[id] = true
		if p, ok := telemetry.ParseID(r.Parent); ok && clientIDs[p] {
			childOfClient = true
		}
	}
	if !childOfClient {
		return 0, fmt.Errorf("trace %s: no member span parented to the client root (%d member spans)", hex, len(member))
	}
	coord := o.fetchSpans(o.sc.servingURL(), hex)
	joined := false
	for _, r := range coord {
		if r.Name != telemetry.SpanCoordLease {
			continue
		}
		if p, ok := telemetry.ParseID(r.Parent); ok && memberIDs[p] {
			joined = true
			break
		}
	}
	if !joined {
		return 0, fmt.Errorf("trace %s: no coordinator lease span parented to a member span (%d coordinator spans)", hex, len(coord))
	}
	return len(clientIDs) + len(member) + len(coord), nil
}

// fetchSpans pulls one trace's JSONL window from a node's /traces
// endpoint (dead nodes and decode noise yield an empty slice).
func (o *obsCheck) fetchSpans(base, traceHex string) []spanRow {
	resp, err := o.httpc.Get(base + "/traces?trace=" + traceHex)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var rows []spanRow
	dec := json.NewDecoder(resp.Body)
	for {
		var r spanRow
		if err := dec.Decode(&r); err != nil {
			break
		}
		rows = append(rows, r)
	}
	return rows
}
