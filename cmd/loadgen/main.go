// Command loadgen drives a jouleguardd daemon with N simulated tenants
// and reports service-layer overheads: decision latency (p50/p99 of the
// Next and Done round trips), throughput, and the aggregate
// budget-guarantee error across concurrently governed sessions.
//
// Two modes:
//
//   - -addr points it at an external daemon;
//   - -selfhost (the default when -addr is empty) runs the daemon
//     in-process over a real localhost listener, so one race-detector
//     run covers server and client together. With -restart-at N the
//     selfhosted daemon is drained, snapshotted and replaced mid-run
//     once N iterations have completed across tenants — proving the
//     guarantees survive a restart while clients ride through on their
//     retry layer.
//
// Latency results are printed to stdout in `go test -bench` format so
// cmd/benchjson can fold them into BENCH_experiments.json; the
// human-readable summary goes to stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"jouleguard"
	"jouleguard/internal/load"
	"jouleguard/internal/server"
	"jouleguard/internal/telemetry"
	"jouleguard/internal/wire"
)

func main() {
	addr := flag.String("addr", "", "address of an external daemon (empty = selfhost)")
	tenants := flag.Int("tenants", 8, "concurrent tenants")
	iters := flag.Int("iters", 200, "iterations per tenant")
	apps := flag.String("apps", "x264", "comma-separated benchmarks, assigned round-robin")
	platName := flag.String("platform", "Server", "platform model")
	factor := flag.Float64("f", 2.0, "per-tenant energy-reduction factor (prices the absolute budget request)")
	weighted := flag.Bool("weighted", false, "request weighted shares instead of factor-priced absolute budgets")
	budget := flag.Float64("budget", 0, "selfhost: global budget in joules (0 = auto-size to fit the tenants)")
	restartAt := flag.Int("restart-at", 0, "selfhost: drain+snapshot+restart the daemon once this many iterations completed across tenants (0 = never)")
	check := flag.Float64("check", 0, "fail unless every tenant's spend <= this fraction of its grant (e.g. 1.05; 0 = report only)")
	seed := flag.Int64("seed", 1, "base seed; tenant i runs with seed+i")
	flag.Parse()

	cfg := load.Config{
		Tenants:    *tenants,
		Iterations: *iters,
		Apps:       strings.Split(*apps, ","),
		Platform:   *platName,
		Seed:       *seed,
	}
	if *weighted {
		cfg.Weight = 1
	} else {
		cfg.Factor = *factor
	}

	var sh *selfhost
	if *addr == "" {
		globalJ := *budget
		if globalJ <= 0 {
			globalJ = autoBudget(cfg)
		}
		var err error
		sh, err = startSelfhost(globalJ)
		if err != nil {
			fail(err)
		}
		cfg.BaseURL = sh.baseURL()
		if *restartAt > 0 {
			go sh.restartWhen(*restartAt)
		}
		fmt.Fprintf(os.Stderr, "selfhosted daemon on %s, global budget %.0f J\n", cfg.BaseURL, globalJ)
	} else {
		cfg.BaseURL = *addr
		if !strings.HasPrefix(cfg.BaseURL, "http") {
			cfg.BaseURL = "http://" + cfg.BaseURL
		}
	}

	rep, err := load.Run(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Fprintln(os.Stderr, rep.Summary())
	if sh != nil {
		if err := sh.verifyBroker(rep); err != nil {
			fail(err)
		}
		sh.stop()
	}
	for _, line := range rep.BenchLines() {
		fmt.Println(line)
	}
	if *check > 0 {
		if err := rep.Check(*check); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "check passed: every tenant within %.0f%% of its grant\n", *check*100)
	} else if rep.Errors > 0 {
		fail(fmt.Errorf("loadgen: %d tenants reported errors", rep.Errors))
	}
}

// autoBudget sizes the selfhosted global pool so every factor-priced
// tenant fits under the broker's reserve, with a small admission margin.
func autoBudget(cfg load.Config) float64 {
	total := 0.0
	for i := 0; i < cfg.Tenants; i++ {
		app := cfg.Apps[i%len(cfg.Apps)]
		tb, err := jouleguard.NewTestbed(app, cfg.Platform)
		if err != nil {
			fail(err)
		}
		per := tb.DefaultEnergy * float64(cfg.Iterations)
		if cfg.Factor > 0 {
			b, err := tb.Budget(cfg.Factor, cfg.Iterations)
			if err != nil {
				fail(err)
			}
			per = b
		}
		total += per
	}
	return total * server.DefaultReserve * 1.02
}

// selfhost runs the daemon in-process over a real localhost listener and
// can replace it mid-run (drain, snapshot, restore) while clients retry
// through the outage.
type selfhost struct {
	addr    string
	snap    string
	tel     *telemetry.Telemetry
	globalJ float64
	srv     *server.Server
	httpSrv *http.Server
}

func startSelfhost(globalJ float64) (*selfhost, error) {
	dir, err := os.MkdirTemp("", "loadgen-snap-")
	if err != nil {
		return nil, err
	}
	sh := &selfhost{
		snap:    filepath.Join(dir, "jouleguardd.snap"),
		tel:     telemetry.New(4096),
		globalJ: globalJ,
	}
	srv, err := server.New(server.Config{GlobalBudgetJ: globalJ, Telemetry: sh.tel})
	if err != nil {
		return nil, err
	}
	sh.srv = srv
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	sh.addr = ln.Addr().String()
	sh.serve(ln)
	return sh, nil
}

func (sh *selfhost) baseURL() string { return "http://" + sh.addr }

func (sh *selfhost) serve(ln net.Listener) {
	sh.httpSrv = &http.Server{Handler: sh.srv.Handler()}
	go func(h *http.Server) { _ = h.Serve(ln) }(sh.httpSrv)
}

// restartWhen polls the daemon's own wire surface until the fleet has
// completed n iterations, then replaces the daemon: drain in-flight
// brackets, snapshot, tear the listener down, restore a fresh server on
// the same address.
func (sh *selfhost) restartWhen(n int) {
	for {
		time.Sleep(10 * time.Millisecond)
		done, err := sh.fleetIterations()
		if err != nil {
			continue
		}
		if done >= n {
			break
		}
	}
	fmt.Fprintf(os.Stderr, "restart trigger: fleet passed %d iterations; draining + snapshotting daemon\n", n)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sh.srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "drain: %v\n", err)
	}
	if err := sh.srv.SnapshotFile(sh.snap); err != nil {
		fail(fmt.Errorf("snapshot: %w", err))
	}
	_ = sh.httpSrv.Close() // drop the listener; clients enter retry

	srv, err := server.New(server.Config{GlobalBudgetJ: sh.globalJ, Telemetry: sh.tel})
	if err != nil {
		fail(err)
	}
	if _, err := srv.RestoreFile(sh.snap); err != nil {
		fail(fmt.Errorf("restore: %w", err))
	}
	sh.srv = srv
	// Rebind the same address; the old listener may linger briefly.
	var ln net.Listener
	for i := 0; i < 100; i++ {
		ln, err = net.Listen("tcp", sh.addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		fail(fmt.Errorf("rebinding %s: %w", sh.addr, err))
	}
	sh.serve(ln)
	fmt.Fprintf(os.Stderr, "daemon restarted on %s from %s\n", sh.addr, sh.snap)
}

// fleetIterations sums completed iterations across live sessions via the
// daemon's list endpoint.
func (sh *selfhost) fleetIterations() (int, error) {
	resp, err := http.Get(sh.baseURL() + wire.BasePath)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var list wire.ListResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return 0, err
	}
	total := 0
	for _, s := range list.Sessions {
		total += s.IterDone
	}
	return total, nil
}

// verifyBroker asserts the daemon-side global invariant after the run:
// the broker never over-committed, and the fleet's total spend stayed
// within the global pool.
func (sh *selfhost) verifyBroker(rep *load.Report) error {
	info := sh.srv.Broker().Info()
	if info.CommittedJ+info.ConsumedJ > info.GlobalJ*1.0001 {
		return fmt.Errorf("loadgen: broker over-committed: committed %.1f + consumed %.1f > global %.1f",
			info.CommittedJ, info.ConsumedJ, info.GlobalJ)
	}
	if rep.TotalSpentJ > info.GlobalJ {
		return fmt.Errorf("loadgen: fleet spent %.1f J of a %.1f J global budget", rep.TotalSpentJ, info.GlobalJ)
	}
	fmt.Fprintf(os.Stderr, "broker ledger: global %.0f J, consumed %.1f J, committed %.1f J, %d admitted / %d rejected\n",
		info.GlobalJ, info.ConsumedJ, info.CommittedJ, info.Admitted, info.Rejected)
	return nil
}

func (sh *selfhost) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = sh.srv.Shutdown(ctx)
	_ = sh.httpSrv.Close()
	os.RemoveAll(filepath.Dir(sh.snap))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
