// Command loadgen drives a jouleguardd daemon with N simulated tenants
// and reports service-layer overheads: decision latency (p50/p99 of the
// Next and Done round trips), throughput, and the aggregate
// budget-guarantee error across concurrently governed sessions.
//
// Three modes:
//
//   - -addr points it at an external daemon;
//   - -selfhost (the default when -addr is empty) runs the daemon
//     in-process over a real localhost listener, so one race-detector
//     run covers server and client together. With -restart-at N the
//     selfhosted daemon is drained, snapshotted and replaced mid-run
//     once N iterations have completed across tenants — proving the
//     guarantees survive a restart while clients ride through on their
//     retry layer.
//   - -cluster runs a fleet coordinator plus -nodes member daemons
//     in-process, each on its own localhost listener, and registers
//     every tenant through the coordinator. With -kill-at N one node is
//     killed (listener closed, heartbeats stopped) once N iterations
//     have completed fleet-wide: its lease expires, the coordinator
//     escrows the unspent budget and fails its sessions over, and the
//     clients ride through on their failover path. The run then reports
//     failover latency quantiles alongside the usual decision latency.
//
// Cross-cutting switches: -v2 moves the per-iteration traffic onto the
// v2 binary frame stream (batched DoneNext, one round trip per
// iteration); -open-loop 5s runs for a fixed wall-clock window at
// saturation and reports sustained decisions/s; -inproc bypasses
// sockets entirely and drives the exported Server.Next/Done decision
// path directly, isolating the governor+session cost from transport.
// -meter sim (selfhost only) swaps the billed energy source for a
// calibrated simulated meter — tenants' wire readings become physical
// stimulus, sessions are debited only what the measurement service
// attributes — and -meter-faults injects counter spikes to prove the
// plausibility gate rejects them without billing a single corrupted
// joule.
//
// Latency results are printed to stdout in `go test -bench` format so
// cmd/benchjson can fold them into BENCH_experiments.json; the
// human-readable summary goes to stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"jouleguard"
	"jouleguard/internal/client"
	"jouleguard/internal/cluster"
	"jouleguard/internal/faults"
	"jouleguard/internal/guard"
	"jouleguard/internal/load"
	"jouleguard/internal/measure"
	"jouleguard/internal/metrics"
	"jouleguard/internal/qos"
	"jouleguard/internal/server"
	"jouleguard/internal/telemetry"
	"jouleguard/internal/wire"
)

func main() {
	addr := flag.String("addr", "", "address of an external daemon (empty = selfhost)")
	tenants := flag.Int("tenants", 8, "concurrent tenants")
	iters := flag.Int("iters", 200, "iterations per tenant")
	apps := flag.String("apps", "x264", "comma-separated benchmarks, assigned round-robin")
	platName := flag.String("platform", "Server", "platform model")
	factor := flag.Float64("f", 2.0, "per-tenant energy-reduction factor (prices the absolute budget request)")
	weighted := flag.Bool("weighted", false, "request weighted shares instead of factor-priced absolute budgets")
	budget := flag.Float64("budget", 0, "selfhost: global budget in joules (0 = auto-size to fit the tenants)")
	restartAt := flag.Int("restart-at", 0, "selfhost: drain+snapshot+restart the daemon once this many iterations completed across tenants (0 = never)")
	clusterMode := flag.Bool("cluster", false, "run an in-process fleet (coordinator + -nodes member daemons) and register tenants through the coordinator")
	nodes := flag.Int("nodes", 3, "cluster: member daemons in the fleet")
	killAt := flag.Int("kill-at", 0, "cluster: kill one node once this many iterations completed fleet-wide (0 = never)")
	killCoordAt := flag.Int("kill-coordinator-at", 0, "cluster: kill the primary coordinator and promote a standby once this many iterations completed fleet-wide (0 = never)")
	traceEvery := flag.Int("trace-every", 0, "mint a distributed-trace context every N governed rounds per tenant (0 = client default 1/256; negative disables)")
	obsChk := flag.Bool("obs-check", false, "cluster: continuously audit joule provenance during the run and assert a cross-node trace join after it")
	check := flag.Float64("check", 0, "fail unless every tenant's spend <= this fraction of its grant (e.g. 1.05; 0 = report only)")
	tier := flag.String("tier", "", "QoS tier honest tenants claim at registration (guaranteed | standard | best-effort; empty = standard)")
	adversaries := flag.Int("adversaries", 0, "convert this many tenants into adversaries: each claims -adv-weight honest tenants' worth of the pool under the best-effort tier and hammers the daemon until the honest tenants finish; the run is judged by tenant isolation instead of completion")
	advWeight := flag.Float64("adv-weight", 10, "claim multiple each adversary asks for (budget in factor mode, weight in weighted mode)")
	qosEnabled := flag.Bool("qos", false, "selfhost: enable the local QoS ladder (graduated enforcement + overload shedding); implied by -adversaries")
	qosShedAt := flag.Float64("qos-shed-at", 0, "selfhost: pool-pressure threshold above which overload shedding engages (0 = default 0.97)")
	expectShed := flag.Bool("expect-shed", false, "fail unless at least one adversary session was shed (requires -adversaries)")
	seed := flag.Int64("seed", 1, "base seed; tenant i runs with seed+i")
	v2 := flag.Bool("v2", false, "speak the v2 binary frame stream with the batched DoneNext loop (default: v1 JSON/HTTP)")
	openLoop := flag.Duration("open-loop", 0, "run for this wall-clock window instead of to workload completion, measuring sustained decisions/s (sizes -iters up automatically)")
	inproc := flag.Bool("inproc", false, "drive Server.Next/Done directly in-process (no sockets): the decision path alone")
	meterMode := flag.String("meter", "client", "selfhost energy source: client (tenants' wire-reported readings are debited) or sim (a calibrated simulated meter measures; client reports become physical stimulus)")
	meterFaults := flag.Bool("meter-faults", false, "with -meter sim: inject seeded counter faults into the meter and assert the plausibility gate rejects them")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC()
			_ = pprof.WriteHeapProfile(f)
		}()
	}

	tracer := telemetry.NewSpanBuffer(0)
	tracer.SetNode("loadgen")
	cfg := load.Config{
		Tenants:         *tenants,
		Iterations:      *iters,
		Apps:            strings.Split(*apps, ","),
		Platform:        *platName,
		Seed:            *seed,
		WireV2:          *v2,
		Duration:        *openLoop,
		Tier:            *tier,
		Adversaries:     *adversaries,
		AdversaryWeight: *advWeight,
		TraceEvery:      *traceEvery,
		Tracer:          tracer,
	}
	if *expectShed && *adversaries == 0 {
		fail(fmt.Errorf("loadgen: -expect-shed requires -adversaries"))
	}
	if *openLoop > 0 && *iters <= 200 {
		// Throughput mode must not end by workload completion: give every
		// tenant more iterations than the window can possibly consume.
		cfg.Iterations = 1 << 20
	}
	if *weighted {
		cfg.Weight = 1
	} else {
		cfg.Factor = *factor
	}

	switch *meterMode {
	case "", "client":
		if *meterFaults {
			fail(fmt.Errorf("loadgen: -meter-faults requires -meter sim"))
		}
	case "sim":
		if *addr != "" || *clusterMode || *inproc {
			fail(fmt.Errorf("loadgen: -meter sim runs only against the selfhosted daemon (no -addr, -cluster or -inproc)"))
		}
	default:
		fail(fmt.Errorf("loadgen: unknown -meter mode %q (want client or sim; rapl needs jouleguardd on real hardware)", *meterMode))
	}

	if *inproc {
		runInproc(cfg, *budget, *check)
		return
	}

	var sh *selfhost
	var sc *selfcluster
	prefix := "Serve"
	if *clusterMode {
		prefix = "Cluster"
		fleetJ := *budget
		if fleetJ <= 0 {
			// Double the single-daemon sizing: failover permanently escrows
			// the dead node's unspent lease (it never rejoins to reconcile),
			// and the reassigned sessions are funded a second time from the
			// coordinator's reserve.
			fleetJ = autoBudget(cfg) * 2
		}
		var err error
		sc, err = startSelfcluster(fleetJ, *nodes, *killCoordAt > 0)
		if err != nil {
			fail(err)
		}
		cfg.CoordinatorURL = sc.baseURL()
		// Failover-aware retries: exhaust fast enough that the client asks
		// the coordinator for the new owner within the smoke-test window.
		cfg.Retry = client.RetryPolicy{MaxAttempts: 6, BaseDelay: 30 * time.Millisecond, MaxDelay: 300 * time.Millisecond}
		if *killAt > 0 {
			cfg.KillAt = *killAt
			cfg.Kill = sc.killOne
		}
		if *killCoordAt > 0 {
			cfg.CoordinatorURLs = []string{sc.standbyURL()}
			cfg.Kills = append(cfg.Kills, load.Kill{At: *killCoordAt, Do: sc.killCoordinator})
		}
		fmt.Fprintf(os.Stderr, "selfclustered fleet: coordinator on %s, %d nodes, fleet budget %.0f J\n",
			cfg.CoordinatorURL, *nodes, fleetJ)
	} else if *obsChk {
		fail(fmt.Errorf("loadgen: -obs-check requires -cluster (the trace join and provenance audit span a fleet)"))
	} else if *addr == "" {
		globalJ := *budget
		if globalJ <= 0 {
			globalJ = autoBudget(cfg)
		}
		var mo *meterOpts
		if *meterMode == "sim" {
			tb, err := jouleguard.NewTestbed(cfg.Apps[0], cfg.Platform)
			if err != nil {
				fail(err)
			}
			// Spikes tens of default-iterations tall: they land above the
			// gate's absolute power ceiling at any governed operating
			// point, so every injected one must be rejected as implausible
			// (and its negative echo as the counter going backwards) —
			// never confirmed as a level shift by a later lookalike spike.
			mo = &meterOpts{
				modelW: tb.DefaultPower,
				spikeJ: 40 * tb.DefaultEnergy,
				inject: *meterFaults,
				seed:   *seed,
			}
			prefix = "Meter"
		}
		qcfg := qos.Config{Enabled: *qosEnabled || *adversaries > 0, ShedPressure: *qosShedAt}
		var err error
		sh, err = startSelfhost(globalJ, mo, qcfg)
		if err != nil {
			fail(err)
		}
		cfg.BaseURL = sh.baseURL()
		if *restartAt > 0 {
			go sh.restartWhen(*restartAt)
		}
		fmt.Fprintf(os.Stderr, "selfhosted daemon on %s, global budget %.0f J\n", cfg.BaseURL, globalJ)
	} else {
		cfg.BaseURL = *addr
		if !strings.HasPrefix(cfg.BaseURL, "http") {
			cfg.BaseURL = "http://" + cfg.BaseURL
		}
	}

	if *adversaries > 0 {
		// Adversarial runs measure enforcement, not the steady-state hot
		// path; their latency snapshots must not overwrite the baselines.
		prefix = "Qos"
	}
	if *v2 {
		// Distinct snapshot names: the v2 hot path must not overwrite the
		// v1 JSON baseline (and vice versa) in BENCH_experiments.json.
		prefix += "V2"
	}

	var obs *obsCheck
	if *obsChk {
		obs = startObsCheck(sc, tracer, cfg.Tenants)
	}

	rep, err := load.Run(context.Background(), cfg)
	if err != nil {
		fail(err)
	}
	fmt.Fprintln(os.Stderr, rep.Summary())
	for _, tr := range rep.Tenants {
		if tr.Err != nil {
			fmt.Fprintf(os.Stderr, "tenant %s: %v\n", tr.Tenant, tr.Err)
		}
	}
	if sh != nil {
		if sh.rig != nil {
			if err := sh.rig.report(); err != nil {
				fail(err)
			}
		}
		if err := sh.verifyBroker(rep); err != nil {
			fail(err)
		}
		sh.stop()
	}
	if sc != nil {
		if err := sc.verify(rep, *killAt, *killCoordAt); err != nil {
			fail(err)
		}
		if obs != nil {
			// Before sc.stop(): the trace join may need one more heartbeat
			// to carry the final trace refs to the coordinator.
			if err := obs.verify(rep); err != nil {
				fail(err)
			}
		}
		sc.stop()
	}
	for _, line := range rep.BenchLines(prefix) {
		fmt.Println(line)
	}
	if *adversaries > 0 {
		regs := 0
		for _, tr := range rep.Tenants {
			if tr.Adversary {
				regs += tr.Registrations
			}
		}
		fmt.Fprintf(os.Stderr, "enforcement: %d adversary registrations; denials throttled %d / suspended %d / shed %d\n",
			regs, rep.Throttled, rep.Suspended, rep.Shed)
		if *expectShed && rep.Shed == 0 {
			fail(fmt.Errorf("loadgen: -expect-shed: no adversary session was shed"))
		}
	}
	if *check > 0 {
		if *adversaries > 0 {
			if err := rep.CheckIsolation(*check); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "isolation check passed: honest tenants within %.0f%% of grant, untouched by enforcement; adversaries denied\n", *check*100)
		} else {
			if err := rep.Check(*check); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "check passed: every tenant within %.0f%% of its grant\n", *check*100)
		}
	} else if rep.Errors > 0 {
		fail(fmt.Errorf("loadgen: %d tenants reported errors", rep.Errors))
	}
}

// runInproc drives the exported Server.Next/Done decision path directly
// — no sockets, no codecs — with one goroutine per tenant against one
// Server. It measures what the daemon itself costs per decision
// (session shard lookup + session lock + governor), the floor under
// every wire number.
func runInproc(cfg load.Config, budget, check float64) {
	if len(cfg.Apps) == 0 {
		cfg.Apps = []string{"x264"}
	}
	if cfg.Platform == "" {
		cfg.Platform = "Server"
	}
	globalJ := budget
	if globalJ <= 0 {
		globalJ = autoBudget(cfg)
	}
	srv, err := server.New(server.Config{GlobalBudgetJ: globalJ, SweepInterval: -1})
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "in-process daemon, global budget %.0f J\n", globalJ)

	type result struct {
		res              load.TenantResult
		nextLat, doneLat []time.Duration
	}
	results := make([]result, cfg.Tenants)
	start := time.Now()
	var wg sync.WaitGroup
	for ti := 0; ti < cfg.Tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			r := &results[ti]
			app := cfg.Apps[ti%len(cfg.Apps)]
			r.res = load.TenantResult{Tenant: fmt.Sprintf("tenant-%02d", ti), App: app}
			tb, err := jouleguard.NewTestbed(app, cfg.Platform)
			if err != nil {
				r.res.Err = err
				return
			}
			reg := wire.RegisterRequest{
				Tenant: r.res.Tenant, App: app, Platform: cfg.Platform,
				Iterations: cfg.Iterations, Weight: cfg.Weight, Seed: cfg.Seed + int64(ti),
			}
			if cfg.Factor > 0 {
				if reg.BudgetJ, err = tb.Budget(cfg.Factor, cfg.Iterations); err != nil {
					r.res.Err = err
					return
				}
			}
			resp, err := srv.Register(reg)
			if err != nil {
				r.res.Err = err
				return
			}
			r.res.SessionID = resp.SessionID
			r.res.GrantJ = resp.GrantJ
			var deadline time.Time
			var stepMemo map[int][2]float64
			if cfg.Duration > 0 {
				deadline = time.Now().Add(cfg.Duration)
				stepMemo = map[int][2]float64{} // see load.tenant.step
			}
			clockS, energyJ, accSum := 0.0, 0.0, 0.0
			for i := 0; i < cfg.Iterations; i++ {
				t0 := time.Now()
				nresp, err := srv.Next(resp.SessionID, wire.NextRequest{NowS: clockS})
				r.nextLat = append(r.nextLat, time.Since(t0))
				if err != nil {
					r.res.Err = fmt.Errorf("iteration %d Next: %w", i, err)
					return
				}
				var work, acc float64
				if v, ok := stepMemo[nresp.AppConfig]; ok {
					work, acc = v[0], v[1]
				} else {
					work, acc = tb.App.Step(nresp.AppConfig, i)
					if stepMemo != nil {
						stepMemo[nresp.AppConfig] = [2]float64{work, acc}
					}
				}
				dur := work / tb.Platform.Rate(nresp.SysConfig, tb.Profile)
				clockS += dur
				energyJ += tb.Platform.Power(nresp.SysConfig, tb.Profile) * dur
				accSum += acc
				t0 = time.Now()
				dresp, err := srv.Done(resp.SessionID, wire.DoneRequest{NowS: clockS, EnergyJ: energyJ, Accuracy: acc})
				r.doneLat = append(r.doneLat, time.Since(t0))
				if err != nil {
					r.res.Err = fmt.Errorf("iteration %d Done: %w", i, err)
					return
				}
				r.res.Iterations++
				r.res.SpentJ = dresp.SpentJ
				if dresp.Complete || (!deadline.IsZero() && time.Now().After(deadline)) {
					break
				}
			}
			r.res.MeteredJ = energyJ
			if r.res.Iterations > 0 {
				r.res.MeanAcc = accSum / float64(r.res.Iterations)
			}
			if _, err := srv.Close(resp.SessionID); err != nil {
				r.res.Err = fmt.Errorf("close: %w", err)
			}
		}(ti)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &load.Report{Elapsed: elapsed}
	var nextAll, doneAll, iterAll []time.Duration
	for _, r := range results {
		rep.Tenants = append(rep.Tenants, r.res)
		rep.Iterations += r.res.Iterations
		rep.TotalSpentJ += r.res.SpentJ
		rep.TotalGrantJ += r.res.GrantJ
		if og := r.res.OverGrant(); og > rep.MaxOverGrant {
			rep.MaxOverGrant = og
		}
		if r.res.Err != nil {
			rep.Errors++
			fmt.Fprintf(os.Stderr, "tenant %s: %v\n", r.res.Tenant, r.res.Err)
		}
		nextAll = append(nextAll, r.nextLat...)
		doneAll = append(doneAll, r.doneLat...)
		for i := range r.nextLat {
			if i < len(r.doneLat) {
				iterAll = append(iterAll, r.nextLat[i]+r.doneLat[i])
			}
		}
	}
	rep.NextP50, rep.NextP99 = inprocQuantiles(nextAll)
	rep.DoneP50, rep.DoneP99 = inprocQuantiles(doneAll)
	rep.IterP50, rep.IterP99 = inprocQuantiles(iterAll)
	rep.Decisions = len(nextAll) + len(doneAll)
	if elapsed > 0 {
		rep.Throughput = float64(rep.Iterations) / elapsed.Seconds()
		rep.DecisionsPerSec = float64(rep.Decisions) / elapsed.Seconds()
	}
	fmt.Fprintln(os.Stderr, rep.Summary())
	info := srv.Broker().Info()
	if info.CommittedJ+info.ConsumedJ > info.GlobalJ*1.0001 {
		fail(fmt.Errorf("loadgen: broker over-committed: committed %.1f + consumed %.1f > global %.1f",
			info.CommittedJ, info.ConsumedJ, info.GlobalJ))
	}
	for _, line := range rep.BenchLines("Inproc") {
		fmt.Println(line)
	}
	if check > 0 {
		if err := rep.Check(check); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "check passed: every tenant within %.0f%% of its grant\n", check*100)
	} else if rep.Errors > 0 {
		fail(fmt.Errorf("loadgen: %d tenants reported errors", rep.Errors))
	}
}

// inprocQuantiles mirrors load's estimator (metrics.Summarize) for the
// in-process mode's latency samples.
func inprocQuantiles(d []time.Duration) (p50, p99 time.Duration) {
	if len(d) == 0 {
		return 0, 0
	}
	xs := make([]float64, len(d))
	for i, v := range d {
		xs[i] = float64(v)
	}
	s := metrics.Summarize(xs)
	return time.Duration(s.P50), time.Duration(s.P99)
}

// autoBudget sizes the selfhosted global pool so every factor-priced
// tenant fits under the broker's reserve, with a small admission margin.
func autoBudget(cfg load.Config) float64 {
	total := 0.0
	for i := 0; i < cfg.Tenants; i++ {
		app := cfg.Apps[i%len(cfg.Apps)]
		tb, err := jouleguard.NewTestbed(app, cfg.Platform)
		if err != nil {
			fail(err)
		}
		per := tb.DefaultEnergy * float64(cfg.Iterations)
		if cfg.Factor > 0 {
			b, err := tb.Budget(cfg.Factor, cfg.Iterations)
			if err != nil {
				fail(err)
			}
			per = b
		}
		total += per
	}
	if cfg.Adversaries > 0 {
		// An adversary claims AdversaryWeight honest tenants' worth, so
		// scale the pool by the claimed total or admission (which is
		// claim-blind while the pool fits) would reject the honest
		// tenants instead of letting the QoS ladder do its job.
		honest := float64(cfg.Tenants - cfg.Adversaries)
		adv := float64(cfg.Adversaries)
		w := cfg.AdversaryWeight
		if w <= 0 {
			w = 10
		}
		total *= (honest + adv*w) / float64(cfg.Tenants)
	}
	return total * server.DefaultReserve * 1.02
}

// selfhost runs the daemon in-process over a real localhost listener and
// can replace it mid-run (drain, snapshot, restore) while clients retry
// through the outage.
type selfhost struct {
	addr    string
	snap    string
	tel     *telemetry.Telemetry
	globalJ float64
	qos     qos.Config
	srv     *server.Server
	httpSrv *http.Server
	rig     *meterRig
}

func startSelfhost(globalJ float64, mo *meterOpts, qcfg qos.Config) (*selfhost, error) {
	dir, err := os.MkdirTemp("", "loadgen-snap-")
	if err != nil {
		return nil, err
	}
	sh := &selfhost{
		snap:    filepath.Join(dir, "jouleguardd.snap"),
		tel:     telemetry.New(4096),
		globalJ: globalJ,
		qos:     qcfg,
	}
	if mo != nil {
		sh.rig, err = buildMeterRig(sh.tel, mo)
		if err != nil {
			return nil, err
		}
	}
	srv, err := server.New(sh.serverConfig())
	if err != nil {
		return nil, err
	}
	sh.srv = srv
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	sh.addr = ln.Addr().String()
	sh.serve(ln)
	return sh, nil
}

// serverConfig is the daemon configuration both the initial server and
// every restart rebuild share; a meter rig survives restarts (real
// hardware does not forget its counters when the daemon bounces).
func (sh *selfhost) serverConfig() server.Config {
	cfg := server.Config{GlobalBudgetJ: sh.globalJ, Telemetry: sh.tel, QoS: sh.qos}
	if sh.qos.Enabled {
		// The ladder climbs one rung per EscalateAfter observe ticks; at
		// the daemon's default 1 s sweep an adversarial smoke run would
		// finish before enforcement engages. Tick fast enough that the
		// whole escalation arc fits inside the run.
		cfg.SweepInterval = 25 * time.Millisecond
	}
	if sh.rig != nil {
		cfg.Meter = sh.rig.svc
		cfg.MeterStimulus = sh.rig.stimulus
	}
	return cfg
}

func (sh *selfhost) baseURL() string { return "http://" + sh.addr }

func (sh *selfhost) serve(ln net.Listener) {
	sh.httpSrv = &http.Server{Handler: sh.srv.Handler()}
	go func(h *http.Server) { _ = h.Serve(ln) }(sh.httpSrv)
}

// restartWhen polls the daemon's own wire surface until the fleet has
// completed n iterations, then replaces the daemon: drain in-flight
// brackets, snapshot, tear the listener down, restore a fresh server on
// the same address.
func (sh *selfhost) restartWhen(n int) {
	for {
		time.Sleep(10 * time.Millisecond)
		done, err := sh.fleetIterations()
		if err != nil {
			continue
		}
		if done >= n {
			break
		}
	}
	fmt.Fprintf(os.Stderr, "restart trigger: fleet passed %d iterations; draining + snapshotting daemon\n", n)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sh.srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "drain: %v\n", err)
	}
	if err := sh.srv.SnapshotFile(sh.snap); err != nil {
		fail(fmt.Errorf("snapshot: %w", err))
	}
	_ = sh.httpSrv.Close() // drop the listener; clients enter retry

	srv, err := server.New(sh.serverConfig())
	if err != nil {
		fail(err)
	}
	if _, err := srv.RestoreFile(sh.snap); err != nil {
		fail(fmt.Errorf("restore: %w", err))
	}
	sh.srv = srv
	// Rebind the same address; the old listener may linger briefly.
	var ln net.Listener
	for i := 0; i < 100; i++ {
		ln, err = net.Listen("tcp", sh.addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		fail(fmt.Errorf("rebinding %s: %w", sh.addr, err))
	}
	sh.serve(ln)
	fmt.Fprintf(os.Stderr, "daemon restarted on %s from %s\n", sh.addr, sh.snap)
}

// fleetIterations sums completed iterations across live sessions via the
// daemon's list endpoint.
func (sh *selfhost) fleetIterations() (int, error) {
	resp, err := http.Get(sh.baseURL() + wire.BasePath)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var list wire.ListResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return 0, err
	}
	total := 0
	for _, s := range list.Sessions {
		total += s.IterDone
	}
	return total, nil
}

// verifyBroker asserts the daemon-side global invariant after the run:
// the broker never over-committed, and the fleet's total spend stayed
// within the global pool.
func (sh *selfhost) verifyBroker(rep *load.Report) error {
	info := sh.srv.Broker().Info()
	if info.CommittedJ+info.ConsumedJ > info.GlobalJ*1.0001 {
		return fmt.Errorf("loadgen: broker over-committed: committed %.1f + consumed %.1f > global %.1f",
			info.CommittedJ, info.ConsumedJ, info.GlobalJ)
	}
	if rep.TotalSpentJ > info.GlobalJ {
		return fmt.Errorf("loadgen: fleet spent %.1f J of a %.1f J global budget", rep.TotalSpentJ, info.GlobalJ)
	}
	fmt.Fprintf(os.Stderr, "broker ledger: global %.0f J, consumed %.1f J, committed %.1f J, %d admitted / %d rejected\n",
		info.GlobalJ, info.ConsumedJ, info.CommittedJ, info.Admitted, info.Rejected)
	return nil
}

func (sh *selfhost) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = sh.srv.Shutdown(ctx)
	_ = sh.httpSrv.Close()
	os.RemoveAll(filepath.Dir(sh.snap))
}

// meterOpts sizes the selfhosted measurement stack from the workload:
// the gate's model power and the injected spike magnitude both scale
// with the app so the faults are implausible at any governed setting.
type meterOpts struct {
	modelW float64 // gate fallback power (the app's default draw)
	spikeJ float64 // additive counter-spike magnitude when inject is set
	inject bool
	seed   int64
}

// meterRig is the selfhosted daemon's measurement stack in -meter=sim
// mode: a calibrated simulated meter on a virtual clock that the
// stimulus path advances by each settled iteration's reported duration.
// Wire iterations finish in microseconds of wall time but represent
// seconds of modeled work; on the virtual timeline the meter sees
// physically plausible watts, so the gate judges the injected faults —
// not the load generator's speed.
type meterRig struct {
	vc     *measure.VirtualClock
	sim    *measure.SimMeter
	svc    *measure.Service
	inject bool
}

func buildMeterRig(tel *telemetry.Telemetry, mo *meterOpts) (*meterRig, error) {
	vc := measure.NewVirtualClock()
	sim := measure.NewSimMeter(measure.SimConfig{IdleW: 2, Seed: mo.seed, Now: vc.Now})
	cal, err := measure.Calibrate(sim, measure.CalibrationConfig{Sleep: vc.Sleep, Now: vc.Now})
	if err != nil {
		return nil, err
	}
	// No ModelPower: rejected samples are debited at the accepted-window
	// median, which tracks the governed operating point. A fixed model
	// at the app's default draw would over-debit every rejection ~2x
	// once the governor has throttled the tenants below default.
	svc := measure.NewService(measure.ServiceConfig{
		Meter:    sim,
		Gate:     guard.Config{MaxPower: mo.modelW * 16},
		Baseline: cal,
		Now:      vc.Now,
		Tel:      tel,
	})
	r := &meterRig{vc: vc, sim: sim, svc: svc, inject: mo.inject}
	if mo.inject {
		// Rare additive counter spikes, installed after calibration so the
		// baseline is honest. Each one must surface as a gate rejection
		// (the spiked delta, then its negative echo) debited at the model
		// estimate — never at the corrupted reading.
		sim.SetFault(faults.NewSpike(0.03, 1, mo.spikeJ, mo.seed+99))
	}
	fmt.Fprintf(os.Stderr, "meter: %s backend, idle baseline %.2f W (calibration cv %.4f over %d trials)\n",
		cal.Backend, cal.BaselineW, cal.CV, cal.Trials)
	return r, nil
}

// stimulus is the server's MeterStimulus hook: the client's reported
// per-iteration energy becomes physical work in the fake counter, and
// the virtual clock advances by the iteration's reported duration.
func (r *meterRig) stimulus(joules, durS float64) {
	r.sim.Deposit(joules)
	r.vc.Advance(durS)
}

// report prints the measurement service's post-run status, asserts the
// run's meter invariants, and emits the calibration and gate tallies as
// bench lines for BENCH_experiments.json.
func (r *meterRig) report() error {
	st := r.svc.Status()
	quarantined := ""
	if st.Quarantined {
		quarantined = " QUARANTINED"
	}
	fmt.Fprintf(os.Stderr, "meter ledger: %d samples, gate %d accepted / %d rejected, %d quarantines%s, "+
		"trusted %.1f J (raw %.1f J), attributed %.1f J, unattributed %.1f J\n",
		st.Samples, st.GateAccepted, st.GateRejected, st.Quarantines, quarantined,
		st.TrustedJ, st.RawJ, st.AttributedJ, st.UnattributedJ)
	if st.OpenWindows != 0 {
		return fmt.Errorf("loadgen: %d attribution windows left open after the run", st.OpenWindows)
	}
	if r.inject && st.GateRejected == 0 {
		return fmt.Errorf("loadgen: counter faults were injected but the plausibility gate rejected nothing")
	}
	if !r.inject && st.Quarantined {
		return fmt.Errorf("loadgen: meter quarantined with no faults injected")
	}
	fmt.Printf("BenchmarkMeterCalibrationTrials\t1\t%d trials\n", st.CalibrationTrials)
	fmt.Printf("BenchmarkMeterCalibrationBaseline\t1\t%.1f mW\n", st.BaselineW*1000)
	fmt.Printf("BenchmarkMeterCalibrationCV\t1\t%.1f ppm\n", st.CalibrationCV*1e6)
	fmt.Printf("BenchmarkMeterGateRejected\t%d\t%d rejects\n", st.Samples, st.GateRejected)
	return nil
}

// selfcluster runs a fleet coordinator plus N member daemons in-process,
// each on its own localhost listener with real heartbeat loops, so one
// race-detector run covers coordinator, members, servers and clients
// together. With a standby it also runs a follower coordinator tailing
// the primary's WAL, ready for an epoch-fenced promotion mid-run.
type selfcluster struct {
	fleetJ  float64
	coord   *cluster.Coordinator
	httpSrv *http.Server
	addr    string

	standby   *cluster.Standby
	sbHTTPSrv *http.Server
	sbAddr    string
	coordDead bool
	nodes     []*clusterNode
}

type clusterNode struct {
	name    string
	addr    string
	member  *cluster.Member
	httpSrv *http.Server
	killed  bool
}

func startSelfcluster(fleetJ float64, n int, withStandby bool) (*selfcluster, error) {
	if n <= 0 {
		n = 3
	}
	coord, err := cluster.New(cluster.Config{
		FleetBudgetJ: fleetJ,
		LeaseTTL:     800 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	sc := &selfcluster{fleetJ: fleetJ, coord: coord}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	sc.addr = ln.Addr().String()
	sc.httpSrv = &http.Server{Handler: coord.Handler()}
	go func(h *http.Server) { _ = h.Serve(ln) }(sc.httpSrv)

	var standbys []string
	if withStandby {
		follower, err := cluster.New(cluster.Config{
			FleetBudgetJ: fleetJ,
			LeaseTTL:     800 * time.Millisecond,
			Follower:     true,
		})
		if err != nil {
			return nil, err
		}
		sc.standby, err = cluster.NewStandby(follower, cluster.StandbyConfig{
			PrimaryURL: sc.baseURL(),
			PollEvery:  50 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		sln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		sc.sbAddr = sln.Addr().String()
		sc.sbHTTPSrv = &http.Server{Handler: follower.Handler()}
		go func(h *http.Server) { _ = h.Serve(sln) }(sc.sbHTTPSrv)
		sc.standby.Run()
		standbys = []string{sc.standbyURL()}
	}

	for i := 0; i < n; i++ {
		// The near-zero seed is replaced by the first lease: the lease is
		// the member's only budget source.
		srv, err := server.New(server.Config{GlobalBudgetJ: cluster.MemberSeedBudgetJ})
		if err != nil {
			return nil, err
		}
		nln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		nd := &clusterNode{name: fmt.Sprintf("node%d", i), addr: nln.Addr().String()}
		nd.member, err = cluster.NewMember(cluster.MemberConfig{
			CoordinatorURL:  sc.baseURL(),
			CoordinatorURLs: standbys,
			Node:            nd.name,
			Advertise:       "http://" + nln.Addr().String(),
			Server:          srv,
		})
		if err != nil {
			return nil, err
		}
		nd.httpSrv = &http.Server{Handler: nd.member.Handler()}
		go func(h *http.Server) { _ = h.Serve(nln) }(nd.httpSrv)
		if err := nd.member.Run(); err != nil {
			return nil, fmt.Errorf("node %s join: %w", nd.name, err)
		}
		sc.nodes = append(sc.nodes, nd)
	}
	return sc, nil
}

func (sc *selfcluster) baseURL() string    { return "http://" + sc.addr }
func (sc *selfcluster) standbyURL() string { return "http://" + sc.sbAddr }

// nodeURLs lists every member daemon's base URL, killed nodes included
// (callers probing them just see the connection refused).
func (sc *selfcluster) nodeURLs() []string {
	urls := make([]string, len(sc.nodes))
	for i, nd := range sc.nodes {
		urls[i] = "http://" + nd.addr
	}
	return urls
}

// servingURL returns the URL of the coordinator currently holding the
// ledger (the promoted standby after a coordinator kill).
func (sc *selfcluster) servingURL() string {
	if sc.standby != nil && sc.standby.Promoted() {
		return sc.standbyURL()
	}
	return sc.baseURL()
}

// serving returns the coordinator currently holding the ledger: the
// promoted standby after a coordinator kill, the primary otherwise.
func (sc *selfcluster) serving() *cluster.Coordinator {
	if sc.standby != nil && sc.standby.Promoted() {
		return sc.standby.Coordinator()
	}
	return sc.coord
}

// killCoordinator kills the primary coordinator (listener closed, WAL
// closed) and promotes the standby: the fencing epoch bumps, every live
// lease is escrowed pending rejoin reconciliation, and members and
// clients rotate to the standby's address.
func (sc *selfcluster) killCoordinator() {
	if sc.standby == nil || sc.coordDead {
		return
	}
	sc.coordDead = true
	fmt.Fprintf(os.Stderr, "kill trigger: stopping primary coordinator on %s\n", sc.addr)
	_ = sc.httpSrv.Close()
	sc.coord.Stop()
	fence := sc.standby.Promote()
	fmt.Fprintf(os.Stderr, "standby on %s promoted at fence %d\n", sc.sbAddr, fence)
}

// killOne kills the live node owning the most active sessions: stop its
// heartbeats (the lease is left to expire) and close its listener so
// in-flight clients see the outage immediately.
func (sc *selfcluster) killOne() {
	info := sc.coord.Info(true)
	owned := map[string]int{}
	for _, s := range info.Sessions {
		if !s.Complete {
			owned[s.Node]++
		}
	}
	var victim *clusterNode
	for _, nd := range sc.nodes {
		if nd.killed {
			continue
		}
		if victim == nil || owned[nd.name] > owned[victim.name] {
			victim = nd
		}
	}
	if victim == nil {
		return
	}
	victim.killed = true
	fmt.Fprintf(os.Stderr, "kill trigger: stopping %s (owns %d active sessions)\n",
		victim.name, owned[victim.name])
	victim.member.Stop()
	_ = victim.httpSrv.Close()
}

// verify asserts the coordinator-side fleet invariant after the run,
// against whichever coordinator holds the ledger after any promotion.
func (sc *selfcluster) verify(rep *load.Report, killAt, killCoordAt int) error {
	info := sc.serving().Info(false)
	if info.InvariantViolations != 0 {
		return fmt.Errorf("loadgen: %d fleet-ledger invariant violations", info.InvariantViolations)
	}
	if info.LeasedUnspentJ+info.ConsumedJ > info.FleetJ*1.0001 {
		return fmt.Errorf("loadgen: fleet over-leased: unspent %.1f + consumed %.1f > budget %.1f",
			info.LeasedUnspentJ, info.ConsumedJ, info.FleetJ)
	}
	if rep.TotalSpentJ > info.FleetJ {
		return fmt.Errorf("loadgen: fleet spent %.1f J of a %.1f J budget", rep.TotalSpentJ, info.FleetJ)
	}
	if killAt > 0 && rep.Failovers == 0 {
		return fmt.Errorf("loadgen: a node was killed mid-run but no client reported a failover")
	}
	if killCoordAt > 0 {
		if info.Role != "primary" || info.Fence == 0 {
			return fmt.Errorf("loadgen: coordinator was killed but the survivor reports role %q fence %d",
				info.Role, info.Fence)
		}
		if killAt > 0 && rep.CoordFailovers == 0 {
			return fmt.Errorf("loadgen: node failover ran after a coordinator kill but no client rotated coordinators")
		}
	}
	fmt.Fprintf(os.Stderr, "fleet ledger: budget %.0f J, consumed %.1f J, unspent leases %.1f J, "+
		"%d nodes live, %d reassignments, fence %d; clients rode through %d failovers (%d coordinator rotations)\n",
		info.FleetJ, info.ConsumedJ, info.LeasedUnspentJ, info.NodesLive, info.Reassignments, info.Fence,
		rep.Failovers, rep.CoordFailovers)
	return nil
}

func (sc *selfcluster) stop() {
	for _, nd := range sc.nodes {
		if nd.killed {
			continue
		}
		nd.member.Stop()
		_ = nd.httpSrv.Close()
	}
	if !sc.coordDead {
		sc.coord.Stop()
		_ = sc.httpSrv.Close()
	}
	if sc.standby != nil {
		sc.standby.Stop()
		sc.standby.Coordinator().Stop()
		_ = sc.sbHTTPSrv.Close()
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
