// Command jgtop is a terminal view of a running JouleGuard fleet: it
// polls the coordinator's introspection surfaces — /v1/cluster?detail=1
// for the ledger and placements, /healthz for role and fencing epoch,
// /v1/cluster/metrics for the rolled-up burn rates — and renders nodes,
// leases, tenant burn and failovers as one refreshing screen.
//
//	jgtop -coordinator http://coord:7077            # refresh every 2s
//	jgtop -coordinator http://coord:7077 -once      # one frame to stdout
//
// jgtop is read-only and fleet-scoped: everything it shows comes from
// the two coordinator endpoints plus the metrics rollup, so it works
// identically against a promoted standby.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"jouleguard/internal/wire"
)

func main() {
	coord := flag.String("coordinator", "http://127.0.0.1:7077", "coordinator base URL (primary or promoted standby)")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	once := flag.Bool("once", false, "render one frame to stdout and exit (no screen clearing)")
	flag.Parse()

	base := strings.TrimRight(*coord, "/")
	httpc := &http.Client{Timeout: 3 * time.Second}
	for {
		frame, err := render(httpc, base)
		if err != nil {
			frame = fmt.Sprintf("jgtop: %v\n", err)
			if *once {
				fmt.Fprint(os.Stderr, frame)
				os.Exit(1)
			}
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear + home: one repainted screen per poll
		}
		fmt.Print(frame)
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// health is the JSON /healthz body a coordinator with a role provider
// serves. Meter is present only when the polled process runs a
// measurement service (a daemon in -meter=sim/rapl mode).
type health struct {
	Role    string     `json:"role"`
	Fence   int64      `json:"fence"`
	UptimeS float64    `json:"uptime_seconds"`
	Meter   *meterInfo `json:"meter"`
}

// meterInfo mirrors telemetry.MeterInfo: active backend, last
// calibration summary and the plausibility gate's running tallies.
type meterInfo struct {
	Backend      string  `json:"backend"`
	BaselineW    float64 `json:"baseline_watts"`
	CV           float64 `json:"calibration_cv"`
	Trials       int     `json:"calibration_trials"`
	GateRejected int     `json:"gate_rejected"`
	Quarantined  bool    `json:"quarantined"`
}

// render builds one full screen from the coordinator's surfaces.
func render(httpc *http.Client, base string) (string, error) {
	var info wire.ClusterInfo
	if err := getJSON(httpc, base+wire.ClusterBasePath+"?detail=1", &info); err != nil {
		return "", fmt.Errorf("cluster info: %w", err)
	}
	var h health
	_ = getJSON(httpc, base+"/healthz", &h) // best-effort; info carries role too
	metrics := fetchMetrics(httpc, base+wire.ClusterBasePath+"/metrics")

	var b strings.Builder
	role := info.Role
	if role == "" {
		role = h.Role
	}
	fmt.Fprintf(&b, "jgtop — %s — role %s, fence %d", base, role, info.Fence)
	if h.UptimeS > 0 {
		fmt.Fprintf(&b, ", up %s", (time.Duration(h.UptimeS) * time.Second).String())
	}
	fmt.Fprintf(&b, " — %s\n", time.Now().Format("15:04:05"))
	if m := h.Meter; m != nil {
		quarantine := ""
		if m.Quarantined {
			quarantine = "   METER QUARANTINED"
		}
		fmt.Fprintf(&b, "meter   %s backend   baseline %.2f W   calibration cv %.4f (%d trials)   gate rejected %d%s\n",
			m.Backend, m.BaselineW, m.CV, m.Trials, m.GateRejected, quarantine)
	}
	b.WriteByte('\n')

	fmt.Fprintf(&b, "fleet   budget %9.1f J   pool %9.1f J   reserve %8.1f J   leased %9.1f J   consumed %9.1f J\n",
		info.FleetJ, info.PoolJ, info.ReserveJ, info.LeasedUnspentJ, info.ConsumedJ)
	fmt.Fprintf(&b, "        burn %6.2f W   decisions %s   iterations %s   %d nodes live   %d reassignments   %d invariant violations\n\n",
		metrics.val("jouleguard_fleet_burn_watts", ""),
		thousands(metrics.val("jouleguard_fleet_decisions_total", "")),
		thousands(metrics.val("jouleguard_fleet_iterations_total", "")),
		info.NodesLive, info.Reassignments, info.InvariantViolations)

	fmt.Fprintf(&b, "%-12s %-5s %6s %12s %12s %12s %10s %6s %9s\n",
		"NODE", "LIVE", "EPOCH", "LEASE J", "ACKED J", "UNSPENT J", "ESCROW J", "SESS", "FIDELITY")
	for _, n := range info.Nodes {
		live := "yes"
		if !n.Live {
			live = "DEAD"
		}
		fmt.Fprintf(&b, "%-12s %-5s %6d %12.1f %12.1f %12.1f %10.1f %6d %8.1f%%\n",
			n.Node, live, n.Epoch, n.LeaseJ, n.AckedJ, n.UnspentJ, n.EscrowJ, n.Sessions, n.Fidelity*100)
	}

	tenants := metrics.series("jouleguard_fleet_tenant_burn_watts")
	if len(tenants) > 0 {
		spent := metrics.series("jouleguard_fleet_tenant_spent_joules")
		tiers := metrics.series("jouleguard_fleet_tenant_tier")
		ladders := metrics.series("jouleguard_fleet_tenant_ladder_state")
		fmt.Fprintf(&b, "\n%-16s %-12s %-10s %10s %14s\n", "TENANT", "TIER", "LADDER", "BURN W", "SPENT J")
		for _, t := range tenants {
			fmt.Fprintf(&b, "%-16s %-12s %-10s %10.2f %14.1f\n",
				t.label, tierName(lookup(tiers, t.label)), ladderName(lookup(ladders, t.label)),
				t.value, lookup(spent, t.label))
		}
	}

	if len(info.Sessions) > 0 {
		fmt.Fprintf(&b, "\n%-16s %-12s %6s %12s %12s %s\n", "SESSION KEY", "NODE", "DONE", "GRANT J", "SPENT J", "STATE")
		show := info.Sessions
		const maxRows = 20
		if len(show) > maxRows {
			show = show[:maxRows]
		}
		for _, s := range show {
			state := "live"
			if s.Complete {
				state = "complete"
			}
			fmt.Fprintf(&b, "%-16s %-12s %6d %12.1f %12.1f %s\n", s.Key, s.Node, s.Done, s.GrantJ, s.SpentJ, state)
		}
		if len(info.Sessions) > maxRows {
			fmt.Fprintf(&b, "... and %d more sessions\n", len(info.Sessions)-maxRows)
		}
	}
	return b.String(), nil
}

func getJSON(httpc *http.Client, url string, v any) error {
	resp, err := httpc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// sample is one parsed exposition point: the first label value (the
// rollup's per-tenant series carry exactly one label) and the sample.
type sample struct {
	label string
	value float64
}

// promText is a minimal parse of the Prometheus text exposition — just
// enough to read the rollup's gauges and counters.
type promText map[string][]sample

// fetchMetrics scrapes and parses one exposition page (empty on error:
// jgtop degrades to the ledger view if the rollup is unreachable).
func fetchMetrics(httpc *http.Client, url string) promText {
	out := promText{}
	resp, err := httpc.Get(url)
	if err != nil {
		return out
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out
	}
	var body strings.Builder
	if _, err := copyBounded(&body, resp); err != nil {
		return out
	}
	for _, line := range strings.Split(body.String(), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		name, label := line[:sp], ""
		if i := strings.IndexByte(name, '{'); i >= 0 {
			// One-label series: take the first quoted value.
			if j := strings.IndexByte(name, '"'); j >= 0 {
				if k := strings.IndexByte(name[j+1:], '"'); k >= 0 {
					label = name[j+1 : j+1+k]
				}
			}
			name = name[:i]
		}
		out[name] = append(out[name], sample{label, v})
	}
	return out
}

func copyBounded(dst *strings.Builder, resp *http.Response) (int64, error) {
	buf := make([]byte, 32<<10)
	var n int64
	for n < 4<<20 {
		m, err := resp.Body.Read(buf)
		dst.Write(buf[:m])
		n += int64(m)
		if err != nil {
			return n, nil
		}
	}
	return n, nil
}

// val returns the sample with the given label ("" = unlabeled), 0 when
// absent.
func (p promText) val(name, label string) float64 {
	for _, s := range p[name] {
		if s.label == label {
			return s.value
		}
	}
	return 0
}

// series returns a metric's samples sorted by label.
func (p promText) series(name string) []sample {
	out := append([]sample(nil), p[name]...)
	sort.Slice(out, func(i, j int) bool { return out[i].label < out[j].label })
	return out
}

func lookup(ss []sample, label string) float64 {
	for _, s := range ss {
		if s.label == label {
			return s.value
		}
	}
	return 0
}

// tierName and ladderName decode the rollup's numeric QoS gauges
// (jouleguard_fleet_tenant_tier / _ladder_state) into the names the
// qos package assigns them.
func tierName(v float64) string {
	switch int(v) {
	case 1:
		return "best-effort"
	case 2:
		return "guaranteed"
	}
	return "standard"
}

func ladderName(v float64) string {
	switch int(v) {
	case 1:
		return "throttled"
	case 2:
		return "degraded"
	case 3:
		return "suspended"
	case 4:
		return "killed"
	}
	return "ok"
}

// thousands renders a counter with thousands separators.
func thousands(v float64) string {
	s := strconv.FormatFloat(v, 'f', 0, 64)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	return b.String()
}
