// Command sweep reproduces Figs. 5 and 6 (Secs. 5.3-5.4): JouleGuard's
// relative error against the energy goal (Eqn 12) and effective accuracy
// against the oracle (Eqn 13), for every benchmark on every platform across
// the paper's nine energy-reduction factors.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"jouleguard/internal/experiments"
	"jouleguard/internal/metrics"
)

func main() {
	scale := flag.Float64("scale", 1.0, "run-length scale (1.0 = full experiment)")
	what := flag.String("what", "both", "error | accuracy | both")
	csv := flag.Bool("csv", false, "emit CSV rows")
	flag.Parse()

	cells, err := experiments.Sweep(nil, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sort.Slice(cells, func(a, b int) bool {
		ca, cb := cells[a], cells[b]
		if ca.Platform != cb.Platform {
			return ca.Platform < cb.Platform
		}
		if ca.App != cb.App {
			return ca.App < cb.App
		}
		return ca.Factor < cb.Factor
	})
	if *csv {
		fmt.Println("platform,app,factor,rel_error_pct,effective_accuracy,mean_accuracy,oracle_accuracy")
		for _, c := range cells {
			fmt.Printf("%s,%s,%.2f,%.3f,%.4f,%.4f,%.4f\n",
				c.Platform, c.App, c.Factor, c.RelativeError, c.EffectiveAccuracy, c.MeanAccuracy, c.OracleAccuracy)
		}
		return
	}
	if *what == "error" || *what == "both" {
		fmt.Println("Fig. 5 — relative error (%) by platform / app / factor")
		printGrid(cells, func(c experiments.SweepCell) float64 { return c.RelativeError })
	}
	if *what == "accuracy" || *what == "both" {
		fmt.Println("\nFig. 6 — effective accuracy by platform / app / factor")
		printGrid(cells, func(c experiments.SweepCell) float64 { return c.EffectiveAccuracy })
	}
	var errs, accs []float64
	for _, c := range cells {
		errs = append(errs, c.RelativeError)
		accs = append(accs, c.EffectiveAccuracy)
	}
	es, as := metrics.Summarize(errs), metrics.Summarize(accs)
	fmt.Printf("\nsummary over %d feasible cells: rel err mean %.2f%% (p90 %.2f%%), eff acc mean %.3f (p10 via min %.3f)\n",
		len(cells), es.Mean, es.P90, as.Mean, as.Min)
}

func printGrid(cells []experiments.SweepCell, val func(experiments.SweepCell) float64) {
	// Collect axes.
	type key struct{ plat, app string }
	factors := map[float64]bool{}
	rows := map[key]map[float64]float64{}
	for _, c := range cells {
		factors[c.Factor] = true
		k := key{c.Platform, c.App}
		if rows[k] == nil {
			rows[k] = map[float64]float64{}
		}
		rows[k][c.Factor] = val(c)
	}
	var fs []float64
	for f := range factors {
		fs = append(fs, f)
	}
	sort.Float64s(fs)
	var keys []key
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].plat != keys[b].plat {
			return keys[a].plat < keys[b].plat
		}
		return keys[a].app < keys[b].app
	})
	fmt.Printf("%-8s %-14s", "platform", "app")
	for _, f := range fs {
		fmt.Printf(" %6.2fx", f)
	}
	fmt.Println()
	for _, k := range keys {
		fmt.Printf("%-8s %-14s", k.plat, k.app)
		for _, f := range fs {
			if v, ok := rows[k][f]; ok {
				fmt.Printf(" %7.2f", v)
			} else {
				fmt.Printf(" %7s", "-") // infeasible: no bar, as in the paper
			}
		}
		fmt.Println()
	}
}
