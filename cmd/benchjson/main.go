// Command benchjson converts `go test -bench` text output on stdin into a
// JSON timing snapshot on stdout, so `make bench` can leave a
// machine-readable artefact (BENCH_experiments.json) that CI or a later
// session can diff against.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line, e.g.
//
//	BenchmarkRate-4    93416    12.3 ns/op    0 B/op    0 allocs/op
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

func main() {
	var results []Result
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Mirror the stream so the human-readable output is not swallowed.
		fmt.Fprintln(os.Stderr, line)
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		iters, err1 := strconv.ParseInt(fields[1], 10, 64)
		ns, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		r := Result{Name: fields[0], Package: pkg, Iterations: iters, NsPerOp: ns}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
