// Command benchjson converts `go test -bench` text output on stdin into a
// JSON timing snapshot on stdout, so `make bench` can leave a
// machine-readable artefact (BENCH_experiments.json) that CI or a later
// session can diff against.
//
// With -merge FILE, results from an existing snapshot are carried over:
// entries parsed from stdin replace same-name entries in FILE, everything
// else is kept. This lets separate smoke runs (e.g. the single-daemon and
// the cluster loadgen passes) fold into one artefact without clobbering
// each other.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line, e.g.
//
//	BenchmarkRate-4    93416    12.3 ns/op    0 B/op    0 allocs/op
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

func main() {
	merge := flag.String("merge", "", "existing snapshot whose entries are kept unless replaced by a same-name result from stdin")
	flag.Parse()

	var results []Result
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Mirror the stream so the human-readable output is not swallowed.
		fmt.Fprintln(os.Stderr, line)
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		iters, err1 := strconv.ParseInt(fields[1], 10, 64)
		ns, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		r := Result{Name: fields[0], Package: pkg, Iterations: iters, NsPerOp: ns}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *merge != "" {
		merged, err := mergeSnapshot(*merge, results)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		results = merged
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// mergeSnapshot keeps every entry of the snapshot at path whose name was
// not re-measured on stdin, preserving file order, with fresh results
// appended. A missing file is not an error: the first smoke run of a
// clean checkout has nothing to merge with.
func mergeSnapshot(path string, fresh []Result) ([]Result, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return fresh, nil
	}
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	var old []Result
	if err := json.Unmarshal(data, &old); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	replaced := make(map[string]bool, len(fresh))
	for _, r := range fresh {
		replaced[r.Name] = true
	}
	merged := make([]Result, 0, len(old)+len(fresh))
	for _, r := range old {
		if !replaced[r.Name] {
			merged = append(merged, r)
		}
	}
	return append(merged, fresh...), nil
}
