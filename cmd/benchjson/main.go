// Command benchjson converts `go test -bench` text output on stdin into a
// JSON timing snapshot on stdout, so `make bench` can leave a
// machine-readable artefact (BENCH_experiments.json) that CI or a later
// session can diff against.
//
// With -merge FILE, results from an existing snapshot are carried over:
// entries parsed from stdin replace same-name entries in FILE, everything
// else is kept. This lets separate smoke runs (e.g. the single-daemon and
// the cluster loadgen passes) fold into one artefact without clobbering
// each other.
//
// With -compare FILE, the fresh results are checked against a previous
// snapshot instead of merged: a pinned benchmark that got more than
// -threshold slower (ns/op up, or a rate unit like decisions/s down), or
// that allocates where it previously did not, fails the run with a
// non-zero exit. -pin restricts the comparison to names matching a
// regular expression; the default pins everything present in both
// snapshots. `make bench-check` wires this up as the perf regression
// gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line, e.g.
//
//	BenchmarkRate-4    93416    12.3 ns/op    0 B/op    0 allocs/op
//
// BytesPerOp/AllocsPerOp are pointers so that a measured zero — the
// zero-allocation guarantee this artefact exists to pin — is recorded
// explicitly, while benchmarks run without -benchmem stay absent.
type Result struct {
	Name        string             `json:"name"`
	Package     string             `json:"package,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"` // custom units, e.g. "decisions/s"
}

func main() {
	merge := flag.String("merge", "", "existing snapshot whose entries are kept unless replaced by a same-name result from stdin")
	compare := flag.String("compare", "", "previous snapshot to diff the fresh results against; regressions exit non-zero")
	pin := flag.String("pin", "", "with -compare: only benchmarks matching this regexp are gated (default: all common names)")
	threshold := flag.Float64("threshold", 0.20, "with -compare: fractional slowdown tolerated before failing")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if *compare != "" {
		if err := compareSnapshots(*compare, results, *pin, *threshold); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "benchjson: no pinned regressions")
		return
	}
	if *merge != "" {
		merged, err := mergeSnapshot(*merge, results)
		if err != nil {
			fatal(err)
		}
		results = merged
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse reads `go test -bench` text, mirroring every line to stderr so
// the human-readable stream is not swallowed when benchjson sits at the
// end of a pipeline.
func parse(in *os.File) ([]Result, error) {
	var results []Result
	pkg := ""
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Package: pkg, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				b := int64(v)
				r.BytesPerOp = &b
			case "allocs/op":
				a := int64(v)
				r.AllocsPerOp = &a
			default:
				// Custom testing.B.ReportMetric-style units — the load
				// generator's "decisions/s" throughput among them.
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
		results = append(results, r)
	}
	return results, sc.Err()
}

// mergeSnapshot keeps every entry of the snapshot at path whose name was
// not re-measured on stdin, preserving file order, with fresh results
// appended. A missing file is not an error: the first smoke run of a
// clean checkout has nothing to merge with.
func mergeSnapshot(path string, fresh []Result) ([]Result, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return fresh, nil
	}
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	var old []Result
	if err := json.Unmarshal(data, &old); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	replaced := make(map[string]bool, len(fresh))
	for _, r := range fresh {
		replaced[r.Name] = true
	}
	merged := make([]Result, 0, len(old)+len(fresh))
	for _, r := range old {
		if !replaced[r.Name] {
			merged = append(merged, r)
		}
	}
	return append(merged, fresh...), nil
}

// compareSnapshots gates the fresh results against the snapshot at path.
// A pinned benchmark regresses when:
//   - ns/op grew by more than threshold,
//   - a rate metric (any "<x>/s" unit) shrank by more than threshold, or
//   - allocs/op grew at all — including 0 -> N, which silently voids a
//     zero-allocation guarantee no timing threshold would catch.
//
// Benchmarks present on only one side are reported but never fail the
// gate: machines differ in which smokes they run.
func compareSnapshots(path string, fresh []Result, pin string, threshold float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading %s: %w", path, err)
	}
	var old []Result
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	var pinRe *regexp.Regexp
	if pin != "" {
		if pinRe, err = regexp.Compile(pin); err != nil {
			return fmt.Errorf("bad -pin: %w", err)
		}
	}
	byName := make(map[string]Result, len(old))
	for _, r := range old {
		byName[r.Name] = r
	}
	var regressions []string
	compared := 0
	for _, cur := range fresh {
		prev, ok := byName[cur.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: %s: new benchmark, nothing to compare\n", cur.Name)
			continue
		}
		if pinRe != nil && !pinRe.MatchString(cur.Name) {
			continue
		}
		compared++
		if prev.NsPerOp > 0 && cur.NsPerOp > prev.NsPerOp*(1+threshold) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f ns/op, was %.0f (+%.0f%%)",
				cur.Name, cur.NsPerOp, prev.NsPerOp, 100*(cur.NsPerOp/prev.NsPerOp-1)))
		}
		for unit, was := range prev.Metrics {
			if !strings.HasSuffix(unit, "/s") || was <= 0 {
				continue
			}
			if now, ok := cur.Metrics[unit]; ok && now < was*(1-threshold) {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %.0f %s, was %.0f (-%.0f%%)",
					cur.Name, now, unit, was, 100*(1-now/was)))
			}
		}
		if prev.AllocsPerOp != nil && cur.AllocsPerOp != nil && *cur.AllocsPerOp > *prev.AllocsPerOp {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d allocs/op, was %d", cur.Name, *cur.AllocsPerOp, *prev.AllocsPerOp))
		}
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", r)
		}
		return fmt.Errorf("%d pinned benchmark(s) regressed beyond %.0f%%", len(regressions), threshold*100)
	}
	if compared == 0 {
		return fmt.Errorf("no benchmarks matched the pin %q in both snapshots", pin)
	}
	return nil
}
