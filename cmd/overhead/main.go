// Command overhead reproduces Table 4 (Sec. 5.1): the runtime's decision
// latency per iteration while managing x264 (the benchmark with the largest
// application configuration space), for each platform's system
// configuration space.
package main

import (
	"flag"
	"fmt"
	"os"

	"jouleguard/internal/experiments"
)

func main() {
	rounds := flag.Int("rounds", 1000, "timed runtime iterations")
	flag.Parse()

	rows, err := experiments.Table4(*rounds)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("Table 4 — runtime overhead (Decide+Observe per iteration, managing x264)")
	fmt.Printf("%-8s %12s %14s\n", "platform", "sys configs", "latency (us)")
	for _, r := range rows {
		fmt.Printf("%-8s %12d %14.2f\n", r.Platform, r.SysConfigs, r.LatencyUS)
	}
	fmt.Println("\n(The paper's absolute numbers reflect its embedded CPUs; the shape —")
	fmt.Println(" latency grows with the configuration-space size, and is orders of")
	fmt.Println(" magnitude below any realistic power-feedback period — is the claim.)")
}
