// Command motivation reproduces Fig. 1 (Sec. 2): swish++ on Server chasing
// a 1/3 energy reduction under four approaches — system-only (brute-force
// best configuration), application-only (PowerDial-style), uncoordinated,
// and JouleGuard.
package main

import (
	"flag"
	"fmt"
	"os"

	"jouleguard/internal/experiments"
	"jouleguard/internal/trace"
)

func main() {
	scale := flag.Float64("scale", 1.0, "run-length scale (1.0 = full experiment)")
	charts := flag.Bool("charts", true, "render ASCII energy traces")
	flag.Parse()

	goal, err := experiments.Fig1Goal()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rows, err := experiments.Fig1(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("Fig. 1 — meeting an energy goal for the swish++ search engine (Server)")
	fmt.Printf("goal: %.4f J per query batch (1/1.5 of default)\n\n", goal)
	fmt.Printf("%-18s %14s %14s %13s\n", "approach", "energy/iter(J)", "results(%)", "oscillation")
	for _, r := range rows {
		fmt.Printf("%-18s %14.4f %14.1f %13.3f\n", r.Approach, r.EnergyPerIter, r.ResultsPct, r.OscillationScore)
	}
	if *charts {
		fmt.Println()
		for _, r := range rows {
			ser := &trace.Series{Name: r.Approach + " energy/iter", Values: r.EnergySeries}
			fmt.Print(trace.ASCIIChart(ser, 72, 8))
		}
	}
}
