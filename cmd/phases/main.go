// Command phases reproduces Fig. 8 (Sec. 5.6): x264 encodes three
// concatenated scenes (the middle one naturally ~40% easier); JouleGuard
// must hold the energy-per-frame goal and convert the easy scene's slack
// into higher accuracy.
package main

import (
	"flag"
	"fmt"
	"os"

	"jouleguard/internal/experiments"
	"jouleguard/internal/trace"
)

func main() {
	framesPer := flag.Int("frames", 200, "frames per scene (paper: 200)")
	factor := flag.Float64("f", 2.0, "energy reduction factor")
	charts := flag.Bool("charts", true, "render ASCII traces")
	csv := flag.Bool("csv", false, "emit per-frame CSV instead of text")
	flag.Parse()

	traces, err := experiments.Fig8(*framesPer, *factor)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *csv {
		set := trace.NewSet("frame")
		for i := range traces {
			tr := &traces[i]
			e := set.Add(tr.Platform + "/energy_norm")
			e.Values = tr.NormEnergy
			a := set.Add(tr.Platform + "/accuracy")
			a.Values = tr.Accuracy
		}
		if err := set.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("Fig. 8 — phase adaptation: 3 scenes x %d frames, f=%.1f\n\n", *framesPer, *factor)
	fmt.Printf("%-8s %10s %12s %12s %12s\n", "platform", "rel err(%)", "scene-1 acc", "scene-2 acc", "scene-3 acc")
	for _, tr := range traces {
		fmt.Printf("%-8s %10.2f %12.4f %12.4f %12.4f\n",
			tr.Platform, tr.RelativeErr, tr.PhaseAccuracy[0], tr.PhaseAccuracy[1], tr.PhaseAccuracy[2])
	}
	if *charts {
		for _, tr := range traces {
			fmt.Printf("\n%s:\n", tr.Platform)
			fmt.Print(trace.ASCIIChart(&trace.Series{Name: "energy/frame (normalised to goal)", Values: tr.NormEnergy}, 72, 7))
			fmt.Print(trace.ASCIIChart(&trace.Series{Name: "accuracy", Values: tr.Accuracy}, 72, 7))
		}
	}
}
