// Command compare reproduces Fig. 7 (Sec. 5.5): JouleGuard versus the best
// application-only and system-only approaches on Server, one panel per
// benchmark.
package main

import (
	"flag"
	"fmt"
	"os"

	"jouleguard/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "run-length scale (1.0 = full experiment)")
	csv := flag.Bool("csv", false, "emit CSV rows")
	flag.Parse()

	results, err := experiments.Fig7(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *csv {
		fmt.Println("app,factor,jouleguard_acc,apponly_acc,apponly_feasible,sysonly_max_factor")
		for _, r := range results {
			for _, p := range r.Points {
				fmt.Printf("%s,%.3f,%.4f,%.4f,%v,%.3f\n",
					r.App, p.Factor, p.JouleGuard, p.AppOnly, p.Feasible, r.SysOnlyMaxFactor)
			}
		}
		return
	}
	fmt.Println("Fig. 7 — JouleGuard vs application-only vs system-only on Server (higher accuracy is better)")
	for _, r := range results {
		fmt.Printf("\n%s (system-only can reach %.2fx at full accuracy)\n", r.App, r.SysOnlyMaxFactor)
		fmt.Printf("  %8s %12s %12s %10s\n", "goal", "JouleGuard", "App-only", "gap")
		for _, p := range r.Points {
			appOnly := fmt.Sprintf("%12.4f", p.AppOnly)
			if !p.Feasible {
				appOnly = fmt.Sprintf("%12s", "infeasible")
			}
			fmt.Printf("  %7.2fx %12.4f %s %+10.4f\n", p.Factor, p.JouleGuard, appOnly, p.JouleGuard-p.AppOnly)
		}
	}
}
