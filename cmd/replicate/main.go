// Command replicate regenerates the paper's entire evaluation in one shot,
// writing a results directory with one text report and CSV per artefact:
//
//	results/
//	  fig1.txt fig1.csv      motivation experiment
//	  table2.txt table3.txt table4.txt
//	  fig3.csv               efficiency landscapes
//	  fig4.txt fig4.csv      convergence traces
//	  fig5_6.txt fig5_6.csv  error + effective-accuracy sweep
//	  fig7.txt fig7.csv      vs app-only / system-only
//	  fig8.txt fig8.csv      phase adaptation
//	  ablations.txt
//
// Use -scale to shrink run lengths for a quick pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"jouleguard/internal/experiments"
	"jouleguard/internal/metrics"
	"jouleguard/internal/trace"
)

func main() {
	scale := flag.Float64("scale", 1.0, "run-length scale (1.0 = full experiments)")
	outDir := flag.String("out", "results", "output directory")
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fail(err)
	}
	steps := []struct {
		name string
		fn   func(dir string, scale float64) error
	}{
		{"fig1", fig1},
		{"table2", table2},
		{"table3", table3},
		{"table4", table4},
		{"fig3", fig3},
		{"fig4", fig4},
		{"fig5_6", sweep},
		{"fig7", fig7},
		{"fig8", fig8},
		{"ablations", ablations},
	}
	for _, s := range steps {
		fmt.Printf("replicating %s...\n", s.name)
		if err := s.fn(*outDir, *scale); err != nil {
			fail(fmt.Errorf("%s: %w", s.name, err))
		}
	}
	fmt.Printf("done: results in %s/\n", *outDir)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func create(dir, name string) (*os.File, error) {
	return os.Create(filepath.Join(dir, name))
}

func fig1(dir string, scale float64) error {
	rows, err := experiments.Fig1(scale)
	if err != nil {
		return err
	}
	goal, err := experiments.Fig1Goal()
	if err != nil {
		return err
	}
	txt, err := create(dir, "fig1.txt")
	if err != nil {
		return err
	}
	defer txt.Close()
	fmt.Fprintf(txt, "Fig. 1 — swish++ on Server, goal %.4f J/iter\n", goal)
	for _, r := range rows {
		fmt.Fprintln(txt, r.String())
	}
	csvF, err := create(dir, "fig1.csv")
	if err != nil {
		return err
	}
	defer csvF.Close()
	set := trace.NewSet("iter")
	for i := range rows {
		s := set.Add(rows[i].Approach + "/energy")
		s.Values = rows[i].EnergySeries
	}
	return set.WriteCSV(csvF)
}

func table2(dir string, _ float64) error {
	rows, err := experiments.Table2()
	if err != nil {
		return err
	}
	f, err := create(dir, "table2.txt")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "%-14s %8s %8s %10s %10s %9s %9s\n",
		"app", "configs", "(paper)", "speedup", "(paper)", "loss%", "(paper)")
	for _, r := range rows {
		fmt.Fprintf(f, "%-14s %8d %8d %10.2f %10.2f %9.1f %9.1f\n",
			r.App, r.Configs, r.PaperConfigs, r.MaxSpeedup, r.PaperMaxSpeedup,
			r.MaxLoss*100, r.PaperMaxLoss*100)
	}
	return nil
}

func table3(dir string, _ float64) error {
	rows, err := experiments.Table3()
	if err != nil {
		return err
	}
	f, err := create(dir, "table3.txt")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "%-8s %-20s %9s %9s %9s\n", "platform", "resource", "settings", "speedup", "powerup")
	for _, r := range rows {
		fmt.Fprintf(f, "%-8s %-20s %9d %9.2f %9.2f\n", r.Platform, r.Resource, r.Settings, r.Speedup, r.Powerup)
	}
	return nil
}

func table4(dir string, _ float64) error {
	rows, err := experiments.Table4(1000)
	if err != nil {
		return err
	}
	f, err := create(dir, "table4.txt")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "%-8s %12s %14s\n", "platform", "sys configs", "latency (us)")
	for _, r := range rows {
		fmt.Fprintf(f, "%-8s %12d %14.2f\n", r.Platform, r.SysConfigs, r.LatencyUS)
	}
	return nil
}

func fig3(dir string, _ float64) error {
	curves, err := experiments.Fig3([]string{"bodytrack", "ferret"})
	if err != nil {
		return err
	}
	f, err := create(dir, "fig3.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	set := trace.NewSet("config_index")
	for i := range curves {
		s := set.Add(curves[i].Platform + "/" + curves[i].App)
		s.Values = curves[i].Efficiency
	}
	return set.WriteCSV(f)
}

func fig4(dir string, scale float64) error {
	frames := experiments.ScaledIters(260, scale)
	traces, err := experiments.Fig4(frames)
	if err != nil {
		return err
	}
	txt, err := create(dir, "fig4.txt")
	if err != nil {
		return err
	}
	defer txt.Close()
	for _, tr := range traces {
		fmt.Fprintf(txt, "%s (f=%.0f): rel err %.2f%%, mean acc %.4f, converged at iter %d\n",
			tr.Platform, tr.Factor, tr.RelativeErr, tr.MeanAccuracy, tr.ConvergenceIter)
	}
	csvF, err := create(dir, "fig4.csv")
	if err != nil {
		return err
	}
	defer csvF.Close()
	set := trace.NewSet("frame")
	for i := range traces {
		e := set.Add(traces[i].Platform + "/energy_norm")
		e.Values = traces[i].NormEnergy
		a := set.Add(traces[i].Platform + "/accuracy")
		a.Values = traces[i].Accuracy
	}
	return set.WriteCSV(csvF)
}

func sweep(dir string, scale float64) error {
	cells, err := experiments.Sweep(nil, scale)
	if err != nil {
		return err
	}
	sort.Slice(cells, func(a, b int) bool {
		ca, cb := cells[a], cells[b]
		if ca.Platform != cb.Platform {
			return ca.Platform < cb.Platform
		}
		if ca.App != cb.App {
			return ca.App < cb.App
		}
		return ca.Factor < cb.Factor
	})
	csvF, err := create(dir, "fig5_6.csv")
	if err != nil {
		return err
	}
	defer csvF.Close()
	fmt.Fprintln(csvF, "platform,app,factor,rel_error_pct,effective_accuracy,mean_accuracy,oracle_accuracy")
	var errs, accs []float64
	for _, c := range cells {
		fmt.Fprintf(csvF, "%s,%s,%.2f,%.3f,%.4f,%.4f,%.4f\n",
			c.Platform, c.App, c.Factor, c.RelativeError, c.EffectiveAccuracy, c.MeanAccuracy, c.OracleAccuracy)
		errs = append(errs, c.RelativeError)
		accs = append(accs, c.EffectiveAccuracy)
	}
	txt, err := create(dir, "fig5_6.txt")
	if err != nil {
		return err
	}
	defer txt.Close()
	es, as := metrics.Summarize(errs), metrics.Summarize(accs)
	fmt.Fprintf(txt, "feasible cells: %d\n", len(cells))
	fmt.Fprintf(txt, "relative error: mean %.2f%%, p50 %.2f%%, p90 %.2f%%, max %.2f%%\n", es.Mean, es.P50, es.P90, es.Max)
	fmt.Fprintf(txt, "effective accuracy: mean %.3f, min %.3f\n", as.Mean, as.Min)
	return nil
}

func fig7(dir string, scale float64) error {
	results, err := experiments.Fig7(scale)
	if err != nil {
		return err
	}
	csvF, err := create(dir, "fig7.csv")
	if err != nil {
		return err
	}
	defer csvF.Close()
	fmt.Fprintln(csvF, "app,factor,jouleguard_acc,apponly_acc,apponly_feasible,sysonly_max_factor")
	txt, err := create(dir, "fig7.txt")
	if err != nil {
		return err
	}
	defer txt.Close()
	for _, r := range results {
		fmt.Fprintf(txt, "%s: system-only ceiling %.2fx\n", r.App, r.SysOnlyMaxFactor)
		for _, p := range r.Points {
			fmt.Fprintf(csvF, "%s,%.3f,%.4f,%.4f,%v,%.3f\n",
				r.App, p.Factor, p.JouleGuard, p.AppOnly, p.Feasible, r.SysOnlyMaxFactor)
			fmt.Fprintf(txt, "  f=%.2f jg=%.4f apponly=%.4f feasible=%v\n",
				p.Factor, p.JouleGuard, p.AppOnly, p.Feasible)
		}
	}
	return nil
}

func fig8(dir string, scale float64) error {
	frames := experiments.ScaledIters(200, scale)
	traces, err := experiments.Fig8(frames, 2)
	if err != nil {
		return err
	}
	txt, err := create(dir, "fig8.txt")
	if err != nil {
		return err
	}
	defer txt.Close()
	for _, tr := range traces {
		fmt.Fprintf(txt, "%s: rel err %.2f%%, scene accs %.4f / %.4f / %.4f\n",
			tr.Platform, tr.RelativeErr, tr.PhaseAccuracy[0], tr.PhaseAccuracy[1], tr.PhaseAccuracy[2])
	}
	csvF, err := create(dir, "fig8.csv")
	if err != nil {
		return err
	}
	defer csvF.Close()
	set := trace.NewSet("frame")
	for i := range traces {
		e := set.Add(traces[i].Platform + "/energy_norm")
		e.Values = traces[i].NormEnergy
		a := set.Add(traces[i].Platform + "/accuracy")
		a.Values = traces[i].Accuracy
	}
	return set.WriteCSV(csvF)
}

func ablations(dir string, scale float64) error {
	f, err := create(dir, "ablations.txt")
	if err != nil {
		return err
	}
	defer f.Close()
	kinds := []struct {
		name string
		fn   func(string, string, float64, float64) ([]experiments.AblationResult, error)
		app  string
		plat string
		fac  float64
	}{
		{"pole", experiments.AblationPole, "swish++", "Server", 1.75},
		{"priors", experiments.AblationPriors, "swish++", "Server", 1.5},
		{"exploration", experiments.AblationExploration, "swish++", "Server", 1.5},
		{"estimator", experiments.AblationEstimator, "swish++", "Server", 1.5},
		{"alpha", experiments.AblationAlpha, "bodytrack", "Tablet", 2.0},
	}
	for _, k := range kinds {
		res, err := k.fn(k.app, k.plat, k.fac, scale)
		if err != nil {
			return err
		}
		fmt.Fprintf(f, "%s (%s/%s f=%.2f):\n", k.name, k.app, k.plat, k.fac)
		for _, r := range res {
			fmt.Fprintf(f, "  %-28s rel err %6.2f%%  eff acc %.3f\n", r.Variant, r.RelativeError, r.EffectiveAccuracy)
		}
	}
	return nil
}
