// Command jouleguardd is the JouleGuard governor daemon: it serves the
// versioned session protocol of internal/wire, partitioning one
// machine-wide energy budget across many concurrently governed
// applications. Each session runs its own governor (SEO bandit + AAO
// controller) under a grant from the budget broker; the shared
// telemetry surface (/metrics, /healthz, /decisions, /debug/pprof) is
// mounted on the same listener.
//
// On SIGINT/SIGTERM the daemon drains in-flight iterations, snapshots
// its durable state to -snapshot (JSONL), and exits; restarted with the
// same -snapshot it restores every live session bit-identically and
// clients resume through their retry layer.
//
// Fleet modes:
//
//   - -coordinator turns the process into the fleet coordinator instead
//     of a governor daemon: it owns the fleet-wide budget (-budget),
//     leases it to member daemons, places sessions, and fails them over
//     when a node dies. Clients register at the coordinator and are
//     redirected (HTTP 307) to the owning node. With -wal the budget
//     ledger is event-sourced to an append-only JSONL log, replayed on
//     restart so the coordinator resumes with a bit-identical ledger.
//   - -coordinator -standby <primary-url> runs a standby coordinator: it
//     tails the primary's WAL over HTTP into a promotion-ready shadow
//     ledger, answers not_primary until then, and (with -promote-after)
//     promotes itself once the primary has been silent that long — the
//     fencing epoch bumps and the fleet rejoins under the new reign.
//   - -join <coordinator-urls> runs a governor daemon as a fleet member:
//     its budget comes from the coordinator's lease (the -budget flag is
//     ignored), renewed by heartbeat; -node names it stably and
//     -advertise is the base URL others reach it at (defaults to
//     http://<addr>). A comma-separated list names the primary first and
//     standbys after it; the member rotates to the next entry when a
//     coordinator is unreachable, deposed, or not yet promoted.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"jouleguard/internal/cluster"
	"jouleguard/internal/guard"
	"jouleguard/internal/linuxsys"
	"jouleguard/internal/measure"
	"jouleguard/internal/qos"
	"jouleguard/internal/server"
	"jouleguard/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":7077", "listen address for the session protocol and telemetry")
	budget := flag.Float64("budget", 10000, "machine-wide energy budget to partition, joules (fleet-wide with -coordinator)")
	reserve := flag.Float64("reserve", 0, "broker commitment multiplier (<=1 selects the default 1.05)")
	snapshot := flag.String("snapshot", "", "snapshot file: restored at start if present, written on shutdown")
	idle := flag.Duration("idle-timeout", 2*time.Minute, "expire sessions with no wire activity for this long")
	flight := flag.Int("flight", 4096, "decision flight-recorder capacity for /decisions")
	drain := flag.Duration("drain", 10*time.Second, "max time to wait for in-flight iterations on shutdown")
	coordinator := flag.Bool("coordinator", false, "run the fleet coordinator instead of a governor daemon")
	leaseTTL := flag.Duration("lease-ttl", 3*time.Second, "coordinator: lease term after which a silent node is expired")
	wal := flag.String("wal", "", "coordinator: append-only ledger WAL file, replayed at start so a restart resumes the exact ledger")
	standbyOf := flag.String("standby", "", "coordinator: tail this primary coordinator's WAL as a promotion-ready standby")
	promoteAfter := flag.Duration("promote-after", 0, "standby: self-promote once the primary has been silent this long (0 = never; should exceed -lease-ttl)")
	join := flag.String("join", "", "member: coordinator base URL(s) to join, comma-separated primary-first (enables fleet mode)")
	node := flag.String("node", "", "member: stable node name (default the advertise address)")
	advertise := flag.String("advertise", "", "member: base URL clients and the coordinator reach this daemon at (default http://<addr>)")
	meterMode := flag.String("meter", "client", "energy source: client (wire-reported readings), sim (calibrated simulated meter; client reports become physical stimulus), rapl (Linux powercap; falls over to sim when unavailable)")
	raplRoot := flag.String("rapl-root", "/sys/class/powercap", "powercap sysfs root for -meter=rapl")
	meterIdle := flag.Float64("meter-idle", 2, "sim meter: idle baseline, watts")
	meterModelW := flag.Float64("meter-model-power", 40, "measurement gate: expected full-load draw in watts; scales the absolute plausibility ceiling (16x)")
	qosEnabled := flag.Bool("qos", false, "enable the local tenant-protection ladder (graduated enforcement and overload shedding); fleet-shipped policy is enforced either way")
	qosOverrun := flag.Float64("qos-overrun", 0, "qos: footprint-over-fair-share ratio counted as an overrun (<=0 selects the default 1.25)")
	qosShedAt := flag.Float64("qos-shed-at", 0, "qos: pool-pressure threshold engaging overload shedding (<=0 selects the default 0.97)")
	flag.Parse()

	if *coordinator {
		runCoordinator(*addr, *budget, *leaseTTL, *flight, *wal, *standbyOf, *promoteAfter)
		return
	}

	budgetJ := *budget
	if *join != "" {
		// Fleet member: the budget comes from the coordinator's lease, so
		// seed the broker near zero — nothing may be admitted against the
		// ignored -budget flag before the first lease lands.
		budgetJ = cluster.MemberSeedBudgetJ
	}
	tel := telemetry.New(*flight)
	msvc, stimulus, err := openMeter(tel, *meterMode, *raplRoot, *meterIdle, *meterModelW)
	if err != nil {
		fail(err)
	}
	if msvc != nil {
		defer msvc.Stop()
	}
	srv, err := server.New(server.Config{
		GlobalBudgetJ: budgetJ,
		Reserve:       *reserve,
		IdleTimeout:   *idle,
		Telemetry:     tel,
		Meter:         msvc,
		MeterStimulus: stimulus,
		QoS: qos.Config{
			Enabled:      *qosEnabled,
			OverrunRatio: *qosOverrun,
			ShedPressure: *qosShedAt,
		},
	})
	if err != nil {
		fail(err)
	}
	if *snapshot != "" {
		restored, err := srv.RestoreFile(*snapshot)
		if err != nil {
			fail(fmt.Errorf("restoring %s: %w", *snapshot, err))
		}
		if restored {
			fmt.Printf("restored state from %s\n", *snapshot)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	handler := srv.Handler()
	var member *cluster.Member
	if *join != "" {
		adv := *advertise
		if adv == "" {
			adv = "http://" + ln.Addr().String()
		}
		name := *node
		if name == "" {
			name = adv
		}
		coords := splitURLs(*join)
		member, err = cluster.NewMember(cluster.MemberConfig{
			CoordinatorURL:  coords[0],
			CoordinatorURLs: coords[1:],
			Node:            name,
			Advertise:       adv,
			Server:          srv,
		})
		if err != nil {
			fail(err)
		}
		handler = member.Handler()
	}
	httpSrv := newHTTPServer(handler)
	if member != nil {
		fmt.Printf("jouleguardd member %q on http://%s  joining %s  (budget leased from the coordinator)\n",
			*node, ln.Addr(), *join)
	} else {
		fmt.Printf("jouleguardd on http://%s  budget %.0f J  (sessions: %s, telemetry: /metrics /healthz /decisions)\n",
			ln.Addr(), *budget, "/v1/sessions")
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	if member != nil {
		// Join after the listener is up so the coordinator can push
		// adoptions at us from the first heartbeat on.
		if err := member.Run(); err != nil {
			fail(fmt.Errorf("joining fleet at %s: %w", *join, err))
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("received %v, draining\n", s)
	case err := <-errCh:
		fail(err)
	}

	if member != nil {
		member.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "drain incomplete: %v (snapshotting anyway)\n", err)
	}
	if *snapshot != "" {
		if err := srv.SnapshotFile(*snapshot); err != nil {
			fail(fmt.Errorf("writing snapshot %s: %w", *snapshot, err))
		}
		fmt.Printf("state snapshotted to %s\n", *snapshot)
	}
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	_ = httpSrv.Shutdown(shutdownCtx)
}

// runCoordinator serves the fleet coordinator: cluster routes, the
// register-redirect endpoint and the telemetry surface on one listener.
// With walPath the ledger is event-sourced to disk and replayed at
// start; with standbyOf the coordinator starts as a follower tailing
// that primary's WAL, promoting on operator demand or after
// promoteAfter of primary silence.
func runCoordinator(addr string, fleetJ float64, ttl time.Duration, flight int, walPath, standbyOf string, promoteAfter time.Duration) {
	tel := telemetry.New(flight)
	coord, err := cluster.New(cluster.Config{
		FleetBudgetJ: fleetJ,
		LeaseTTL:     ttl,
		Telemetry:    tel,
		WALPath:      walPath,
		Follower:     standbyOf != "",
	})
	if err != nil {
		fail(err)
	}
	var sb *cluster.Standby
	if standbyOf != "" {
		sb, err = cluster.NewStandby(coord, cluster.StandbyConfig{
			PrimaryURL:   strings.TrimRight(standbyOf, "/"),
			PromoteAfter: promoteAfter,
		})
		if err != nil {
			fail(err)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fail(err)
	}
	httpSrv := newHTTPServer(coord.Handler())
	if sb != nil {
		fmt.Printf("jouleguard standby coordinator on http://%s  tailing %s  fleet budget %.0f J  (promote-after %v)\n",
			ln.Addr(), standbyOf, fleetJ, promoteAfter)
	} else {
		fmt.Printf("jouleguard coordinator on http://%s  fleet budget %.0f J  lease TTL %v  (join: /v1/cluster/join)\n",
			ln.Addr(), fleetJ, ttl)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	if sb != nil {
		sb.Run()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("received %v, shutting down\n", s)
	case err := <-errCh:
		fail(err)
	}
	if sb != nil {
		sb.Stop()
	}
	coord.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
}

// openMeter builds the daemon's measurement service for -meter (nil
// for client mode: sessions debit wire-reported readings, the
// pre-existing contract). The rapl backend fails over cleanly to the
// simulator when powercap is missing or its counters cannot be
// calibrated, so the same invocation works on any host.
func openMeter(tel *telemetry.Telemetry, mode, raplRoot string, idleW, modelW float64) (*measure.Service, func(joules, durS float64), error) {
	switch mode {
	case "", "client":
		return nil, nil, nil
	case "sim":
		return simMeter(tel, idleW, modelW)
	case "rapl":
		svc, err := raplMeter(tel, raplRoot, modelW)
		if err != nil {
			fmt.Fprintf(os.Stderr, "meter: rapl backend unavailable (%v); failing over to the simulated meter\n", err)
			return simMeter(tel, idleW, modelW)
		}
		return svc, nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown -meter mode %q (want client, sim or rapl)", mode)
	}
}

// simMeter assembles the simulated backend: meter, calibration and
// service all run on one virtual clock advanced by each settled
// iteration's client-reported duration, so per-sample power lands at
// the physical watt scale the gate judges. No sampling loop is started
// — the clock only moves on stimulus, making sampling settle-driven
// and deterministic.
func simMeter(tel *telemetry.Telemetry, idleW, modelW float64) (*measure.Service, func(joules, durS float64), error) {
	vc := measure.NewVirtualClock()
	sim := measure.NewSimMeter(measure.SimConfig{IdleW: idleW, Seed: 1, Now: vc.Now})
	cal, err := measure.Calibrate(sim, measure.CalibrationConfig{Sleep: vc.Sleep, Now: vc.Now})
	if err != nil {
		return nil, nil, err
	}
	// No ModelPower: rejected samples are debited at the accepted-window
	// median, which tracks the fleet's governed operating point. A fixed
	// model would over-debit every rejection once the governors have
	// throttled the tenants below full draw; modelW only scales the
	// absolute plausibility ceiling.
	svc := measure.NewService(measure.ServiceConfig{
		Meter:    sim,
		Gate:     guard.Config{MaxPower: modelW * 16},
		Baseline: cal,
		Now:      vc.Now,
		Tel:      tel,
	})
	installMeterHealth(tel, svc)
	announceMeter(svc)
	return svc, func(joules, durS float64) { sim.Deposit(joules); vc.Advance(durS) }, nil
}

// raplMeter assembles the hardware backend: the hardened powercap
// reader, a real idle calibration (a few hundred ms at startup), host
// busy-fraction attribution, and the hot sampling loop.
func raplMeter(tel *telemetry.Telemetry, root string, modelW float64) (*measure.Service, error) {
	m, err := measure.NewRAPLMeter(root, 0)
	if err != nil {
		return nil, err
	}
	cal, err := measure.Calibrate(m, measure.CalibrationConfig{})
	if err != nil {
		return nil, fmt.Errorf("calibrating powercap counters: %w", err)
	}
	share := &linuxsys.CPUShare{}
	svc := measure.NewService(measure.ServiceConfig{
		Meter:    m,
		Gate:     guard.Config{MaxPower: modelW * 16},
		Baseline: cal,
		CPUShare: share.Sample,
		Tel:      tel,
	})
	svc.Start()
	installMeterHealth(tel, svc)
	announceMeter(svc)
	return svc, nil
}

// installMeterHealth publishes the live meter summary on /healthz.
func installMeterHealth(tel *telemetry.Telemetry, svc *measure.Service) {
	tel.SetMeter(func() telemetry.MeterInfo {
		st := svc.Status()
		return telemetry.MeterInfo{
			Backend:      st.Backend,
			BaselineW:    st.BaselineW,
			CV:           st.CalibrationCV,
			Trials:       st.CalibrationTrials,
			GateRejected: st.GateRejected,
			Quarantined:  st.Quarantined,
		}
	})
}

func announceMeter(svc *measure.Service) {
	st := svc.Status()
	fmt.Printf("meter: %s backend, idle baseline %.2f W (calibration cv %.4f over %d trials)\n",
		st.Backend, st.BaselineW, st.CalibrationCV, st.CalibrationTrials)
}

// newHTTPServer wraps a handler with the read-side limits every
// jouleguardd listener gets: a header deadline against slow-loris
// connection hoarding and a full-request read deadline. Request bodies
// are separately capped at 1 MiB by the wire decoders, and the cluster
// WAL tail endpoint bounds its batches, so no route needs a looser
// limit. Write timeouts stay off: /decisions and /debug/pprof stream.
func newHTTPServer(handler http.Handler) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
	}
}

// splitURLs parses a comma-separated coordinator list, trimming
// whitespace and trailing slashes; the first entry is the primary.
func splitURLs(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		urls = []string{""}
	}
	return urls
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
