// Command jouleguardd is the JouleGuard governor daemon: it serves the
// versioned session protocol of internal/wire, partitioning one
// machine-wide energy budget across many concurrently governed
// applications. Each session runs its own governor (SEO bandit + AAO
// controller) under a grant from the budget broker; the shared
// telemetry surface (/metrics, /healthz, /decisions, /debug/pprof) is
// mounted on the same listener.
//
// On SIGINT/SIGTERM the daemon drains in-flight iterations, snapshots
// its durable state to -snapshot (JSONL), and exits; restarted with the
// same -snapshot it restores every live session bit-identically and
// clients resume through their retry layer.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jouleguard/internal/server"
	"jouleguard/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":7077", "listen address for the session protocol and telemetry")
	budget := flag.Float64("budget", 10000, "machine-wide energy budget to partition, joules")
	reserve := flag.Float64("reserve", 0, "broker commitment multiplier (<=1 selects the default 1.05)")
	snapshot := flag.String("snapshot", "", "snapshot file: restored at start if present, written on shutdown")
	idle := flag.Duration("idle-timeout", 2*time.Minute, "expire sessions with no wire activity for this long")
	flight := flag.Int("flight", 4096, "decision flight-recorder capacity for /decisions")
	drain := flag.Duration("drain", 10*time.Second, "max time to wait for in-flight iterations on shutdown")
	flag.Parse()

	tel := telemetry.New(*flight)
	srv, err := server.New(server.Config{
		GlobalBudgetJ: *budget,
		Reserve:       *reserve,
		IdleTimeout:   *idle,
		Telemetry:     tel,
	})
	if err != nil {
		fail(err)
	}
	if *snapshot != "" {
		restored, err := srv.RestoreFile(*snapshot)
		if err != nil {
			fail(fmt.Errorf("restoring %s: %w", *snapshot, err))
		}
		if restored {
			fmt.Printf("restored state from %s\n", *snapshot)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Printf("jouleguardd on http://%s  budget %.0f J  (sessions: %s, telemetry: /metrics /healthz /decisions)\n",
		ln.Addr(), *budget, "/v1/sessions")

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("received %v, draining\n", s)
	case err := <-errCh:
		fail(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "drain incomplete: %v (snapshotting anyway)\n", err)
	}
	if *snapshot != "" {
		if err := srv.SnapshotFile(*snapshot); err != nil {
			fail(fmt.Errorf("writing snapshot %s: %w", *snapshot, err))
		}
		fmt.Printf("state snapshotted to %s\n", *snapshot)
	}
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	_ = httpSrv.Shutdown(shutdownCtx)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
