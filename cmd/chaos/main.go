// Command chaos is the robustness regression harness: it sweeps
// benchmarks x platforms x fault scenarios, running JouleGuard with
// corrupted sensing, clocks and actuation, and reports whether the
// energy guarantee held against ground truth in every cell. A run exits
// nonzero if any cell breaks the guarantee, so it can gate CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"jouleguard"
	"jouleguard/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "run-length scale (1.0 = full experiment)")
	factor := flag.Float64("factor", 1.5, "energy-reduction factor (budget = default energy / factor)")
	appsFlag := flag.String("apps", "", "comma-separated benchmarks (empty = all eight)")
	platsFlag := flag.String("platforms", "", "comma-separated platforms (empty = all three)")
	scenariosFlag := flag.String("scenarios", "", "comma-separated scenario names (empty = full suite)")
	csv := flag.Bool("csv", false, "emit CSV rows")
	quick := flag.Bool("quick", false, "smoke mode: three representative benchmarks at -scale 0.5")
	flag.Parse()

	appNames := splitList(*appsFlag)
	platNames := splitList(*platsFlag)
	if *quick {
		if len(appNames) == 0 && len(platNames) == 0 {
			// One representative benchmark per platform keeps the smoke
			// run minutes-scale while still crossing every platform.
			appNames = []string{"radar", "x264", "swaptions"}
		}
		if *scale == 1.0 {
			// Short runs on the Server's 1024-configuration space are still
			// mid-exploration; half scale is the smallest reliably
			// converged smoke run.
			*scale = 0.5
		}
	}
	scenarios, err := jouleguard.FaultScenariosByName(splitList(*scenariosFlag))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cells, skipped, err := experiments.Chaos(appNames, platNames, scenarios, *factor, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sort.Slice(cells, func(a, b int) bool {
		ca, cb := cells[a], cells[b]
		if ca.Platform != cb.Platform {
			return ca.Platform < cb.Platform
		}
		if ca.App != cb.App {
			return ca.App < cb.App
		}
		return ca.Scenario < cb.Scenario
	})

	if *csv {
		fmt.Println("platform,app,scenario,factor,iterations,energy_j,budget_j,ratio,mean_accuracy,actuator_failures,guard_accepted,guard_rejected,degrade_events,faults_injected,pass")
		for _, c := range cells {
			fmt.Printf("%s,%s,%s,%.2f,%d,%.2f,%.2f,%.4f,%.4f,%d,%d,%d,%d,%d,%v\n",
				c.Platform, c.App, c.Scenario, c.Factor, c.Iterations,
				c.EnergyJ, c.BudgetJ, c.BudgetRatio, c.MeanAccuracy,
				c.ActuatorFailures, c.GuardAccepted, c.GuardRejected, c.DegradeEvents, c.FaultsInjected, c.Pass)
		}
	} else {
		fmt.Printf("chaos sweep: factor %.2fx, tolerance %.0f%% of budget\n\n", *factor, experiments.ChaosTolerance*100)
		fmt.Printf("%-8s %-14s %-16s %8s %8s %7s %6s %6s  %s\n",
			"platform", "app", "scenario", "energy", "budget", "ratio", "acc", "rej", "verdict")
		for _, c := range cells {
			verdict := "ok"
			if !c.Pass {
				verdict = "FAIL"
			}
			fmt.Printf("%-8s %-14s %-16s %8.1f %8.1f %7.3f %6d %6d  %s\n",
				c.Platform, c.App, c.Scenario, c.EnergyJ, c.BudgetJ, c.BudgetRatio,
				c.GuardAccepted, c.GuardRejected, verdict)
		}
		printScenarioTelemetry(cells)
	}

	fails := experiments.ChaosFailures(cells)
	fmt.Printf("\n%d cells run, %d skipped as infeasible, %d failed\n", len(cells), skipped, len(fails))
	if len(fails) > 0 {
		for _, c := range fails {
			fmt.Fprintf(os.Stderr, "FAIL %s/%s under %s: %.1f J vs budget %.1f J (%.1f%% over)\n",
				c.Platform, c.App, c.Scenario, c.EnergyJ, c.BudgetJ, (c.BudgetRatio-1)*100)
		}
		os.Exit(1)
	}
}

// printScenarioTelemetry aggregates each scenario's telemetry across all
// (app, platform) cells into one line: how hard the injector actually
// hit the run, and how the defences responded.
func printScenarioTelemetry(cells []experiments.ChaosCell) {
	type agg struct {
		faults, rejects, trips, actFails, n int
	}
	byScenario := map[string]*agg{}
	var order []string
	for _, c := range cells {
		a := byScenario[c.Scenario]
		if a == nil {
			a = &agg{}
			byScenario[c.Scenario] = a
			order = append(order, c.Scenario)
		}
		a.faults += c.FaultsInjected
		a.rejects += c.GuardRejected
		a.trips += c.DegradeEvents
		a.actFails += c.ActuatorFailures
		a.n++
	}
	sort.Strings(order)
	fmt.Println("\ntelemetry by scenario (summed over cells):")
	for _, name := range order {
		a := byScenario[name]
		fmt.Printf("  %-16s %6d faults injected, %6d guard rejects, %3d watchdog trips, %5d actuation failures  (%d cells)\n",
			name, a.faults, a.rejects, a.trips, a.actFails, a.n)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
