// Command characterize reproduces Fig. 3 (Sec. 4.3): the energy-efficiency
// landscape of every system configuration for chosen benchmarks on the
// three platforms, plus the per-platform observations the paper draws.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"jouleguard/internal/experiments"
	"jouleguard/internal/trace"
)

func main() {
	appsFlag := flag.String("apps", "bodytrack,ferret", "comma-separated benchmarks to characterise")
	csv := flag.Bool("csv", false, "emit CSV instead of ASCII charts")
	flag.Parse()

	names := strings.Split(*appsFlag, ",")
	curves, err := experiments.Fig3(names)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *csv {
		set := trace.NewSet("config_index")
		for i := range curves {
			c := &curves[i]
			ser := set.Add(c.Platform + "/" + c.App)
			ser.Values = c.Efficiency
		}
		if err := set.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Println("Fig. 3 — energy-efficiency landscapes (x: configuration index)")
	for i := range curves {
		c := &curves[i]
		fmt.Printf("\n%s / %s: %d configs, peak at %d (default %d, eff ratio peak/default %.2fx)\n",
			c.Platform, c.App, len(c.Efficiency), c.PeakIndex, c.DefaultIndex,
			c.Efficiency[c.PeakIndex]/c.Efficiency[c.DefaultIndex])
		ser := &trace.Series{Name: "efficiency", Values: c.Efficiency}
		fmt.Print(trace.ASCIIChart(ser, 72, 10))
	}
}
