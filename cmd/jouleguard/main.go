// Command jouleguard runs a single experiment — one benchmark, one
// platform, one energy goal — and reports the run's outcome, plus the
// Table 2 / Table 3 characterisations and Fig. 4 traces.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"jouleguard"
	"jouleguard/internal/experiments"
	"jouleguard/internal/trace"
)

func main() {
	appName := flag.String("app", "x264", "benchmark (x264, swaptions, bodytrack, swish++, radar, canneal, ferret, streamcluster)")
	platName := flag.String("platform", "Server", "platform (Mobile, Tablet, Server)")
	factor := flag.Float64("f", 2.0, "energy reduction factor vs the default configuration")
	iters := flag.Int("iters", 0, "iterations (0 = platform default)")
	table2 := flag.Bool("table2", false, "print Table 2 (application characteristics) and exit")
	table3 := flag.Bool("table3", false, "print Table 3 (system characteristics) and exit")
	fig4 := flag.Bool("fig4", false, "print Fig. 4 (bodytrack convergence traces) and exit")
	ablate := flag.String("ablate", "", "run an ablation instead: pole | priors | exploration | estimator | alpha")
	trials := flag.Int("trials", 1, "repeat the run under different seeds and report mean +/- std")
	dump := flag.String("dump", "", "write the per-iteration run record to this CSV file")
	serve := flag.String("serve", "", "serve live telemetry on this address (e.g. :8080) while running the experiment repeatedly: /metrics, /healthz, /decisions, /debug/pprof")
	runs := flag.Int("runs", 0, "with -serve: stop after this many runs (0 = run until interrupted)")
	flag.Parse()
	dumpPath = *dump

	switch {
	case *serve != "":
		runServe(*appName, *platName, *factor, *iters, *serve, *runs)
	case *table2:
		runTable2()
	case *table3:
		runTable3()
	case *fig4:
		runFig4()
	case *ablate != "":
		runAblation(*ablate, *appName, *platName, *factor)
	case *trials > 1:
		runTrials(*appName, *platName, *factor, *trials)
	default:
		runOne(*appName, *platName, *factor, *iters)
	}
}

func runTrials(appName, platName string, factor float64, trials int) {
	st, err := experiments.RunTrials(appName, platName, factor, 1.0, trials)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s on %s, f=%.2f over %d seeded trials\n", appName, platName, factor, st.Trials)
	fmt.Printf("  relative error    : %.2f%% +/- %.2f%%\n", st.RelErrMean, st.RelErrStd)
	fmt.Printf("  effective accuracy: %.3f +/- %.3f\n", st.EffAccMean, st.EffAccStd)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// runServe runs the experiment repeatedly (a fresh seed per run) with
// live telemetry exposed over HTTP: the metric registry at /metrics, a
// liveness probe at /healthz, the decision flight recorder at /decisions
// (JSONL) and the standard pprof endpoints under /debug/pprof/.
func runServe(appName, platName string, factor float64, iters int, addr string, runs int) {
	tb, err := jouleguard.NewTestbed(appName, platName)
	if err != nil {
		fail(err)
	}
	if iters <= 0 {
		iters = experiments.ItersFor(platName, 1.0)
	}
	// Size the flight recorder to hold at least one whole run so
	// /decisions can replay it end to end.
	tel := jouleguard.NewTelemetry(iters)
	jouleguard.SetRunnerTelemetry(tel)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("telemetry on http://%s  (/metrics /healthz /decisions /debug/pprof)\n", ln.Addr())
	// The exposition endpoints come from the shared mux builder in
	// internal/telemetry — the same wiring cmd/jouleguardd mounts its
	// session protocol next to.
	mux := http.NewServeMux()
	tel.Mount(mux)
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fail(err)
		}
	}()
	goal := tb.DefaultEnergy / factor
	for r := 0; runs <= 0 || r < runs; r++ {
		gov, err := tb.NewJouleGuard(factor, iters, jouleguard.Options{
			Telemetry: tel,
			Seed:      int64(r + 1),
		})
		if err != nil {
			fail(err)
		}
		rec, err := tb.Run(gov, iters)
		if err != nil {
			fail(err)
		}
		epi := rec.EnergyPerIterAvg()
		fmt.Printf("run %d: %s on %s f=%.2f  energy/iter %.4f J (goal %.4f, %+.2f%%)  accuracy %.4f\n",
			r+1, appName, platName, factor, epi, goal, (epi-goal)/goal*100, rec.MeanAccuracy())
	}
}

// dumpPath, when set, receives the per-iteration CSV of single runs.
var dumpPath string

func maybeDump(rec *jouleguard.Record) {
	if dumpPath == "" {
		return
	}
	f, err := os.Create(dumpPath)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := rec.WriteCSV(f); err != nil {
		fail(err)
	}
	fmt.Printf("per-iteration record written to %s\n", dumpPath)
}

func runOne(appName, platName string, factor float64, iters int) {
	tb, err := jouleguard.NewTestbed(appName, platName)
	if err != nil {
		fail(err)
	}
	if iters <= 0 {
		iters = experiments.ItersFor(platName, 1.0)
	}
	gov, err := tb.NewJouleGuard(factor, iters, jouleguard.Options{})
	if err != nil {
		fail(err)
	}
	rec, err := tb.Run(gov, iters)
	if err != nil {
		fail(err)
	}
	goal := tb.DefaultEnergy / factor
	epi := rec.EnergyPerIterAvg()
	fmt.Printf("%s on %s, f=%.2f over %d iterations\n", appName, platName, factor, iters)
	fmt.Printf("  default energy/iter : %.4f J (%.1f W at %.2f iters/s)\n", tb.DefaultEnergy, tb.DefaultPower, tb.DefaultRate)
	fmt.Printf("  goal energy/iter    : %.4f J\n", goal)
	fmt.Printf("  achieved energy/iter: %.4f J", epi)
	if epi > goal {
		fmt.Printf("  (+%.2f%% over goal)", (epi-goal)/goal*100)
	} else {
		fmt.Printf("  (goal met)")
	}
	fmt.Println()
	fmt.Printf("  mean accuracy       : %.4f\n", rec.MeanAccuracy())
	if orc, err := tb.NewOracle(); err == nil {
		if pt, ok := orc.BestAccuracyForFactor(factor); ok {
			fmt.Printf("  oracle accuracy     : %.4f (effective accuracy %.3f)\n",
				pt.AppPoint.Accuracy, rec.MeanAccuracy()/pt.AppPoint.Accuracy)
		} else {
			fmt.Println("  oracle              : goal infeasible even with perfect knowledge")
		}
	}
	if gov.Infeasible() {
		fmt.Println("  runtime verdict     : goal infeasible — delivering minimum energy (Sec. 3.4.3)")
	}
	fmt.Println()
	norm := make([]float64, len(rec.EnergyPerIter))
	for i, e := range rec.EnergyPerIter {
		norm[i] = e / goal
	}
	fmt.Print(trace.ASCIIChart(&trace.Series{Name: "energy/iter (normalised to goal)", Values: norm}, 72, 7))
	fmt.Print(trace.ASCIIChart(&trace.Series{Name: "accuracy", Values: rec.Accuracies}, 72, 7))
	maybeDump(rec)
}

func runTable2() {
	rows, err := experiments.Table2()
	if err != nil {
		fail(err)
	}
	fmt.Println("Table 2 — approximate application configurations (measured vs paper)")
	fmt.Printf("%-14s %8s %8s %10s %10s %9s %9s  %s\n",
		"app", "configs", "(paper)", "speedup", "(paper)", "loss", "(paper)", "metric")
	for _, r := range rows {
		fmt.Printf("%-14s %8d %8d %10.2f %10.2f %8.1f%% %8.1f%%  %s\n",
			r.App, r.Configs, r.PaperConfigs, r.MaxSpeedup, r.PaperMaxSpeedup,
			r.MaxLoss*100, r.PaperMaxLoss*100, r.Metric)
	}
}

func runTable3() {
	rows, err := experiments.Table3()
	if err != nil {
		fail(err)
	}
	fmt.Println("Table 3 — system configurations (measured max speedup/powerup across benchmarks)")
	fmt.Printf("%-8s %-20s %9s %9s %9s\n", "platform", "resource", "settings", "speedup", "powerup")
	for _, r := range rows {
		fmt.Printf("%-8s %-20s %9d %9.2f %9.2f\n", r.Platform, r.Resource, r.Settings, r.Speedup, r.Powerup)
	}
}

func runFig4() {
	traces, err := experiments.Fig4(260)
	if err != nil {
		fail(err)
	}
	fmt.Println("Fig. 4 — bodytrack energy/frame and accuracy (Mobile f=4, Tablet/Server f=3)")
	for _, tr := range traces {
		fmt.Printf("\n%s (f=%.0f): rel err %.2f%%, mean accuracy %.4f\n",
			tr.Platform, tr.Factor, tr.RelativeErr, tr.MeanAccuracy)
		fmt.Print(trace.ASCIIChart(&trace.Series{Name: "energy/frame (normalised to goal)", Values: tr.NormEnergy}, 72, 7))
		fmt.Print(trace.ASCIIChart(&trace.Series{Name: "accuracy", Values: tr.Accuracy}, 72, 7))
	}
}

func runAblation(kind, appName, platName string, factor float64) {
	var (
		res []experiments.AblationResult
		err error
	)
	switch kind {
	case "pole":
		res, err = experiments.AblationPole(appName, platName, factor, 1.0)
	case "priors":
		res, err = experiments.AblationPriors(appName, platName, factor, 1.0)
	case "exploration":
		res, err = experiments.AblationExploration(appName, platName, factor, 1.0)
	case "estimator":
		res, err = experiments.AblationEstimator(appName, platName, factor, 1.0)
	case "alpha":
		res, err = experiments.AblationAlpha(appName, platName, factor, 1.0)
	default:
		fail(fmt.Errorf("unknown ablation %q (pole, priors, exploration, estimator, alpha)", kind))
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("Ablation %q — %s on %s, f=%.2f\n", kind, appName, platName, factor)
	fmt.Printf("%-28s %12s %12s %12s\n", "variant", "rel err(%)", "eff acc", "mean acc")
	for _, r := range res {
		fmt.Printf("%-28s %12.2f %12.3f %12.4f\n", r.Variant, r.RelativeError, r.EffectiveAccuracy, r.MeanAccuracy)
	}
}
