package jouleguard_test

import (
	"errors"

	"testing"

	"jouleguard"
)

// fakeMachine simulates a real host for the online controller: a monotone
// clock and a cumulative joule counter whose rate depends on the system
// configuration the controller chose.
type fakeMachine struct {
	tb      *jouleguard.Testbed
	clock   float64
	energyJ float64
	appCfg  int
	sysCfg  int
	failing bool
}

func (m *fakeMachine) apply(appCfg, sysCfg int) { m.appCfg, m.sysCfg = appCfg, sysCfg }

// work advances the machine by one iteration at the current configs.
func (m *fakeMachine) work() {
	prof := m.tb.Profile
	rate := m.tb.Platform.Rate(m.sysCfg, prof)
	power := m.tb.Platform.Power(m.sysCfg, prof)
	speedup := 1.0
	for _, p := range m.tb.Frontier.Points() {
		if p.Config == m.appCfg {
			speedup = p.Speedup
		}
	}
	dur := m.tb.WorkPerIter / speedup / rate
	m.clock += dur
	m.energyJ += power * dur
}

func (m *fakeMachine) readEnergy() (float64, error) {
	if m.failing {
		return 0, errors.New("sensor offline")
	}
	return m.energyJ, nil
}

func TestOnlineControllerMeetsGoal(t *testing.T) {
	tb, err := jouleguard.NewTestbed("radar", "Tablet")
	if err != nil {
		t.Fatal(err)
	}
	iters := 500
	factor := 2.0
	gov, err := tb.NewJouleGuard(factor, iters, jouleguard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := &fakeMachine{tb: tb}
	ctl, err := jouleguard.NewOnline(gov, m.readEnergy, func() float64 { return m.clock })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iters; i++ {
		appCfg, sysCfg := ctl.Next()
		m.apply(appCfg, sysCfg)
		m.work()
		if err := ctl.Done(1); err != nil {
			t.Fatal(err)
		}
	}
	goal := tb.DefaultEnergy / factor * float64(iters)
	if m.energyJ > goal*1.05 {
		t.Fatalf("online loop overspent: %.2f J vs goal %.2f J", m.energyJ, goal)
	}
	if ctl.Iterations() != iters {
		t.Fatalf("iterations: %d", ctl.Iterations())
	}
	if ctl.HeartRate() <= 0 {
		t.Fatal("no heart rate")
	}
}

func TestOnlineControllerValidates(t *testing.T) {
	tb, _ := jouleguard.NewTestbed("radar", "Tablet")
	gov, _ := tb.NewJouleGuard(2, 10, jouleguard.Options{})
	if _, err := jouleguard.NewOnline(nil, func() (float64, error) { return 0, nil }, func() float64 { return 0 }); err == nil {
		t.Error("want error for nil governor")
	}
	if _, err := jouleguard.NewOnline(gov, nil, func() float64 { return 0 }); err == nil {
		t.Error("want error for nil reader")
	}
	ctl, err := jouleguard.NewOnline(gov, func() (float64, error) { return 0, nil }, func() float64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Done(1); err == nil {
		t.Error("Done without Next should error")
	}
}

func TestOnlineControllerSurvivesSensorFailure(t *testing.T) {
	tb, _ := jouleguard.NewTestbed("radar", "Tablet")
	gov, _ := tb.NewJouleGuard(2, 100, jouleguard.Options{})
	m := &fakeMachine{tb: tb}
	ctl, err := jouleguard.NewOnline(gov, m.readEnergy, func() float64 { return m.clock })
	if err != nil {
		t.Fatal(err)
	}
	var sawErr bool
	for i := 0; i < 50; i++ {
		appCfg, sysCfg := ctl.Next()
		m.apply(appCfg, sysCfg)
		m.failing = i%5 == 0 // intermittent sensor dropout
		m.work()
		if err := ctl.Done(1); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if m.failing && ctl.LastSensorError() == nil {
			t.Fatalf("iteration %d: sensor failure not recorded", i)
		}
		sawErr = sawErr || ctl.LastSensorError() != nil
	}
	if !sawErr {
		t.Fatal("sensor failures should be recorded")
	}
	// The last iterations succeeded: the error must clear on recovery.
	if ctl.LastSensorError() != nil {
		t.Fatalf("sensor error not cleared on recovery: %v", ctl.LastSensorError())
	}
	if ctl.ConsecutiveFailures() != 0 {
		t.Fatalf("failure streak not cleared: %d", ctl.ConsecutiveFailures())
	}
	if ctl.SensorFailures() < 10 {
		t.Fatalf("total sensor failures undercounted: %d", ctl.SensorFailures())
	}
	if ctl.Iterations() != 50 {
		t.Fatalf("iterations: %d", ctl.Iterations())
	}
}

func TestOnlineControllerClockRegression(t *testing.T) {
	// A clock that steps backwards must not kill the caller's loop: the
	// duration is clamped to zero, the event recorded, and the run goes on.
	tb, _ := jouleguard.NewTestbed("radar", "Tablet")
	gov, _ := tb.NewJouleGuard(2, 10, jouleguard.Options{})
	clock := 10.0
	ctl, err := jouleguard.NewOnline(gov, func() (float64, error) { return 1, nil }, func() float64 {
		clock -= 1 // broken clock
		return clock
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ctl.Next()
		if err := ctl.Done(1); err != nil {
			t.Fatalf("clock regression killed the loop: %v", err)
		}
	}
	if ctl.ClockAnomalies() != 3 {
		t.Fatalf("clock anomalies: %d", ctl.ClockAnomalies())
	}
	if ctl.Iterations() != 3 {
		t.Fatalf("iterations: %d", ctl.Iterations())
	}
}

// TestOnlineControllerOutageRecovery drives the acceptance scenario: the
// energy reader errors for 50 consecutive iterations mid-run. The loop
// must survive, the runtime must enter its degraded state during the
// outage and leave it after recovery, and the run must not blow the
// budget — the counter delta at recovery reconciles the ledger.
func TestOnlineControllerOutageRecovery(t *testing.T) {
	tb, err := jouleguard.NewTestbed("radar", "Tablet")
	if err != nil {
		t.Fatal(err)
	}
	iters := 400
	factor := 1.5
	gov, err := tb.NewJouleGuard(factor, iters, jouleguard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := &fakeMachine{tb: tb}
	ctl, err := jouleguard.NewOnline(gov, m.readEnergy, func() float64 { return m.clock })
	if err != nil {
		t.Fatal(err)
	}
	outageLo, outageHi := 100, 150 // 50 consecutive reader errors
	degradedDuring := false
	for i := 0; i < iters; i++ {
		appCfg, sysCfg := ctl.Next()
		m.apply(appCfg, sysCfg)
		m.failing = i >= outageLo && i < outageHi
		m.work()
		if err := ctl.Done(1); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if m.failing {
			degradedDuring = degradedDuring || gov.Degraded()
		}
	}
	if !degradedDuring {
		t.Fatal("runtime never entered degraded state during the outage")
	}
	if gov.Degraded() {
		t.Fatal("runtime still degraded after recovery")
	}
	if gov.DegradeEvents() == 0 {
		t.Fatal("watchdog trip not counted")
	}
	if streak := ctl.ConsecutiveFailures(); streak != 0 {
		t.Fatalf("failure streak not cleared after recovery: %d", streak)
	}
	goal := tb.DefaultEnergy / factor * float64(iters)
	if m.energyJ > goal*1.05 {
		t.Fatalf("outage blew the budget: %.2f J vs goal %.2f J", m.energyJ, goal)
	}
	if ctl.Iterations() != iters {
		t.Fatalf("iterations: %d", ctl.Iterations())
	}
}

// TestOnlineControllerSequencing pins the misuse contract: Done without a
// bracketing Next returns ErrOutOfSequence, Next during an in-flight
// iteration preserves the pending interval instead of restarting it, and
// both violations are counted without corrupting the accounting.
func TestOnlineControllerSequencing(t *testing.T) {
	tb, err := jouleguard.NewTestbed("radar", "Tablet")
	if err != nil {
		t.Fatal(err)
	}
	gov, err := tb.NewJouleGuard(2.0, 100, jouleguard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := &fakeMachine{tb: tb}
	ctl, err := jouleguard.NewOnline(gov, m.readEnergy, func() float64 { return m.clock })
	if err != nil {
		t.Fatal(err)
	}

	// Done before any Next is a hard sequencing error.
	if err := ctl.Done(1); !errors.Is(err, jouleguard.ErrOutOfSequence) {
		t.Fatalf("Done before Next: got %v, want ErrOutOfSequence", err)
	}
	if n := ctl.SequenceErrors(); n != 1 {
		t.Fatalf("sequence errors after early Done: %d", n)
	}
	if ctl.Iterations() != 0 {
		t.Fatalf("early Done advanced the iteration count: %d", ctl.Iterations())
	}

	// Next twice without Done: the second call must keep the in-flight
	// interval (same decision, no clock restart) and record the misuse.
	app1, sys1 := ctl.Next()
	if !ctl.InFlight() {
		t.Fatal("controller not in flight after Next")
	}
	m.clock += 0.25 // interval under way
	app2, sys2 := ctl.Next()
	if app1 != app2 || sys1 != sys2 {
		t.Fatalf("double Next changed the decision: (%d,%d) -> (%d,%d)", app1, sys1, app2, sys2)
	}
	if n := ctl.SequenceErrors(); n != 2 {
		t.Fatalf("sequence errors after double Next: %d", n)
	}
	if last := ctl.LastSequenceError(); !errors.Is(last, jouleguard.ErrOutOfSequence) {
		t.Fatalf("LastSequenceError: %v", last)
	}

	// The bracketed iteration still settles normally afterwards.
	m.apply(app1, sys1)
	m.work()
	if err := ctl.Done(1); err != nil {
		t.Fatalf("Done after recovered sequence: %v", err)
	}
	if ctl.Iterations() != 1 {
		t.Fatalf("iteration not accounted: %d", ctl.Iterations())
	}
	if ctl.InFlight() {
		t.Fatal("still in flight after Done")
	}

	// A clean Next/Done pair does not add sequencing errors.
	app, sys := ctl.Next()
	m.apply(app, sys)
	m.work()
	if err := ctl.Done(1); err != nil {
		t.Fatal(err)
	}
	if n := ctl.SequenceErrors(); n != 2 {
		t.Fatalf("clean pair changed the violation count: %d", n)
	}
	if ctl.Iterations() != 2 {
		t.Fatalf("iterations: %d", ctl.Iterations())
	}
}
