// Quickstart: run JouleGuard on one benchmark and platform, and see the
// energy guarantee and accuracy outcome in a dozen lines.
package main

import (
	"fmt"
	"log"

	"jouleguard"
)

func main() {
	// Bind the x264 video encoder to the simulated Server platform. The
	// testbed profiles the encoder's 560 configurations into a Pareto
	// frontier (the PowerDial calibration step) and characterises the
	// default configuration.
	tb, err := jouleguard.NewTestbed("x264", "Server")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("default: %.1f W at %.1f frames/s -> %.3f J/frame\n",
		tb.DefaultPower, tb.DefaultRate, tb.DefaultEnergy)

	// Ask for half the energy over 800 frames. JouleGuard finds the most
	// energy-efficient system configuration (SEO) and trades just enough
	// accuracy (AAO) to meet the budget.
	const frames = 800
	const factor = 2.0
	gov, err := tb.NewJouleGuard(factor, frames, jouleguard.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rec, err := tb.Run(gov, frames)
	if err != nil {
		log.Fatal(err)
	}

	goal := tb.DefaultEnergy / factor
	fmt.Printf("goal:     %.3f J/frame\n", goal)
	fmt.Printf("achieved: %.3f J/frame at accuracy %.4f\n",
		rec.EnergyPerIterAvg(), rec.MeanAccuracy())

	// Compare with the omniscient oracle (Sec. 5.2 of the paper).
	orc, err := tb.NewOracle()
	if err != nil {
		log.Fatal(err)
	}
	if pt, ok := orc.BestAccuracyForFactor(factor); ok {
		fmt.Printf("oracle:   accuracy %.4f -> effective accuracy %.3f\n",
			pt.AppPoint.Accuracy, rec.MeanAccuracy()/pt.AppPoint.Accuracy)
	}
}
