// Approxhw: the paper's Sec. 3.7 extension — JouleGuard for approximate
// hardware. Here the accuracy knob does not change timing: a voltage-
// overscaled functional unit keeps its clock but draws less power, paying
// with occasional bit errors. The power-mode runtime finds the most
// efficient system configuration first and only then dips into hardware
// approximation for the remaining energy gap.
package main

import (
	"fmt"
	"log"

	"jouleguard"
)

func main() {
	unit, err := jouleguard.NewHardwareUnit(8, 0.7, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("voltage-overscaling ladder (accuracy measured from fault-injected arithmetic):")
	for _, p := range unit.MeasureFrontier(64) {
		fmt.Printf("  level %d: dynamic power x%.3f, output quality %.4f\n",
			p.Level, p.PowerScale, p.Accuracy)
	}

	tb, err := jouleguard.NewHardwareTestbed(unit, "Tablet")
	if err != nil {
		log.Fatal(err)
	}
	const iters = 800
	for _, f := range []float64{1.05, 1.25, 1.45} {
		gov, err := tb.NewJouleGuard(f, iters, jouleguard.Options{})
		if err != nil {
			log.Fatal(err)
		}
		rec, err := tb.Run(gov, iters)
		if err != nil {
			log.Fatal(err)
		}
		goal := tb.DefaultEnergy / f
		verdict := "met"
		if rec.EnergyPerIterAvg() > goal*1.02 {
			verdict = fmt.Sprintf("missed by %.1f%%", (rec.EnergyPerIterAvg()-goal)/goal*100)
		}
		if gov.Infeasible() {
			verdict += " (reported infeasible)"
		}
		fmt.Printf("f=%.2f: goal %.4f J/iter -> %.4f (%s), quality %.4f, final power scale %.3f\n",
			f, goal, rec.EnergyPerIterAvg(), verdict, rec.MeanAccuracy(), gov.Scale())
	}
}
