// Customapp: plugging your own approximate application into JouleGuard.
//
// The App interface needs five methods; here we implement an "approximate
// image blur" whose knob is the kernel radius sampling rate. Accuracy is
// measured for real (output difference against the exact blur), exactly
// like the built-in benchmarks.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"jouleguard"
)

const (
	size      = 64 // image side
	radius    = 4  // blur radius
	numLevels = 5  // approximation levels: sample every 1st, 2nd, ... tap
)

// Blur is a user-defined approximate application.
type Blur struct {
	images [][]float64 // flattened size x size images, cycled by iteration
	refs   [][]float64 // exact blur outputs per image
}

// NewBlur generates deterministic input images and their exact outputs.
func NewBlur() *Blur {
	b := &Blur{}
	for i := 0; i < 8; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		img := make([]float64, size*size)
		for p := range img {
			x, y := p%size, p/size
			img[p] = 128 + 80*math.Sin(float64(x)/7)*math.Cos(float64(y)/5) + 10*rng.NormFloat64()
		}
		b.images = append(b.images, img)
		out, _ := blur(img, 1)
		b.refs = append(b.refs, out)
	}
	return b
}

// blur applies a box blur sampling every `stride`-th tap, returning the
// output and the taps evaluated (the work).
func blur(img []float64, stride int) ([]float64, float64) {
	out := make([]float64, len(img))
	var work float64
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			var sum float64
			var n int
			for dy := -radius; dy <= radius; dy += stride {
				for dx := -radius; dx <= radius; dx += stride {
					xx, yy := x+dx, y+dy
					if xx < 0 || xx >= size || yy < 0 || yy >= size {
						continue
					}
					sum += img[yy*size+xx]
					n++
					work++
				}
			}
			out[y*size+x] = sum / float64(n)
		}
	}
	return out, work
}

// Name implements jouleguard.App.
func (b *Blur) Name() string { return "blur" }

// Metric implements jouleguard.App.
func (b *Blur) Metric() string { return "output PSNR" }

// NumConfigs implements jouleguard.App.
func (b *Blur) NumConfigs() int { return numLevels }

// DefaultConfig implements jouleguard.App: stride 1, the exact blur.
func (b *Blur) DefaultConfig() int { return 0 }

// Step implements jouleguard.App.
func (b *Blur) Step(cfg, iter int) (work, accuracy float64) {
	if cfg < 0 || cfg >= numLevels {
		cfg = 0
	}
	if iter < 0 {
		iter = -iter
	}
	img := b.images[iter%len(b.images)]
	ref := b.refs[iter%len(b.images)]
	out, w := blur(img, cfg+1)
	var mse float64
	for p := range out {
		d := out[p] - ref[p]
		mse += d * d
	}
	mse /= float64(len(out))
	// Accuracy: 1 at zero error, decaying with RMS error.
	return w, 1 / (1 + math.Sqrt(mse)/8)
}

func main() {
	// Tell the platform model how the app exercises hardware, then bind it
	// to a platform like any built-in benchmark.
	jouleguard.RegisterProfile(jouleguard.AppHardwareProfile{
		Name:          "blur",
		ParallelFrac:  0.97,
		MemFrac:       0.3,
		HTGain:        1.3,
		UnitsPerSpeed: 500000,
	})
	plat, err := jouleguard.PlatformByName("Tablet")
	if err != nil {
		log.Fatal(err)
	}
	tb, err := jouleguard.NewTestbedFrom(NewBlur(), plat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blur frontier (%d Pareto points, max speedup %.2fx):\n", tb.Frontier.Len(), tb.Frontier.MaxSpeedup())
	for _, p := range tb.Frontier.Points() {
		fmt.Printf("  config %d: speedup %.2fx, accuracy %.4f\n", p.Config, p.Speedup, p.Accuracy)
	}

	const iters = 600
	gov, err := tb.NewJouleGuard(1.8, iters, jouleguard.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rec, err := tb.Run(gov, iters)
	if err != nil {
		log.Fatal(err)
	}
	goal := tb.DefaultEnergy / 1.8
	fmt.Printf("\ngoal %.4f J/iter -> achieved %.4f J/iter at accuracy %.4f\n",
		goal, rec.EnergyPerIterAvg(), rec.MeanAccuracy())
}
