// Realmachine: driving JouleGuard on an actual Linux host. The
// OnlineController brackets your application's real work loop, and a
// LinuxRAPL reader supplies genuine package-energy counters from
// /sys/class/powercap — the same counters the paper reads via MSRs.
//
// Because CI machines and containers often lack powercap access, this
// example falls back to a simulated joule counter when RAPL is
// unavailable, so it always runs; on a real host with powercap it uses the
// true hardware counters.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"jouleguard"
)

func main() {
	// The "application": a compute kernel with a quality knob (iterations
	// of a Newton refinement — fewer are faster and less accurate). We use
	// the built-in radar benchmark's frontier machinery via a testbed so
	// the example stays short; the loop below is what a real integration
	// looks like.
	tb, err := jouleguard.NewTestbed("radar", "Server")
	if err != nil {
		log.Fatal(err)
	}
	const iters = 300
	gov, err := tb.NewJouleGuard(1.5, iters, jouleguard.Options{})
	if err != nil {
		log.Fatal(err)
	}

	readEnergy, source := energySource(tb)
	fmt.Printf("energy source: %s\n", source)
	start := time.Now()
	now := func() float64 { return time.Since(start).Seconds() }
	ctl, err := jouleguard.NewOnline(gov, readEnergy, now)
	if err != nil {
		log.Fatal(err)
	}

	var checksum float64
	for i := 0; i < iters; i++ {
		appCfg, sysCfg := ctl.Next()
		// A real integration applies sysCfg via DVFS/affinity here; this
		// example just burns CPU proportional to the chosen app config.
		checksum += burn(appCfg)
		_ = sysCfg
		if err := ctl.Done(1); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("completed %d iterations at %.1f iterations/s (checksum %.3g)\n",
		ctl.Iterations(), ctl.HeartRate(), checksum)
	if err := ctl.LastSensorError(); err != nil {
		fmt.Printf("note: sensor errors occurred: %v\n", err)
	}
}

// energySource returns a cumulative joule counter: real RAPL when
// available, otherwise a simulated constant-power counter.
func energySource(tb *jouleguard.Testbed) (func() (float64, error), string) {
	start := time.Now()
	if rapl, err := jouleguard.LinuxRAPL(tb.Platform.IdleW); err == nil {
		return func() (float64, error) {
			return rapl.ReadEnergyAt(time.Since(start).Seconds())
		}, fmt.Sprintf("Linux powercap RAPL (%d zones)", rapl.Zones())
	}
	return func() (float64, error) {
		// ~65 W synthetic machine.
		return 65 * time.Since(start).Seconds(), nil
	}, "simulated counter (powercap unavailable)"
}

// burn does real floating-point work scaled by the configuration index.
func burn(cfg int) float64 {
	n := 2000 + 50*cfg
	x := 2.0
	for i := 0; i < n; i++ {
		x = x - (x*x-2)/(2*x) + math.Sin(float64(i))*1e-12
	}
	return x
}
