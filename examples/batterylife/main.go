// Batterylife: the paper's motivating mobile scenario (Sec. 1) — "users
// need guarantees that their battery will last until they return to a
// charger". We encode video on the Mobile platform with a fixed number of
// joules left in the battery and a fixed number of frames to deliver;
// JouleGuard maximises quality while guaranteeing the charge lasts.
package main

import (
	"fmt"
	"log"

	"jouleguard"
	"jouleguard/internal/battery"
)

func main() {
	tb, err := jouleguard.NewTestbed("x264", "Mobile")
	if err != nil {
		log.Fatal(err)
	}

	const frames = 2000 // the video we must finish
	// A battery holding 55% of the energy the default configuration would
	// need, with a mild rate penalty (drawing hard wastes charge).
	needed := tb.DefaultEnergy * frames
	cell, err := battery.New(0.55*needed, tb.DefaultPower, 1.2)
	if err != nil {
		log.Fatal(err)
	}
	// A conservative budget that accounts for rate losses at the expected
	// draw; JouleGuard guarantees this budget, so the charge lasts.
	budget := cell.BudgetFor(tb.DefaultPower)
	fmt.Printf("video: %d frames; default would need %.1f J, battery delivers %.1f J\n",
		frames, needed, budget)

	gov, err := tb.NewJouleGuardBudget(budget, frames, jouleguard.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rec, err := tb.Run(gov, frames)
	if err != nil {
		log.Fatal(err)
	}

	// Replay the run's power trace against the battery model.
	for i := range rec.Powers {
		if _, err := cell.Draw(rec.Powers[i], rec.Durations[i]); err != nil {
			fmt.Printf("battery died at frame %d!\n", i)
			break
		}
	}
	fmt.Printf("finished %d frames using %.1f J (budget %.1f J)\n",
		rec.Iterations, rec.TrueEnergy, budget)
	if !cell.Empty() {
		fmt.Printf("battery verdict: made it to the charger with %.0f%% charge left\n",
			cell.StateOfCharge()*100)
	} else {
		fmt.Println("battery verdict: drained")
	}
	fmt.Printf("delivered quality: %.4f of full accuracy (PSNR ratio)\n", rec.MeanAccuracy())

	// The naive alternatives, for contrast:
	// 1) run at default and die early;
	fracDone := budget / needed
	fmt.Printf("naive default config: battery dies at frame %d of %d\n",
		int(fracDone*frames), frames)
	// 2) max approximation from the start: finishes, but at the worst
	//    quality the whole time.
	pts := tb.Frontier.Points()
	fmt.Printf("max approximation everywhere: accuracy %.4f\n", pts[len(pts)-1].Accuracy)
}
