// Serversearch: the paper's Sec. 2 scenario as a library user would write
// it — the swish++ search engine on a server with an energy cost target per
// query, comparing JouleGuard to the application-only and uncoordinated
// alternatives.
package main

import (
	"fmt"
	"log"

	"jouleguard"
)

func main() {
	tb, err := jouleguard.NewTestbed("swish++", "Server")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swish++ default: %.1f W, %.4f J per query batch\n", tb.DefaultPower, tb.DefaultEnergy)

	const iters = 1600
	const factor = 1.5 // cut energy per query by one third, as in Sec. 2

	run := func(name string, gov jouleguard.Governor) {
		rec, err := tb.Run(gov, iters)
		if err != nil {
			log.Fatal(err)
		}
		goal := tb.DefaultEnergy / factor
		status := "met"
		if rec.EnergyPerIterAvg() > goal*1.02 {
			status = fmt.Sprintf("missed by %.1f%%", (rec.EnergyPerIterAvg()-goal)/goal*100)
		}
		fmt.Printf("%-16s %.4f J/batch (goal %s), %5.1f%% of results returned\n",
			name, rec.EnergyPerIterAvg(), status, rec.MeanAccuracy()*100)
	}

	jg, err := tb.NewJouleGuard(factor, iters, jouleguard.Options{})
	if err != nil {
		log.Fatal(err)
	}
	run("JouleGuard", jg)

	appOnly, err := tb.NewAppOnly(factor, iters)
	if err != nil {
		log.Fatal(err)
	}
	run("application-only", appOnly)

	unc, err := tb.NewUncoordinated(factor, iters)
	if err != nil {
		log.Fatal(err)
	}
	run("uncoordinated", unc)
}
