package jouleguard

import (
	"errors"
	"fmt"

	"jouleguard/internal/guard"
	"jouleguard/internal/heartbeats"
	"jouleguard/internal/sim"
	"jouleguard/internal/telemetry"
)

// ErrOutOfSequence is returned (wrapped) by Done when no iteration is in
// flight, and recorded by Next when one already is. The Next/Done
// bracketing is a hard contract: out-of-order calls would silently
// corrupt the interval accounting the budget ledger is built on, so they
// are surfaced instead of absorbed. Callers that multiplex many control
// loops over one controller (the governor daemon) rely on this to map
// wire calls safely.
var ErrOutOfSequence = errors.New("jouleguard: Next/Done called out of sequence")

// OnlineController adapts any Governor (the JouleGuard runtime or a
// baseline) to a real application's main loop, the way the paper's C
// runtime is "compiled directly into an application" (Sec. 3.5). The
// application brackets each unit of work with Next/Done; the controller
// measures durations through the supplied clock, reads cumulative energy
// through the supplied meter, and feeds the governor.
//
//	ctl, _ := jouleguard.NewOnline(gov, readEnergyJ, nowSeconds)
//	for i := 0; i < frames; i++ {
//		appCfg, sysCfg := ctl.Next()
//		applyConfigs(appCfg, sysCfg) // your actuators
//		encodeFrame(i)
//		ctl.Done(measuredAccuracy)
//	}
//
// Use sensors' LinuxRAPLReader as the energy source on Linux hosts with
// powercap, or any monotone joule counter.
//
// The controller assumes nothing about the instruments' health: readings
// pass through a hardened sensing guard (median/MAD outlier rejection,
// stuck-sensor detection, counter-regression checks), a failed or
// rejected reading is replaced by a model-based estimate so the
// governor's iteration and budget accounting never desynchronise, and a
// clock that steps backwards is clamped and recorded instead of killing
// the caller's loop.
type OnlineController struct {
	gov        Governor
	readEnergy func() (float64, error)
	now        func() float64
	hb         *heartbeats.Monitor
	guard      *guard.Sensor

	iter       int
	started    bool
	startT     float64
	appCfg     int
	sysCfg     int
	prevApp    int
	prevSys    int
	haveCfg    bool
	prevEnergy float64 // counter value at the last accepted reading
	haveEnergy bool
	lastGoodT  float64 // clock at the last accepted reading
	estSinceJ  float64 // provisional joules integrated since the last accepted reading
	lastBeatT  float64
	lastErr    error
	failStreak int
	failTotal  int
	clockBack  int
	seqErrs    int
	lastSeqErr error

	tele telemetry.Sink // per-iteration telemetry; Nop when not instrumented
}

// NewOnline builds an online controller with the default sensing guard.
// readEnergy returns cumulative full-system joules; now returns seconds
// on a monotone clock.
func NewOnline(gov Governor, readEnergy func() (float64, error), now func() float64) (*OnlineController, error) {
	return NewOnlineGuarded(gov, readEnergy, now, SensorGuardConfig{})
}

// NewOnlineGuarded is NewOnline with an explicit sensing-guard
// configuration (set ModelPower to the platform's expected draw so the
// fallback estimate is meaningful before the first good reading).
func NewOnlineGuarded(gov Governor, readEnergy func() (float64, error), now func() float64, gcfg SensorGuardConfig) (*OnlineController, error) {
	if gov == nil {
		return nil, fmt.Errorf("jouleguard: nil governor")
	}
	if readEnergy == nil || now == nil {
		return nil, fmt.Errorf("jouleguard: nil energy reader or clock")
	}
	hb, err := heartbeats.NewMonitor(20)
	if err != nil {
		return nil, err
	}
	return &OnlineController{gov: gov, readEnergy: readEnergy, now: now, hb: hb,
		guard: guard.New(gcfg), tele: telemetry.Nop{}}, nil
}

// SetTelemetry streams per-iteration events — iteration durations and the
// sensing guard's verdicts — into a telemetry sink. To also trace the
// governor's decisions, pass the same sink through Options.Telemetry when
// building the runtime.
func (o *OnlineController) SetTelemetry(s TelemetrySink) {
	o.tele = telemetry.OrNop(s)
	o.guard.SetSink(o.tele)
}

// Next returns the configurations for the upcoming iteration and starts its
// timer. Calling Next again while an iteration is already in flight is a
// sequencing error: it is recorded (SequenceErrors, LastSequenceError)
// and the in-flight measurement is preserved — the original start time
// stands and the same configurations are returned, so the interval
// accounting is never silently restarted mid-iteration.
func (o *OnlineController) Next() (appCfg, sysCfg int) {
	if o.started {
		o.noteSequenceError("Next while an iteration is in flight")
		return o.appCfg, o.sysCfg
	}
	o.appCfg, o.sysCfg = o.gov.Decide(o.iter)
	if o.haveCfg && (o.appCfg != o.prevApp || o.sysCfg != o.prevSys) {
		// A configuration change legitimately moves the power level: tell
		// the guard so the new level is not rejected as an outlier.
		o.guard.NoteActuation()
	}
	o.prevApp, o.prevSys, o.haveCfg = o.appCfg, o.sysCfg, true
	o.startT = o.now()
	o.started = true
	return o.appCfg, o.sysCfg
}

// Done completes the iteration: it measures the elapsed time and energy,
// validates both through the sensing guard, and feeds the governor.
// accuracy is the application's own measure of this iteration's output
// quality (1 if it does not quantify accuracy; the runtime only needs the
// configuration ordering, Sec. 3.6).
//
// Sensor failures, rejected readings and backwards clocks never kill the
// loop and never skip the governor: the observation is delivered with the
// guard's model-based estimate and flagged as such, so the governor's
// iteration/budget accounting stays synchronised and its own watchdog can
// degrade gracefully.
func (o *OnlineController) Done(accuracy float64) error {
	if !o.started {
		o.noteSequenceError("Done without Next")
		return fmt.Errorf("%w: Done without Next", ErrOutOfSequence)
	}
	o.started = false
	end := o.now()
	dur := end - o.startT
	if dur < 0 {
		// Monotone-clock guard: clamp, record, continue.
		o.clockBack++
		dur = 0
	}
	var v guard.Verdict
	energy, err := o.readEnergy()
	switch {
	case err != nil:
		// Sensor hiccups must not desynchronise the accounting: deliver a
		// fallback observation instead of skipping the update.
		o.lastErr = err
		v = o.provisional(dur)
	case !o.haveEnergy:
		// First reading baselines the counter (it need not start at
		// zero); there is no delta to validate yet.
		o.prevEnergy, o.haveEnergy = energy, true
		o.lastGoodT, o.estSinceJ = end, 0
		v = o.provisional(dur)
	default:
		delta := energy - o.prevEnergy
		gap := end - o.lastGoodT // spans any intervening outage
		switch {
		case delta < 0:
			// Counter regression (reset or wrap): rebaseline; the
			// provisional estimates stand for the unknowable span.
			o.prevEnergy, o.lastGoodT, o.estSinceJ = energy, end, 0
			v = o.provisional(dur)
		case gap <= 0:
			// No measurable elapsed time to attribute the delta to.
			v = o.provisional(dur)
		default:
			// Average power since the last accepted reading. After an
			// outage this is the counter's own account of the gap — if
			// accepted, it replaces the provisional estimates so the
			// budget ledger resynchronises exactly.
			v = o.guard.Observe(delta/gap, gap)
			if v.Accepted {
				v.Energy = o.guard.AdjustEnergy(-o.estSinceJ)
				o.prevEnergy, o.lastGoodT, o.estSinceJ = energy, end, 0
			} else {
				// Rejected reading: keep the old baseline so the next
				// accepted one reconciles the whole span, and remember
				// what was just provisionally integrated.
				o.estSinceJ += v.Power * gap
			}
		}
	}
	if v.Accepted {
		o.failStreak = 0
		o.lastErr = nil
	} else {
		o.failStreak++
		o.failTotal++
	}
	beatT := end
	if beatT < o.lastBeatT {
		beatT = o.lastBeatT
	}
	o.lastBeatT = beatT
	if _, err := o.hb.Beat(beatT, o.appCfg); err != nil {
		return err
	}
	o.gov.Observe(sim.Feedback{
		Iter:           o.iter,
		AppConfig:      o.appCfg,
		SysConfig:      o.sysCfg,
		Work:           1,
		Duration:       dur,
		Power:          v.Power,
		Energy:         v.Energy,
		Accuracy:       accuracy,
		IterationsDone: o.iter + 1,
		Estimated:      !v.Accepted,
	})
	o.iter++
	o.tele.IterationDone(dur, !v.Accepted)
	return nil
}

// provisional integrates the guard's fallback estimate for an interval
// with no usable reading, tracking the joules provisionally booked so a
// later authoritative counter delta can replace them.
func (o *OnlineController) provisional(dur float64) guard.Verdict {
	v := o.guard.Missing(dur)
	if dur > 0 {
		o.estSinceJ += v.Power * dur
	}
	return v
}

// noteSequenceError records a Next/Done bracketing violation.
func (o *OnlineController) noteSequenceError(what string) {
	o.seqErrs++
	o.lastSeqErr = fmt.Errorf("%w: %s", ErrOutOfSequence, what)
}

// SequenceErrors returns how many Next/Done calls arrived out of order.
func (o *OnlineController) SequenceErrors() int { return o.seqErrs }

// LastSequenceError returns the most recent bracketing violation (nil if
// none); it wraps ErrOutOfSequence.
func (o *OnlineController) LastSequenceError() error { return o.lastSeqErr }

// InFlight reports whether an iteration is currently bracketed (Next
// issued, Done pending).
func (o *OnlineController) InFlight() bool { return o.started }

// EnergyAccounted returns the cumulative joules the sensing guard has
// attributed to the run — the cleaned ledger the governor's budget
// accounting sees, combining accepted meter deltas and model-based
// estimates for the gaps.
func (o *OnlineController) EnergyAccounted() float64 { return o.guard.Energy() }

// Iterations returns how many iterations completed.
func (o *OnlineController) Iterations() int { return o.iter }

// HeartRate returns the windowed iteration rate (beats/second).
func (o *OnlineController) HeartRate() float64 { return o.hb.WindowRate() }

// LastSensorError returns the most recent energy-reader failure; it is
// cleared once a reading is accepted again.
func (o *OnlineController) LastSensorError() error { return o.lastErr }

// ConsecutiveFailures returns the current run of iterations whose
// readings were missing or rejected.
func (o *OnlineController) ConsecutiveFailures() int { return o.failStreak }

// SensorFailures returns the total count of missing or rejected readings.
func (o *OnlineController) SensorFailures() int { return o.failTotal }

// ClockAnomalies returns how many times the clock stepped backwards
// across an iteration (each clamped to a zero-duration observation).
func (o *OnlineController) ClockAnomalies() int { return o.clockBack }

// GuardCounts returns the sensing guard's accepted/rejected totals.
func (o *OnlineController) GuardCounts() (accepted, rejected int) { return o.guard.Counts() }
