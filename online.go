package jouleguard

import (
	"fmt"

	"jouleguard/internal/heartbeats"
	"jouleguard/internal/sim"
)

// OnlineController adapts any Governor (the JouleGuard runtime or a
// baseline) to a real application's main loop, the way the paper's C
// runtime is "compiled directly into an application" (Sec. 3.5). The
// application brackets each unit of work with Next/Done; the controller
// measures durations through the supplied clock, reads cumulative energy
// through the supplied meter, and feeds the governor.
//
//	ctl, _ := jouleguard.NewOnline(gov, readEnergyJ, nowSeconds)
//	for i := 0; i < frames; i++ {
//		appCfg, sysCfg := ctl.Next()
//		applyConfigs(appCfg, sysCfg) // your actuators
//		encodeFrame(i)
//		ctl.Done(measuredAccuracy)
//	}
//
// Use sensors' LinuxRAPLReader as the energy source on Linux hosts with
// powercap, or any monotone joule counter.
type OnlineController struct {
	gov        Governor
	readEnergy func() (float64, error)
	now        func() float64
	hb         *heartbeats.Monitor

	iter       int
	started    bool
	startT     float64
	appCfg     int
	sysCfg     int
	prevEnergy float64
	lastErr    error
}

// NewOnline builds an online controller. readEnergy returns cumulative
// full-system joules; now returns seconds on a monotone clock.
func NewOnline(gov Governor, readEnergy func() (float64, error), now func() float64) (*OnlineController, error) {
	if gov == nil {
		return nil, fmt.Errorf("jouleguard: nil governor")
	}
	if readEnergy == nil || now == nil {
		return nil, fmt.Errorf("jouleguard: nil energy reader or clock")
	}
	hb, err := heartbeats.NewMonitor(20)
	if err != nil {
		return nil, err
	}
	return &OnlineController{gov: gov, readEnergy: readEnergy, now: now, hb: hb}, nil
}

// Next returns the configurations for the upcoming iteration and starts its
// timer. Calling Next twice without Done restarts the measurement.
func (o *OnlineController) Next() (appCfg, sysCfg int) {
	o.appCfg, o.sysCfg = o.gov.Decide(o.iter)
	o.startT = o.now()
	o.started = true
	return o.appCfg, o.sysCfg
}

// Done completes the iteration: it measures the elapsed time and energy and
// feeds the governor. accuracy is the application's own measure of this
// iteration's output quality (1 if it does not quantify accuracy; the
// runtime only needs the configuration ordering, Sec. 3.6).
func (o *OnlineController) Done(accuracy float64) error {
	if !o.started {
		return fmt.Errorf("jouleguard: Done without Next")
	}
	o.started = false
	end := o.now()
	dur := end - o.startT
	if dur < 0 {
		return fmt.Errorf("jouleguard: clock went backwards (%v)", dur)
	}
	energy, err := o.readEnergy()
	if err != nil {
		// Sensor hiccups must not kill the loop: remember and skip the
		// update (the governor holds its decision on zero-duration
		// feedback).
		o.lastErr = err
		o.iter++
		return nil
	}
	if _, err := o.hb.Beat(end, o.appCfg); err != nil {
		return err
	}
	var power float64
	if dur > 0 {
		// Average power over the iteration, derived from the energy delta.
		power = (energy - o.prevEnergy) / dur
		if power < 0 {
			power = 0
		}
	}
	o.prevEnergy = energy
	o.gov.Observe(sim.Feedback{
		Iter:           o.iter,
		AppConfig:      o.appCfg,
		SysConfig:      o.sysCfg,
		Work:           1,
		Duration:       dur,
		Power:          power,
		Energy:         energy,
		Accuracy:       accuracy,
		IterationsDone: o.iter + 1,
	})
	o.iter++
	return nil
}

// Iterations returns how many iterations completed.
func (o *OnlineController) Iterations() int { return o.iter }

// HeartRate returns the windowed iteration rate (beats/second).
func (o *OnlineController) HeartRate() float64 { return o.hb.WindowRate() }

// LastSensorError returns the most recent energy-reader failure, if any.
func (o *OnlineController) LastSensorError() error { return o.lastErr }
