package jouleguard_test

import (
	"math/rand"
	"testing"

	"jouleguard"
	"jouleguard/internal/sim"
)

// TestFullMatrixSmoke runs every benchmark on every platform at a moderate
// goal with a short horizon: the point is breadth (no panics, valid
// decisions, sane outputs across all 24 combinations), not convergence —
// the convergence claims are covered by the longer targeted tests and the
// experiment suite.
func TestFullMatrixSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix smoke is not short")
	}
	for _, platName := range jouleguard.Platforms() {
		for _, appName := range jouleguard.Benchmarks() {
			platName, appName := platName, appName
			t.Run(platName+"/"+appName, func(t *testing.T) {
				t.Parallel()
				tb, err := jouleguard.NewTestbed(appName, platName)
				if err != nil {
					t.Fatal(err)
				}
				iters := 150
				// A goal inside every app's feasible range.
				factor := 1.15
				gov, err := tb.NewJouleGuard(factor, iters, jouleguard.Options{})
				if err != nil {
					t.Fatal(err)
				}
				rec, err := tb.Run(gov, iters)
				if err != nil {
					t.Fatal(err)
				}
				if rec.Iterations != iters {
					t.Fatalf("iterations: %d", rec.Iterations)
				}
				for i, acc := range rec.Accuracies {
					if acc < 0 || acc > 1 {
						t.Fatalf("iteration %d: accuracy %v", i, acc)
					}
				}
				for i, cfg := range rec.AppConfigs {
					if cfg < 0 || cfg >= tb.App.NumConfigs() {
						t.Fatalf("iteration %d: app config %d", i, cfg)
					}
				}
				goal := tb.DefaultEnergy / factor
				if epi := rec.EnergyPerIterAvg(); epi > goal*2 {
					t.Fatalf("energy wildly over goal: %v vs %v", epi, goal)
				}
			})
		}
	}
}

// chaosGovWrap wraps the runtime and injects adversarial feedback
// perturbations: duplicated iterations numbers, zero durations, absurd
// powers. The runtime must never emit an out-of-range decision or panic —
// robustness the paper implies by running on noisy real hardware.
func TestRuntimeRobustToChaoticFeedback(t *testing.T) {
	tb, err := jouleguard.NewTestbed("radar", "Tablet")
	if err != nil {
		t.Fatal(err)
	}
	gov, err := tb.NewJouleGuard(2, 400, jouleguard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	nApp := tb.App.NumConfigs()
	nSys := tb.Platform.NumConfigs()
	var energy float64
	for i := 0; i < 400; i++ {
		appCfg, sysCfg := gov.Decide(i)
		if appCfg < 0 || appCfg >= nApp || sysCfg < 0 || sysCfg >= nSys {
			t.Fatalf("iteration %d: decision out of range (%d, %d)", i, appCfg, sysCfg)
		}
		fb := sim.Feedback{
			Iter:           i,
			AppConfig:      appCfg,
			SysConfig:      sysCfg,
			Work:           1,
			Duration:       rng.Float64() * 0.1,
			Power:          rng.Float64() * 500,
			Energy:         energy,
			Accuracy:       rng.Float64(),
			IterationsDone: i + 1,
		}
		switch rng.Intn(6) {
		case 0:
			fb.Duration = 0 // dropped measurement
		case 1:
			fb.Power = 0
		case 2:
			fb.Energy = energy * 2 // sensor glitch: energy jumps
		case 3:
			fb.SysConfig = rng.Intn(nSys) // ran somewhere unexpected
		}
		energy += fb.Power * fb.Duration
		gov.Observe(fb)
	}
}

// TestSeedsChangeTrajectoriesNotOutcomes: different seeds explore
// differently but all respect the budget on an easy goal.
func TestSeedsChangeTrajectoriesNotOutcomes(t *testing.T) {
	tb, err := jouleguard.NewTestbed("streamcluster", "Tablet")
	if err != nil {
		t.Fatal(err)
	}
	iters := 400
	goal := tb.DefaultEnergy / 1.5
	var firstEnergy float64
	for seed := int64(1); seed <= 3; seed++ {
		gov, err := tb.NewJouleGuard(1.5, iters, jouleguard.Options{Seed: seed * 7})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := tb.Run(gov, iters)
		if err != nil {
			t.Fatal(err)
		}
		if epi := rec.EnergyPerIterAvg(); epi > goal*1.05 {
			t.Errorf("seed %d: energy %v over goal %v", seed, epi, goal)
		}
		if seed == 1 {
			firstEnergy = rec.TrueEnergy
		}
	}
	_ = firstEnergy
}

// TestRunDisturbedKeepsBudget: external interference — a co-located job
// stealing cycles and a thermal excursion raising power mid-run — must
// not break the energy guarantee end to end; the runtime re-plans from
// the measured deficit.
func TestRunDisturbedKeepsBudget(t *testing.T) {
	tb, err := jouleguard.NewTestbed("streamcluster", "Tablet")
	if err != nil {
		t.Fatal(err)
	}
	iters := 600
	factor := 1.5
	gov, err := tb.NewJouleGuard(factor, iters, jouleguard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tb.RunDisturbed(gov, iters, func(iter int) (float64, float64) {
		if iter >= 200 && iter < 350 {
			return 0.7, 1.25 // interference: 30% slower, 25% hotter
		}
		return 1, 1
	})
	if err != nil {
		t.Fatal(err)
	}
	budget := tb.DefaultEnergy / factor * float64(iters)
	if rec.TrueEnergy > budget*1.05 {
		t.Fatalf("disturbed run broke the budget: %.1f J vs %.1f J", rec.TrueEnergy, budget)
	}
	if rec.Iterations != iters {
		t.Fatalf("iterations: %d", rec.Iterations)
	}
}

// TestRunFaultyGroundTruthHonest: fault injection corrupts only what the
// governor perceives; the Record's ground truth must match the external
// meter and stay finite.
func TestRunFaultyGroundTruthHonest(t *testing.T) {
	tb, err := jouleguard.NewTestbed("radar", "Tablet")
	if err != nil {
		t.Fatal(err)
	}
	iters := 300
	gov, err := tb.NewJouleGuard(1.5, iters, jouleguard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	scenarios, err := jouleguard.FaultScenariosByName([]string{"combined"})
	if err != nil {
		t.Fatal(err)
	}
	inj := scenarios[0].Make(7, 1/tb.DefaultRate)
	rec, err := tb.RunFaulty(gov, iters, inj)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Iterations != iters {
		t.Fatalf("iterations: %d", rec.Iterations)
	}
	if rec.TrueEnergy <= 0 {
		t.Fatalf("true energy: %v", rec.TrueEnergy)
	}
	if rec.GuardAccepted+rec.GuardRejected != iters {
		t.Fatalf("guard verdicts %d+%d do not cover the run", rec.GuardAccepted, rec.GuardRejected)
	}
	var sum float64
	for _, e := range rec.EnergyPerIter {
		sum += e
	}
	if diff := (sum - rec.TrueEnergy) / rec.TrueEnergy; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("per-iteration energies do not sum to ground truth: %v vs %v", sum, rec.TrueEnergy)
	}
}
