package jouleguard

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestTelemetryEndToEnd runs a real testbed experiment with a live
// telemetry sink and checks the two exposition contracts from the
// outside, over HTTP:
//
//   - /metrics parses as Prometheus text exposition format, with a HELP
//     and TYPE line for every metric family that has samples;
//   - /decisions replays, in order, the exact configurations the run's
//     Record says were in effect each iteration.
func TestTelemetryEndToEnd(t *testing.T) {
	const iters = 120
	tb, err := NewTestbed("radar", "Mobile")
	if err != nil {
		t.Fatal(err)
	}
	tel := NewTelemetry(iters) // hold the whole run
	gov, err := tb.NewJouleGuard(1.5, iters, Options{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tb.Run(gov, iters)
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	// --- /decisions replays the Record ---------------------------------
	resp, err := srv.Client().Get(srv.URL + "/decisions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decisions []Decision
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var d Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("decision line %d: %v", len(decisions), err)
		}
		decisions = append(decisions, d)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(decisions) != rec.Iterations {
		t.Fatalf("flight recorder holds %d decisions, run had %d iterations", len(decisions), rec.Iterations)
	}
	for i, d := range decisions {
		if d.Iter != i {
			t.Fatalf("decision %d carries iteration %d", i, d.Iter)
		}
		if d.AppConfig != rec.AppConfigs[i] || d.SysConfig != rec.SysConfigs[i] {
			t.Fatalf("decision %d ran (app=%d, sys=%d); Record says (app=%d, sys=%d)",
				i, d.AppConfig, d.SysConfig, rec.AppConfigs[i], rec.SysConfigs[i])
		}
	}

	// --- /metrics parses and reflects the run --------------------------
	resp2, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type %q lacks exposition version", ct)
	}
	var (
		helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
		typeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
		sampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? (NaN|[-+]?(Inf|[0-9].*))$`)
	)
	samples := map[string]float64{}
	sm := bufio.NewScanner(resp2.Body)
	for sm.Scan() {
		line := sm.Text()
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP"):
			if !helpRe.MatchString(line) {
				t.Errorf("malformed HELP line: %q", line)
			}
		case strings.HasPrefix(line, "# TYPE"):
			if !typeRe.MatchString(line) {
				t.Errorf("malformed TYPE line: %q", line)
			}
		default:
			if !sampleRe.MatchString(line) {
				t.Errorf("malformed sample line: %q", line)
			}
			fields := strings.Fields(line)
			if v, err := strconv.ParseFloat(fields[len(fields)-1], 64); err == nil {
				samples[fields[0]] = v
			}
		}
	}
	if err := sm.Err(); err != nil {
		t.Fatal(err)
	}
	if got := samples["jouleguard_decisions_total"]; got != float64(iters) {
		t.Errorf("jouleguard_decisions_total = %v, want %d", got, iters)
	}
	if got := samples["jouleguard_control_steps_total"]; got <= 0 {
		t.Errorf("jouleguard_control_steps_total = %v, want > 0", got)
	}
	if got := samples["jouleguard_estimator_updates_total"]; got != float64(iters) {
		t.Errorf("jouleguard_estimator_updates_total = %v, want %d (one per sane iteration)", got, iters)
	}
}
