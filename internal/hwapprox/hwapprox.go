// Package hwapprox implements the approximate-hardware extension the paper
// sketches in Sec. 3.7: hardware that "maintains the same timing, but
// reduces power consumption" in exchange for occasionally returning wrong
// results (voltage overscaling, inexact arithmetic — Truffle, Palem et al.,
// cited there).
//
// The substrate is a real computation under fault injection, not a lookup
// table: each Unit configuration scales supply power; lower power raises
// the probability that an arithmetic operation suffers a bit flip, and the
// unit's accuracy is measured by running dot-product workloads through the
// faulty arithmetic and comparing against the exact result.
package hwapprox

import (
	"fmt"
	"math"
	"math/rand"
)

// Level is one hardware approximation setting.
type Level struct {
	PowerScale float64 // multiplier on dynamic power, in (0, 1]
	BitErrProb float64 // per-operation probability of a low-order bit flip
}

// Unit is a simulated approximate functional unit with a ladder of
// voltage-overscaled levels. Level 0 is exact at full power.
type Unit struct {
	levels []Level
	vecLen int
	pool   [][]float64 // operand pool, deterministic
	refs   []float64   // exact dot products per pool pair
}

// NewUnit builds a unit with n levels scaling power down to minPowerScale.
// The bit-error probability grows quadratically as the voltage margin
// shrinks — the standard overscaling model (Palem et al.).
func NewUnit(n int, minPowerScale float64, seed int64) (*Unit, error) {
	if n < 2 {
		return nil, fmt.Errorf("hwapprox: need at least two levels, got %d", n)
	}
	if minPowerScale <= 0 || minPowerScale >= 1 {
		return nil, fmt.Errorf("hwapprox: min power scale %v outside (0, 1)", minPowerScale)
	}
	u := &Unit{vecLen: 64}
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		scale := 1 - (1-minPowerScale)*frac
		margin := (scale - minPowerScale) / (1 - minPowerScale) // 1 at full power, 0 at floor
		u.levels = append(u.levels, Level{
			PowerScale: scale,
			BitErrProb: 0.02 * (1 - margin) * (1 - margin),
		})
	}
	u.levels[0].BitErrProb = 0
	rng := rand.New(rand.NewSource(seed))
	const pairs = 32
	for p := 0; p < pairs; p++ {
		a := make([]float64, u.vecLen)
		b := make([]float64, u.vecLen)
		for i := range a {
			a[i] = rng.Float64()*16 - 8
			b[i] = rng.Float64()*16 - 8
		}
		u.pool = append(u.pool, a, b)
		var ref float64
		for i := range a {
			ref += a[i] * b[i]
		}
		u.refs = append(u.refs, ref)
	}
	return u, nil
}

// NumLevels returns the number of approximation levels.
func (u *Unit) NumLevels() int { return len(u.levels) }

// Levels returns a copy of the level ladder.
func (u *Unit) Levels() []Level { return append([]Level(nil), u.levels...) }

// PowerScale returns the dynamic-power multiplier of a level.
func (u *Unit) PowerScale(level int) float64 {
	if level < 0 || level >= len(u.levels) {
		return 1
	}
	return u.levels[level].PowerScale
}

// flip injects a fault into a float: a bit flip in the low-order mantissa
// region, modelled as a relative perturbation of up to ~6%.
func flip(x float64, rng *rand.Rand) float64 {
	if x == 0 {
		return 0.01 * (rng.Float64() - 0.5)
	}
	mag := math.Exp2(float64(rng.Intn(6)) - 9) // 2^-9 .. 2^-4
	if rng.Intn(2) == 0 {
		mag = -mag
	}
	return x * (1 + mag)
}

// Compute runs one dot-product workload at the given level for input index
// `iter` and returns the abstract work, the result's accuracy versus the
// exact unit, and the level's power scale. Deterministic per (level, iter).
func (u *Unit) Compute(level, iter int) (work, accuracy, powerScale float64) {
	if level < 0 || level >= len(u.levels) {
		level = 0
	}
	if iter < 0 {
		iter = -iter
	}
	pair := iter % (len(u.pool) / 2)
	a, b := u.pool[2*pair], u.pool[2*pair+1]
	ref := u.refs[pair]
	lv := u.levels[level]
	rng := rand.New(rand.NewSource(int64(level)*1_000_003 + int64(iter) + 7))
	var acc float64
	for i := range a {
		prod := a[i] * b[i]
		if lv.BitErrProb > 0 && rng.Float64() < lv.BitErrProb {
			prod = flip(prod, rng)
		}
		acc += prod
		if lv.BitErrProb > 0 && rng.Float64() < lv.BitErrProb {
			acc = flip(acc, rng)
		}
	}
	denom := math.Abs(ref)
	if denom < 1 {
		denom = 1
	}
	relErr := math.Abs(acc-ref) / denom
	quality := 1 / (1 + 12*relErr)
	return float64(2 * u.vecLen), quality, lv.PowerScale
}

// Frontier returns the unit's (power saving, accuracy) trade-off measured
// over calibration inputs: for each level, the mean accuracy and the power
// scale. Accuracy is non-increasing as power drops, by construction of the
// error model; the measurement is genuinely noisy.
type FrontierPoint struct {
	Level      int
	PowerScale float64
	Accuracy   float64
}

// Approx adapts a Unit to the application interface the simulator drives:
// every iteration runs one faulty-arithmetic workload; the configuration id
// is the approximation level. It also implements the simulator's
// PowerScaler hook, which is what makes the level change power instead of
// timing.
type Approx struct {
	*Unit
}

// Name implements the App interface.
func (Approx) Name() string { return "hwapprox" }

// Metric implements the App interface.
func (Approx) Metric() string { return "output quality" }

// NumConfigs implements the App interface.
func (a Approx) NumConfigs() int { return a.NumLevels() }

// DefaultConfig implements the App interface: level 0, exact at full power.
func (Approx) DefaultConfig() int { return 0 }

// Step implements the App interface.
func (a Approx) Step(cfg, iter int) (work, accuracy float64) {
	w, q, _ := a.Compute(cfg, iter)
	return w, q
}

// MeasureFrontier profiles each level over `iters` workloads.
func (u *Unit) MeasureFrontier(iters int) []FrontierPoint {
	if iters <= 0 {
		iters = 16
	}
	out := make([]FrontierPoint, len(u.levels))
	for l := range u.levels {
		var sum float64
		for it := 0; it < iters; it++ {
			_, q, _ := u.Compute(l, it)
			sum += q
		}
		out[l] = FrontierPoint{Level: l, PowerScale: u.levels[l].PowerScale, Accuracy: sum / float64(iters)}
	}
	return out
}
