package hwapprox

import (
	"math"
	"testing"
)

func TestNewUnitValidates(t *testing.T) {
	if _, err := NewUnit(1, 0.7, 1); err == nil {
		t.Error("want error for one level")
	}
	if _, err := NewUnit(4, 0, 1); err == nil {
		t.Error("want error for zero power scale")
	}
	if _, err := NewUnit(4, 1, 1); err == nil {
		t.Error("want error for scale 1")
	}
}

func TestLevelLadderShape(t *testing.T) {
	u, err := NewUnit(8, 0.7, 3)
	if err != nil {
		t.Fatal(err)
	}
	lv := u.Levels()
	if lv[0].PowerScale != 1 || lv[0].BitErrProb != 0 {
		t.Fatalf("level 0 must be exact at full power: %+v", lv[0])
	}
	if math.Abs(lv[7].PowerScale-0.7) > 1e-12 {
		t.Fatalf("last level scale: %v", lv[7].PowerScale)
	}
	for i := 1; i < len(lv); i++ {
		if lv[i].PowerScale >= lv[i-1].PowerScale {
			t.Fatal("power scales must strictly decrease")
		}
		if lv[i].BitErrProb < lv[i-1].BitErrProb {
			t.Fatal("bit-error probability must not decrease as power drops")
		}
	}
}

func TestExactLevelIsExact(t *testing.T) {
	u, _ := NewUnit(6, 0.7, 4)
	for it := 0; it < 20; it++ {
		_, q, ps := u.Compute(0, it)
		if q != 1 || ps != 1 {
			t.Fatalf("level 0: quality %v, scale %v", q, ps)
		}
	}
}

func TestDeterministicCompute(t *testing.T) {
	u, _ := NewUnit(6, 0.7, 5)
	w1, q1, _ := u.Compute(4, 9)
	w2, q2, _ := u.Compute(4, 9)
	if w1 != w2 || q1 != q2 {
		t.Fatal("compute not deterministic")
	}
}

func TestQualityDegradesWithOverscaling(t *testing.T) {
	u, _ := NewUnit(8, 0.7, 6)
	front := u.MeasureFrontier(64)
	if len(front) != 8 {
		t.Fatalf("frontier size: %d", len(front))
	}
	if front[0].Accuracy != 1 {
		t.Fatalf("exact level accuracy: %v", front[0].Accuracy)
	}
	last := front[len(front)-1]
	if last.Accuracy >= 0.999 {
		t.Fatalf("deepest overscaling shows no degradation: %v", last.Accuracy)
	}
	// Broadly monotone: each level at most marginally better than the
	// previous (individual noise allowed).
	for i := 1; i < len(front); i++ {
		if front[i].Accuracy > front[i-1].Accuracy+0.02 {
			t.Fatalf("accuracy rose sharply with overscaling at level %d: %v > %v",
				i, front[i].Accuracy, front[i-1].Accuracy)
		}
	}
}

func TestComputeBadInputs(t *testing.T) {
	u, _ := NewUnit(4, 0.7, 7)
	w, q, ps := u.Compute(-1, -3)
	if w <= 0 || q <= 0 || q > 1 || ps != 1 {
		t.Fatalf("bad-input compute: w=%v q=%v ps=%v", w, q, ps)
	}
	if u.PowerScale(99) != 1 {
		t.Fatal("out-of-range level must report scale 1")
	}
}

func TestApproxAdapter(t *testing.T) {
	u, _ := NewUnit(5, 0.75, 8)
	a := Approx{u}
	if a.Name() != "hwapprox" || a.NumConfigs() != 5 || a.DefaultConfig() != 0 {
		t.Fatal("adapter surface wrong")
	}
	w, acc := a.Step(2, 3)
	if w <= 0 || acc <= 0 || acc > 1 {
		t.Fatalf("adapter step: %v %v", w, acc)
	}
	if a.PowerScale(4) >= a.PowerScale(1) {
		t.Fatal("power scale ordering wrong")
	}
}
