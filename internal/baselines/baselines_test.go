package baselines

import (
	"math"
	"testing"

	"jouleguard/internal/apps"
	"jouleguard/internal/knob"
	"jouleguard/internal/platform"
	"jouleguard/internal/sim"
)

// setup builds a shared testbed: radar on Tablet (small, fast spaces).
type world struct {
	app      apps.App
	plat     *platform.Platform
	frontier *knob.Frontier
	priors   func(int) (float64, float64)
	defRate  float64
	defPower float64
	work     float64
}

func newWorld(t *testing.T) *world {
	t.Helper()
	app, err := apps.New("radar")
	if err != nil {
		t.Fatal(err)
	}
	plat := platform.Tablet()
	frontier, err := apps.CalibratedFrontier(app)
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := platform.ProfileFor("radar")
	var work float64
	for i := 0; i < 4; i++ {
		w, _ := app.Step(app.DefaultConfig(), i)
		work += w
	}
	work /= 4
	base := plat.Priors(prof)
	priors := func(arm int) (float64, float64) {
		r, p := base.Estimate(arm)
		return r / work, p
	}
	def := plat.DefaultConfig()
	return &world{
		app:      app,
		plat:     plat,
		frontier: frontier,
		priors:   priors,
		defRate:  plat.Rate(def, prof) / work,
		defPower: plat.Power(def, prof),
		work:     work,
	}
}

type priorsFunc func(int) (float64, float64)

func (f priorsFunc) Estimate(arm int) (float64, float64) { return f(arm) }

func (w *world) run(t *testing.T, gov sim.Governor, iters int) *sim.Record {
	t.Helper()
	eng, err := sim.New(w.app, w.plat, 5)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := eng.Run(iters, gov)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestSystemOnlyKeepsFullAccuracy(t *testing.T) {
	w := newWorld(t)
	gov, err := NewSystemOnly(w.app.DefaultConfig(), w.plat.NumConfigs(), priorsFunc(w.priors), 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := w.run(t, gov, 300)
	if acc := rec.MeanAccuracy(); math.Abs(acc-1) > 1e-9 {
		t.Fatalf("system-only accuracy %v, want 1", acc)
	}
	// It must find a configuration at least as efficient as the default
	// (on Tablet the default is near-peak, so just check no regression).
	prof, _ := platform.ProfileFor("radar")
	defEff := w.plat.Efficiency(w.plat.DefaultConfig(), prof)
	gotEff := w.plat.Efficiency(gov.BestArm(), prof)
	if gotEff < defEff*0.9 {
		t.Fatalf("system-only converged to a poor config: eff %v vs default %v", gotEff, defEff)
	}
}

func TestSystemOnlyValidates(t *testing.T) {
	if _, err := NewSystemOnly(0, 0, priorsFunc(func(int) (float64, float64) { return 1, 1 }), 1); err == nil {
		t.Fatal("want error for zero configs")
	}
}

func TestAppOnlyMeetsGoalViaAccuracy(t *testing.T) {
	w := newWorld(t)
	iters := 400
	// Radar barely loses accuracy until its filter gets very short, so use
	// an aggressive goal to force visible loss.
	f := 10.0
	defEPI := w.defPower / w.defRate
	budget := defEPI / f * float64(iters)
	gov, err := NewAppOnly(float64(iters), budget, w.frontier, w.plat.DefaultConfig(), w.defRate, w.defPower)
	if err != nil {
		t.Fatal(err)
	}
	rec := w.run(t, gov, iters)
	// It must sacrifice accuracy (the system stays at default).
	if acc := rec.MeanAccuracy(); acc > 0.999 {
		t.Fatalf("app-only met a 10x goal without losing accuracy (%v)?", acc)
	}
	// And it must be close to the budget.
	if over := (rec.TrueEnergy - budget) / budget; over > 0.08 {
		t.Fatalf("app-only overshot budget by %.1f%%", over*100)
	}
	// The system configuration never moves.
	for _, s := range rec.SysConfigs {
		if s != w.plat.DefaultConfig() {
			t.Fatal("app-only moved the system configuration")
		}
	}
}

func TestAppOnlyValidates(t *testing.T) {
	w := newWorld(t)
	if _, err := NewAppOnly(10, 10, w.frontier, 0, 0, 1); err == nil {
		t.Fatal("want error for zero default rate")
	}
	if _, err := NewAppOnly(10, 10, w.frontier, 0, 1, 0); err == nil {
		t.Fatal("want error for zero default power")
	}
}

func TestAppOnlyLosesMoreAccuracyThanNecessary(t *testing.T) {
	// The central claim of Sec. 2: for the same goal, application-only
	// approximation must lose more accuracy than an approach that can also
	// make the system more efficient. Here we simply verify that at an
	// aggressive goal the app-only governor ends at (or near) its maximum
	// approximation.
	w := newWorld(t)
	iters := 300
	defEPI := w.defPower / w.defRate
	budget := defEPI / 25 * float64(iters) // beyond radar's 19.39x max speedup
	gov, err := NewAppOnly(float64(iters), budget, w.frontier, w.plat.DefaultConfig(), w.defRate, w.defPower)
	if err != nil {
		t.Fatal(err)
	}
	rec := w.run(t, gov, iters)
	last := rec.AppConfigs[len(rec.AppConfigs)-1]
	pts := w.frontier.Points()
	if last != pts[len(pts)-1].Config {
		t.Fatalf("aggressive goal should pin max speedup config, got %d", last)
	}
}

func TestUncoordinatedValidates(t *testing.T) {
	w := newWorld(t)
	if _, err := NewUncoordinated(10, 10, w.frontier, w.plat.NumConfigs(), priorsFunc(w.priors), 0, 1, 1); err == nil {
		t.Fatal("want error for zero default rate")
	}
}

func TestUncoordinatedMisattributesSpeedup(t *testing.T) {
	// The uncoordinated learner folds raw (app-speedup-inflated) rates into
	// its system estimates. Drive it with synthetic feedback where the app
	// speeds up 10x while the system is constant: its rate estimate for the
	// visited config must blow up past the true system rate.
	w := newWorld(t)
	gov, err := NewUncoordinated(1000, 1e9, w.frontier, w.plat.NumConfigs(), priorsFunc(w.priors), w.defRate, w.defPower, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys := w.plat.DefaultConfig()
	for i := 0; i < 50; i++ {
		gov.Observe(sim.Feedback{
			Iter: i, AppConfig: 0, SysConfig: sys,
			Duration: 1 / (w.defRate * 10), Power: w.defPower,
			Energy: float64(i), IterationsDone: i + 1,
		})
	}
	if est := gov.bandit.Rate(sys); est < w.defRate*5 {
		t.Fatalf("uncoordinated learner should have absorbed the inflated rate, estimate %v vs true %v", est, w.defRate)
	}
}

func TestUncoordinatedWorseThanCoordinatedBehaviour(t *testing.T) {
	// End to end: uncoordinated must show higher configuration churn than
	// the app-only baseline at the same goal (the instability signature of
	// Fig. 1).
	w := newWorld(t)
	iters := 400
	defEPI := w.defPower / w.defRate
	budget := defEPI / 1.5 * float64(iters)
	unc, err := NewUncoordinated(float64(iters), budget, w.frontier, w.plat.NumConfigs(), priorsFunc(w.priors), w.defRate, w.defPower, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := w.run(t, unc, iters)
	churn := 0
	for i := 1; i < len(rec.AppConfigs); i++ {
		if rec.AppConfigs[i] != rec.AppConfigs[i-1] {
			churn++
		}
	}
	if churn < iters/20 {
		t.Fatalf("uncoordinated run suspiciously stable: %d app-config switches", churn)
	}
}

func TestBaselinesIgnoreCorruptFeedback(t *testing.T) {
	// Corrupt or model-estimated samples must not move any baseline's
	// next decision: learners that ingest NaN rates or estimated power
	// would poison their efficiency tables.
	w := newWorld(t)
	sys, err := NewSystemOnly(w.app.DefaultConfig(), w.plat.NumConfigs(), priorsFunc(w.priors), 1)
	if err != nil {
		t.Fatal(err)
	}
	app, err := NewAppOnly(500, 1e5, w.frontier, w.plat.DefaultConfig(), w.defRate, w.defPower)
	if err != nil {
		t.Fatal(err)
	}
	unc, err := NewUncoordinated(500, 1e5, w.frontier, w.plat.NumConfigs(), priorsFunc(w.priors), w.defRate, w.defPower, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := []sim.Feedback{
		{Duration: math.NaN(), Power: 10, Energy: 1, IterationsDone: 1},
		{Duration: 0.1, Power: math.Inf(1), Energy: 1, IterationsDone: 1},
		{Duration: 0.1, Power: -3, Energy: 1, IterationsDone: 1},
		{Duration: 0, Power: 10, Energy: 1, IterationsDone: 1},
		{Duration: 0.1, Power: 10, Energy: 1, IterationsDone: 1, Estimated: true},
	}
	for name, gov := range map[string]sim.Governor{"SystemOnly": sys, "AppOnly": app, "Uncoordinated": unc} {
		a0, s0 := gov.Decide(0)
		for i, fb := range bad {
			gov.Observe(fb)
			a, s := gov.Decide(0)
			if a != a0 || s != s0 {
				t.Errorf("%s: corrupt sample %d moved the decision (%d,%d) -> (%d,%d)", name, i, a0, s0, a, s)
			}
		}
	}
}
