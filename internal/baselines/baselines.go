// Package baselines implements the three comparison approaches of the
// paper's motivation (Sec. 2) and evaluation (Sec. 5.5):
//
//   - SystemOnly: adapt system resource usage toward the most energy-
//     efficient configuration, never touching application accuracy
//     (Sec. 2.1; the best any energy-aware resource manager can do).
//   - AppOnly: a PowerDial-style application performance controller on the
//     default system configuration, deriving its rate target from the
//     default system power (Sec. 2.2).
//   - Uncoordinated: both at once with no communication — the learner
//     attributes application speedups to system configurations and the
//     controller assumes the system is static, producing the oscillation
//     of Fig. 1 (Sec. 2.3).
package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"jouleguard/internal/control"
	"jouleguard/internal/knob"
	"jouleguard/internal/learning"
	"jouleguard/internal/sim"
)

// SystemOnly learns the most efficient system configuration with the same
// bandit machinery as JouleGuard's SEO but leaves the application at full
// accuracy.
type SystemOnly struct {
	bandit  *learning.Bandit
	vdbe    *learning.VDBE
	appCfg  int
	nextSys int
}

// NewSystemOnly builds the governor. priors are in iterations/second.
func NewSystemOnly(appDefault, nSys int, priors learning.Priors, seed int64) (*SystemOnly, error) {
	rng := rand.New(rand.NewSource(seed + 11))
	b, err := learning.NewBandit(nSys, control.DefaultAlpha, priors, rng)
	if err != nil {
		return nil, err
	}
	v := learning.NewVDBE(nSys, control.DefaultAlpha, rng,
		learning.WithUpdateWeight(math.Max(1.0/float64(nSys), 1.0/100)))
	return &SystemOnly{bandit: b, vdbe: v, appCfg: appDefault, nextSys: b.BestArm()}, nil
}

// Decide implements sim.Governor.
func (g *SystemOnly) Decide(int) (int, int) { return g.appCfg, g.nextSys }

// Observe implements sim.Governor.
func (g *SystemOnly) Observe(fb sim.Feedback) {
	if !fb.Sane() || fb.Estimated {
		return // corrupt or model-estimated sample: never learn from it
	}
	rate := 1 / fb.Duration
	preEff := g.bandit.Efficiency(fb.SysConfig)
	effErr, err := g.bandit.Observe(fb.SysConfig, rate, fb.Power)
	if err == nil {
		norm := preEff
		if norm <= 0 {
			norm = 1
		}
		var measEff float64
		if fb.Power > 0 {
			measEff = rate / fb.Power
		}
		g.vdbe.Update(effErr/norm, measEff)
	}
	g.nextSys, _ = g.vdbe.Select(g.bandit)
}

// BestArm exposes the learner's current belief (for the experiment
// harness).
func (g *SystemOnly) BestArm() int { return g.bandit.BestArm() }

// AppOnly is the PowerDial-style baseline: it guarantees a performance
// target on the default system configuration, converting the energy budget
// into a rate target via the known default power (Sec. 2.2: "we tell
// PowerDial to operate at 4700 qps knowing the default power is 280
// Watts").
type AppOnly struct {
	frontier *knob.Frontier
	ctrl     *control.SpeedupController
	rateEst  *control.EWMA // estimated default-config iteration rate
	defaultW float64       // measured default system power
	workload float64
	budget   float64
	sysCfg   int
	nextApp  knob.Point
}

// NewAppOnly builds the governor. defaultPower and defaultRate come from
// the baseline characterisation run; workload/budget mirror Algorithm 1's
// inputs.
func NewAppOnly(workload, budget float64, frontier *knob.Frontier, sysDefault int, defaultRate, defaultPower float64) (*AppOnly, error) {
	if defaultRate <= 0 || defaultPower <= 0 {
		return nil, fmt.Errorf("baselines: default rate %v / power %v must be positive", defaultRate, defaultPower)
	}
	est := control.MustEWMA(control.DefaultAlpha)
	est.Prime(defaultRate)
	g := &AppOnly{
		frontier: frontier,
		ctrl: control.NewSpeedupController(
			control.WithSpeedupBounds(frontier.MinSpeedup(), frontier.MaxSpeedup()),
			control.WithInitialSpeedup(frontier.MinSpeedup()),
			control.WithFixedPole(0), // PowerDial's deadbeat controller
		),
		rateEst:  est,
		defaultW: defaultPower,
		workload: workload,
		budget:   budget,
		sysCfg:   sysDefault,
	}
	g.nextApp, _ = frontier.ForSpeedup(0)
	return g, nil
}

// Decide implements sim.Governor.
func (g *AppOnly) Decide(int) (int, int) { return g.nextApp.Config, g.sysCfg }

// Observe implements sim.Governor.
func (g *AppOnly) Observe(fb sim.Feedback) {
	if !fb.Sane() || fb.Estimated {
		return // corrupt or model-estimated sample: never learn from it
	}
	rawRate := 1 / fb.Duration
	s := g.nextApp.Speedup
	if s <= 0 {
		s = 1
	}
	g.rateEst.Observe(rawRate / s)
	wRem := g.workload - float64(fb.IterationsDone)
	if wRem <= 0 {
		return
	}
	eRem := g.budget - fb.Energy
	if eRem <= 0 {
		g.nextApp, _ = g.frontier.ForSpeedup(math.Inf(1))
		return
	}
	eReq := eRem / wRem
	// PowerDial knows only the default power; the rate target assumes the
	// system will keep drawing it.
	target := g.defaultW / eReq
	sp := g.ctrl.Step(target, rawRate, g.rateEst.Value())
	g.nextApp, _ = g.frontier.ForSpeedup(sp)
}

// Uncoordinated runs a SystemOnly-style learner and an AppOnly-style
// controller concurrently with no communication. Two pathologies follow,
// both called out in Sec. 2.3: the learner sees raw performance (it cannot
// distinguish application speedup from system speed, corrupting its
// efficiency estimates), and the controller assumes a static system (its
// loop gain is wrong whenever the learner moves or explores). The result
// is the oscillatory trace of Fig. 1.
type Uncoordinated struct {
	bandit   *learning.Bandit
	vdbe     *learning.VDBE
	frontier *knob.Frontier
	ctrl     *control.SpeedupController
	workload float64
	budget   float64
	defaultW float64
	defaultR float64
	nextSys  int
	nextApp  knob.Point
}

// NewUncoordinated builds the governor from the same inputs the two
// layered approaches get individually.
func NewUncoordinated(workload, budget float64, frontier *knob.Frontier, nSys int, priors learning.Priors, defaultRate, defaultPower float64, seed int64) (*Uncoordinated, error) {
	if defaultRate <= 0 || defaultPower <= 0 {
		return nil, fmt.Errorf("baselines: default rate %v / power %v must be positive", defaultRate, defaultPower)
	}
	rng := rand.New(rand.NewSource(seed + 23))
	b, err := learning.NewBandit(nSys, control.DefaultAlpha, priors, rng)
	if err != nil {
		return nil, err
	}
	g := &Uncoordinated{
		bandit:   b,
		vdbe:     learning.NewVDBE(nSys, control.DefaultAlpha, rng, learning.WithUpdateWeight(math.Max(1.0/float64(nSys), 1.0/100))),
		frontier: frontier,
		ctrl: control.NewSpeedupController(
			control.WithSpeedupBounds(frontier.MinSpeedup(), frontier.MaxSpeedup()),
			control.WithInitialSpeedup(frontier.MinSpeedup()),
			control.WithFixedPole(0),
		),
		workload: workload,
		budget:   budget,
		defaultW: defaultPower,
		defaultR: defaultRate,
		nextSys:  b.BestArm(),
	}
	g.nextApp, _ = frontier.ForSpeedup(0)
	return g, nil
}

// Decide implements sim.Governor.
func (g *Uncoordinated) Decide(int) (int, int) { return g.nextApp.Config, g.nextSys }

// Observe implements sim.Governor.
func (g *Uncoordinated) Observe(fb sim.Feedback) {
	if !fb.Sane() || fb.Estimated {
		return // corrupt or model-estimated sample: never learn from it
	}
	rawRate := 1 / fb.Duration
	// Flaw 1: the learner folds the RAW rate into its per-configuration
	// estimates — application speedups masquerade as system speed.
	preEff := g.bandit.Efficiency(fb.SysConfig)
	effErr, err := g.bandit.Observe(fb.SysConfig, rawRate, fb.Power)
	if err == nil {
		norm := preEff
		if norm <= 0 {
			norm = 1
		}
		var measEff float64
		if fb.Power > 0 {
			measEff = rawRate / fb.Power
		}
		g.vdbe.Update(effErr/norm, measEff)
	}
	g.nextSys, _ = g.vdbe.Select(g.bandit)
	// Flaw 2: the controller still believes the system is the default one.
	wRem := g.workload - float64(fb.IterationsDone)
	if wRem <= 0 {
		return
	}
	eRem := g.budget - fb.Energy
	if eRem <= 0 {
		g.nextApp, _ = g.frontier.ForSpeedup(math.Inf(1))
		return
	}
	eReq := eRem / wRem
	target := g.defaultW / eReq
	sp := g.ctrl.Step(target, rawRate, g.defaultR)
	g.nextApp, _ = g.frontier.ForSpeedup(sp)
}
