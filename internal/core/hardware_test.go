package core

import (
	"testing"

	"jouleguard/internal/hwapprox"
	"jouleguard/internal/learning"
	"jouleguard/internal/platform"
	"jouleguard/internal/sim"
)

func hwSetup(t *testing.T) (*hwapprox.Unit, *platform.Platform, learning.Priors, float64) {
	t.Helper()
	unit, err := hwapprox.NewUnit(8, 0.7, 11)
	if err != nil {
		t.Fatal(err)
	}
	plat := platform.Tablet()
	prof, err := platform.ProfileFor("hwapprox")
	if err != nil {
		t.Fatal(err)
	}
	work, _, _ := unit.Compute(0, 0)
	base := plat.Priors(prof)
	priors := learning.PriorsFunc(func(arm int) (float64, float64) {
		r, p := base.Estimate(arm)
		return r / work, p
	})
	def := plat.DefaultConfig()
	defEPI := plat.Power(def, prof) * work / plat.Rate(def, prof)
	return unit, plat, priors, defEPI
}

func TestNewHardwareValidates(t *testing.T) {
	unit, plat, priors, _ := hwSetup(t)
	front := unit.MeasureFrontier(16)
	if _, err := NewHardware(0, 10, front, plat.NumConfigs(), priors, Options{}); err == nil {
		t.Error("want error for zero workload")
	}
	if _, err := NewHardware(10, 0, front, plat.NumConfigs(), priors, Options{}); err == nil {
		t.Error("want error for zero budget")
	}
	if _, err := NewHardware(10, 10, front[:1], plat.NumConfigs(), priors, Options{}); err == nil {
		t.Error("want error for degenerate frontier")
	}
}

// TestHardwareModeMeetsBudget: the Sec. 3.7 runtime must meet an energy
// goal that requires hardware approximation (beyond the best system
// configuration alone) while keeping output quality above the deepest
// overscaling level's.
func TestHardwareModeMeetsBudget(t *testing.T) {
	unit, plat, priors, defEPI := hwSetup(t)
	front := unit.MeasureFrontier(32)
	iters := 600
	// Goal: the best-efficiency configuration's energy scaled by a further
	// 10% power cut — reachable only with hardware approximation.
	prof, _ := platform.ProfileFor("hwapprox")
	work, _, _ := unit.Compute(0, 0)
	_, bestEff := plat.BestEfficiency(prof)
	bestEPI := work / bestEff
	budget := bestEPI * 0.92 * float64(iters)
	gov, err := NewHardware(float64(iters), budget, front, plat.NumConfigs(), priors, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.New(hwapprox.Approx{Unit: unit}, plat, 13)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := eng.Run(iters, gov)
	if err != nil {
		t.Fatal(err)
	}
	if over := (rec.TrueEnergy - budget) / budget; over > 0.06 {
		t.Fatalf("hardware mode overshot budget by %.1f%%", over*100)
	}
	if rec.TrueEnergy > defEPI*float64(iters) {
		t.Fatal("hardware mode spent more than the default configuration")
	}
	deepest := front[len(front)-1].Accuracy
	if acc := rec.MeanAccuracy(); acc < deepest {
		t.Fatalf("accuracy %v below the deepest level %v — no optimisation happened", acc, deepest)
	}
	if gov.Infeasible() {
		t.Fatal("achievable goal flagged infeasible")
	}
}

// TestHardwareModeLooseGoalStaysExact: a goal the SEO can meet alone must
// not engage approximation.
func TestHardwareModeLooseGoalStaysExact(t *testing.T) {
	unit, plat, priors, defEPI := hwSetup(t)
	front := unit.MeasureFrontier(32)
	iters := 400
	// Headroom above the default configuration's draw, so measurement
	// noise cannot dither the power command below 1.
	budget := defEPI * 1.15 * float64(iters)
	gov, err := NewHardware(float64(iters), budget, front, plat.NumConfigs(), priors, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.New(hwapprox.Approx{Unit: unit}, plat, 17)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := eng.Run(iters, gov)
	if err != nil {
		t.Fatal(err)
	}
	// The tail must be exact (level 0).
	for _, lvl := range rec.AppConfigs[iters-50:] {
		if lvl != 0 {
			t.Fatalf("loose goal engaged approximation level %d", lvl)
		}
	}
	if gov.Scale() < 0.99 {
		t.Fatalf("loose goal commanded scale %v", gov.Scale())
	}
}

// TestHardwareModeInfeasible: a budget below the deepest overscaling at the
// best configuration must be flagged.
func TestHardwareModeInfeasible(t *testing.T) {
	unit, plat, priors, _ := hwSetup(t)
	front := unit.MeasureFrontier(32)
	iters := 300
	prof, _ := platform.ProfileFor("hwapprox")
	work, _, _ := unit.Compute(0, 0)
	_, bestEff := plat.BestEfficiency(prof)
	budget := work / bestEff * 0.3 * float64(iters) // 0.3 << min scale 0.7
	gov, err := NewHardware(float64(iters), budget, front, plat.NumConfigs(), priors, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.New(hwapprox.Approx{Unit: unit}, plat, 19)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(iters, gov); err != nil {
		t.Fatal(err)
	}
	if !gov.Infeasible() {
		t.Fatal("impossible hardware goal not flagged")
	}
}
