package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"jouleguard/internal/control"
	"jouleguard/internal/hwapprox"
	"jouleguard/internal/learning"
	"jouleguard/internal/sim"
	"jouleguard/internal/telemetry"
)

// HardwareRuntime is the Sec. 3.7 modification of JouleGuard for
// approximate hardware: the accuracy knob no longer changes timing, it
// scales power. The SEO is unchanged — it still finds the most
// energy-efficient system configuration with no accuracy loss. The control
// loop then manages *power* rather than speedup: it drives the measured
// power toward the per-iteration energy allowance times the iteration
// rate, actuating the hardware approximation level.
type HardwareRuntime struct {
	workload float64
	budget   float64

	points   []hwapprox.FrontierPoint // sorted by descending PowerScale
	bandit   *learning.Bandit
	selector learning.Selector
	ctrl     *control.SpeedupController // integrates the power-scale signal

	nextLevel  int
	nextSys    int
	explored   bool
	infeasible bool
	done       bool
	lastScale  float64
	lastTarget float64
	lastMiss   bool

	sink   telemetry.Sink
	traced bool
}

// NewHardware builds the approximate-hardware runtime. frontier is the
// unit's measured (power scale, accuracy) ladder; priors are the system
// priors in iteration-rate units, as for New.
func NewHardware(workload, budget float64, frontier []hwapprox.FrontierPoint, nSys int, priors learning.Priors, opts Options) (*HardwareRuntime, error) {
	if workload <= 0 || budget <= 0 {
		return nil, fmt.Errorf("core: workload %v / budget %v must be positive", workload, budget)
	}
	if len(frontier) < 2 {
		return nil, fmt.Errorf("core: hardware frontier needs at least two levels")
	}
	alpha := opts.Alpha
	if alpha == 0 {
		alpha = control.DefaultAlpha
	}
	rng := rand.New(rand.NewSource(opts.Seed + 5))
	bandit, err := learning.NewBandit(nSys, alpha, priors, rng)
	if err != nil {
		return nil, err
	}
	sink := telemetry.OrNop(opts.Telemetry)
	bandit.SetSink(sink)
	pts := append([]hwapprox.FrontierPoint(nil), frontier...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].PowerScale > pts[j].PowerScale })
	h := &HardwareRuntime{
		workload: workload,
		budget:   budget,
		points:   pts,
		bandit:   bandit,
		selector: learning.NewVDBE(nSys, alpha, rng, learning.WithUpdateWeight(math.Max(1.0/float64(nSys), 1.0/40))),
		// The controller state is the commanded power scale in (0, 1]; its
		// "speedup" integrator is reused with bounds [minScale, 1].
		ctrl: control.NewSpeedupController(
			control.WithSpeedupBounds(pts[len(pts)-1].PowerScale, 1),
			control.WithInitialSpeedup(1),
			control.WithSink(sink),
		),
		lastScale: 1,
		sink:      sink,
		traced:    opts.Telemetry != nil,
	}
	h.nextSys = bandit.BestArm()
	return h, nil
}

// Decide implements sim.Governor: the "application" configuration is the
// hardware approximation level.
func (h *HardwareRuntime) Decide(int) (int, int) { return h.nextLevel, h.nextSys }

// scaleOf returns the nominal power scale of a level.
func (h *HardwareRuntime) scaleOf(level int) float64 {
	for _, p := range h.points {
		if p.Level == level {
			return p.PowerScale
		}
	}
	return 1
}

// Observe implements sim.Governor.
func (h *HardwareRuntime) Observe(fb sim.Feedback) {
	h.lastMiss = fb.SysConfig != h.nextSys || fb.AppConfig != h.nextLevel
	if h.traced {
		defer h.record(fb)
	}
	if !fb.Sane() || fb.Estimated {
		return // corrupt or model-estimated sample: never learn from it
	}
	rate := 1 / fb.Duration
	// Normalise the measured power back to full-voltage terms before
	// feeding the SEO, so hardware approximation is not mis-attributed to
	// the system configuration (the same normalisation the speedup-mode
	// runtime applies to rates). The normalisation is deliberately
	// approximate — only dynamic power actually scales — and the adaptive
	// pole absorbs the resulting model error.
	scale := h.scaleOf(fb.AppConfig)
	normPower := fb.Power / scale
	prePower := h.bandit.Power(fb.SysConfig)
	h.ctrl.AdaptPole(normPower, prePower)
	preEff := h.bandit.Efficiency(fb.SysConfig)
	effErr, err := h.bandit.Observe(fb.SysConfig, rate, normPower)
	if err == nil {
		norm := preEff
		if norm <= 0 {
			norm = 1
		}
		var measEff float64
		if normPower > 0 {
			measEff = rate / normPower
		}
		h.selector.Update(effErr/norm, measEff)
	}
	h.nextSys, h.explored = h.selector.Select(h.bandit)

	wRem := h.workload - float64(fb.IterationsDone)
	if wRem <= 0 {
		h.done = true
		return
	}
	eRem := h.budget - fb.Energy
	if eRem <= 0 {
		h.infeasible = true
		h.nextSys = h.bandit.BestArm()
		h.nextLevel = h.points[len(h.points)-1].Level
		h.ctrl.Reset(h.points[len(h.points)-1].PowerScale)
		return
	}
	eReq := eRem / wRem
	// Allowed power at the selected configuration's expected rate.
	rSel := h.bandit.Rate(h.nextSys)
	pSel := h.bandit.Power(h.nextSys)
	allowed := eReq * rSel
	h.lastTarget = allowed
	neededScale := allowed / pSel
	minScale := h.points[len(h.points)-1].PowerScale
	if neededScale < minScale*(1-0.05) {
		h.infeasible = true
	} else if neededScale >= minScale {
		h.infeasible = false
	}
	// Integrate the power error into the scale command. The plant gain from
	// scale to power is ~pSel, so normalising by pSel keeps the loop gain
	// at (1 - pole), mirroring Eqn 5.
	h.lastScale = h.ctrl.Step(allowed, fb.Power, pSel)
	// Pick the most accurate level whose power scale meets the command
	// (the Eqn 6 analogue; levels are sorted by descending scale =
	// descending accuracy).
	i := sort.Search(len(h.points), func(i int) bool {
		return h.points[i].PowerScale <= h.lastScale*(1+1e-9)
	})
	if i == len(h.points) {
		i = len(h.points) - 1
	}
	h.nextLevel = h.points[i].Level
}

// record assembles the flight-recorder Decision for one hardware-mode
// Observe; deferred so NextApp/NextSys reflect the decision produced.
// SpeedupCmd carries the commanded power scale and TargetRate the power
// target — the hardware loop's analogues of speedup and rate.
func (h *HardwareRuntime) record(fb sim.Feedback) {
	h.sink.RecordDecision(telemetry.Decision{
		Iter:      fb.Iter,
		AppConfig: fb.AppConfig,
		SysConfig: fb.SysConfig,
		NextApp:   h.nextLevel,
		NextSys:   h.nextSys,

		SEURate:       h.bandit.Rate(h.nextSys),
		SEUPower:      h.bandit.Power(h.nextSys),
		SEUEfficiency: h.bandit.Efficiency(h.nextSys),
		EstimatorGain: h.bandit.Gain(h.nextSys),
		BestArm:       h.bandit.BestArm(),
		Explored:      h.explored,

		SpeedupCmd: h.lastScale,
		TargetRate: h.lastTarget,
		PIError:    h.ctrl.LastError(),
		Pole:       h.ctrl.Pole(),

		EnergyUsedJ:      fb.Energy,
		BudgetRemainingJ: h.budget - fb.Energy,

		Sane:          fb.Sane(),
		GuardAccepted: !fb.Estimated,
		Estimated:     fb.Estimated,
		ActuationMiss: h.lastMiss,
		Infeasible:    h.infeasible,
	})
}

// Infeasible reports whether the goal exceeds the hardware's power range.
func (h *HardwareRuntime) Infeasible() bool { return h.infeasible }

// Scale returns the current commanded power scale.
func (h *HardwareRuntime) Scale() float64 { return h.lastScale }

// TargetPower returns the controller's current power target.
func (h *HardwareRuntime) TargetPower() float64 { return h.lastTarget }
