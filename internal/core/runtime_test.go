package core

import (
	"math"
	"math/rand"
	"testing"

	"jouleguard/internal/knob"
	"jouleguard/internal/learning"
	"jouleguard/internal/sim"
)

// fakeWorld is a minimal closed-loop world for driving the runtime without
// the full simulator: nSys system configurations with rates/powers, an app
// frontier, and a perfect energy sensor.
type fakeWorld struct {
	rates   []float64 // iterations/sec at app speedup 1
	powers  []float64
	energy  float64
	iter    int
	rng     *rand.Rand
	speedup func(cfg int) float64
}

func newFakeWorld(n int) *fakeWorld {
	w := &fakeWorld{rng: rand.New(rand.NewSource(3))}
	for i := 0; i < n; i++ {
		f := float64(i+1) / float64(n)
		w.rates = append(w.rates, 10*f)
		w.powers = append(w.powers, 20+180*f*f*f)
	}
	return w
}

func (w *fakeWorld) step(gov *Runtime, frontier *knob.Frontier) sim.Feedback {
	appCfg, sysCfg := gov.Decide(w.iter)
	var sp float64 = 1
	for _, p := range frontier.Points() {
		if p.Config == appCfg {
			sp = p.Speedup
		}
	}
	rate := w.rates[sysCfg] * sp * (1 + 0.01*w.rng.NormFloat64())
	power := w.powers[sysCfg] * (1 + 0.01*w.rng.NormFloat64())
	dur := 1 / rate
	w.energy += power * dur
	w.iter++
	fb := sim.Feedback{
		Iter:           w.iter - 1,
		AppConfig:      appCfg,
		SysConfig:      sysCfg,
		Work:           1,
		Duration:       dur,
		Power:          power,
		Energy:         w.energy,
		Accuracy:       1,
		IterationsDone: w.iter,
	}
	gov.Observe(fb)
	return fb
}

func testFrontier(t *testing.T) *knob.Frontier {
	t.Helper()
	f, err := knob.NewFrontier(&knob.Profile{Points: []knob.Point{
		{Config: 0, Speedup: 1, Accuracy: 1},
		{Config: 1, Speedup: 1.5, Accuracy: 0.95},
		{Config: 2, Speedup: 2.2, Accuracy: 0.9},
		{Config: 3, Speedup: 3.5, Accuracy: 0.8},
		{Config: 4, Speedup: 5, Accuracy: 0.6},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func optimisticPriors(w *fakeWorld) learning.Priors {
	return learning.PriorsFunc(func(arm int) (float64, float64) {
		return w.rates[arm] * 1.3, w.powers[arm] * 1.1
	})
}

func TestNewValidates(t *testing.T) {
	f := testFrontier(t)
	w := newFakeWorld(4)
	pri := optimisticPriors(w)
	cases := []struct {
		name string
		fn   func() (*Runtime, error)
	}{
		{"zero workload", func() (*Runtime, error) { return New(0, 10, f, 4, pri, 3, Options{}) }},
		{"zero budget", func() (*Runtime, error) { return New(10, 0, f, 4, pri, 3, Options{}) }},
		{"nil frontier", func() (*Runtime, error) { return New(10, 10, nil, 4, pri, 3, Options{}) }},
		{"bad default", func() (*Runtime, error) { return New(10, 10, f, 4, pri, 9, Options{}) }},
		{"bad selector", func() (*Runtime, error) {
			return New(10, 10, f, 4, pri, 3, Options{Selector: "nope"})
		}},
	}
	for _, tc := range cases {
		if _, err := tc.fn(); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestMeetsLooseGoalAtFullAccuracy(t *testing.T) {
	// A goal the system alone can meet must not cost any accuracy: the
	// controller should settle at the minimum-speedup frontier point.
	w := newFakeWorld(16)
	f := testFrontier(t)
	iters := 500
	// Budget: generous — default config energy * iters.
	budget := w.powers[15] / w.rates[15] * float64(iters)
	gov, err := New(float64(iters), budget, f, 16, optimisticPriors(w), 15, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iters; i++ {
		w.step(gov, f)
	}
	if w.energy > budget {
		t.Fatalf("overspent: %v > %v", w.energy, budget)
	}
	appCfg, _ := gov.Decide(iters)
	if appCfg != 0 {
		t.Fatalf("loose goal cost accuracy: settled on app config %d", appCfg)
	}
	if gov.Infeasible() {
		t.Fatal("loose goal flagged infeasible")
	}
}

func TestMeetsTightGoalWithApproximation(t *testing.T) {
	// A goal needing ~2x the best system efficiency must engage the
	// frontier and still respect the budget within a few percent.
	w := newFakeWorld(16)
	f := testFrontier(t)
	iters := 800
	// Best efficiency configuration energy per iteration:
	bestEPI := math.Inf(1)
	for i := range w.rates {
		if e := w.powers[i] / w.rates[i]; e < bestEPI {
			bestEPI = e
		}
	}
	budget := bestEPI / 2 * float64(iters)
	gov, err := New(float64(iters), budget, f, 16, optimisticPriors(w), 15, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var lastApp int
	for i := 0; i < iters; i++ {
		fb := w.step(gov, f)
		lastApp = fb.AppConfig
	}
	if over := (w.energy - budget) / budget; over > 0.05 {
		t.Fatalf("overspent budget by %.1f%%", over*100)
	}
	if lastApp == 0 {
		t.Fatal("tight goal met without engaging the frontier?")
	}
	if gov.Infeasible() {
		t.Fatal("achievable goal flagged infeasible")
	}
}

func TestInfeasibleGoalReported(t *testing.T) {
	// A goal beyond max speedup x best efficiency must set the infeasible
	// flag and pin the maximum-speedup configuration (Sec. 3.4.3).
	w := newFakeWorld(8)
	f := testFrontier(t)
	iters := 300
	bestEPI := math.Inf(1)
	for i := range w.rates {
		if e := w.powers[i] / w.rates[i]; e < bestEPI {
			bestEPI = e
		}
	}
	budget := bestEPI / 20 * float64(iters) // 4x beyond max speedup 5
	gov, err := New(float64(iters), budget, f, 8, optimisticPriors(w), 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iters; i++ {
		w.step(gov, f)
	}
	if !gov.Infeasible() {
		t.Fatal("impossible goal not reported infeasible")
	}
	appCfg, _ := gov.Decide(iters)
	if appCfg != 4 {
		t.Fatalf("infeasible goal should pin max speedup config, got %d", appCfg)
	}
}

func TestEnergyAccountingRespondsToDeficit(t *testing.T) {
	// Force a deficit by feeding the runtime high-energy feedback early; it
	// must command more speedup than the steady-state demand afterwards.
	w := newFakeWorld(8)
	f := testFrontier(t)
	iters := 400
	bestEPI := math.Inf(1)
	for i := range w.rates {
		if e := w.powers[i] / w.rates[i]; e < bestEPI {
			bestEPI = e
		}
	}
	budget := bestEPI / 1.5 * float64(iters)
	gov, err := New(float64(iters), budget, f, 8, optimisticPriors(w), 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Burn 30% of the budget in the first 10% of iterations.
	w.energy = budget * 0.3
	for i := 0; i < iters/2; i++ {
		w.step(gov, f)
	}
	if gov.Speedup() <= 1.5 {
		t.Fatalf("deficit did not raise the speedup demand: %v", gov.Speedup())
	}
}

func TestDoneHoldsConfiguration(t *testing.T) {
	w := newFakeWorld(4)
	f := testFrontier(t)
	gov, err := New(10, 1000, f, 4, optimisticPriors(w), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		w.step(gov, f)
	}
	if !gov.Done() {
		t.Fatal("workload completion not detected")
	}
}

func TestSelectorsConstructible(t *testing.T) {
	w := newFakeWorld(4)
	f := testFrontier(t)
	for _, sel := range []SelectorKind{SelectVDBE, SelectFixedEps, SelectUCB} {
		gov, err := New(100, 1000, f, 4, optimisticPriors(w), 3, Options{Selector: sel, FixedEpsilon: 0.1})
		if err != nil {
			t.Fatalf("%s: %v", sel, err)
		}
		world := newFakeWorld(4)
		for i := 0; i < 50; i++ {
			world.step(gov, f)
		}
	}
}

func TestFlatPriorsOption(t *testing.T) {
	w := newFakeWorld(8)
	f := testFrontier(t)
	gov, err := New(200, 1e6, f, 8, optimisticPriors(w), 7, Options{FlatPriors: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		w.step(gov, f)
	}
	// With flat priors it must still find a reasonable configuration.
	if gov.BestSystemArm() < 0 {
		t.Fatal("no best arm")
	}
}

func TestFixedPoleOption(t *testing.T) {
	w := newFakeWorld(4)
	f := testFrontier(t)
	gov, err := New(100, 1000, f, 4, optimisticPriors(w), 3, Options{FixedPoleSet: true, FixedPole: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		w.step(gov, f)
	}
	if gov.Pole() != 0.5 {
		t.Fatalf("fixed pole drifted: %v", gov.Pole())
	}
}

func TestZeroDurationFeedbackIgnored(t *testing.T) {
	w := newFakeWorld(4)
	f := testFrontier(t)
	gov, err := New(100, 1000, f, 4, optimisticPriors(w), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a0, s0 := gov.Decide(0)
	gov.Observe(sim.Feedback{Duration: 0, IterationsDone: 1})
	a1, s1 := gov.Decide(1)
	if a0 != a1 || s0 != s1 {
		t.Fatal("degenerate feedback changed the decision")
	}
	_ = w
}

func TestCorruptFeedbackDoesNotPoison(t *testing.T) {
	// NaN/Inf/negative observations must change nothing: same next
	// decision, no budget movement, no learner update.
	w := newFakeWorld(4)
	f := testFrontier(t)
	// DegradeAfter is raised past the number of bad samples so the
	// watchdog (tested separately) does not legitimately move the pin.
	gov, err := New(100, 1000, f, 4, optimisticPriors(w), 3, Options{DegradeAfter: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		w.step(gov, f)
	}
	a0, s0 := gov.Decide(20)
	sp0 := gov.Speedup()
	bad := []sim.Feedback{
		{Duration: math.NaN(), Power: 10, Energy: 10, IterationsDone: 21},
		{Duration: 0.1, Power: math.Inf(1), Energy: 10, IterationsDone: 21},
		{Duration: 0.1, Power: 10, Energy: math.NaN(), IterationsDone: 21},
		{Duration: 0.1, Power: -5, Energy: 10, IterationsDone: 21},
		{Duration: 0.1, Power: 10, Energy: -1, IterationsDone: 21},
		{Duration: -0.1, Power: 10, Energy: 10, IterationsDone: 21},
		{Duration: 0.1, Power: 10, Energy: 10, Accuracy: math.NaN(), IterationsDone: 21},
	}
	for i, fb := range bad {
		gov.Observe(fb)
		a, s := gov.Decide(21)
		if a != a0 || s != s0 {
			t.Fatalf("corrupt feedback %d changed the decision: (%d,%d) -> (%d,%d)", i, a0, s0, a, s)
		}
		if gov.Speedup() != sp0 {
			t.Fatalf("corrupt feedback %d moved the speedup demand", i)
		}
	}
	if gov.RejectedStreak() != len(bad) {
		t.Fatalf("rejected streak: %d, want %d", gov.RejectedStreak(), len(bad))
	}
}

func TestWatchdogDegradesAndRecovers(t *testing.T) {
	// A run of rejected observations must trip the watchdog into the
	// conservative pinned configuration; healthy feedback must release it.
	w := newFakeWorld(8)
	f := testFrontier(t)
	gov, err := New(1000, 1e6, f, 8, optimisticPriors(w), 7, Options{DegradeAfter: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		w.step(gov, f)
	}
	if gov.Degraded() {
		t.Fatal("healthy run already degraded")
	}
	for i := 0; i < 4; i++ {
		gov.Observe(sim.Feedback{Duration: math.NaN(), IterationsDone: 31 + i})
	}
	if !gov.Degraded() {
		t.Fatal("watchdog did not trip after the configured streak")
	}
	if gov.DegradeEvents() != 1 {
		t.Fatalf("degrade events: %d", gov.DegradeEvents())
	}
	appCfg, sysCfg := gov.Decide(35)
	if appCfg != 4 {
		t.Fatalf("degraded mode should pin max speedup (most conservative), got app %d", appCfg)
	}
	if sysCfg != gov.BestSystemArm() {
		t.Fatalf("degraded mode should pin the best known arm, got %d", sysCfg)
	}
	// One healthy sample must NOT release the pin (sticky recovery:
	// intermittent corruption would otherwise flap the degraded state), but
	// a sustained healthy streak must.
	w.step(gov, f)
	if !gov.Degraded() {
		t.Fatal("a single healthy sample released the pin; recovery must be sticky")
	}
	for i := 0; i < 4; i++ {
		w.step(gov, f)
	}
	if gov.Degraded() {
		t.Fatal("sustained healthy feedback did not release the degraded state")
	}
	if gov.RejectedStreak() != 0 {
		t.Fatal("streak survived recovery")
	}
}

func TestEstimatedFeedbackCountsTowardDegradation(t *testing.T) {
	// Model-estimated observations keep the ledger honest but must not
	// feed the learners, and a long run of them trips the watchdog just
	// like missing data (an estimate must not reinforce itself).
	w := newFakeWorld(8)
	f := testFrontier(t)
	gov, err := New(1000, 1e6, f, 8, optimisticPriors(w), 7, Options{DegradeAfter: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		w.step(gov, f)
	}
	for i := 0; i < 5; i++ {
		gov.Observe(sim.Feedback{
			Duration: 0.1, Power: 50, Energy: w.energy, Accuracy: 1,
			IterationsDone: 31 + i, Estimated: true,
		})
	}
	if !gov.Degraded() {
		t.Fatal("estimated-only feedback did not trip the watchdog")
	}
	for i := 0; i < 6; i++ {
		w.step(gov, f)
	}
	if gov.Degraded() {
		t.Fatal("sustained real feedback did not release the degraded state")
	}
}

func TestExhaustedBudgetPinsMinEnergy(t *testing.T) {
	w := newFakeWorld(8)
	f := testFrontier(t)
	gov, err := New(100, 10, f, 8, optimisticPriors(w), 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Report energy far beyond budget.
	gov.Observe(sim.Feedback{
		Duration: 0.1, Power: 100, Energy: 50, IterationsDone: 1, SysConfig: 7, AppConfig: 0,
	})
	if !gov.Infeasible() {
		t.Fatal("blown budget not flagged")
	}
	appCfg, sysCfg := gov.Decide(1)
	if appCfg != 4 {
		t.Fatalf("blown budget should pin max speedup, got app %d", appCfg)
	}
	if sysCfg != gov.BestSystemArm() {
		t.Fatalf("blown budget should pin best system arm, got %d", sysCfg)
	}
}
