// Package core implements the JouleGuard runtime (paper Sec. 3, Algorithm
// 1): the System Energy Optimizer (SEO, Sec. 3.2) — a VDBE multi-armed
// bandit that finds the most energy-efficient system configuration — and
// the Application Accuracy Optimizer (AAO, Sec. 3.3) — an adaptive-pole PI
// controller that extracts any further speedup the energy goal requires
// from the application's accuracy/performance frontier while maximising
// accuracy.
//
// The runtime is deliberately decoupled from the simulator: it sees the
// world only through the sim.Governor interface (decide a configuration,
// observe rate/power/energy feedback), exactly as the paper's C runtime
// sees real machines through its performance and power callbacks
// (Sec. 3.5).
package core

import (
	"fmt"
	"math"
	"math/rand"

	"jouleguard/internal/control"
	"jouleguard/internal/knob"
	"jouleguard/internal/learning"
	"jouleguard/internal/sim"
	"jouleguard/internal/telemetry"
)

// SelectorKind names an exploration policy for the SEO ablations.
type SelectorKind string

// Exploration policies.
const (
	SelectVDBE     SelectorKind = "vdbe"      // the paper's choice
	SelectFixedEps SelectorKind = "fixed-eps" // classical epsilon-greedy
	SelectUCB      SelectorKind = "ucb"       // UCB1
)

// Options configures a Runtime. The zero value of each field selects the
// paper's behaviour.
type Options struct {
	Alpha           float64 // EWMA gain; 0 = paper's 0.85
	FixedPole       float64 // >= 0 with FixedPoleSet: disable Eqns 10-11
	FixedPoleSet    bool
	FlatPriors      bool         // replace linear/cubic priors with flat ones
	Selector        SelectorKind // exploration policy; "" = VDBE
	FixedEpsilon    float64      // epsilon for SelectFixedEps
	VDBEWeight      float64      // Eqn 2 blending weight; 0 = min(1/|Sys|, capped)
	InfeasibleSlack float64      // tolerated overshoot of max speedup; 0 = 5%
	KalmanEstimator bool         // replace Eqn 1's EWMA with Kalman filters
	// DegradeAfter is the watchdog threshold: after this many consecutive
	// rejected/missing observations the runtime forces its most
	// conservative known-safe configuration until healthy feedback
	// resumes. 0 = 5.
	DegradeAfter int
	Seed         int64
	// Telemetry streams decision traces and metrics into an observability
	// sink (telemetry.New provides the live registry + flight recorder).
	// nil disables instrumentation at zero cost.
	Telemetry telemetry.Sink
}

// Runtime is JouleGuard. It implements sim.Governor.
type Runtime struct {
	// Goal (Algorithm 1's Require lines).
	workload float64 // W: total iterations to complete
	budget   float64 // E: energy budget in measured joules

	frontier *knob.Frontier
	bandit   *learning.Bandit
	selector learning.Selector
	ctrl     *control.SpeedupController
	defSys   int

	// Decision state for the next iteration.
	nextApp    knob.Point
	nextSys    int
	explored   bool
	iters      int
	done       bool
	infeasible bool
	slack      float64 // tolerated overshoot of max speedup before flagging

	// Watchdog: graceful degradation under broken sensing or a budget
	// trajectory that cannot recover.
	degradeAfter  int  // rejected-observation streak before degrading
	badStreak     int  // consecutive insane/estimated observations
	infStreak     int  // consecutive infeasible verdicts on live feedback
	healStreak    int  // consecutive healthy observations while degraded
	degraded      bool // currently pinned to the conservative configuration
	degradeEvents int  // times the watchdog tripped

	// Telemetry.
	lastTarget  float64
	lastSpeedup float64
	lastF       float64
	lastEps     float64
	lastMiss    bool           // last observation ran a config other than commanded
	sink        telemetry.Sink // never nil; Nop when Options.Telemetry unset
	traced      bool           // whether to assemble full Decision records
}

// New builds a JouleGuard runtime.
//
//	workload   total iterations the user needs completed (W)
//	budget     total energy allowed, in measured joules (E)
//	frontier   the application's profiled Pareto frontier
//	nSys       number of system configurations
//	priors     initial (rate, power) estimates per system configuration, in
//	           iterations/second and watts (Sec. 3.2's optimistic models)
//	defaultSys the system's default configuration index
func New(workload, budget float64, frontier *knob.Frontier, nSys int, priors learning.Priors, defaultSys int, opts Options) (*Runtime, error) {
	if workload <= 0 || math.IsNaN(workload) {
		return nil, fmt.Errorf("core: workload %v must be positive", workload)
	}
	if budget <= 0 || math.IsNaN(budget) {
		return nil, fmt.Errorf("core: energy budget %v must be positive", budget)
	}
	if frontier == nil || frontier.Len() == 0 {
		return nil, fmt.Errorf("core: empty application frontier")
	}
	if defaultSys < 0 || defaultSys >= nSys {
		return nil, fmt.Errorf("core: default system config %d out of range [0,%d)", defaultSys, nSys)
	}
	alpha := opts.Alpha
	if alpha == 0 {
		alpha = control.DefaultAlpha
	}
	if opts.FlatPriors {
		// Uninformative start: average the informed priors into one flat
		// value so the ablation isolates the *shape*, not the magnitude.
		var rSum, pSum float64
		for i := 0; i < nSys; i++ {
			r, p := priors.Estimate(i)
			rSum += r
			pSum += p
		}
		priors = learning.FlatPriors{Rate: rSum / float64(nSys), Power: pSum / float64(nSys)}
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	factory := learning.EWMAFactory(alpha)
	if opts.KalmanEstimator {
		factory = learning.KalmanFactory()
	}
	bandit, err := learning.NewBanditWithEstimators(nSys, factory, priors, rng)
	if err != nil {
		return nil, err
	}
	sink := telemetry.OrNop(opts.Telemetry)
	bandit.SetSink(sink)
	var sel learning.Selector
	switch opts.Selector {
	case "", SelectVDBE:
		w := opts.VDBEWeight
		if w == 0 {
			// Eqn 2 uses 1/|Sys|; cap the time constant at 100 updates so
			// exploration can settle within a few-hundred-iteration run.
			w = math.Max(1.0/float64(nSys), 1.0/40)
		}
		sel = learning.NewVDBE(nSys, alpha, rng, learning.WithUpdateWeight(w))
	case SelectFixedEps:
		sel = learning.NewFixedEpsilon(opts.FixedEpsilon, rng)
	case SelectUCB:
		sel = learning.NewUCB1(0)
	default:
		return nil, fmt.Errorf("core: unknown selector %q", opts.Selector)
	}
	ctrlOpts := []control.ControllerOption{
		control.WithSpeedupBounds(frontier.MinSpeedup(), frontier.MaxSpeedup()),
		control.WithInitialSpeedup(frontier.MinSpeedup()),
		control.WithSink(sink),
	}
	if opts.FixedPoleSet {
		ctrlOpts = append(ctrlOpts, control.WithFixedPole(opts.FixedPole))
	}
	slack := opts.InfeasibleSlack
	if slack <= 0 {
		slack = 0.05
	}
	degradeAfter := opts.DegradeAfter
	if degradeAfter <= 0 {
		degradeAfter = 5
	}
	r := &Runtime{
		workload:     workload,
		budget:       budget,
		frontier:     frontier,
		bandit:       bandit,
		selector:     sel,
		ctrl:         control.NewSpeedupController(ctrlOpts...),
		defSys:       defaultSys,
		slack:        slack,
		degradeAfter: degradeAfter,
		sink:         sink,
		traced:       opts.Telemetry != nil,
	}
	// Before any feedback: most accurate application configuration, and the
	// prior-optimal system configuration (the priors stand in for the
	// models the bandit has not yet learned).
	r.nextApp, _ = r.frontier.ForSpeedup(0)
	r.nextSys = bandit.BestArm()
	return r, nil
}

// Decide implements sim.Governor.
func (r *Runtime) Decide(int) (appCfg, sysCfg int) {
	return r.nextApp.Config, r.nextSys
}

// Observe implements sim.Governor: one pass of Algorithm 1, preceded by
// the sensing watchdog. Corrupt (NaN/Inf/negative/zero-duration) and
// estimated observations never reach the learner or the controller —
// one poisoned sample would corrupt the EWMA/Kalman state permanently —
// but they do advance the watchdog, which forces the most conservative
// known-safe configuration when feedback stays broken.
func (r *Runtime) Observe(fb sim.Feedback) {
	r.iters++
	// The trace is recorded on the way out so it captures the *next*
	// decision alongside the feedback that produced it — including every
	// early-return path (corrupt, estimated, degraded, budget-spent).
	r.lastMiss = fb.SysConfig != r.nextSys || fb.AppConfig != r.nextApp.Config
	if r.traced {
		defer r.record(fb)
	}
	if !fb.Sane() {
		r.noteRejected()
		return // corrupt measurement; hold (or degrade) every decision
	}
	if fb.Estimated {
		// The sensing layer substituted a model-based estimate: keep the
		// budget ledger honest but do not learn from it (the estimate
		// would only reinforce itself).
		r.noteRejected()
		if fb.Energy >= r.budget {
			// Even the estimated ledger says the budget is gone: clamp
			// now rather than waiting out the streak (Sec. 3.4.3).
			r.infeasible = true
			r.degrade()
		}
		return
	}
	r.badStreak = 0
	// Readback mismatch: the iteration ran a configuration other than the
	// one we commanded (a lagging or dropped actuation). The measurement
	// itself is good — readback attributes it to the configuration that
	// ran — but it says nothing about the command we just issued, so the
	// control step below must not integrate it (a one-step actuation lag
	// would otherwise drive the PI loop into a limit cycle).
	actMiss := r.lastMiss
	// Measure performance r(t) and normalise out the application speedup to
	// recover the system's rate in default-app terms (the SEO must not
	// attribute application-level speedup to the system configuration —
	// that mis-attribution is what destabilises the uncoordinated approach
	// of Sec. 2.3).
	rawRate := 1 / fb.Duration
	// Normalise by the configuration the feedback says actually ran: with
	// actuation readback that can differ from the one we requested, and
	// dividing by the requested speedup would smear the actuator's failure
	// into the system-rate estimate.
	sNominal := r.nextApp.Speedup
	if s, ok := r.frontier.SpeedupOf(fb.AppConfig); ok {
		sNominal = s
	}
	if sNominal <= 0 {
		sNominal = 1
	}
	sysRate := rawRate / sNominal

	// Adapt the controller pole to the learner's current model error
	// (Eqns 10-11) before folding in the new measurement.
	preEstimate := r.bandit.Rate(fb.SysConfig)
	r.ctrl.AdaptPole(sysRate, preEstimate)

	// Update the estimates (Eqn 1) and the exploration rate (Eqn 2).
	preEff := r.bandit.Efficiency(fb.SysConfig)
	effErr, err := r.bandit.Observe(fb.SysConfig, sysRate, fb.Power)
	if err == nil {
		norm := preEff
		if norm <= 0 {
			norm = 1
		}
		measuredEff := 0.0
		if fb.Power > 0 {
			measuredEff = sysRate / fb.Power
		}
		r.selector.Update(effErr/norm, measuredEff)
	}
	if v, ok := r.selector.(*learning.VDBE); ok {
		r.lastEps = v.Epsilon()
	}

	if r.degraded {
		// Sticky recovery: a single healthy sample between outages must
		// not release the pin — intermittent corruption would otherwise
		// let the explorer wander into inefficient configurations between
		// degrade episodes. The estimates above keep learning from live
		// data the whole time; the pin tracks the improving best arm.
		r.healStreak++
		if r.healStreak < r.degradeAfter {
			r.nextSys = r.conservativeArm()
			r.nextApp, _ = r.frontier.ForSpeedup(math.Inf(1))
			return
		}
		r.degraded = false
		r.healStreak = 0
		// The trajectory window was frozen during the hold; restart it so
		// a stale streak cannot re-trip the watchdog on the first sample.
		r.infStreak = 0
	}

	// Select the next system configuration (explore vs exploit, Eqn 3).
	r.nextSys, r.explored = r.selector.Select(r.bandit)

	// Remaining energy and work determine the required energy per
	// iteration; Eqn 4 turns that into a speedup demand. Feasibility is
	// judged against the best configuration's estimates; the control target
	// uses the estimates of the configuration the system will actually run
	// next (Algorithm 1: "Select random/energy-optimal system configuration
	// ... Use those values to compute speedup target"), so the application
	// compensates proactively while the SEO explores slow configurations.
	best := r.bandit.BestArm()
	rBest := r.bandit.Rate(best)
	pBest := r.bandit.Power(best)
	rSel := r.bandit.Rate(r.nextSys)
	pSel := r.bandit.Power(r.nextSys)
	wRem := r.workload - float64(fb.IterationsDone)
	if wRem <= 0 {
		r.done = true
		return // workload complete: hold the final configuration
	}
	eRem := r.budget - fb.Energy
	if eRem <= 0 {
		// Budget already spent: the only sane action is the minimum-energy
		// configuration (Sec. 3.4.3).
		r.infeasible = true
		r.nextSys = best
		r.nextApp, _ = r.frontier.ForSpeedup(math.Inf(1))
		r.ctrl.Reset(r.nextApp.Speedup)
		return
	}
	eReq := eRem / wRem // joules per iteration allowed from here on
	if r.explored && rSel > 0 && pSel/(rSel*eReq) > r.frontier.MaxSpeedup() {
		// Affordability gate: probing this arm would demand more speedup
		// than the application frontier can deliver, so its energy cost
		// could never be compensated (Eqn 4 would saturate). Exploit the
		// best arm instead; exploration resumes once slack returns. This
		// is what keeps persistent sensor noise — which holds the model
		// error, and hence the exploration rate, high — from spending the
		// budget on probes a tight goal cannot absorb.
		r.nextSys = best
		r.explored = false
		rSel, pSel = rBest, pBest
	}
	sReq := pBest / (rBest * eReq)
	// Saturation is judged twice: against the optimistic best arm for the
	// infeasibility verdict below (the paper's Sec. 3.4.3 test), and
	// against measured evidence for selection. Greedy selection over
	// optimistic priors keeps hopping to the next untested arm — cheap
	// while the application can absorb each mediocre probe, reckless once
	// it cannot. When even the most efficient arm actually measured would
	// demand more speedup than the frontier can deliver, the run is out of
	// compensating headroom: act only on evidence until the ledger
	// recovers.
	ca := r.conservativeArm()
	sEvi := sReq
	if rC := r.bandit.Rate(ca); rC > 0 {
		sEvi = r.bandit.Power(ca) / (rC * eReq)
	}
	// Optimism is paid for out of surplus or out of necessity, never
	// out of mere deficit: an arm with no measurements may be tried
	// while the ledger is at or ahead of the linear schedule, and also
	// when even the best measured arm cannot meet the target at maximum
	// application speedup (sEvi > max) — there, learning is the only way
	// back to feasibility and withholding it locks the run onto a known
	// overspender. Only when the run is behind plan AND a measured arm
	// suffices does the gate exploit that arm until the ledger catches
	// up.
	deficit := fb.Energy > r.budget*float64(fb.IterationsDone)/r.workload
	if deficit && sEvi <= r.frontier.MaxSpeedup() &&
		r.bandit.Pulls(r.nextSys) == 0 && ca != r.nextSys {
		r.nextSys = ca
		r.explored = false
		rSel, pSel = r.bandit.Rate(ca), r.bandit.Power(ca)
	}
	slack := r.slack
	if sReq > r.frontier.MaxSpeedup()*(1+slack) {
		// The goal is not achievable even at maximum approximation on the
		// most efficient system configuration: report infeasibility and
		// deliver the smallest possible energy (Sec. 3.4.3).
		r.infeasible = true
	} else if sReq <= r.frontier.MaxSpeedup() {
		r.infeasible = false
	}
	if r.infeasible {
		r.infStreak++
	} else {
		r.infStreak = 0
	}
	if r.infStreak >= 3*r.degradeAfter {
		// The projected trajectory has demanded more than maximum
		// approximation for a sustained stretch: stop exploring and hold
		// the known-safe minimum-energy configuration until the ledger
		// says the goal is reachable again. The estimates above keep
		// updating, so recovery is detected from live data.
		r.degrade()
		return
	}
	r.lastF = eReq

	// Control step (Eqn 5): drive the measured iteration rate to the
	// target pSel/eReq — the rate at which the next configuration's power
	// draw meets the per-iteration energy allowance.
	target := pSel / eReq
	r.lastTarget = target
	if !actMiss {
		r.lastSpeedup = r.ctrl.Step(target, rawRate, rSel)
	}

	// Eqn 6: highest-accuracy application configuration delivering the
	// commanded speedup (binary search over the frontier).
	r.nextApp, _ = r.frontier.ForSpeedup(r.lastSpeedup)
}

// record assembles the flight-recorder Decision for one completed
// Observe. Deferred from Observe's entry when tracing is on, it runs
// after the body has chosen the next configurations, so NextApp/NextSys
// are the decision this feedback produced.
func (r *Runtime) record(fb sim.Feedback) {
	r.sink.RecordDecision(telemetry.Decision{
		Iter:      fb.Iter,
		AppConfig: fb.AppConfig,
		SysConfig: fb.SysConfig,
		NextApp:   r.nextApp.Config,
		NextSys:   r.nextSys,

		SEURate:       r.bandit.Rate(r.nextSys),
		SEUPower:      r.bandit.Power(r.nextSys),
		SEUEfficiency: r.bandit.Efficiency(r.nextSys),
		EstimatorGain: r.bandit.Gain(r.nextSys),
		BestArm:       r.bandit.BestArm(),
		Explored:      r.explored,
		Epsilon:       r.lastEps,

		SpeedupCmd: r.ctrl.Speedup(),
		TargetRate: r.lastTarget,
		PIError:    r.ctrl.LastError(),
		Pole:       r.ctrl.Pole(),

		EnergyUsedJ:      fb.Energy,
		BudgetRemainingJ: r.budget - fb.Energy,
		AllowedJPerIter:  r.lastF,

		Sane:          fb.Sane(),
		GuardAccepted: !fb.Estimated,
		Estimated:     fb.Estimated,
		ActuationMiss: r.lastMiss,
		Degraded:      r.degraded,
		Infeasible:    r.infeasible,
	})
}

// noteRejected advances the watchdog for an observation that carried no
// usable measurement.
func (r *Runtime) noteRejected() {
	r.badStreak++
	r.healStreak = 0
	if r.badStreak >= r.degradeAfter {
		r.degrade()
	}
}

// degrade pins the most conservative known-safe configuration: the
// maximum-speedup (minimum-energy) application point on the learner's
// best system arm, with the controller reset there so recovery resumes
// from the safe side.
func (r *Runtime) degrade() {
	if !r.degraded {
		r.degraded = true
		r.degradeEvents++
		r.sink.WatchdogTrip()
	}
	r.healStreak = 0
	r.nextSys = r.conservativeArm()
	r.nextApp, _ = r.frontier.ForSpeedup(math.Inf(1))
	r.ctrl.Reset(r.nextApp.Speedup)
}

// conservativeArm is the system configuration the watchdog pins: the most
// efficient arm among those actually observed. An arm the run has never
// pulled carries only its prior, and a prior's optimism is not evidence —
// pinning an unmeasured arm on the strength of its prior is how a
// degraded run keeps overspending. Before any pull at all, the prior
// ranking is all there is.
func (r *Runtime) conservativeArm() int {
	if arm := r.bandit.BestMeasuredArm(); arm >= 0 {
		return arm
	}
	return r.bandit.BestArm()
}

// SetTelemetry swaps the runtime's telemetry sink after construction,
// propagating it to the bandit estimators and the PI controller. Passing
// nil silences instrumentation. The governor daemon uses this to replay
// snapshot logs without re-counting metrics, then attach the live sink.
func (r *Runtime) SetTelemetry(s telemetry.Sink) {
	r.sink = telemetry.OrNop(s)
	r.traced = s != nil
	r.bandit.SetSink(r.sink)
	r.ctrl.SetSink(r.sink)
}

// NumArms returns the number of system configurations the SEO learns over.
func (r *Runtime) NumArms() int { return r.bandit.NumArms() }

// ArmEstimate exposes the learned model of one system configuration: the
// estimated iteration rate and power draw, and how many observations the
// arm has absorbed. This is the introspection surface the daemon's
// per-session endpoint serves and the snapshot/restore tests pin
// bit-identically.
func (r *Runtime) ArmEstimate(arm int) (rate, power float64, pulls int) {
	return r.bandit.Rate(arm), r.bandit.Power(arm), r.bandit.Pulls(arm)
}

// Degraded reports whether the watchdog currently pins the conservative
// configuration (broken sensing or a sustained projected overrun).
func (r *Runtime) Degraded() bool { return r.degraded }

// DegradeEvents returns how many times the watchdog tripped.
func (r *Runtime) DegradeEvents() int { return r.degradeEvents }

// RejectedStreak returns the current run of consecutive rejected or
// missing observations.
func (r *Runtime) RejectedStreak() int { return r.badStreak }

// Infeasible reports whether the runtime has concluded the energy goal
// cannot be met (Sec. 3.4.3).
func (r *Runtime) Infeasible() bool { return r.infeasible }

// Exploring reports whether the most recent system choice was exploratory.
func (r *Runtime) Exploring() bool { return r.explored }

// Epsilon returns the VDBE exploration rate (0 for other selectors).
func (r *Runtime) Epsilon() float64 { return r.lastEps }

// Pole returns the controller's current pole.
func (r *Runtime) Pole() float64 { return r.ctrl.Pole() }

// Speedup returns the current application speedup command s(t).
func (r *Runtime) Speedup() float64 { return r.ctrl.Speedup() }

// TargetRate returns the controller's current performance target.
func (r *Runtime) TargetRate() float64 { return r.lastTarget }

// BestSystemArm returns the SEO's current best configuration estimate.
func (r *Runtime) BestSystemArm() int { return r.bandit.BestArm() }

// EnergyPerIterAllowed returns the current per-iteration energy allowance
// (the budget's derivative target).
func (r *Runtime) EnergyPerIterAllowed() float64 { return r.lastF }

// Done reports whether the configured workload has completed.
func (r *Runtime) Done() bool { return r.done }
