package experiments

import (
	"time"

	"jouleguard"
	"jouleguard/internal/apps"
	"jouleguard/internal/par"
	"jouleguard/internal/platform"
)

// ---------------------------------------------------------------- Table 2

// Table2Row compares a benchmark's measured characteristics to the paper.
type Table2Row struct {
	App             string
	Configs         int
	PaperConfigs    int
	MaxSpeedup      float64
	PaperMaxSpeedup float64
	MaxLoss         float64
	PaperMaxLoss    float64
	Metric          string
	Framework       string
}

// Table2 profiles every benchmark and reports measured vs paper values.
func Table2() ([]Table2Row, error) {
	rows := make([]Table2Row, len(apps.Table2))
	err := par.Map(len(apps.Table2), func(i int) error {
		spec := apps.Table2[i]
		a, err := apps.New(spec.Name)
		if err != nil {
			return err
		}
		f, err := apps.CalibratedFrontier(a)
		if err != nil {
			return err
		}
		last := f.Points()[f.Len()-1]
		rows[i] = Table2Row{
			App:             spec.Name,
			Configs:         a.NumConfigs(),
			PaperConfigs:    spec.Configs,
			MaxSpeedup:      f.MaxSpeedup(),
			PaperMaxSpeedup: spec.MaxSpeedup,
			MaxLoss:         1 - last.Accuracy,
			PaperMaxLoss:    spec.MaxLoss,
			Metric:          spec.Metric,
			Framework:       spec.Framework,
		}
		return nil
	})
	return rows, err
}

// ---------------------------------------------------------------- Table 3

// Table3Row is one resource row with measured max speedup and powerup
// (maximum across benchmarks, as the paper reports).
type Table3Row struct {
	Platform string
	Resource string
	Settings int
	Speedup  float64
	Powerup  float64
}

// Table3 sweeps each platform resource dimension with all others at their
// maximum and reports the largest rate and power ratios across benchmarks.
// One pool job per (platform, resource) row, in the serial loop's order.
func Table3() ([]Table3Row, error) {
	type rowSpec struct {
		plat *platform.Platform
		row  platform.ResourceRow
	}
	var specs []rowSpec
	for _, platName := range platform.Names() {
		plat, err := platform.ByName(platName)
		if err != nil {
			return nil, err
		}
		for _, rr := range plat.Table3() {
			specs = append(specs, rowSpec{plat, rr})
		}
	}
	rows := make([]Table3Row, len(specs))
	err := par.Map(len(specs), func(i int) error {
		plat, rr := specs[i].plat, specs[i].row
		row := Table3Row{Platform: plat.Name, Resource: rr.Resource, Settings: rr.Settings}
		for _, appName := range apps.Names() {
			prof, err := platform.ProfileFor(appName)
			if err != nil {
				return err
			}
			s, p := resourceSweep(plat, prof, rr.Resource)
			if s > row.Speedup {
				row.Speedup = s
			}
			if p > row.Powerup {
				row.Powerup = p
			}
		}
		rows[i] = row
		return nil
	})
	return rows, err
}

// resourceSweep finds the max/min rate and power along one resource
// dimension with the other dimensions pinned at their default values,
// returning the speedup and powerup ratios.
func resourceSweep(plat *platform.Platform, prof platform.AppProfile, resource string) (speedup, powerup float64) {
	def, err := plat.Config(plat.DefaultConfig())
	if err != nil {
		return 1, 1
	}
	match := func(c platform.Config) bool {
		switch resource {
		case "clock speed", "big core speeds":
			return c.Cluster == def.Cluster && c.Cores == def.Cores && c.HT == def.HT && c.MemCtrls == def.MemCtrls
		case "LITTLE core speeds":
			return c.Cluster != def.Cluster && c.Cores == def.Cores && c.HT == def.HT && c.MemCtrls == def.MemCtrls
		case "core usage", "big cores":
			return c.Cluster == def.Cluster && c.FreqIdx == freqMaxIdx(plat, c.Cluster) && c.HT == def.HT && c.MemCtrls == def.MemCtrls
		case "LITTLE cores":
			return c.Cluster != def.Cluster && c.FreqIdx == freqMaxIdx(plat, c.Cluster) && c.HT == def.HT && c.MemCtrls == def.MemCtrls
		case "hyperthreading":
			return c.Cluster == def.Cluster && c.Cores == def.Cores && c.FreqIdx == def.FreqIdx && c.MemCtrls == def.MemCtrls
		case "mem controllers":
			return c.Cluster == def.Cluster && c.Cores == def.Cores && c.FreqIdx == def.FreqIdx && c.HT == def.HT
		}
		return false
	}
	minRate, maxRate := -1.0, -1.0
	minPow, maxPow := -1.0, -1.0
	for i := 0; i < plat.NumConfigs(); i++ {
		if !match(plat.ConfigAt(i)) {
			continue
		}
		r := plat.Rate(i, prof)
		p := plat.Power(i, prof)
		if minRate < 0 || r < minRate {
			minRate = r
		}
		if r > maxRate {
			maxRate = r
		}
		if minPow < 0 || p < minPow {
			minPow = p
		}
		if p > maxPow {
			maxPow = p
		}
	}
	if minRate <= 0 || minPow <= 0 {
		return 1, 1
	}
	return maxRate / minRate, maxPow / minPow
}

func freqMaxIdx(plat *platform.Platform, cluster int) int {
	return len(plat.CoreTypes[cluster].Freqs) - 1
}

// ---------------------------------------------------------------- Table 4

// Table4Row reports the runtime's per-iteration decision latency for one
// platform's configuration-space size, managing x264 (the benchmark with
// the most application configurations, as in the paper).
type Table4Row struct {
	Platform   string
	SysConfigs int
	LatencyUS  float64
}

// Table4 measures the overhead of Algorithm 1 (Sec. 5.1): wall-clock
// microseconds per Decide+Observe round, with synthetic feedback so only
// runtime work is timed.
func Table4(rounds int) ([]Table4Row, error) {
	if rounds <= 0 {
		rounds = 100
	}
	platNames := platform.Names()
	rows := make([]Table4Row, len(platNames))
	for i, platName := range platNames {
		tb, err := jouleguard.NewTestbed("x264", platName)
		if err != nil {
			return nil, err
		}
		iters := rounds + 10
		gov, err := tb.NewJouleGuard(2.0, iters, jouleguard.Options{})
		if err != nil {
			return nil, err
		}
		dur := 1 / tb.DefaultRate
		var energy float64
		// Warm up.
		for k := 0; k < 10; k++ {
			energy += tb.DefaultPower * dur
			ForceDecisionProbe(gov, k, dur, tb.DefaultPower, energy)
		}
		start := time.Now()
		for k := 10; k < iters; k++ {
			energy += tb.DefaultPower * dur
			ForceDecisionProbe(gov, k, dur, tb.DefaultPower, energy)
		}
		elapsed := time.Since(start)
		rows[i] = Table4Row{
			Platform:   platName,
			SysConfigs: tb.Platform.NumConfigs(),
			LatencyUS:  float64(elapsed.Microseconds()) / float64(rounds),
		}
	}
	return rows, nil
}
