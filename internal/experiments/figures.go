package experiments

import (
	"fmt"
	"math"

	"jouleguard"
	"jouleguard/internal/apps"
	"jouleguard/internal/metrics"
	"jouleguard/internal/par"
	"jouleguard/internal/platform"
	"jouleguard/internal/sim"
)

// ---------------------------------------------------------------- Fig. 1

// Fig1Row is one approach's outcome in the swish++ motivation experiment.
type Fig1Row struct {
	Approach         string
	EnergyPerIter    float64   // J per iteration (one iteration = one query batch)
	ResultsPct       float64   // results returned relative to default, percent
	EnergySeries     []float64 // per-iteration energy trace
	AccuracySeries   []float64
	OscillationScore float64 // mean |delta energy| between iterations, normalised
}

// Fig1 reproduces the motivation experiment (Sec. 2, Fig. 1): swish++ on
// Server with an energy goal 1/3 below default (0.09 -> 0.06 J/query),
// under four approaches: system-only, application-only, uncoordinated, and
// JouleGuard.
func Fig1(scale float64) ([]Fig1Row, error) {
	const appName, platName = "swish++", "Server"
	const factor = 1.5
	tb, err := jouleguard.NewTestbed(appName, platName)
	if err != nil {
		return nil, err
	}
	iters := ItersFor(platName, scale)
	type job struct {
		name string
		gov  func() (jouleguard.Governor, error)
	}
	// The paper's system-only point comes from brute-force search over the
	// configuration space (Sec. 2.1: "we exhaustively searched the space"),
	// so it runs pinned at the true best-efficiency configuration.
	bruteBest, _ := tb.Platform.BestEfficiency(tb.Profile)
	jobs := []job{
		{"System-only", func() (jouleguard.Governor, error) {
			return sim.FixedGovernor{AppCfg: tb.App.DefaultConfig(), SysCfg: bruteBest}, nil
		}},
		{"Application-only", func() (jouleguard.Governor, error) { return tb.NewAppOnly(factor, iters) }},
		{"Uncoordinated", func() (jouleguard.Governor, error) { return tb.NewUncoordinated(factor, iters) }},
		{"JouleGuard", func() (jouleguard.Governor, error) {
			return tb.NewJouleGuard(factor, iters, jouleguard.Options{})
		}},
	}
	rows := make([]Fig1Row, len(jobs))
	err = par.Map(len(jobs), func(i int) error {
		// Each governor runs on its own engine (via a fresh testbed); the
		// governors themselves are parameterised identically from tb.
		tbi, err := jouleguard.NewTestbed(appName, platName)
		if err != nil {
			return err
		}
		gov, err := jobs[i].gov()
		if err != nil {
			return err
		}
		rec, err := tbi.Run(gov, iters)
		if err != nil {
			return err
		}
		var osc float64
		for k := 1; k < len(rec.EnergyPerIter); k++ {
			osc += math.Abs(rec.EnergyPerIter[k] - rec.EnergyPerIter[k-1])
		}
		osc /= float64(len(rec.EnergyPerIter)-1) * rec.EnergyPerIterAvg()
		rows[i] = Fig1Row{
			Approach:         jobs[i].name,
			EnergyPerIter:    rec.EnergyPerIterAvg(),
			ResultsPct:       rec.MeanAccuracy() * 100,
			EnergySeries:     rec.EnergyPerIter,
			AccuracySeries:   rec.Accuracies,
			OscillationScore: osc,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig1Goal returns the target energy per iteration of the motivation
// experiment (1/1.5 of default).
func Fig1Goal() (float64, error) {
	tb, err := jouleguard.NewTestbed("swish++", "Server")
	if err != nil {
		return 0, err
	}
	return tb.DefaultEnergy / 1.5, nil
}

// ---------------------------------------------------------------- Fig. 3

// Fig3Curve is one (app, platform) energy-efficiency landscape.
type Fig3Curve struct {
	App, Platform string
	Efficiency    []float64 // indexed by configuration index
	PeakIndex     int
	DefaultIndex  int
}

// Fig3 characterises the platforms (Sec. 4.3, Fig. 3): energy efficiency of
// every system configuration with the application at full accuracy. The
// paper plots bodytrack and ferret; any benchmark names may be passed.
// Cells run through the shared pool, one per (platform, application), in
// the platform-major order the serial loop used.
func Fig3(appNames []string) ([]Fig3Curve, error) {
	type cellSpec struct{ plat, app string }
	var cells []cellSpec
	for _, platName := range platform.Names() {
		for _, appName := range appNames {
			cells = append(cells, cellSpec{platName, appName})
		}
	}
	out := make([]Fig3Curve, len(cells))
	err := par.Map(len(cells), func(ci int) error {
		plat, err := platform.ByName(cells[ci].plat)
		if err != nil {
			return err
		}
		prof, err := platform.ProfileFor(cells[ci].app)
		if err != nil {
			return err
		}
		curve := Fig3Curve{App: cells[ci].app, Platform: cells[ci].plat, DefaultIndex: plat.DefaultConfig()}
		curve.Efficiency = make([]float64, 0, plat.NumConfigs())
		best, bestEff := 0, math.Inf(-1)
		for i := 0; i < plat.NumConfigs(); i++ {
			eff := plat.Efficiency(i, prof)
			curve.Efficiency = append(curve.Efficiency, eff)
			if eff > bestEff {
				best, bestEff = i, eff
			}
		}
		curve.PeakIndex = best
		out[ci] = curve
		return nil
	})
	return out, err
}

// ---------------------------------------------------------------- Fig. 4

// Fig4Trace is one platform's convergence trace for bodytrack.
type Fig4Trace struct {
	Platform     string
	Factor       float64
	NormEnergy   []float64 // energy per frame normalised to the goal
	Accuracy     []float64
	RelativeErr  float64
	MeanAccuracy float64
	// ConvergenceIter is the first iteration after which the rolling mean
	// of normalised energy stays at or below 1+tol — the "quickly
	// converges" claim of Sec. 5.3 made measurable. -1 if never.
	ConvergenceIter int
}

// ConvergenceIter finds the first index i such that every window-sized
// rolling mean of norm[i:] stays at or below 1+tol (the goal respected from
// then on). Returns -1 if the trace never converges.
func ConvergenceIter(norm []float64, window int, tol float64) int {
	if window < 1 {
		window = 1
	}
	if len(norm) < window {
		return -1
	}
	// Rolling means, then scan from the end for the last violation.
	lastViolation := -1
	var sum float64
	for i, v := range norm {
		sum += v
		if i >= window {
			sum -= norm[i-window]
		}
		if i >= window-1 {
			if mean := sum / float64(window); mean > 1+tol {
				lastViolation = i
			}
		}
	}
	if lastViolation == len(norm)-1 {
		return -1
	}
	return lastViolation + 1
}

// Fig4 reproduces the stability/convergence traces (Sec. 5.3, Fig. 4):
// bodytrack holding 1/4 of default energy on Mobile and 1/3 on Tablet and
// Server, 260 frames.
func Fig4(frames int) ([]Fig4Trace, error) {
	if frames <= 0 {
		frames = 260
	}
	cfg := []struct {
		plat   string
		factor float64
	}{{"Mobile", 4}, {"Tablet", 3}, {"Server", 3}}
	out := make([]Fig4Trace, len(cfg))
	err := par.Map(len(cfg), func(i int) error {
		tb, err := jouleguard.NewTestbed("bodytrack", cfg[i].plat)
		if err != nil {
			return err
		}
		gov, err := tb.NewJouleGuard(cfg[i].factor, frames, jouleguard.Options{})
		if err != nil {
			return err
		}
		rec, err := tb.Run(gov, frames)
		if err != nil {
			return err
		}
		goal := tb.DefaultEnergy / cfg[i].factor
		tr := Fig4Trace{Platform: cfg[i].plat, Factor: cfg[i].factor}
		for _, e := range rec.EnergyPerIter {
			tr.NormEnergy = append(tr.NormEnergy, e/goal)
		}
		tr.Accuracy = rec.Accuracies
		tr.RelativeErr = metrics.RelativeError(rec.EnergyPerIterAvg(), goal)
		tr.MeanAccuracy = rec.MeanAccuracy()
		tr.ConvergenceIter = ConvergenceIter(tr.NormEnergy, 20, 0.05)
		out[i] = tr
		return nil
	})
	return out, err
}

// ------------------------------------------------------------ Figs. 5 & 6

// SweepCell is one bar of Figs. 5 and 6: an (app, platform, factor) run's
// relative error and effective accuracy.
type SweepCell struct {
	RunResult
}

// Sweep runs the full evaluation matrix (Sec. 5.3-5.4): every benchmark on
// every platform at every feasible paper factor. Infeasible combinations
// are skipped, exactly as the paper omits their bars.
func Sweep(factors []float64, scale float64) ([]SweepCell, error) {
	if len(factors) == 0 {
		factors = PaperFactors
	}
	type jobSpec struct {
		app, plat string
		factor    float64
	}
	var jobs []jobSpec
	for _, platName := range platform.Names() {
		for _, appName := range apps.Names() {
			tb, err := jouleguard.NewTestbed(appName, platName)
			if err != nil {
				return nil, err
			}
			orc, err := tb.NewOracle()
			if err != nil {
				return nil, err
			}
			maxF := orc.MaxFeasibleFactor()
			for _, f := range factors {
				if f <= maxF {
					jobs = append(jobs, jobSpec{appName, platName, f})
				}
			}
		}
	}
	cells := make([]SweepCell, len(jobs))
	err := par.Map(len(jobs), func(i int) error {
		res, err := RunJouleGuard(jobs[i].app, jobs[i].plat, jobs[i].factor, scale, jouleguard.Options{})
		if err != nil {
			return err
		}
		cells[i] = SweepCell{res}
		return nil
	})
	return cells, err
}

// ---------------------------------------------------------------- Fig. 7

// Fig7Point compares JouleGuard and application-only accuracy at one goal.
type Fig7Point struct {
	Factor     float64
	JouleGuard float64 // measured mean accuracy
	AppOnly    float64
	Feasible   bool // whether the app-only approach can reach the goal at all
}

// Fig7Result is one benchmark's comparison on Server.
type Fig7Result struct {
	App string
	// SysOnlyMaxFactor is the largest energy reduction achievable by system
	// adaptation alone at full accuracy (the dotted line in Fig. 7).
	SysOnlyMaxFactor float64
	Points           []Fig7Point
}

// Fig7 compares JouleGuard against the best application-only and
// system-only outcomes on Server (Sec. 5.5, Fig. 7).
func Fig7(scale float64) ([]Fig7Result, error) {
	const platName = "Server"
	appNames := apps.Names()
	out := make([]Fig7Result, len(appNames))
	type jobSpec struct {
		appIdx, ptIdx int
		factor        float64
	}
	var jobs []jobSpec
	for ai, appName := range appNames {
		tb, err := jouleguard.NewTestbed(appName, platName)
		if err != nil {
			return nil, err
		}
		orc, err := tb.NewOracle()
		if err != nil {
			return nil, err
		}
		maxF := orc.MaxFeasibleFactor()
		// System-only ceiling: best efficiency at full app accuracy.
		_, bestEff := tb.Platform.BestEfficiency(tb.Profile)
		defEff := tb.Platform.Efficiency(tb.Platform.DefaultConfig(), tb.Profile)
		res := Fig7Result{App: appName, SysOnlyMaxFactor: bestEff / defEff}
		// Factor grid: ~6 points spanning the feasible range.
		n := 6
		for k := 0; k < n; k++ {
			f := 1.1 + (maxF*0.97-1.1)*float64(k)/float64(n-1)
			if f <= 1 {
				continue
			}
			res.Points = append(res.Points, Fig7Point{Factor: f})
			jobs = append(jobs, jobSpec{ai, len(res.Points) - 1, f})
		}
		out[ai] = res
	}
	err := par.Map(len(jobs), func(j int) error {
		spec := jobs[j]
		appName := appNames[spec.appIdx]
		jg, err := RunJouleGuard(appName, platName, spec.factor, scale, jouleguard.Options{})
		if err != nil {
			return err
		}
		tb, err := jouleguard.NewTestbed(appName, platName)
		if err != nil {
			return err
		}
		iters := ItersFor(platName, scale)
		appGov, err := tb.NewAppOnly(spec.factor, iters)
		if err != nil {
			return err
		}
		rec, err := tb.Run(appGov, iters)
		if err != nil {
			return err
		}
		pt := &out[spec.appIdx].Points[spec.ptIdx]
		pt.JouleGuard = jg.MeanAccuracy
		pt.AppOnly = rec.MeanAccuracy()
		// The app-only approach is feasible only if pure approximation can
		// reach the factor on the default system configuration.
		pt.Feasible = tb.Frontier.MaxSpeedup() >= spec.factor
		return nil
	})
	return out, err
}

// ---------------------------------------------------------------- Fig. 8

// Fig8Trace is one platform's phase-adaptation trace.
type Fig8Trace struct {
	Platform      string
	NormEnergy    []float64 // energy per frame normalised to the goal
	Accuracy      []float64
	PhaseAccuracy [3]float64 // mean accuracy per scene
	RelativeErr   float64
}

// Fig8 reproduces the phase experiment (Sec. 5.6, Fig. 8): x264 encoding
// three concatenated scenes (the middle one ~40% easier) under a fixed
// energy-per-frame goal. JouleGuard should hold the energy target and turn
// the middle scene's slack into higher accuracy.
func Fig8(framesPer int, factor float64) ([]Fig8Trace, error) {
	if framesPer <= 0 {
		framesPer = 200
	}
	if factor <= 0 {
		factor = 2
	}
	platNames := platform.Names()
	out := make([]Fig8Trace, len(platNames))
	// One shared phased encoder for all three platforms: its Step method is
	// a deterministic pure function (and concurrency-safe), so sharing the
	// instance means the 560-configuration calibration frontier is profiled
	// once instead of once per platform.
	app := jouleguard.PhasedX264(framesPer)
	err := par.Map(len(platNames), func(i int) error {
		plat, err := jouleguard.PlatformByName(platNames[i])
		if err != nil {
			return err
		}
		tb, err := jouleguard.NewTestbedFrom(app, plat)
		if err != nil {
			return err
		}
		frames := 3 * framesPer
		gov, err := tb.NewJouleGuard(factor, frames, jouleguard.Options{})
		if err != nil {
			return err
		}
		rec, err := tb.Run(gov, frames)
		if err != nil {
			return err
		}
		goal := tb.DefaultEnergy / factor
		tr := Fig8Trace{Platform: platNames[i]}
		for _, e := range rec.EnergyPerIter {
			tr.NormEnergy = append(tr.NormEnergy, e/goal)
		}
		tr.Accuracy = rec.Accuracies
		for ph := 0; ph < 3; ph++ {
			var sum float64
			for k := ph * framesPer; k < (ph+1)*framesPer; k++ {
				sum += rec.Accuracies[k]
			}
			tr.PhaseAccuracy[ph] = sum / float64(framesPer)
		}
		tr.RelativeErr = metrics.RelativeError(rec.EnergyPerIterAvg(), goal)
		out[i] = tr
		return nil
	})
	return out, err
}

// ForceDecisionProbe is a tiny helper for overhead measurement: it performs
// one Decide/Observe round against a runtime with synthetic feedback.
func ForceDecisionProbe(gov *jouleguard.Runtime, iter int, dur, power, energy float64) {
	appCfg, sysCfg := gov.Decide(iter)
	gov.Observe(sim.Feedback{
		Iter: iter, AppConfig: appCfg, SysConfig: sysCfg,
		Work: 1, Duration: dur, Power: power, Energy: energy,
		Accuracy: 1, IterationsDone: iter + 1,
	})
}

// helper for cmds: format a Fig1 row.
func (r Fig1Row) String() string {
	return fmt.Sprintf("%-17s energy/iter=%8.4f J  results=%5.1f%%  oscillation=%.3f",
		r.Approach, r.EnergyPerIter, r.ResultsPct, r.OscillationScore)
}
