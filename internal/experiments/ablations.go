package experiments

import (
	"jouleguard"
	"jouleguard/internal/par"
)

// AblationResult compares one design-choice variant against the paper's
// configuration on the same workload.
type AblationResult struct {
	Variant           string
	RelativeError     float64
	EffectiveAccuracy float64
	MeanAccuracy      float64
}

// ablationCase is one (label, options) pair.
type ablationCase struct {
	label string
	opts  jouleguard.Options
}

func runAblation(appName, platName string, factor, scale float64, cases []ablationCase) ([]AblationResult, error) {
	out := make([]AblationResult, len(cases))
	err := par.Map(len(cases), func(i int) error {
		res, err := RunJouleGuard(appName, platName, factor, scale, cases[i].opts)
		if err != nil {
			return err
		}
		out[i] = AblationResult{
			Variant:           cases[i].label,
			RelativeError:     res.RelativeError,
			EffectiveAccuracy: res.EffectiveAccuracy,
			MeanAccuracy:      res.MeanAccuracy,
		}
		return nil
	})
	return out, err
}

// AblationPole isolates the adaptive pole (Eqns 10-11): the paper's
// adaptive controller versus fixed poles, including the aggressive pole-0
// deadbeat that the uncoordinated approach implicitly uses.
func AblationPole(appName, platName string, factor, scale float64) ([]AblationResult, error) {
	return runAblation(appName, platName, factor, scale, []ablationCase{
		{"adaptive pole (paper)", jouleguard.Options{}},
		{"fixed pole 0.0", jouleguard.Options{FixedPoleSet: true, FixedPole: 0}},
		{"fixed pole 0.5", jouleguard.Options{FixedPoleSet: true, FixedPole: 0.5}},
		{"fixed pole 0.9", jouleguard.Options{FixedPoleSet: true, FixedPole: 0.9}},
	})
}

// AblationPriors isolates the optimistic linear/cubic initialisation
// (Sec. 3.2) against uninformative flat priors.
func AblationPriors(appName, platName string, factor, scale float64) ([]AblationResult, error) {
	return runAblation(appName, platName, factor, scale, []ablationCase{
		{"linear/cubic priors (paper)", jouleguard.Options{}},
		{"flat priors", jouleguard.Options{FlatPriors: true}},
	})
}

// AblationExploration compares VDBE against fixed epsilon-greedy and UCB1.
func AblationExploration(appName, platName string, factor, scale float64) ([]AblationResult, error) {
	return runAblation(appName, platName, factor, scale, []ablationCase{
		{"VDBE (paper)", jouleguard.Options{}},
		{"epsilon-greedy 0.05", jouleguard.Options{Selector: jouleguard.SelectFixedEps, FixedEpsilon: 0.05}},
		{"epsilon-greedy 0.2", jouleguard.Options{Selector: jouleguard.SelectFixedEps, FixedEpsilon: 0.2}},
		{"UCB1", jouleguard.Options{Selector: jouleguard.SelectUCB}},
	})
}

// AblationEstimator compares the paper's EWMA estimators (Eqn 1) against
// Kalman filters (the adaptive-control alternative cited in Sec. 6.4).
func AblationEstimator(appName, platName string, factor, scale float64) ([]AblationResult, error) {
	return runAblation(appName, platName, factor, scale, []ablationCase{
		{"EWMA alpha 0.85 (paper)", jouleguard.Options{}},
		{"Kalman filters", jouleguard.Options{KalmanEstimator: true}},
	})
}

// AblationAlpha sweeps the EWMA gain around the paper's 0.85.
func AblationAlpha(appName, platName string, factor, scale float64) ([]AblationResult, error) {
	return runAblation(appName, platName, factor, scale, []ablationCase{
		{"alpha 0.50", jouleguard.Options{Alpha: 0.50}},
		{"alpha 0.70", jouleguard.Options{Alpha: 0.70}},
		{"alpha 0.85 (paper)", jouleguard.Options{Alpha: 0.85}},
		{"alpha 0.95", jouleguard.Options{Alpha: 0.95}},
	})
}
