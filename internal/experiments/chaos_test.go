package experiments

import (
	"testing"

	"jouleguard"
)

// TestChaosEnergyGuaranteeHolds is the robustness acceptance gate: one
// benchmark per platform, the full default fault suite, and the energy
// guarantee must hold within ChaosTolerance against ground truth in every
// scenario — dropout, spikes, stuck sensor, drift, clock jitter, flaky
// actuators, and all of them combined.
func TestChaosEnergyGuaranteeHolds(t *testing.T) {
	pairs := []struct{ app, plat string }{
		{"radar", "Mobile"},
		{"x264", "Tablet"},
		{"swaptions", "Server"},
	}
	for _, p := range pairs {
		p := p
		t.Run(p.plat+"/"+p.app, func(t *testing.T) {
			t.Parallel()
			cells, skipped, err := Chaos([]string{p.app}, []string{p.plat}, nil, 1.5, 1)
			if err != nil {
				t.Fatal(err)
			}
			if skipped != 0 {
				t.Fatalf("%d scenarios skipped as infeasible; pick a feasible pair", skipped)
			}
			if len(cells) != len(jouleguard.FaultScenarios()) {
				t.Fatalf("got %d cells, want one per scenario (%d)", len(cells), len(jouleguard.FaultScenarios()))
			}
			for _, c := range cells {
				if !c.Pass {
					t.Errorf("%s: energy guarantee broke: %.1f J vs budget %.1f J (ratio %.3f > %.2f)",
						c.Scenario, c.EnergyJ, c.BudgetJ, c.BudgetRatio, ChaosTolerance)
				}
				if c.MeanAccuracy <= 0 {
					t.Errorf("%s: degenerate accuracy %v", c.Scenario, c.MeanAccuracy)
				}
			}
		})
	}
}

// TestChaosValidates covers the harness's own edges: bad factor, unknown
// scenario filtering upstream, and the failure filter.
func TestChaosValidates(t *testing.T) {
	if _, _, err := Chaos(nil, nil, nil, 0, 1); err == nil {
		t.Fatal("zero factor must error")
	}
	cells := []ChaosCell{{Scenario: "a", Pass: true}, {Scenario: "b", Pass: false}}
	fails := ChaosFailures(cells)
	if len(fails) != 1 || fails[0].Scenario != "b" {
		t.Fatalf("failure filter: %+v", fails)
	}
}

// TestChaosSkipsInfeasible mirrors Sweep's behaviour: a factor beyond any
// pair's oracle ceiling produces no cells but reports the gap.
func TestChaosSkipsInfeasible(t *testing.T) {
	cells, skipped, err := Chaos([]string{"radar"}, []string{"Mobile"},
		[]jouleguard.FaultScenario{jouleguard.FaultScenarios()[0]}, 100, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 0 || skipped != 1 {
		t.Fatalf("cells=%d skipped=%d, want 0/1", len(cells), skipped)
	}
}
