// Package experiments contains one driver per table and figure of the
// paper's evaluation (Sec. 5), shared by the cmd tools and the benchmark
// harness. Each driver returns structured results so callers can render
// them as terminal tables, CSV, or testing.B metrics.
package experiments

import (
	"jouleguard"
	"jouleguard/internal/metrics"
	"jouleguard/internal/par"
)

// PaperFactors are the energy-reduction factors of Sec. 5.2.
var PaperFactors = []float64{1.1, 1.2, 1.5, 1.75, 2.0, 2.25, 2.5, 2.75, 3.0}

// MinIters is the floor every scaled-down run length is clamped to: below
// ~50 actuation periods the SEO's priors cannot deflate enough for a run to
// mean anything, so no driver is allowed to go shorter.
const MinIters = 50

// ScaledIters applies a run-length scale to a base iteration count with the
// shared MinIters clamp. Every driver that shortens runs (figures, tables,
// chaos, and the cmd front-ends) must derive its lengths here so they
// cannot disagree about scaled-down runs.
func ScaledIters(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < MinIters {
		n = MinIters
	}
	return n
}

// ItersFor returns the run length for a platform. Server gets a longer run:
// its 1024-configuration space needs more iterations for the SEO's
// optimistic priors to deflate (the paper's server runs similarly span many
// more actuation periods than its mobile runs).
func ItersFor(platform string, scale float64) int {
	base := 600
	if platform == "Server" {
		base = 1600
	}
	return ScaledIters(base, scale)
}

// RunResult is the outcome of one (app, platform, factor, governor) run.
type RunResult struct {
	App, Platform, Approach string
	Factor                  float64
	Iterations              int
	EnergyPerIter           float64 // true joules per iteration
	GoalPerIter             float64
	RelativeError           float64 // Eqn 12, percent
	MeanAccuracy            float64
	OracleAccuracy          float64
	EffectiveAccuracy       float64 // Eqn 13
	Feasible                bool
	Infeasible              bool // runtime's own feasibility verdict
}

// RunJouleGuard executes one JouleGuard run and computes its metrics.
// opts.Seed (when nonzero) seeds both the runtime and the simulation
// engine, so repeated trials observe genuinely different noise.
func RunJouleGuard(appName, platName string, factor float64, scale float64, opts jouleguard.Options) (RunResult, error) {
	tb, err := jouleguard.NewTestbed(appName, platName)
	if err != nil {
		return RunResult{}, err
	}
	if opts.Seed != 0 {
		tb.Seed = opts.Seed
	}
	iters := ItersFor(platName, scale)
	gov, err := tb.NewJouleGuard(factor, iters, opts)
	if err != nil {
		return RunResult{}, err
	}
	rec, err := tb.Run(gov, iters)
	if err != nil {
		return RunResult{}, err
	}
	res := buildResult(tb, rec, appName, platName, "JouleGuard", factor, iters)
	res.Infeasible = gov.Infeasible()
	return res, nil
}

// buildResult computes Eqn 12/13 metrics for a finished run.
func buildResult(tb *jouleguard.Testbed, rec *jouleguard.Record, appName, platName, approach string, factor float64, iters int) RunResult {
	goal := tb.DefaultEnergy / factor
	epi := rec.TrueEnergy / float64(rec.Iterations)
	res := RunResult{
		App: appName, Platform: platName, Approach: approach,
		Factor: factor, Iterations: iters,
		EnergyPerIter: epi, GoalPerIter: goal,
		RelativeError: metrics.RelativeError(epi, goal),
		MeanAccuracy:  rec.MeanAccuracy(),
	}
	if orc, err := tb.NewOracle(); err == nil {
		if pt, ok := orc.BestAccuracyForFactor(factor); ok {
			res.Feasible = true
			res.OracleAccuracy = pt.AppPoint.Accuracy
			res.EffectiveAccuracy = metrics.EffectiveAccuracy(res.MeanAccuracy, res.OracleAccuracy)
		}
	}
	return res
}

// TrialStats aggregates one configuration's outcome over repeated seeded
// trials — mean and standard deviation of the Eqn 12/13 metrics.
type TrialStats struct {
	App, Platform string
	Factor        float64
	Trials        int
	RelErrMean    float64
	RelErrStd     float64
	EffAccMean    float64
	EffAccStd     float64
}

// RunTrials repeats a JouleGuard run under different seeds and aggregates
// the metrics — the variance view a single deterministic run cannot give.
func RunTrials(appName, platName string, factor, scale float64, trials int) (TrialStats, error) {
	if trials < 1 {
		trials = 1
	}
	errsV := make([]float64, trials)
	accsV := make([]float64, trials)
	err := par.Map(trials, func(t int) error {
		res, err := RunJouleGuard(appName, platName, factor, scale,
			jouleguard.Options{Seed: int64(1000 + 17*t)})
		if err != nil {
			return err
		}
		errsV[t] = res.RelativeError
		accsV[t] = res.EffectiveAccuracy
		return nil
	})
	if err != nil {
		return TrialStats{}, err
	}
	es := metrics.Summarize(errsV)
	as := metrics.Summarize(accsV)
	return TrialStats{
		App: appName, Platform: platName, Factor: factor, Trials: trials,
		RelErrMean: es.Mean, RelErrStd: es.StdDev,
		EffAccMean: as.Mean, EffAccStd: as.StdDev,
	}, nil
}
