package experiments

import (
	"reflect"
	"testing"

	"jouleguard/internal/par"
)

// TestDriversDeterministicAcrossWorkerCounts is the golden-determinism
// check: a representative driver run serially must produce byte-for-byte
// the same structured results as the same driver run with a parallel
// worker pool. Results are written into index-addressed slots and every
// run's seed is a pure function of its position, so worker count must be
// unobservable in the output.
func TestDriversDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) ([]Fig1Row, []RobustnessCell, []AblationResult) {
		restore := par.SetWorkers(workers)
		defer restore()
		rows, err := Fig1(testScale)
		if err != nil {
			t.Fatalf("Fig1 (workers=%d): %v", workers, err)
		}
		cells, err := Robustness(testScale)
		if err != nil {
			t.Fatalf("Robustness (workers=%d): %v", workers, err)
		}
		abl, err := AblationPole("radar", "Mobile", 2.0, testScale)
		if err != nil {
			t.Fatalf("AblationPole (workers=%d): %v", workers, err)
		}
		return rows, cells, abl
	}

	serialRows, serialCells, serialAbl := run(1)
	for _, workers := range []int{4} {
		rows, cells, abl := run(workers)
		if !reflect.DeepEqual(serialRows, rows) {
			t.Errorf("Fig1 rows differ between 1 and %d workers:\nserial:   %+v\nparallel: %+v", workers, serialRows, rows)
		}
		if !reflect.DeepEqual(serialCells, cells) {
			t.Errorf("Robustness cells differ between 1 and %d workers:\nserial:   %+v\nparallel: %+v", workers, serialCells, cells)
		}
		if !reflect.DeepEqual(serialAbl, abl) {
			t.Errorf("Ablation results differ between 1 and %d workers:\nserial:   %+v\nparallel: %+v", workers, serialAbl, abl)
		}
	}
}

// TestScaledItersFloor pins the centralised minimum-iterations clamp that
// every scaled driver (figures, chaos, the replicate CLI) shares.
func TestScaledItersFloor(t *testing.T) {
	if got := ScaledIters(600, 1); got != 600 {
		t.Fatalf("ScaledIters(600, 1) = %d, want 600", got)
	}
	if got := ScaledIters(600, 0.5); got != 300 {
		t.Fatalf("ScaledIters(600, 0.5) = %d, want 300", got)
	}
	if got := ScaledIters(600, 0.001); got != MinIters {
		t.Fatalf("ScaledIters(600, 0.001) = %d, want the %d floor", got, MinIters)
	}
	if got := ScaledIters(200, 0.1); got != MinIters {
		t.Fatalf("ScaledIters(200, 0.1) = %d, want the %d floor", got, MinIters)
	}
}
