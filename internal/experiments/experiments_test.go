package experiments

import (
	"math"
	"testing"

	"jouleguard"
)

// Tiny scales keep these integration tests fast; the full-size experiments
// run through cmd/* and the benchmarks.
const testScale = 0.1

func TestItersFor(t *testing.T) {
	if ItersFor("Mobile", 1) != 600 || ItersFor("Server", 1) != 1600 {
		t.Fatal("base iteration counts wrong")
	}
	if ItersFor("Tablet", 0.01) != 50 {
		t.Fatal("scale floor not applied")
	}
}

func TestRunJouleGuardMetrics(t *testing.T) {
	res, err := RunJouleGuard("radar", "Tablet", 2.0, testScale, jouleguard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "radar" || res.Platform != "Tablet" || res.Approach != "JouleGuard" {
		t.Fatalf("labels: %+v", res)
	}
	if res.EnergyPerIter <= 0 || res.GoalPerIter <= 0 {
		t.Fatalf("energies: %+v", res)
	}
	if !res.Feasible || res.OracleAccuracy <= 0 {
		t.Fatalf("oracle fields: %+v", res)
	}
	if res.RelativeError < 0 {
		t.Fatalf("negative relative error")
	}
}

func TestFig1ShapeHolds(t *testing.T) {
	rows, err := Fig1(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("approaches: %d", len(rows))
	}
	byName := map[string]Fig1Row{}
	for _, r := range rows {
		byName[r.Approach] = r
	}
	// System-only keeps full accuracy.
	if byName["System-only"].ResultsPct < 99.9 {
		t.Errorf("system-only lost accuracy: %v%%", byName["System-only"].ResultsPct)
	}
	// The uncoordinated run oscillates more than the coordinated one.
	if byName["Uncoordinated"].OscillationScore <= byName["Application-only"].OscillationScore {
		t.Errorf("uncoordinated oscillation %.3f not above app-only %.3f",
			byName["Uncoordinated"].OscillationScore, byName["Application-only"].OscillationScore)
	}
	goal, err := Fig1Goal()
	if err != nil {
		t.Fatal(err)
	}
	// System-only alone cannot reach the goal (Sec. 2.1).
	if byName["System-only"].EnergyPerIter <= goal {
		t.Errorf("system-only met the goal (%.3f <= %.3f) — it should fall short",
			byName["System-only"].EnergyPerIter, goal)
	}
}

func TestFig3Observations(t *testing.T) {
	curves, err := Fig3([]string{"bodytrack", "ferret"})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 6 {
		t.Fatalf("curves: %d", len(curves))
	}
	for _, c := range curves {
		if len(c.Efficiency) == 0 || c.PeakIndex < 0 {
			t.Fatalf("degenerate curve: %+v", c.App)
		}
		if c.Platform == "Server" && c.PeakIndex == c.DefaultIndex {
			t.Errorf("Server/%s: peak at default — contradicts Sec. 4.3", c.App)
		}
	}
}

func TestFig4TracksGoal(t *testing.T) {
	frames := 260 // the paper's trace length; shorter runs are all transient
	traces, err := Fig4(frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatalf("platforms: %d", len(traces))
	}
	for _, tr := range traces {
		if len(tr.NormEnergy) != frames {
			t.Fatalf("%s: trace length %d", tr.Platform, len(tr.NormEnergy))
		}
		// The run must respect the budget (relative error is clamped at the
		// goal) without wildly undershooting in steady state.
		if tr.RelativeErr > 6 {
			t.Errorf("%s: relative error %.2f%%", tr.Platform, tr.RelativeErr)
		}
		var sum float64
		for _, v := range tr.NormEnergy[frames/2:] {
			sum += v
		}
		mean := sum / float64(frames-frames/2)
		if mean < 0.3 || mean > 1.2 {
			t.Errorf("%s: back-half normalised energy %.3f implausible", tr.Platform, mean)
		}
	}
}

func TestSweepSkipsInfeasible(t *testing.T) {
	cells, err := Sweep([]float64{1.2, 3.0}, testScale)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, c := range cells {
		seen[c.App+"/"+c.Platform] = true
		if !c.Feasible {
			t.Errorf("infeasible cell included: %+v", c.RunResult)
		}
	}
	// ferret cannot reach 3x on Tablet or Server (paper Sec. 5.3: "ferret
	// can only achieve reductions up to 1.2x on Tablet and Server"); Mobile
	// offers a much larger efficiency range, so it is not restricted.
	for _, c := range cells {
		if c.App == "ferret" && c.Factor == 3.0 && c.Platform != "Mobile" {
			t.Errorf("ferret at 3x on %s should have been skipped", c.Platform)
		}
	}
	if !seen["radar/Tablet"] {
		t.Error("expected radar/Tablet cells")
	}
}

func TestFig8EasySceneGainsAccuracy(t *testing.T) {
	traces, err := Fig8(60, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range traces {
		if tr.PhaseAccuracy[1] < tr.PhaseAccuracy[2]-0.005 {
			t.Errorf("%s: easy scene accuracy %.4f below final hard scene %.4f",
				tr.Platform, tr.PhaseAccuracy[1], tr.PhaseAccuracy[2])
		}
	}
}

func TestFig7Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig. 7 sweep is not short")
	}
	results, err := Fig7(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("apps: %d", len(results))
	}
	for _, r := range results {
		if r.SysOnlyMaxFactor < 1 {
			t.Errorf("%s: system-only ceiling %v below 1", r.App, r.SysOnlyMaxFactor)
		}
		if len(r.Points) == 0 {
			t.Errorf("%s: no comparison points", r.App)
		}
		for _, p := range r.Points {
			if p.JouleGuard <= 0 || p.JouleGuard > 1 {
				t.Errorf("%s f=%v: JouleGuard accuracy %v", r.App, p.Factor, p.JouleGuard)
			}
			if p.Feasible && (p.AppOnly <= 0 || p.AppOnly > 1) {
				t.Errorf("%s f=%v: app-only accuracy %v", r.App, p.Factor, p.AppOnly)
			}
		}
		// JouleGuard's range must extend beyond the app-only feasibility
		// boundary for at least the cliff apps.
		if r.App == "canneal" || r.App == "ferret" {
			anyBeyond := false
			for _, p := range r.Points {
				if !p.Feasible {
					anyBeyond = true
				}
			}
			if !anyBeyond {
				t.Errorf("%s: expected goals beyond app-only feasibility", r.App)
			}
		}
	}
}

func TestConvergenceIter(t *testing.T) {
	// A trace that overshoots for 10 iterations then holds the goal.
	norm := make([]float64, 100)
	for i := range norm {
		if i < 10 {
			norm[i] = 3
		} else {
			norm[i] = 0.98
		}
	}
	got := ConvergenceIter(norm, 5, 0.05)
	if got < 10 || got > 20 {
		t.Fatalf("convergence at %d, want shortly after 10", got)
	}
	// A trace that never converges.
	for i := range norm {
		norm[i] = 2
	}
	if ConvergenceIter(norm, 5, 0.05) != -1 {
		t.Fatal("divergent trace should report -1")
	}
	// Degenerate inputs.
	if ConvergenceIter(nil, 5, 0.05) != -1 {
		t.Fatal("empty trace should report -1")
	}
	if ConvergenceIter([]float64{0.9, 0.9}, 0, 0.05) != 0 {
		t.Fatal("window clamp broken")
	}
}

func TestFig1RowString(t *testing.T) {
	s := Fig1Row{Approach: "X", EnergyPerIter: 1, ResultsPct: 50, OscillationScore: 0.1}.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Configs != r.PaperConfigs {
			t.Errorf("%s: configs %d != paper %d", r.App, r.Configs, r.PaperConfigs)
		}
		if math.Abs(r.MaxSpeedup/r.PaperMaxSpeedup-1) > 0.1 {
			t.Errorf("%s: speedup %.2f vs paper %.2f", r.App, r.MaxSpeedup, r.PaperMaxSpeedup)
		}
	}
}

func TestTable3Sane(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 { // 4 Mobile + 3 Tablet + 4 Server
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup < 1 || r.Powerup < 1 {
			t.Errorf("%s/%s: speedup %.2f powerup %.2f below 1", r.Platform, r.Resource, r.Speedup, r.Powerup)
		}
	}
}

func TestTable4LatencyScalesWithConfigs(t *testing.T) {
	rows, err := Table4(300)
	if err != nil {
		t.Fatal(err)
	}
	lat := map[string]float64{}
	for _, r := range rows {
		if r.LatencyUS <= 0 {
			t.Fatalf("%s: non-positive latency", r.Platform)
		}
		lat[r.Platform] = r.LatencyUS
	}
	if lat["Server"] <= lat["Tablet"] {
		t.Errorf("Server (1024 configs) latency %.2f not above Tablet (44) %.2f",
			lat["Server"], lat["Tablet"])
	}
}

func TestRunTrialsAggregates(t *testing.T) {
	st, err := RunTrials("radar", "Tablet", 2.0, testScale, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trials != 3 {
		t.Fatalf("trials: %d", st.Trials)
	}
	if st.EffAccMean <= 0 || st.EffAccMean > 1.2 {
		t.Fatalf("eff acc mean: %v", st.EffAccMean)
	}
	if st.RelErrStd < 0 || st.EffAccStd < 0 {
		t.Fatalf("negative std: %+v", st)
	}
	// Different seeds must actually vary the runs (std of something > 0
	// would be ideal, but ties can happen at tiny scales; instead verify a
	// single-trial call differs from multi-trial means only within reason).
	one, err := RunTrials("radar", "Tablet", 2.0, testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Trials != 1 {
		t.Fatalf("one-trial count: %d", one.Trials)
	}
}

func TestRobustnessUnderLoadVariation(t *testing.T) {
	cells, err := Robustness(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 9 {
		t.Fatalf("cells: %d", len(cells))
	}
	for _, c := range cells {
		if c.RelativeError > 8 {
			t.Errorf("%s/%s (%s): relative error %.2f%% under load variation",
				c.App, c.Platform, c.Shape, c.RelativeError)
		}
		if c.MeanAccuracy <= 0.5 {
			t.Errorf("%s/%s (%s): accuracy collapsed to %.3f", c.App, c.Platform, c.Shape, c.MeanAccuracy)
		}
	}
}

func TestDisturbanceAbsorbed(t *testing.T) {
	res, err := Disturbance("radar", "Tablet", 2.0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results: %d", len(res))
	}
	disturbed := res[1]
	if disturbed.RelativeError > 5 {
		t.Errorf("disturbance broke the budget: %.2f%%", disturbed.RelativeError)
	}
	if disturbed.MeanAccuracy < res[0].MeanAccuracy-0.1 {
		t.Errorf("disturbance cost too much accuracy: %.3f vs %.3f",
			disturbed.MeanAccuracy, res[0].MeanAccuracy)
	}
}

func TestAblationsRun(t *testing.T) {
	res, err := AblationPriors("radar", "Tablet", 2.0, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("variants: %d", len(res))
	}
	for _, r := range res {
		if r.MeanAccuracy <= 0 {
			t.Fatalf("%s: zero accuracy", r.Variant)
		}
	}
}
