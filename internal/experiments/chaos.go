package experiments

import (
	"fmt"
	"sync/atomic"

	"jouleguard"
	"jouleguard/internal/apps"
	"jouleguard/internal/par"
	"jouleguard/internal/platform"
	"jouleguard/internal/telemetry"
)

// ---------------------------------------------------------- chaos harness

// ChaosTolerance is the energy-guarantee slack the robustness suite
// allows under fault injection: consumed true energy must stay within
// 105% of the budget in every scenario.
const ChaosTolerance = 1.05

// ChaosCell is one (app, platform, scenario) run of the chaos harness:
// JouleGuard under an injected fault model, judged on whether the energy
// guarantee held against ground truth.
type ChaosCell struct {
	App, Platform, Scenario string
	Factor                  float64
	Iterations              int

	EnergyJ     float64 // true joules consumed (external meter)
	BudgetJ     float64
	BudgetRatio float64 // EnergyJ / BudgetJ; pass iff <= ChaosTolerance

	MeanAccuracy     float64
	ActuatorFailures int
	GuardAccepted    int
	GuardRejected    int
	DegradeEvents    int
	FaultsInjected   int // readings/timestamps/actuations the injector actually perturbed
	Infeasible       bool
	Pass             bool
}

// faultCounter counts injected faults; the chaos harness attaches one to
// each cell's injector so a scenario's report states how many operations
// the fault models actually perturbed, not just how many the control
// loop noticed.
type faultCounter struct {
	telemetry.Nop
	n atomic.Int64
}

func (f *faultCounter) FaultInjected(uint8) { f.n.Add(1) }

// Chaos runs JouleGuard under every scenario for every (app, platform)
// pair, at one energy-reduction factor. Empty app/platform/scenario lists
// select everything; combinations the oracle deems infeasible at the
// factor are skipped (their guarantee is vacuous), and the skipped count
// is returned so silent gaps cannot masquerade as coverage. Seeds are a
// pure function of the cell's position, so the suite is reproducible.
func Chaos(appNames, platNames []string, scenarios []jouleguard.FaultScenario, factor, scale float64) (cells []ChaosCell, skipped int, err error) {
	if factor <= 0 {
		return nil, 0, fmt.Errorf("experiments: chaos factor %v must be positive", factor)
	}
	if len(appNames) == 0 {
		appNames = apps.Names()
	}
	if len(platNames) == 0 {
		platNames = platform.Names()
	}
	if len(scenarios) == 0 {
		scenarios = jouleguard.FaultScenarios()
	}
	type jobSpec struct {
		app, plat string
		scenario  jouleguard.FaultScenario
		seed      int64
	}
	var jobs []jobSpec
	for pi, platName := range platNames {
		for ai, appName := range appNames {
			tb, err := jouleguard.NewTestbed(appName, platName)
			if err != nil {
				return nil, 0, err
			}
			orc, err := tb.NewOracle()
			if err != nil {
				return nil, 0, err
			}
			if factor > orc.MaxFeasibleFactor() {
				skipped += len(scenarios)
				continue
			}
			for si, sc := range scenarios {
				jobs = append(jobs, jobSpec{appName, platName, sc,
					int64(1 + 97*pi + 13*ai + 7*si)})
			}
		}
	}
	cells = make([]ChaosCell, len(jobs))
	err = par.Map(len(jobs), func(i int) error {
		c, err := runChaosCell(jobs[i].app, jobs[i].plat, jobs[i].scenario, factor, scale, jobs[i].seed)
		if err != nil {
			return err
		}
		cells[i] = c
		return nil
	})
	return cells, skipped, err
}

// runChaosCell executes one faulted run and judges the energy guarantee.
func runChaosCell(appName, platName string, sc jouleguard.FaultScenario, factor, scale float64, seed int64) (ChaosCell, error) {
	tb, err := jouleguard.NewTestbed(appName, platName)
	if err != nil {
		return ChaosCell{}, err
	}
	iters := ItersFor(platName, scale)
	gov, err := tb.NewJouleGuard(factor, iters, jouleguard.Options{})
	if err != nil {
		return ChaosCell{}, err
	}
	inj := sc.Make(seed, 1/tb.DefaultRate)
	fc := &faultCounter{}
	inj.Sink = fc
	rec, err := tb.RunFaulty(gov, iters, inj)
	if err != nil {
		return ChaosCell{}, err
	}
	budget, err := tb.Budget(factor, iters)
	if err != nil {
		return ChaosCell{}, err
	}
	c := ChaosCell{
		App: appName, Platform: platName, Scenario: sc.Name,
		Factor: factor, Iterations: iters,
		EnergyJ: rec.TrueEnergy, BudgetJ: budget,
		BudgetRatio:      rec.TrueEnergy / budget,
		MeanAccuracy:     rec.MeanAccuracy(),
		ActuatorFailures: rec.ActuatorFailures,
		GuardAccepted:    rec.GuardAccepted,
		GuardRejected:    rec.GuardRejected,
		DegradeEvents:    gov.DegradeEvents(),
		FaultsInjected:   int(fc.n.Load()),
		Infeasible:       gov.Infeasible(),
	}
	c.Pass = c.BudgetRatio <= ChaosTolerance
	return c, nil
}

// ChaosFailures filters the cells where the energy guarantee broke.
func ChaosFailures(cells []ChaosCell) []ChaosCell {
	var out []ChaosCell
	for _, c := range cells {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}
