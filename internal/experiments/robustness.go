package experiments

import (
	"fmt"
	"math/rand"

	"jouleguard"
	"jouleguard/internal/metrics"
	"jouleguard/internal/par"
	"jouleguard/internal/workload"
)

// DisturbanceResult compares a run with and without a mid-run external
// disturbance.
type DisturbanceResult struct {
	Label             string
	RelativeError     float64
	MeanAccuracy      float64
	DisturbedAccuracy float64 // mean accuracy during the disturbance window
}

// Disturbance tests the Sec. 3.2 claim that the learning mechanism "makes
// JouleGuard extremely robust to external variations": mid-run, a
// co-located job steals 35% of the machine's throughput and adds 15% power
// for a third of the run. The runtime must still respect the budget,
// paying with accuracy only while the interference lasts.
func Disturbance(appName, platName string, factor, scale float64) ([]DisturbanceResult, error) {
	iters := ItersFor(platName, scale)
	lo, hi := iters/3, 2*iters/3
	mk := func(label string, disturb func(int) (float64, float64)) (DisturbanceResult, error) {
		tb, err := jouleguard.NewTestbed(appName, platName)
		if err != nil {
			return DisturbanceResult{}, err
		}
		gov, err := tb.NewJouleGuard(factor, iters, jouleguard.Options{})
		if err != nil {
			return DisturbanceResult{}, err
		}
		rec, err := tb.RunDisturbed(gov, iters, disturb)
		if err != nil {
			return DisturbanceResult{}, err
		}
		goal := tb.DefaultEnergy / factor
		var during float64
		for i := lo; i < hi; i++ {
			during += rec.Accuracies[i]
		}
		return DisturbanceResult{
			Label:             label,
			RelativeError:     metrics.RelativeError(rec.EnergyPerIterAvg(), goal),
			MeanAccuracy:      rec.MeanAccuracy(),
			DisturbedAccuracy: during / float64(hi-lo),
		}, nil
	}
	out := make([]DisturbanceResult, 2)
	err := par.Map(2, func(i int) error {
		var e error
		if i == 0 {
			out[0], e = mk("undisturbed", nil)
		} else {
			out[1], e = mk("co-located load (mid-run)", func(iter int) (float64, float64) {
				if iter >= lo && iter < hi {
					return 0.65, 1.15
				}
				return 1, 1
			})
		}
		return e
	})
	return out, err
}

// RobustnessCell is one (workload shape, app, platform) outcome.
type RobustnessCell struct {
	Shape         string
	App, Platform string
	Factor        float64
	RelativeError float64
	MeanAccuracy  float64
}

// Robustness is an extension beyond the paper's evaluation: Fig. 8 varies
// the workload once (three scenes); here JouleGuard faces sustained
// diurnal load swings and random bursts — per-iteration costs its models
// never saw — and must still respect the budget. The budget accounts for
// the trace's true total work (the user knows their workload W, Algorithm
// 1's Require line); everything else is unchanged.
func Robustness(scale float64) ([]RobustnessCell, error) {
	type spec struct {
		app, plat string
		factor    float64
	}
	specs := []spec{
		{"radar", "Tablet", 2.0},
		{"x264", "Mobile", 2.0},
		{"streamcluster", "Server", 2.0},
	}
	shapes := []string{"steady", "diurnal", "bursty"}
	var cells []RobustnessCell
	type jobSpec struct {
		s     spec
		shape string
	}
	var jobs []jobSpec
	for _, s := range specs {
		for _, sh := range shapes {
			jobs = append(jobs, jobSpec{s, sh})
		}
	}
	cells = make([]RobustnessCell, len(jobs))
	err := par.Map(len(jobs), func(i int) error {
		j := jobs[i]
		tb, err := jouleguard.NewTestbed(j.s.app, j.s.plat)
		if err != nil {
			return err
		}
		iters := ItersFor(j.s.plat, scale)
		var tr *jouleguard.Trace
		switch j.shape {
		case "steady":
			tr = nil
		case "diurnal":
			tr, err = workload.DiurnalTrace(iters, iters/3, 12, 0.6, 1.6)
		case "bursty":
			tr, err = workload.BurstyTrace(rand.New(rand.NewSource(31)), iters, iters/12, iters/40, 2.2)
		default:
			err = fmt.Errorf("unknown shape %q", j.shape)
		}
		if err != nil {
			return err
		}
		// The budget covers the trace's actual total work at the goal's
		// per-nominal-iteration allowance.
		totalWork := float64(iters)
		if tr != nil {
			totalWork = tr.TotalCost()
		}
		budget := totalWork * tb.DefaultEnergy / j.s.factor
		gov, err := tb.NewJouleGuardBudget(budget, iters, jouleguard.Options{})
		if err != nil {
			return err
		}
		rec, err := tb.RunTraced(gov, iters, tr)
		if err != nil {
			return err
		}
		cells[i] = RobustnessCell{
			Shape:         j.shape,
			App:           j.s.app,
			Platform:      j.s.plat,
			Factor:        j.s.factor,
			RelativeError: metrics.RelativeError(rec.TrueEnergy, budget),
			MeanAccuracy:  rec.MeanAccuracy(),
		}
		return nil
	})
	return cells, err
}
