// Package ferret is the content-similarity-search benchmark built with Loop
// Perforation (paper Table 2: 8 configurations, max speedup 1.24, max
// accuracy loss 18.2%, metric "similarity"). The real PARSEC ferret ranks
// images by feature-vector similarity through a multi-stage pipeline; Loop
// Perforation skips candidates in the expensive ranking stage. This kernel
// searches a clustered feature database: a fixed coarse-quantisation stage
// selects candidate clusters, and the perforated ranking stage scores the
// candidates; accuracy is the mean similarity of the returned neighbours
// relative to the default configuration's neighbours.
package ferret

import (
	"math"
	"sort"

	"jouleguard/internal/apps/kernel"
	"jouleguard/internal/perforation"
)

const (
	name        = "ferret"
	dbSize      = 512
	dim         = 16
	numClusters = 32
	probes      = 8  // clusters probed by the coarse stage
	topK        = 10 // neighbours returned
	batch       = 4  // queries per Step
	queryPool   = 64
	numConfigs  = 8
	maxRate     = 0.8
	targetSpeed = 1.24
	targetLoss  = 0.182
	calibIters  = 8
)

// Searcher implements the App interface.
type Searcher struct {
	db        [][dim]float64
	centroids [numClusters][dim]float64
	clusters  [][]int // cluster -> member indices
	queries   [][dim]float64
	refSim    []float64 // default mean top-K similarity per query
	rates     []float64
	work      kernel.WorkScale
	acc       kernel.AccuracyScale
}

// New builds the database (a Gaussian-mixture feature space), the query
// pool, and calibrates to Table 2.
func New() *Searcher {
	s := &Searcher{}
	rates, err := perforation.RateLadder(numConfigs, maxRate)
	if err != nil {
		panic(err) // static ladder cannot fail
	}
	s.rates = rates
	rng := kernel.RNG(name+"-db", 0)
	for c := range s.centroids {
		for d := 0; d < dim; d++ {
			s.centroids[c][d] = rng.NormFloat64() * 4
		}
	}
	s.db = make([][dim]float64, dbSize)
	s.clusters = make([][]int, numClusters)
	for i := range s.db {
		c := i % numClusters
		for d := 0; d < dim; d++ {
			s.db[i][d] = s.centroids[c][d] + rng.NormFloat64()
		}
		s.clusters[c] = append(s.clusters[c], i)
	}
	s.queries = make([][dim]float64, queryPool)
	s.refSim = make([]float64, queryPool)
	qrng := kernel.RNG(name+"-queries", 0)
	for q := range s.queries {
		base := s.db[qrng.Intn(dbSize)]
		for d := 0; d < dim; d++ {
			s.queries[q][d] = base[d] + 0.5*qrng.NormFloat64()
		}
		sim, _ := s.search(q, 0)
		s.refSim[q] = sim
	}
	// Calibrate in Step units (a Step is a batch of queries): the base cost
	// stands in for the real ferret pipeline's non-perforated stages
	// (segmentation, feature extraction, output).
	var rawDef, rawFast, lossFast float64
	for it := 0; it < calibIters; it++ {
		q := it % queryPool
		_, wd := s.search(q, 0)
		simF, wf := s.search(q, len(s.rates)-1)
		rawDef += wd
		rawFast += wf
		lossFast += s.lossFor(q, simF)
	}
	perBatch := float64(batch) / calibIters
	s.work = kernel.NewWorkScale(rawDef*perBatch, rawFast*perBatch, targetSpeed)
	s.acc = kernel.NewAccuracyScale(lossFast/calibIters, targetLoss)
	return s
}

func dist2(a, b [dim]float64) float64 {
	var s float64
	for d := 0; d < dim; d++ {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return s
}

// search runs the pipeline for query q at configuration cfg and returns the
// mean similarity of the returned top-K plus the raw work (vector ops).
func (s *Searcher) search(q, cfg int) (meanSim, rawWork float64) {
	query := s.queries[q]
	// Stage 1 (never perforated): rank the coarse centroids.
	type scored struct {
		idx int
		d   float64
	}
	cents := make([]scored, numClusters)
	for c := range s.centroids {
		cents[c] = scored{c, dist2(query, s.centroids[c])}
		rawWork += dim
	}
	sort.Slice(cents, func(i, j int) bool { return cents[i].d < cents[j].d })
	// Candidate list from the probed clusters, in deterministic order.
	var cands []int
	for p := 0; p < probes; p++ {
		cands = append(cands, s.clusters[cents[p].idx]...)
	}
	// Stage 2 (perforated): score the candidates.
	loop, err := perforation.NewLoop(s.rates[cfg], perforation.Interleave)
	if err != nil {
		loop, _ = perforation.NewLoop(0, perforation.Interleave)
	}
	var results []scored
	loop.Range(len(cands), func(i int) {
		idx := cands[i]
		results = append(results, scored{idx, dist2(query, s.db[idx])})
		rawWork += dim
	})
	sort.Slice(results, func(i, j int) bool { return results[i].d < results[j].d })
	k := topK
	if k > len(results) {
		k = len(results)
	}
	var sim float64
	for i := 0; i < k; i++ {
		sim += 1 / (1 + math.Sqrt(results[i].d))
	}
	if k > 0 {
		sim /= float64(k)
	}
	return sim, rawWork
}

// lossFor converts a configuration's mean similarity into raw loss against
// the default configuration on query q.
func (s *Searcher) lossFor(q int, sim float64) float64 {
	ref := s.refSim[q]
	if ref <= 0 {
		return 0
	}
	l := (ref - sim) / ref
	if l < 0 {
		l = 0
	}
	return l
}

// Name implements the App interface.
func (s *Searcher) Name() string { return name }

// Metric implements the App interface.
func (s *Searcher) Metric() string { return "similarity" }

// NumConfigs implements the App interface.
func (s *Searcher) NumConfigs() int { return numConfigs }

// DefaultConfig implements the App interface.
func (s *Searcher) DefaultConfig() int { return 0 }

// Rates exposes the perforation ladder.
func (s *Searcher) Rates() []float64 { return append([]float64(nil), s.rates...) }

// Step implements the App interface: answer one batch of similarity
// queries.
func (s *Searcher) Step(cfg, iter int) (work, accuracy float64) {
	if cfg < 0 || cfg >= numConfigs {
		cfg = 0
	}
	if iter < 0 {
		iter = -iter
	}
	var raw, loss float64
	for b := 0; b < batch; b++ {
		q := (iter*batch + b) % queryPool
		sim, w := s.search(q, cfg)
		raw += w
		loss += s.lossFor(q, sim)
	}
	return s.work.Work(raw), s.acc.Accuracy(loss / batch)
}
