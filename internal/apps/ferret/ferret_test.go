package ferret

import (
	"testing"
)

func TestRatesLadder(t *testing.T) {
	s := New()
	r := s.Rates()
	if len(r) != numConfigs || r[0] != 0 {
		t.Fatalf("rates: %v", r)
	}
	for i := 1; i < len(r); i++ {
		if r[i] <= r[i-1] {
			t.Fatalf("rates not increasing: %v", r)
		}
	}
}

func TestDatabaseClustered(t *testing.T) {
	s := New()
	if len(s.db) != dbSize {
		t.Fatalf("db size: %d", len(s.db))
	}
	total := 0
	for c, members := range s.clusters {
		total += len(members)
		for _, m := range members {
			if dist2(s.db[m], s.centroids[c]) > dist2(s.db[m], s.centroids[(c+numClusters/2)%numClusters]) {
				// Members should usually be nearest their own centroid; a
				// single violation is tolerable noise, so only fail on a
				// systematic breakdown, checked below via totals.
				continue
			}
		}
	}
	if total != dbSize {
		t.Fatalf("cluster membership covers %d of %d", total, dbSize)
	}
}

func TestFullSearchBeatsPerforated(t *testing.T) {
	s := New()
	var full, perf float64
	for q := 0; q < queryPool; q++ {
		f, _ := s.search(q, 0)
		p, _ := s.search(q, numConfigs-1)
		full += f
		perf += p
	}
	if perf >= full {
		t.Fatalf("perforated similarity %v not below full %v", perf, full)
	}
}

func TestPerforationReducesWork(t *testing.T) {
	s := New()
	_, wFull := s.search(0, 0)
	_, wPerf := s.search(0, numConfigs-1)
	if wPerf >= wFull {
		t.Fatalf("perforated work %v not below full %v", wPerf, wFull)
	}
}

func TestSearchDeterministic(t *testing.T) {
	s := New()
	s1, w1 := s.search(5, 3)
	s2, w2 := s.search(5, 3)
	if s1 != s2 || w1 != w2 {
		t.Fatal("search not deterministic")
	}
}

func TestQueriesNearDatabase(t *testing.T) {
	s := New()
	// Every query was perturbed from a database vector, so its best
	// similarity must be substantial.
	for q := 0; q < queryPool; q++ {
		sim, _ := s.search(q, 0)
		if sim <= 0.1 {
			t.Fatalf("query %d: full-search similarity %v suspiciously low", q, sim)
		}
	}
}

func TestStepBatching(t *testing.T) {
	s := New()
	w1, a1 := s.Step(2, 1)
	w2, a2 := s.Step(2, 1+queryPool/batch)
	if w1 != w2 || a1 != a2 {
		t.Fatal("iterations should cycle over the query pool")
	}
}
