package x264

import (
	"math"
	"testing"
)

func TestConfigSpaceShape(t *testing.T) {
	e := New(nil)
	if e.NumConfigs() != 560 {
		t.Fatalf("configs: %d", e.NumConfigs())
	}
	def := e.decode(e.DefaultConfig())
	if def.subme != 6 || def.refFrames != 5 || def.searchRng != 16 || def.depth != 4 {
		t.Fatalf("default config decoded to %+v", def)
	}
	min := e.decode(0)
	if min.subme != 0 || min.refFrames != 1 || min.searchRng != 4 || min.depth != 1 {
		t.Fatalf("config 0 decoded to %+v", min)
	}
}

func TestFramesDeterministicAndCached(t *testing.T) {
	e := New(nil)
	f1 := e.frameAt(10)
	f2 := e.frameAt(10)
	if &f1[0][0] != &f2[0][0] {
		t.Fatal("frame cache miss on repeated access")
	}
	e2 := New(nil)
	g := e2.frameAt(10)
	for y := range f1 {
		for x := range f1[y] {
			if f1[y][x] != g[y][x] {
				t.Fatal("frame synthesis not deterministic across instances")
			}
		}
	}
}

func TestPixelRangeValid(t *testing.T) {
	e := New(nil)
	f := e.frameAt(3)
	for y := range f {
		for x := range f[y] {
			if f[y][x] < 0 || f[y][x] > 255 {
				t.Fatalf("pixel (%d,%d) out of range: %v", x, y, f[y][x])
			}
		}
	}
}

func TestMoreEffortNeverHurtsPSNROnAverage(t *testing.T) {
	e := New(nil)
	mean := func(cfg int) float64 {
		var s float64
		for it := 0; it < 6; it++ {
			_, psnr := e.encode(e.decode(cfg), it)
			s += psnr
		}
		return s / 6
	}
	low := mean(0)
	high := mean(e.DefaultConfig())
	if high <= low {
		t.Fatalf("full-effort PSNR %v not above minimal-effort %v", high, low)
	}
}

func TestWorkGrowsWithSearchEffort(t *testing.T) {
	e := New(nil)
	wLow, _ := e.encode(e.decode(0), 0)
	wHigh, _ := e.encode(e.decode(e.DefaultConfig()), 0)
	if wHigh <= wLow*2 {
		t.Fatalf("default config work %v not well above minimal %v", wHigh, wLow)
	}
}

func TestSADExactOnIdenticalBlocks(t *testing.T) {
	f := make(frame, height)
	for y := range f {
		f[y] = make([]float64, width)
		for x := range f[y] {
			f[y][x] = float64((x*7 + y*13) % 251)
		}
	}
	s, ops := sad(f, f, 8, 8, 0, 0, block)
	if s != 0 {
		t.Fatalf("SAD of identical blocks: %v", s)
	}
	if ops != block*block {
		t.Fatalf("ops: %v", ops)
	}
}

func TestSearchFindsKnownMotion(t *testing.T) {
	// Build two frames where the second is the first shifted by (3, 2);
	// the search must recover the motion vector for an interior block. The
	// content is smooth (like real video), so the log search's coarse-to-
	// fine descent is well conditioned.
	a := make(frame, height)
	b := make(frame, height)
	rngVals := func(x, y int) float64 {
		return 110 + 60*math.Sin(float64(x)/4.5) + 45*math.Cos(float64(y)/3.5) + 25*math.Sin(float64(x+y)/6)
	}
	for y := 0; y < height; y++ {
		a[y] = make([]float64, width)
		b[y] = make([]float64, width)
		for x := 0; x < width; x++ {
			a[y][x] = rngVals(x, y)
		}
	}
	dx, dy := 3, 2
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			sx, sy := x+dx, y+dy
			if sx >= 0 && sx < width && sy >= 0 && sy < height {
				b[y][x] = a[sy][sx]
			} else {
				b[y][x] = 128
			}
		}
	}
	mx, my, best, _ := searchBlock(b, a, 8, 8, 16, 6)
	if mx != dx || my != dy || best > 1e-9 {
		t.Fatalf("motion search found (%d,%d) SAD %v, want (%d,%d) SAD 0", mx, my, best, dx, dy)
	}
}

func TestEasySceneTerminatesEarly(t *testing.T) {
	hard := New(func(int) float64 { return 1 })
	easy := New(func(int) float64 { return 0.25 })
	var wh, we float64
	for it := 2; it < 8; it++ {
		w, _ := hard.encode(hard.decode(hard.DefaultConfig()), it)
		wh += w
		w2, _ := easy.encode(easy.decode(easy.DefaultConfig()), it)
		we += w2
	}
	if we >= wh {
		t.Fatalf("easy scene (%v raw ops) not cheaper than hard (%v)", we, wh)
	}
}

func TestPSNRReferenceCached(t *testing.T) {
	e := New(nil)
	p1 := e.defaultPSNR(5)
	p2 := e.defaultPSNR(5)
	if p1 != p2 {
		t.Fatal("reference PSNR unstable")
	}
	if p1 < 20 || p1 > 60 {
		t.Fatalf("default PSNR %v outside plausible range", p1)
	}
}

func TestRelLoss(t *testing.T) {
	if relLoss(35, 40) != (40.0-35)/40 {
		t.Fatal("relLoss arithmetic")
	}
	if relLoss(45, 40) != 0 {
		t.Fatal("negative loss must clamp to 0")
	}
	if relLoss(10, 0) != 0 {
		t.Fatal("degenerate reference must yield 0")
	}
}

func TestClamp255(t *testing.T) {
	if clamp255(-3) != 0 || clamp255(300) != 255 || clamp255(128) != 128 {
		t.Fatal("clamp255 wrong")
	}
}

func TestStepAccuracyWithinBounds(t *testing.T) {
	e := New(nil)
	for _, cfg := range []int{0, 100, 300, 559} {
		_, acc := e.Step(cfg, 4)
		if acc < 0 || acc > 1 || math.IsNaN(acc) {
			t.Fatalf("cfg %d: accuracy %v", cfg, acc)
		}
	}
}
