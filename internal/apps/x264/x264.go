// Package x264 is the video-encoder benchmark (paper Table 2: 560
// configurations, max speedup 4.26, max accuracy loss 6.2%, metric PSNR).
// It is a real miniature block-matching encoder over synthetic video:
// block motion estimation against previous frames, residual quantisation
// with a bit-budget clip, and PSNR measured on the actual reconstruction.
//
// The four PowerDial knobs mirror the real x264 parameters PowerDial
// exposes (Hoffmann et al., ASPLOS'11): subpixel refinement effort (7
// levels), reference frames (1-5), motion search range (4 levels) and
// partition depth (4 levels) — 7*5*4*4 = 560 configurations.
//
// Scene difficulty is a first-class input: the difficulty function scales
// object motion and sensor noise per frame, and the motion search
// terminates early on good matches, so easy scenes genuinely encode faster
// — the property the paper's phase experiment (Fig. 8) depends on.
package x264

import (
	"math"
	"sync"

	"jouleguard/internal/apps/kernel"
	"jouleguard/internal/knob"
)

const (
	name    = "x264"
	width   = 32
	height  = 24
	block   = 8
	blocksX = width / block
	blocksY = height / block

	qp         = 6   // quantisation step for residuals
	clip       = 30  // residual clip: the bit-budget stand-in
	termSAD    = 3.0 // early-termination threshold per pixel
	calibIters = 4

	targetSpeed = 4.26
	targetLoss  = 0.062
)

type frame [][]float64 // [y][x] luma

// mvKey identifies one motion search: the frame pair (iter, iter-r), the
// block, and the two knobs the search depends on. The depth and
// reference-count knobs do not enter the search itself, so all
// configurations sharing (range, subme) reuse the same result.
type mvKey struct {
	iter, r, blk, rng, subme int
}

// mvVal is one memoised searchBlock result.
type mvVal struct {
	mx, my     int
	best, work float64
}

// prKey identifies one block prediction: the frame pair, the block, the
// motion vector the search produced, and the partition depth. Distinct
// configurations frequently converge to the same vector, so the
// quadrant-refinement sads are shared across them.
type prKey struct {
	iter, r, blk, mx, my, depth int
}

// prVal is one memoised predict result.
type prVal struct {
	pred [block * block]float64
	work float64
}

// Encoder implements the App interface. The caches make Step safe for
// concurrent use by parallel experiment sweeps.
type Encoder struct {
	space      *knob.Space
	defaultCfg int
	difficulty func(iter int) float64
	mu         sync.RWMutex
	frames     map[int]frame   // frame cache keyed by index
	refPSNR    map[int]float64 // default-config PSNR per iteration
	mvMu       sync.RWMutex
	mv         map[mvKey]mvVal  // motion-search memo (bit-identical replay)
	pr         map[prKey]*prVal // prediction memo, same purity argument
	objects    []object
	work       kernel.WorkScale
	acc        kernel.AccuracyScale
}

// object is a moving bright rectangle in the synthetic scene.
type object struct {
	x0, y0 float64 // base position
	vx, vy float64 // velocity at difficulty 1 (pixels/frame)
	size   int
	level  float64
}

// cfg decodes a configuration id into the four knob settings.
type cfg struct {
	subme     int // 0..6 refinement passes
	refFrames int // 1..5
	searchRng int // 4, 8, 12, 16
	depth     int // 1..4 partition depth
}

// New constructs the encoder. difficulty maps an iteration (frame) index to
// a scene difficulty multiplier (nil = constant 1); the Fig. 8 experiment
// passes a three-phase function.
func New(difficulty func(iter int) float64) *Encoder {
	if difficulty == nil {
		difficulty = func(int) float64 { return 1 }
	}
	space, err := knob.NewSpace(
		knob.Knob{Name: "subme", Values: []float64{0, 1, 2, 3, 4, 5, 6}},
		knob.Knob{Name: "ref", Values: []float64{1, 2, 3, 4, 5}},
		knob.Knob{Name: "range", Values: []float64{4, 8, 12, 16}},
		knob.Knob{Name: "depth", Values: []float64{1, 2, 3, 4}},
	)
	if err != nil {
		panic(err) // static knob definition cannot fail
	}
	def, err := space.Index([]int{6, 4, 3, 3})
	if err != nil {
		panic(err)
	}
	e := &Encoder{
		space:      space,
		defaultCfg: def,
		difficulty: difficulty,
		frames:     make(map[int]frame),
		refPSNR:    make(map[int]float64),
		mv:         make(map[mvKey]mvVal),
		pr:         make(map[prKey]*prVal),
	}
	rng := kernel.RNG(name+"-scene", 0)
	for i := 0; i < 3; i++ {
		e.objects = append(e.objects, object{
			x0:    rng.Float64() * width,
			y0:    rng.Float64() * height,
			vx:    (rng.Float64()*2 - 1) * 1.6,
			vy:    (rng.Float64()*2 - 1) * 1.2,
			size:  4 + rng.Intn(3),
			level: 60 + rng.Float64()*80,
		})
	}
	// Two-point calibration against Table 2.
	var rawDef, rawFast float64
	losses := make([]float64, calibIters)
	for it := 0; it < calibIters; it++ {
		wd, _ := e.encode(e.decode(e.defaultCfg), it)
		wf, pf := e.encode(e.decode(0), it) // config 0 = all knobs minimal
		rawDef += wd
		rawFast += wf
		pd := e.defaultPSNR(it)
		losses[it] = relLoss(pf, pd)
	}
	e.work = kernel.NewWorkScale(rawDef/calibIters, rawFast/calibIters, targetSpeed)
	e.acc = kernel.NewAccuracyScale(kernel.MeanAbs(losses), targetLoss)
	return e
}

func (e *Encoder) decode(id int) cfg {
	vals, err := e.space.Settings(id)
	if err != nil {
		vals, _ = e.space.Settings(e.defaultCfg)
	}
	return cfg{
		subme:     int(vals[0]),
		refFrames: int(vals[1]),
		searchRng: int(vals[2]),
		depth:     int(vals[3]),
	}
}

// frameAt synthesises (and caches) frame j: gradient background, moving
// objects, global pan, and sensor noise, all scaled by scene difficulty.
func (e *Encoder) frameAt(j int) frame {
	e.mu.RLock()
	f, ok := e.frames[j]
	e.mu.RUnlock()
	if ok {
		return f
	}
	d := e.difficulty(j)
	f = make(frame, height)
	rng := kernel.RNG(name+"-noise", j)
	panX := 0.4 * d * float64(j)
	for y := range f {
		f[y] = make([]float64, width)
		for x := range f[y] {
			f[y][x] = 80 + 1.5*float64(x) + 1.0*float64(y) + 12*math.Sin((float64(x)+panX)/5)
		}
	}
	for _, o := range e.objects {
		ox := int(math.Mod(o.x0+o.vx*d*float64(j)+1e6*float64(width), float64(width)))
		oy := int(math.Mod(o.y0+o.vy*d*float64(j)+1e6*float64(height), float64(height)))
		for dy := 0; dy < o.size; dy++ {
			for dx := 0; dx < o.size; dx++ {
				x, y := (ox+dx)%width, (oy+dy)%height
				f[y][x] = clamp255(f[y][x] + o.level)
			}
		}
	}
	noise := 4 * d
	for y := range f {
		for x := range f[y] {
			f[y][x] = clamp255(f[y][x] + noise*rng.NormFloat64())
		}
	}
	// Duplicate computation under a race is harmless: frames are pure
	// functions of j, so last-writer-wins stores an identical value.
	e.mu.Lock()
	e.frames[j] = f
	e.mu.Unlock()
	return f
}

// sad computes the sum of absolute differences between the bs x bs block of
// cur at (bx,by) and ref at offset (mx,my); out-of-frame reference pixels
// cost a border penalty. Returns the SAD and pixel-ops performed.
func sad(cur, ref frame, bx, by, mx, my, bs int) (float64, float64) {
	// Row-hoisted form of the per-pixel loop: the accumulation visits the
	// same pixels in the same order with the same operations, so the sum
	// is bit-identical to the naive version; only the per-pixel 2D
	// indexing and border branches are lifted out.
	var s float64
	for y := 0; y < bs; y++ {
		cy := by + y
		ry := cy + my
		curRow := cur[cy][bx : bx+bs]
		if ry < 0 || ry >= height {
			for x := 0; x < bs; x++ {
				s += math.Abs(curRow[x] - 128) // frame border
			}
			continue
		}
		// Columns [lo, hi) land inside the reference frame; the rest cost
		// the border penalty.
		rx := bx + mx
		lo, hi := 0, bs
		if rx < 0 {
			lo = -rx
			if lo > bs {
				lo = bs
			}
		}
		if rx+bs > width {
			hi = width - rx
			if hi < lo {
				hi = lo
			}
		}
		for x := 0; x < lo; x++ {
			s += math.Abs(curRow[x] - 128)
		}
		if lo < hi {
			refSeg := ref[ry][rx+lo : rx+hi]
			for x := lo; x < hi; x++ {
				s += math.Abs(curRow[x] - refSeg[x-lo])
			}
		}
		for x := hi; x < bs; x++ {
			s += math.Abs(curRow[x] - 128)
		}
	}
	return s, float64(bs * bs)
}

// searchBlockMemo returns the memoised searchBlock result for one
// (frame pair, block, range, subme) search. searchBlock is a pure
// function of the two frames and its parameters, and frames are pure
// functions of their index, so replaying the stored result is
// bit-identical to recomputing it. Configurations that differ only in
// partition depth or reference count share entries, which is where the
// 560-configuration profiling sweep spends most of its redundancy.
func (e *Encoder) searchBlockMemo(iter, r, blk, rng, subme int, cur, ref frame, bx, by int) (mx, my int, best, work float64) {
	k := mvKey{iter: iter, r: r, blk: blk, rng: rng, subme: subme}
	e.mvMu.RLock()
	v, ok := e.mv[k]
	e.mvMu.RUnlock()
	if ok {
		return v.mx, v.my, v.best, v.work
	}
	mx, my, best, work = searchBlock(cur, ref, bx, by, rng, subme)
	e.mvMu.Lock()
	e.mv[k] = mvVal{mx: mx, my: my, best: best, work: work}
	e.mvMu.Unlock()
	return mx, my, best, work
}

// searchBlock runs a three-step (log) search with early termination and
// subme refinement passes in one reference frame, returning the best motion
// vector, its SAD and the work spent.
func searchBlock(cur, ref frame, bx, by, rng, subme int) (mx, my int, best float64, work float64) {
	var ops float64
	best, ops = sad(cur, ref, bx, by, 0, 0, block)
	work = ops
	step := rng / 2
	for step >= 1 {
		if best < termSAD*block*block {
			return mx, my, best, work
		}
		bestDX, bestDY := 0, 0
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				s, ops := sad(cur, ref, bx, by, mx+dx*step, my+dy*step, block)
				work += ops
				if s < best {
					best, bestDX, bestDY = s, dx, dy
				}
			}
		}
		mx += bestDX * step
		my += bestDY * step
		step /= 2
	}
	for pass := 0; pass < subme; pass++ {
		if best < termSAD*block*block {
			break
		}
		improved := false
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				s, ops := sad(cur, ref, bx, by, mx+dx, my+dy, block)
				work += ops
				if s < best {
					best, mx, my = s, mx+dx, my+dy
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return mx, my, best, work
}

// predictMemo returns predict's output for one (frame pair, block,
// motion vector, depth), replaying the stored prediction when the same
// vector has been predicted before. predict is pure in its inputs, so
// the copy is bit-identical to recomputation.
func (e *Encoder) predictMemo(iter, r, blk, mx, my, depth int, cur, ref frame, bx, by int, pred *[block * block]float64) (work float64) {
	k := prKey{iter: iter, r: r, blk: blk, mx: mx, my: my, depth: depth}
	e.mvMu.RLock()
	v, ok := e.pr[k]
	e.mvMu.RUnlock()
	if ok {
		*pred = v.pred
		return v.work
	}
	work = predict(cur, ref, bx, by, mx, my, depth, pred)
	e.mvMu.Lock()
	e.pr[k] = &prVal{pred: *pred, work: work}
	e.mvMu.Unlock()
	return work
}

// predict fills pred (a row-major block x block buffer, reused across
// blocks to avoid per-block allocation) with the motion-compensated
// prediction of the 8x8 block using the chosen reference and motion
// vector; partition depth >= 2 refines each 4x4 quadrant with its own
// small search around the block vector.
func predict(cur, ref frame, bx, by, mx, my, depth int, pred *[block * block]float64) (work float64) {
	for y := 0; y < block; y++ {
		for x := 0; x < block; x++ {
			ry, rx := by+y+my, bx+x+mx
			if ry >= 0 && ry < height && rx >= 0 && rx < width {
				pred[y*block+x] = ref[ry][rx]
			} else {
				pred[y*block+x] = 128
			}
		}
	}
	if depth < 2 {
		return 0
	}
	half := block / 2
	for passes := 0; passes < depth-1; passes++ {
		for qy := 0; qy < 2; qy++ {
			for qx := 0; qx < 2; qx++ {
				qbx, qby := bx+qx*half, by+qy*half
				bestS := math.Inf(1)
				bestMX, bestMY := mx, my
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						s, ops := sad(cur, ref, qbx, qby, mx+dx, my+dy, half)
						work += ops
						if s < bestS {
							bestS, bestMX, bestMY = s, mx+dx, my+dy
						}
					}
				}
				for y := 0; y < half; y++ {
					for x := 0; x < half; x++ {
						ry, rx := qby+y+bestMY, qbx+x+bestMX
						if ry >= 0 && ry < height && rx >= 0 && rx < width {
							pred[(qy*half+y)*block+qx*half+x] = ref[ry][rx]
						}
					}
				}
			}
		}
	}
	return work
}

// encode encodes frame `iter` at configuration c and returns the raw work
// (pixel operations) and the reconstruction PSNR.
func (e *Encoder) encode(c cfg, iter int) (rawWork, psnr float64) {
	cur := e.frameAt(iter)
	refs := make([]frame, 0, c.refFrames)
	for r := 1; r <= c.refFrames; r++ {
		refs = append(refs, e.frameAt(iter-r))
	}
	var sqErr float64
	var pred [block * block]float64
	for byi := 0; byi < blocksY; byi++ {
		for bxi := 0; bxi < blocksX; bxi++ {
			bx, by := bxi*block, byi*block
			bestSAD := math.Inf(1)
			var bestRef frame
			bestR := 1
			var bmx, bmy int
			for ri, ref := range refs {
				mx, my, s, w := e.searchBlockMemo(iter, ri+1, byi*blocksX+bxi, c.searchRng, c.subme, cur, ref, bx, by)
				rawWork += w
				if s < bestSAD {
					bestSAD, bestRef, bestR, bmx, bmy = s, ref, ri+1, mx, my
				}
			}
			rawWork += e.predictMemo(iter, bestR, byi*blocksX+bxi, bmx, bmy, c.depth, cur, bestRef, bx, by, &pred)
			// Residual quantisation with clipping (bit budget stand-in).
			for y := 0; y < block; y++ {
				curRow := cur[by+y][bx : bx+block]
				predRow := pred[y*block : (y+1)*block]
				for x := 0; x < block; x++ {
					resid := curRow[x] - predRow[x]
					q := math.Round(resid/qp) * qp
					if q > clip {
						q = clip
					} else if q < -clip {
						q = -clip
					}
					recon := predRow[x] + q
					d := curRow[x] - recon
					sqErr += d * d
				}
			}
		}
	}
	mse := sqErr / float64(width*height)
	if mse < 1e-6 {
		mse = 1e-6
	}
	return rawWork, 10 * math.Log10(255*255/mse)
}

// defaultPSNR returns (and caches) the default configuration's PSNR for an
// iteration — the reference the accuracy metric normalises against.
func (e *Encoder) defaultPSNR(iter int) float64 {
	e.mu.RLock()
	p, ok := e.refPSNR[iter]
	e.mu.RUnlock()
	if ok {
		return p
	}
	_, p = e.encode(e.decode(e.defaultCfg), iter)
	e.mu.Lock()
	e.refPSNR[iter] = p
	e.mu.Unlock()
	return p
}

func relLoss(got, ref float64) float64 {
	if ref <= 0 {
		return 0
	}
	l := (ref - got) / ref
	if l < 0 {
		l = 0
	}
	return l
}

// Name implements the App interface.
func (e *Encoder) Name() string { return name }

// Metric implements the App interface.
func (e *Encoder) Metric() string { return "Peak Signal to Noise Ratio (PSNR)" }

// NumConfigs implements the App interface.
func (e *Encoder) NumConfigs() int { return e.space.Size() }

// DefaultConfig implements the App interface.
func (e *Encoder) DefaultConfig() int { return e.defaultCfg }

// Space exposes the knob space (for tests and docs).
func (e *Encoder) Space() *knob.Space { return e.space }

// Step implements the App interface: encode one frame.
func (e *Encoder) Step(cfgID, iter int) (work, accuracy float64) {
	if cfgID < 0 || cfgID >= e.space.Size() {
		cfgID = e.defaultCfg
	}
	raw, psnr := e.encode(e.decode(cfgID), iter)
	return e.work.Work(raw), e.acc.Accuracy(relLoss(psnr, e.defaultPSNR(iter)))
}

func clamp255(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}
