package apps

import (
	"math"
	"testing"
)

// TestTable2Calibration asserts every kernel reproduces its Table 2 row:
// exact configuration count, max speedup within 10%, and max accuracy loss
// within a factor of [0.3, 3] (the loss is measured from real, noisy
// computations; the calibration pins its average, not each profile draw).
func TestTable2Calibration(t *testing.T) {
	for _, spec := range Table2 {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			a, err := New(spec.Name)
			if err != nil {
				t.Fatal(err)
			}
			if a.NumConfigs() != spec.Configs {
				t.Errorf("configs = %d, want %d", a.NumConfigs(), spec.Configs)
			}
			if a.Metric() != spec.Metric {
				t.Errorf("metric = %q, want %q", a.Metric(), spec.Metric)
			}
			f, err := Frontier(a, 4)
			if err != nil {
				t.Fatal(err)
			}
			if got := f.MaxSpeedup(); math.Abs(got/spec.MaxSpeedup-1) > 0.10 {
				t.Errorf("max speedup = %.3f, want %.3f +/-10%%", got, spec.MaxSpeedup)
			}
			last := f.Points()[f.Len()-1]
			loss := 1 - last.Accuracy
			if loss < spec.MaxLoss*0.3 || loss > spec.MaxLoss*3 {
				t.Errorf("loss at max speedup = %.4f, want ~%.4f (factor 3 band)", loss, spec.MaxLoss)
			}
		})
	}
}

// TestDefaultConfigFullAccuracy: by construction, the default configuration
// reproduces the reference output exactly on every iteration.
func TestDefaultConfigFullAccuracy(t *testing.T) {
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range all {
		for iter := 0; iter < 8; iter++ {
			_, acc := a.Step(a.DefaultConfig(), iter)
			if math.Abs(acc-1) > 1e-9 {
				t.Errorf("%s iter %d: default accuracy %v, want 1", a.Name(), iter, acc)
			}
		}
	}
}

// TestStepDeterminism: Step is a pure function of (config, iteration).
func TestStepDeterminism(t *testing.T) {
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range all {
		cfgs := []int{0, a.DefaultConfig(), a.NumConfigs() - 1, a.NumConfigs() / 2}
		for _, cfg := range cfgs {
			for iter := 0; iter < 3; iter++ {
				w1, a1 := a.Step(cfg, iter)
				w2, a2 := a.Step(cfg, iter)
				if w1 != w2 || a1 != a2 {
					t.Errorf("%s cfg %d iter %d: non-deterministic (%v,%v) vs (%v,%v)",
						a.Name(), cfg, iter, w1, a1, w2, a2)
				}
			}
		}
	}
}

// TestStepOutputsValid: work is positive and accuracy in [0,1] for every
// benchmark across a spread of configurations and iterations.
func TestStepOutputsValid(t *testing.T) {
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range all {
		n := a.NumConfigs()
		for _, cfg := range []int{0, n / 4, n / 2, 3 * n / 4, n - 1} {
			for iter := 0; iter < 5; iter++ {
				w, acc := a.Step(cfg, iter)
				if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
					t.Errorf("%s cfg %d: bad work %v", a.Name(), cfg, w)
				}
				if acc < 0 || acc > 1 || math.IsNaN(acc) {
					t.Errorf("%s cfg %d: bad accuracy %v", a.Name(), cfg, acc)
				}
			}
		}
	}
}

// TestStepToleratesBadInputs: out-of-range configs and negative iterations
// must not panic (the runtime may probe during exploration).
func TestStepToleratesBadInputs(t *testing.T) {
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range all {
		for _, cfg := range []int{-1, a.NumConfigs(), a.NumConfigs() + 100} {
			w, acc := a.Step(cfg, -5)
			if w <= 0 || acc < 0 || acc > 1 {
				t.Errorf("%s: bad-input Step returned (%v, %v)", a.Name(), w, acc)
			}
		}
	}
}

// TestFrontierMonotone: along every benchmark's frontier, accuracy is
// non-increasing in speedup — the structure Eqn 6's binary search needs.
func TestFrontierMonotone(t *testing.T) {
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range all {
		f, err := Frontier(a, 3)
		if err != nil {
			t.Fatal(err)
		}
		pts := f.Points()
		for i := 1; i < len(pts); i++ {
			if pts[i].Speedup <= pts[i-1].Speedup {
				t.Errorf("%s: frontier speedups not increasing at %d", a.Name(), i)
			}
			if pts[i].Accuracy > pts[i-1].Accuracy+1e-9 {
				t.Errorf("%s: frontier accuracy increases with speedup at %d", a.Name(), i)
			}
		}
		// The frontier must include a ~full-accuracy point.
		if pts[0].Accuracy < 0.999 {
			t.Errorf("%s: no full-accuracy frontier point (best %.4f)", a.Name(), pts[0].Accuracy)
		}
	}
}

func TestCalibrationItersScalesWithSpace(t *testing.T) {
	x264, err := New("x264")
	if err != nil {
		t.Fatal(err)
	}
	radar, err := New("radar")
	if err != nil {
		t.Fatal(err)
	}
	big := CalibrationIters(x264)    // 560 configs
	small := CalibrationIters(radar) // 26 configs
	if big >= small {
		t.Fatalf("bigger spaces should profile fewer iterations: %d vs %d", big, small)
	}
	bt, _ := New("bodytrack")
	if mid := CalibrationIters(bt); mid <= big || mid >= small {
		t.Fatalf("mid-size space iters %d not between %d and %d", mid, big, small)
	}
}

func TestCalibratedFrontierMemoised(t *testing.T) {
	a, err := New("radar")
	if err != nil {
		t.Fatal(err)
	}
	f1, err := CalibratedFrontier(a)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := CalibratedFrontier(a)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("frontier not memoised per instance")
	}
}

func TestSpecFor(t *testing.T) {
	s, err := SpecFor("radar")
	if err != nil || s.Configs != 26 {
		t.Fatalf("SpecFor(radar): %+v, %v", s, err)
	}
	if _, err := SpecFor("nope"); err == nil {
		t.Fatal("want error for unknown benchmark")
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("nope"); err == nil {
		t.Fatal("want error for unknown benchmark")
	}
}

func TestNewCaches(t *testing.T) {
	a1, err := New("radar")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := New("radar")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("registry did not cache the instance")
	}
}

func TestNames(t *testing.T) {
	n := Names()
	if len(n) != 8 || n[0] != "x264" || n[7] != "streamcluster" {
		t.Fatalf("Names: %v", n)
	}
}

func TestProfileAppValidates(t *testing.T) {
	if _, err := ProfileApp(badApp{}, 1); err == nil {
		t.Fatal("want error for zero-config app")
	}
}

type badApp struct{}

func (badApp) Name() string                     { return "bad" }
func (badApp) NumConfigs() int                  { return 0 }
func (badApp) DefaultConfig() int               { return 0 }
func (badApp) Metric() string                   { return "" }
func (badApp) Step(c, i int) (float64, float64) { return 0, 0 }

// TestNewX264WithPhases: the three-phase encoder must genuinely run faster
// in the easy middle scene (early termination in motion search).
func TestNewX264WithPhases(t *testing.T) {
	diff := func(iter int) float64 {
		if iter >= 20 && iter < 40 {
			return 0.3
		}
		return 1
	}
	a := NewX264WithPhases(diff)
	var hard, easy float64
	for i := 5; i < 15; i++ {
		w, _ := a.Step(a.DefaultConfig(), i)
		hard += w
	}
	for i := 25; i < 35; i++ {
		w, _ := a.Step(a.DefaultConfig(), i)
		easy += w
	}
	if easy >= hard {
		t.Fatalf("easy scene not faster: easy=%v hard=%v", easy, hard)
	}
	speed := hard / easy
	if speed < 1.1 || speed > 2.5 {
		t.Errorf("easy-scene speedup %v outside the plausible 1.1-2.5x band (paper: ~1.4x)", speed)
	}
}
