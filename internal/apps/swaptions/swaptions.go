// Package swaptions is the PARSEC-style Monte-Carlo swaption pricer built
// with PowerDial (paper Table 2: 100 configurations, max speedup 100.35,
// max accuracy loss 1.5%, metric "swaption price"). The knob is the number
// of Monte-Carlo trials: each trial simulates a short-rate path under a
// Vasicek model and the swaption price is the mean discounted payoff.
// Truncating the trial stream is exactly how the real PowerDial swaptions
// behaves: the same random paths are evaluated, just fewer of them.
package swaptions

import (
	"math"

	"jouleguard/internal/apps/kernel"
)

const (
	name        = "swaptions"
	instruments = 16 // distinct swaptions cycled by iteration index
	fullTrials  = 2000
	minTrials   = 20 // fullTrials / 100 ~ the Table 2 speedup
	pathSteps   = 12 // Euler steps per simulated short-rate path
	numConfigs  = 100
	targetSpeed = 100.35
	targetLoss  = 0.015
)

// instrument holds one swaption's model parameters.
type instrument struct {
	r0, kappa, theta, sigma float64 // Vasicek short-rate parameters
	strike                  float64
	tenor                   float64
}

// Pricer implements the apps.App interface (structurally).
type Pricer struct {
	trials  []int       // knob ladder, trials[0] = fullTrials (default)
	payoffs [][]float64 // per instrument: fullTrials precomputed payoffs
	refs    []float64   // per instrument: reference price (all trials)
	work    kernel.WorkScale
	acc     kernel.AccuracyScale
}

// New constructs the pricer, runs the full Monte-Carlo streams once to
// establish references, and calibrates the work/accuracy scales to Table 2.
func New() *Pricer {
	p := &Pricer{
		trials:  kernel.GeometricInts(fullTrials, minTrials, numConfigs),
		payoffs: make([][]float64, instruments),
		refs:    make([]float64, instruments),
	}
	for i := 0; i < instruments; i++ {
		rng := kernel.RNG(name+"-inst", i)
		inst := instrument{
			r0:     0.02 + 0.04*rng.Float64(),
			kappa:  0.1 + 0.4*rng.Float64(),
			theta:  0.03 + 0.04*rng.Float64(),
			sigma:  0.015 + 0.02*rng.Float64(),
			strike: 0.02 + 0.04*rng.Float64(),
			tenor:  1 + 4*rng.Float64(),
		}
		stream := make([]float64, fullTrials)
		for t := range stream {
			stream[t] = simulatePayoff(inst, rng)
		}
		p.payoffs[i] = stream
		p.refs[i] = mean(stream)
		if p.refs[i] <= 0 {
			// Deep out-of-the-money draw: nudge the strike so the price is
			// meaningful (a zero reference breaks relative error).
			for t := range stream {
				stream[t] += 0.001
			}
			p.refs[i] = mean(stream)
		}
	}
	// Calibrate: raw work is trials*pathSteps; raw loss at the fastest
	// configuration is the mean relative pricing error across instruments.
	rawDef := float64(fullTrials * pathSteps)
	rawFast := float64(p.trials[numConfigs-1] * pathSteps)
	p.work = kernel.NewWorkScale(rawDef, rawFast, targetSpeed)
	losses := make([]float64, instruments)
	for i := range losses {
		losses[i] = p.rawLoss(numConfigs-1, i)
	}
	p.acc = kernel.NewAccuracyScale(kernel.MeanAbs(losses), targetLoss)
	return p
}

// simulatePayoff runs one Vasicek path and returns the discounted payoff of
// a payer swaption: max(average simulated rate - strike, 0) * tenor,
// discounted along the path.
func simulatePayoff(in instrument, rng interface{ NormFloat64() float64 }) float64 {
	dt := in.tenor / pathSteps
	r := in.r0
	var rateSum, discount float64
	discount = 1
	for s := 0; s < pathSteps; s++ {
		r += in.kappa*(in.theta-r)*dt + in.sigma*math.Sqrt(dt)*rng.NormFloat64()
		rateSum += r
		discount *= math.Exp(-r * dt)
	}
	avg := rateSum / pathSteps
	payoff := avg - in.strike
	if payoff < 0 {
		payoff = 0
	}
	return payoff * in.tenor * discount
}

// Name implements the App interface.
func (p *Pricer) Name() string { return name }

// Metric implements the App interface.
func (p *Pricer) Metric() string { return "swaption price" }

// NumConfigs implements the App interface.
func (p *Pricer) NumConfigs() int { return numConfigs }

// DefaultConfig implements the App interface; config 0 runs all trials.
func (p *Pricer) DefaultConfig() int { return 0 }

// Trials exposes the knob ladder (for tests and docs).
func (p *Pricer) Trials() []int { return append([]int(nil), p.trials...) }

// rawLoss is the relative pricing error of configuration cfg on instrument
// inst versus the full-trial reference.
func (p *Pricer) rawLoss(cfg, inst int) float64 {
	n := p.trials[cfg]
	price := mean(p.payoffs[inst][:n])
	return math.Abs(price-p.refs[inst]) / p.refs[inst]
}

// Step implements the App interface.
func (p *Pricer) Step(cfg, iter int) (work, accuracy float64) {
	if cfg < 0 || cfg >= numConfigs {
		cfg = 0
	}
	inst := iter % instruments
	if inst < 0 {
		inst += instruments
	}
	raw := float64(p.trials[cfg] * pathSteps)
	return p.work.Work(raw), p.acc.Accuracy(p.rawLoss(cfg, inst))
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
