package swaptions

import (
	"math"
	"testing"
)

func TestKnobLadder(t *testing.T) {
	p := New()
	tr := p.Trials()
	if len(tr) != 100 {
		t.Fatalf("ladder size: %d", len(tr))
	}
	if tr[0] != fullTrials || tr[99] != minTrials {
		t.Fatalf("ladder endpoints: %d .. %d", tr[0], tr[99])
	}
	for i := 1; i < len(tr); i++ {
		if tr[i] > tr[i-1] {
			t.Fatalf("trials not non-increasing at %d: %v > %v", i, tr[i], tr[i-1])
		}
	}
}

func TestWorkMonotoneInTrials(t *testing.T) {
	p := New()
	var prev float64 = math.Inf(1)
	for cfg := 0; cfg < p.NumConfigs(); cfg += 7 {
		w, _ := p.Step(cfg, 0)
		if w > prev {
			t.Fatalf("work increased from config %d", cfg)
		}
		prev = w
	}
}

func TestDefaultPricesExactly(t *testing.T) {
	p := New()
	for iter := 0; iter < instruments; iter++ {
		_, acc := p.Step(0, iter)
		if acc != 1 {
			t.Fatalf("default accuracy on iter %d: %v", iter, acc)
		}
	}
}

func TestMonteCarloErrorShrinksWithTrials(t *testing.T) {
	p := New()
	// Mean raw pricing loss over all instruments must shrink as trials grow.
	lossAt := func(cfg int) float64 {
		var s float64
		for i := 0; i < instruments; i++ {
			s += p.rawLoss(cfg, i)
		}
		return s / instruments
	}
	coarse := lossAt(99) // 20 trials
	mid := lossAt(50)
	fine := lossAt(10)
	if !(coarse > mid && mid > fine) {
		t.Fatalf("MC error not shrinking: %v, %v, %v", coarse, mid, fine)
	}
}

func TestReferencesPositive(t *testing.T) {
	p := New()
	for i, r := range p.refs {
		if r <= 0 {
			t.Fatalf("instrument %d has non-positive reference price %v", i, r)
		}
	}
}

func TestIterationCyclesInstruments(t *testing.T) {
	p := New()
	w1, a1 := p.Step(50, 3)
	w2, a2 := p.Step(50, 3+instruments)
	if w1 != w2 || a1 != a2 {
		t.Fatal("iterations should cycle over the instrument pool")
	}
}
