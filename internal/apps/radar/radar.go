// Package radar is the phased-array digital-signal-processing benchmark
// (paper Table 2: 26 configurations, max speedup 19.39, max accuracy loss
// 5.3%, metric "signal to noise ratio"; the application detects targets in
// the returns of a phased-array antenna [Hoffmann et al., TPDS'12]). The
// PowerDial knob is the length of the FIR low-pass filter applied to the
// returns before detection: shorter filters cost proportionally fewer
// multiply-accumulates but reject less out-of-band noise, degrading the
// output signal-to-noise ratio.
package radar

import (
	"math"

	"jouleguard/internal/apps/kernel"
)

const (
	name        = "radar"
	numConfigs  = 26
	samples     = 256 // samples per pulse return
	fullTaps    = 136
	minTaps     = 7 // fullTaps/19.39 ~ Table 2 max speedup
	targetSpeed = 19.39
	targetLoss  = 0.053
	pulses      = 16 // distinct pulse scenarios cycled by iteration
	signalBin   = 9  // target Doppler bin (cycles per window)
	cutoffBin   = 24 // filter cutoff (bins); noise above is out-of-band
)

// DSP implements the App interface for the radar pipeline.
type DSP struct {
	taps    []int       // knob ladder, taps[0] = fullTaps
	filters [][]float64 // windowed-sinc coefficients per config
	returns [][]float64 // per pulse scenario: noisy antenna samples
	refSNR  []float64   // per pulse: SNR of the default-config output
	work    kernel.WorkScale
	acc     kernel.AccuracyScale
}

// New builds the pipeline: synthesises pulse returns (target tone + strong
// out-of-band noise), designs the filter bank, and calibrates to Table 2.
func New() *DSP {
	d := &DSP{taps: kernel.GeometricInts(fullTaps, minTaps, numConfigs)}
	d.filters = make([][]float64, numConfigs)
	for c, t := range d.taps {
		d.filters[c] = design(t)
	}
	d.returns = make([][]float64, pulses)
	d.refSNR = make([]float64, pulses)
	for p := 0; p < pulses; p++ {
		rng := kernel.RNG(name+"-pulse", p)
		sig := make([]float64, samples)
		phase := rng.Float64() * 2 * math.Pi
		amp := 0.8 + 0.4*rng.Float64()
		for i := range sig {
			x := 2 * math.Pi * float64(i) / samples
			sig[i] = amp * math.Sin(float64(signalBin)*x+phase)
			// In-band noise floor.
			sig[i] += 0.05 * rng.NormFloat64()
			// Strong out-of-band interference the filter must reject.
			for _, b := range []int{40, 57, 83, 110} {
				sig[i] += 0.5 * math.Sin(float64(b)*x+float64(b)*phase)
			}
		}
		d.returns[p] = sig
		d.refSNR[p] = snr(convolve(sig, d.filters[0]))
	}
	rawDef := float64(fullTaps * samples)
	rawFast := float64(minTaps * samples)
	d.work = kernel.NewWorkScale(rawDef, rawFast, targetSpeed)
	losses := make([]float64, pulses)
	for p := range losses {
		losses[p] = d.rawLoss(numConfigs-1, p)
	}
	d.acc = kernel.NewAccuracyScale(kernel.MeanAbs(losses), targetLoss)
	return d
}

// design returns a Hamming-windowed sinc low-pass filter with the given
// number of taps and the fixed cutoff.
func design(taps int) []float64 {
	h := make([]float64, taps)
	fc := float64(cutoffBin) / samples // normalised cutoff
	mid := float64(taps-1) / 2
	var sum float64
	for i := range h {
		t := float64(i) - mid
		var s float64
		if t == 0 {
			s = 2 * fc
		} else {
			s = math.Sin(2*math.Pi*fc*t) / (math.Pi * t)
		}
		w := 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(taps-1))
		h[i] = s * w
		sum += h[i]
	}
	for i := range h { // normalise DC gain... unity passband gain
		h[i] /= sum
	}
	return h
}

// convolve applies the FIR filter with same-length output (zero-padded
// edges), counting taps*samples multiply-accumulates of work.
func convolve(x, h []float64) []float64 {
	out := make([]float64, len(x))
	mid := len(h) / 2
	for i := range x {
		var acc float64
		for j, c := range h {
			k := i + j - mid
			if k >= 0 && k < len(x) {
				acc += c * x[k]
			}
		}
		out[i] = acc
	}
	return out
}

// snr estimates signal-to-noise: power in the target Doppler bin over the
// power of everything else, via a Goertzel-style projection.
func snr(x []float64) float64 {
	var re, im, total float64
	for i, v := range x {
		ang := 2 * math.Pi * float64(signalBin) * float64(i) / float64(len(x))
		re += v * math.Cos(ang)
		im += v * math.Sin(ang)
		total += v * v
	}
	sigPower := 2 * (re*re + im*im) / float64(len(x)*len(x)) * 2
	noise := total/float64(len(x)) - sigPower
	if noise <= 1e-12 {
		noise = 1e-12
	}
	return sigPower / noise
}

// rawLoss is the relative SNR degradation of configuration cfg on pulse p.
func (d *DSP) rawLoss(cfg, p int) float64 {
	got := snr(convolve(d.returns[p], d.filters[cfg]))
	ref := d.refSNR[p]
	if ref <= 0 {
		return 0
	}
	loss := (ref - got) / ref
	if loss < 0 {
		loss = 0 // a shorter filter can fluke a marginally better SNR
	}
	return loss
}

// Name implements the App interface.
func (d *DSP) Name() string { return name }

// Metric implements the App interface.
func (d *DSP) Metric() string { return "signal to noise ratio" }

// NumConfigs implements the App interface.
func (d *DSP) NumConfigs() int { return numConfigs }

// DefaultConfig implements the App interface.
func (d *DSP) DefaultConfig() int { return 0 }

// Taps exposes the knob ladder.
func (d *DSP) Taps() []int { return append([]int(nil), d.taps...) }

// Step implements the App interface: filter one pulse return and measure
// the detection SNR against the default filter's output.
func (d *DSP) Step(cfg, iter int) (work, accuracy float64) {
	if cfg < 0 || cfg >= numConfigs {
		cfg = 0
	}
	p := iter % pulses
	if p < 0 {
		p += pulses
	}
	raw := float64(d.taps[cfg] * samples)
	return d.work.Work(raw), d.acc.Accuracy(d.rawLoss(cfg, p))
}
