package radar

import (
	"math"
	"testing"
)

func TestTapsLadder(t *testing.T) {
	d := New()
	taps := d.Taps()
	if len(taps) != numConfigs {
		t.Fatalf("ladder size: %d", len(taps))
	}
	if taps[0] != fullTaps || taps[numConfigs-1] != minTaps {
		t.Fatalf("ladder endpoints: %d .. %d", taps[0], taps[numConfigs-1])
	}
}

func TestFilterDCGainUnity(t *testing.T) {
	for _, taps := range []int{7, 33, 136} {
		h := design(taps)
		var sum float64
		for _, c := range h {
			sum += c
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("taps=%d: DC gain %v", taps, sum)
		}
	}
}

func TestLongerFilterRejectsMoreNoise(t *testing.T) {
	d := New()
	// SNR must be (weakly) better with the full filter than the shortest
	// on every pulse.
	for p := 0; p < pulses; p++ {
		full := snr(convolve(d.returns[p], d.filters[0]))
		short := snr(convolve(d.returns[p], d.filters[numConfigs-1]))
		if short > full {
			t.Errorf("pulse %d: short filter beats full (%v > %v)", p, short, full)
		}
	}
}

func TestSNRDetectsTone(t *testing.T) {
	// A clean tone at the signal bin must yield a huge SNR; white noise a
	// small one.
	n := samples
	tone := make([]float64, n)
	for i := range tone {
		tone[i] = math.Sin(2 * math.Pi * float64(signalBin) * float64(i) / float64(n))
	}
	if got := snr(tone); got < 100 {
		t.Fatalf("clean tone SNR: %v", got)
	}
	flat := make([]float64, n)
	for i := range flat {
		flat[i] = math.Sin(2 * math.Pi * 3 * float64(i) / float64(n)) // wrong bin
	}
	if got := snr(flat); got > 0.5 {
		t.Fatalf("off-bin tone SNR should be tiny: %v", got)
	}
}

func TestWorkProportionalToTaps(t *testing.T) {
	d := New()
	w0, _ := d.Step(0, 0)
	w25, _ := d.Step(25, 0)
	rawRatio := float64(d.taps[0]) / float64(d.taps[25])
	gotRatio := (w0 - d.work.Base) / (w25 - d.work.Base)
	if math.Abs(gotRatio-rawRatio) > 1e-9 {
		t.Fatalf("raw work ratio %v, want %v", gotRatio, rawRatio)
	}
}

func TestAccuracyMonotoneOnAverage(t *testing.T) {
	d := New()
	mean := func(cfg int) float64 {
		var s float64
		for p := 0; p < pulses; p++ {
			_, a := d.Step(cfg, p)
			s += a
		}
		return s / pulses
	}
	full, mid, short := mean(0), mean(12), mean(25)
	if !(full >= mid && mid >= short) {
		t.Fatalf("accuracy not monotone: %v, %v, %v", full, mid, short)
	}
	if full != 1 {
		t.Fatalf("default accuracy: %v", full)
	}
}
