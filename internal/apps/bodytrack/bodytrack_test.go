package bodytrack

import (
	"testing"

	"jouleguard/internal/apps/kernel"
)

func TestConfigSpaceShape(t *testing.T) {
	tr := New()
	if tr.NumConfigs() != 200 {
		t.Fatalf("configs: %d", tr.NumConfigs())
	}
	n, l := tr.settings(tr.DefaultConfig())
	if n != maxParticles || l != numLayers {
		t.Fatalf("default settings: %d particles, %d layers", n, l)
	}
}

func TestSegmentDeterministic(t *testing.T) {
	a := makeSegment(7)
	b := makeSegment(7)
	if a != b {
		t.Fatal("segment generation not deterministic")
	}
	c := makeSegment(8)
	if a == c {
		t.Fatal("different iterations produced identical segments")
	}
}

func TestDetectionsIncludeTruthAndClutter(t *testing.T) {
	s := makeSegment(0)
	for i := 0; i < segSteps; i++ {
		dx := s.dets[i][0][0] - s.truth[i][0]
		dy := s.dets[i][0][1] - s.truth[i][1]
		if dx*dx+dy*dy > (5*obsNoise)*(5*obsNoise) {
			t.Fatalf("step %d: true detection too far from truth", i)
		}
		for c := 1; c <= clutter; c++ {
			cx := s.dets[i][c][0] - s.truth[i][0]
			cy := s.dets[i][c][1] - s.truth[i][1]
			if cx*cx+cy*cy < 1 {
				t.Fatalf("step %d: clutter %d sits on the truth", i, c)
			}
		}
	}
}

func TestMoreParticlesTrackBetterOnAverage(t *testing.T) {
	// Averaged over segments with common random numbers, the full filter
	// must out-track the minimal one.
	var full, minimal float64
	iters := 20
	for it := 0; it < iters; it++ {
		seg := makeSegment(it)
		full += run(seg, maxParticles, numLayers, kernel.RNG("bodytrack-pf", it))
		minimal += run(seg, minParticles, 1, kernel.RNG("bodytrack-pf", it))
	}
	if minimal <= full {
		t.Fatalf("minimal config error %v not above full config %v", minimal/float64(iters), full/float64(iters))
	}
}

func TestTrackErrorReasonable(t *testing.T) {
	seg := makeSegment(3)
	err := run(seg, maxParticles, numLayers, kernel.RNG("bodytrack-pf", 3))
	if err < 0 || err > 30 {
		t.Fatalf("full-config tracking error %v implausible", err)
	}
}

func TestWorkFormula(t *testing.T) {
	tr := New()
	wDef, _ := tr.Step(tr.DefaultConfig(), 0)
	rawDef := float64(maxParticles * numLayers * segSteps)
	if wDef != tr.work.Work(rawDef) {
		t.Fatalf("default work %v, want %v", wDef, tr.work.Work(rawDef))
	}
}

func TestDefaultErrorCached(t *testing.T) {
	tr := New()
	e1 := tr.defaultError(4)
	e2 := tr.defaultError(4)
	if e1 != e2 {
		t.Fatal("default error not cached/stable")
	}
}

func TestLayersSpeedTradeoff(t *testing.T) {
	tr := New()
	// Config with fewer layers at same particles must report less work.
	c4, err := tr.space.Index([]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	c1, err := tr.space.Index([]int{0, numLayers - 1})
	if err != nil {
		t.Fatal(err)
	}
	w4, _ := tr.Step(c4, 0)
	w1, _ := tr.Step(c1, 0)
	if w1 >= w4 {
		t.Fatalf("1-layer work %v not below 4-layer %v", w1, w4)
	}
}
