// Package bodytrack is the image-analysis tracking benchmark (paper Table
// 2: 200 configurations, max speedup 7.38, max accuracy loss 14.4%, metric
// "track quality"). The real PARSEC bodytrack follows a person through a
// scene with an annealed particle filter; PowerDial exposes the particle
// count and the number of annealing layers as knobs. This kernel is a
// faithful miniature: an annealed particle filter tracks a smooth 2D
// trajectory through noisy observations, and track quality is the inverse
// tracking error against ground truth.
package bodytrack

import (
	"math"
	"math/rand"
	"sync"

	"jouleguard/internal/apps/kernel"
	"jouleguard/internal/knob"
)

const (
	name                = "bodytrack"
	numLayers           = 4
	numParticleSettings = 50
	maxParticles        = 400
	minParticles        = 217 // maxParticles*numLayers/minParticles = Table 2 speedup
	segSteps            = 6   // tracked frames per Step
	obsNoise            = 2.0
	procNoise           = 1.0
	targetSpeed         = 7.38
	targetLoss          = 0.144
	calibIters          = 16
)

// Tracker implements the App interface. The error cache is guarded so Step
// is safe for concurrent use by parallel experiment sweeps.
type Tracker struct {
	space     *knob.Space
	particles []int
	defCfg    int
	mu        sync.RWMutex
	defErr    map[int]float64  // cached default-config tracking error per iter
	segs      map[int]*segment // cached ground-truth segments per iter
	work      kernel.WorkScale
	acc       kernel.AccuracyScale
}

// New constructs and calibrates the tracker.
func New() *Tracker {
	particles := kernel.GeometricInts(maxParticles, minParticles, numParticleSettings)
	pv := make([]float64, len(particles))
	for i, p := range particles {
		pv[i] = float64(p)
	}
	space, err := knob.NewSpace(
		knob.Knob{Name: "particles", Values: pv},
		knob.Knob{Name: "layers", Values: []float64{4, 3, 2, 1}},
	)
	if err != nil {
		panic(err)
	}
	def, err := space.Index([]int{0, 0}) // 400 particles, 4 layers
	if err != nil {
		panic(err)
	}
	t := &Tracker{space: space, particles: particles, defCfg: def,
		defErr: make(map[int]float64), segs: make(map[int]*segment)}
	rawDef := float64(maxParticles * numLayers * segSteps)
	rawFast := float64(minParticles * 1 * segSteps)
	t.work = kernel.NewWorkScale(rawDef, rawFast, targetSpeed)
	fast, err := space.Index([]int{numParticleSettings - 1, numLayers - 1})
	if err != nil {
		panic(err)
	}
	losses := make([]float64, calibIters)
	for it := 0; it < calibIters; it++ {
		losses[it] = t.rawLoss(fast, it)
	}
	t.acc = kernel.NewAccuracyScale(kernel.MeanAbs(losses), targetLoss)
	return t
}

// detections per tracked frame: the true body plus clutter (other people,
// shadows) the filter must not lock onto — the failure mode that makes
// particle count and annealing depth matter, exactly as in real bodytrack.
const clutter = 2

// segment holds one iteration's ground truth and detections.
type segment struct {
	truth [segSteps][2]float64
	dets  [segSteps][clutter + 1][2]float64
}

// makeSegment generates the trajectory segment for an iteration: a smooth
// arc with process noise, observed as a noisy detection plus clutter
// detections offset a body-width or two away.
func makeSegment(iter int) segment {
	rng := kernel.RNG(name+"-traj", iter)
	var s segment
	x := rng.Float64() * 40
	y := rng.Float64() * 40
	heading := rng.Float64() * 2 * math.Pi
	turn := (rng.Float64() - 0.5) * 0.4
	speed := 2 + rng.Float64()*2
	for i := 0; i < segSteps; i++ {
		heading += turn
		x += speed*math.Cos(heading) + procNoise*rng.NormFloat64()*0.3
		y += speed*math.Sin(heading) + procNoise*rng.NormFloat64()*0.3
		s.truth[i] = [2]float64{x, y}
		s.dets[i][0] = [2]float64{x + obsNoise*rng.NormFloat64(), y + obsNoise*rng.NormFloat64()}
		for c := 1; c <= clutter; c++ {
			ang := rng.Float64() * 2 * math.Pi
			r := 4 + 6*rng.Float64()
			s.dets[i][c] = [2]float64{
				x + r*math.Cos(ang) + obsNoise*rng.NormFloat64(),
				y + r*math.Sin(ang) + obsNoise*rng.NormFloat64(),
			}
		}
	}
	return s
}

// run executes the annealed particle filter and returns the mean tracking
// error against ground truth.
func run(seg segment, nParticles, layers int, rng *rand.Rand) float64 {
	px := make([]float64, nParticles)
	py := make([]float64, nParticles)
	wts := make([]float64, nParticles)
	// Scratch buffers for resampling, reused across layers to keep the
	// inner loop allocation-free.
	npx := make([]float64, nParticles)
	npy := make([]float64, nParticles)
	for i := range px {
		// Broad initialisation: the first frame's identity is ambiguous.
		d := seg.dets[0][i%(clutter+1)]
		px[i] = d[0] + 2*rng.NormFloat64()
		py[i] = d[1] + 2*rng.NormFloat64()
	}
	// The likelihood of a particle is the best match over all detections,
	// weighted by temporal consistency with the particle's previous
	// position — clutter is uncorrelated frame to frame, so particles that
	// follow the true body accumulate weight.
	var totalErr float64
	for t := 0; t < segSteps; t++ {
		// Annealing layers: successively sharper likelihoods with shrinking
		// diffusion, as in the real annealed particle filter.
		for l := 0; l < layers; l++ {
			beta := math.Pow(2, float64(l)) / math.Pow(2, float64(layers-1))
			diffuse := procNoise * (2.5 - 2.0*float64(l)/float64(layers))
			var sum float64
			dets := &seg.dets[t]
			for i := range px {
				prevX, prevY := px[i], py[i]
				px[i] += diffuse * rng.NormFloat64()
				py[i] += diffuse * rng.NormFloat64()
				// Best match over detections. Exp is monotone and beta and
				// the 2*sigma^2 divisor are exact powers of two, so taking
				// the largest exponent and exponentiating once gives the
				// same weight as exponentiating each candidate.
				bestArg := math.Inf(-1)
				for c := 0; c <= clutter; c++ {
					dx, dy := px[i]-dets[c][0], py[i]-dets[c][1]
					if a := -beta * (dx*dx + dy*dy) / (2 * obsNoise * obsNoise); a > bestArg {
						bestArg = a
					}
				}
				best := math.Exp(bestArg)
				// Motion-consistency prior: discourage jumps.
				jx, jy := px[i]-prevX, py[i]-prevY
				wts[i] = best * math.Exp(-(jx*jx+jy*jy)/(2*25))
				sum += wts[i]
			}
			if sum <= 0 {
				for i := range wts {
					wts[i] = 1
				}
				sum = float64(len(wts))
			}
			// Systematic resampling.
			step := sum / float64(nParticles)
			u := rng.Float64() * step
			var cum float64
			j := 0
			for i := 0; i < nParticles; i++ {
				target := u + float64(i)*step
				for cum+wts[j] < target && j < nParticles-1 {
					cum += wts[j]
					j++
				}
				npx[i], npy[i] = px[j], py[j]
			}
			px, npx = npx, px
			py, npy = npy, py
		}
		var ex, ey float64
		for i := range px {
			ex += px[i]
			ey += py[i]
		}
		ex /= float64(nParticles)
		ey /= float64(nParticles)
		dx, dy := ex-seg.truth[t][0], ey-seg.truth[t][1]
		totalErr += math.Sqrt(dx*dx + dy*dy)
	}
	return totalErr / segSteps
}

// settings decodes a configuration id.
func (t *Tracker) settings(cfgID int) (nParticles, layers int) {
	vals, err := t.space.Settings(cfgID)
	if err != nil {
		vals, _ = t.space.Settings(t.defCfg)
	}
	return int(vals[0]), int(vals[1])
}

// segmentAt returns (and caches) the ground-truth segment for an
// iteration. Segments are pure functions of the iteration index, so every
// configuration profiled against the same input can share one instance.
func (t *Tracker) segmentAt(iter int) *segment {
	t.mu.RLock()
	s, ok := t.segs[iter]
	t.mu.RUnlock()
	if ok {
		return s
	}
	seg := makeSegment(iter)
	t.mu.Lock()
	t.segs[iter] = &seg
	t.mu.Unlock()
	return &seg
}

// defaultError returns (and caches) the default configuration's tracking
// error for an iteration.
func (t *Tracker) defaultError(iter int) float64 {
	t.mu.RLock()
	e, ok := t.defErr[iter]
	t.mu.RUnlock()
	if ok {
		return e
	}
	e = run(*t.segmentAt(iter), maxParticles, numLayers, kernel.RNG(name+"-pf", iter))
	t.mu.Lock()
	t.defErr[iter] = e
	t.mu.Unlock()
	return e
}

// rawLoss is the relative tracking-error increase of cfg versus default.
func (t *Tracker) rawLoss(cfgID, iter int) float64 {
	// Common random numbers: every configuration consumes the same PF
	// stream, so differences in tracking error reflect the configuration,
	// not sampling luck.
	seg := *t.segmentAt(iter)
	n, l := t.settings(cfgID)
	err := run(seg, n, l, kernel.RNG(name+"-pf", iter))
	ref := t.defaultError(iter)
	if ref <= 0 {
		return 0
	}
	loss := err/ref - 1
	if loss < 0 {
		loss = 0
	}
	return loss
}

// Name implements the App interface.
func (t *Tracker) Name() string { return name }

// Metric implements the App interface.
func (t *Tracker) Metric() string { return "track quality" }

// NumConfigs implements the App interface.
func (t *Tracker) NumConfigs() int { return t.space.Size() }

// DefaultConfig implements the App interface.
func (t *Tracker) DefaultConfig() int { return t.defCfg }

// Space exposes the knob space.
func (t *Tracker) Space() *knob.Space { return t.space }

// Step implements the App interface: track one trajectory segment.
func (t *Tracker) Step(cfgID, iter int) (work, accuracy float64) {
	if cfgID < 0 || cfgID >= t.space.Size() {
		cfgID = t.defCfg
	}
	if iter < 0 {
		iter = -iter
	}
	n, l := t.settings(cfgID)
	raw := float64(n * l * segSteps)
	return t.work.Work(raw), t.acc.Accuracy(t.rawLoss(cfgID, iter))
}
