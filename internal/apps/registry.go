package apps

import (
	"fmt"
	"sync"

	"jouleguard/internal/apps/bodytrack"
	"jouleguard/internal/apps/canneal"
	"jouleguard/internal/apps/ferret"
	"jouleguard/internal/apps/radar"
	"jouleguard/internal/apps/search"
	"jouleguard/internal/apps/streamcluster"
	"jouleguard/internal/apps/swaptions"
	"jouleguard/internal/apps/x264"
)

// Names lists the benchmarks in Table 2 order.
func Names() []string {
	out := make([]string, len(Table2))
	for i, s := range Table2 {
		out[i] = s.Name
	}
	return out
}

var (
	cacheMu sync.Mutex
	cache   = map[string]App{}
)

// maxStepMemo bounds each benchmark's Step memo. Full-size replicate runs
// visit well under 10^5 distinct (config, iteration) pairs per app; the
// cap only guards pathological sweeps from growing without bound (hits
// keep being served after the cap, new pairs just stop being stored).
const maxStepMemo = 1 << 21

// stepVal is one memoised Step result.
type stepVal struct{ work, acc float64 }

// stepMemo caches an application's Step results. The kernels' Step
// methods are deterministic pure functions of (config, iteration), so
// storing and replaying the exact returned float64s is observably
// identical to recomputing them — experiments repeatedly traverse the
// same pairs (every baseline walks the default configuration, trials and
// ablations revisit converged configurations), and the kernels are the
// dominant cost of a run. None of the registry benchmarks implement
// sim.PowerScaler, so the wrapper hiding extra methods loses nothing.
type stepMemo struct {
	App
	mu sync.RWMutex
	m  map[uint64]stepVal
}

func memoizeSteps(a App) App {
	return &stepMemo{App: a, m: make(map[uint64]stepVal)}
}

func (s *stepMemo) Step(cfg, iter int) (work, accuracy float64) {
	key := uint64(uint32(cfg))<<32 | uint64(uint32(iter))
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		return v.work, v.acc
	}
	work, accuracy = s.App.Step(cfg, iter)
	s.mu.Lock()
	if len(s.m) < maxStepMemo {
		s.m[key] = stepVal{work, accuracy}
	}
	s.mu.Unlock()
	return work, accuracy
}

// New constructs a benchmark by name. Construction includes synthetic input
// generation and two-point Table 2 calibration, so instances are cached and
// shared: the kernels' Step methods are deterministic pure functions of
// (config, iteration) and safe to share across sequential experiments.
func New(name string) (App, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if a, ok := cache[name]; ok {
		return a, nil
	}
	var (
		a   App
		err error
	)
	switch name {
	case "x264":
		a = x264.New(nil)
	case "swaptions":
		a = swaptions.New()
	case "bodytrack":
		a = bodytrack.New()
	case "swish++":
		a, err = search.New()
	case "radar":
		a = radar.New()
	case "canneal":
		a = canneal.New()
	case "ferret":
		a = ferret.New()
	case "streamcluster":
		a = streamcluster.New()
	default:
		return nil, fmt.Errorf("apps: unknown benchmark %q (known: %v)", name, Names())
	}
	if err != nil {
		return nil, err
	}
	a = memoizeSteps(a)
	cache[name] = a
	return a, nil
}

// NewX264WithPhases constructs a fresh x264 encoder whose scene difficulty
// follows the given function (Fig. 8's three-phase input). Not cached
// across calls, but its own Step results are memoised like the registry's.
func NewX264WithPhases(difficulty func(iter int) float64) App {
	return memoizeSteps(x264.New(difficulty))
}

// All constructs every benchmark.
func All() ([]App, error) {
	out := make([]App, 0, len(Table2))
	for _, s := range Table2 {
		a, err := New(s.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
