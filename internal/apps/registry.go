package apps

import (
	"fmt"
	"sync"

	"jouleguard/internal/apps/bodytrack"
	"jouleguard/internal/apps/canneal"
	"jouleguard/internal/apps/ferret"
	"jouleguard/internal/apps/radar"
	"jouleguard/internal/apps/search"
	"jouleguard/internal/apps/streamcluster"
	"jouleguard/internal/apps/swaptions"
	"jouleguard/internal/apps/x264"
)

// Names lists the benchmarks in Table 2 order.
func Names() []string {
	out := make([]string, len(Table2))
	for i, s := range Table2 {
		out[i] = s.Name
	}
	return out
}

var (
	cacheMu sync.Mutex
	cache   = map[string]App{}
)

// New constructs a benchmark by name. Construction includes synthetic input
// generation and two-point Table 2 calibration, so instances are cached and
// shared: the kernels' Step methods are deterministic pure functions of
// (config, iteration) and safe to share across sequential experiments.
func New(name string) (App, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if a, ok := cache[name]; ok {
		return a, nil
	}
	var (
		a   App
		err error
	)
	switch name {
	case "x264":
		a = x264.New(nil)
	case "swaptions":
		a = swaptions.New()
	case "bodytrack":
		a = bodytrack.New()
	case "swish++":
		a, err = search.New()
	case "radar":
		a = radar.New()
	case "canneal":
		a = canneal.New()
	case "ferret":
		a = ferret.New()
	case "streamcluster":
		a = streamcluster.New()
	default:
		return nil, fmt.Errorf("apps: unknown benchmark %q (known: %v)", name, Names())
	}
	if err != nil {
		return nil, err
	}
	cache[name] = a
	return a, nil
}

// NewX264WithPhases constructs a fresh x264 encoder whose scene difficulty
// follows the given function (Fig. 8's three-phase input). Not cached.
func NewX264WithPhases(difficulty func(iter int) float64) App {
	return x264.New(difficulty)
}

// All constructs every benchmark.
func All() ([]App, error) {
	out := make([]App, 0, len(Table2))
	for _, s := range Table2 {
		a, err := New(s.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
