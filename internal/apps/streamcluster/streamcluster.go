// Package streamcluster is the online-clustering benchmark built with Loop
// Perforation (paper Table 2: 7 configurations, max speedup 5.52, max
// accuracy loss 0.55%, metric "quality of clustering"). Each iteration
// clusters a fresh batch of points drawn from a Gaussian mixture with a
// k-median-style iterative refinement; perforation subsamples the points
// used to update the centers. Clustering cost (sum of distances to the
// nearest center, evaluated over all points) measures quality — robust to
// subsampling, which is why this benchmark shows the paper's smallest
// accuracy loss at a large speedup.
package streamcluster

import (
	"math"

	"jouleguard/internal/apps/kernel"
	"jouleguard/internal/perforation"
)

const (
	name        = "streamcluster"
	points      = 256
	dim         = 8
	k           = 8
	refineIters = 3
	numConfigs  = 7
	targetSpeed = 5.52
	targetLoss  = 0.0055
	instances   = 16
	calibIters  = 8
)

// Clusterer implements the App interface.
type Clusterer struct {
	rates   []float64
	refCost []float64 // default-config clustering cost per instance
	work    kernel.WorkScale
	acc     kernel.AccuracyScale
}

// New constructs and calibrates the clusterer.
func New() *Clusterer {
	maxRate := 1 - 1/targetSpeed
	rates, err := perforation.RateLadder(numConfigs, maxRate)
	if err != nil {
		panic(err)
	}
	c := &Clusterer{rates: rates, refCost: make([]float64, instances)}
	for inst := 0; inst < instances; inst++ {
		cost, _ := c.cluster(inst, 0)
		c.refCost[inst] = cost
	}
	var rawDef, rawFast, lossFast float64
	for it := 0; it < calibIters; it++ {
		inst := it % instances
		_, wd := c.cluster(inst, 0)
		costF, wf := c.cluster(inst, numConfigs-1)
		rawDef += wd
		rawFast += wf
		if ref := c.refCost[inst]; ref > 0 {
			l := costF/ref - 1
			if l < 0 {
				l = 0
			}
			lossFast += l
		}
	}
	c.work = kernel.NewWorkScale(rawDef/calibIters, rawFast/calibIters, targetSpeed)
	c.acc = kernel.NewAccuracyScale(lossFast/calibIters, targetLoss)
	return c
}

// makePoints generates the point batch for an instance: a mixture of k
// Gaussians with uneven weights.
func makePoints(inst int) [][dim]float64 {
	rng := kernel.RNG(name+"-points", inst)
	var centers [k][dim]float64
	for c := range centers {
		for d := 0; d < dim; d++ {
			centers[c][d] = rng.NormFloat64() * 6
		}
	}
	pts := make([][dim]float64, points)
	for i := range pts {
		c := rng.Intn(k)
		for d := 0; d < dim; d++ {
			pts[i][d] = centers[c][d] + rng.NormFloat64()
		}
	}
	return pts
}

func dist2(a, b [dim]float64) float64 {
	var s float64
	for d := 0; d < dim; d++ {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return s
}

// cluster runs the k-median refinement on instance inst with the given
// perforation config and returns the final clustering cost (over all
// points, not counted as work) and the raw work (distance evaluations in
// the refinement itself).
func (c *Clusterer) cluster(inst, cfg int) (cost, rawWork float64) {
	pts := makePoints(inst)
	loop, err := perforation.NewLoop(c.rates[cfg], perforation.Interleave)
	if err != nil {
		loop, _ = perforation.NewLoop(0, perforation.Interleave)
	}
	var centers [k][dim]float64
	for i := 0; i < k; i++ {
		centers[i] = pts[i*(points/k)] // deterministic spread seeding
	}
	for it := 0; it < refineIters; it++ {
		var sums [k][dim]float64
		var counts [k]int
		loop.Range(points, func(i int) {
			best, bestD := 0, math.Inf(1)
			for ci := 0; ci < k; ci++ {
				if d := dist2(pts[i], centers[ci]); d < bestD {
					best, bestD = ci, d
				}
				rawWork += dim
			}
			for d := 0; d < dim; d++ {
				sums[best][d] += pts[i][d]
			}
			counts[best]++
		})
		for ci := 0; ci < k; ci++ {
			if counts[ci] == 0 {
				continue // keep the old center for an empty cluster
			}
			for d := 0; d < dim; d++ {
				centers[ci][d] = sums[ci][d] / float64(counts[ci])
			}
		}
	}
	// Quality: cost over every point (metric evaluation, not app work).
	for i := range pts {
		bestD := math.Inf(1)
		for ci := 0; ci < k; ci++ {
			if d := dist2(pts[i], centers[ci]); d < bestD {
				bestD = d
			}
		}
		cost += math.Sqrt(bestD)
	}
	return cost, rawWork
}

// Name implements the App interface.
func (c *Clusterer) Name() string { return name }

// Metric implements the App interface.
func (c *Clusterer) Metric() string { return "quality of clustering" }

// NumConfigs implements the App interface.
func (c *Clusterer) NumConfigs() int { return numConfigs }

// DefaultConfig implements the App interface.
func (c *Clusterer) DefaultConfig() int { return 0 }

// Rates exposes the perforation ladder.
func (c *Clusterer) Rates() []float64 { return append([]float64(nil), c.rates...) }

// Step implements the App interface: cluster one point batch.
func (c *Clusterer) Step(cfg, iter int) (work, accuracy float64) {
	if cfg < 0 || cfg >= numConfigs {
		cfg = 0
	}
	if iter < 0 {
		iter = -iter
	}
	inst := iter % instances
	cost, raw := c.cluster(inst, cfg)
	ref := c.refCost[inst]
	var loss float64
	if ref > 0 {
		loss = cost/ref - 1
		if loss < 0 {
			loss = 0
		}
	}
	return c.work.Work(raw), c.acc.Accuracy(loss)
}
