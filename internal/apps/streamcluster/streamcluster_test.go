package streamcluster

import (
	"math"
	"testing"
)

func TestRatesLadder(t *testing.T) {
	c := New()
	r := c.Rates()
	if len(r) != numConfigs || r[0] != 0 {
		t.Fatalf("rates: %v", r)
	}
	if math.Abs(1/(1-r[numConfigs-1])-targetSpeed) > 1e-9 {
		t.Fatalf("max rate %v does not match target speedup %v", r[numConfigs-1], targetSpeed)
	}
}

func TestPointsDeterministic(t *testing.T) {
	a := makePoints(3)
	b := makePoints(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("point generation not deterministic")
		}
	}
}

func TestClusteringFindsStructure(t *testing.T) {
	c := New()
	// The refined cost must be far below the cost of a single-center
	// degenerate clustering (the grand mean).
	for inst := 0; inst < 4; inst++ {
		pts := makePoints(inst)
		var mean [dim]float64
		for _, p := range pts {
			for d := 0; d < dim; d++ {
				mean[d] += p[d]
			}
		}
		for d := 0; d < dim; d++ {
			mean[d] /= points
		}
		var degenerate float64
		for _, p := range pts {
			degenerate += math.Sqrt(dist2(p, mean))
		}
		cost, _ := c.cluster(inst, 0)
		if cost > degenerate/2 {
			t.Fatalf("inst %d: refined cost %v vs degenerate %v — no structure found", inst, cost, degenerate)
		}
	}
}

func TestPerforationWorkRatioExact(t *testing.T) {
	c := New()
	_, wFull := c.cluster(0, 0)
	_, wPerf := c.cluster(0, numConfigs-1)
	// Work is pure distance evaluations in the refinement; the ratio must
	// match the perforation speedup closely (ceil rounding aside).
	ratio := wFull / wPerf
	if math.Abs(ratio-targetSpeed) > 0.15 {
		t.Fatalf("work ratio %v, want ~%v", ratio, targetSpeed)
	}
}

func TestSubsamplingBarelyHurtsQuality(t *testing.T) {
	c := New()
	var lossSum float64
	for inst := 0; inst < instances; inst++ {
		cost, _ := c.cluster(inst, numConfigs-1)
		ref := c.refCost[inst]
		loss := cost/ref - 1
		if loss < 0 {
			loss = 0
		}
		lossSum += loss
	}
	meanLoss := lossSum / instances
	// The raw (pre-calibration) loss must be small — that is the whole
	// point of this benchmark in the paper (0.55% loss at 5.52x).
	if meanLoss > 0.2 {
		t.Fatalf("raw subsampling loss %v too large", meanLoss)
	}
}

func TestStepCyclesInstances(t *testing.T) {
	c := New()
	w1, a1 := c.Step(3, 1)
	w2, a2 := c.Step(3, 1+instances)
	if w1 != w2 || a1 != a2 {
		t.Fatal("iterations should cycle over instances")
	}
}

func TestEmptyClusterKeepsCenter(t *testing.T) {
	// Clustering must not produce NaNs even at extreme perforation where
	// some centers receive no points.
	c := New()
	for inst := 0; inst < instances; inst++ {
		cost, _ := c.cluster(inst, numConfigs-1)
		if math.IsNaN(cost) || math.IsInf(cost, 0) {
			t.Fatalf("inst %d: degenerate cost %v", inst, cost)
		}
	}
}
