// Package kernel holds helpers shared by the eight benchmark kernels:
// deterministic per-iteration seeding, geometric knob ladders, and the
// two-point calibration that anchors each kernel's measured speedup and
// accuracy-loss range to the paper's Table 2.
//
// Calibration rationale: the paper's speedup and loss numbers were measured
// on the authors' inputs (full PARSEC inputs, Gutenberg corpora, real
// video). Our miniature kernels compute real outputs but on smaller inputs,
// so the raw dynamic ranges differ. WorkScale adds a constant per-iteration
// base cost (standing in for the non-approximable stages of the real
// applications: entropy coding, I/O, parsing) chosen so the max speedup
// matches Table 2; AccuracyScale linearly rescales the measured raw loss so
// the loss at the fastest configuration matches Table 2. Both preserve the
// kernels' genuine monotone degradation shape and per-input noise — only
// the endpoints are pinned.
package kernel

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Seed derives a deterministic RNG seed from a kernel name and iteration
// index, so every Step is reproducible and distinct.
func Seed(name string, iter int) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	var buf [8]byte
	v := uint64(iter)
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
	return int64(h.Sum64() & math.MaxInt64)
}

// RNG returns a deterministic RNG for (name, iter).
func RNG(name string, iter int) *rand.Rand {
	return rand.New(rand.NewSource(Seed(name, iter)))
}

// GeometricInts returns n values spanning [lo, hi] in geometric progression
// from hi down to lo (both > 0), rounded to integers, first = hi, last = lo.
func GeometricInts(hi, lo, n int) []int {
	if n <= 1 {
		return []int{hi}
	}
	out := make([]int, n)
	ratio := float64(lo) / float64(hi)
	for i := 0; i < n; i++ {
		v := float64(hi) * math.Pow(ratio, float64(i)/float64(n-1))
		out[i] = int(math.Round(v))
		if out[i] < 1 {
			out[i] = 1
		}
	}
	out[0], out[n-1] = hi, lo
	return out
}

// WorkScale adds a constant base cost to a kernel's raw per-iteration work
// so that the ratio (base+rawDefault)/(base+rawFastest) equals the target
// maximum speedup. If the raw ratio is already below the target the base is
// zero (the kernel's knobs simply cannot reach the paper's speedup and the
// calibration tests allow that slack).
type WorkScale struct {
	Base float64
}

// NewWorkScale solves for the base: target = (b+rawDef)/(b+rawFast)
// => b = (rawDef - target*rawFast) / (target - 1).
func NewWorkScale(rawDefault, rawFastest, targetSpeedup float64) WorkScale {
	if targetSpeedup <= 1 || rawFastest <= 0 || rawDefault <= rawFastest {
		return WorkScale{}
	}
	b := (rawDefault - targetSpeedup*rawFastest) / (targetSpeedup - 1)
	if b < 0 {
		b = 0
	}
	return WorkScale{Base: b}
}

// Work converts raw work to calibrated work.
func (w WorkScale) Work(raw float64) float64 { return w.Base + raw }

// AccuracyScale maps a kernel's raw loss measurement (0 = identical to the
// default configuration) to a reported accuracy, scaled so the average raw
// loss at the fastest configuration reports the Table 2 maximum loss.
type AccuracyScale struct {
	Scale float64
}

// NewAccuracyScale builds the mapping from the raw loss measured at the
// fastest configuration (averaged over calibration inputs) and the target
// maximum loss. A degenerate raw loss yields an identity-ish scale of 0
// (all configurations report full accuracy).
func NewAccuracyScale(rawLossAtFastest, targetMaxLoss float64) AccuracyScale {
	if rawLossAtFastest <= 0 || targetMaxLoss <= 0 {
		return AccuracyScale{}
	}
	return AccuracyScale{Scale: targetMaxLoss / rawLossAtFastest}
}

// Accuracy converts a raw loss into reported accuracy in [0, 1].
func (a AccuracyScale) Accuracy(rawLoss float64) float64 {
	if rawLoss < 0 || math.IsNaN(rawLoss) {
		rawLoss = 0
	}
	acc := 1 - rawLoss*a.Scale
	if acc < 0 {
		return 0
	}
	if acc > 1 {
		return 1
	}
	return acc
}

// MeanAbs returns the mean absolute value of a slice (0 for empty).
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Abs(x)
	}
	return s / float64(len(xs))
}
