package kernel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSeedDeterministicAndDistinct(t *testing.T) {
	if Seed("a", 1) != Seed("a", 1) {
		t.Fatal("seed not deterministic")
	}
	if Seed("a", 1) == Seed("a", 2) || Seed("a", 1) == Seed("b", 1) {
		t.Fatal("seeds collide on trivial inputs")
	}
	if Seed("x", -3) < 0 {
		t.Fatal("seed must be non-negative")
	}
}

func TestRNGReproducible(t *testing.T) {
	r1 := RNG("k", 5)
	r2 := RNG("k", 5)
	for i := 0; i < 10; i++ {
		if r1.Float64() != r2.Float64() {
			t.Fatal("RNG streams diverge")
		}
	}
}

func TestGeometricInts(t *testing.T) {
	v := GeometricInts(1000, 10, 5)
	if len(v) != 5 || v[0] != 1000 || v[4] != 10 {
		t.Fatalf("ladder: %v", v)
	}
	for i := 1; i < len(v); i++ {
		if v[i] > v[i-1] {
			t.Fatalf("ladder not non-increasing: %v", v)
		}
	}
	if got := GeometricInts(7, 3, 1); len(got) != 1 || got[0] != 7 {
		t.Fatalf("single-rung ladder: %v", got)
	}
}

// Property: geometric ladders are always within [min(1,lo), hi] and hit
// both endpoints.
func TestGeometricIntsProperty(t *testing.T) {
	f := func(hiRaw, loRaw uint16, nRaw uint8) bool {
		hi := int(hiRaw%5000) + 2
		lo := int(loRaw)%hi + 1
		n := int(nRaw%50) + 2
		v := GeometricInts(hi, lo, n)
		if len(v) != n || v[0] != hi || v[n-1] != lo {
			return false
		}
		for _, x := range v {
			if x < 1 || x > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorkScaleHitsTarget(t *testing.T) {
	ws := NewWorkScale(1000, 10, 4.26)
	got := ws.Work(1000) / ws.Work(10)
	if math.Abs(got-4.26) > 1e-9 {
		t.Fatalf("calibrated speedup %v, want 4.26", got)
	}
}

func TestWorkScaleDegenerate(t *testing.T) {
	// Raw ratio below target: base clamps to 0 and the raw ratio stands.
	ws := NewWorkScale(100, 90, 5)
	if ws.Base != 0 {
		t.Fatalf("base should clamp to 0, got %v", ws.Base)
	}
	if NewWorkScale(100, 10, 1).Base != 0 {
		t.Fatal("target <= 1 must yield zero base")
	}
	if NewWorkScale(10, 100, 2).Base != 0 {
		t.Fatal("inverted raw ratio must yield zero base")
	}
	if NewWorkScale(10, 0, 2).Base != 0 {
		t.Fatal("zero fast work must yield zero base")
	}
}

// Property: whenever the raw ratio exceeds the target, the calibrated ratio
// hits the target exactly.
func TestWorkScaleProperty(t *testing.T) {
	f := func(defRaw, fastRaw, targetRaw float64) bool {
		def := 1 + math.Abs(math.Mod(defRaw, 1e6))
		fast := 1 + math.Abs(math.Mod(fastRaw, 1e3))
		target := 1.01 + math.Abs(math.Mod(targetRaw, 50))
		if math.IsNaN(def) || math.IsNaN(fast) || math.IsNaN(target) {
			return true
		}
		if def/fast <= target {
			return NewWorkScale(def, fast, target).Base == 0
		}
		ws := NewWorkScale(def, fast, target)
		got := ws.Work(def) / ws.Work(fast)
		return math.Abs(got-target) < 1e-6*target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracyScale(t *testing.T) {
	as := NewAccuracyScale(0.5, 0.1) // raw loss 0.5 should report loss 0.1
	if got := as.Accuracy(0.5); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("Accuracy(0.5) = %v, want 0.9", got)
	}
	if got := as.Accuracy(0.25); math.Abs(got-0.95) > 1e-12 {
		t.Fatalf("Accuracy(0.25) = %v, want 0.95", got)
	}
	if as.Accuracy(0) != 1 {
		t.Fatal("zero raw loss must report full accuracy")
	}
	if as.Accuracy(-1) != 1 || as.Accuracy(math.NaN()) != 1 {
		t.Fatal("invalid raw loss must clamp to full accuracy")
	}
	if as.Accuracy(1e9) != 0 {
		t.Fatal("huge raw loss must clamp to zero accuracy")
	}
}

func TestAccuracyScaleDegenerate(t *testing.T) {
	as := NewAccuracyScale(0, 0.1)
	if as.Accuracy(0.7) != 1 {
		t.Fatal("degenerate scale should report full accuracy")
	}
}

func TestMeanAbs(t *testing.T) {
	if MeanAbs(nil) != 0 {
		t.Fatal("empty MeanAbs")
	}
	if got := MeanAbs([]float64{1, -3}); got != 2 {
		t.Fatalf("MeanAbs: %v", got)
	}
}
