// Package search is the swish++ document-search benchmark (paper Table 2: 6
// configurations, max speedup 1.52, max accuracy loss 83.4%, metric
// "precision and recall"). It is a real miniature search engine: an
// inverted index over a Zipf-distributed synthetic corpus (standing in for
// the paper's Project Gutenberg books), a power-law query stream built from
// the corpus dictionary exactly as the paper describes (Sec. 2 footnote 1),
// TF ranking, and per-result snippet generation. The PowerDial knob is the
// maximum number of results returned per query: fewer results cut the
// (expensive) snippet stage but directly reduce recall — which is why this
// application shows the paper's most dramatic accuracy cliff.
package search

import (
	"fmt"
	"sort"

	"jouleguard/internal/apps/kernel"
	"jouleguard/internal/workload"
)

const (
	name        = "swish++"
	numDocs     = 300
	wordsPerDoc = 150
	vocab       = 2000
	queryTerms  = 3
	queryPool   = 64 // distinct queries cycled through
	batchSize   = 8  // queries per Step (one heartbeat = one batch)
	targetSpeed = 1.52
	targetLoss  = 0.834
	snippetScan = 40 // words of the document scanned per returned result
)

// resultCaps is the knob ladder: maximum results per query; 0 means
// unlimited (the default, full-accuracy configuration). The spacing gives
// the engine a gentle first step (a mild cap that trades ~25% of results
// for ~1.1x speedup, the operating point JouleGuard lands on in the
// paper's Sec. 2 example) before the steep cliff at tiny caps.
var resultCaps = []int{0, 50, 20, 12, 8, 5}

// posting is one document entry in a term's posting list.
type posting struct {
	doc int
	tf  int
}

// rankedQuery is one query's precomputed ranking: the full ordered result
// list, the work the scoring and ranking stages cost, and the snippet work
// of each ranked result. Rankings depend only on the query (the cap knob
// merely truncates them), so the pool's 64 rankings are computed once and
// every configuration shares them; all work terms are integer-valued, so
// the replayed sums are exactly the figures direct evaluation produces.
type rankedQuery struct {
	docs     []int
	rankWork float64
	snipWork []float64
}

// Engine implements the App interface for document search.
type Engine struct {
	corpus  *workload.Corpus
	index   map[int][]posting
	queries [][]int
	ranked  []rankedQuery  // per query, precomputed in New (read-only after)
	refSets []map[int]bool // per query: result set of the default config
	refLens []int
	work    kernel.WorkScale
	acc     kernel.AccuracyScale
}

// New builds the corpus, index and query pool, and calibrates to Table 2.
func New() (*Engine, error) {
	rng := kernel.RNG(name+"-corpus", 0)
	corpus, err := workload.NewCorpus(rng, numDocs, wordsPerDoc, vocab, 1.1)
	if err != nil {
		return nil, fmt.Errorf("search: %w", err)
	}
	e := &Engine{corpus: corpus, index: make(map[int][]posting)}
	for d, doc := range corpus.Docs {
		tf := map[int]int{}
		for _, w := range doc {
			tf[w]++
		}
		for w, f := range tf {
			e.index[w] = append(e.index[w], posting{doc: d, tf: f})
		}
	}
	qs, err := workload.NewQueryStream(kernel.RNG(name+"-queries", 0), corpus, queryTerms, 1.05)
	if err != nil {
		return nil, fmt.Errorf("search: %w", err)
	}
	e.queries = make([][]int, queryPool)
	e.ranked = make([]rankedQuery, queryPool)
	e.refSets = make([]map[int]bool, queryPool)
	e.refLens = make([]int, queryPool)
	for q := range e.queries {
		e.queries[q] = qs.Next()
	}
	for q := range e.queries {
		e.ranked[q] = e.rank(e.queries[q])
		docs, _ := e.answer(q, 0)
		set := make(map[int]bool, len(docs))
		for _, d := range docs {
			set[d] = true
		}
		e.refSets[q] = set
		e.refLens[q] = len(docs)
	}
	// Calibrate work and accuracy at the two endpoint configurations. Work
	// is calibrated in Step units: one Step answers a whole batch, and the
	// base cost (query parsing, HTTP handling in the real swish++ server)
	// is per batch.
	rawDef, rawFast := 0.0, 0.0
	var lossFast float64
	for q := 0; q < queryPool; q++ {
		_, w := e.answer(q, 0)
		rawDef += w
		docs, w2 := e.answer(q, resultCaps[len(resultCaps)-1])
		rawFast += w2
		lossFast += e.lossVersusRef(q, docs)
	}
	perBatch := float64(batchSize) / float64(queryPool)
	e.work = kernel.NewWorkScale(rawDef*perBatch, rawFast*perBatch, targetSpeed)
	e.acc = kernel.NewAccuracyScale(lossFast/float64(queryPool), targetLoss)
	return e, nil
}

// rank executes one query's scoring, ranking and per-result snippet stages
// in full, recording the work of each stage so answer can replay any
// truncation of it exactly.
func (e *Engine) rank(terms []int) rankedQuery {
	var r rankedQuery
	scores := map[int]int{}
	for _, t := range terms {
		for _, p := range e.index[t] {
			scores[p.doc] += p.tf
			r.rankWork++
		}
	}
	type cand struct{ doc, score int }
	cands := make([]cand, 0, len(scores))
	for d, s := range scores {
		cands = append(cands, cand{d, s})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].doc < cands[j].doc
	})
	r.rankWork += float64(len(cands)) * 4 // ranking cost (comparison-ish)
	r.docs = make([]int, len(cands))
	r.snipWork = make([]float64, len(cands))
	for i, c := range cands {
		r.docs[i] = c.doc
		r.snipWork[i] = e.snippet(c.doc, terms)
	}
	return r
}

// answer executes query q with a result cap (0 = unlimited) and returns
// the ranked document ids plus the raw work performed: postings scanned,
// ranking comparisons, and snippet generation for every returned result.
// The ranking itself comes from the precomputed per-query cache; every
// work term is an integer-valued float64, so the replayed totals are
// identical to evaluating the stages directly.
func (e *Engine) answer(q, cap int) (docs []int, rawWork float64) {
	r := &e.ranked[q]
	rawWork = r.rankWork
	n := len(r.docs)
	if cap > 0 && cap < n {
		n = cap
	}
	for i := 0; i < n; i++ {
		rawWork += r.snipWork[i]
	}
	return r.docs[:n:n], rawWork
}

// snippet scans the whole document, highlighting every query-term
// occurrence — the per-result formatting stage a web search front-end
// performs — and returns the work it cost. This stage dominates per-result
// cost, which is what makes the result-cap knob worth 1.52x.
func (e *Engine) snippet(doc int, terms []int) float64 {
	words := e.corpus.Docs[doc]
	hits := 0
	for _, w := range words {
		for _, t := range terms {
			if w == t {
				hits++
			}
		}
	}
	return float64(len(words)*len(terms) + hits)
}

// lossVersusRef computes 1 - recall of the returned set against the default
// configuration's result set for query q (precision is always 1 because the
// cap only truncates the same ranking).
func (e *Engine) lossVersusRef(q int, docs []int) float64 {
	if e.refLens[q] == 0 {
		return 0
	}
	hits := 0
	for _, d := range docs {
		if e.refSets[q][d] {
			hits++
		}
	}
	return 1 - float64(hits)/float64(e.refLens[q])
}

// Name implements the App interface.
func (e *Engine) Name() string { return name }

// Metric implements the App interface.
func (e *Engine) Metric() string { return "precision and recall" }

// NumConfigs implements the App interface.
func (e *Engine) NumConfigs() int { return len(resultCaps) }

// DefaultConfig implements the App interface.
func (e *Engine) DefaultConfig() int { return 0 }

// ResultCaps exposes the knob ladder.
func (e *Engine) ResultCaps() []int { return append([]int(nil), resultCaps...) }

// Step implements the App interface: answer one batch of queries.
func (e *Engine) Step(cfg, iter int) (work, accuracy float64) {
	if cfg < 0 || cfg >= len(resultCaps) {
		cfg = 0
	}
	if iter < 0 {
		iter = -iter
	}
	var raw, loss float64
	for b := 0; b < batchSize; b++ {
		q := (iter*batchSize + b) % queryPool
		docs, w := e.answer(q, resultCaps[cfg])
		raw += w
		loss += e.lossVersusRef(q, docs)
	}
	return e.work.Work(raw), e.acc.Accuracy(loss / batchSize)
}
