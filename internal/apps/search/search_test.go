package search

import (
	"testing"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestResultCapsLadder(t *testing.T) {
	e := newEngine(t)
	caps := e.ResultCaps()
	if len(caps) != 6 || caps[0] != 0 || caps[5] != 5 {
		t.Fatalf("caps: %v", caps)
	}
}

func TestCapTruncatesRanking(t *testing.T) {
	e := newEngine(t)
	for q := 0; q < 10; q++ {
		all, _ := e.answer(q, 0)
		top5, _ := e.answer(q, 5)
		if len(top5) > 5 {
			t.Fatalf("query %d: cap violated, %d results", q, len(top5))
		}
		if len(all) >= 5 && len(top5) != 5 {
			t.Fatalf("query %d: expected exactly 5 of %d", q, len(all))
		}
		// The capped results must be a prefix of the full ranking.
		for i, d := range top5 {
			if all[i] != d {
				t.Fatalf("query %d: capped ranking diverges at %d", q, i)
			}
		}
	}
}

func TestRecallLossGrowsAsCapShrinks(t *testing.T) {
	e := newEngine(t)
	meanAcc := func(cfg int) float64 {
		var s float64
		n := 12
		for it := 0; it < n; it++ {
			_, a := e.Step(cfg, it)
			s += a
		}
		return s / float64(n)
	}
	prev := 1.1
	for cfg := 0; cfg < e.NumConfigs(); cfg++ {
		acc := meanAcc(cfg)
		if acc > prev+1e-9 {
			t.Fatalf("accuracy rose when cap shrank at config %d", cfg)
		}
		prev = acc
	}
}

func TestPrecisionAlwaysPerfect(t *testing.T) {
	// Every returned document must be in the default result set (the cap
	// only truncates the same ranking, so precision stays 1).
	e := newEngine(t)
	for q := 0; q < 20; q++ {
		docs, _ := e.answer(q, 5)
		for _, d := range docs {
			if !e.refSets[q][d] {
				t.Fatalf("query %d returned doc %d outside the reference set", q, d)
			}
		}
	}
}

func TestWorkDropsWithCap(t *testing.T) {
	e := newEngine(t)
	wAll, _ := e.Step(0, 0)
	wTop5, _ := e.Step(5, 0)
	if wTop5 >= wAll {
		t.Fatalf("capped work %v not below full work %v", wTop5, wAll)
	}
}

func TestQueriesHaveResults(t *testing.T) {
	e := newEngine(t)
	empty := 0
	for q := range e.queries {
		if e.refLens[q] == 0 {
			empty++
		}
	}
	if empty > queryPool/4 {
		t.Fatalf("%d/%d queries match nothing — corpus too sparse", empty, queryPool)
	}
}

func TestSnippetCountsWork(t *testing.T) {
	e := newEngine(t)
	w := e.snippet(0, []int{1, 2, 3})
	if w < float64(len(e.corpus.Docs[0])*3) {
		t.Fatalf("snippet work %v below full scan", w)
	}
}
