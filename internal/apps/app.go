// Package apps defines the approximate-application abstraction JouleGuard
// manages and the registry of the paper's eight benchmarks (Table 2). Each
// benchmark is a real miniature kernel — the accuracy numbers are measured
// from actual computations, not synthesised — built with one of the two
// approximation frameworks the paper uses: PowerDial dynamic knobs
// (internal/knob) or Loop Perforation (internal/perforation).
package apps

import (
	"fmt"
	"sync"

	"jouleguard/internal/knob"
)

// App is an approximate application. Configurations are dense ids in
// [0, NumConfigs()); DefaultConfig is the full-accuracy configuration the
// paper normalises against ("the default configuration ... without
// PowerDial or Loop Perforation", Sec. 4.1).
//
// Step executes one iteration (a frame, a query batch, a pricing task, ...)
// of input `iter` at configuration `cfg` and returns the abstract work
// units actually executed (the platform model converts work to time) and
// the measured accuracy of this iteration's output relative to the default
// configuration on the same input (1 = identical to default).
type App interface {
	Name() string
	NumConfigs() int
	DefaultConfig() int
	Metric() string // the accuracy metric of Table 2
	Step(cfg, iter int) (work, accuracy float64)
}

// Spec records the Table 2 expectations for one benchmark; calibration
// tests assert each kernel is faithful to them.
type Spec struct {
	Name       string
	Configs    int     // total available configurations
	MaxSpeedup float64 // fastest config vs default
	MaxLoss    float64 // max accuracy loss, fraction of default (e.g. 0.062)
	Metric     string
	Framework  string // "PowerDial" or "LoopPerforation"
}

// Table2 lists the paper's application characteristics verbatim.
var Table2 = []Spec{
	{Name: "x264", Configs: 560, MaxSpeedup: 4.26, MaxLoss: 0.062, Metric: "Peak Signal to Noise Ratio (PSNR)", Framework: "PowerDial"},
	{Name: "swaptions", Configs: 100, MaxSpeedup: 100.35, MaxLoss: 0.015, Metric: "swaption price", Framework: "PowerDial"},
	{Name: "bodytrack", Configs: 200, MaxSpeedup: 7.38, MaxLoss: 0.144, Metric: "track quality", Framework: "PowerDial"},
	{Name: "swish++", Configs: 6, MaxSpeedup: 1.52, MaxLoss: 0.834, Metric: "precision and recall", Framework: "PowerDial"},
	{Name: "radar", Configs: 26, MaxSpeedup: 19.39, MaxLoss: 0.053, Metric: "signal to noise ratio", Framework: "PowerDial"},
	{Name: "canneal", Configs: 3, MaxSpeedup: 1.93, MaxLoss: 0.071, Metric: "wire length", Framework: "LoopPerforation"},
	{Name: "ferret", Configs: 8, MaxSpeedup: 1.24, MaxLoss: 0.182, Metric: "similarity", Framework: "LoopPerforation"},
	{Name: "streamcluster", Configs: 7, MaxSpeedup: 5.52, MaxLoss: 0.0055, Metric: "quality of clustering", Framework: "LoopPerforation"},
}

// SpecFor returns the Table 2 row for a benchmark name.
func SpecFor(name string) (Spec, error) {
	for _, s := range Table2 {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("apps: unknown benchmark %q", name)
}

// ProfileApp measures every configuration of an application over calibIters
// calibration iterations and returns the resulting performance/accuracy
// profile, with speedups anchored at the default configuration. This is the
// PowerDial calibration step (and its Loop Perforation analogue) that
// JouleGuard's AAO consumes as a Pareto frontier.
func ProfileApp(a App, calibIters int) (*knob.Profile, error) {
	if calibIters <= 0 {
		calibIters = 1
	}
	n := a.NumConfigs()
	if n <= 0 {
		return nil, fmt.Errorf("apps: %s has no configurations", a.Name())
	}
	measure := func(cfg int) (work, acc float64) {
		for it := 0; it < calibIters; it++ {
			w, ac := a.Step(cfg, it)
			work += w
			acc += ac
		}
		return work, acc / float64(calibIters)
	}
	defCfg := a.DefaultConfig()
	defWork, defAcc := measure(defCfg)
	if defWork <= 0 {
		return nil, fmt.Errorf("apps: %s default config reported no work", a.Name())
	}
	prof := &knob.Profile{Points: make([]knob.Point, n)}
	for cfg := 0; cfg < n; cfg++ {
		w, acc := defWork, defAcc
		if cfg != defCfg {
			w, acc = measure(cfg)
		}
		if w <= 0 {
			return nil, fmt.Errorf("apps: %s config %d reported no work", a.Name(), cfg)
		}
		prof.Points[cfg] = knob.Point{Config: cfg, Speedup: defWork / w, Accuracy: acc}
	}
	return prof, nil
}

// Frontier profiles the application and extracts its Pareto frontier.
func Frontier(a App, calibIters int) (*knob.Frontier, error) {
	prof, err := ProfileApp(a, calibIters)
	if err != nil {
		return nil, err
	}
	return knob.NewFrontier(prof)
}

// CalibrationIters picks a profiling length for an application: enough
// iterations that per-input accuracy noise cannot promote a spurious
// high-speedup configuration onto the frontier, bounded so profiling huge
// spaces (x264's 560 configurations) stays affordable.
func CalibrationIters(a App) int {
	n := a.NumConfigs()
	switch {
	case n >= 400:
		return 4
	case n >= 100:
		return 10
	default:
		return 16
	}
}

var (
	frontierMu    sync.Mutex
	frontierCache = map[App]*knob.Frontier{}
)

// CalibratedFrontier returns the application's Pareto frontier profiled at
// the CalibrationIters length, memoised per App instance (profiles are
// deterministic, so sharing is safe across sequential experiments).
func CalibratedFrontier(a App) (*knob.Frontier, error) {
	frontierMu.Lock()
	defer frontierMu.Unlock()
	if f, ok := frontierCache[a]; ok {
		return f, nil
	}
	f, err := Frontier(a, CalibrationIters(a))
	if err != nil {
		return nil, err
	}
	frontierCache[a] = f
	return f, nil
}
