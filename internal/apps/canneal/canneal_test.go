package canneal

import (
	"math"
	"testing"
)

func TestConfigLadder(t *testing.T) {
	a := New()
	if a.NumConfigs() != 3 {
		t.Fatalf("configs: %d", a.NumConfigs())
	}
	r := a.Rates()
	if r[0] != 0 {
		t.Fatalf("default rate: %v", r[0])
	}
	if math.Abs(1/(1-r[2])-targetSpeed) > 1e-9 {
		t.Fatalf("max rate %v does not match target speedup", r[2])
	}
}

func TestAnnealImprovesPlacement(t *testing.T) {
	a := New()
	// Final wire length must beat the initial row-major placement.
	initial := func(inst int) float64 {
		pos := make([]int, cells)
		for c := range pos {
			pos[c] = c
		}
		var wl float64
		for _, m := range a.netlists[inst] {
			minX, minY := math.Inf(1), math.Inf(1)
			maxX, maxY := math.Inf(-1), math.Inf(-1)
			for _, c := range m {
				x, y := float64(pos[c]%gridW), float64(pos[c]/gridW)
				minX, maxX = math.Min(minX, x), math.Max(maxX, x)
				minY, maxY = math.Min(minY, y), math.Max(maxY, y)
			}
			wl += (maxX - minX) + (maxY - minY)
		}
		return wl
	}
	improved := 0
	for inst := 0; inst < instances; inst++ {
		wl, _ := a.anneal(inst, 0)
		if wl < initial(inst) {
			improved++
		}
	}
	if improved < instances*3/4 {
		t.Fatalf("annealing only improved %d/%d instances", improved, instances)
	}
}

func TestPerforationTradesWireLengthForWork(t *testing.T) {
	a := New()
	var wlFull, wlPerf, wFull, wPerf float64
	for inst := 0; inst < instances; inst++ {
		wl0, w0 := a.anneal(inst, 0)
		wl2, w2 := a.anneal(inst, a.Rates()[2])
		wlFull += wl0
		wlPerf += wl2
		wFull += w0
		wPerf += w2
	}
	if wPerf >= wFull {
		t.Fatalf("perforated work %v not below full %v", wPerf, wFull)
	}
	if wlPerf <= wlFull {
		t.Fatalf("perforated wire length %v not above full %v", wlPerf, wlFull)
	}
}

func TestAnnealDeterministic(t *testing.T) {
	a := New()
	wl1, w1 := a.anneal(2, 0.28)
	wl2, w2 := a.anneal(2, 0.28)
	if wl1 != wl2 || w1 != w2 {
		t.Fatal("anneal not deterministic")
	}
}

func TestSwapFixesPositions(t *testing.T) {
	slots := []int{0, 1, -1}
	pos := []int{0, 1}
	swap(slots, pos, 0, 2)
	if slots[0] != -1 || slots[2] != 0 || pos[0] != 2 {
		t.Fatalf("swap broken: slots=%v pos=%v", slots, pos)
	}
	swap(slots, pos, 1, 2)
	if slots[1] != 0 || slots[2] != 1 || pos[0] != 1 || pos[1] != 2 {
		t.Fatalf("second swap broken: slots=%v pos=%v", slots, pos)
	}
}

func TestStepUsesInstanceCycle(t *testing.T) {
	a := New()
	w1, a1 := a.Step(1, 2)
	w2, a2 := a.Step(1, 2+instances)
	if w1 != w2 || a1 != a2 {
		t.Fatal("iterations should cycle over netlist instances")
	}
}
