// Package canneal is the place-and-route benchmark built with Loop
// Perforation (paper Table 2: 3 configurations, max speedup 1.93, max
// accuracy loss 7.1%, metric "wire length"). Each iteration anneals a
// synthetic netlist onto a grid with simulated annealing; perforation
// skips a fraction of the annealing moves, finishing faster but settling
// on longer wires. The move-proposal stream is precomputed per iteration
// so a perforated run evaluates an exact subsequence of the default run's
// moves — the same semantics as perforating the canneal swap loop.
package canneal

import (
	"math"

	"jouleguard/internal/apps/kernel"
	"jouleguard/internal/perforation"
)

const (
	name        = "canneal"
	cells       = 48
	gridW       = 8
	gridH       = 8
	nets        = 64
	tempSteps   = 12
	movesPerT   = 100
	targetSpeed = 1.93
	targetLoss  = 0.071
	calibIters  = 6
	instances   = 16 // distinct netlists cycled by iteration
)

// perforation ladder: rate 0 (default), then geometric speedups to 1.93.
var rates = []float64{0, 0.28, 1 - 1/targetSpeed}

// net connects a set of cells; wire length is the half-perimeter of the
// bounding box of their placed locations.
type net []int

// proposal is one precomputed annealing move: swap the cells at two slots,
// with a uniform draw for the Metropolis acceptance test.
type proposal struct {
	a, b   int
	accept float64
}

// Annealer implements the App interface.
type Annealer struct {
	netlists  [][]net
	cellNets  [][][]int // instance -> cell -> indices of nets touching it
	proposals [][]proposal
	refWL     []float64 // default-config final wire length per instance
	work      kernel.WorkScale
	acc       kernel.AccuracyScale
}

// New builds the netlist instances, precomputes move streams, and
// calibrates to Table 2.
func New() *Annealer {
	a := &Annealer{
		netlists:  make([][]net, instances),
		cellNets:  make([][][]int, instances),
		proposals: make([][]proposal, instances),
		refWL:     make([]float64, instances),
	}
	for inst := 0; inst < instances; inst++ {
		rng := kernel.RNG(name+"-netlist", inst)
		nl := make([]net, nets)
		for n := range nl {
			deg := 2 + rng.Intn(3)
			m := make(net, deg)
			for i := range m {
				m[i] = rng.Intn(cells)
			}
			nl[n] = m
		}
		a.netlists[inst] = nl
		cn := make([][]int, cells)
		for ni, m := range nl {
			for _, c := range m {
				cn[c] = append(cn[c], ni)
			}
		}
		a.cellNets[inst] = cn
		props := make([]proposal, tempSteps*movesPerT)
		for i := range props {
			props[i] = proposal{
				a:      rng.Intn(gridW * gridH),
				b:      rng.Intn(gridW * gridH),
				accept: rng.Float64(),
			}
		}
		a.proposals[inst] = props
		wl, _ := a.anneal(inst, rates[0])
		a.refWL[inst] = wl
	}
	var rawDef, rawFast, lossFast float64
	for it := 0; it < calibIters; it++ {
		inst := it % instances
		_, wd := a.anneal(inst, rates[0])
		wlf, wf := a.anneal(inst, rates[len(rates)-1])
		rawDef += wd
		rawFast += wf
		if a.refWL[inst] > 0 {
			l := wlf/a.refWL[inst] - 1
			if l < 0 {
				l = 0
			}
			lossFast += l
		}
	}
	a.work = kernel.NewWorkScale(rawDef/calibIters, rawFast/calibIters, targetSpeed)
	a.acc = kernel.NewAccuracyScale(lossFast/calibIters, targetLoss)
	return a
}

// anneal runs simulated annealing on instance inst with the given
// perforation rate and returns the final wire length and the raw work
// (net-evaluation count).
func (a *Annealer) anneal(inst int, rate float64) (wireLength, rawWork float64) {
	// slot[i] = cell id or -1; cells placed row-major at start.
	slots := make([]int, gridW*gridH)
	pos := make([]int, cells)
	for i := range slots {
		slots[i] = -1
	}
	for c := 0; c < cells; c++ {
		slots[c] = c
		pos[c] = c
	}
	nl := a.netlists[inst]
	cn := a.cellNets[inst]
	netWL := func(ni int) float64 {
		minX, minY := math.Inf(1), math.Inf(1)
		maxX, maxY := math.Inf(-1), math.Inf(-1)
		for _, c := range nl[ni] {
			x, y := float64(pos[c]%gridW), float64(pos[c]/gridW)
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
		return (maxX - minX) + (maxY - minY)
	}
	loop, err := perforation.NewLoop(rate, perforation.Interleave)
	if err != nil {
		loop, _ = perforation.NewLoop(0, perforation.Interleave)
	}
	props := a.proposals[inst]
	perTemp := len(props) / tempSteps
	temp := 3.0
	// Stamp-based touched-net dedup keeps the move loop allocation-free.
	stamp := make([]int, nets)
	touched := make([]int, 0, 16)
	move := 0
	for ts := 0; ts < tempSteps; ts++ {
		base := ts * perTemp
		loop.Range(perTemp, func(i int) {
			move++
			p := props[base+i]
			ca, cb := slots[p.a], slots[p.b]
			if ca < 0 && cb < 0 {
				return
			}
			// Delta = change in wire length of nets touching moved cells.
			touched = touched[:0]
			mark := func(c int) {
				if c < 0 {
					return
				}
				for _, ni := range cn[c] {
					if stamp[ni] != move {
						stamp[ni] = move
						touched = append(touched, ni)
					}
				}
			}
			mark(ca)
			mark(cb)
			var before float64
			for _, ni := range touched {
				before += netWL(ni)
				rawWork += float64(len(nl[ni]))
			}
			swap(slots, pos, p.a, p.b)
			var after float64
			for _, ni := range touched {
				after += netWL(ni)
				rawWork += float64(len(nl[ni]))
			}
			delta := after - before
			if delta > 0 && p.accept > math.Exp(-delta/temp) {
				swap(slots, pos, p.a, p.b) // reject: undo
			}
		})
		temp *= 0.7
	}
	for ni := range nl {
		wireLength += netWL(ni)
	}
	return wireLength, rawWork
}

// swap exchanges the contents of two slots and fixes the position index.
func swap(slots, pos []int, sa, sb int) {
	ca, cb := slots[sa], slots[sb]
	slots[sa], slots[sb] = cb, ca
	if ca >= 0 {
		pos[ca] = sb
	}
	if cb >= 0 {
		pos[cb] = sa
	}
}

// Name implements the App interface.
func (a *Annealer) Name() string { return name }

// Metric implements the App interface.
func (a *Annealer) Metric() string { return "wire length" }

// NumConfigs implements the App interface.
func (a *Annealer) NumConfigs() int { return len(rates) }

// DefaultConfig implements the App interface.
func (a *Annealer) DefaultConfig() int { return 0 }

// Rates exposes the perforation ladder.
func (a *Annealer) Rates() []float64 { return append([]float64(nil), rates...) }

// Step implements the App interface: anneal one netlist instance.
func (a *Annealer) Step(cfg, iter int) (work, accuracy float64) {
	if cfg < 0 || cfg >= len(rates) {
		cfg = 0
	}
	if iter < 0 {
		iter = -iter
	}
	inst := iter % instances
	wl, raw := a.anneal(inst, rates[cfg])
	ref := a.refWL[inst]
	var loss float64
	if ref > 0 {
		loss = wl/ref - 1
		if loss < 0 {
			loss = 0
		}
	}
	return a.work.Work(raw), a.acc.Accuracy(loss)
}
