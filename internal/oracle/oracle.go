// Package oracle computes the paper's optimality baseline (Sec. 5.2): the
// best accuracy achievable for an application, platform and energy target
// by an omniscient scheduler with zero overhead — "the best accuracy that
// could be accomplished by dynamically managing application and system
// with perfect knowledge of the future". It exhaustively profiles every
// (application, system) configuration pair against the true (noiseless)
// platform model, and solves the phase-allocation problem with a Lagrangian
// sweep when workloads have phases.
package oracle

import (
	"fmt"
	"math"

	"jouleguard/internal/knob"
	"jouleguard/internal/platform"
	"jouleguard/internal/workload"
)

// Point is one (app config, sys config) pair with its modelled cost.
type Point struct {
	AppPoint      knob.Point
	SysConfig     int
	EnergyPerIter float64 // true joules per nominal iteration
}

// Oracle answers optimal-accuracy queries for one (app frontier, platform,
// profile, work-per-iteration) combination.
type Oracle struct {
	points     []Point // all frontier-app x sys pairs
	defaultEPI float64 // default/default energy per iteration
}

// New exhaustively evaluates every frontier configuration against every
// system configuration. workPerIter is the application's default-config
// work per iteration in kernel units (the frontier's speedups scale it).
func New(frontier *knob.Frontier, plat *platform.Platform, prof platform.AppProfile, workPerIter float64) (*Oracle, error) {
	if frontier == nil || frontier.Len() == 0 {
		return nil, fmt.Errorf("oracle: empty frontier")
	}
	if workPerIter <= 0 {
		return nil, fmt.Errorf("oracle: work per iteration %v must be positive", workPerIter)
	}
	o := &Oracle{}
	for _, ap := range frontier.Points() {
		for s := 0; s < plat.NumConfigs(); s++ {
			rate := plat.Rate(s, prof) // units/sec
			power := plat.Power(s, prof)
			iterTime := workPerIter / ap.Speedup / rate
			o.points = append(o.points, Point{
				AppPoint:      ap,
				SysConfig:     s,
				EnergyPerIter: power * iterTime,
			})
		}
	}
	defIdx := plat.DefaultConfig()
	defRate := plat.Rate(defIdx, prof)
	o.defaultEPI = plat.Power(defIdx, prof) * workPerIter / defRate
	return o, nil
}

// DefaultEnergyPerIter returns the default/default energy per iteration —
// the baseline the paper's reduction factors f divide (Sec. 5.2).
func (o *Oracle) DefaultEnergyPerIter() float64 { return o.defaultEPI }

// BestAccuracy returns the highest accuracy achievable at or under the
// given energy-per-iteration budget, with the chosen point. ok is false if
// no configuration fits the budget (the goal is infeasible even for the
// oracle).
func (o *Oracle) BestAccuracy(energyPerIter float64) (Point, bool) {
	var best Point
	found := false
	for _, p := range o.points {
		if p.EnergyPerIter > energyPerIter {
			continue
		}
		if !found || p.AppPoint.Accuracy > best.AppPoint.Accuracy ||
			(p.AppPoint.Accuracy == best.AppPoint.Accuracy && p.EnergyPerIter < best.EnergyPerIter) {
			best = p
			found = true
		}
	}
	return best, found
}

// BestAccuracyForFactor answers for an energy reduction factor f: budget =
// defaultEnergyPerIter / f (Sec. 5.2's methodology).
func (o *Oracle) BestAccuracyForFactor(f float64) (Point, bool) {
	if f <= 0 {
		return Point{}, false
	}
	return o.BestAccuracy(o.defaultEPI / f)
}

// MinEnergyPerIter returns the lowest achievable energy per iteration and
// its point — the feasibility frontier (Sec. 3.4.3).
func (o *Oracle) MinEnergyPerIter() Point {
	best := o.points[0]
	for _, p := range o.points {
		if p.EnergyPerIter < best.EnergyPerIter {
			best = p
		}
	}
	return best
}

// MaxFeasibleFactor returns the largest energy-reduction factor any
// configuration can achieve (used to pick per-app sweep ranges, as the
// paper does for Figs. 5-7).
func (o *Oracle) MaxFeasibleFactor() float64 {
	return o.defaultEPI / o.MinEnergyPerIter().EnergyPerIter
}

// PhasePlan is the oracle's per-phase choice for a phased workload.
type PhasePlan struct {
	Phase  workload.Phase
	Choice Point
}

// BestAccuracyPhased solves the phased allocation: choose one configuration
// per phase maximising iteration-weighted accuracy subject to the total
// energy budget (phase costs scale per-iteration work and therefore
// energy). It sweeps a Lagrange multiplier on energy — each phase then
// independently maximises accuracy - lambda*energy — and returns the best
// feasible plan found. totalBudget is in joules for the whole trace.
func (o *Oracle) BestAccuracyPhased(tr *workload.Trace, totalBudget float64) ([]PhasePlan, float64, bool) {
	phases := tr.Phases()
	// Candidate multipliers: 0 (accuracy only) plus a geometric sweep wide
	// enough to cover any trade-off slope in the point set.
	lambdas := []float64{0}
	for l := 1e-6; l < 1e9; l *= 1.3 {
		lambdas = append(lambdas, l)
	}
	var bestPlan []PhasePlan
	bestAcc := -1.0
	// Seed with the best constant plan (one configuration for the whole
	// trace) so a coarse multiplier grid can never do worse than uniform.
	if tc := tr.TotalCost(); tc > 0 {
		// The tiny relative slack absorbs the division round-off so an
		// exactly-affordable constant plan is not excluded.
		if pt, ok := o.BestAccuracy(totalBudget / tc * (1 + 1e-9)); ok {
			bestAcc = pt.AppPoint.Accuracy
			bestPlan = make([]PhasePlan, len(phases))
			for pi, ph := range phases {
				bestPlan[pi] = PhasePlan{Phase: ph, Choice: pt}
			}
		}
	}
	for _, lambda := range lambdas {
		plan := make([]PhasePlan, len(phases))
		var energy, accSum, iters float64
		for pi, ph := range phases {
			var choice Point
			bestScore := math.Inf(-1)
			for _, p := range o.points {
				e := p.EnergyPerIter * ph.Cost
				score := p.AppPoint.Accuracy - lambda*e
				if score > bestScore {
					bestScore = score
					choice = p
				}
			}
			plan[pi] = PhasePlan{Phase: ph, Choice: choice}
			energy += choice.EnergyPerIter * ph.Cost * float64(ph.Iterations)
			accSum += choice.AppPoint.Accuracy * float64(ph.Iterations)
			iters += float64(ph.Iterations)
		}
		if energy <= totalBudget {
			if acc := accSum / iters; acc > bestAcc {
				bestAcc = acc
				bestPlan = plan
			}
		}
	}
	if bestPlan == nil {
		return nil, 0, false
	}
	return bestPlan, bestAcc, true
}
