package oracle

import (
	"math"
	"testing"

	"jouleguard/internal/knob"
	"jouleguard/internal/platform"
	"jouleguard/internal/workload"
)

func testFrontier(t *testing.T) *knob.Frontier {
	t.Helper()
	f, err := knob.NewFrontier(&knob.Profile{Points: []knob.Point{
		{Config: 0, Speedup: 1, Accuracy: 1},
		{Config: 1, Speedup: 2, Accuracy: 0.9},
		{Config: 2, Speedup: 4, Accuracy: 0.7},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func newOracle(t *testing.T) *Oracle {
	t.Helper()
	plat := platform.Tablet()
	prof := platform.Profiles["x264"]
	o, err := New(testFrontier(t), plat, prof, 100000)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestNewValidates(t *testing.T) {
	plat := platform.Tablet()
	prof := platform.Profiles["x264"]
	if _, err := New(nil, plat, prof, 1); err == nil {
		t.Error("want error for nil frontier")
	}
	if _, err := New(testFrontier(t), plat, prof, 0); err == nil {
		t.Error("want error for zero work")
	}
}

func TestBestAccuracyMonotoneInBudget(t *testing.T) {
	o := newOracle(t)
	def := o.DefaultEnergyPerIter()
	prev := -1.0
	for _, f := range []float64{3, 2.5, 2, 1.5, 1.2, 1} {
		pt, ok := o.BestAccuracy(def / f)
		if !ok {
			continue
		}
		if pt.AppPoint.Accuracy < prev {
			t.Fatalf("accuracy decreased as budget loosened at f=%v", f)
		}
		prev = pt.AppPoint.Accuracy
	}
	// The full budget must allow full accuracy.
	pt, ok := o.BestAccuracy(def)
	if !ok || pt.AppPoint.Accuracy != 1 {
		t.Fatalf("full budget: %+v ok=%v", pt, ok)
	}
}

func TestBestAccuracyRespectsBudget(t *testing.T) {
	o := newOracle(t)
	budget := o.DefaultEnergyPerIter() / 1.8
	pt, ok := o.BestAccuracy(budget)
	if !ok {
		t.Fatal("feasible budget reported infeasible")
	}
	if pt.EnergyPerIter > budget {
		t.Fatalf("oracle chose %v J/iter over budget %v", pt.EnergyPerIter, budget)
	}
}

func TestImpossibleBudget(t *testing.T) {
	o := newOracle(t)
	if _, ok := o.BestAccuracy(o.MinEnergyPerIter().EnergyPerIter / 2); ok {
		t.Fatal("impossible budget reported feasible")
	}
	if _, ok := o.BestAccuracyForFactor(o.MaxFeasibleFactor() * 1.01); ok {
		t.Fatal("beyond max feasible factor reported feasible")
	}
	if _, ok := o.BestAccuracyForFactor(-1); ok {
		t.Fatal("negative factor reported feasible")
	}
}

func TestMaxFeasibleFactorConsistent(t *testing.T) {
	o := newOracle(t)
	f := o.MaxFeasibleFactor()
	if f < 1 {
		t.Fatalf("max feasible factor %v < 1", f)
	}
	if _, ok := o.BestAccuracyForFactor(f * 0.999); !ok {
		t.Fatal("just-inside factor reported infeasible")
	}
}

func TestMinEnergyUsesMaxSpeedup(t *testing.T) {
	o := newOracle(t)
	min := o.MinEnergyPerIter()
	if min.AppPoint.Speedup != 4 {
		t.Fatalf("min energy should use the fastest app config, got speedup %v", min.AppPoint.Speedup)
	}
}

func TestPhasedAllocationBeatsUniform(t *testing.T) {
	o := newOracle(t)
	tr := workload.ThreePhaseVideo(100)
	// Budget: the uniform solution for f=1.8 over the trace's total cost.
	def := o.DefaultEnergyPerIter()
	var uniformEnergy float64
	uniformPt, ok := o.BestAccuracy(def / 1.8)
	if !ok {
		t.Fatal("uniform infeasible")
	}
	for i := 0; i < tr.Len(); i++ {
		uniformEnergy += uniformPt.EnergyPerIter * tr.Cost(i)
	}
	plan, acc, ok := o.BestAccuracyPhased(tr, uniformEnergy)
	if !ok {
		t.Fatal("phased allocation infeasible at the uniform budget")
	}
	if len(plan) != 3 {
		t.Fatalf("plan phases: %d", len(plan))
	}
	if acc < uniformPt.AppPoint.Accuracy-1e-9 {
		t.Fatalf("phased accuracy %v below uniform %v", acc, uniformPt.AppPoint.Accuracy)
	}
	// Verify plan energy within budget.
	var total float64
	for _, pp := range plan {
		total += pp.Choice.EnergyPerIter * pp.Phase.Cost * float64(pp.Phase.Iterations)
	}
	if total > uniformEnergy*(1+1e-9) {
		t.Fatalf("plan exceeds budget: %v > %v", total, uniformEnergy)
	}
}

func TestPhasedInfeasible(t *testing.T) {
	o := newOracle(t)
	tr := workload.ConstantTrace(10)
	if _, _, ok := o.BestAccuracyPhased(tr, 1e-12); ok {
		t.Fatal("absurd budget reported feasible")
	}
}

func TestDefaultEnergyMatchesModel(t *testing.T) {
	plat := platform.Server()
	prof := platform.Profiles["swish++"]
	work := 250000.0
	o, err := New(testFrontier(t), plat, prof, work)
	if err != nil {
		t.Fatal(err)
	}
	def := plat.DefaultConfig()
	want := plat.Power(def, prof) * work / plat.Rate(def, prof)
	if math.Abs(o.DefaultEnergyPerIter()-want) > 1e-9*want {
		t.Fatalf("default EPI %v, want %v", o.DefaultEnergyPerIter(), want)
	}
}
