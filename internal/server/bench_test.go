package server

import (
	"fmt"
	"sync/atomic"
	"testing"

	"jouleguard/internal/wire"
)

// BenchmarkInprocDecision measures the daemon's decision path alone —
// Server.Next + Server.Done through the shard map, session lock, and
// governor — with no HTTP and no codec. This is the floor under every
// wire-level latency number; BENCH_experiments.json pins its p50 under
// 100µs.
func BenchmarkInprocDecision(b *testing.B) {
	srv := benchServer(b, 1)
	id := benchRegister(b, srv, 0, b.N)
	clockS, energyJ := 0.0, 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Next(id, wire.NextRequest{NowS: clockS}); err != nil {
			b.Fatalf("next %d: %v", i, err)
		}
		clockS += 0.01
		energyJ += 0.2
		if _, err := srv.Done(id, wire.DoneRequest{NowS: clockS, EnergyJ: energyJ, Accuracy: 0.9}); err != nil {
			b.Fatalf("done %d: %v", i, err)
		}
	}
}

// BenchmarkInprocDecisionParallel drives many sessions concurrently to
// exercise the sharded registry: the decision path takes no server-wide
// lock, so throughput should track GOMAXPROCS, not collapse on a global
// mutex.
func BenchmarkInprocDecisionParallel(b *testing.B) {
	srv := benchServer(b, 64)
	var ids []string
	for i := 0; i < 64; i++ {
		ids = append(ids, benchRegister(b, srv, i, b.N+1))
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Each worker owns one session: the wire contract is strictly
		// alternating Next/Done per session.
		mine := ids[int(next.Add(1)-1)%len(ids)]
		clockS, energyJ := 0.0, 0.0
		for pb.Next() {
			if _, err := srv.Next(mine, wire.NextRequest{NowS: clockS}); err != nil {
				b.Errorf("next: %v", err)
				return
			}
			clockS += 0.01
			energyJ += 0.2
			if _, err := srv.Done(mine, wire.DoneRequest{NowS: clockS, EnergyJ: energyJ, Accuracy: 0.9}); err != nil {
				b.Errorf("done: %v", err)
				return
			}
		}
	})
}

// BenchmarkSessionLookup isolates the shard-map read that starts every
// decision.
func BenchmarkSessionLookup(b *testing.B) {
	srv := benchServer(b, 64)
	var ids []string
	for i := 0; i < 64; i++ {
		ids = append(ids, benchRegister(b, srv, i, 1000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if srv.sessions.get(ids[i%len(ids)]) == nil {
			b.Fatal("session vanished")
		}
	}
}

func benchServer(b *testing.B, sessions int) *Server {
	b.Helper()
	srv, err := New(Config{
		// Budget sized so no session exhausts it inside b.N iterations.
		GlobalBudgetJ: 1e12,
		SweepInterval: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.CloseV2Streams() })
	return srv
}

func benchRegister(b *testing.B, srv *Server, i, iters int) string {
	b.Helper()
	resp, err := srv.Register(wire.RegisterRequest{
		Tenant: fmt.Sprintf("bench-%02d", i), App: "x264", Platform: "Server",
		Iterations: iters + 1, BudgetJ: 1e9, Seed: int64(i + 1),
	})
	if err != nil {
		b.Fatal(err)
	}
	return resp.SessionID
}
