package server

import (
	"hash/fnv"
	"sort"
	"sync"
)

// The session registry is striped across sessionShards independently
// locked shards so 10k+ concurrent sessions do not contend on one
// mutex: a Next/Done call touches exactly one shard lock (a map read)
// and then the session's own fine-grained lock, never a global one. The
// broker is touched only on register, close/expiry and lease top-up —
// the steady-state decision path stays off it entirely.
//
// Locking order: at most ONE shard lock is ever held at a time, and no
// session lock is taken while a shard lock is held (lookups copy the
// *session pointer out, then operate on the session's own mutex).
// Key→id and id→session live in different shards in general, so a
// by-key lookup is two sequential single-shard acquisitions; the worst
// that can happen between them is observing a concurrently-closed
// session, which every caller already tolerates (session_closed is a
// normal reply). This rule makes lock-ordering deadlocks structurally
// impossible.
const sessionShards = 64 // power of two, so masking replaces modulo

type sessionShard struct {
	mu    sync.Mutex
	byID  map[string]*session
	byNum map[uint32]*session
	byKey map[string]string // session key -> id (cluster attach/adopt)
}

// sessionMap is the fnv-sharded session registry.
type sessionMap struct {
	shards [sessionShards]sessionShard
}

func newSessionMap() *sessionMap {
	m := &sessionMap{}
	for i := range m.shards {
		m.shards[i].byID = map[string]*session{}
		m.shards[i].byNum = map[uint32]*session{}
		m.shards[i].byKey = map[string]string{}
	}
	return m
}

// shardIndex hashes a string id/key onto a shard (fnv-1a, masked).
func shardIndex(s string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(s))
	return h.Sum32() & (sessionShards - 1)
}

// get returns the session with the given string id (nil if unknown).
func (m *sessionMap) get(id string) *session {
	sh := &m.shards[shardIndex(id)]
	sh.mu.Lock()
	sess := sh.byID[id]
	sh.mu.Unlock()
	return sess
}

// getNum returns the session with the given numeric id — the v2 frame
// path, one masked index and one map read, no string formatting.
func (m *sessionMap) getNum(num uint32) *session {
	if num == 0 {
		return nil
	}
	sh := &m.shards[num&(sessionShards-1)]
	sh.mu.Lock()
	sess := sh.byNum[num]
	sh.mu.Unlock()
	return sess
}

// put registers a session under its string id and (if nonzero) its
// numeric id. The two indexes live in different shards; each insert
// takes only its own shard lock.
func (m *sessionMap) put(sess *session) {
	sh := &m.shards[shardIndex(sess.id)]
	sh.mu.Lock()
	sh.byID[sess.id] = sess
	sh.mu.Unlock()
	if sess.num != 0 {
		nh := &m.shards[sess.num&(sessionShards-1)]
		nh.mu.Lock()
		nh.byNum[sess.num] = sess
		nh.mu.Unlock()
	}
}

// remove undoes put (the register-during-drain backout path).
func (m *sessionMap) remove(sess *session) {
	sh := &m.shards[shardIndex(sess.id)]
	sh.mu.Lock()
	delete(sh.byID, sess.id)
	sh.mu.Unlock()
	if sess.num != 0 {
		nh := &m.shards[sess.num&(sessionShards-1)]
		nh.mu.Lock()
		delete(nh.byNum, sess.num)
		nh.mu.Unlock()
	}
}

// setKey binds a cluster session key to an id.
func (m *sessionMap) setKey(key, id string) {
	sh := &m.shards[shardIndex(key)]
	sh.mu.Lock()
	sh.byKey[key] = id
	sh.mu.Unlock()
}

// idByKey resolves a session key to its current id ("" if unbound).
func (m *sessionMap) idByKey(key string) string {
	sh := &m.shards[shardIndex(key)]
	sh.mu.Lock()
	id := sh.byKey[key]
	sh.mu.Unlock()
	return id
}

// byKey resolves a key straight to its session (nil if unbound). Two
// sequential single-shard acquisitions, per the locking order above.
func (m *sessionMap) byKey(key string) *session {
	id := m.idByKey(key)
	if id == "" {
		return nil
	}
	return m.get(id)
}

// all snapshots every registered session. The copy is per-shard
// consistent, not globally atomic — callers (expiry sweep, export,
// list, drain wait) all tolerate sessions appearing or closing while
// they iterate, exactly as they did under the former global lock, which
// they also released before touching the sessions.
func (m *sessionMap) all() []*session {
	out := make([]*session, 0, 64)
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, sess := range sh.byID {
			out = append(out, sess)
		}
		sh.mu.Unlock()
	}
	return out
}

// allSorted is all() in creation order (ids are zero-padded counters,
// so lexicographic order is creation order) — snapshots and heartbeat
// exports need deterministic bodies.
func (m *sessionMap) allSorted() []*session {
	out := m.all()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// size counts registered sessions.
func (m *sessionMap) size() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += len(sh.byID)
		sh.mu.Unlock()
	}
	return n
}
