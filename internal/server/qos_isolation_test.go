package server

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jouleguard"
	"jouleguard/internal/qos"
	"jouleguard/internal/wire"
)

// TestQoSIsolationUnderChurn pins the tenant-protection headline
// property under -race churn: with the ladder enabled, a misbehaving
// tenant claiming ten honest tenants' worth of the pool and hammering
// registrations cannot move an honest tenant's budget fidelity or
// accuracy floor. Sixteen goroutines churn one daemon — twelve honest
// guaranteed-tier tenants running sessions to completion, three
// drivers hammering as the best-effort adversary, one observe ticker —
// and at the end every honest session must have spent within 105% of
// its grant with its floor unscaled, while the adversary (and only
// the adversary) drew enforcement denials.
func TestQoSIsolationUnderChurn(t *testing.T) {
	const (
		honest   = 12
		advDrv   = 3
		rounds   = 2
		iters    = 20
		minAcc   = 0.5
		slack    = 1.05
		tickGap  = time.Millisecond
		coolDown = 50 * time.Millisecond
	)
	tb, err := jouleguard.NewTestbed("radar", "Tablet")
	if err != nil {
		t.Fatal(err)
	}
	// Honest budgets are factor-priced like the smoke runs'; the
	// adversary claims ten honest tenants' worth. The pool fits both
	// (admission is claim-blind while it has room) with slack for the
	// adversary to re-register while its previous commitment lingers.
	perJ, err := tb.Budget(2, iters)
	if err != nil {
		t.Fatal(err)
	}
	advMulJ := 10 * perJ
	// The pool covers every joule the honest tenants will consume
	// across both rounds, their live commitments, and all three
	// adversary drivers' held 10x commitments at once — so an honest
	// registration can only be starved by an accounting bug, never by
	// sizing. The adversary never settles an iteration: a held
	// commitment is the hogging, and it keeps the arithmetic exact.
	globalJ := (rounds*honest*perJ + (honest*perJ+advDrv*advMulJ)*DefaultReserve) * 1.05
	srv, err := New(Config{
		GlobalBudgetJ: globalJ,
		SweepInterval: -1, // the test drives QoSTick itself
		QoS:           qos.Config{Enabled: true, ShedPressure: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The observe ticker: fast enough that the whole escalation arc
	// (3 overruns per rung) fits inside the churn window many times.
	tickStop := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		tick := time.NewTicker(tickGap)
		defer tick.Stop()
		for {
			select {
			case <-tickStop:
				return
			case <-tick.C:
				srv.QoSTick()
			}
		}
	}()

	var (
		mu         sync.Mutex
		honestErrs []error
		advDenials atomic.Int64
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		honestErrs = append(honestErrs, fmt.Errorf(format, args...))
		mu.Unlock()
	}
	isDenial := func(code string) bool {
		return code == wire.CodeTenantThrottled || code == wire.CodeTenantSuspended || code == wire.CodeTenantShed
	}

	var honestWG sync.WaitGroup
	for i := 0; i < honest; i++ {
		honestWG.Add(1)
		go func(i int) {
			defer honestWG.Done()
			tenant := fmt.Sprintf("honest-%02d", i)
			for r := 0; r < rounds; r++ {
				var reg wire.RegisterResponse
				status, werr := doJSON(t, ts, "POST", wire.BasePath, wire.RegisterRequest{
					Tenant: tenant, Tier: "guaranteed", App: "radar", Platform: "Tablet",
					Iterations: iters, BudgetJ: perJ, MinAccuracy: minAcc,
					Seed: int64(i*rounds + r + 1),
				}, &reg)
				if status != 201 {
					fail("honest %s round %d: register HTTP %d code %q: %s", tenant, r, status, werr.Code, werr.Error)
					return
				}
				m := newSimMachine(t, "radar", "Tablet")
				base := wire.BasePath + "/" + reg.SessionID
				for k := 0; k < iters; k++ {
					var next wire.NextResponse
					if status, werr := doJSON(t, ts, "POST", base+"/next", wire.NextRequest{NowS: m.clockS}, &next); status != 200 {
						fail("honest %s iter %d: Next HTTP %d code %q", tenant, k, status, werr.Code)
						return
					}
					acc := m.step(next.AppConfig, next.SysConfig, k)
					var dresp wire.DoneResponse
					if status, werr := doJSON(t, ts, "POST", base+"/done", wire.DoneRequest{
						NowS: m.clockS, EnergyJ: m.energyJ, Accuracy: acc,
					}, &dresp); status != 200 {
						fail("honest %s iter %d: Done HTTP %d code %q", tenant, k, status, werr.Code)
						return
					}
				}
				var closed wire.CloseResponse
				if status, werr := doJSON(t, ts, "DELETE", base, nil, &closed); status != 200 {
					fail("honest %s round %d: close HTTP %d code %q", tenant, r, status, werr.Code)
					return
				}
				if closed.SpentJ > reg.GrantJ*slack {
					fail("honest %s round %d: spent %.2f J of a %.2f J grant (>%.0f%%)",
						tenant, r, closed.SpentJ, reg.GrantJ, slack*100)
				}
			}
		}(i)
	}

	// Adversary drivers: all hammer the same tenant, each registering a
	// 10x claim and then squatting on the grant — polling Next without
	// ever settling — until enforcement kills the session out from
	// under it, then re-registering straight through the denials.
	// Denials are the expected outcome; anything else is retried.
	advStop := make(chan struct{})
	var advWG sync.WaitGroup
	for d := 0; d < advDrv; d++ {
		advWG.Add(1)
		go func(d int) {
			defer advWG.Done()
			for {
				select {
				case <-advStop:
					return
				default:
				}
				var reg wire.RegisterResponse
				status, werr := doJSON(t, ts, "POST", wire.BasePath, wire.RegisterRequest{
					Tenant: "noisy", Tier: "best-effort", App: "radar", Platform: "Tablet",
					Iterations: iters, BudgetJ: advMulJ, Seed: int64(1000 + d),
				}, &reg)
				if status != 201 {
					if isDenial(werr.Code) {
						advDenials.Add(1)
					}
					time.Sleep(500 * time.Microsecond)
					continue
				}
				base := wire.BasePath + "/" + reg.SessionID
			hold:
				for {
					select {
					case <-advStop:
						doJSON(t, ts, "DELETE", base, nil, nil)
						return
					default:
					}
					// The first poll arms a decision; later ones bounce off
					// bad_sequence while the session is alive — both mean
					// the squat continues. A denial means the ladder or the
					// shedder got it.
					status, werr := doJSON(t, ts, "POST", base+"/next", wire.NextRequest{NowS: 0}, nil)
					switch {
					case status == 200 || werr.Code == wire.CodeBadSequence:
						time.Sleep(time.Millisecond)
					case isDenial(werr.Code):
						advDenials.Add(1)
						break hold
					default:
						break hold
					}
				}
				doJSON(t, ts, "DELETE", base, nil, nil)
			}
		}(d)
	}

	honestWG.Wait()
	// Keep the adversary and the ticker running a little longer: the
	// property must hold with hostile load still live, and the tail
	// guarantees the ladder has ticks to escalate even if the honest
	// workloads finished quickly.
	time.Sleep(coolDown)
	close(advStop)
	advWG.Wait()
	close(tickStop)
	tickWG.Wait()

	mu.Lock()
	defer mu.Unlock()
	for _, err := range honestErrs {
		t.Error(err)
	}
	if advDenials.Load() == 0 {
		t.Error("adversary ran unenforced: not one registration or decision was denied")
	}
	eng := srv.QoS()
	for i := 0; i < honest; i++ {
		tenant := fmt.Sprintf("honest-%02d", i)
		if st := eng.StateOf(tenant); st != qos.StateOK {
			t.Errorf("honest tenant %s ended at ladder state %v, want ok", tenant, st)
		}
		if fs := eng.FloorScale(tenant); fs != 1 {
			t.Errorf("honest tenant %s accuracy floor scaled to %.2f, want 1", tenant, fs)
		}
		if floor := eng.EffectiveFloor(tenant, minAcc); floor != minAcc {
			t.Errorf("honest tenant %s effective floor %.2f, want %.2f (guaranteed tier, unscaled)", tenant, floor, minAcc)
		}
	}
	info := srv.Broker().Info()
	if info.CommittedJ+info.ConsumedJ > info.GlobalJ+1e-6 {
		t.Errorf("broker over-committed under enforcement churn: %.2f + %.2f > %.2f",
			info.CommittedJ, info.ConsumedJ, info.GlobalJ)
	}
}
