package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"jouleguard"
	"jouleguard/internal/wire"
)

// testServer builds a Server with the background sweeper disabled (tests
// drive expiry explicitly) and an injectable clock.
func testServer(t *testing.T, globalJ float64, clock *time.Time) *Server {
	t.Helper()
	cfg := Config{GlobalBudgetJ: globalJ, SweepInterval: -1}
	if clock != nil {
		cfg.Clock = func() time.Time { return *clock }
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// shutdown tears a test server down without waiting on sessions a test
// deliberately left armed.
func shutdown(s *Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_ = s.Shutdown(ctx)
}

// simMachine advances a virtual clock and energy meter by the platform
// model, like a governed application would.
type simMachine struct {
	tb      *jouleguard.Testbed
	clockS  float64
	energyJ float64
}

func newSimMachine(t *testing.T, app, plat string) *simMachine {
	t.Helper()
	tb, err := jouleguard.NewTestbed(app, plat)
	if err != nil {
		t.Fatal(err)
	}
	return &simMachine{tb: tb}
}

// step executes one iteration at the given configs and returns accuracy.
func (m *simMachine) step(appCfg, sysCfg, iter int) float64 {
	work, acc := m.tb.App.Step(appCfg, iter)
	rate := m.tb.Platform.Rate(sysCfg, m.tb.Profile)
	dur := work / rate
	m.clockS += dur
	m.energyJ += m.tb.Platform.Power(sysCfg, m.tb.Profile) * dur
	return acc
}

// doJSON is a bare-bones wire client for protocol-shape assertions.
func doJSON(t *testing.T, ts *httptest.Server, method, path string, body, out any) (int, wire.ErrorResponse) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode < 300 {
		if out != nil {
			if err := json.Unmarshal(raw, out); err != nil {
				t.Fatalf("decoding %s %s: %v (%s)", method, path, err, raw)
			}
		}
		return resp.StatusCode, wire.ErrorResponse{}
	}
	var werr wire.ErrorResponse
	_ = json.Unmarshal(raw, &werr)
	return resp.StatusCode, werr
}

// TestProtocolRoundTrip drives one session end to end over real HTTP:
// register, bracket every iteration, complete, introspect, close.
func TestProtocolRoundTrip(t *testing.T) {
	srv := testServer(t, 10000, nil)
	defer shutdown(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const iters = 40
	var reg wire.RegisterResponse
	status, _ := doJSON(t, ts, "POST", wire.BasePath, wire.RegisterRequest{
		Tenant: "t1", App: "radar", Platform: "Tablet", Iterations: iters, Factor: 2,
	}, &reg)
	if status != http.StatusCreated {
		t.Fatalf("register status %d", status)
	}
	if reg.SessionID == "" || reg.GrantJ <= 0 || reg.AppConfigs <= 0 || reg.SysConfigs <= 0 {
		t.Fatalf("register response %+v", reg)
	}

	m := newSimMachine(t, "radar", "Tablet")
	base := wire.BasePath + "/" + reg.SessionID
	var last wire.DoneResponse
	for i := 0; i < iters; i++ {
		var next wire.NextResponse
		if status, werr := doJSON(t, ts, "POST", base+"/next", wire.NextRequest{NowS: m.clockS}, &next); status != http.StatusOK {
			t.Fatalf("next %d: status %d %+v", i, status, werr)
		}
		acc := m.step(next.AppConfig, next.SysConfig, i)
		if status, werr := doJSON(t, ts, "POST", base+"/done", wire.DoneRequest{
			NowS: m.clockS, EnergyJ: m.energyJ, Accuracy: acc,
		}, &last); status != http.StatusOK {
			t.Fatalf("done %d: status %d %+v", i, status, werr)
		}
	}
	if !last.Complete || last.IterationsDone != iters {
		t.Fatalf("final done %+v", last)
	}
	if last.SpentJ > reg.GrantJ*1.05 {
		t.Fatalf("spent %.1f J of a %.1f J grant", last.SpentJ, reg.GrantJ)
	}

	// Next past completion is a conflict with a stable code.
	if status, werr := doJSON(t, ts, "POST", base+"/next", wire.NextRequest{NowS: m.clockS}, nil); status != http.StatusConflict || werr.Code != wire.CodeSessionComplete {
		t.Fatalf("next past complete: %d %+v", status, werr)
	}

	// Introspection includes the learned estimates.
	var info wire.SessionInfo
	if status, _ := doJSON(t, ts, "GET", base, nil, &info); status != http.StatusOK {
		t.Fatalf("info status %d", status)
	}
	if info.State != "complete" || len(info.Estimates) == 0 {
		t.Fatalf("info %+v", info)
	}

	// Close reclaims the grant and the session is gone afterwards.
	var closed wire.CloseResponse
	if status, _ := doJSON(t, ts, "DELETE", base, nil, &closed); status != http.StatusOK {
		t.Fatalf("close status %d", status)
	}
	if status, werr := doJSON(t, ts, "DELETE", base, nil, nil); status != http.StatusGone || werr.Code != wire.CodeSessionClosed {
		t.Fatalf("double close: %d %+v", status, werr)
	}
	if avail := srv.Broker().Available(); avail <= 0 {
		t.Fatalf("grant not reclaimed: available %.1f", avail)
	}
}

// TestProtocolErrors pins the error surface: bad registrations, unknown
// sessions, sequencing conflicts, budget exhaustion.
func TestProtocolErrors(t *testing.T) {
	srv := testServer(t, 100, nil)
	defer shutdown(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, bad := range []wire.RegisterRequest{
		{App: "x264", Platform: "Server", Iterations: 0},                          // no iterations
		{App: "nope", Platform: "Server", Iterations: 10},                         // unknown app
		{App: "x264", Platform: "Server", Iterations: 10, Factor: 2, BudgetJ: 10}, // both goals
		{App: "x264", Platform: "Server", Iterations: 10, Factor: -1},             // negative
	} {
		if status, werr := doJSON(t, ts, "POST", wire.BasePath, bad, nil); status != http.StatusBadRequest || werr.Code != wire.CodeBadRequest {
			t.Fatalf("bad register %+v: %d %+v", bad, status, werr)
		}
	}

	// Unknown session.
	if status, werr := doJSON(t, ts, "POST", wire.BasePath+"/s-000099/next", wire.NextRequest{}, nil); status != http.StatusNotFound || werr.Code != wire.CodeUnknownSession {
		t.Fatalf("unknown session: %d %+v", status, werr)
	}

	// Sequencing: Done before Next, then Next twice.
	var reg wire.RegisterResponse
	doJSON(t, ts, "POST", wire.BasePath, wire.RegisterRequest{
		App: "radar", Platform: "Tablet", Iterations: 10, BudgetJ: 5,
	}, &reg)
	base := wire.BasePath + "/" + reg.SessionID
	if status, werr := doJSON(t, ts, "POST", base+"/done", wire.DoneRequest{}, nil); status != http.StatusConflict || werr.Code != wire.CodeBadSequence {
		t.Fatalf("done before next: %d %+v", status, werr)
	}
	doJSON(t, ts, "POST", base+"/next", wire.NextRequest{}, nil)
	if status, werr := doJSON(t, ts, "POST", base+"/next", wire.NextRequest{}, nil); status != http.StatusConflict || werr.Code != wire.CodeBadSequence {
		t.Fatalf("next twice: %d %+v", status, werr)
	}

	// Budget exhaustion: the 100 J pool cannot honor 200 J more.
	if status, werr := doJSON(t, ts, "POST", wire.BasePath, wire.RegisterRequest{
		App: "radar", Platform: "Tablet", Iterations: 10, BudgetJ: 200,
	}, nil); status != http.StatusTooManyRequests || werr.Code != wire.CodeBudgetExhausted {
		t.Fatalf("exhaustion: %d %+v", status, werr)
	}
}

// TestDrainingRefusesNewWork pins graceful shutdown: registrations and
// Next calls get the retryable draining code, in-flight Done settles.
func TestDrainingRefusesNewWork(t *testing.T) {
	srv := testServer(t, 1000, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var reg wire.RegisterResponse
	doJSON(t, ts, "POST", wire.BasePath, wire.RegisterRequest{
		App: "radar", Platform: "Tablet", Iterations: 10, BudgetJ: 100,
	}, &reg)
	base := wire.BasePath + "/" + reg.SessionID
	m := newSimMachine(t, "radar", "Tablet")
	var next wire.NextResponse
	doJSON(t, ts, "POST", base+"/next", wire.NextRequest{NowS: m.clockS}, &next)

	// Shutdown with an armed iteration outstanding: the drain must wait
	// for its Done, which is still accepted.
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- srv.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond)

	if status, werr := doJSON(t, ts, "POST", wire.BasePath, wire.RegisterRequest{
		App: "radar", Platform: "Tablet", Iterations: 10, BudgetJ: 10,
	}, nil); status != http.StatusServiceUnavailable || werr.Code != wire.CodeDraining {
		t.Fatalf("register while draining: %d %+v", status, werr)
	}

	acc := m.step(next.AppConfig, next.SysConfig, 0)
	if status, werr := doJSON(t, ts, "POST", base+"/done", wire.DoneRequest{
		NowS: m.clockS, EnergyJ: m.energyJ, Accuracy: acc,
	}, nil); status != http.StatusOK {
		t.Fatalf("done while draining: %d %+v", status, werr)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if status, werr := doJSON(t, ts, "POST", base+"/next", wire.NextRequest{NowS: m.clockS}, nil); status != http.StatusServiceUnavailable || werr.Code != wire.CodeDraining {
		t.Fatalf("next after drain: %d %+v", status, werr)
	}
}

// TestIdleExpiry pins the watchdog: a session with no wire activity past
// its timeout is expired and its grant reclaimed.
func TestIdleExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	srv := testServer(t, 1000, &now)
	defer shutdown(srv)

	resp, err := srv.Register(wire.RegisterRequest{
		App: "radar", Platform: "Tablet", Iterations: 10, BudgetJ: 100,
		IdleTimeoutS: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	availBefore := srv.Broker().Available()

	now = now.Add(20 * time.Second)
	if n := srv.ExpireIdle(); n != 0 {
		t.Fatalf("expired %d sessions before the timeout", n)
	}
	now = now.Add(11 * time.Second)
	if n := srv.ExpireIdle(); n != 1 {
		t.Fatalf("expired %d sessions after the timeout", n)
	}
	if avail := srv.Broker().Available(); avail <= availBefore {
		t.Fatalf("grant not reclaimed: %.1f -> %.1f", availBefore, avail)
	}
	// The expired session answers with a terminal code.
	sess, _ := srv.lookup(resp.SessionID)
	if _, werr := sess.next(wire.NextRequest{}, now); werr == nil || werr.code != wire.CodeSessionClosed {
		t.Fatalf("next on expired session: %+v", werr)
	}
}

// TestMetricsAndSessionDecisions pins the observability wiring: broker
// and session metrics appear on /metrics, and /decisions?session=
// filters the flight recorder by the session tag.
func TestMetricsAndSessionDecisions(t *testing.T) {
	srv := testServer(t, 1000, nil)
	defer shutdown(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var reg wire.RegisterResponse
	doJSON(t, ts, "POST", wire.BasePath, wire.RegisterRequest{
		App: "radar", Platform: "Tablet", Iterations: 10, BudgetJ: 100,
	}, &reg)
	m := newSimMachine(t, "radar", "Tablet")
	base := wire.BasePath + "/" + reg.SessionID
	for i := 0; i < 5; i++ {
		var next wire.NextResponse
		doJSON(t, ts, "POST", base+"/next", wire.NextRequest{NowS: m.clockS}, &next)
		acc := m.step(next.AppConfig, next.SysConfig, i)
		doJSON(t, ts, "POST", base+"/done", wire.DoneRequest{NowS: m.clockS, EnergyJ: m.energyJ, Accuracy: acc}, nil)
	}

	scrape, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(scrape.Body)
	scrape.Body.Close()
	for _, want := range []string{
		"jouleguardd_broker_global_joules",
		"jouleguardd_broker_committed_joules",
		"jouleguardd_sessions_opened_total 1",
		"jouleguardd_decision_seconds",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	dec, err := ts.Client().Get(ts.URL + "/decisions?session=" + reg.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	lines, _ := io.ReadAll(dec.Body)
	dec.Body.Close()
	n := 0
	for _, line := range bytes.Split(bytes.TrimSpace(lines), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var d struct {
			Session string `json:"session"`
		}
		if err := json.Unmarshal(line, &d); err != nil {
			t.Fatalf("decision line %q: %v", line, err)
		}
		if d.Session != reg.SessionID {
			t.Fatalf("decision tagged %q, want %q", d.Session, reg.SessionID)
		}
		n++
	}
	if n != 5 {
		t.Fatalf("filtered decisions: %d, want 5", n)
	}
	// A bogus session filter yields nothing.
	dec2, _ := ts.Client().Get(ts.URL + "/decisions?session=s-999999")
	lines2, _ := io.ReadAll(dec2.Body)
	dec2.Body.Close()
	if len(bytes.TrimSpace(lines2)) != 0 {
		t.Fatalf("bogus filter returned %q", lines2)
	}
}

// TestListSessions pins the fleet listing: broker ledger plus sessions in
// creation order.
func TestListSessions(t *testing.T) {
	srv := testServer(t, 10000, nil)
	defer shutdown(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		doJSON(t, ts, "POST", wire.BasePath, wire.RegisterRequest{
			Tenant: fmt.Sprintf("t%d", i), App: "radar", Platform: "Tablet",
			Iterations: 10, BudgetJ: 100,
		}, nil)
	}
	var list wire.ListResponse
	if status, _ := doJSON(t, ts, "GET", wire.BasePath, nil, &list); status != http.StatusOK {
		t.Fatalf("list status %d", status)
	}
	if list.Broker.Active != 3 || len(list.Sessions) != 3 {
		t.Fatalf("list %+v", list)
	}
	for i := 1; i < len(list.Sessions); i++ {
		if list.Sessions[i-1].SessionID >= list.Sessions[i].SessionID {
			t.Fatalf("sessions out of order: %s >= %s", list.Sessions[i-1].SessionID, list.Sessions[i].SessionID)
		}
	}
}
