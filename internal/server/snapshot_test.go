package server

import (
	"bytes"
	"reflect"
	"testing"

	"jouleguard/internal/wire"
)

// driveIters runs n bracketed iterations of sess against m, failing the
// test on any protocol error.
func driveIters(t *testing.T, srv *Server, id string, m *simMachine, start, n int) {
	t.Helper()
	sess, werr := srv.lookup(id)
	if werr != nil {
		t.Fatalf("lookup %s: %v", id, werr)
	}
	for k := start; k < start+n; k++ {
		next, werr := sess.next(wire.NextRequest{NowS: m.clockS}, srv.clock())
		if werr != nil {
			t.Fatalf("next %d: %v", k, werr)
		}
		acc := m.step(next.AppConfig, next.SysConfig, k)
		if _, werr := sess.done(wire.DoneRequest{NowS: m.clockS, EnergyJ: m.energyJ, Accuracy: acc}, srv.clock()); werr != nil {
			t.Fatalf("done %d: %v", k, werr)
		}
	}
}

// TestSnapshotRestoreBitIdentical kills a daemon mid-run, restores it
// from the snapshot, and asserts the restored governor is
// indistinguishable from the original: bandit estimates and the budget
// ledger match exactly (==, no tolerance), and every subsequent decision
// under identical inputs is identical.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	srv1 := testServer(t, 10000, nil)
	defer shutdown(srv1)

	reg := wire.RegisterRequest{
		Tenant: "t1", App: "radar", Platform: "Tablet",
		Iterations: 120, Factor: 2, Seed: 7,
	}
	resp, err := srv1.Register(reg)
	if err != nil {
		t.Fatal(err)
	}
	id := resp.SessionID

	// Run half the workload, then "kill" the daemon: snapshot its state.
	m1 := newSimMachine(t, "radar", "Tablet")
	driveIters(t, srv1, id, m1, 0, 60)
	var snap bytes.Buffer
	if err := srv1.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh daemon.
	srv2 := testServer(t, 1, nil) // broker is rebuilt from the snapshot header
	defer shutdown(srv2)
	if err := srv2.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}

	// The bandit estimates must match exactly — replay is bit-identical,
	// not approximately converged.
	s1, _ := srv1.lookup(id)
	s2, werr := srv2.lookup(id)
	if werr != nil {
		t.Fatalf("restored daemon lost session %s", id)
	}
	i1, i2 := s1.info(true), s2.info(true)
	if !reflect.DeepEqual(i1, i2) {
		t.Fatalf("restored session info diverged:\n  orig: %+v\n  rest: %+v", i1, i2)
	}
	if i2.SpentJ != i1.SpentJ {
		t.Fatalf("ledger diverged: %.17g vs %.17g", i1.SpentJ, i2.SpentJ)
	}

	// The broker ledgers agree on the pool.
	b1, b2 := srv1.Broker().Info(), srv2.Broker().Info()
	if b1.CommittedJ != b2.CommittedJ || b1.ConsumedJ != b2.ConsumedJ || b1.GlobalJ != b2.GlobalJ {
		t.Fatalf("broker ledgers diverged:\n  orig: %+v\n  rest: %+v", b1, b2)
	}

	// Both daemons now govern identical virtual machines forward: every
	// decision must agree, or the restored RNG/controller state differs.
	m2 := &simMachine{tb: m1.tb, clockS: m1.clockS, energyJ: m1.energyJ}
	for k := 60; k < 120; k++ {
		n1, werr1 := s1.next(wire.NextRequest{NowS: m1.clockS}, srv1.clock())
		n2, werr2 := s2.next(wire.NextRequest{NowS: m2.clockS}, srv2.clock())
		if werr1 != nil || werr2 != nil {
			t.Fatalf("next %d: %v / %v", k, werr1, werr2)
		}
		if n1.AppConfig != n2.AppConfig || n1.SysConfig != n2.SysConfig {
			t.Fatalf("decision %d diverged: (%d,%d) vs (%d,%d)",
				k, n1.AppConfig, n1.SysConfig, n2.AppConfig, n2.SysConfig)
		}
		a1 := m1.step(n1.AppConfig, n1.SysConfig, k)
		a2 := m2.step(n2.AppConfig, n2.SysConfig, k)
		d1, werr1 := s1.done(wire.DoneRequest{NowS: m1.clockS, EnergyJ: m1.energyJ, Accuracy: a1}, srv1.clock())
		d2, werr2 := s2.done(wire.DoneRequest{NowS: m2.clockS, EnergyJ: m2.energyJ, Accuracy: a2}, srv2.clock())
		if werr1 != nil || werr2 != nil {
			t.Fatalf("done %d: %v / %v", k, werr1, werr2)
		}
		if d1.SpentJ != d2.SpentJ {
			t.Fatalf("spend diverged at %d: %.17g vs %.17g", k, d1.SpentJ, d2.SpentJ)
		}
	}
	if !s1.info(false).Degraded && s1.info(true).IterDone != 120 {
		t.Fatalf("workload did not complete: %+v", s1.info(false))
	}
}

// TestSnapshotSkipsDeadSessions pins that closed and expired sessions are
// not resurrected by a restore — only their consumed energy and carry
// survive, in the daemon header.
func TestSnapshotSkipsDeadSessions(t *testing.T) {
	srv1 := testServer(t, 1000, nil)
	defer shutdown(srv1)

	live, err := srv1.Register(wire.RegisterRequest{
		Tenant: "keep", App: "radar", Platform: "Tablet", Iterations: 50, BudgetJ: 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dead, err := srv1.Register(wire.RegisterRequest{
		Tenant: "gone", App: "radar", Platform: "Tablet", Iterations: 50, BudgetJ: 100, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := newSimMachine(t, "radar", "Tablet")
	driveIters(t, srv1, dead.SessionID, m, 0, 10)
	closed, err := srv1.Close(dead.SessionID)
	if err != nil {
		t.Fatal(err)
	}

	var snap bytes.Buffer
	if err := srv1.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	srv2 := testServer(t, 1, nil)
	defer shutdown(srv2)
	if err := srv2.Restore(&snap); err != nil {
		t.Fatal(err)
	}
	if _, werr := srv2.lookup(dead.SessionID); werr == nil {
		t.Fatal("closed session resurrected by restore")
	}
	if _, werr := srv2.lookup(live.SessionID); werr != nil {
		t.Fatal("live session lost by restore")
	}
	// The dead tenant's spend survives as consumed; its underspend
	// survives as carry.
	b2 := srv2.Broker()
	if got := b2.Info().ConsumedJ; got != closed.SpentJ {
		t.Fatalf("consumed %.3f, want the dead session's spend %.3f", got, closed.SpentJ)
	}
	wantCarry := 100 - closed.SpentJ
	if got := b2.Carry("gone"); got != wantCarry {
		t.Fatalf("carry %.3f, want %.3f", got, wantCarry)
	}
}

// TestRestoreRequiresFreshServer pins the restore precondition.
func TestRestoreRequiresFreshServer(t *testing.T) {
	srv1 := testServer(t, 1000, nil)
	defer shutdown(srv1)
	if _, err := srv1.Register(wire.RegisterRequest{
		App: "radar", Platform: "Tablet", Iterations: 10, BudgetJ: 10,
	}); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := srv1.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if err := srv1.Restore(&snap); err == nil {
		t.Fatal("restore into a non-fresh server succeeded")
	}
}
