package server

import (
	"math"
	"strings"
	"testing"
)

// TestBrokerInvariants pins I1 (committed + consumed never exceeds the
// global pool) across admit/release churn, and that admission control
// rejects what the pool cannot honor.
func TestBrokerInvariants(t *testing.T) {
	b, err := NewBroker(1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkI1 := func(when string) {
		t.Helper()
		info := b.Info()
		if info.CommittedJ+info.ConsumedJ > info.GlobalJ+1e-9 {
			t.Fatalf("%s: I1 violated: committed %.3f + consumed %.3f > global %.3f",
				when, info.CommittedJ, info.ConsumedJ, info.GlobalJ)
		}
	}

	// Absolute grants commit grant x reserve.
	g1, err := b.Admit("a", 1, 400)
	if err != nil {
		t.Fatal(err)
	}
	if g1.GrantJ != 400 || math.Abs(g1.CommitJ-400*DefaultReserve) > 1e-9 {
		t.Fatalf("grant %.1f commit %.3f", g1.GrantJ, g1.CommitJ)
	}
	checkI1("after first admit")

	// A request the remainder cannot cover (with reserve) is rejected.
	if _, err := b.Admit("b", 1, 600); err == nil {
		t.Fatal("over-budget request admitted")
	} else if !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("unexpected rejection error: %v", err)
	}
	if b.Info().Rejected != 1 {
		t.Fatalf("rejections: %d", b.Info().Rejected)
	}
	checkI1("after rejection")

	// Weighted shares split the uncommitted pool and always fit.
	g2, err := b.Admit("b", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkI1("after weighted admit")
	if g2.GrantJ <= 0 {
		t.Fatalf("weighted grant %.3f", g2.GrantJ)
	}

	// Release returns the commitment and books the real spend.
	b.Release(g1, 390)
	checkI1("after release")
	if got := b.Info().ConsumedJ; got != 390 {
		t.Fatalf("consumed %.1f", got)
	}
	b.Release(g2, g2.GrantJ)
	checkI1("after releasing everything")
	if b.Info().Active != 0 {
		t.Fatalf("active %d", b.Info().Active)
	}
}

// TestBrokerCarryOver pins the deficit ledger: underspend returns as a
// credit on the tenant's next weighted share; overdraft (within the
// reserve slack) shrinks it.
func TestBrokerCarryOver(t *testing.T) {
	b, err := NewBroker(1000, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Underspender earns a credit.
	g, _ := b.Admit("thrifty", 1, 200)
	b.Release(g, 150)
	if c := b.Carry("thrifty"); math.Abs(c-50) > 1e-9 {
		t.Fatalf("credit carry %.3f, want 50", c)
	}

	// Overspender earns a debit.
	g2, _ := b.Admit("greedy", 1, 200)
	b.Release(g2, 210) // 5% overshoot, within the reserve
	if c := b.Carry("greedy"); math.Abs(c+10) > 1e-9 {
		t.Fatalf("debit carry %.3f, want -10", c)
	}

	// An anchor session keeps part of the pool committed so weighted
	// shares are proper fractions; the carries then adjust each tenant's
	// share exactly.
	if _, err := b.Admit("anchor", 2, 300); err != nil {
		t.Fatal(err)
	}
	baseT := (b.Available() / DefaultReserve) / 3 // weight 1 vs active weight 2
	gt, err := b.Admit("thrifty", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gt.GrantJ-(baseT+50)) > 1e-6 {
		t.Fatalf("thrifty grant %.3f, want base %.3f + 50 credit", gt.GrantJ, baseT)
	}
	baseG := (b.Available() / DefaultReserve) / 4 // weight 1 vs active weight 3
	gg, err := b.Admit("greedy", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gg.GrantJ-(baseG-10)) > 1e-6 {
		t.Fatalf("greedy grant %.3f, want base %.3f - 10 debit", gg.GrantJ, baseG)
	}
	// Both ledgers were applied.
	if b.Carry("thrifty") != 0 || b.Carry("greedy") != 0 {
		t.Fatalf("carries not cleared: %.3f / %.3f", b.Carry("thrifty"), b.Carry("greedy"))
	}

	info := b.Info()
	if info.CommittedJ+info.ConsumedJ > info.GlobalJ+1e-9 {
		t.Fatalf("I1 violated after carry application")
	}
}

// TestBrokerDebitBlocksAbsolute pins that an overdrafted tenant must
// cover its debit on top of an absolute request.
func TestBrokerDebitBlocksAbsolute(t *testing.T) {
	b, err := NewBroker(230, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := b.Admit("a", 1, 200)
	b.Release(g, 210) // 10 J overdraft; consumed=210, avail=20
	// 15 J would fit on its own ((15+10)*1.05 = 26.25 > 20 does not).
	if _, err := b.Admit("a", 1, 15); err == nil {
		t.Fatal("debit-carrying tenant admitted without covering its debit")
	}
	// A clean tenant with a smaller ask fits.
	if _, err := b.Admit("b", 1, 15); err != nil {
		t.Fatalf("clean tenant rejected: %v", err)
	}
}
