package server

import (
	"sync"
	"time"

	"jouleguard/internal/telemetry"
	"jouleguard/internal/wire"
)

// Daemon-side distributed tracing: when a wire request carries a trace
// context (TraceID != 0 — head-sampled by the client), the decision and
// settle paths record one span per hop into the process's SpanBuffer,
// parented to the client's root span so the per-node /traces windows
// join into one tree. The untraced path is a single predictable branch;
// spans are value structs copied into a pre-allocated ring, so the
// 0 allocs/op decision pin survives with tracing compiled in.

// unixS renders a wall-clock instant as float seconds — span timestamps
// are per-process (parent links, not clocks, order spans across nodes).
func unixS(t time.Time) float64 { return float64(t.UnixNano()) / 1e9 }

// traceNext records the daemon hops of a traced Next: the decode span
// under the client's root, and the bandit decision under the decode.
func (s *Server) traceNext(sessID string, req wire.NextRequest, start time.Time, iter int) {
	sp := s.tel.Spans
	st, end := unixS(start), unixS(time.Now())
	decode := sp.NextID()
	sp.Record(telemetry.Span{Trace: req.TraceID, ID: decode, Parent: req.SpanID,
		Name: telemetry.SpanDecode, Session: sessID, StartS: st, EndS: end, AttrIter: iter})
	sp.Record(telemetry.Span{Trace: req.TraceID, ID: sp.NextID(), Parent: decode,
		Name: telemetry.SpanDecision, Session: sessID, StartS: st, EndS: end, AttrIter: iter})
}

// traceDone records the settle hops of a traced Done — the sensing-guard
// verdict and the ledger debit (AttrJ = the joules delivered) — and
// queues the trace context for the next heartbeat so the coordinator can
// add its lease span to the same trace.
func (s *Server) traceDone(sessID string, req wire.DoneRequest, start time.Time, resp wire.DoneResponse) {
	sp := s.tel.Spans
	st, end := unixS(start), unixS(time.Now())
	guard := sp.NextID()
	sp.Record(telemetry.Span{Trace: req.TraceID, ID: guard, Parent: req.SpanID,
		Name: telemetry.SpanGuard, Session: sessID, StartS: st, EndS: end, AttrIter: resp.IterationsDone})
	debit := sp.NextID()
	sp.Record(telemetry.Span{Trace: req.TraceID, ID: debit, Parent: guard,
		Name: telemetry.SpanBrokerDebit, Session: sessID, StartS: st, EndS: end,
		AttrJ: req.EnergyJ, AttrIter: resp.IterationsDone})
	// The heartbeat ref parents the coordinator's lease span to the debit
	// span — the hop the booking is actually downstream of — so the
	// cross-node tree chains client -> guard -> debit -> lease.
	s.noteTraceRef(sessID, req, resp, debit)
}

// traceRefCap bounds the pending trace-ref queue between heartbeats;
// beyond it the oldest refs are dropped (sampling already thinned them).
const traceRefCap = 256

// traceRefs is the bounded queue of traced settles awaiting the next
// heartbeat, so the coordinator can join the distributed trace.
type traceRefs struct {
	mu   sync.Mutex
	refs []wire.TraceRef
}

func (t *traceRefs) note(ref wire.TraceRef) {
	t.mu.Lock()
	if len(t.refs) >= traceRefCap {
		copy(t.refs, t.refs[1:])
		t.refs = t.refs[:traceRefCap-1]
	}
	t.refs = append(t.refs, ref)
	t.mu.Unlock()
}

func (t *traceRefs) drain() []wire.TraceRef {
	t.mu.Lock()
	refs := t.refs
	t.refs = nil
	t.mu.Unlock()
	return refs
}

func (s *Server) noteTraceRef(sessID string, req wire.DoneRequest, resp wire.DoneResponse, parent uint64) {
	s.traced.note(wire.TraceRef{
		Trace:   req.TraceID,
		Span:    parent,
		Session: sessID,
		Iter:    resp.IterationsDone,
		NowS:    req.NowS,
	})
}

// DrainTraceRefs hands the pending traced-settle contexts to the cluster
// member, which forwards them on its next heartbeat (and drops them on
// the floor outside a fleet — a standalone daemon's trace ends at the
// broker debit).
func (s *Server) DrainTraceRefs() []wire.TraceRef { return s.traced.drain() }

// RequeueTraceRefs returns undelivered refs to the pending queue: a
// heartbeat that failed (dead or deposed coordinator) gives its refs
// another chance on the next beat instead of swallowing them. The
// queue's cap still bounds growth through a long outage.
func (s *Server) RequeueTraceRefs(refs []wire.TraceRef) {
	for _, r := range refs {
		s.traced.note(r)
	}
}
