package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"jouleguard/internal/telemetry"
	"jouleguard/internal/wire"
)

// The snapshot is a JSONL write-ahead-style dump: one daemon header
// line, then for every live session a session line followed by that
// session's iteration log. Restoring replays each session's logged
// iterations through a freshly built governor stack (same registration,
// same grant, same seed), which — because the whole control path is
// deterministic given its inputs — lands the bandit estimates, the PI
// controller state, the sensing-guard window and the budget ledger on
// bit-identical values. Event-sourcing beats serialising the learner's
// internals directly: the log is human-auditable, versions cannot skew
// against estimator implementations, and the replay exercises exactly
// the code that produced the state.
//
// Closed and expired sessions are not written: their lasting effects —
// consumed energy and per-tenant deficit carry-over — live in the
// daemon header.

const snapshotVersion = 1

type snapDaemon struct {
	Kind      string             `json:"kind"` // "daemon"
	V         int                `json:"v"`
	GlobalJ   float64            `json:"global_j"`
	Reserve   float64            `json:"reserve"`
	ConsumedJ float64            `json:"consumed_j"`
	NextID    uint64             `json:"next_id"`
	Carry     map[string]float64 `json:"carry,omitempty"`
}

type snapSession struct {
	Kind      string               `json:"kind"` // "session"
	ID        string               `json:"id"`
	Reg       wire.RegisterRequest `json:"reg"`
	GrantJ    float64              `json:"grant_j"`
	CommitJ   float64              `json:"commit_j"`
	Weight    float64              `json:"weight"`
	ImportedJ float64              `json:"imported_j,omitempty"`
}

type snapIter struct {
	Kind string `json:"kind"` // "iter"
	SID  string `json:"sid"`
	iterRec
}

// Snapshot writes the daemon's durable state as JSONL. Call it after
// Shutdown has drained in-flight iterations; it is also safe mid-run
// (each session is locked while copied), in which case an armed
// session is captured at its last completed iteration.
func (s *Server) Snapshot(w io.Writer) error {
	// Creation order (ids are zero-padded counters) keeps snapshots
	// diffable run to run.
	sessions := s.sessions.allSorted()
	nextID := s.nextID.Load()

	s.broker.mu.Lock()
	hdr := snapDaemon{
		Kind:      "daemon",
		V:         snapshotVersion,
		GlobalJ:   s.broker.globalJ,
		Reserve:   s.broker.reserve,
		ConsumedJ: s.broker.consumed,
		NextID:    nextID,
		Carry:     map[string]float64{},
	}
	for t, c := range s.broker.carry {
		hdr.Carry[t] = c
	}
	s.broker.mu.Unlock()

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, sess := range sessions {
		reg, grant, log, live := sess.snapshotView()
		if !live {
			continue
		}
		if err := enc.Encode(snapSession{
			Kind: "session", ID: sess.id, Reg: reg,
			GrantJ: grant.GrantJ, CommitJ: grant.CommitJ, Weight: grant.Weight,
			ImportedJ: grant.ImportedJ,
		}); err != nil {
			return err
		}
		for _, rec := range log {
			if err := enc.Encode(snapIter{Kind: "iter", SID: sess.id, iterRec: rec}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SnapshotFile writes the snapshot atomically: a temp file in the same
// directory, fsynced, then renamed over the target.
func (s *Server) SnapshotFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Restore rebuilds sessions and the budget ledger from a snapshot
// stream. It must run on a fresh Server (no sessions yet). Each
// session's logged iterations are replayed through a silent telemetry
// sink; the live sink is installed afterwards, so restored state resumes
// reporting without double-counting the replayed decisions.
func (s *Server) Restore(r io.Reader) error {
	if n := s.sessions.size(); n != 0 {
		return fmt.Errorf("server: restore requires a fresh server, have %d sessions", n)
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur *session
	line := 0
	seen := false
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var kind struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(raw, &kind); err != nil {
			return fmt.Errorf("server: snapshot line %d: %w", line, err)
		}
		switch kind.Kind {
		case "daemon":
			if seen {
				return fmt.Errorf("server: snapshot line %d: duplicate daemon header", line)
			}
			seen = true
			var hdr snapDaemon
			if err := json.Unmarshal(raw, &hdr); err != nil {
				return fmt.Errorf("server: snapshot line %d: %w", line, err)
			}
			if hdr.V != snapshotVersion {
				return fmt.Errorf("server: snapshot version %d, want %d", hdr.V, snapshotVersion)
			}
			broker, err := NewBroker(hdr.GlobalJ, hdr.Reserve)
			if err != nil {
				return err
			}
			s.broker = broker
			s.nextID.Store(hdr.NextID)
			broker.Instrument(s.tel.Registry)
			broker.restore(hdr.ConsumedJ, hdr.Carry)
		case "session":
			if !seen {
				return fmt.Errorf("server: snapshot line %d: session before daemon header", line)
			}
			var sn snapSession
			if err := json.Unmarshal(raw, &sn); err != nil {
				return fmt.Errorf("server: snapshot line %d: %w", line, err)
			}
			grant := Grant{Tenant: sn.Reg.Tenant, Weight: sn.Weight, GrantJ: sn.GrantJ, CommitJ: sn.CommitJ, ImportedJ: sn.ImportedJ}
			sess, err := newSession(sn.ID, sn.Reg, grant, s.meter, nil, s.clock())
			if err != nil {
				return fmt.Errorf("server: snapshot line %d: rebuilding session %s: %w", line, sn.ID, err)
			}
			s.broker.readopt(grant)
			s.sessions.put(sess)
			if sn.Reg.Key != "" {
				s.sessions.setKey(sn.Reg.Key, sn.ID)
			}
			cur = sess
		case "iter":
			var it snapIter
			if err := json.Unmarshal(raw, &it); err != nil {
				return fmt.Errorf("server: snapshot line %d: %w", line, err)
			}
			if cur == nil || it.SID != cur.id {
				return fmt.Errorf("server: snapshot line %d: iter for %q outside its session block", line, it.SID)
			}
			if err := cur.replay(it.iterRec); err != nil {
				return err
			}
		default:
			return fmt.Errorf("server: snapshot line %d: unknown kind %q", line, kind.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !seen {
		return fmt.Errorf("server: snapshot has no daemon header")
	}
	// Replay done: attach the live telemetry.
	for _, sess := range s.sessions.all() {
		sess.installLiveSink(telemetry.WithSession(s.tel, sess.id))
	}
	return nil
}

// RestoreFile restores from a snapshot file; a missing file is not an
// error (cold start).
func (s *Server) RestoreFile(path string) (restored bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	defer f.Close()
	if err := s.Restore(f); err != nil {
		return false, err
	}
	return true, nil
}
