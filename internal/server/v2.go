package server

import (
	"errors"
	"io"
	"net"
	"net/http"
	"time"

	"jouleguard/internal/wire"
)

// The v2 hot path: the client POSTs to /v2/stream with an Upgrade
// header, the daemon hijacks the connection, and both sides speak
// length-prefixed binary frames (internal/wire frame layer) from then
// on. Registration, introspection, teardown and the cluster control
// plane stay on v1 JSON/HTTP; only the per-iteration Next/Done/DoneNext
// traffic — the traffic that runs once per governed iteration across
// every session — moves onto the stream.
//
// One goroutine serves each stream. Frames are dispatched strictly in
// order and answered in order (one response frame per request frame),
// and the reply buffer is flushed only when no further request bytes
// are already buffered — so a pipelined burst of frames from many
// multiplexed sessions costs one read and one write on the socket.
// Dispatch itself takes no server-wide lock (see shards.go): a frame
// costs one shard map read plus the session's own mutex.

// v2IdleTimeout bounds how long a stream may sit with no frames before
// the daemon drops it. It is deliberately generous — idle-session
// expiry is the session watchdog's job, not the transport's.
const v2IdleTimeout = 5 * time.Minute

// trackV2 registers a live stream; reports false when the daemon is
// past the point of accepting them (streams must not outlive Shutdown).
func (s *Server) trackV2(conn net.Conn) bool {
	s.v2Mu.Lock()
	defer s.v2Mu.Unlock()
	if s.v2Conns == nil {
		s.v2Conns = map[net.Conn]struct{}{}
	}
	if s.v2Closed {
		return false
	}
	s.v2Conns[conn] = struct{}{}
	return true
}

func (s *Server) untrackV2(conn net.Conn) {
	s.v2Mu.Lock()
	delete(s.v2Conns, conn)
	s.v2Mu.Unlock()
}

// CloseV2Streams severs every live v2 stream and refuses new ones.
// Shutdown calls it once the drain completes — a hijacked stream is
// invisible to the HTTP server's own connection teardown, so without
// this a "stopped" daemon would keep serving decisions over streams
// opened before it died. Clients fall back to v1, which reports the
// drain (or the dead listener) through the normal recovery machinery.
func (s *Server) CloseV2Streams() {
	s.v2Mu.Lock()
	conns := make([]net.Conn, 0, len(s.v2Conns))
	for c := range s.v2Conns {
		conns = append(conns, c)
	}
	s.v2Conns = map[net.Conn]struct{}{}
	s.v2Closed = true
	s.v2Mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (s *Server) handleV2Stream(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Upgrade") != wire.V2Proto {
		writeError(w, &wireError{wire.CodeBadRequest,
			"v2 stream requires Upgrade: " + wire.V2Proto})
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		writeError(w, &wireError{wire.CodeBadRequest, "transport cannot upgrade to v2 frames"})
		return
	}
	conn, bufrw, err := hj.Hijack()
	if err != nil {
		writeError(w, &wireError{wire.CodeBadRequest, "hijack failed: " + err.Error()})
		return
	}
	if !s.trackV2(conn) {
		conn.Close()
		return
	}
	defer s.untrackV2(conn)
	// The HTTP server's read/write deadlines die with the hijack; the
	// stream manages its own idle deadline per frame below.
	_ = conn.SetDeadline(time.Time{})
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: " + wire.V2Proto + "\r\n" +
		"Connection: Upgrade\r\n"
	// Trace capability negotiation: echo the client's header so it knows
	// this daemon accepts FlagTraced frame extensions. A client that never
	// sent it (or an old daemon that never echoes it) stays on strictly
	// base-length frames, so either side may lag the other.
	if r.Header.Get(wire.V2TraceHeader) == "1" {
		resp += wire.V2TraceHeader + ": 1\r\n"
	}
	resp += "\r\n"
	if _, err := bufrw.WriteString(resp); err != nil {
		conn.Close()
		return
	}
	if err := bufrw.Flush(); err != nil {
		conn.Close()
		return
	}
	s.serveV2(conn, bufrw.Reader)
}

// serveV2 runs the frame dispatch loop until the peer goes away or a
// protocol error poisons the stream. The hijacked bufio.Reader is
// adopted by the decoder — it may already hold frames the client
// pipelined behind the upgrade request.
func (s *Server) serveV2(conn net.Conn, br io.Reader) {
	defer conn.Close()
	dec := wire.GetDecoder(br)
	enc := wire.GetEncoder(conn)
	defer wire.PutDecoder(dec)
	defer wire.PutEncoder(enc)

	for {
		_ = conn.SetReadDeadline(time.Now().Add(v2IdleTimeout))
		h, p, err := dec.ReadFrame()
		if err != nil {
			// EOF and closed/timed-out conns are normal teardown; a frame
			// with bad magic or an oversized payload means the peer has
			// lost framing, and the only safe move is to drop the stream.
			return
		}
		if err := s.dispatchV2(enc, h, p); err != nil {
			return
		}
		// Pipelining: answer everything already buffered before paying
		// for a socket write, so a burst of frames costs one flush.
		if dec.Buffered() == 0 {
			if err := enc.Flush(); err != nil {
				return
			}
		}
	}
}

// dispatchV2 serves one frame and encodes exactly one response frame. A
// returned error poisons the stream (encode failure or unknown type);
// per-request failures are TErr frames and keep the stream usable.
func (s *Server) dispatchV2(enc *wire.Encoder, h wire.Hdr, p []byte) error {
	switch h.Type {
	case wire.TNext:
		req, err := wire.ParseNext(h, p)
		if err != nil {
			return enc.Err(h.Session, wire.CodeBadRequest, err.Error())
		}
		sess := s.sessions.getNum(h.Session)
		if sess == nil {
			return s.v2Err(enc, h.Session, &wireError{wire.CodeUnknownSession, "unknown v2 session"})
		}
		if werr := s.v2Gate(); werr != nil {
			return s.v2Err(enc, h.Session, werr)
		}
		resp, err := s.sessionNext(sess, req)
		if err != nil {
			return s.v2Err(enc, h.Session, err)
		}
		return enc.NextResp(h.Session, resp)

	case wire.TDone:
		req, err := wire.ParseDone(h, p)
		if err != nil {
			return enc.Err(h.Session, wire.CodeBadRequest, err.Error())
		}
		sess := s.sessions.getNum(h.Session)
		if sess == nil {
			return s.v2Err(enc, h.Session, &wireError{wire.CodeUnknownSession, "unknown v2 session"})
		}
		// Done is accepted even while draining or fenced, same as v1.
		resp, werr := s.sessionDone(sess, req)
		if werr != nil {
			return s.v2Err(enc, h.Session, werr)
		}
		return enc.DoneResp(h.Session, resp)

	case wire.TDoneNext:
		done, next, err := wire.ParseDoneNext(h, p)
		if err != nil {
			return enc.Err(h.Session, wire.CodeBadRequest, err.Error())
		}
		sess := s.sessions.getNum(h.Session)
		if sess == nil {
			return s.v2Err(enc, h.Session, &wireError{wire.CodeUnknownSession, "unknown v2 session"})
		}
		doneResp, werr := s.sessionDone(sess, done)
		if werr != nil {
			// Done failed: nothing was settled, so no partial answer.
			return s.v2Err(enc, h.Session, werr)
		}
		if werr := s.v2Gate(); werr == nil {
			if nextResp, err := s.sessionNext(sess, next); err == nil {
				return enc.DoneNextResp(h.Session, doneResp, nextResp)
			}
		}
		// Done succeeded but Next cannot be served (workload complete,
		// draining, fenced, ...): answer TDoneResp alone so the settle is
		// not lost, and let the client fetch the Next error over v1.
		return enc.DoneResp(h.Session, doneResp)

	default:
		// Unknown frame type: the peer speaks a newer dialect; drop the
		// stream rather than guess at its payload semantics.
		return errors.New("server: unknown v2 frame type")
	}
}

// v2Gate applies the draining/fencing admission gates the v1 Next
// handler applies (Done deliberately bypasses it).
func (s *Server) v2Gate() *wireError {
	if s.draining.Load() {
		return &wireError{wire.CodeDraining, "daemon is draining; retry against the restarted daemon"}
	}
	if s.fenced.Load() {
		return errLeaseExpired()
	}
	return nil
}

// v2Err renders any dispatch error as a TErr frame with its stable code.
func (s *Server) v2Err(enc *wire.Encoder, session uint32, err error) error {
	code := wire.CodeBadRequest
	var werr *wireError
	if errors.As(err, &werr) {
		code = werr.code
	}
	return enc.Err(session, code, err.Error())
}
