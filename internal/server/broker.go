package server

import (
	"fmt"
	"sync"

	"jouleguard/internal/telemetry"
	"jouleguard/internal/wire"
)

// ErrBudgetExhausted rejects a registration the broker's uncommitted
// budget cannot honor (admission control): admitting it anyway would
// turn one machine-wide guarantee into N broken per-tenant ones.
var ErrBudgetExhausted = fmt.Errorf("server: global energy budget exhausted")

// Broker partitions one machine-wide energy budget across tenants. It is
// a pure ledger — sessions enforce their grants through their governors;
// the broker decides who gets how many joules and keeps the global
// invariant that commitments plus consumption never exceed the pool.
//
// Grants are committed with a reserve multiplier (default 1.05,
// mirroring the runtime's infeasibility slack): a governor guarantees
// its budget only to within that slack, so the broker must hold the
// slack back or the sum of N individually-honoured guarantees could
// still overrun the machine. Invariants (pinned by TestBrokerInvariants):
//
//	I1: committed + consumed <= global          (never over-commit)
//	I2: sum of per-session spend <= global      (follows from I1 + reserve)
//
// Fairness across registrations uses weighted shares with per-tenant
// deficit carry-over, in the spirit of deficit round-robin: a tenant
// that closed a session underspent carries the unspent joules as a
// priority claim on its next share; one that overdrew (within the
// reserve slack) carries the overdraft as a debit. The carry adjusts
// future grants, never the physical ledger — reclamation of unspent
// energy happens at Release regardless.
type Broker struct {
	mu        sync.Mutex
	globalJ   float64
	reserve   float64
	committed float64            // outstanding commitments of active sessions
	consumed  float64            // energy definitively spent by released sessions
	weight    float64            // sum of active session weights
	carry     map[string]float64 // per-tenant deficit ledger (+credit / -debit)
	tenants   map[string]*tenantLedger
	admitted  int
	rejected  int
	active    int

	// Gauges mirroring the ledger on /metrics (nil-safe via OrNop-style
	// guard in publish). reg is retained so per-tenant series can be
	// registered lazily as tenants appear.
	reg                                                 *telemetry.Registry
	gGlobal, gCommitted, gConsumed, gAvailable, gActive *telemetry.Gauge
	cAdmitted, cRejected, cReclaims                     *telemetry.Counter
}

// burnAlpha smooths the per-tenant burn-rate EWMA: heavy enough to ride
// out settle-to-settle jitter, light enough that a tenant going quiet
// shows within a few seconds (same constant the fleet rollup uses).
const burnAlpha = 0.3

// tenantLedger is the broker's per-tenant view: what the qos engine
// observes. Sessions/committed track live grants; spent and the burn
// EWMA accumulate from per-iteration settle notes.
type tenantLedger struct {
	sessions  int
	weight    float64
	committed float64 // live commitments (incl. reserve)
	consumedJ float64 // definitively consumed by released sessions (net of imports)
	spentJ    float64 // cumulative noted spend across all sessions
	burnW     float64 // EWMA of noted spend over client time

	gBurn  *telemetry.Gauge
	cSpent *telemetry.Counter
}

// DefaultReserve is the commitment multiplier covering the runtime's
// tolerated overshoot of the energy goal.
const DefaultReserve = 1.05

// NewBroker builds a broker over a global budget of globalJ joules.
// reserve <= 1 selects DefaultReserve.
func NewBroker(globalJ, reserve float64) (*Broker, error) {
	if globalJ <= 0 {
		return nil, fmt.Errorf("server: global budget %v must be positive", globalJ)
	}
	if reserve <= 1 {
		reserve = DefaultReserve
	}
	return &Broker{globalJ: globalJ, reserve: reserve,
		carry: map[string]float64{}, tenants: map[string]*tenantLedger{}}, nil
}

// Instrument registers the broker's ledger gauges on a metric registry.
func (b *Broker) Instrument(r *telemetry.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reg = r
	b.gGlobal = r.Gauge("jouleguardd_broker_global_joules", "Machine-wide energy budget the broker partitions.")
	b.gGlobal.Set(b.globalJ)
	b.gCommitted = r.Gauge("jouleguardd_broker_committed_joules", "Outstanding budget commitments of active sessions (incl. reserve).")
	b.gConsumed = r.Gauge("jouleguardd_broker_consumed_joules", "Energy definitively spent by released sessions.")
	b.gAvailable = r.Gauge("jouleguardd_broker_available_joules", "Uncommitted budget available for admission.")
	b.gActive = r.Gauge("jouleguardd_broker_active_sessions", "Sessions currently holding a grant.")
	b.cAdmitted = r.Counter("jouleguardd_broker_admissions_total", "Registrations admitted.")
	b.cRejected = r.Counter("jouleguardd_broker_rejections_total", "Registrations rejected by admission control.")
	b.cReclaims = r.Counter("jouleguardd_broker_reclaims_total", "Grants released back to the pool (close or expiry).")
	b.publish()
}

// publish refreshes the gauges; callers hold b.mu.
func (b *Broker) publish() {
	if b.gCommitted == nil {
		return
	}
	b.gCommitted.Set(b.committed)
	b.gConsumed.Set(b.consumed)
	b.gAvailable.Set(b.globalJ - b.committed - b.consumed)
	b.gActive.Set(float64(b.active))
}

// tenantLocked lazily creates a tenant's ledger (and, once the broker
// is instrumented, its per-daemon Prometheus series — the node-local
// source the fleet's jouleguard_fleet_tenant_* series roll up from).
// Callers hold b.mu.
func (b *Broker) tenantLocked(tenant string) *tenantLedger {
	t := b.tenants[tenant]
	if t == nil {
		t = &tenantLedger{}
		b.tenants[tenant] = t
	}
	if t.gBurn == nil && b.reg != nil {
		t.gBurn = b.reg.Gauge("jouleguard_tenant_burn_watts",
			"Per-tenant energy burn rate on this daemon (EWMA over client time).",
			telemetry.Label{Name: "tenant", Value: tenant})
		t.cSpent = b.reg.Counter("jouleguard_tenant_spent_joules",
			"Per-tenant cumulative energy spend on this daemon.",
			telemetry.Label{Name: "tenant", Value: tenant})
		t.gBurn.Set(t.burnW)
		t.cSpent.Add(t.spentJ)
	}
	return t
}

// NoteSpend books deltaJ joules of settled spend against the tenant's
// running ledger, folding the burn-rate EWMA over dtS seconds of
// client time. Called from the session settle path on every iteration;
// it mutates only observation state, never the admission ledger (the
// authoritative spend still lands via Release).
func (b *Broker) NoteSpend(tenant string, deltaJ, dtS float64) {
	if deltaJ < 0 {
		deltaJ = 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.tenantLocked(tenant)
	t.spentJ += deltaJ
	if t.cSpent != nil && deltaJ > 0 {
		t.cSpent.Add(deltaJ)
	}
	if dtS > 0 {
		t.burnW += burnAlpha * (deltaJ/dtS - t.burnW)
		if t.gBurn != nil {
			t.gBurn.Set(t.burnW)
		}
	}
}

// TenantView is one tenant's observable footprint: what the qos engine
// sees (it never reaches into the broker's maps).
type TenantView struct {
	Tenant     string
	Sessions   int
	Weight     float64
	CommitJ    float64 // live commitments (incl. reserve)
	SpentJ     float64 // cumulative noted spend
	BurnW      float64 // smoothed burn rate
	FairJ      float64 // weighted fair share of the pool for its live weight
	FootprintJ float64 // live commitments + released consumption: pool pressure attributable to it
}

// viewLocked renders one ledger; callers hold b.mu. FootprintJ sums
// live commitments with released consumption — live sessions' spend is
// already inside their commitment, so adding spentJ here would
// double-count it.
func (b *Broker) viewLocked(name string, t *tenantLedger) TenantView {
	v := TenantView{
		Tenant: name, Sessions: t.sessions, Weight: t.weight,
		CommitJ: t.committed, SpentJ: t.spentJ, BurnW: t.burnW,
		FootprintJ: t.committed + t.consumedJ,
	}
	if b.weight > 0 && t.weight > 0 {
		v.FairJ = b.globalJ * t.weight / b.weight
	}
	return v
}

// Observe returns one tenant's footprint (zero view if unknown).
func (b *Broker) Observe(tenant string) TenantView {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t := b.tenants[tenant]; t != nil {
		return b.viewLocked(tenant, t)
	}
	return TenantView{Tenant: tenant}
}

// ObserveAll snapshots every tenant the broker has ever seen, plus the
// pool pressure (committed+consumed over global) — the qos engine's
// whole observation in one lock acquisition.
func (b *Broker) ObserveAll() (views []TenantView, pressure float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for name, t := range b.tenants {
		views = append(views, b.viewLocked(name, t))
	}
	if b.globalJ > 0 {
		pressure = (b.committed + b.consumed) / b.globalJ
	}
	return views, pressure
}

// Available returns the uncommitted remainder of the global budget.
func (b *Broker) Available() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.globalJ - b.committed - b.consumed
}

// Global returns the pool the broker partitions.
func (b *Broker) Global() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.globalJ
}

// Consumed returns the energy booked as definitively spent (net of
// imported pre-spend that arrived with adopted sessions).
func (b *Broker) Consumed() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consumed
}

// SetGlobal resizes the pool. In a fleet the node's broker is fed by the
// coordinator's cumulative budget lease: every renewal or extension
// raises the pool, and admission control keeps partitioning whatever the
// lease currently covers. Shrinking below committed+consumed is refused
// — grants already made cannot be clawed back.
func (b *Broker) SetGlobal(globalJ float64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if globalJ < b.committed+b.consumed {
		return fmt.Errorf("server: cannot shrink pool to %.3g J below committed %.3g + consumed %.3g",
			globalJ, b.committed, b.consumed)
	}
	b.globalJ = globalJ
	if b.gGlobal != nil {
		b.gGlobal.Set(globalJ)
	}
	b.publish()
	return nil
}

// Grant is one admitted budget allocation. CommitJ (grant x reserve,
// plus any overdraft penalty) is what the pool holds until Release.
// ImportedJ is pre-spend that arrived with an adopted (migrated)
// session: energy already accounted on another node's lease, so this
// broker neither commits nor consumes it.
type Grant struct {
	Tenant    string
	Weight    float64
	GrantJ    float64
	CommitJ   float64
	ImportedJ float64
}

// Admit runs admission control for a registration. requestJ > 0 asks for
// an absolute grant; requestJ <= 0 asks for a weighted share of the
// uncommitted pool. weight <= 0 counts as 1.
func (b *Broker) Admit(tenant string, weight, requestJ float64) (Grant, error) {
	if weight <= 0 {
		weight = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	avail := b.globalJ - b.committed - b.consumed
	carry := b.carry[tenant]
	var grant float64
	if requestJ > 0 {
		// Absolute request. An overdrafted tenant must cover its debit on
		// top of the request before it is admitted again; a positive
		// credit stays on the ledger for a future weighted share.
		need := requestJ
		if carry < 0 {
			need -= carry
		}
		if need*b.reserve > avail {
			b.rejected++
			if b.cRejected != nil {
				b.cRejected.Inc()
			}
			return Grant{}, fmt.Errorf("%w: request %.3g J (with reserve and carry, %.3g J) exceeds available %.3g J",
				ErrBudgetExhausted, requestJ, need*b.reserve, avail)
		}
		grant = requestJ
	} else {
		// Weighted share of what the pool can still commit, adjusted by
		// the tenant's carry-over.
		base := (avail / b.reserve) * weight / (b.weight + weight)
		grant = base + carry
		if limit := avail / b.reserve; grant > limit {
			grant = limit
		}
		if grant <= 0 {
			b.rejected++
			if b.cRejected != nil {
				b.cRejected.Inc()
			}
			return Grant{}, fmt.Errorf("%w: weighted share %.3g J (carry %.3g J) is not positive",
				ErrBudgetExhausted, base, carry)
		}
	}
	commit := grant * b.reserve
	if requestJ > 0 && carry < 0 {
		// Weighted shares repay a debit by shrinking the grant itself;
		// absolute grants repay it by holding the overdraft headroom in
		// reserve for the session's lifetime.
		commit -= carry * b.reserve
	}
	if carry < 0 || requestJ <= 0 {
		delete(b.carry, tenant) // the ledger has been applied
	}
	b.committed += commit
	b.weight += weight
	b.active++
	b.admitted++
	tl := b.tenantLocked(tenant)
	tl.sessions++
	tl.weight += weight
	tl.committed += commit
	if b.cAdmitted != nil {
		b.cAdmitted.Inc()
	}
	b.publish()
	return Grant{Tenant: tenant, Weight: weight, GrantJ: grant, CommitJ: commit}, nil
}

// AdoptGrant admits a migrated session's remaining budget without
// re-running placement policy: the session arrives with grantJ granted
// fleet-wide and importedJ already spent on its previous owner's lease,
// so this broker commits only the remainder (x reserve). The full grant
// and spend still flow through the tenant's carry ledger at Release, but
// the imported portion never counts against this pool.
func (b *Broker) AdoptGrant(tenant string, weight, grantJ, importedJ float64) (Grant, error) {
	if weight <= 0 {
		weight = 1
	}
	if importedJ < 0 {
		importedJ = 0
	}
	if importedJ > grantJ {
		importedJ = grantJ
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	remaining := grantJ - importedJ
	commit := remaining * b.reserve
	avail := b.globalJ - b.committed - b.consumed
	if commit > avail {
		b.rejected++
		if b.cRejected != nil {
			b.cRejected.Inc()
		}
		return Grant{}, fmt.Errorf("%w: adopting %.3g J remaining (with reserve %.3g J) exceeds available %.3g J",
			ErrBudgetExhausted, remaining, commit, avail)
	}
	b.committed += commit
	b.weight += weight
	b.active++
	b.admitted++
	tl := b.tenantLocked(tenant)
	tl.sessions++
	tl.weight += weight
	tl.committed += commit
	if b.cAdmitted != nil {
		b.cAdmitted.Inc()
	}
	b.publish()
	return Grant{Tenant: tenant, Weight: weight, GrantJ: grantJ, CommitJ: commit, ImportedJ: importedJ}, nil
}

// Release settles a grant when its session closes or expires: the actual
// spend is booked as consumed (net of any imported pre-spend, which was
// consumed on another node's lease), the rest of the commitment returns
// to the pool, and the difference between grant and spend is carried
// over on the tenant's deficit ledger for its next registration.
func (b *Broker) Release(g Grant, spentJ float64) {
	if spentJ < 0 {
		spentJ = 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.committed -= g.CommitJ
	if b.committed < 0 {
		b.committed = 0
	}
	localSpent := spentJ - g.ImportedJ
	if localSpent < 0 {
		localSpent = 0
	}
	b.consumed += localSpent
	b.weight -= g.Weight
	if b.weight < 0 {
		b.weight = 0
	}
	b.active--
	if b.active < 0 {
		b.active = 0
	}
	b.carry[g.Tenant] += g.GrantJ - spentJ
	tl := b.tenantLocked(g.Tenant)
	tl.sessions--
	if tl.sessions < 0 {
		tl.sessions = 0
	}
	tl.weight -= g.Weight
	if tl.weight < 0 {
		tl.weight = 0
	}
	tl.committed -= g.CommitJ
	if tl.committed < 0 {
		tl.committed = 0
	}
	tl.consumedJ += localSpent
	if b.cReclaims != nil {
		b.cReclaims.Inc()
	}
	b.publish()
}

// ReserveFactor returns the commitment multiplier.
func (b *Broker) ReserveFactor() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reserve
}

// Carry returns a tenant's current deficit carry-over (0 if none).
func (b *Broker) Carry(tenant string) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.carry[tenant]
}

// Info snapshots the ledger for introspection.
func (b *Broker) Info() wire.BrokerInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	return wire.BrokerInfo{
		GlobalJ:    b.globalJ,
		CommittedJ: b.committed,
		ConsumedJ:  b.consumed,
		AvailableJ: b.globalJ - b.committed - b.consumed,
		Active:     b.active,
		Admitted:   b.admitted,
		Rejected:   b.rejected,
	}
}

// restore rebuilds the ledger from a snapshot: the consumed total and
// per-tenant carries come from the file; commitments and weights are
// re-accumulated by the sessions as they are restored.
func (b *Broker) restore(consumedJ float64, carry map[string]float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consumed = consumedJ
	b.carry = map[string]float64{}
	for t, c := range carry {
		b.carry[t] = c
	}
	b.publish()
}

// readopt re-registers a restored session's grant without re-running
// admission (the grant was already admitted before the snapshot).
func (b *Broker) readopt(g Grant) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.committed += g.CommitJ
	b.weight += g.Weight
	b.active++
	b.admitted++
	tl := b.tenantLocked(g.Tenant)
	tl.sessions++
	tl.weight += g.Weight
	tl.committed += g.CommitJ
	b.publish()
}
