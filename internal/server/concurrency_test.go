package server

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"jouleguard/internal/wire"
)

// TestConcurrentTenants hammers one daemon with 32 goroutine tenants
// registering, stepping and closing simultaneously (run under -race by
// `make race`). It pins the global conservation guarantee — the sum of
// per-tenant spend never exceeds the global budget — and that session
// IDs are never reused across the churn.
func TestConcurrentTenants(t *testing.T) {
	const (
		tenants = 32
		iters   = 25
		perJ    = 10.0
	)
	// Pool sized so every tenant fits (with reserve) but with little
	// slack to spare, so an accounting leak would overrun it.
	globalJ := tenants * perJ * DefaultReserve * 1.02
	srv := testServer(t, globalJ, nil)
	defer shutdown(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var (
		mu     sync.Mutex
		ids    = map[string]bool{}
		spent  float64
		errors []error
	)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var reg wire.RegisterResponse
			status, werr := doJSON(t, ts, "POST", wire.BasePath, wire.RegisterRequest{
				Tenant: "t", App: "radar", Platform: "Tablet",
				Iterations: iters, BudgetJ: perJ, Seed: int64(i + 1),
			}, &reg)
			if status != 201 {
				mu.Lock()
				errors = append(errors, &wireError{werr.Code, werr.Error})
				mu.Unlock()
				return
			}
			mu.Lock()
			if ids[reg.SessionID] {
				errors = append(errors, &wireError{"dup", "session id reused: " + reg.SessionID})
				mu.Unlock()
				return
			}
			ids[reg.SessionID] = true
			mu.Unlock()

			m := newSimMachine(t, "radar", "Tablet")
			base := wire.BasePath + "/" + reg.SessionID
			var last wire.DoneResponse
			for k := 0; k < iters; k++ {
				var next wire.NextResponse
				if status, _ := doJSON(t, ts, "POST", base+"/next", wire.NextRequest{NowS: m.clockS}, &next); status != 200 {
					break
				}
				acc := m.step(next.AppConfig, next.SysConfig, k)
				if status, _ := doJSON(t, ts, "POST", base+"/done", wire.DoneRequest{
					NowS: m.clockS, EnergyJ: m.energyJ, Accuracy: acc,
				}, &last); status != 200 {
					break
				}
			}
			var closed wire.CloseResponse
			doJSON(t, ts, "DELETE", base, nil, &closed)
			mu.Lock()
			spent += closed.SpentJ
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	for _, err := range errors {
		t.Error(err)
	}
	if spent > globalJ {
		t.Fatalf("conservation violated: tenants spent %.2f J of a %.2f J pool", spent, globalJ)
	}
	info := srv.Broker().Info()
	if info.CommittedJ+info.ConsumedJ > info.GlobalJ+1e-6 {
		t.Fatalf("broker over-committed: %.2f + %.2f > %.2f", info.CommittedJ, info.ConsumedJ, info.GlobalJ)
	}
	if info.Active != 0 {
		t.Fatalf("sessions leaked: %d still active", info.Active)
	}
	if len(ids) != tenants {
		t.Fatalf("expected %d distinct sessions, got %d", tenants, len(ids))
	}
}

// TestConcurrentRegisterDuringShutdown races registrations against
// Shutdown: every registration either succeeds (and its grant is later
// reclaimable) or is refused with the draining code — never half-admitted.
func TestConcurrentRegisterDuringShutdown(t *testing.T) {
	srv := testServer(t, 100000, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	admitted := make([]string, 0)
	var mu sync.Mutex
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var reg wire.RegisterResponse
			status, werr := doJSON(t, ts, "POST", wire.BasePath, wire.RegisterRequest{
				App: "radar", Platform: "Tablet", Iterations: 5, BudgetJ: 10,
			}, &reg)
			switch {
			case status == 201:
				mu.Lock()
				admitted = append(admitted, reg.SessionID)
				mu.Unlock()
			case status == 503 && werr.Code == wire.CodeDraining:
				// refused cleanly
			default:
				t.Errorf("register during shutdown: %d %+v", status, werr)
			}
		}(i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	wg.Wait()

	// Everyone admitted holds a real grant; the ledger must balance.
	info := srv.Broker().Info()
	if info.Active != len(admitted) {
		t.Fatalf("broker sees %d active, %d sessions admitted", info.Active, len(admitted))
	}
	if info.CommittedJ+info.ConsumedJ > info.GlobalJ+1e-6 {
		t.Fatalf("over-committed during shutdown race")
	}
}
