// Package server is the governor daemon's core: a multi-tenant energy
// budget service that manages many concurrent sessions — each wrapping
// its own JouleGuard runtime behind an OnlineController — over the
// versioned JSON-over-HTTP protocol defined in internal/wire. The
// daemon moves the paper's compiled-into-the-application runtime
// (Sec. 3.5) out of process: applications bracket their iterations with
// wire calls instead of function calls, and one machine-wide energy
// budget is partitioned across them by the budget broker.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"jouleguard"
	"jouleguard/internal/telemetry"
	"jouleguard/internal/wire"
)

// Config tunes a Server. GlobalBudgetJ is required.
type Config struct {
	// GlobalBudgetJ is the machine-wide energy budget the broker
	// partitions across tenants.
	GlobalBudgetJ float64
	// Reserve is the broker's commitment multiplier (<= 1 selects
	// DefaultReserve).
	Reserve float64
	// IdleTimeout expires sessions with no wire activity (default 2m).
	IdleTimeout time.Duration
	// SweepInterval paces the expiry watchdog (default 1s; < 0 disables
	// the background goroutine — tests call ExpireIdle directly).
	SweepInterval time.Duration
	// Telemetry is the live observability sink shared by every session
	// (nil builds a private one).
	Telemetry *telemetry.Telemetry
	// Clock is injectable for tests (nil = time.Now). It paces idle
	// expiry only; iteration intervals always use client clocks.
	Clock func() time.Time
}

// Server is the governor daemon: session registry, budget broker, expiry
// watchdog and the wire-protocol HTTP surface.
type Server struct {
	cfg    Config
	broker *Broker
	tel    *telemetry.Telemetry
	clock  func() time.Time

	mu       sync.Mutex
	sessions map[string]*session
	nextID   uint64
	draining bool

	stopSweep chan struct{}
	sweepDone chan struct{}

	mOpened    *telemetry.Counter
	mClosed    *telemetry.Counter
	mExpired   *telemetry.Counter
	mDecisionS *telemetry.Histogram
}

// New builds a Server and starts its expiry watchdog (unless disabled).
func New(cfg Config) (*Server, error) {
	broker, err := NewBroker(cfg.GlobalBudgetJ, cfg.Reserve)
	if err != nil {
		return nil, err
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = time.Second
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.New(0)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	s := &Server{
		cfg:      cfg,
		broker:   broker,
		tel:      tel,
		clock:    clock,
		sessions: map[string]*session{},

		mOpened:  tel.Registry.Counter("jouleguardd_sessions_opened_total", "Sessions admitted."),
		mClosed:  tel.Registry.Counter("jouleguardd_sessions_closed_total", "Sessions closed by their clients."),
		mExpired: tel.Registry.Counter("jouleguardd_sessions_expired_total", "Sessions expired by the idle watchdog."),
		mDecisionS: tel.Registry.Histogram("jouleguardd_decision_seconds",
			"Server-side latency of Next decisions.", telemetry.DurationBuckets()),
	}
	broker.Instrument(tel.Registry)
	if cfg.SweepInterval > 0 {
		s.stopSweep = make(chan struct{})
		s.sweepDone = make(chan struct{})
		go s.sweepLoop()
	}
	return s, nil
}

// Telemetry returns the live sink the server reports into.
func (s *Server) Telemetry() *telemetry.Telemetry { return s.tel }

// Broker returns the budget broker (introspection and tests).
func (s *Server) Broker() *Broker { return s.broker }

// Mount registers the wire-protocol routes on mux. The telemetry
// endpoints are mounted separately (telemetry.Telemetry.Mount) so both
// daemons share that wiring.
func (s *Server) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST "+wire.BasePath, s.handleRegister)
	mux.HandleFunc("GET "+wire.BasePath, s.handleList)
	mux.HandleFunc("GET "+wire.BasePath+"/{id}", s.handleInfo)
	mux.HandleFunc("POST "+wire.BasePath+"/{id}/next", s.handleNext)
	mux.HandleFunc("POST "+wire.BasePath+"/{id}/done", s.handleDone)
	mux.HandleFunc("DELETE "+wire.BasePath+"/{id}", s.handleClose)
}

// Handler returns the daemon's full surface: the wire protocol plus the
// shared telemetry exposition (/metrics, /healthz, /decisions, pprof).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.tel.Mount(mux)
	s.Mount(mux)
	return mux
}

// ---------------------------------------------------------------------
// Session lifecycle.

// Register admits a new session (the wire POST /v1/sessions).
func (s *Server) Register(req wire.RegisterRequest) (wire.RegisterResponse, error) {
	if req.Iterations <= 0 {
		return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest,
			fmt.Sprintf("iterations %d must be positive", req.Iterations)}
	}
	if req.Factor < 0 || req.BudgetJ < 0 {
		return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest, "factor and budget_j must be non-negative"}
	}
	if req.Factor > 0 && req.BudgetJ > 0 {
		return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest, "set at most one of factor and budget_j"}
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return wire.RegisterResponse{}, &wireError{wire.CodeDraining, "daemon is draining"}
	}
	s.mu.Unlock()

	// Resolve the testbed first: it validates app/platform and prices a
	// factor-based request in joules.
	tb, err := jouleguard.NewTestbed(req.App, req.Platform)
	if err != nil {
		return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest, err.Error()}
	}
	request := req.BudgetJ
	if req.Factor > 0 {
		request, err = tb.Budget(req.Factor, req.Iterations)
		if err != nil {
			return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest, err.Error()}
		}
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
		req.Tenant = tenant
	}
	grant, err := s.broker.Admit(tenant, req.Weight, request)
	if err != nil {
		if errors.Is(err, ErrBudgetExhausted) {
			return wire.RegisterResponse{}, &wireError{wire.CodeBudgetExhausted, err.Error()}
		}
		return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest, err.Error()}
	}

	now := s.clock()
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("s-%06d", s.nextID)
	s.mu.Unlock()
	sess, err := newSession(id, req, grant, telemetry.WithSession(s.tel, id), now)
	if err != nil {
		s.broker.Release(grant, 0)
		return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest, err.Error()}
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.broker.Release(grant, 0)
		return wire.RegisterResponse{}, &wireError{wire.CodeDraining, "daemon is draining"}
	}
	s.sessions[id] = sess
	s.mu.Unlock()
	s.mOpened.Inc()
	return wire.RegisterResponse{
		SessionID:  id,
		GrantJ:     grant.GrantJ,
		Iterations: req.Iterations,
		AppConfigs: sess.tb.App.NumConfigs(),
		SysConfigs: sess.tb.Platform.NumConfigs(),
	}, nil
}

// lookup finds a session by id.
func (s *Server) lookup(id string) (*session, *wireError) {
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		return nil, &wireError{wire.CodeUnknownSession, fmt.Sprintf("unknown session %q", id)}
	}
	return sess, nil
}

// Close tears down a session and reclaims its budget.
func (s *Server) Close(id string) (wire.CloseResponse, error) {
	sess, werr := s.lookup(id)
	if werr != nil {
		return wire.CloseResponse{}, werr
	}
	spent, release := sess.teardown(stateClosed)
	if !release {
		return wire.CloseResponse{}, errSessionClosed("session already closed")
	}
	s.broker.Release(sess.grant, spent)
	s.mClosed.Inc()
	return wire.CloseResponse{
		SessionID:  id,
		SpentJ:     spent,
		ReclaimedJ: sess.grant.GrantJ - spent,
	}, nil
}

// ExpireIdle expires every live session whose last wire activity is
// older than its timeout, releasing the grants. It returns how many
// sessions it expired; the sweep loop calls it on SweepInterval.
func (s *Server) ExpireIdle() int {
	now := s.clock()
	s.mu.Lock()
	candidates := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		candidates = append(candidates, sess)
	}
	s.mu.Unlock()
	expired := 0
	for _, sess := range candidates {
		last, live := sess.idleSince()
		if !live {
			continue
		}
		timeout := s.cfg.IdleTimeout
		if sess.reg.IdleTimeoutS > 0 {
			timeout = time.Duration(sess.reg.IdleTimeoutS * float64(time.Second))
		}
		if now.Sub(last) <= timeout {
			continue
		}
		if spent, release := sess.teardown(stateExpired); release {
			s.broker.Release(sess.grant, spent)
			s.mExpired.Inc()
			expired++
		}
	}
	return expired
}

// sweepLoop is the expiry watchdog.
func (s *Server) sweepLoop() {
	defer close(s.sweepDone)
	t := time.NewTicker(s.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.ExpireIdle()
		case <-s.stopSweep:
			return
		}
	}
}

// Shutdown drains the daemon: new registrations and Next calls are
// refused with a retryable "draining" error, in-flight iterations get
// until ctx's deadline to report Done, and the expiry watchdog stops.
// After Shutdown returns, Snapshot captures a clean state (armed
// sessions that never reported are snapshotted at their last completed
// iteration; their clients re-bracket the lost iteration on restore).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	if s.stopSweep != nil {
		close(s.stopSweep)
		<-s.sweepDone
		s.stopSweep = nil
	}
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if !s.anyInFlight() {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: drain incomplete: %w", ctx.Err())
		case <-tick.C:
		}
	}
}

func (s *Server) anyInFlight() bool {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		if sess.inFlight() {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// HTTP surface.

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps protocol codes onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	code, msg := wire.CodeBadRequest, err.Error()
	var werr *wireError
	if errors.As(err, &werr) {
		code = werr.code
	}
	status := http.StatusBadRequest
	switch code {
	case wire.CodeBudgetExhausted:
		status = http.StatusTooManyRequests
	case wire.CodeUnknownSession:
		status = http.StatusNotFound
	case wire.CodeBadSequence, wire.CodeSessionComplete:
		status = http.StatusConflict
	case wire.CodeSessionClosed:
		status = http.StatusGone
	case wire.CodeDraining:
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, wire.ErrorResponse{Code: code, Error: msg})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, &wireError{wire.CodeBadRequest, "invalid JSON body: " + err.Error()})
		return false
	}
	return true
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req wire.RegisterRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.Register(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleNext(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, &wireError{wire.CodeDraining, "daemon is draining; retry against the restarted daemon"})
		return
	}
	sess, werr := s.lookup(r.PathValue("id"))
	if werr != nil {
		writeError(w, werr)
		return
	}
	var req wire.NextRequest
	if !decodeBody(w, r, &req) {
		return
	}
	start := time.Now()
	resp, werr2 := sess.next(req, s.clock())
	if werr2 != nil {
		writeError(w, werr2)
		return
	}
	s.mDecisionS.Observe(time.Since(start).Seconds())
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDone(w http.ResponseWriter, r *http.Request) {
	sess, werr := s.lookup(r.PathValue("id"))
	if werr != nil {
		writeError(w, werr)
		return
	}
	var req wire.DoneRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, werr2 := sess.done(req, s.clock())
	if werr2 != nil {
		writeError(w, werr2)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	resp, err := s.Close(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	sess, werr := s.lookup(r.PathValue("id"))
	if werr != nil {
		writeError(w, werr)
		return
	}
	writeJSON(w, http.StatusOK, sess.info(true))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	resp := wire.ListResponse{Broker: s.broker.Info()}
	for _, sess := range sessions {
		resp.Sessions = append(resp.Sessions, sess.info(false))
	}
	// Stable order for scripts and eyeballs: ids are zero-padded
	// counters, so lexicographic order is creation order.
	sort.Slice(resp.Sessions, func(i, j int) bool {
		return resp.Sessions[i].SessionID < resp.Sessions[j].SessionID
	})
	writeJSON(w, http.StatusOK, resp)
}
