// Package server is the governor daemon's core: a multi-tenant energy
// budget service that manages many concurrent sessions — each wrapping
// its own JouleGuard runtime behind an OnlineController — over the
// versioned JSON-over-HTTP protocol defined in internal/wire. The
// daemon moves the paper's compiled-into-the-application runtime
// (Sec. 3.5) out of process: applications bracket their iterations with
// wire calls instead of function calls, and one machine-wide energy
// budget is partitioned across them by the budget broker.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"jouleguard"
	"jouleguard/internal/telemetry"
	"jouleguard/internal/wire"
)

// Config tunes a Server. GlobalBudgetJ is required.
type Config struct {
	// GlobalBudgetJ is the machine-wide energy budget the broker
	// partitions across tenants.
	GlobalBudgetJ float64
	// Reserve is the broker's commitment multiplier (<= 1 selects
	// DefaultReserve).
	Reserve float64
	// IdleTimeout expires sessions with no wire activity (default 2m).
	IdleTimeout time.Duration
	// SweepInterval paces the expiry watchdog (default 1s; < 0 disables
	// the background goroutine — tests call ExpireIdle directly).
	SweepInterval time.Duration
	// Telemetry is the live observability sink shared by every session
	// (nil builds a private one).
	Telemetry *telemetry.Telemetry
	// Clock is injectable for tests (nil = time.Now). It paces idle
	// expiry only; iteration intervals always use client clocks.
	Clock func() time.Time
}

// Server is the governor daemon: session registry, budget broker, expiry
// watchdog and the wire-protocol HTTP surface.
type Server struct {
	cfg    Config
	broker *Broker
	tel    *telemetry.Telemetry
	clock  func() time.Time

	mu       sync.Mutex
	sessions map[string]*session
	byKey    map[string]string // session key -> id (cluster attach/adopt)
	nextID   uint64
	draining bool
	fenced   bool
	assist   func(needJ float64) bool

	stopSweep chan struct{}
	sweepDone chan struct{}

	mOpened    *telemetry.Counter
	mClosed    *telemetry.Counter
	mExpired   *telemetry.Counter
	mAdopted   *telemetry.Counter
	mDecisionS *telemetry.Histogram
}

// New builds a Server and starts its expiry watchdog (unless disabled).
func New(cfg Config) (*Server, error) {
	broker, err := NewBroker(cfg.GlobalBudgetJ, cfg.Reserve)
	if err != nil {
		return nil, err
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = time.Second
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.New(0)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	s := &Server{
		cfg:      cfg,
		broker:   broker,
		tel:      tel,
		clock:    clock,
		sessions: map[string]*session{},
		byKey:    map[string]string{},

		mOpened:  tel.Registry.Counter("jouleguardd_sessions_opened_total", "Sessions admitted."),
		mClosed:  tel.Registry.Counter("jouleguardd_sessions_closed_total", "Sessions closed by their clients."),
		mExpired: tel.Registry.Counter("jouleguardd_sessions_expired_total", "Sessions expired by the idle watchdog."),
		mAdopted: tel.Registry.Counter("jouleguardd_sessions_adopted_total", "Sessions adopted from a failed fleet node."),
		mDecisionS: tel.Registry.Histogram("jouleguardd_decision_seconds",
			"Server-side latency of Next decisions.", telemetry.DurationBuckets()),
	}
	broker.Instrument(tel.Registry)
	if cfg.SweepInterval > 0 {
		s.stopSweep = make(chan struct{})
		s.sweepDone = make(chan struct{})
		go s.sweepLoop()
	}
	return s, nil
}

// Telemetry returns the live sink the server reports into.
func (s *Server) Telemetry() *telemetry.Telemetry { return s.tel }

// Broker returns the budget broker (introspection and tests).
func (s *Server) Broker() *Broker { return s.broker }

// Mount registers the wire-protocol routes on mux. The telemetry
// endpoints are mounted separately (telemetry.Telemetry.Mount) so both
// daemons share that wiring.
func (s *Server) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST "+wire.BasePath, s.handleRegister)
	mux.HandleFunc("GET "+wire.BasePath, s.handleList)
	mux.HandleFunc("GET "+wire.BasePath+"/{id}", s.handleInfo)
	mux.HandleFunc("POST "+wire.BasePath+"/{id}/next", s.handleNext)
	mux.HandleFunc("POST "+wire.BasePath+"/{id}/done", s.handleDone)
	mux.HandleFunc("DELETE "+wire.BasePath+"/{id}", s.handleClose)
}

// Handler returns the daemon's full surface: the wire protocol plus the
// shared telemetry exposition (/metrics, /healthz, /decisions, pprof).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.tel.Mount(mux)
	s.Mount(mux)
	return mux
}

// ---------------------------------------------------------------------
// Session lifecycle.

// Register admits a new session (the wire POST /v1/sessions).
func (s *Server) Register(req wire.RegisterRequest) (wire.RegisterResponse, error) {
	if req.Iterations <= 0 {
		return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest,
			fmt.Sprintf("iterations %d must be positive", req.Iterations)}
	}
	if req.Factor < 0 || req.BudgetJ < 0 {
		return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest, "factor and budget_j must be non-negative"}
	}
	if req.Factor > 0 && req.BudgetJ > 0 {
		return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest, "set at most one of factor and budget_j"}
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return wire.RegisterResponse{}, &wireError{wire.CodeDraining, "daemon is draining"}
	}
	if s.fenced {
		s.mu.Unlock()
		return wire.RegisterResponse{}, errLeaseExpired()
	}
	s.mu.Unlock()

	// A register carrying the key of a live session attaches to it: the
	// fleet failover path, where a client re-registers against the node
	// that restored its session.
	if req.Key != "" {
		if resp, werr, ok := s.attach(req); ok {
			if werr != nil {
				return wire.RegisterResponse{}, werr
			}
			return resp, nil
		}
	}

	// Resolve the testbed first: it validates app/platform and prices a
	// factor-based request in joules.
	tb, err := jouleguard.NewTestbed(req.App, req.Platform)
	if err != nil {
		return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest, err.Error()}
	}
	request := req.BudgetJ
	if req.Factor > 0 {
		request, err = tb.Budget(req.Factor, req.Iterations)
		if err != nil {
			return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest, err.Error()}
		}
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
		req.Tenant = tenant
	}
	grant, err := s.admitWithAssist(tenant, req.Weight, request)
	if err != nil {
		if errors.Is(err, ErrBudgetExhausted) {
			return wire.RegisterResponse{}, &wireError{wire.CodeBudgetExhausted, err.Error()}
		}
		return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest, err.Error()}
	}

	now := s.clock()
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("s-%06d", s.nextID)
	s.mu.Unlock()
	sess, err := newSession(id, req, grant, telemetry.WithSession(s.tel, id), now)
	if err != nil {
		s.broker.Release(grant, 0)
		return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest, err.Error()}
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.broker.Release(grant, 0)
		return wire.RegisterResponse{}, &wireError{wire.CodeDraining, "daemon is draining"}
	}
	s.sessions[id] = sess
	if req.Key != "" {
		s.byKey[req.Key] = id
	}
	s.mu.Unlock()
	s.mOpened.Inc()
	return wire.RegisterResponse{
		SessionID:  id,
		GrantJ:     grant.GrantJ,
		Iterations: req.Iterations,
		AppConfigs: sess.tb.App.NumConfigs(),
		SysConfigs: sess.tb.Platform.NumConfigs(),
	}, nil
}

// attach resolves a register-by-key against an existing live session.
// ok=false means no live session holds the key and registration should
// proceed fresh; a non-nil werr reports an attach that cannot be honored
// (the key is held by a session with a different shape).
func (s *Server) attach(req wire.RegisterRequest) (wire.RegisterResponse, *wireError, bool) {
	s.mu.Lock()
	sess := s.sessions[s.byKey[req.Key]]
	s.mu.Unlock()
	if sess == nil {
		return wire.RegisterResponse{}, nil, false
	}
	resp, reg, live := sess.attachView()
	if !live {
		return wire.RegisterResponse{}, nil, false
	}
	if reg.App != req.App || reg.Platform != req.Platform || reg.Iterations != req.Iterations {
		return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest,
			fmt.Sprintf("key %q is held by a live session with a different workload (%s/%s x%d)",
				req.Key, reg.App, reg.Platform, reg.Iterations)}, true
	}
	return resp, nil, true
}

// admitWithAssist runs broker admission, giving the admission-assist
// hook (a cluster member asking its coordinator for a lease extension)
// one chance to grow the pool before an absolute request is rejected.
func (s *Server) admitWithAssist(tenant string, weight, requestJ float64) (Grant, error) {
	grant, err := s.broker.Admit(tenant, weight, requestJ)
	if err == nil || !errors.Is(err, ErrBudgetExhausted) || requestJ <= 0 {
		return grant, err
	}
	s.mu.Lock()
	assist := s.assist
	s.mu.Unlock()
	if assist == nil {
		return grant, err
	}
	// Concurrent admissions race for the same extension (each computes
	// its shortfall before the others consume the pool), so recompute and
	// re-ask until admission sticks or the coordinator stops granting.
	// The ask overshoots the exact shortfall by 1% of the request: an
	// exact grant lands available == commit to within a ulp, turning the
	// retried admission into a coin flip.
	for attempt := 0; attempt < 6; attempt++ {
		need := requestJ*s.broker.ReserveFactor() - s.broker.Available() + requestJ*0.01
		// A refused assist still retries admission and stays in the loop:
		// concurrent heartbeats, extensions by competing admissions, and
		// out-of-order extension replies all grow the pool underneath us.
		assist(need)
		grant, retryErr := s.broker.Admit(tenant, weight, requestJ)
		if retryErr == nil || !errors.Is(retryErr, ErrBudgetExhausted) {
			return grant, retryErr
		}
	}
	return grant, err
}

// SetAdmitAssist installs the hook called when broker admission fails
// for lack of pool: in a fleet the member uses it to request an
// on-demand lease extension from the coordinator, then admission is
// retried. The hook returns whether the pool grew.
func (s *Server) SetAdmitAssist(f func(needJ float64) bool) {
	s.mu.Lock()
	s.assist = f
	s.mu.Unlock()
}

// SetFenced flips the node's self-fence. A fenced daemon refuses to arm
// new iterations or admit registrations (retryable lease_expired), so a
// node cut off from its coordinator stops drawing down a lease the
// coordinator may already have reclaimed. Done is still accepted: the
// energy of an in-flight iteration is spent either way, and accounting
// it keeps the ledger truthful.
func (s *Server) SetFenced(fenced bool) {
	s.mu.Lock()
	s.fenced = fenced
	s.mu.Unlock()
}

// Fenced reports the self-fence state.
func (s *Server) Fenced() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fenced
}

// Adopt rebuilds a migrated session from its registration and iteration
// log — the cross-node analogue of snapshot restore. The governor stack
// is rebuilt and the log replayed (bit-identical state, same as a local
// restore), then the remaining grant is admitted into this node's
// broker with the pre-spend marked imported. Re-pushing an adoption the
// node already holds returns the existing session id.
func (s *Server) Adopt(a wire.AdoptSession) (string, error) {
	if a.Key == "" {
		return "", &wireError{wire.CodeBadRequest, "adoption requires a session key"}
	}
	if a.Reg.Iterations <= 0 {
		return "", &wireError{wire.CodeBadRequest, "adoption with non-positive iterations"}
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return "", &wireError{wire.CodeDraining, "daemon is draining"}
	}
	if prev := s.sessions[s.byKey[a.Key]]; prev != nil {
		if _, _, live := prev.attachView(); live {
			s.mu.Unlock()
			return prev.id, nil
		}
	}
	s.nextID++
	id := fmt.Sprintf("s-%06d", s.nextID)
	s.mu.Unlock()

	a.Reg.Key = a.Key
	if a.Reg.Tenant == "" {
		a.Reg.Tenant = "default"
	}
	sess, err := newSession(id, a.Reg, Grant{Tenant: a.Reg.Tenant, Weight: a.Reg.Weight, GrantJ: a.GrantJ}, nil, s.clock())
	if err != nil {
		return "", &wireError{wire.CodeBadRequest, err.Error()}
	}
	for _, rec := range a.Log {
		if err := sess.replay(rec); err != nil {
			return "", err
		}
	}
	imported := sess.spent()
	grant, err := s.adoptAdmit(a.Reg.Tenant, a.Reg.Weight, a.GrantJ, imported)
	if err != nil {
		if errors.Is(err, ErrBudgetExhausted) {
			return "", &wireError{wire.CodeBudgetExhausted, err.Error()}
		}
		return "", err
	}
	sess.setGrant(grant)
	sess.installLiveSink(telemetry.WithSession(s.tel, id))
	s.mu.Lock()
	s.sessions[id] = sess
	s.byKey[a.Key] = id
	s.mu.Unlock()
	s.mAdopted.Inc()
	return id, nil
}

// adoptAdmit is AdoptGrant with one admission-assist retry, mirroring
// admitWithAssist for the failover path.
func (s *Server) adoptAdmit(tenant string, weight, grantJ, importedJ float64) (Grant, error) {
	grant, err := s.broker.AdoptGrant(tenant, weight, grantJ, importedJ)
	if err == nil || !errors.Is(err, ErrBudgetExhausted) {
		return grant, err
	}
	s.mu.Lock()
	assist := s.assist
	s.mu.Unlock()
	if assist == nil {
		return grant, err
	}
	for attempt := 0; attempt < 6; attempt++ {
		need := (grantJ-importedJ)*s.broker.ReserveFactor() - s.broker.Available() + grantJ*0.01
		assist(need)
		grant, retryErr := s.broker.AdoptGrant(tenant, weight, grantJ, importedJ)
		if retryErr == nil || !errors.Is(retryErr, ErrBudgetExhausted) {
			return grant, retryErr
		}
	}
	return grant, err
}

// TotalSpentJ is the node's cumulative energy spend against its own
// budget pool: released sessions' consumption plus live sessions'
// accounted spend, net of imported pre-spend (energy adopted sessions
// already drew from another node's lease). It is monotone while the
// daemon lives; cluster members report it in every heartbeat.
func (s *Server) TotalSpentJ() float64 {
	total := s.broker.Consumed()
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		if _, live := sess.idleSince(); live {
			total += sess.localSpent()
		}
	}
	return total
}

// Export copies every session's reportable state, with each iteration
// log trimmed to what the caller has not yet acked (from[id], missing =
// everything). The cluster member builds heartbeat session reports from
// it; ordering is stable (creation order) for deterministic wire bodies.
func (s *Server) Export(from map[string]int) []SessionExport {
	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	sessions := make([]*session, 0, len(ids))
	for _, id := range ids {
		sessions = append(sessions, s.sessions[id])
	}
	s.mu.Unlock()
	out := make([]SessionExport, 0, len(sessions))
	for _, sess := range sessions {
		out = append(out, sess.export(from[sess.id]))
	}
	return out
}

// lookup finds a session by id.
func (s *Server) lookup(id string) (*session, *wireError) {
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		return nil, &wireError{wire.CodeUnknownSession, fmt.Sprintf("unknown session %q", id)}
	}
	return sess, nil
}

// Close tears down a session and reclaims its budget.
func (s *Server) Close(id string) (wire.CloseResponse, error) {
	sess, werr := s.lookup(id)
	if werr != nil {
		return wire.CloseResponse{}, werr
	}
	spent, release := sess.teardown(stateClosed)
	if !release {
		return wire.CloseResponse{}, errSessionClosed("session already closed")
	}
	s.broker.Release(sess.grant, spent)
	s.mClosed.Inc()
	return wire.CloseResponse{
		SessionID:  id,
		SpentJ:     spent,
		ReclaimedJ: sess.grant.GrantJ - spent,
	}, nil
}

// ExpireIdle expires every live session whose last wire activity is
// older than its timeout, releasing the grants. It returns how many
// sessions it expired; the sweep loop calls it on SweepInterval.
func (s *Server) ExpireIdle() int {
	now := s.clock()
	s.mu.Lock()
	candidates := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		candidates = append(candidates, sess)
	}
	s.mu.Unlock()
	expired := 0
	for _, sess := range candidates {
		last, live := sess.idleSince()
		if !live {
			continue
		}
		timeout := s.cfg.IdleTimeout
		if sess.reg.IdleTimeoutS > 0 {
			timeout = time.Duration(sess.reg.IdleTimeoutS * float64(time.Second))
		}
		if now.Sub(last) <= timeout {
			continue
		}
		if spent, release := sess.teardown(stateExpired); release {
			s.broker.Release(sess.grant, spent)
			s.mExpired.Inc()
			expired++
		}
	}
	return expired
}

// sweepLoop is the expiry watchdog.
func (s *Server) sweepLoop() {
	defer close(s.sweepDone)
	t := time.NewTicker(s.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.ExpireIdle()
		case <-s.stopSweep:
			return
		}
	}
}

// Shutdown drains the daemon: new registrations and Next calls are
// refused with a retryable "draining" error, in-flight iterations get
// until ctx's deadline to report Done, and the expiry watchdog stops.
// After Shutdown returns, Snapshot captures a clean state (armed
// sessions that never reported are snapshotted at their last completed
// iteration; their clients re-bracket the lost iteration on restore).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	if s.stopSweep != nil {
		close(s.stopSweep)
		<-s.sweepDone
		s.stopSweep = nil
	}
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if !s.anyInFlight() {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: drain incomplete: %w", ctx.Err())
		case <-tick.C:
		}
	}
}

func (s *Server) anyInFlight() bool {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		if sess.inFlight() {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// HTTP surface.

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps protocol codes onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	code, msg := wire.CodeBadRequest, err.Error()
	var werr *wireError
	if errors.As(err, &werr) {
		code = werr.code
	}
	status := http.StatusBadRequest
	switch code {
	case wire.CodeBudgetExhausted:
		status = http.StatusTooManyRequests
	case wire.CodeUnknownSession:
		status = http.StatusNotFound
	case wire.CodeBadSequence, wire.CodeSessionComplete, wire.CodeUnknownNode:
		status = http.StatusConflict
	case wire.CodeSessionClosed:
		status = http.StatusGone
	case wire.CodeDraining, wire.CodeLeaseExpired, wire.CodeNoNodes:
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, wire.ErrorResponse{Code: code, Error: msg})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, &wireError{wire.CodeBadRequest, "invalid JSON body: " + err.Error()})
		return false
	}
	return true
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req wire.RegisterRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.Register(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleNext(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining, fenced := s.draining, s.fenced
	s.mu.Unlock()
	if draining {
		writeError(w, &wireError{wire.CodeDraining, "daemon is draining; retry against the restarted daemon"})
		return
	}
	if fenced {
		writeError(w, errLeaseExpired())
		return
	}
	sess, werr := s.lookup(r.PathValue("id"))
	if werr != nil {
		writeError(w, werr)
		return
	}
	var req wire.NextRequest
	if !decodeBody(w, r, &req) {
		return
	}
	start := time.Now()
	resp, werr2 := sess.next(req, s.clock())
	if werr2 != nil {
		writeError(w, werr2)
		return
	}
	s.mDecisionS.Observe(time.Since(start).Seconds())
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDone(w http.ResponseWriter, r *http.Request) {
	sess, werr := s.lookup(r.PathValue("id"))
	if werr != nil {
		writeError(w, werr)
		return
	}
	var req wire.DoneRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, werr2 := sess.done(req, s.clock())
	if werr2 != nil {
		writeError(w, werr2)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	resp, err := s.Close(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	sess, werr := s.lookup(r.PathValue("id"))
	if werr != nil {
		writeError(w, werr)
		return
	}
	writeJSON(w, http.StatusOK, sess.info(true))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	resp := wire.ListResponse{Broker: s.broker.Info()}
	for _, sess := range sessions {
		resp.Sessions = append(resp.Sessions, sess.info(false))
	}
	// Stable order for scripts and eyeballs: ids are zero-padded
	// counters, so lexicographic order is creation order.
	sort.Slice(resp.Sessions, func(i, j int) bool {
		return resp.Sessions[i].SessionID < resp.Sessions[j].SessionID
	})
	writeJSON(w, http.StatusOK, resp)
}
