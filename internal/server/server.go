// Package server is the governor daemon's core: a multi-tenant energy
// budget service that manages many concurrent sessions — each wrapping
// its own JouleGuard runtime behind an OnlineController — over the
// versioned JSON-over-HTTP protocol defined in internal/wire. The
// daemon moves the paper's compiled-into-the-application runtime
// (Sec. 3.5) out of process: applications bracket their iterations with
// wire calls instead of function calls, and one machine-wide energy
// budget is partitioned across them by the budget broker.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"jouleguard"
	"jouleguard/internal/measure"
	"jouleguard/internal/qos"
	"jouleguard/internal/telemetry"
	"jouleguard/internal/wire"
)

// Config tunes a Server. GlobalBudgetJ is required.
type Config struct {
	// GlobalBudgetJ is the machine-wide energy budget the broker
	// partitions across tenants.
	GlobalBudgetJ float64
	// Reserve is the broker's commitment multiplier (<= 1 selects
	// DefaultReserve).
	Reserve float64
	// IdleTimeout expires sessions with no wire activity (default 2m).
	IdleTimeout time.Duration
	// SweepInterval paces the expiry watchdog (default 1s; < 0 disables
	// the background goroutine — tests call ExpireIdle directly).
	SweepInterval time.Duration
	// Telemetry is the live observability sink shared by every session
	// (nil builds a private one).
	Telemetry *telemetry.Telemetry
	// Clock is injectable for tests (nil = time.Now). It paces idle
	// expiry only; iteration intervals always use client clocks.
	Clock func() time.Time
	// Meter switches the daemon to measured-energy mode: every session
	// iteration is bracketed by an attribution window on this
	// measurement service, and the joules the pipeline attributes to the
	// window — gate-cleaned, baseline-subtracted, weight-shared across
	// concurrent sessions — are what the ledger debits. Client-reported
	// readings are never billed directly. Nil (the default) keeps the
	// wire contract as-is: clients report their own meters.
	Meter *measure.Service
	// MeterStimulus, for a simulated Meter backend, feeds each settled
	// iteration's client-reported energy delta and duration into the
	// simulator as physical stimulus (e.g. SimMeter.Deposit plus a
	// VirtualClock advance). Nil for hardware backends, which burn real
	// joules on their own.
	MeterStimulus func(joules, durS float64)
	// QoS tunes the tenant-protection engine. The zero value keeps the
	// local ladder dormant (QoS.Enabled=false): fleet-shipped policy is
	// still enforced, but this node never escalates tenants on its own.
	QoS qos.Config
}

// Server is the governor daemon: session registry, budget broker, expiry
// watchdog and the wire-protocol surfaces (v1 JSON/HTTP, v2 binary
// frames). The session registry is striped (see shards.go) and the
// drain/fence bits are atomics, so the per-iteration decision path
// never takes a server-wide lock.
type Server struct {
	cfg    Config
	broker *Broker
	qos    *qos.Engine
	tel    *telemetry.Telemetry
	clock  func() time.Time

	sessions *sessionMap
	nextID   atomic.Uint64
	draining atomic.Bool
	fenced   atomic.Bool

	// meter is the shared measurement hook in meter mode (nil otherwise);
	// see Config.Meter.
	meter *meterHook

	assistMu sync.Mutex
	assist   func(needJ float64) bool

	v2Mu     sync.Mutex
	v2Conns  map[net.Conn]struct{}
	v2Closed bool

	// Terminal (closed/expired) sessions stay introspectable for a
	// while, but not forever: a churn-heavy daemon would otherwise grow
	// the registry without bound. retired is the FIFO eviction queue.
	retiredMu sync.Mutex
	retired   []*session

	stopSweep chan struct{}
	sweepDone chan struct{}

	// traced queues the trace contexts of sampled settles for the next
	// heartbeat (spans.go).
	traced traceRefs

	mOpened    *telemetry.Counter
	mClosed    *telemetry.Counter
	mExpired   *telemetry.Counter
	mAdopted   *telemetry.Counter
	mShed      *telemetry.Counter
	mDecisionS *telemetry.Histogram

	// Conservation-auditor drift gauges, one per custody layer
	// (provenance.go).
	mDriftPool  *telemetry.Gauge
	mDriftGrant *telemetry.Gauge
	mDriftIters *telemetry.Gauge
}

// New builds a Server and starts its expiry watchdog (unless disabled).
func New(cfg Config) (*Server, error) {
	broker, err := NewBroker(cfg.GlobalBudgetJ, cfg.Reserve)
	if err != nil {
		return nil, err
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = time.Second
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.New(0)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	s := &Server{
		cfg:      cfg,
		broker:   broker,
		tel:      tel,
		clock:    clock,
		sessions: newSessionMap(),

		mOpened:  tel.Registry.Counter("jouleguardd_sessions_opened_total", "Sessions admitted."),
		mClosed:  tel.Registry.Counter("jouleguardd_sessions_closed_total", "Sessions closed by their clients."),
		mExpired: tel.Registry.Counter("jouleguardd_sessions_expired_total", "Sessions expired by the idle watchdog."),
		mAdopted: tel.Registry.Counter("jouleguardd_sessions_adopted_total", "Sessions adopted from a failed fleet node."),
		mShed:    tel.Registry.Counter("jouleguardd_sessions_shed_total", "Sessions killed by tenant shedding (qos ladder or overload)."),
		mDecisionS: tel.Registry.Histogram("jouleguardd_decision_seconds",
			"Server-side latency of Next decisions.", telemetry.MicroDurationBuckets()),

		mDriftPool: tel.Registry.Gauge("jouleguard_provenance_drift_joules",
			"Conservation drift per custody layer (0 when the books balance).",
			telemetry.Label{Name: "layer", Value: "pool"}),
		mDriftGrant: tel.Registry.Gauge("jouleguard_provenance_drift_joules",
			"Conservation drift per custody layer (0 when the books balance).",
			telemetry.Label{Name: "layer", Value: "grant"}),
		mDriftIters: tel.Registry.Gauge("jouleguard_provenance_drift_joules",
			"Conservation drift per custody layer (0 when the books balance).",
			telemetry.Label{Name: "layer", Value: "iterations"}),
	}
	if cfg.Meter != nil {
		s.meter = &meterHook{svc: cfg.Meter, stim: cfg.MeterStimulus}
	}
	s.qos = qos.New(cfg.QoS)
	s.qos.Instrument(tel.Registry)
	tel.SetQoS(s.qosHealth)
	broker.Instrument(tel.Registry)
	if cfg.SweepInterval > 0 {
		s.stopSweep = make(chan struct{})
		s.sweepDone = make(chan struct{})
		go s.sweepLoop()
	}
	return s, nil
}

// Telemetry returns the live sink the server reports into.
func (s *Server) Telemetry() *telemetry.Telemetry { return s.tel }

// MetricSummary snapshots the daemon's cumulative telemetry counters —
// what a cluster member ships on each heartbeat for the coordinator's
// fleet rollup.
func (s *Server) MetricSummary() wire.MetricSummary {
	dec, iters, rej, trips, faults := s.tel.CounterSummary()
	return wire.MetricSummary{
		Decisions:          dec,
		Iterations:         iters,
		GuardRejected:      rej,
		WatchdogTrips:      trips,
		FaultsInjected:     faults,
		DecisionSecondsSum: s.mDecisionS.Sum(),
		DecisionCount:      float64(s.mDecisionS.Count()),
	}
}

// Broker returns the budget broker (introspection and tests).
func (s *Server) Broker() *Broker { return s.broker }

// QoS returns the tenant-protection engine (cluster policy plumbing,
// introspection and tests).
func (s *Server) QoS() *qos.Engine { return s.qos }

// qosHealth renders the engine's tenant standings for /healthz.
func (s *Server) qosHealth() telemetry.QoSInfo {
	info := telemetry.QoSInfo{Enabled: s.cfg.QoS.Enabled}
	for _, st := range s.qos.Standings() {
		info.Tenants = append(info.Tenants, telemetry.QoSTenant{
			Tenant: st.Tenant, Tier: st.Tier.String(), State: st.State.String(), FloorScale: st.FloorScale,
		})
	}
	return info
}

// QoSTick runs one tenant-protection round: fold the broker's
// per-tenant books into ladder observations (footprint over the
// tier-weighted fair share — session weights are client-claimed and
// never trusted for enforcement), let the engine climb, descend and
// shed, then kill the sessions of tenants the verdict names. The sweep
// loop calls it every SweepInterval; tests call it directly.
func (s *Server) QoSTick() {
	views, pressure := s.broker.ObserveAll()
	if len(views) == 0 {
		return
	}
	var fairTotal float64
	for _, v := range views {
		fairTotal += s.qos.TierOf(v.Tenant).Spec().FairWeight
	}
	global := s.broker.Global()
	obs := make([]qos.Observation, 0, len(views))
	for _, v := range views {
		o := qos.Observation{Tenant: v.Tenant, BurnW: v.BurnW, Sessions: v.Sessions}
		if fair := global * s.qos.TierOf(v.Tenant).Spec().FairWeight / fairTotal; fair > 0 {
			o.Overrun = v.FootprintJ / fair
		}
		obs = append(obs, o)
	}
	for _, tenant := range s.qos.Observe(obs, pressure).Kill {
		s.shedTenant(tenant)
	}
}

// shedTenant kills every live session the tenant holds on this node,
// releasing their grants back to the pool. Shed sessions stay
// introspectable (state "killed"); their clients get tenant_shed on
// the next wire call.
func (s *Server) shedTenant(tenant string) int {
	shed := 0
	for _, sess := range s.sessions.all() {
		if sess.reg.Tenant != tenant {
			continue
		}
		if spent, release := sess.shed(); release {
			s.broker.Release(sess.grant, spent)
			s.retire(sess)
			s.mShed.Inc()
			shed++
		}
	}
	return shed
}

// Mount registers the wire-protocol routes on mux. The telemetry
// endpoints are mounted separately (telemetry.Telemetry.Mount) so both
// daemons share that wiring.
func (s *Server) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST "+wire.BasePath, s.handleRegister)
	mux.HandleFunc("GET "+wire.BasePath, s.handleList)
	mux.HandleFunc("GET "+wire.BasePath+"/{id}", s.handleInfo)
	mux.HandleFunc("POST "+wire.BasePath+"/{id}/next", s.handleNext)
	mux.HandleFunc("POST "+wire.BasePath+"/{id}/done", s.handleDone)
	mux.HandleFunc("DELETE "+wire.BasePath+"/{id}", s.handleClose)
	mux.HandleFunc("POST "+wire.V2Path, s.handleV2Stream)
	mux.HandleFunc("GET "+wire.ProvenancePath, s.handleProvenance)
}

// Handler returns the daemon's full surface: the wire protocol plus the
// shared telemetry exposition (/metrics, /healthz, /decisions, pprof).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.tel.Mount(mux)
	s.Mount(mux)
	return mux
}

// ---------------------------------------------------------------------
// Session lifecycle.

// Register admits a new session (the wire POST /v1/sessions).
func (s *Server) Register(req wire.RegisterRequest) (wire.RegisterResponse, error) {
	if req.Iterations <= 0 {
		return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest,
			fmt.Sprintf("iterations %d must be positive", req.Iterations)}
	}
	if req.Factor < 0 || req.BudgetJ < 0 {
		return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest, "factor and budget_j must be non-negative"}
	}
	if req.Factor > 0 && req.BudgetJ > 0 {
		return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest, "set at most one of factor and budget_j"}
	}
	if s.draining.Load() {
		return wire.RegisterResponse{}, &wireError{wire.CodeDraining, "daemon is draining"}
	}
	if s.fenced.Load() {
		return wire.RegisterResponse{}, errLeaseExpired()
	}

	// A register carrying the key of a live session attaches to it: the
	// fleet failover path, where a client re-registers against the node
	// that restored its session.
	if req.Key != "" {
		if resp, werr, ok := s.attach(req); ok {
			if werr != nil {
				return wire.RegisterResponse{}, werr
			}
			return resp, nil
		}
	}

	// Resolve the testbed first: it validates app/platform and prices a
	// factor-based request in joules.
	tb, err := jouleguard.NewTestbed(req.App, req.Platform)
	if err != nil {
		return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest, err.Error()}
	}
	request := req.BudgetJ
	if req.Factor > 0 {
		request, err = tb.Budget(req.Factor, req.Iterations)
		if err != nil {
			return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest, err.Error()}
		}
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
		req.Tenant = tenant
	}
	if d := s.qos.CheckRegister(tenant); d != nil {
		return wire.RegisterResponse{}, &wireError{d.Code, d.Msg}
	}
	s.qos.SetTier(tenant, qos.ParseTier(req.Tier))
	grant, err := s.admitWithAssist(tenant, req.Weight, request)
	if err != nil {
		if errors.Is(err, ErrBudgetExhausted) {
			return wire.RegisterResponse{}, &wireError{wire.CodeBudgetExhausted, err.Error()}
		}
		return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest, err.Error()}
	}

	now := s.clock()
	id := s.newID()
	sess, err := newSession(id, req, grant, s.meter, telemetry.WithSession(s.tel, id), now)
	if err != nil {
		s.broker.Release(grant, 0)
		return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest, err.Error()}
	}
	sess.noteSpend = s.broker.NoteSpend
	s.sessions.put(sess)
	if s.draining.Load() {
		// Shutdown flipped the drain bit while we were inserting: back the
		// session out so the snapshot never sees a post-drain admission.
		s.sessions.remove(sess)
		s.broker.Release(grant, 0)
		return wire.RegisterResponse{}, &wireError{wire.CodeDraining, "daemon is draining"}
	}
	if req.Key != "" {
		s.sessions.setKey(req.Key, id)
	}
	s.mOpened.Inc()
	return wire.RegisterResponse{
		SessionID:  id,
		SessionNum: sess.num,
		GrantJ:     grant.GrantJ,
		Iterations: req.Iterations,
		AppConfigs: sess.tb.App.NumConfigs(),
		SysConfigs: sess.tb.Platform.NumConfigs(),
	}, nil
}

// newID mints the next session id. The numeric form rides in v2 frame
// headers; the string form is the v1 wire id (zero-padded so
// lexicographic order is creation order).
func (s *Server) newID() string {
	return fmt.Sprintf("s-%06d", s.nextID.Add(1))
}

// attach resolves a register-by-key against an existing live session.
// ok=false means no live session holds the key and registration should
// proceed fresh; a non-nil werr reports an attach that cannot be honored
// (the key is held by a session with a different shape).
func (s *Server) attach(req wire.RegisterRequest) (wire.RegisterResponse, *wireError, bool) {
	sess := s.sessions.byKey(req.Key)
	if sess == nil {
		return wire.RegisterResponse{}, nil, false
	}
	resp, reg, live := sess.attachView()
	if !live {
		return wire.RegisterResponse{}, nil, false
	}
	if reg.App != req.App || reg.Platform != req.Platform || reg.Iterations != req.Iterations {
		return wire.RegisterResponse{}, &wireError{wire.CodeBadRequest,
			fmt.Sprintf("key %q is held by a live session with a different workload (%s/%s x%d)",
				req.Key, reg.App, reg.Platform, reg.Iterations)}, true
	}
	return resp, nil, true
}

// admitWithAssist runs broker admission, giving the admission-assist
// hook (a cluster member asking its coordinator for a lease extension)
// one chance to grow the pool before an absolute request is rejected.
func (s *Server) admitWithAssist(tenant string, weight, requestJ float64) (Grant, error) {
	grant, err := s.broker.Admit(tenant, weight, requestJ)
	if err == nil || !errors.Is(err, ErrBudgetExhausted) || requestJ <= 0 {
		return grant, err
	}
	s.assistMu.Lock()
	assist := s.assist
	s.assistMu.Unlock()
	if assist == nil {
		return grant, err
	}
	// Concurrent admissions race for the same extension (each computes
	// its shortfall before the others consume the pool), so recompute and
	// re-ask until admission sticks or the coordinator stops granting.
	// The ask overshoots the exact shortfall by 1% of the request: an
	// exact grant lands available == commit to within a ulp, turning the
	// retried admission into a coin flip.
	for attempt := 0; attempt < 6; attempt++ {
		need := requestJ*s.broker.ReserveFactor() - s.broker.Available() + requestJ*0.01
		// A refused assist still retries admission and stays in the loop:
		// concurrent heartbeats, extensions by competing admissions, and
		// out-of-order extension replies all grow the pool underneath us.
		assist(need)
		grant, retryErr := s.broker.Admit(tenant, weight, requestJ)
		if retryErr == nil || !errors.Is(retryErr, ErrBudgetExhausted) {
			return grant, retryErr
		}
	}
	return grant, err
}

// SetAdmitAssist installs the hook called when broker admission fails
// for lack of pool: in a fleet the member uses it to request an
// on-demand lease extension from the coordinator, then admission is
// retried. The hook returns whether the pool grew.
func (s *Server) SetAdmitAssist(f func(needJ float64) bool) {
	s.assistMu.Lock()
	s.assist = f
	s.assistMu.Unlock()
}

// SetFenced flips the node's self-fence. A fenced daemon refuses to arm
// new iterations or admit registrations (retryable lease_expired), so a
// node cut off from its coordinator stops drawing down a lease the
// coordinator may already have reclaimed. Done is still accepted: the
// energy of an in-flight iteration is spent either way, and accounting
// it keeps the ledger truthful.
func (s *Server) SetFenced(fenced bool) { s.fenced.Store(fenced) }

// Fenced reports the self-fence state.
func (s *Server) Fenced() bool { return s.fenced.Load() }

// Adopt rebuilds a migrated session from its registration and iteration
// log — the cross-node analogue of snapshot restore. The governor stack
// is rebuilt and the log replayed (bit-identical state, same as a local
// restore), then the remaining grant is admitted into this node's
// broker with the pre-spend marked imported. Re-pushing an adoption the
// node already holds returns the existing session id.
func (s *Server) Adopt(a wire.AdoptSession) (string, error) {
	if a.Key == "" {
		return "", &wireError{wire.CodeBadRequest, "adoption requires a session key"}
	}
	if a.Reg.Iterations <= 0 {
		return "", &wireError{wire.CodeBadRequest, "adoption with non-positive iterations"}
	}
	if s.draining.Load() {
		return "", &wireError{wire.CodeDraining, "daemon is draining"}
	}
	if prev := s.sessions.byKey(a.Key); prev != nil {
		if _, _, live := prev.attachView(); live {
			return prev.id, nil
		}
	}
	id := s.newID()

	a.Reg.Key = a.Key
	if a.Reg.Tenant == "" {
		a.Reg.Tenant = "default"
	}
	sess, err := newSession(id, a.Reg, Grant{Tenant: a.Reg.Tenant, Weight: a.Reg.Weight, GrantJ: a.GrantJ}, s.meter, nil, s.clock())
	if err != nil {
		return "", &wireError{wire.CodeBadRequest, err.Error()}
	}
	for _, rec := range a.Log {
		if err := sess.replay(rec); err != nil {
			return "", err
		}
	}
	imported := sess.spent()
	grant, err := s.adoptAdmit(a.Reg.Tenant, a.Reg.Weight, a.GrantJ, imported)
	if err != nil {
		if errors.Is(err, ErrBudgetExhausted) {
			return "", &wireError{wire.CodeBudgetExhausted, err.Error()}
		}
		return "", err
	}
	s.qos.SetTier(a.Reg.Tenant, qos.ParseTier(a.Reg.Tier))
	sess.setGrant(grant)
	sess.noteSpend = s.broker.NoteSpend
	sess.installLiveSink(telemetry.WithSession(s.tel, id))
	s.sessions.put(sess)
	s.sessions.setKey(a.Key, id)
	s.mAdopted.Inc()
	return id, nil
}

// adoptAdmit is AdoptGrant with one admission-assist retry, mirroring
// admitWithAssist for the failover path.
func (s *Server) adoptAdmit(tenant string, weight, grantJ, importedJ float64) (Grant, error) {
	grant, err := s.broker.AdoptGrant(tenant, weight, grantJ, importedJ)
	if err == nil || !errors.Is(err, ErrBudgetExhausted) {
		return grant, err
	}
	s.assistMu.Lock()
	assist := s.assist
	s.assistMu.Unlock()
	if assist == nil {
		return grant, err
	}
	for attempt := 0; attempt < 6; attempt++ {
		need := (grantJ-importedJ)*s.broker.ReserveFactor() - s.broker.Available() + grantJ*0.01
		assist(need)
		grant, retryErr := s.broker.AdoptGrant(tenant, weight, grantJ, importedJ)
		if retryErr == nil || !errors.Is(retryErr, ErrBudgetExhausted) {
			return grant, retryErr
		}
	}
	return grant, err
}

// TotalSpentJ is the node's cumulative energy spend against its own
// budget pool: released sessions' consumption plus live sessions'
// accounted spend, net of imported pre-spend (energy adopted sessions
// already drew from another node's lease). It is monotone while the
// daemon lives; cluster members report it in every heartbeat.
func (s *Server) TotalSpentJ() float64 {
	total := s.broker.Consumed()
	for _, sess := range s.sessions.all() {
		if _, live := sess.idleSince(); live {
			total += sess.localSpent()
		}
	}
	return total
}

// Export copies every session's reportable state, with each iteration
// log trimmed to what the caller has not yet acked (from[id], missing =
// everything). The cluster member builds heartbeat session reports from
// it; ordering is stable (creation order) for deterministic wire bodies.
func (s *Server) Export(from map[string]int) []SessionExport {
	sessions := s.sessions.allSorted()
	out := make([]SessionExport, 0, len(sessions))
	for _, sess := range sessions {
		out = append(out, sess.export(from[sess.id]))
	}
	return out
}

// lookup finds a session by id.
func (s *Server) lookup(id string) (*session, *wireError) {
	sess := s.sessions.get(id)
	if sess == nil {
		return nil, &wireError{wire.CodeUnknownSession, fmt.Sprintf("unknown session %q", id)}
	}
	return sess, nil
}

// Close tears down a session and reclaims its budget.
func (s *Server) Close(id string) (wire.CloseResponse, error) {
	sess, werr := s.lookup(id)
	if werr != nil {
		return wire.CloseResponse{}, werr
	}
	spent, release := sess.teardown(stateClosed)
	if !release {
		return wire.CloseResponse{}, errSessionClosed("session already closed")
	}
	s.broker.Release(sess.grant, spent)
	s.retire(sess)
	s.mClosed.Inc()
	return wire.CloseResponse{
		SessionID:  id,
		SpentJ:     spent,
		ReclaimedJ: sess.grant.GrantJ - spent,
	}, nil
}

// terminalRetainCap bounds how many closed/expired sessions stay in the
// registry for introspection. Beyond it the oldest terminal session is
// evicted — under sustained churn the registry stays O(live + cap)
// instead of growing with every session ever served.
const terminalRetainCap = 1024

// retire queues a terminal session for bounded retention, evicting the
// oldest terminal session once the cap is exceeded. Never called with a
// shard or session lock held.
func (s *Server) retire(sess *session) {
	s.retiredMu.Lock()
	s.retired = append(s.retired, sess)
	var evict *session
	if len(s.retired) > terminalRetainCap {
		evict = s.retired[0]
		copy(s.retired, s.retired[1:])
		s.retired = s.retired[:len(s.retired)-1]
	}
	s.retiredMu.Unlock()
	if evict != nil {
		s.sessions.remove(evict)
	}
}

// ExpireIdle expires every live session whose last wire activity is
// older than its timeout, releasing the grants. It returns how many
// sessions it expired; the sweep loop calls it on SweepInterval.
func (s *Server) ExpireIdle() int {
	now := s.clock()
	expired := 0
	for _, sess := range s.sessions.all() {
		last, live := sess.idleSince()
		if !live {
			continue
		}
		timeout := s.cfg.IdleTimeout
		if sess.reg.IdleTimeoutS > 0 {
			timeout = time.Duration(sess.reg.IdleTimeoutS * float64(time.Second))
		}
		if now.Sub(last) <= timeout {
			continue
		}
		if spent, release := sess.teardown(stateExpired); release {
			s.broker.Release(sess.grant, spent)
			s.retire(sess)
			s.mExpired.Inc()
			expired++
		}
	}
	return expired
}

// sweepLoop is the expiry watchdog.
func (s *Server) sweepLoop() {
	defer close(s.sweepDone)
	t := time.NewTicker(s.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.ExpireIdle()
			s.QoSTick()
			s.auditProvenance()
		case <-s.stopSweep:
			return
		}
	}
}

// Shutdown drains the daemon: new registrations and Next calls are
// refused with a retryable "draining" error, in-flight iterations get
// until ctx's deadline to report Done, and the expiry watchdog stops.
// After Shutdown returns, Snapshot captures a clean state (armed
// sessions that never reported are snapshotted at their last completed
// iteration; their clients re-bracket the lost iteration on restore).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// Hijacked v2 streams outlive the HTTP listener; sever them once the
	// drain settles so no stream serves a daemon that no longer exists.
	defer s.CloseV2Streams()
	if s.stopSweep != nil {
		close(s.stopSweep)
		<-s.sweepDone
		s.stopSweep = nil
	}
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if !s.anyInFlight() {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: drain incomplete: %w", ctx.Err())
		case <-tick.C:
		}
	}
}

func (s *Server) anyInFlight() bool {
	for _, sess := range s.sessions.all() {
		if sess.inFlight() {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// HTTP surface.

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps protocol codes onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	code, msg := wire.CodeBadRequest, err.Error()
	var werr *wireError
	if errors.As(err, &werr) {
		code = werr.code
	}
	status := http.StatusBadRequest
	switch code {
	case wire.CodeBudgetExhausted:
		status = http.StatusTooManyRequests
	case wire.CodeUnknownSession:
		status = http.StatusNotFound
	case wire.CodeBadSequence, wire.CodeSessionComplete, wire.CodeUnknownNode:
		status = http.StatusConflict
	case wire.CodeSessionClosed:
		status = http.StatusGone
	case wire.CodeDraining, wire.CodeLeaseExpired, wire.CodeNoNodes:
		status = http.StatusServiceUnavailable
	case wire.CodeTenantThrottled:
		// Paced, not refused: 429 tells the client to retry this call
		// after backing off, against this same node.
		status = http.StatusTooManyRequests
	case wire.CodeTenantSuspended, wire.CodeTenantShed:
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, wire.ErrorResponse{Code: code, Error: msg})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, &wireError{wire.CodeBadRequest, "invalid JSON body: " + err.Error()})
		return false
	}
	return true
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req wire.RegisterRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.Register(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

// Next arms the session's upcoming iteration and returns its decision.
// This is the whole per-iteration decision path — shared verbatim by the
// v1 JSON handler, the v2 frame loop and the in-process benchmark — and
// it takes no server-wide lock: one shard map read, then the session's
// own mutex.
func (s *Server) Next(id string, req wire.NextRequest) (wire.NextResponse, error) {
	if s.draining.Load() {
		return wire.NextResponse{}, &wireError{wire.CodeDraining, "daemon is draining; retry against the restarted daemon"}
	}
	if s.fenced.Load() {
		return wire.NextResponse{}, errLeaseExpired()
	}
	sess, werr := s.lookup(id)
	if werr != nil {
		return wire.NextResponse{}, werr
	}
	return s.sessionNext(sess, req)
}

func (s *Server) sessionNext(sess *session, req wire.NextRequest) (wire.NextResponse, error) {
	// Tenant-protection gate, shared by v1 and v2 so neither transport
	// escapes enforcement. reg is immutable post-construction, so the
	// tenant read needs no lock; while no tenant is enforced the check
	// is one atomic load.
	if d := s.qos.CheckNext(sess.reg.Tenant, time.Now().UnixNano()); d != nil {
		return wire.NextResponse{}, &wireError{d.Code, d.Msg}
	}
	start := time.Now()
	resp, werr := sess.next(req, s.clock())
	if werr != nil {
		return wire.NextResponse{}, werr
	}
	s.mDecisionS.Observe(time.Since(start).Seconds())
	if req.TraceID != 0 {
		s.traceNext(sess.id, req, start, resp.Iter)
	}
	return resp, nil
}

// Done settles a completed iteration. Accepted even while draining or
// fenced: the energy of an in-flight iteration is spent either way, and
// accounting it keeps the ledger truthful.
func (s *Server) Done(id string, req wire.DoneRequest) (wire.DoneResponse, error) {
	sess, werr := s.lookup(id)
	if werr != nil {
		return wire.DoneResponse{}, werr
	}
	resp, werr2 := s.sessionDone(sess, req)
	if werr2 != nil {
		return wire.DoneResponse{}, werr2
	}
	return resp, nil
}

// sessionDone settles one iteration against its session — the single
// Done path shared by the v1 handler and the v2 frame loop, so both
// record identical spans and the traced/untraced settle mutates session
// state identically (the golden replay test pins this).
func (s *Server) sessionDone(sess *session, req wire.DoneRequest) (wire.DoneResponse, *wireError) {
	var start time.Time
	if req.TraceID != 0 {
		start = time.Now()
	}
	resp, werr := sess.done(req, s.clock())
	if werr != nil {
		return wire.DoneResponse{}, werr
	}
	if req.TraceID != 0 {
		s.traceDone(sess.id, req, start, resp)
	}
	return resp, nil
}

func (s *Server) handleNext(w http.ResponseWriter, r *http.Request) {
	var req wire.NextRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.Next(r.PathValue("id"), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDone(w http.ResponseWriter, r *http.Request) {
	var req wire.DoneRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.Done(r.PathValue("id"), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	resp, err := s.Close(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	sess, werr := s.lookup(r.PathValue("id"))
	if werr != nil {
		writeError(w, werr)
		return
	}
	writeJSON(w, http.StatusOK, s.sessionInfo(sess, true))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	resp := wire.ListResponse{Broker: s.broker.Info()}
	// Stable order for scripts and eyeballs: ids are zero-padded
	// counters, so lexicographic order is creation order.
	for _, sess := range s.sessions.allSorted() {
		resp.Sessions = append(resp.Sessions, s.sessionInfo(sess, false))
	}
	writeJSON(w, http.StatusOK, resp)
}

// sessionInfo decorates a session's introspection view with its
// tenant's QoS standing — the session itself never sees the engine.
func (s *Server) sessionInfo(sess *session, includeEstimates bool) wire.SessionInfo {
	si := sess.info(includeEstimates)
	si.Tier = s.qos.TierOf(si.Tenant).String()
	if st := s.qos.StateOf(si.Tenant); st != qos.StateOK {
		si.QoSState = st.String()
		si.FloorScale = s.qos.FloorScale(si.Tenant)
	}
	return si
}
