package server

import (
	"net/http"

	"jouleguard/internal/wire"
)

// Joule provenance, member side: /v1/provenance?session= renders the
// custody chain from the node's lease down to the per-iteration spends
// the flight recorder still holds, and the conservation auditor
// (auditProvenance, called from the sweep loop) continuously reconciles
// the same books into jouleguard_provenance_drift_joules gauges.
//
// Consistency discipline: a settle mutates the session ledger and the
// flight recorder under the session's own mutex (RecordDecision fires
// inside ctl.Done), but a reader takes the two locks separately. So
// every reconciliation here brackets the flight snapshot with two
// ledger reads and retries when they disagree — a cheap seqlock built
// from reads the hot path already pays for.

// provenanceView snapshots the registration, grant and ledger spend in
// one critical section.
func (s *session) provenanceView() (reg wire.RegisterRequest, grant Grant, spentJ float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reg, s.grant, s.ctl.EnergyAccounted()
}

// sessionIterSpends walks the flight recorder's retained window for one
// session and differences the cumulative ledger column into
// per-iteration spends. lastCum is the final cumulative value seen (the
// "iterations" conservation check compares it against the session
// ledger); have is false when the window holds no decision for the
// session. A window that starts mid-session (iter > 0 first) yields its
// first retained decision as baseline only — the delta to an
// overwritten predecessor is unknowable.
func (s *Server) sessionIterSpends(id string) (spends []wire.IterSpend, lastCum float64, have bool) {
	for _, d := range s.tel.Flight.Snapshot() {
		if d.Session != id {
			continue
		}
		if !have {
			if d.Iter == 0 {
				// The session's first iteration: its cumulative spend is its
				// own spend.
				spends = append(spends, wire.IterSpend{Seq: d.Seq, Iter: d.Iter, EnergyJ: d.EnergyUsedJ})
			}
			lastCum, have = d.EnergyUsedJ, true
			continue
		}
		spends = append(spends, wire.IterSpend{Seq: d.Seq, Iter: d.Iter, EnergyJ: d.EnergyUsedJ - lastCum})
		lastCum = d.EnergyUsedJ
	}
	return spends, lastCum, have
}

// stableIterSpends is sessionIterSpends under the seqlock discipline:
// re-read the ledger after the snapshot and retry while a settle moved
// it. Converges in one pass on an idle session and in a handful under
// churn (each retry needs a full settle inside a two-read window).
func (s *Server) stableIterSpends(sess *session) (spentJ float64, spends []wire.IterSpend, lastCum float64, have bool) {
	for attempt := 0; attempt < 4; attempt++ {
		spentJ = sess.spent()
		spends, lastCum, have = s.sessionIterSpends(sess.id)
		if sess.spent() == spentJ {
			break
		}
	}
	return spentJ, spends, lastCum, have
}

// sessionProvenance assembles the full custody chain for one session.
func (s *Server) sessionProvenance(sess *session) wire.SessionProvenance {
	reg, grant, _ := sess.provenanceView()
	spent, spends, lastCum, have := s.stableIterSpends(sess)
	bi := s.broker.Info()

	p := wire.SessionProvenance{
		Session:      sess.id,
		Key:          reg.Key,
		Node:         s.tel.Spans.Node(),
		LeaseJ:       bi.GlobalJ,
		Broker:       bi,
		Tenant:       grant.Tenant,
		TenantWeight: grant.Weight,
		TenantCarryJ: s.broker.Carry(grant.Tenant),
		GrantJ:       grant.GrantJ,
		ImportedJ:    grant.ImportedJ,
		SpentJ:       spent,
		RemainingJ:   grant.GrantJ - spent,
		Iterations:   spends,
	}
	if h, ok := s.tel.Health(); ok {
		p.Fence = h.Fence
	}
	// The iterations check only covers what the recorder retains; with no
	// retained decision there is nothing to reconcile against.
	iterSum := spent
	if have {
		iterSum = lastCum
	}
	p.Layers = []wire.ProvenanceLayer{
		layer("pool", bi.GlobalJ, bi.CommittedJ+bi.ConsumedJ+bi.AvailableJ),
		layer("grant", grant.GrantJ, spent+p.RemainingJ),
		layer("iterations", spent, iterSum),
	}
	return p
}

func layer(name string, expect, sum float64) wire.ProvenanceLayer {
	return wire.ProvenanceLayer{Layer: name, ExpectJ: expect, SumJ: sum, DriftJ: expect - sum}
}

// handleProvenance serves GET /v1/provenance?session=<id or key>.
func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("session")
	if q == "" {
		writeError(w, &wireError{wire.CodeBadRequest, "provenance requires ?session=<id or key>"})
		return
	}
	sess := s.sessions.get(q)
	if sess == nil {
		sess = s.sessions.byKey(q)
	}
	if sess == nil {
		writeError(w, &wireError{wire.CodeUnknownSession, "unknown session or key " + q})
		return
	}
	writeJSON(w, http.StatusOK, s.sessionProvenance(sess))
}

// auditProvenance is the member's continuous conservation auditor: one
// pass per sweep tick reconciling each custody layer and publishing the
// drifts. Layers:
//
//	pool        broker ledger identity: global = committed + consumed + available
//	grant       broker's committed total vs the live sessions' commitments
//	iterations  each session's ledger spend vs its flight-recorder trail
//
// A clean ledger reads 0.0 on every layer; anything past 1e-6 is a
// bookkeeping bug, not noise (the books are doubles, not sensors).
func (s *Server) auditProvenance() {
	bi := s.broker.Info()
	var commitSum, iterDrift float64
	liveCount := 0
	for _, sess := range s.sessions.all() {
		if _, live := sess.idleSince(); !live {
			continue
		}
		liveCount++
		_, grant, _ := sess.provenanceView()
		commitSum += grant.CommitJ
		spent, _, lastCum, have := s.stableIterSpends(sess)
		if have {
			iterDrift += spent - lastCum
		}
	}
	// A registration or teardown in flight during the walk (admitted to
	// the broker but not yet in the session map, or vice versa) moves a
	// commitment out from under us; skip the publish rather than report a
	// phantom drift (the next tick sees a settled ledger).
	after := s.broker.Info()
	if after.CommittedJ != bi.CommittedJ || after.ConsumedJ != bi.ConsumedJ || liveCount != bi.Active {
		return
	}
	s.mDriftPool.Set(bi.GlobalJ - (bi.CommittedJ + bi.ConsumedJ + bi.AvailableJ))
	s.mDriftGrant.Set(bi.CommittedJ - commitSum)
	s.mDriftIters.Set(iterDrift)
}
