package server

import (
	"fmt"
	"sync"
	"testing"

	"jouleguard/internal/wire"
)

// TestShardChurnRace churns thousands of short-lived sessions through
// the sharded registry from many goroutines at once — the workload the
// shard map exists for. Run under -race (make check does) it doubles as
// the data-race proof for the lock-free decision path. It pins three
// invariants:
//
//   - broker conservation: at every instant, committed + consumed never
//     exceeds the global budget (sampled concurrently with the churn);
//   - per-session monotonicity: each Done advances IterationsDone by
//     exactly one — a cross-session leak through a mis-sharded lookup
//     would break the sequence;
//   - clean drain: once every session is closed, the registry is empty
//     and the broker's committed pool is fully released.
func TestShardChurnRace(t *testing.T) {
	const workers = 16
	perWorker := 625 // 10k sessions total
	if testing.Short() {
		perWorker = 64
	}
	const itersPerSession = 3

	srv := testServer(t, 1e9, nil)
	defer shutdown(srv)

	// A concurrent auditor samples the broker ledger while the churn
	// runs; conservation must hold at every instant, not just at rest.
	stop := make(chan struct{})
	auditDone := make(chan error, 1)
	go func() {
		defer close(auditDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			info := srv.Broker().Info()
			if info.CommittedJ+info.ConsumedJ > info.GlobalJ*1.0001 {
				auditDone <- fmt.Errorf("broker over-committed mid-churn: committed %.1f + consumed %.1f > global %.1f",
					info.CommittedJ, info.ConsumedJ, info.GlobalJ)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < perWorker; n++ {
				resp, err := srv.Register(wire.RegisterRequest{
					Tenant: fmt.Sprintf("churn-%02d-%04d", w, n),
					App:    "radar", Platform: "Tablet",
					Iterations: itersPerSession, BudgetJ: 50,
					Seed: int64(w*perWorker + n + 1),
				})
				if err != nil {
					errs <- fmt.Errorf("worker %d session %d register: %w", w, n, err)
					return
				}
				clockS, energyJ := 0.0, 0.0
				for i := 0; i < itersPerSession; i++ {
					if _, err := srv.Next(resp.SessionID, wire.NextRequest{NowS: clockS}); err != nil {
						errs <- fmt.Errorf("session %s next %d: %w", resp.SessionID, i, err)
						return
					}
					clockS += 0.05
					energyJ += 0.1
					dresp, err := srv.Done(resp.SessionID, wire.DoneRequest{
						NowS: clockS, EnergyJ: energyJ, Accuracy: 0.9,
					})
					if err != nil {
						errs <- fmt.Errorf("session %s done %d: %w", resp.SessionID, i, err)
						return
					}
					// Another session's settle leaking into this one would
					// show up as a jumped (or repeated) iteration count.
					if dresp.IterationsDone != i+1 {
						errs <- fmt.Errorf("session %s: Done %d reported IterationsDone %d",
							resp.SessionID, i, dresp.IterationsDone)
						return
					}
				}
				if _, err := srv.Close(resp.SessionID); err != nil {
					errs <- fmt.Errorf("session %s close: %w", resp.SessionID, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if err := <-auditDone; err != nil {
		t.Fatal(err)
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Terminal sessions are retained for introspection only up to the
	// cap; churn beyond it must not grow the registry.
	if n := srv.sessions.size(); n > terminalRetainCap {
		t.Fatalf("registry holds %d sessions after full churn drain, cap is %d", n, terminalRetainCap)
	}
	info := srv.Broker().Info()
	if info.CommittedJ > 1e-6 {
		t.Fatalf("broker still holds %.3f J committed after every session closed", info.CommittedJ)
	}
	if want := workers * perWorker; info.Admitted != want {
		t.Fatalf("broker admitted %d sessions, want %d", info.Admitted, want)
	}
}
