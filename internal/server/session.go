package server

import (
	"fmt"
	"math"
	"sync"
	"time"

	"jouleguard"
	"jouleguard/internal/telemetry"
	"jouleguard/internal/wire"
)

// sessionState is the wire-visible lifecycle of one session:
//
//	           POST next            POST done
//	 +------+ ----------> +-------+ ----------> (iters left: idle)
//	 | idle |             | armed |
//	 +------+ <---------- +-------+ ----------> +----------+
//	    |        done            \               | complete |
//	    |                         \ daemon dies  +----------+
//	    |  DELETE / idle expiry    \ before done      |  DELETE / expiry
//	    v                           v                 v
//	+--------+-----------+     restored as idle   (released)
//	| closed  |  expired |     (client re-brackets the lost iteration)
//	+--------+-----------+
//
// Only idle/armed/complete sessions hold budget; closing or expiring
// releases the grant back to the broker.
type sessionState int

const (
	stateIdle sessionState = iota
	stateArmed
	stateComplete
	stateClosed
	stateExpired
)

// String names the state for the wire and the logs.
func (s sessionState) String() string {
	switch s {
	case stateIdle:
		return "idle"
	case stateArmed:
		return "armed"
	case stateComplete:
		return "complete"
	case stateClosed:
		return "closed"
	case stateExpired:
		return "expired"
	}
	return "unknown"
}

// iterRec is one completed iteration in the session's write-ahead log:
// exactly the client-supplied inputs the controller consumed, so a
// restored daemon can replay them through a fresh controller and land on
// bit-identical state. The record is shared with the cluster protocol
// (heartbeat session reports, failover adoption) as wire.IterRec.
type iterRec = wire.IterRec

// session wraps one tenant's governor — a JouleGuard runtime behind an
// OnlineController — and adapts it to the wire: the client's clock and
// meter readings arrive in request bodies and are fed to the controller
// through the pending sample, so the controller's hardened sensing path
// (guard, outage reconciliation, model fallback) is reused verbatim.
type session struct {
	mu    sync.Mutex
	id    string
	num   uint32 // numeric id for v2 frame headers (0 = v1-only)
	reg   wire.RegisterRequest
	grant Grant

	tb  *jouleguard.Testbed
	gov *jouleguard.Runtime
	ctl *jouleguard.OnlineController

	state   sessionState
	pending struct {
		now    float64
		energy float64
		eerr   bool
	}
	armedNow  float64
	log       []iterRec
	accSum    float64
	lastTouch time.Time
}

// newSession builds the governor stack for an admitted registration.
// sink is the telemetry the session reports into (nil while replaying a
// snapshot; installLiveSink attaches the real one afterwards).
func newSession(id string, reg wire.RegisterRequest, grant Grant, sink telemetry.Sink, now time.Time) (*session, error) {
	tb, err := jouleguard.NewTestbed(reg.App, reg.Platform)
	if err != nil {
		return nil, err
	}
	gov, err := tb.NewJouleGuardBudget(grant.GrantJ, reg.Iterations, jouleguard.Options{
		Seed:      reg.Seed,
		Telemetry: sink,
	})
	if err != nil {
		return nil, err
	}
	s := &session{id: id, num: sessionNum(id), reg: reg, grant: grant, tb: tb, gov: gov, lastTouch: now}
	ctl, err := jouleguard.NewOnlineGuarded(gov,
		s.readPendingEnergy, s.readPendingNow,
		jouleguard.SensorGuardConfig{ModelPower: tb.DefaultPower})
	if err != nil {
		return nil, err
	}
	if sink != nil {
		ctl.SetTelemetry(sink)
	}
	s.ctl = ctl
	return s, nil
}

// sessionNum derives the v2 frame-header id from the "s-%06d" string id
// (snapshot restore and adoption mint sessions from logged ids, so
// deriving rather than storing keeps the two forms consistent across
// every path). Ids that do not parse, or overflow uint32, yield 0 —
// such a session is served over v1 only.
func sessionNum(id string) uint32 {
	var n uint64
	if _, err := fmt.Sscanf(id, "s-%d", &n); err != nil || n == 0 || n > math.MaxUint32 {
		return 0
	}
	return uint32(n)
}

// readPendingEnergy and readPendingNow feed the controller the last
// wire-reported sample; callers hold s.mu for the whole Next/Done call,
// so the pending fields are stable while the controller reads them.
func (s *session) readPendingEnergy() (float64, error) {
	if s.pending.eerr {
		return 0, fmt.Errorf("server: client reported an energy-meter failure")
	}
	return s.pending.energy, nil
}

func (s *session) readPendingNow() float64 { return s.pending.now }

// installLiveSink attaches the live telemetry sink after a snapshot
// replay, so restored state resumes reporting without the replayed
// iterations having been double-counted.
func (s *session) installLiveSink(sink telemetry.Sink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gov.SetTelemetry(sink)
	s.ctl.SetTelemetry(sink)
}

// wireError pairs a stable protocol code with a message.
type wireError struct {
	code string
	msg  string
}

func (e *wireError) Error() string { return e.msg }

func errBadSequence(msg string) *wireError   { return &wireError{wire.CodeBadSequence, msg} }
func errSessionClosed(msg string) *wireError { return &wireError{wire.CodeSessionClosed, msg} }
func errLeaseExpired() *wireError {
	return &wireError{wire.CodeLeaseExpired, "node budget lease expired; awaiting renewal or failover"}
}

// checkLive rejects calls on torn-down sessions; callers hold s.mu.
func (s *session) checkLive() *wireError {
	switch s.state {
	case stateClosed:
		return errSessionClosed("session closed")
	case stateExpired:
		return errSessionClosed("session expired by the idle watchdog")
	}
	return nil
}

// next runs the wire Next call: decide the upcoming iteration's
// configurations and start its interval on the client's clock.
func (s *session) next(req wire.NextRequest, now time.Time) (wire.NextResponse, *wireError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if werr := s.checkLive(); werr != nil {
		return wire.NextResponse{}, werr
	}
	switch s.state {
	case stateComplete:
		return wire.NextResponse{}, &wireError{wire.CodeSessionComplete,
			fmt.Sprintf("workload of %d iterations already complete; close the session to reclaim its budget", s.reg.Iterations)}
	case stateArmed:
		return wire.NextResponse{}, errBadSequence("Next while an iteration is already in flight (Done not yet reported)")
	}
	s.pending.now, s.pending.eerr = req.NowS, false
	app, sys := s.ctl.Next()
	s.armedNow = req.NowS
	s.state = stateArmed
	s.lastTouch = now
	return wire.NextResponse{Iter: s.ctl.Iterations(), AppConfig: app, SysConfig: sys}, nil
}

// done runs the wire Done call: deliver the client's measurements to the
// controller and settle the iteration.
func (s *session) done(req wire.DoneRequest, now time.Time) (wire.DoneResponse, *wireError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if werr := s.checkLive(); werr != nil {
		return wire.DoneResponse{}, werr
	}
	if s.state != stateArmed {
		return wire.DoneResponse{}, errBadSequence("Done without a pending Next")
	}
	s.pending.now, s.pending.energy, s.pending.eerr = req.NowS, req.EnergyJ, req.EnergyErr
	if err := s.ctl.Done(req.Accuracy); err != nil {
		// The armed check above rules out sequencing errors; anything
		// else is an internal failure worth surfacing as such.
		return wire.DoneResponse{}, &wireError{wire.CodeBadRequest, err.Error()}
	}
	s.log = append(s.log, iterRec{
		NextNow: s.armedNow, DoneNow: req.NowS,
		EnergyJ: req.EnergyJ, EnergyErr: req.EnergyErr, Accuracy: req.Accuracy,
	})
	s.accSum += req.Accuracy
	if s.ctl.Iterations() >= s.reg.Iterations {
		s.state = stateComplete
	} else {
		s.state = stateIdle
	}
	s.lastTouch = now
	return s.doneResponseLocked(), nil
}

// doneResponseLocked assembles the ledger view; callers hold s.mu.
func (s *session) doneResponseLocked() wire.DoneResponse {
	spent := s.ctl.EnergyAccounted()
	return wire.DoneResponse{
		IterationsDone:  s.ctl.Iterations(),
		SpentJ:          spent,
		GrantRemainingJ: s.grant.GrantJ - spent,
		Degraded:        s.gov.Degraded(),
		Infeasible:      s.gov.Infeasible(),
		Complete:        s.state == stateComplete,
	}
}

// spent returns the energy the session's ledger has accounted so far.
func (s *session) spent() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctl.EnergyAccounted()
}

// teardown moves the session to a terminal state and reports what the
// broker should settle. It is idempotent; only the first call releases.
func (s *session) teardown(to sessionState) (spentJ float64, release bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == stateClosed || s.state == stateExpired {
		return 0, false
	}
	s.state = to
	return s.ctl.EnergyAccounted(), true
}

// idleSince reports the last wire activity; the expiry watchdog compares
// it against the session's timeout.
func (s *session) idleSince() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := s.state == stateIdle || s.state == stateArmed || s.state == stateComplete
	return s.lastTouch, live
}

// inFlight reports whether a wire iteration is bracketed (armed); the
// drain loop waits for in-flight iterations to settle before snapshot.
func (s *session) inFlight() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == stateArmed
}

// info assembles the introspection view.
func (s *session) info(includeEstimates bool) wire.SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.ctl.Iterations()
	mean := 0.0
	if n > 0 {
		mean = s.accSum / float64(n)
	}
	si := wire.SessionInfo{
		SessionID:   s.id,
		Tenant:      s.reg.Tenant,
		Weight:      s.grant.Weight,
		App:         s.reg.App,
		Platform:    s.reg.Platform,
		State:       s.state.String(),
		Iterations:  s.reg.Iterations,
		IterDone:    n,
		GrantJ:      s.grant.GrantJ,
		SpentJ:      s.ctl.EnergyAccounted(),
		MinAccuracy: s.reg.MinAccuracy,
		MeanAcc:     mean,
		Degraded:    s.gov.Degraded(),
		Infeasible:  s.gov.Infeasible(),
	}
	if includeEstimates {
		for arm := 0; arm < s.gov.NumArms(); arm++ {
			rate, power, pulls := s.gov.ArmEstimate(arm)
			si.Estimates = append(si.Estimates, wire.ArmEstimate{Arm: arm, Rate: rate, Power: power, Pulls: pulls})
		}
	}
	return si
}

// replay drives one logged iteration through the controller — the
// snapshot-restore path. It bypasses the state checks (the log was
// produced by calls that passed them) but uses the exact same feed.
func (s *session) replay(rec iterRec) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending.now, s.pending.eerr = rec.NextNow, false
	s.ctl.Next()
	s.armedNow = rec.NextNow
	s.pending.now, s.pending.energy, s.pending.eerr = rec.DoneNow, rec.EnergyJ, rec.EnergyErr
	if err := s.ctl.Done(rec.Accuracy); err != nil {
		return fmt.Errorf("server: replaying session %s: %w", s.id, err)
	}
	s.log = append(s.log, rec)
	s.accSum += rec.Accuracy
	if s.ctl.Iterations() >= s.reg.Iterations {
		s.state = stateComplete
	} else {
		s.state = stateIdle
	}
	return nil
}

// snapshotLocked copies the session's durable state; callers hold s.mu
// (via the server's session map lock discipline: the snapshotter takes
// s.mu itself).
func (s *session) snapshotView() (reg wire.RegisterRequest, grant Grant, log []iterRec, live bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	live = s.state == stateIdle || s.state == stateArmed || s.state == stateComplete
	log = make([]iterRec, len(s.log))
	copy(log, s.log)
	return s.reg, s.grant, log, live
}

// SessionExport is one session's incremental state for the cluster
// heartbeat: registration, ledger, and the iteration log from a given
// index — everything the fleet coordinator needs to restore the session
// elsewhere by replay.
type SessionExport struct {
	ID, Key   string
	Reg       wire.RegisterRequest
	GrantJ    float64
	ImportedJ float64
	SpentJ    float64
	Done      int
	Live      bool
	Complete  bool
	NewIters  []wire.IterRec
}

// export copies the session's reportable state, with the log trimmed to
// entries at index >= from (what the coordinator has not yet acked).
func (s *session) export(from int) SessionExport {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > len(s.log) {
		from = len(s.log)
	}
	recs := make([]wire.IterRec, len(s.log)-from)
	copy(recs, s.log[from:])
	return SessionExport{
		ID:        s.id,
		Key:       s.reg.Key,
		Reg:       s.reg,
		GrantJ:    s.grant.GrantJ,
		ImportedJ: s.grant.ImportedJ,
		SpentJ:    s.ctl.EnergyAccounted(),
		Done:      len(s.log),
		Live:      s.state == stateIdle || s.state == stateArmed || s.state == stateComplete,
		Complete:  s.state == stateComplete,
		NewIters:  recs,
	}
}

// localSpent is the energy accounted against this node's lease: total
// spend minus whatever was imported with an adopted session.
func (s *session) localSpent() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := s.ctl.EnergyAccounted() - s.grant.ImportedJ
	if sp < 0 {
		sp = 0
	}
	return sp
}

// attachView reports what a register-by-key attach needs; ok is false
// when the session is no longer live (the key may be re-registered).
func (s *session) attachView() (resp wire.RegisterResponse, reg wire.RegisterRequest, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == stateClosed || s.state == stateExpired {
		return wire.RegisterResponse{}, s.reg, false
	}
	return wire.RegisterResponse{
		SessionID:      s.id,
		SessionNum:     s.num,
		GrantJ:         s.grant.GrantJ,
		Iterations:     s.reg.Iterations,
		AppConfigs:     s.tb.App.NumConfigs(),
		SysConfigs:     s.tb.Platform.NumConfigs(),
		Resumed:        true,
		IterationsDone: len(s.log),
	}, s.reg, true
}

// setGrant swaps in the broker's final grant record (used by Adopt,
// where the governor is built and replayed before admission settles the
// commitment arithmetic).
func (s *session) setGrant(g Grant) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.grant = g
}
