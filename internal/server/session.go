package server

import (
	"fmt"
	"math"
	"sync"
	"time"

	"jouleguard"
	"jouleguard/internal/measure"
	"jouleguard/internal/telemetry"
	"jouleguard/internal/wire"
)

// meterHook is the sessions' shared handle on the daemon's measurement
// service (Config.Meter). In meter mode every iteration is bracketed by
// an attribution window — opened at Next with the session's expected
// draw as its weight, closed at Done — and the joules the pipeline
// attributed to the window are what the ledger debits; the client's own
// reading is never billed. stim, when set (simulated backend), feeds the
// client's reported energy delta into the meter as physical stimulus
// before the settling sample, standing in for the hardware the
// simulator does not have.
type meterHook struct {
	// mu serializes settles so one session's stimulus cannot land
	// between another session's deposit and the sample meant to observe
	// it — the deposit+advance+sample triple is atomic per iteration.
	mu   sync.Mutex
	svc  *measure.Service
	stim func(joules, durS float64)
}

// open brackets the start of an iteration on a hardware meter; weight is
// the session's expected power draw, the share key when windows overlap.
// With a stimulus-driven meter (virtual timeline) this is a no-op: the
// virtual clock serializes every session's work, so windows there are
// opened exclusively inside settle — bracketing Next would hand each
// bystander a cut of the settling session's deposit.
func (h *meterHook) open(id string, weight float64) {
	if h.stim != nil {
		return
	}
	h.svc.OpenWindow(id, weight)
}

// settle ends an iteration: apply the stimulus (if any), force a
// synchronous sample so the window is charged up to this instant, and
// close it. ok is false when the iteration could not be measured — a
// restart lost the hardware window, or a stimulus-driven meter got no
// stimulus (the client's own counter failed).
//
// On the stimulus path the open+deposit+advance+sample+close run as one
// critical section, so exactly one window is open during the sample and
// the entire above-baseline delta is attributed to the session that
// physically burned it.
func (h *meterHook) settle(id string, weight, stimJ, stimDurS float64) (joules float64, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.stim != nil {
		if stimJ <= 0 || stimDurS <= 0 {
			return 0, false
		}
		h.svc.OpenWindow(id, weight)
		h.stim(stimJ, stimDurS)
	}
	h.svc.Sample()
	return h.svc.CloseWindow(id)
}

// discard drops a window without billing anyone — session teardown with
// an iteration still armed.
func (h *meterHook) discard(id string) { h.svc.CloseWindow(id) }

// sessionState is the wire-visible lifecycle of one session:
//
//	           POST next            POST done
//	 +------+ ----------> +-------+ ----------> (iters left: idle)
//	 | idle |             | armed |
//	 +------+ <---------- +-------+ ----------> +----------+
//	    |        done            \               | complete |
//	    |                         \ daemon dies  +----------+
//	    |  DELETE / idle expiry    \ before done      |  DELETE / expiry
//	    v                           v                 v
//	+--------+-----------+     restored as idle   (released)
//	| closed  |  expired |     (client re-brackets the lost iteration)
//	+--------+-----------+
//
// Only idle/armed/complete sessions hold budget; closing or expiring
// releases the grant back to the broker.
type sessionState int

const (
	stateIdle sessionState = iota
	stateArmed
	stateComplete
	stateClosed
	stateExpired
)

// String names the state for the wire and the logs.
func (s sessionState) String() string {
	switch s {
	case stateIdle:
		return "idle"
	case stateArmed:
		return "armed"
	case stateComplete:
		return "complete"
	case stateClosed:
		return "closed"
	case stateExpired:
		return "expired"
	}
	return "unknown"
}

// iterRec is one completed iteration in the session's write-ahead log:
// exactly the client-supplied inputs the controller consumed, so a
// restored daemon can replay them through a fresh controller and land on
// bit-identical state. The record is shared with the cluster protocol
// (heartbeat session reports, failover adoption) as wire.IterRec.
type iterRec = wire.IterRec

// session wraps one tenant's governor — a JouleGuard runtime behind an
// OnlineController — and adapts it to the wire: the client's clock and
// meter readings arrive in request bodies and are fed to the controller
// through the pending sample, so the controller's hardened sensing path
// (guard, outage reconciliation, model fallback) is reused verbatim.
type session struct {
	mu    sync.Mutex
	id    string
	num   uint32 // numeric id for v2 frame headers (0 = v1-only)
	reg   wire.RegisterRequest
	grant Grant

	tb  *jouleguard.Testbed
	gov *jouleguard.Runtime
	ctl *jouleguard.OnlineController

	state   sessionState
	pending struct {
		now    float64
		energy float64
		eerr   bool
	}
	armedNow  float64
	log       []iterRec
	accSum    float64
	lastTouch time.Time

	// Meter mode (nil hook = client-supplied readings). meterCumJ is the
	// session's synthesized cumulative counter — the sum of every closed
	// window's attributed joules, fed to the controller in place of the
	// client's reading so its guard sees a monotone series. lastClientJ
	// anchors the client's cumulative report so each iteration's delta
	// can be deposited as simulator stimulus.
	meter       *meterHook
	meterW      float64 // attribution weight of the armed iteration: the chosen config's model draw
	meterCumJ   float64
	lastClientJ float64

	// QoS wiring. shedded marks a session killed by the tenant-protection
	// engine: introspection reads "killed" and post-mortem wire calls
	// answer tenant_shed (back off and re-register) instead of
	// session_closed. noteSpend, when set, streams each settled
	// iteration's energy delta into the broker's per-tenant ledger;
	// lastSpentJ is the accounted total at the previous settle.
	shedded    bool
	lastSpentJ float64
	noteSpend  func(tenant string, deltaJ, dtS float64)
}

// newSession builds the governor stack for an admitted registration.
// sink is the telemetry the session reports into (nil while replaying a
// snapshot; installLiveSink attaches the real one afterwards).
func newSession(id string, reg wire.RegisterRequest, grant Grant, meter *meterHook, sink telemetry.Sink, now time.Time) (*session, error) {
	tb, err := jouleguard.NewTestbed(reg.App, reg.Platform)
	if err != nil {
		return nil, err
	}
	gov, err := tb.NewJouleGuardBudget(grant.GrantJ, reg.Iterations, jouleguard.Options{
		Seed:      reg.Seed,
		Telemetry: sink,
	})
	if err != nil {
		return nil, err
	}
	s := &session{id: id, num: sessionNum(id), reg: reg, grant: grant, tb: tb, gov: gov, meter: meter, lastTouch: now}
	ctl, err := jouleguard.NewOnlineGuarded(gov,
		s.readPendingEnergy, s.readPendingNow,
		jouleguard.SensorGuardConfig{ModelPower: tb.DefaultPower})
	if err != nil {
		return nil, err
	}
	if sink != nil {
		ctl.SetTelemetry(sink)
	}
	s.ctl = ctl
	return s, nil
}

// sessionNum derives the v2 frame-header id from the "s-%06d" string id
// (snapshot restore and adoption mint sessions from logged ids, so
// deriving rather than storing keeps the two forms consistent across
// every path). Ids that do not parse, or overflow uint32, yield 0 —
// such a session is served over v1 only.
func sessionNum(id string) uint32 {
	var n uint64
	if _, err := fmt.Sscanf(id, "s-%d", &n); err != nil || n == 0 || n > math.MaxUint32 {
		return 0
	}
	return uint32(n)
}

// readPendingEnergy and readPendingNow feed the controller the last
// wire-reported sample; callers hold s.mu for the whole Next/Done call,
// so the pending fields are stable while the controller reads them.
func (s *session) readPendingEnergy() (float64, error) {
	if s.pending.eerr {
		return 0, fmt.Errorf("server: client reported an energy-meter failure")
	}
	return s.pending.energy, nil
}

func (s *session) readPendingNow() float64 { return s.pending.now }

// installLiveSink attaches the live telemetry sink after a snapshot
// replay, so restored state resumes reporting without the replayed
// iterations having been double-counted.
func (s *session) installLiveSink(sink telemetry.Sink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gov.SetTelemetry(sink)
	s.ctl.SetTelemetry(sink)
}

// wireError pairs a stable protocol code with a message.
type wireError struct {
	code string
	msg  string
}

func (e *wireError) Error() string { return e.msg }

func errBadSequence(msg string) *wireError   { return &wireError{wire.CodeBadSequence, msg} }
func errSessionClosed(msg string) *wireError { return &wireError{wire.CodeSessionClosed, msg} }
func errLeaseExpired() *wireError {
	return &wireError{wire.CodeLeaseExpired, "node budget lease expired; awaiting renewal or failover"}
}

// checkLive rejects calls on torn-down sessions; callers hold s.mu.
func (s *session) checkLive() *wireError {
	if s.shedded {
		return &wireError{wire.CodeTenantShed,
			"session killed by tenant shedding; wait for the tenant to de-escalate, then re-register"}
	}
	switch s.state {
	case stateClosed:
		return errSessionClosed("session closed")
	case stateExpired:
		return errSessionClosed("session expired by the idle watchdog")
	}
	return nil
}

// next runs the wire Next call: decide the upcoming iteration's
// configurations and start its interval on the client's clock.
func (s *session) next(req wire.NextRequest, now time.Time) (wire.NextResponse, *wireError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if werr := s.checkLive(); werr != nil {
		return wire.NextResponse{}, werr
	}
	switch s.state {
	case stateComplete:
		return wire.NextResponse{}, &wireError{wire.CodeSessionComplete,
			fmt.Sprintf("workload of %d iterations already complete; close the session to reclaim its budget", s.reg.Iterations)}
	case stateArmed:
		return wire.NextResponse{}, errBadSequence("Next while an iteration is already in flight (Done not yet reported)")
	}
	s.pending.now, s.pending.eerr = req.NowS, false
	app, sys := s.ctl.Next()
	s.armedNow = req.NowS
	s.state = stateArmed
	s.lastTouch = now
	if s.meter != nil {
		// The attribution weight is the CHOSEN operating point's model
		// draw, not the app default: concurrent windows split each
		// sample's energy by weight, so weighting by the actuated power
		// keeps a tenant's debit coupled to its own knob — a throttled
		// session must not keep paying the fleet-average rate.
		s.meterW = s.tb.Platform.Power(sys, s.tb.Profile)
		s.meter.open(s.id, s.meterW)
	}
	return wire.NextResponse{Iter: s.ctl.Iterations(), AppConfig: app, SysConfig: sys}, nil
}

// done runs the wire Done call: deliver the client's measurements to the
// controller and settle the iteration.
func (s *session) done(req wire.DoneRequest, now time.Time) (wire.DoneResponse, *wireError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if werr := s.checkLive(); werr != nil {
		return wire.DoneResponse{}, werr
	}
	if s.state != stateArmed {
		return wire.DoneResponse{}, errBadSequence("Done without a pending Next")
	}
	energyJ, energyErr := req.EnergyJ, req.EnergyErr
	if s.meter != nil {
		energyJ, energyErr = s.meterSettle(req)
	}
	s.pending.now, s.pending.energy, s.pending.eerr = req.NowS, energyJ, energyErr
	if err := s.ctl.Done(req.Accuracy); err != nil {
		// The armed check above rules out sequencing errors; anything
		// else is an internal failure worth surfacing as such.
		return wire.DoneResponse{}, &wireError{wire.CodeBadRequest, err.Error()}
	}
	// The log records what the controller consumed (the meter-attributed
	// value in meter mode), so a restore replays to bit-identical state.
	s.log = append(s.log, iterRec{
		NextNow: s.armedNow, DoneNow: req.NowS,
		EnergyJ: energyJ, EnergyErr: energyErr, Accuracy: req.Accuracy,
	})
	s.accSum += req.Accuracy
	if s.noteSpend != nil {
		// Stream the settle into the broker's per-tenant ledger (lock
		// order session.mu -> broker.mu; the broker never takes session
		// locks). The iteration's wall time comes from the client clock
		// that also paces the controller.
		spent := s.ctl.EnergyAccounted()
		s.noteSpend(s.reg.Tenant, spent-s.lastSpentJ, req.NowS-s.armedNow)
		s.lastSpentJ = spent
	}
	if s.ctl.Iterations() >= s.reg.Iterations {
		s.state = stateComplete
	} else {
		s.state = stateIdle
	}
	s.lastTouch = now
	return s.doneResponseLocked(), nil
}

// meterSettle closes the iteration's attribution window and swaps the
// pipeline's verdict in for the client's reading: the client's
// cumulative report contributes only its delta, deposited into a
// simulated meter as the physical work the "hardware" just executed;
// what the ledger debits is whatever survived calibration, the
// plausibility gate and weight-shared attribution. Callers hold s.mu.
func (s *session) meterSettle(req wire.DoneRequest) (cumJ float64, eerr bool) {
	stimJ := -1.0
	if !req.EnergyErr {
		if d := req.EnergyJ - s.lastClientJ; d > 0 {
			stimJ = d
		}
		s.lastClientJ = req.EnergyJ
	}
	w, ok := s.meter.settle(s.id, s.meterW, stimJ, req.NowS-s.armedNow)
	if !ok {
		// The iteration could not be measured (a restart rebuilt the
		// session mid-flight, or a stimulus meter got no stimulus):
		// report a meter outage for this interval and let the
		// controller's own guard substitute its model estimate.
		return s.meterCumJ, true
	}
	s.meterCumJ += w
	return s.meterCumJ, false
}

// doneResponseLocked assembles the ledger view; callers hold s.mu.
func (s *session) doneResponseLocked() wire.DoneResponse {
	spent := s.ctl.EnergyAccounted()
	return wire.DoneResponse{
		IterationsDone:  s.ctl.Iterations(),
		SpentJ:          spent,
		GrantRemainingJ: s.grant.GrantJ - spent,
		Degraded:        s.gov.Degraded(),
		Infeasible:      s.gov.Infeasible(),
		Complete:        s.state == stateComplete,
	}
}

// spent returns the energy the session's ledger has accounted so far.
func (s *session) spent() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctl.EnergyAccounted()
}

// teardown moves the session to a terminal state and reports what the
// broker should settle. It is idempotent; only the first call releases.
func (s *session) teardown(to sessionState) (spentJ float64, release bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == stateClosed || s.state == stateExpired {
		return 0, false
	}
	if s.meter != nil && s.state == stateArmed {
		// An armed teardown leaves an open attribution window; discard it
		// so the dead session stops absorbing shares of live samples.
		s.meter.discard(s.id)
	}
	s.state = to
	return s.ctl.EnergyAccounted(), true
}

// shed tears the session down on behalf of the tenant-protection
// engine. It mirrors teardown but marks the session shedded, so
// introspection reads "killed" and post-mortem wire calls answer
// tenant_shed — a retryable verdict telling the client to back off and
// re-register, not that its workload shape was wrong.
func (s *session) shed() (spentJ float64, release bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == stateClosed || s.state == stateExpired {
		return 0, false
	}
	if s.meter != nil && s.state == stateArmed {
		s.meter.discard(s.id)
	}
	s.state = stateExpired
	s.shedded = true
	return s.ctl.EnergyAccounted(), true
}

// idleSince reports the last wire activity; the expiry watchdog compares
// it against the session's timeout.
func (s *session) idleSince() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := s.state == stateIdle || s.state == stateArmed || s.state == stateComplete
	return s.lastTouch, live
}

// inFlight reports whether a wire iteration is bracketed (armed); the
// drain loop waits for in-flight iterations to settle before snapshot.
func (s *session) inFlight() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == stateArmed
}

// info assembles the introspection view.
func (s *session) info(includeEstimates bool) wire.SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.ctl.Iterations()
	mean := 0.0
	if n > 0 {
		mean = s.accSum / float64(n)
	}
	state := s.state.String()
	if s.shedded {
		state = "killed"
	}
	si := wire.SessionInfo{
		SessionID:   s.id,
		Tenant:      s.reg.Tenant,
		Weight:      s.grant.Weight,
		App:         s.reg.App,
		Platform:    s.reg.Platform,
		State:       state,
		Iterations:  s.reg.Iterations,
		IterDone:    n,
		GrantJ:      s.grant.GrantJ,
		SpentJ:      s.ctl.EnergyAccounted(),
		MinAccuracy: s.reg.MinAccuracy,
		MeanAcc:     mean,
		Degraded:    s.gov.Degraded(),
		Infeasible:  s.gov.Infeasible(),
	}
	if includeEstimates {
		for arm := 0; arm < s.gov.NumArms(); arm++ {
			rate, power, pulls := s.gov.ArmEstimate(arm)
			si.Estimates = append(si.Estimates, wire.ArmEstimate{Arm: arm, Rate: rate, Power: power, Pulls: pulls})
		}
	}
	return si
}

// replay drives one logged iteration through the controller — the
// snapshot-restore path. It bypasses the state checks (the log was
// produced by calls that passed them) but uses the exact same feed.
func (s *session) replay(rec iterRec) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending.now, s.pending.eerr = rec.NextNow, false
	s.ctl.Next()
	s.armedNow = rec.NextNow
	s.pending.now, s.pending.energy, s.pending.eerr = rec.DoneNow, rec.EnergyJ, rec.EnergyErr
	if err := s.ctl.Done(rec.Accuracy); err != nil {
		return fmt.Errorf("server: replaying session %s: %w", s.id, err)
	}
	s.log = append(s.log, rec)
	s.accSum += rec.Accuracy
	// Restore the settle baseline without re-noting spend: the replayed
	// joules were already booked by the node that first served them.
	s.lastSpentJ = s.ctl.EnergyAccounted()
	if s.meter != nil && !rec.EnergyErr {
		// Meter-mode records carry the synthesized cumulative series;
		// resume it where the log left off. The client's own counter is
		// not logged, so its last report is approximated by the same
		// value — the first post-restore stimulus is off by one
		// iteration's drift at worst, and the gate judges it like any
		// other sample.
		s.meterCumJ, s.lastClientJ = rec.EnergyJ, rec.EnergyJ
	}
	if s.ctl.Iterations() >= s.reg.Iterations {
		s.state = stateComplete
	} else {
		s.state = stateIdle
	}
	return nil
}

// snapshotLocked copies the session's durable state; callers hold s.mu
// (via the server's session map lock discipline: the snapshotter takes
// s.mu itself).
func (s *session) snapshotView() (reg wire.RegisterRequest, grant Grant, log []iterRec, live bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	live = s.state == stateIdle || s.state == stateArmed || s.state == stateComplete
	log = make([]iterRec, len(s.log))
	copy(log, s.log)
	return s.reg, s.grant, log, live
}

// SessionExport is one session's incremental state for the cluster
// heartbeat: registration, ledger, and the iteration log from a given
// index — everything the fleet coordinator needs to restore the session
// elsewhere by replay.
type SessionExport struct {
	ID, Key   string
	Reg       wire.RegisterRequest
	GrantJ    float64
	ImportedJ float64
	SpentJ    float64
	Done      int
	Live      bool
	Complete  bool
	NewIters  []wire.IterRec
}

// export copies the session's reportable state, with the log trimmed to
// entries at index >= from (what the coordinator has not yet acked).
func (s *session) export(from int) SessionExport {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > len(s.log) {
		from = len(s.log)
	}
	recs := make([]wire.IterRec, len(s.log)-from)
	copy(recs, s.log[from:])
	return SessionExport{
		ID:        s.id,
		Key:       s.reg.Key,
		Reg:       s.reg,
		GrantJ:    s.grant.GrantJ,
		ImportedJ: s.grant.ImportedJ,
		SpentJ:    s.ctl.EnergyAccounted(),
		Done:      len(s.log),
		Live:      s.state == stateIdle || s.state == stateArmed || s.state == stateComplete,
		Complete:  s.state == stateComplete,
		NewIters:  recs,
	}
}

// localSpent is the energy accounted against this node's lease: total
// spend minus whatever was imported with an adopted session.
func (s *session) localSpent() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := s.ctl.EnergyAccounted() - s.grant.ImportedJ
	if sp < 0 {
		sp = 0
	}
	return sp
}

// attachView reports what a register-by-key attach needs; ok is false
// when the session is no longer live (the key may be re-registered).
func (s *session) attachView() (resp wire.RegisterResponse, reg wire.RegisterRequest, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == stateClosed || s.state == stateExpired {
		return wire.RegisterResponse{}, s.reg, false
	}
	return wire.RegisterResponse{
		SessionID:      s.id,
		SessionNum:     s.num,
		GrantJ:         s.grant.GrantJ,
		Iterations:     s.reg.Iterations,
		AppConfigs:     s.tb.App.NumConfigs(),
		SysConfigs:     s.tb.Platform.NumConfigs(),
		Resumed:        true,
		IterationsDone: len(s.log),
	}, s.reg, true
}

// setGrant swaps in the broker's final grant record (used by Adopt,
// where the governor is built and replayed before admission settles the
// commitment arithmetic).
func (s *session) setGrant(g Grant) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.grant = g
}
