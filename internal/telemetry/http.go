package telemetry

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// Mount registers the live exposition endpoints on mux:
//
//	/metrics    Prometheus text exposition of every registered metric
//	/healthz    liveness probe; JSON role/fence once SetHealth is wired
//	/decisions  the flight-recorder window as JSONL (?n=K for the last K,
//	            ?session=ID to filter one daemon session's decisions,
//	            ?since=SEQ to tail incrementally; gzip when accepted)
//	/traces     the span-buffer window as JSONL (?trace=HEXID to select
//	            one distributed trace)
//	/debug/pprof/...  the standard Go profiling endpoints
//
// Mount is the one place these handlers are wired: cmd/jouleguard -serve
// and cmd/jouleguardd both call it (the daemon on a mux that also
// carries the /v1/sessions API), so the exposition surface cannot drift
// between the binaries. The handlers are safe to serve while experiments
// run; scrapes read atomics and copy the flight window under its mutex.
func (t *Telemetry) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/metrics", t.serveMetrics)
	mux.HandleFunc("/healthz", t.serveHealthz)
	mux.HandleFunc("/decisions", t.serveDecisions)
	mux.HandleFunc("/traces", t.serveTraces)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns a mux carrying exactly the Mount endpoints.
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	t.Mount(mux)
	return mux
}

func (t *Telemetry) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = t.Registry.WritePrometheus(w)
}

func (t *Telemetry) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	meter, haveMeter := t.Meter()
	var meterPtr *MeterInfo
	if haveMeter {
		meterPtr = &meter
	}
	qos, haveQoS := t.QoS()
	var qosPtr *QoSInfo
	if haveQoS {
		qosPtr = &qos
	}
	if info, ok := t.Health(); ok || haveMeter || haveQoS {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			HealthInfo
			UptimeS   float64    `json:"uptime_seconds"`
			Decisions uint64     `json:"decisions_recorded"`
			Meter     *MeterInfo `json:"meter,omitempty"`
			QoS       *QoSInfo   `json:"qos,omitempty"`
		}{info, time.Since(t.start).Seconds(), t.Flight.Total(), meterPtr, qosPtr})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok\nuptime_seconds %.1f\ndecisions_recorded %d\n",
		time.Since(t.start).Seconds(), t.Flight.Total())
}

func (t *Telemetry) serveDecisions(w http.ResponseWriter, r *http.Request) {
	last := 0
	if s := r.URL.Query().Get("n"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "n must be a non-negative integer", http.StatusBadRequest)
			return
		}
		last = n
	}
	var since uint64
	haveSince := false
	if s := r.URL.Query().Get("since"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "since must be a non-negative integer sequence number", http.StatusBadRequest)
			return
		}
		since, haveSince = n, true
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	out := compressed(w, r)
	defer out.close()
	session := r.URL.Query().Get("session")
	if haveSince || session != "" {
		var snap []Decision
		if haveSince {
			snap = t.Flight.SnapshotSince(since)
		} else {
			snap = t.Flight.Snapshot()
		}
		if session != "" {
			kept := snap[:0]
			for _, d := range snap {
				if d.Session == session {
					kept = append(kept, d)
				}
			}
			snap = kept
		}
		// ?n= tails the filtered stream, so it means "the last n of what
		// the other filters kept".
		if last > 0 && last < len(snap) {
			snap = snap[len(snap)-last:]
		}
		enc := json.NewEncoder(out)
		for i := range snap {
			if err := enc.Encode(sanitizeDecision(snap[i])); err != nil {
				return
			}
		}
		return
	}
	_ = t.Flight.WriteJSONL(out, last)
}

func (t *Telemetry) serveTraces(w http.ResponseWriter, r *http.Request) {
	var trace uint64
	if s := r.URL.Query().Get("trace"); s != "" {
		id, ok := ParseID(s)
		if !ok {
			http.Error(w, "trace must be a hex id (up to 16 digits)", http.StatusBadRequest)
			return
		}
		trace = id
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	out := compressed(w, r)
	defer out.close()
	_ = t.Spans.WriteJSONL(out, trace)
}

// gzipSink pairs the negotiated response writer with its cleanup.
type gzipSink struct {
	http.ResponseWriter
	gz *gzip.Writer
}

func (s *gzipSink) Write(p []byte) (int, error) {
	if s.gz != nil {
		return s.gz.Write(p)
	}
	return s.ResponseWriter.Write(p)
}

func (s *gzipSink) close() {
	if s.gz != nil {
		_ = s.gz.Close()
	}
}

// compressed wraps w in a gzip writer when the client accepts it — long
// chaos runs tail /decisions and /traces repeatedly, and the JSONL is
// highly compressible.
func compressed(w http.ResponseWriter, r *http.Request) *gzipSink {
	for _, enc := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		e := strings.TrimSpace(enc)
		if e == "gzip" || strings.HasPrefix(e, "gzip;") {
			w.Header().Set("Content-Encoding", "gzip")
			return &gzipSink{ResponseWriter: w, gz: gzip.NewWriter(w)}
		}
	}
	return &gzipSink{ResponseWriter: w}
}
