package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Mount registers the live exposition endpoints on mux:
//
//	/metrics    Prometheus text exposition of every registered metric
//	/healthz    liveness probe with uptime and decision count
//	/decisions  the flight-recorder window as JSONL (?n=K for the last K,
//	            ?session=ID to filter one daemon session's decisions)
//	/debug/pprof/...  the standard Go profiling endpoints
//
// Mount is the one place these handlers are wired: cmd/jouleguard -serve
// and cmd/jouleguardd both call it (the daemon on a mux that also
// carries the /v1/sessions API), so the exposition surface cannot drift
// between the binaries. The handlers are safe to serve while experiments
// run; scrapes read atomics and copy the flight window under its mutex.
func (t *Telemetry) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/metrics", t.serveMetrics)
	mux.HandleFunc("/healthz", t.serveHealthz)
	mux.HandleFunc("/decisions", t.serveDecisions)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns a mux carrying exactly the Mount endpoints.
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	t.Mount(mux)
	return mux
}

func (t *Telemetry) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = t.Registry.WritePrometheus(w)
}

func (t *Telemetry) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok\nuptime_seconds %.1f\ndecisions_recorded %d\n",
		time.Since(t.start).Seconds(), t.Flight.Total())
}

func (t *Telemetry) serveDecisions(w http.ResponseWriter, r *http.Request) {
	last := 0
	if s := r.URL.Query().Get("n"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "n must be a non-negative integer", http.StatusBadRequest)
			return
		}
		last = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if session := r.URL.Query().Get("session"); session != "" {
		// Per-session view: filter the window, then apply the tail limit
		// to the filtered stream so ?n= means "this session's last n".
		snap := t.Flight.Snapshot()
		kept := snap[:0]
		for _, d := range snap {
			if d.Session == session {
				kept = append(kept, d)
			}
		}
		if last > 0 && last < len(kept) {
			kept = kept[len(kept)-last:]
		}
		enc := json.NewEncoder(w)
		for i := range kept {
			if err := enc.Encode(sanitizeDecision(kept[i])); err != nil {
				return
			}
		}
		return
	}
	_ = t.Flight.WriteJSONL(w, last)
}
