package telemetry

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Handler returns the live exposition endpoint:
//
//	/metrics    Prometheus text exposition of every registered metric
//	/healthz    liveness probe with uptime and decision count
//	/decisions  the flight-recorder window as JSONL (?n=K for the last K)
//	/debug/pprof/...  the standard Go profiling endpoints
//
// The handler is safe to serve while experiments run; scrapes read
// atomics and copy the flight window under its mutex.
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", t.serveMetrics)
	mux.HandleFunc("/healthz", t.serveHealthz)
	mux.HandleFunc("/decisions", t.serveDecisions)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (t *Telemetry) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = t.Registry.WritePrometheus(w)
}

func (t *Telemetry) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok\nuptime_seconds %.1f\ndecisions_recorded %d\n",
		time.Since(t.start).Seconds(), t.Flight.Total())
}

func (t *Telemetry) serveDecisions(w http.ResponseWriter, r *http.Request) {
	last := 0
	if s := r.URL.Query().Get("n"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "n must be a non-negative integer", http.StatusBadRequest)
			return
		}
		last = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = t.Flight.WriteJSONL(w, last)
}
