package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// Distributed iteration tracing. A trace is a 64-bit id minted by the
// client (head-based sampling: most iterations mint nothing and the
// whole layer is an untaken branch); every hop the traced iteration
// crosses — client send, daemon decode, bandit decision, guard verdict,
// broker debit, coordinator lease mutation — records one Span into its
// process's bounded SpanBuffer. Buffers are joined across processes by
// trace id: each node serves its window at /traces, and a cross-node
// query is just the union of the per-node answers.
//
// The recording discipline mirrors the flight recorder: Span is a value
// struct copied into a pre-allocated ring slot under a mutex, and span
// names are package-level constants, so recording allocates nothing and
// the 0 allocs/op decision path survives with tracing compiled in.

// DefaultSpanCapacity is the span window kept when no capacity is given.
const DefaultSpanCapacity = 4096

// Span names recorded by the stack, one per hop. Constants so recording
// a span never builds a string.
const (
	SpanClientSend  = "client.send"     // client issues the iteration round-trip
	SpanDecode      = "daemon.decode"   // daemon decodes the wire request (v1 or v2)
	SpanDecision    = "bandit.decision" // SEO/AAO pick the next configuration
	SpanGuard       = "guard.verdict"   // sensing guard rules on the sample
	SpanBrokerDebit = "broker.debit"    // session ledger debited for the spend
	SpanCoordLease  = "coord.lease"     // coordinator books the spend against the lease
)

// Span is one hop of one traced iteration. IDs render as fixed-width
// hex in JSON (the join key a human greps across nodes); times are
// seconds on the recording process's clock — clocks are not assumed
// synchronized across nodes, so cross-node ordering comes from the
// parent links, not the timestamps.
type Span struct {
	Trace  uint64
	ID     uint64
	Parent uint64

	Name    string
	Node    string // recording process identity ("" until SetNode)
	Session string // daemon session id ("" for client-side spans)

	StartS float64
	EndS   float64

	// Optional attributes: joules moved at this hop, and the iteration
	// index it belongs to (-1 = not an iteration-scoped span).
	AttrJ    float64
	AttrIter int
}

// spanJSON is the export form: ids as 16-hex-digit strings.
type spanJSON struct {
	Trace   string  `json:"trace"`
	ID      string  `json:"id"`
	Parent  string  `json:"parent,omitempty"`
	Name    string  `json:"name"`
	Node    string  `json:"node,omitempty"`
	Session string  `json:"session,omitempty"`
	StartS  float64 `json:"start_s"`
	EndS    float64 `json:"end_s"`
	AttrJ   float64 `json:"joules,omitempty"`
	Iter    int     `json:"iter"`
}

// FormatID renders a trace or span id the way /traces exports it.
func FormatID(id uint64) string {
	const hexdig = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdig[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// ParseID parses a 1..16-hex-digit id (the /traces query format).
func ParseID(s string) (uint64, bool) {
	if s == "" || len(s) > 16 {
		return 0, false
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		case c >= 'A' && c <= 'F':
			v = v<<4 | uint64(c-'A'+10)
		default:
			return 0, false
		}
	}
	return v, true
}

// mix64 is the splitmix64 finalizer: a cheap bijective scramble that
// turns a counter into ids with well-spread bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// MintTraceID derives trace id n of a stream seeded with seed; ids are
// nonzero (0 on the wire means "untraced").
func MintTraceID(seed, n uint64) uint64 {
	id := mix64(seed ^ mix64(n+0x9e3779b97f4a7c15))
	if id == 0 {
		id = 1
	}
	return id
}

// SpanBuffer is a bounded ring of spans — the flight recorder's shape,
// applied to trace hops. One SpanBuffer serves a process.
type SpanBuffer struct {
	mu    sync.Mutex
	buf   []Span
	total uint64
	node  string
	next  atomic.Uint64 // span-id counter, scrambled through mix64
	seed  uint64
}

// NewSpanBuffer builds a buffer holding the last capacity spans
// (DefaultSpanCapacity if <= 0).
func NewSpanBuffer(capacity int) *SpanBuffer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &SpanBuffer{buf: make([]Span, capacity)}
}

// SetNode stamps the process identity onto every span recorded from now
// on (and the seed that keeps span ids distinct across processes).
func (b *SpanBuffer) SetNode(node string) {
	b.mu.Lock()
	b.node = node
	seed := uint64(14695981039346656037)
	for i := 0; i < len(node); i++ {
		seed ^= uint64(node[i])
		seed *= 1099511628211
	}
	b.seed = seed
	b.mu.Unlock()
}

// Node returns the process identity set by SetNode ("" before it).
func (b *SpanBuffer) Node() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.node
}

// NextID mints a fresh span id, unique within this process and
// well-spread across processes that called SetNode with distinct names.
func (b *SpanBuffer) NextID() uint64 {
	id := mix64(b.seed ^ b.next.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// Record appends one span, overwriting the oldest once full. A zero
// trace id is ignored so callers can record unconditionally.
func (b *SpanBuffer) Record(s Span) {
	if s.Trace == 0 {
		return
	}
	b.mu.Lock()
	if s.Node == "" {
		s.Node = b.node
	}
	b.buf[b.total%uint64(len(b.buf))] = s
	b.total++
	b.mu.Unlock()
}

// Total returns how many spans were ever recorded.
func (b *SpanBuffer) Total() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Snapshot returns the recorded window oldest-first, optionally
// filtered to one trace id (0 = everything).
func (b *SpanBuffer) Snapshot(trace uint64) []Span {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := int(b.total)
	if n > len(b.buf) {
		n = len(b.buf)
	}
	out := make([]Span, 0, n)
	start := b.total - uint64(n)
	for i := 0; i < n; i++ {
		s := b.buf[(start+uint64(i))%uint64(len(b.buf))]
		if trace == 0 || s.Trace == trace {
			out = append(out, s)
		}
	}
	return out
}

// WriteJSONL writes spans oldest-first, one JSON object per line,
// optionally filtered to one trace — the /traces exposition format.
func (b *SpanBuffer) WriteJSONL(w io.Writer, trace uint64) error {
	snap := b.Snapshot(trace)
	enc := json.NewEncoder(w)
	for i := range snap {
		s := snap[i]
		fin := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return v
		}
		j := spanJSON{
			Trace:   FormatID(s.Trace),
			ID:      FormatID(s.ID),
			Name:    s.Name,
			Node:    s.Node,
			Session: s.Session,
			StartS:  fin(s.StartS),
			EndS:    fin(s.EndS),
			AttrJ:   fin(s.AttrJ),
			Iter:    s.AttrIter,
		}
		if s.Parent != 0 {
			j.Parent = FormatID(s.Parent)
		}
		if err := enc.Encode(j); err != nil {
			return err
		}
	}
	return nil
}
