package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The registry implements the subset of the Prometheus data model the
// runtime needs — counters, gauges and fixed-bucket histograms, with
// optional constant labels — and renders the text exposition format
// (version 0.0.4) that any Prometheus-compatible scraper ingests.
// Metric updates are lock-free atomics so the hot control path never
// contends with a scrape.

// Label is one constant name="value" pair attached to a metric at
// registration time.
type Label struct {
	Name, Value string
}

// Counter is a monotonically increasing value. The float64 is stored as
// atomic bits so Add is lock-free.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta; negative or non-finite deltas are ignored (a counter
// only goes up).
func (c *Counter) Add(delta float64) {
	if !(delta > 0) || math.IsInf(delta, 0) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value; non-finite values are ignored so a NaN
// from a degenerate iteration cannot corrupt the exposition.
func (g *Gauge) Set(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetBool sets the gauge to 1 or 0.
func (g *Gauge) SetBool(b bool) {
	if b {
		g.Set(1)
	} else {
		g.Set(0)
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets. Bounds
// are the inclusive upper edges in ascending order; the +Inf bucket is
// implicit. Observations are lock-free.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, the last is +Inf
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one sample; non-finite samples are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// ExpBuckets returns n exponential bucket bounds starting at start and
// growing by factor — the fixed schema used for duration and power
// histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		return []float64{1}
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets is the fixed schema for iteration durations, spanning
// 100µs to ~100s.
func DurationBuckets() []float64 { return ExpBuckets(1e-4, math.Sqrt(10), 13) }

// MicroDurationBuckets is the duration schema for the v2-era hot path,
// spanning 1µs to ~3s in half-decade steps. The original
// DurationBuckets start at 100µs — chosen for millisecond-scale v1 JSON
// round trips — which collapses the entire ~1.5µs in-process / ~99µs v2
// decision distribution into the first bucket; decision and iteration
// histograms use this schema instead.
func MicroDurationBuckets() []float64 { return ExpBuckets(1e-6, math.Sqrt(10), 14) }

// PowerBuckets is the fixed schema for power samples, spanning 0.25W to
// ~256W.
func PowerBuckets() []float64 { return ExpBuckets(0.25, 2, 11) }

// metricKind is the exposition TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// child is one labelled instance within a family.
type child struct {
	labels    []Label
	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// family groups all children sharing a metric name.
type family struct {
	name     string
	help     string
	kind     metricKind
	children []*child
}

// Registry holds metric families and renders them. Metric handles
// returned by Counter/Gauge/Histogram are stable and lock-free to
// update; registration takes the registry lock.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// Counter registers (or returns the existing) counter with the given
// name and constant labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := r.register(name, help, kindCounter, labels)
	if c.counter == nil {
		c.counter = &Counter{}
	}
	return c.counter
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	c := r.register(name, help, kindGauge, labels)
	if c.gauge == nil {
		c.gauge = &Gauge{}
	}
	return c.gauge
}

// Histogram registers (or returns the existing) histogram with the given
// fixed bucket bounds (ascending upper edges; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	c := r.register(name, help, kindHistogram, labels)
	if c.histogram == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		c.histogram = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	}
	return c.histogram
}

// register finds or creates the (family, labelset) child. Invalid names
// and mismatched kinds panic: metric registration happens at
// construction time with static names, so a violation is a programming
// error, not a runtime condition.
func (r *Registry) register(name, help string, kind metricKind, labels []Label) *child {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l.Name) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %q", l.Name, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	for _, c := range f.children {
		if sameLabels(c.labels, labels) {
			return c
		}
	}
	c := &child{labels: append([]Label(nil), labels...)}
	f.children = append(f.children, c)
	return c
}

func sameLabels(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// MetricNames returns the registered family names, in registration
// order. Tests use it to assert every metric appears in the exposition.
func (r *Registry) MetricNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.families))
	for i, f := range r.families {
		out[i] = f.name
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP and TYPE line per family followed by
// its samples; histograms expand into cumulative _bucket series plus
// _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range f.children {
			switch f.kind {
			case kindCounter:
				writeSample(&b, f.name, c.labels, nil, c.counter.Value())
			case kindGauge:
				writeSample(&b, f.name, c.labels, nil, c.gauge.Value())
			case kindHistogram:
				h := c.histogram
				var cum uint64
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					writeSample(&b, f.name+"_bucket", c.labels,
						&Label{"le", formatFloat(bound)}, float64(cum))
				}
				cum += h.counts[len(h.bounds)].Load()
				writeSample(&b, f.name+"_bucket", c.labels, &Label{"le", "+Inf"}, float64(cum))
				writeSample(&b, f.name+"_sum", c.labels, nil, h.Sum())
				writeSample(&b, f.name+"_count", c.labels, nil, float64(h.Count()))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample emits one `name{labels} value` line. extra is an
// additional label (the histogram `le`) appended after the constant
// labels.
func writeSample(b *strings.Builder, name string, labels []Label, extra *Label, v float64) {
	b.WriteString(name)
	if len(labels) > 0 || extra != nil {
		b.WriteByte('{')
		first := true
		for _, l := range labels {
			if !first {
				b.WriteByte(',')
			}
			first = false
			fmt.Fprintf(b, "%s=%q", l.Name, escapeLabelValue(l.Value))
		}
		if extra != nil {
			if !first {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s=%q", extra.Name, escapeLabelValue(extra.Value))
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// formatFloat renders a sample value; the exposition format uses Go's
// shortest-representation float syntax.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes backslashes and newlines; %q adds the quote
// escaping.
func escapeLabelValue(s string) string {
	return strings.ReplaceAll(s, "\n", `\n`)
}
