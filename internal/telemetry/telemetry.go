// Package telemetry is JouleGuard's observability layer: a metric
// registry that renders the Prometheus text exposition format, a bounded
// flight recorder of per-iteration controller decisions with JSONL
// export, and the Sink interface the control path is instrumented
// against. The package is stdlib-only and sits below every other
// internal package so the runtime, the learner, the controller, the
// sensing guard, the fault injector and the experiment runner can all
// report into one place without import cycles.
//
// Instrumentation is designed to cost nothing when disabled: every Sink
// method takes only scalars or small value structs, so calling through
// the no-op implementation performs no allocation and no locking — the
// zero-alloc property is pinned by BenchmarkTelemetryNopSink and
// TestNopSinkZeroAlloc. Components therefore call their sink
// unconditionally instead of branching on "is telemetry on".
package telemetry

// Decision is one flight-recorder event: everything the runtime knew and
// decided in a single control iteration. It answers "why did JouleGuard
// pick this configuration?" without re-deriving the answer from CSV
// dumps — the SEU (bandit) estimates, the PI controller state, the
// budget ledger, the sensing-guard verdict and the fault/watchdog state
// are all captured at the moment of the decision.
//
// AppConfig and SysConfig are the configurations that actually ran the
// iteration (post actuation readback), so a replayed decision stream
// matches the run's Record exactly. NextApp and NextSys are the
// configurations chosen for the following iteration.
type Decision struct {
	// Seq is the flight recorder's running sequence number, stamped by
	// Record: the ?since= cursor that lets a long chaos run be tailed
	// incrementally from /decisions. 1-based; 0 means "not yet recorded".
	Seq uint64 `json:"seq,omitempty"`

	// Session tags decisions made on behalf of a governor-daemon session
	// (empty for in-process runs); WithSession stamps it.
	Session string `json:"session,omitempty"`

	Iter      int `json:"iter"`
	AppConfig int `json:"app_config"`
	SysConfig int `json:"sys_config"`
	NextApp   int `json:"next_app"`
	NextSys   int `json:"next_sys"`

	// SEO / bandit state (the "SEU estimate": for an EWMA estimator the
	// filter values, for a Kalman estimator the filter state and gain).
	SEURate       float64 `json:"seu_rate"`
	SEUPower      float64 `json:"seu_power"`
	SEUEfficiency float64 `json:"seu_efficiency"`
	EstimatorGain float64 `json:"estimator_gain"`
	BestArm       int     `json:"best_arm"`
	Explored      bool    `json:"explored"`
	Epsilon       float64 `json:"epsilon"`

	// AAO / PI controller state.
	SpeedupCmd float64 `json:"speedup_cmd"`
	TargetRate float64 `json:"target_rate"`
	PIError    float64 `json:"pi_error"`
	Pole       float64 `json:"pole"`

	// Budget ledger.
	EnergyUsedJ      float64 `json:"energy_used_j"`
	BudgetRemainingJ float64 `json:"budget_remaining_j"`
	AllowedJPerIter  float64 `json:"allowed_j_per_iter"`

	// Sensing, fault and watchdog state.
	Sane          bool `json:"sane"`
	GuardAccepted bool `json:"guard_accepted"`
	Estimated     bool `json:"estimated"`
	ActuationMiss bool `json:"actuation_miss"`
	Degraded      bool `json:"degraded"`
	Infeasible    bool `json:"infeasible"`

	// Meter-calibration provenance: set only on the records
	// Telemetry.RecordCalibration files (Session "meter-calibration"),
	// so an exported flight stream carries how the run's baseline was
	// obtained alongside the decisions made against it.
	CalBackend   string  `json:"cal_backend,omitempty"`
	CalBaselineW float64 `json:"cal_baseline_w,omitempty"`
	CalCV        float64 `json:"cal_cv,omitempty"`
	CalTrials    int     `json:"cal_trials,omitempty"`
}

// Fault channels reported through Sink.FaultInjected.
const (
	FaultSensor uint8 = iota
	FaultClock
	FaultActuator
	FaultNetwork
	numFaultChannels
)

// FaultChannelName names a fault channel.
func FaultChannelName(ch uint8) string {
	switch ch {
	case FaultSensor:
		return "sensor"
	case FaultClock:
		return "clock"
	case FaultActuator:
		return "actuator"
	case FaultNetwork:
		return "network"
	}
	return "unknown"
}

// Sink receives instrumentation events from the control path. All
// methods must be safe for concurrent use (the experiment runner calls
// from its worker pool) and must not retain references to their
// arguments. Implementations that do not care about an event simply
// ignore it; Nop ignores everything at zero cost.
type Sink interface {
	// RecordDecision traces one completed control iteration.
	RecordDecision(d Decision)
	// ControlStep reports one PI controller step (Eqn 5).
	ControlStep(target, measured, errTerm, pole, speedup float64)
	// EstimatorUpdate reports one bandit-arm estimator update (Eqn 1):
	// the post-update rate/power state and the filter gain (the EWMA
	// alpha, or the Kalman gain of the rate filter).
	EstimatorUpdate(arm int, rate, power, gain float64)
	// GuardVerdict reports one sensing-guard ruling. reason is a
	// guard.Reason value; power is the power acted on (the reading if
	// accepted, the fallback estimate otherwise).
	GuardVerdict(accepted bool, reason uint8, power float64)
	// FaultInjected reports one injected fault on the given channel
	// (FaultSensor, FaultClock, FaultActuator).
	FaultInjected(channel uint8)
	// WatchdogTrip reports the runtime degrading to its conservative
	// configuration.
	WatchdogTrip()
	// IterationDone reports one completed online-controller iteration:
	// its wall duration and whether the measurement was estimated
	// (sensor failure or guard rejection).
	IterationDone(seconds float64, estimated bool)
	// JobStart reports an experiment-runner job starting with the
	// number of jobs still queued behind it.
	JobStart(queued int)
	// JobDone reports an experiment-runner job finishing.
	JobDone(failed bool)
}

// Nop is the no-op Sink: every method is empty, so instrumented code can
// call it unconditionally and pay only a static interface dispatch. It
// allocates nothing (all methods take scalars or value structs).
type Nop struct{}

// RecordDecision implements Sink.
func (Nop) RecordDecision(Decision) {}

// ControlStep implements Sink.
func (Nop) ControlStep(target, measured, errTerm, pole, speedup float64) {}

// EstimatorUpdate implements Sink.
func (Nop) EstimatorUpdate(arm int, rate, power, gain float64) {}

// GuardVerdict implements Sink.
func (Nop) GuardVerdict(accepted bool, reason uint8, power float64) {}

// FaultInjected implements Sink.
func (Nop) FaultInjected(channel uint8) {}

// WatchdogTrip implements Sink.
func (Nop) WatchdogTrip() {}

// IterationDone implements Sink.
func (Nop) IterationDone(seconds float64, estimated bool) {}

// JobStart implements Sink.
func (Nop) JobStart(queued int) {}

// JobDone implements Sink.
func (Nop) JobDone(failed bool) {}

// OrNop returns s, or the no-op sink when s is nil, so components can
// store a never-nil sink and skip per-call nil checks.
func OrNop(s Sink) Sink {
	if s == nil {
		return Nop{}
	}
	return s
}

// WithSession wraps a sink so every decision it records carries the
// given session id — the multiplexing the governor daemon needs when
// many tenants share one flight recorder. All other events pass through
// untouched (metrics aggregate across sessions by design).
func WithSession(inner Sink, session string) Sink {
	return sessionSink{inner: OrNop(inner), session: session}
}

type sessionSink struct {
	inner   Sink
	session string
}

// RecordDecision implements Sink, stamping the session id.
func (s sessionSink) RecordDecision(d Decision) {
	d.Session = s.session
	s.inner.RecordDecision(d)
}

// ControlStep implements Sink.
func (s sessionSink) ControlStep(target, measured, errTerm, pole, speedup float64) {
	s.inner.ControlStep(target, measured, errTerm, pole, speedup)
}

// EstimatorUpdate implements Sink.
func (s sessionSink) EstimatorUpdate(arm int, rate, power, gain float64) {
	s.inner.EstimatorUpdate(arm, rate, power, gain)
}

// GuardVerdict implements Sink.
func (s sessionSink) GuardVerdict(accepted bool, reason uint8, power float64) {
	s.inner.GuardVerdict(accepted, reason, power)
}

// FaultInjected implements Sink.
func (s sessionSink) FaultInjected(channel uint8) { s.inner.FaultInjected(channel) }

// WatchdogTrip implements Sink.
func (s sessionSink) WatchdogTrip() { s.inner.WatchdogTrip() }

// IterationDone implements Sink.
func (s sessionSink) IterationDone(seconds float64, estimated bool) {
	s.inner.IterationDone(seconds, estimated)
}

// JobStart implements Sink.
func (s sessionSink) JobStart(queued int) { s.inner.JobStart(queued) }

// JobDone implements Sink.
func (s sessionSink) JobDone(failed bool) { s.inner.JobDone(failed) }
