package telemetry

import (
	"io"
	"testing"
)

// BenchmarkTelemetryNopSink pins the cost of instrumentation when
// telemetry is disabled: one full iteration's worth of sink calls
// through the no-op implementation. The acceptance bar is 0 allocs/op;
// `make bench` lands this in BENCH_experiments.json so overhead
// regressions are visible across sessions.
func BenchmarkTelemetryNopSink(b *testing.B) {
	var s Sink = Nop{}
	d := Decision{Iter: 1, AppConfig: 2, SysConfig: 3, SEURate: 10, SEUPower: 20}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.RecordDecision(d)
		s.ControlStep(12, 11.5, 0.5, 0.1, 1.5)
		s.EstimatorUpdate(3, 10, 20, 0.85)
		s.GuardVerdict(true, 0, 20)
		s.FaultInjected(0)
		s.IterationDone(0.01, false)
	}
}

// BenchmarkTelemetryLiveSink is the enabled-path counterpart: the same
// event mix against the live registry and flight recorder.
func BenchmarkTelemetryLiveSink(b *testing.B) {
	var s Sink = New(DefaultFlightCapacity)
	d := Decision{Iter: 1, AppConfig: 2, SysConfig: 3, SEURate: 10, SEUPower: 20}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.RecordDecision(d)
		s.ControlStep(12, 11.5, 0.5, 0.1, 1.5)
		s.EstimatorUpdate(3, 10, 20, 0.85)
		s.GuardVerdict(true, 0, 20)
		s.FaultInjected(0)
		s.IterationDone(0.01, false)
	}
}

// BenchmarkPrometheusExposition measures a full /metrics render of the
// standard metric set.
func BenchmarkPrometheusExposition(b *testing.B) {
	tel := New(64)
	exercise(tel, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := tel.Registry.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
