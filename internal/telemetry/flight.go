package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"sync"
)

// DefaultFlightCapacity is the decision window kept when no capacity is
// given: large enough to hold a full default-length run on any platform.
const DefaultFlightCapacity = 4096

// FlightRecorder is a bounded ring buffer of controller decisions — the
// "black box" a live system can be asked about after the fact. Recording
// is a mutex-guarded copy into a pre-allocated slot (no allocation, no
// channel, no goroutine), so it is cheap enough to run on every control
// iteration; once the window fills, the oldest decision is overwritten.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []Decision
	total uint64 // decisions ever recorded
}

// NewFlightRecorder builds a recorder holding the last capacity
// decisions (DefaultFlightCapacity if capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{buf: make([]Decision, capacity)}
}

// Record appends one decision, overwriting the oldest once full, and
// stamps its sequence number (1-based; the ?since= export cursor).
func (f *FlightRecorder) Record(d Decision) {
	f.mu.Lock()
	d.Seq = f.total + 1
	f.buf[f.total%uint64(len(f.buf))] = d
	f.total++
	f.mu.Unlock()
}

// Len returns how many decisions the window currently holds.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.total < uint64(len(f.buf)) {
		return int(f.total)
	}
	return len(f.buf)
}

// Total returns how many decisions were ever recorded (including those
// already overwritten).
func (f *FlightRecorder) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Snapshot returns the recorded window oldest-first. The result is a
// copy; the recorder keeps running.
func (f *FlightRecorder) Snapshot() []Decision {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := int(f.total)
	if n > len(f.buf) {
		n = len(f.buf)
	}
	out := make([]Decision, n)
	start := f.total - uint64(n)
	for i := 0; i < n; i++ {
		out[i] = f.buf[(start+uint64(i))%uint64(len(f.buf))]
	}
	return out
}

// SnapshotSince returns the windowed decisions with Seq > since,
// oldest-first — the incremental-tail cursor for /decisions?since=.
// Decisions already overwritten are gone regardless of the cursor; the
// caller detects the gap when the first returned Seq is > since+1.
func (f *FlightRecorder) SnapshotSince(since uint64) []Decision {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := int(f.total)
	if n > len(f.buf) {
		n = len(f.buf)
	}
	start := f.total - uint64(n) // seq of the oldest retained entry is start+1
	if since > start {
		if since >= f.total {
			return nil
		}
		start = since
		n = int(f.total - since)
	}
	out := make([]Decision, n)
	for i := 0; i < n; i++ {
		out[i] = f.buf[(start+uint64(i))%uint64(len(f.buf))]
	}
	return out
}

// WriteJSONL writes the current window oldest-first, one JSON object per
// line — the /decisions exposition and the offline-analysis dump format.
// last limits the output to the most recent decisions (0 = the whole
// window). Non-finite floats are sanitised to 0 before encoding
// (encoding/json cannot represent them); upstream guards keep the
// runtime's state finite, so this is a defensive clamp, not a lossy
// path.
func (f *FlightRecorder) WriteJSONL(w io.Writer, last int) error {
	snap := f.Snapshot()
	if last > 0 && last < len(snap) {
		snap = snap[len(snap)-last:]
	}
	enc := json.NewEncoder(w)
	for i := range snap {
		if err := enc.Encode(sanitizeDecision(snap[i])); err != nil {
			return err
		}
	}
	return nil
}

// sanitizeDecision clamps non-finite floats to 0 so the record is always
// JSON-encodable.
func sanitizeDecision(d Decision) Decision {
	fin := func(v *float64) {
		if math.IsNaN(*v) || math.IsInf(*v, 0) {
			*v = 0
		}
	}
	fin(&d.SEURate)
	fin(&d.SEUPower)
	fin(&d.SEUEfficiency)
	fin(&d.EstimatorGain)
	fin(&d.Epsilon)
	fin(&d.SpeedupCmd)
	fin(&d.TargetRate)
	fin(&d.PIError)
	fin(&d.Pole)
	fin(&d.EnergyUsedJ)
	fin(&d.BudgetRemainingJ)
	fin(&d.AllowedJPerIter)
	return d
}
