package telemetry

import (
	"sync/atomic"
	"time"
)

// HealthInfo is what /healthz reports beyond liveness: the process's
// cluster role and the highest fencing epoch it has seen, so load
// balancers and jgtop can tell a primary coordinator from a standby
// (or a fenced member) without probing /v1/cluster for a 503.
type HealthInfo struct {
	Role  string `json:"role"`
	Fence int64  `json:"fence"`
}

// MeterInfo is the measurement-service section of /healthz: the active
// backend, the last calibration summary and the gate's running tallies,
// so an operator (or jgtop) can see at a glance whether the joules
// behind the budget are measured, calibrated and currently trusted.
type MeterInfo struct {
	Backend      string  `json:"backend"`
	BaselineW    float64 `json:"baseline_watts"`
	CV           float64 `json:"calibration_cv"`
	Trials       int     `json:"calibration_trials"`
	GateRejected int     `json:"gate_rejected"`
	Quarantined  bool    `json:"quarantined"`
}

// QoSTenant is one tenant's standing in the /healthz tenant-protection
// section: its QoS tier, current ladder rung and the accuracy-floor
// degradation in force.
type QoSTenant struct {
	Tenant     string  `json:"tenant"`
	Tier       string  `json:"tier"`
	State      string  `json:"state"`
	FloorScale float64 `json:"floor_scale,omitempty"`
}

// QoSInfo is the tenant-protection section of /healthz: whether the
// local ladder is active and every known tenant's standing.
type QoSInfo struct {
	Enabled bool        `json:"enabled"`
	Tenants []QoSTenant `json:"tenants,omitempty"`
}

// Telemetry is the live Sink: it maintains a metric registry covering
// the whole control path, feeds every decision into a flight recorder,
// and keeps the process's span buffer for distributed traces. One
// Telemetry serves a whole process — its methods are safe for
// concurrent use by the experiment worker pool — and its Handler
// (http.go) exposes everything over HTTP.
type Telemetry struct {
	Registry *Registry
	Flight   *FlightRecorder
	Spans    *SpanBuffer

	start  time.Time
	health atomic.Value // func() HealthInfo, nil until SetHealth
	meter  atomic.Value // func() MeterInfo, nil until SetMeter
	qos    atomic.Value // func() QoSInfo, nil until SetQoS

	// Decision stream.
	decisions    *Counter
	explorations *Counter
	actMisses    *Counter
	estimated    *Counter
	degraded     *Gauge
	infeasible   *Gauge
	epsilon      *Gauge
	speedupCmd   *Gauge
	bestArm      *Gauge
	energyUsed   *Gauge
	budgetLeft   *Gauge
	allowedPer   *Gauge

	// PI controller.
	ctrlSteps *Counter
	pole      *Gauge
	piError   *Gauge
	target    *Gauge

	// Bandit estimators.
	estUpdates *Counter
	estGain    *Gauge

	// Sensing guard: accepted/rejected totals plus one counter per
	// rejection reason (indexed by guard.Reason, a stable uint8 enum).
	guardAccepted *Counter
	guardRejected *Counter
	guardReasons  []*Counter
	guardPower    *Histogram

	// Fault injection, per channel.
	faults [numFaultChannels]*Counter

	// Watchdog.
	watchdogTrips *Counter

	// Online-controller iterations.
	iterations    *Counter
	iterEstimated *Counter
	iterSeconds   *Histogram

	// Experiment runner.
	jobsStarted *Counter
	jobsDone    *Counter
	jobsFailed  *Counter
	queueDepth  *Gauge
}

// guardReasonNames mirrors guard.Reason's String values; the guard
// package cannot be imported here (it imports telemetry), so the enum's
// stable numeric values are the contract. TestGuardReasonNames in
// telemetry_guard_test.go (package guard) pins the correspondence.
var guardReasonNames = []string{
	"ok", "missing", "non-finite", "negative", "stuck", "implausible", "outlier",
}

// GuardReasonName returns the metric label used for a guard rejection
// reason code, so the guard package can pin the correspondence between
// its Reason enum and these labels without an import cycle.
func GuardReasonName(reason uint8) string {
	if int(reason) < len(guardReasonNames) {
		return guardReasonNames[reason]
	}
	return "unknown"
}

// New builds a live telemetry sink with a flight recorder holding the
// last flightCapacity decisions (DefaultFlightCapacity if <= 0).
func New(flightCapacity int) *Telemetry {
	r := NewRegistry()
	t := &Telemetry{
		Registry: r,
		Flight:   NewFlightRecorder(flightCapacity),
		Spans:    NewSpanBuffer(0),
		start:    time.Now(),

		decisions:    r.Counter("jouleguard_decisions_total", "Control decisions recorded by the runtime."),
		explorations: r.Counter("jouleguard_explorations_total", "Decisions where the SEO explored a random arm."),
		actMisses:    r.Counter("jouleguard_actuation_misses_total", "Iterations that ran a configuration other than the one commanded."),
		estimated:    r.Counter("jouleguard_estimated_observations_total", "Observations carrying a model-based estimate instead of a measurement."),
		degraded:     r.Gauge("jouleguard_degraded", "1 while the watchdog pins the conservative configuration."),
		infeasible:   r.Gauge("jouleguard_infeasible", "1 while the runtime judges the energy goal unreachable."),
		epsilon:      r.Gauge("jouleguard_epsilon", "VDBE exploration probability."),
		speedupCmd:   r.Gauge("jouleguard_speedup_command", "Application speedup command s(t)."),
		bestArm:      r.Gauge("jouleguard_best_system_arm", "Index of the SEO's current best system configuration."),
		energyUsed:   r.Gauge("jouleguard_energy_used_joules", "Cumulative measured energy of the current run."),
		budgetLeft:   r.Gauge("jouleguard_budget_remaining_joules", "Energy budget remaining in the current run."),
		allowedPer:   r.Gauge("jouleguard_allowed_joules_per_iteration", "Per-iteration energy allowance (the budget derivative target)."),

		ctrlSteps: r.Counter("jouleguard_control_steps_total", "PI controller steps taken."),
		pole:      r.Gauge("jouleguard_pole", "Adaptive controller pole (Eqn 11)."),
		piError:   r.Gauge("jouleguard_pi_error", "PI controller error term (target rate minus measured rate)."),
		target:    r.Gauge("jouleguard_target_rate", "PI controller performance target (iterations/s)."),

		estUpdates: r.Counter("jouleguard_estimator_updates_total", "Bandit-arm estimator updates."),
		estGain:    r.Gauge("jouleguard_estimator_gain", "Most recent estimator gain (EWMA alpha or Kalman gain)."),

		guardAccepted: r.Counter("jouleguard_guard_samples_total", "Sensing-guard rulings.", Label{"verdict", "accepted"}),
		guardRejected: r.Counter("jouleguard_guard_samples_total", "Sensing-guard rulings.", Label{"verdict", "rejected"}),
		guardPower:    r.Histogram("jouleguard_guard_power_watts", "Power values acted on after the sensing guard.", PowerBuckets()),

		watchdogTrips: r.Counter("jouleguard_watchdog_trips_total", "Times the runtime degraded to its conservative configuration."),

		iterations:    r.Counter("jouleguard_iterations_total", "Online-controller iterations completed."),
		iterEstimated: r.Counter("jouleguard_iterations_estimated_total", "Online-controller iterations whose measurement was estimated."),
		iterSeconds:   r.Histogram("jouleguard_iteration_seconds", "Online-controller iteration durations.", MicroDurationBuckets()),

		jobsStarted: r.Counter("jouleguard_par_jobs_started_total", "Experiment-runner jobs started."),
		jobsDone:    r.Counter("jouleguard_par_jobs_completed_total", "Experiment-runner jobs completed."),
		jobsFailed:  r.Counter("jouleguard_par_jobs_failed_total", "Experiment-runner jobs that returned an error."),
		queueDepth:  r.Gauge("jouleguard_par_queue_depth", "Experiment-runner jobs waiting for a worker."),
	}
	t.guardReasons = make([]*Counter, len(guardReasonNames))
	for i, name := range guardReasonNames {
		t.guardReasons[i] = r.Counter("jouleguard_guard_verdicts_total",
			"Sensing-guard rulings by reason.", Label{"reason", name})
	}
	for ch := uint8(0); ch < numFaultChannels; ch++ {
		t.faults[ch] = r.Counter("jouleguard_faults_injected_total",
			"Faults injected into the measurement and actuation channels.",
			Label{"channel", FaultChannelName(ch)})
	}
	return t
}

// SetHealth installs the /healthz role/fence provider; the probe stays
// a plain-text liveness line until a provider is set.
func (t *Telemetry) SetHealth(provider func() HealthInfo) {
	t.health.Store(provider)
}

// Health returns the current role/fence report and whether a provider
// is installed.
func (t *Telemetry) Health() (HealthInfo, bool) {
	p, _ := t.health.Load().(func() HealthInfo)
	if p == nil {
		return HealthInfo{}, false
	}
	return p(), true
}

// SetMeter installs the /healthz measurement-service provider; the
// probe omits the meter section until one is set (client-supplied
// readings, no meter).
func (t *Telemetry) SetMeter(provider func() MeterInfo) {
	t.meter.Store(provider)
}

// Meter returns the current measurement-service report and whether a
// provider is installed.
func (t *Telemetry) Meter() (MeterInfo, bool) {
	p, _ := t.meter.Load().(func() MeterInfo)
	if p == nil {
		return MeterInfo{}, false
	}
	return p(), true
}

// SetQoS installs the /healthz tenant-protection provider; the probe
// omits the qos section until one is set.
func (t *Telemetry) SetQoS(provider func() QoSInfo) {
	t.qos.Store(provider)
}

// QoS returns the current tenant-protection report and whether a
// provider is installed.
func (t *Telemetry) QoS() (QoSInfo, bool) {
	p, _ := t.qos.Load().(func() QoSInfo)
	if p == nil {
		return QoSInfo{}, false
	}
	return p(), true
}

// RecordCalibration files a meter-calibration summary in the flight
// recorder, tagged with the reserved session name "meter-calibration",
// so exported decision streams carry their measurement provenance.
func (t *Telemetry) RecordCalibration(backend string, baselineW, cv float64, trials int, earlyStopped bool) {
	t.Flight.Record(Decision{
		Session:       "meter-calibration",
		Sane:          true,
		GuardAccepted: earlyStopped,
		CalBackend:    backend,
		CalBaselineW:  baselineW,
		CalCV:         cv,
		CalTrials:     trials,
	})
}

// CounterSummary snapshots the cumulative counters a cluster member
// ships on its heartbeats for the coordinator's fleet rollup. Values
// are cumulative, not deltas: the coordinator differences successive
// reports itself, so a lost heartbeat loses nothing.
func (t *Telemetry) CounterSummary() (decisions, iterations, guardRejected, watchdogTrips, faults float64) {
	for i := range t.faults {
		faults += t.faults[i].Value()
	}
	return t.decisions.Value(), t.iterations.Value(),
		t.guardRejected.Value(), t.watchdogTrips.Value(), faults
}

// RecordDecision implements Sink.
func (t *Telemetry) RecordDecision(d Decision) {
	t.Flight.Record(d)
	t.decisions.Inc()
	if d.Explored {
		t.explorations.Inc()
	}
	if d.ActuationMiss {
		t.actMisses.Inc()
	}
	if d.Estimated {
		t.estimated.Inc()
	}
	t.degraded.SetBool(d.Degraded)
	t.infeasible.SetBool(d.Infeasible)
	t.epsilon.Set(d.Epsilon)
	t.speedupCmd.Set(d.SpeedupCmd)
	t.bestArm.Set(float64(d.BestArm))
	t.energyUsed.Set(d.EnergyUsedJ)
	t.budgetLeft.Set(d.BudgetRemainingJ)
	t.allowedPer.Set(d.AllowedJPerIter)
}

// ControlStep implements Sink.
func (t *Telemetry) ControlStep(target, measured, errTerm, pole, speedup float64) {
	t.ctrlSteps.Inc()
	t.pole.Set(pole)
	t.piError.Set(errTerm)
	t.target.Set(target)
}

// EstimatorUpdate implements Sink.
func (t *Telemetry) EstimatorUpdate(arm int, rate, power, gain float64) {
	t.estUpdates.Inc()
	t.estGain.Set(gain)
}

// GuardVerdict implements Sink.
func (t *Telemetry) GuardVerdict(accepted bool, reason uint8, power float64) {
	if accepted {
		t.guardAccepted.Inc()
	} else {
		t.guardRejected.Inc()
	}
	if int(reason) < len(t.guardReasons) {
		t.guardReasons[reason].Inc()
	}
	t.guardPower.Observe(power)
}

// FaultInjected implements Sink.
func (t *Telemetry) FaultInjected(channel uint8) {
	if channel < numFaultChannels {
		t.faults[channel].Inc()
	}
}

// WatchdogTrip implements Sink.
func (t *Telemetry) WatchdogTrip() { t.watchdogTrips.Inc() }

// IterationDone implements Sink.
func (t *Telemetry) IterationDone(seconds float64, estimated bool) {
	t.iterations.Inc()
	if estimated {
		t.iterEstimated.Inc()
	}
	t.iterSeconds.Observe(seconds)
}

// JobStart implements Sink.
func (t *Telemetry) JobStart(queued int) {
	t.jobsStarted.Inc()
	t.queueDepth.Set(float64(queued))
}

// JobDone implements Sink.
func (t *Telemetry) JobDone(failed bool) {
	t.jobsDone.Inc()
	if failed {
		t.jobsFailed.Inc()
	}
}
