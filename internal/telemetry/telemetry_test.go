package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// exercise drives every Sink method so each registered metric carries
// state.
func exercise(s Sink, iters int) {
	for i := 0; i < iters; i++ {
		s.RecordDecision(Decision{
			Iter: i, AppConfig: i % 3, SysConfig: i % 5, NextApp: i % 3, NextSys: i % 5,
			SEURate: 10, SEUPower: 20, SEUEfficiency: 0.5, EstimatorGain: 0.85,
			BestArm: 1, Explored: i%4 == 0, Epsilon: 0.3,
			SpeedupCmd: 1.5, TargetRate: 12, PIError: -0.5, Pole: 0.1,
			EnergyUsedJ: float64(i), BudgetRemainingJ: float64(100 - i), AllowedJPerIter: 0.9,
			Sane: true, GuardAccepted: i%7 != 0, Estimated: i%7 == 0,
			ActuationMiss: i%9 == 0, Degraded: false, Infeasible: false,
		})
		s.ControlStep(12, 11.5, 0.5, 0.1, 1.5)
		s.EstimatorUpdate(i%5, 10, 20, 0.85)
		s.GuardVerdict(i%7 != 0, uint8(i%7), 20+float64(i%10))
		s.FaultInjected(uint8(i % 3))
		s.IterationDone(0.01*float64(1+i%5), i%7 == 0)
		s.JobStart(10 - i%10)
		s.JobDone(i%13 == 0)
	}
	s.WatchdogTrip()
}

var (
	helpRe = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$`)
	typeRe = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	// A sample line: name, optional {label="value",...}, then a float.
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? ((?:[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?))|[-+]?Inf|NaN)$`)
)

// TestPrometheusExpositionGrammar asserts the rendered exposition obeys
// the text-format grammar for every registered metric: each family has
// exactly one HELP and one TYPE line, every sample line parses, and
// every histogram's cumulative buckets are monotone and agree with its
// _count.
func TestPrometheusExpositionGrammar(t *testing.T) {
	tel := New(64)
	exercise(tel, 50)
	var buf bytes.Buffer
	if err := tel.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	typed := map[string]string{}
	helped := map[string]bool{}
	samples := map[string][]float64{} // full sample name -> values
	var lastBucket struct {
		family string
		cum    float64
	}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			m := helpRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed HELP line %q", ln+1, line)
			}
			if helped[m[1]] {
				t.Fatalf("line %d: duplicate HELP for %q", ln+1, m[1])
			}
			helped[m[1]] = true
		case strings.HasPrefix(line, "# TYPE "):
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			if _, dup := typed[m[1]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", ln+1, m[1])
			}
			typed[m[1]] = m[2]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample line %q", ln+1, line)
			}
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil && m[3] != "+Inf" && m[3] != "-Inf" && m[3] != "NaN" {
				t.Fatalf("line %d: bad sample value %q", ln+1, m[3])
			}
			samples[m[1]] = append(samples[m[1]], v)
			// Histogram bucket monotonicity, in emission order.
			if strings.HasSuffix(m[1], "_bucket") {
				fam := strings.TrimSuffix(m[1], "_bucket")
				if lastBucket.family == fam+m[2][:strings.Index(m[2], "le=")] {
					// Same child (shared constant-label prefix): cumulative.
					if v < lastBucket.cum {
						t.Fatalf("line %d: bucket counts not cumulative in %q", ln+1, line)
					}
				}
				lastBucket.family = fam + m[2][:strings.Index(m[2], "le=")]
				lastBucket.cum = v
			}
		}
	}
	for _, name := range tel.Registry.MetricNames() {
		typ, ok := typed[name]
		if !ok {
			t.Fatalf("metric %q has no TYPE line", name)
		}
		if !helped[name] {
			t.Fatalf("metric %q has no HELP line", name)
		}
		switch typ {
		case "histogram":
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if len(samples[name+suffix]) == 0 {
					t.Fatalf("histogram %q missing %s samples", name, suffix)
				}
			}
			// +Inf bucket must equal _count.
			if got, want := samples[name+"_bucket"][len(samples[name+"_bucket"])-1], samples[name+"_count"][0]; got != want {
				t.Fatalf("histogram %q: +Inf bucket %v != count %v", name, got, want)
			}
		default:
			if len(samples[name]) == 0 {
				t.Fatalf("%s %q has no samples", typ, name)
			}
		}
	}
	// Spot-check values: 50 decisions, 1 watchdog trip.
	if got := samples["jouleguard_decisions_total"]; len(got) != 1 || got[0] != 50 {
		t.Fatalf("decisions_total = %v, want [50]", got)
	}
	if got := samples["jouleguard_watchdog_trips_total"]; len(got) != 1 || got[0] != 1 {
		t.Fatalf("watchdog_trips_total = %v, want [1]", got)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-4) // ignored: counters only go up
	c.Add(math.NaN())
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(4)
	g.Set(math.Inf(1)) // ignored
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}
	h := r.Histogram("h", "a histogram", []float64{1, 10})
	for _, v := range []float64{0.5, 5, 50, math.NaN()} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 55.5 {
		t.Fatalf("histogram count=%d sum=%v, want 3/55.5", h.Count(), h.Sum())
	}
	// Re-registration returns the same instance.
	if r.Counter("c_total", "a counter") != c {
		t.Fatal("re-registration built a second counter")
	}
	// Same family, different labels: distinct children.
	a := r.Counter("lbl_total", "labelled", Label{"k", "a"})
	b := r.Counter("lbl_total", "labelled", Label{"k", "b"})
	if a == b {
		t.Fatal("distinct labelsets share a counter")
	}
}

func TestFlightRecorderWindow(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Record(Decision{Iter: i})
	}
	if f.Total() != 10 || f.Len() != 4 {
		t.Fatalf("total=%d len=%d, want 10/4", f.Total(), f.Len())
	}
	snap := f.Snapshot()
	for i, d := range snap {
		if want := 6 + i; d.Iter != want {
			t.Fatalf("snapshot[%d].Iter = %d, want %d (oldest-first window)", i, d.Iter, want)
		}
	}
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf, 2); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL lines = %d, want 2", len(lines))
	}
	var d Decision
	if err := json.Unmarshal([]byte(lines[1]), &d); err != nil {
		t.Fatal(err)
	}
	if d.Iter != 9 {
		t.Fatalf("last JSONL decision iter = %d, want 9", d.Iter)
	}
}

func TestJSONLSanitisesNonFinite(t *testing.T) {
	f := NewFlightRecorder(2)
	f.Record(Decision{Iter: 1, PIError: math.NaN(), TargetRate: math.Inf(1)})
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf, 0); err != nil {
		t.Fatalf("non-finite fields must not break JSONL export: %v", err)
	}
	var d Decision
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.PIError != 0 || d.TargetRate != 0 {
		t.Fatalf("non-finite fields not clamped: %+v", d)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	tel := New(32)
	exercise(tel, 10)
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "# TYPE jouleguard_decisions_total counter") {
		t.Fatalf("/metrics missing decision counter:\n%s", body)
	}

	body, _ = get("/healthz")
	if !strings.HasPrefix(body, "ok\n") {
		t.Fatalf("/healthz = %q", body)
	}

	body, ct = get("/decisions?n=3")
	if ct != "application/x-ndjson" {
		t.Fatalf("/decisions content type %q", ct)
	}
	sc := bufio.NewScanner(strings.NewReader(body))
	n := 0
	for sc.Scan() {
		var d Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("decision line %d: %v", n, err)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("/decisions?n=3 returned %d lines", n)
	}

	if resp, err := srv.Client().Get(srv.URL + "/decisions?n=bogus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("bad n: status %d, want 400", resp.StatusCode)
		}
	}

	body, _ = get("/debug/pprof/cmdline")
	if body == "" {
		t.Fatal("pprof cmdline endpoint empty")
	}
}

// TestNopSinkZeroAlloc pins the contract the instrumentation relies on:
// calling the disabled sink allocates nothing, so leaving telemetry off
// costs nothing on the control path.
func TestNopSinkZeroAlloc(t *testing.T) {
	var s Sink = Nop{}
	d := Decision{Iter: 1, SEURate: 10, SEUPower: 20}
	allocs := testing.AllocsPerRun(1000, func() {
		s.RecordDecision(d)
		s.ControlStep(1, 2, 3, 4, 5)
		s.EstimatorUpdate(1, 2, 3, 4)
		s.GuardVerdict(true, 0, 20)
		s.FaultInjected(0)
		s.WatchdogTrip()
		s.IterationDone(0.01, false)
		s.JobStart(3)
		s.JobDone(false)
	})
	if allocs != 0 {
		t.Fatalf("no-op sink allocates %v per iteration, want 0", allocs)
	}
}

// The live sink must also stay alloc-free per event — the flight
// recorder copies into a pre-allocated ring and the metrics are atomics.
func TestLiveSinkZeroAlloc(t *testing.T) {
	tel := New(64)
	var s Sink = tel
	d := Decision{Iter: 1, SEURate: 10, SEUPower: 20}
	allocs := testing.AllocsPerRun(1000, func() {
		s.RecordDecision(d)
		s.ControlStep(1, 2, 3, 4, 5)
		s.EstimatorUpdate(1, 2, 3, 4)
		s.GuardVerdict(true, 0, 20)
		s.FaultInjected(0)
		s.IterationDone(0.01, false)
	})
	if allocs != 0 {
		t.Fatalf("live sink allocates %v per iteration, want 0", allocs)
	}
}

func TestOrNop(t *testing.T) {
	if OrNop(nil) == nil {
		t.Fatal("OrNop(nil) must return a usable sink")
	}
	tel := New(8)
	if OrNop(tel) != Sink(tel) {
		t.Fatal("OrNop must pass a non-nil sink through")
	}
}
