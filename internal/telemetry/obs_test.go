package telemetry

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestHealthzRoleFence pins the provider-gated healthz upgrade: once a
// role provider is installed, /healthz answers JSON carrying role and
// fencing epoch (the probe a failover runbook keys on); without one the
// plain-text liveness body is unchanged.
func TestHealthzRoleFence(t *testing.T) {
	tel := New(8)
	tel.SetHealth(func() HealthInfo { return HealthInfo{Role: "primary", Fence: 7} })
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("healthz content type %q", ct)
	}
	var body struct {
		Role      string  `json:"role"`
		Fence     int64   `json:"fence"`
		UptimeS   float64 `json:"uptime_seconds"`
		Decisions uint64  `json:"decisions_recorded"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Role != "primary" || body.Fence != 7 {
		t.Fatalf("healthz = %+v, want role primary fence 7", body)
	}
}

// TestDecisionsSinceCursor pins the incremental tail: ?since=SEQ
// returns exactly the retained decisions with Seq > SEQ, so a scraper
// can poll without re-reading the window.
func TestDecisionsSinceCursor(t *testing.T) {
	tel := New(16)
	for i := 0; i < 10; i++ {
		tel.Flight.Record(Decision{Iter: i})
	}
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/decisions?since=7")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var seqs []uint64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var d Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, d.Seq)
	}
	if len(seqs) != 3 || seqs[0] != 8 || seqs[2] != 10 {
		t.Fatalf("since=7 returned seqs %v, want [8 9 10]", seqs)
	}

	if resp, err := srv.Client().Get(srv.URL + "/decisions?since=bogus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("bad since: status %d, want 400", resp.StatusCode)
		}
	}
}

// TestDecisionsGzip pins the negotiated compression on the JSONL
// endpoints: an Accept-Encoding: gzip request gets a gzip body that
// inflates to the same JSONL.
func TestDecisionsGzip(t *testing.T) {
	tel := New(16)
	for i := 0; i < 5; i++ {
		tel.Flight.Record(Decision{Iter: i})
	}
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	req, _ := http.NewRequest("GET", srv.URL+"/decisions", nil)
	// Setting the header manually disables the transport's transparent
	// decompression, so the raw gzip body is observable.
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("Content-Encoding %q, want gzip", resp.Header.Get("Content-Encoding"))
	}
	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 5 {
		t.Fatalf("gzip body inflated to %d lines, want 5", len(lines))
	}
}

// TestTracesEndpoint pins the span exposition: /traces serves the span
// window as JSONL, ?trace= filters to one distributed trace by hex id,
// and a malformed id is a 400.
func TestTracesEndpoint(t *testing.T) {
	tel := New(8)
	tel.Spans.SetNode("n1")
	tel.Spans.Record(Span{Trace: 0xabc, ID: 1, Name: SpanDecode, Session: "s-1"})
	tel.Spans.Record(Span{Trace: 0xabc, ID: 2, Parent: 1, Name: SpanDecision, Session: "s-1"})
	tel.Spans.Record(Span{Trace: 0xdef, ID: 3, Name: SpanGuard, Session: "s-2"})
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	get := func(path string) []string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		s := strings.TrimSpace(string(body))
		if s == "" {
			return nil
		}
		return strings.Split(s, "\n")
	}

	if lines := get("/traces"); len(lines) != 3 {
		t.Fatalf("/traces returned %d spans, want 3", len(lines))
	}
	lines := get("/traces?trace=" + FormatID(0xabc))
	if len(lines) != 2 {
		t.Fatalf("filtered /traces returned %d spans, want 2", len(lines))
	}
	var span struct {
		Trace  string `json:"trace"`
		ID     string `json:"id"`
		Parent string `json:"parent"`
		Name   string `json:"name"`
		Node   string `json:"node"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &span); err != nil {
		t.Fatal(err)
	}
	if span.Name != SpanDecision || span.Node != "n1" || span.Trace != FormatID(0xabc) {
		t.Fatalf("span line %+v", span)
	}
	if p, ok := ParseID(span.Parent); !ok || p != 1 {
		t.Fatalf("span parent %q, want 1", span.Parent)
	}

	if resp, err := srv.Client().Get(srv.URL + "/traces?trace=zzz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("bad trace id: status %d, want 400", resp.StatusCode)
		}
	}
}

// TestRegistryScrapeWhileUpdateRace hammers the registry from writer
// goroutines — counter adds, gauge sets, histogram observations, lazy
// registration of new labeled series — while scrapers render the
// Prometheus exposition. Run under -race, it pins the concurrency
// contract the rollup and drift gauges rely on.
func TestRegistryScrapeWhileUpdateRace(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("race_total", "c")
	g := reg.Gauge("race_gauge", "g")
	h := reg.Histogram("race_seconds", "h", MicroDurationBuckets())
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Add(1)
				g.Set(float64(i))
				h.Observe(float64(i%100) * 1e-6)
				if i%50 == 0 {
					// Lazy per-tenant registration, the rollup's pattern.
					reg.Counter("race_tenant_total", "t",
						Label{Name: "tenant", Value: fmt.Sprintf("t%d-%d", w, i%4)}).Add(1)
				}
			}
		}(w)
	}
	var sg sync.WaitGroup
	for s := 0; s < 4; s++ {
		sg.Add(1)
		go func() {
			defer sg.Done()
			for i := 0; i < 200; i++ {
				if err := reg.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Scrapers finish their fixed quota, then writers stand down.
	sg.Wait()
	close(stop)
	wg.Wait()
	if c.Value() <= 0 {
		t.Fatal("no writes landed")
	}
}

// TestFlightAndSpanChurnRace churns the flight recorder and the span
// buffer from concurrent writers while readers snapshot, tail with a
// cursor, and export JSONL — the scrape-under-load pattern the
// observability endpoints serve. Run under -race.
func TestFlightAndSpanChurnRace(t *testing.T) {
	f := NewFlightRecorder(64)
	sp := NewSpanBuffer(64)
	sp.SetNode("churn")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f.Record(Decision{Iter: i, Session: "s", EnergyUsedJ: float64(i)})
				sp.Record(Span{Trace: uint64(w*1000 + i%10 + 1), ID: sp.NextID(), Name: SpanDecision})
			}
		}(w)
	}
	var rg sync.WaitGroup
	for r := 0; r < 3; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			var cursor uint64
			for i := 0; i < 200; i++ {
				for _, d := range f.SnapshotSince(cursor) {
					if d.Seq > cursor {
						cursor = d.Seq
					}
				}
				_ = f.WriteJSONL(io.Discard, 16)
				_ = sp.Snapshot(uint64(i%10 + 1))
				_ = sp.WriteJSONL(io.Discard, 0)
			}
		}()
	}
	rg.Wait()
	close(stop)
	wg.Wait()
	if f.Total() == 0 || sp.Total() == 0 {
		t.Fatal("churn recorded nothing")
	}
}
