package battery

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidates(t *testing.T) {
	if _, err := New(0, 1, 1); err == nil {
		t.Error("want error for zero capacity")
	}
	if _, err := New(100, 0, 1); err == nil {
		t.Error("want error for zero rated draw")
	}
	if _, err := New(100, 1, 0.5); err == nil {
		t.Error("want error for peukert < 1")
	}
	if _, err := New(100, 1, 3); err == nil {
		t.Error("want error for peukert > 2")
	}
}

func TestIdealBatteryCountsJoules(t *testing.T) {
	b, err := New(100, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Draw(10, 4) // 40 J at any rate: ideal
	if err != nil || got != 40 {
		t.Fatalf("draw: %v, %v", got, err)
	}
	if b.RemainingJ() != 60 || b.Wasted() != 0 {
		t.Fatalf("remaining %v wasted %v", b.RemainingJ(), b.Wasted())
	}
	if math.Abs(b.StateOfCharge()-0.6) > 1e-12 {
		t.Fatalf("soc: %v", b.StateOfCharge())
	}
}

func TestHeavyDrawWastesCharge(t *testing.T) {
	b, _ := New(100, 5, 1.3)
	useful, err := b.Draw(20, 1) // 4x rated
	if err != nil {
		t.Fatal(err)
	}
	if useful != 20 {
		t.Fatalf("useful: %v", useful)
	}
	wantDepletion := 20 * math.Pow(4, 0.3)
	if math.Abs((100-b.RemainingJ())-wantDepletion) > 1e-9 {
		t.Fatalf("depletion: %v, want %v", 100-b.RemainingJ(), wantDepletion)
	}
	if b.Wasted() <= 0 {
		t.Fatal("no waste recorded")
	}
}

func TestLightDrawNoPenalty(t *testing.T) {
	b, _ := New(100, 5, 1.5)
	b.Draw(2, 10) // under rated
	if b.Wasted() != 0 {
		t.Fatalf("light draw wasted %v", b.Wasted())
	}
}

func TestCrossingEmptyDeliversPartial(t *testing.T) {
	b, _ := New(10, 5, 1)
	got, err := b.Draw(5, 4) // wants 20 J, only 10 available
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-12 {
		t.Fatalf("partial delivery: %v", got)
	}
	if !b.Empty() {
		t.Fatal("battery should be empty")
	}
	if _, err := b.Draw(1, 1); err == nil {
		t.Fatal("drawing from empty should error")
	}
}

func TestInvalidDraw(t *testing.T) {
	b, _ := New(10, 5, 1)
	if _, err := b.Draw(-1, 1); err == nil {
		t.Error("want error for negative watts")
	}
	if _, err := b.Draw(1, math.NaN()); err == nil {
		t.Error("want error for NaN duration")
	}
}

func TestBudgetFor(t *testing.T) {
	b, _ := New(100, 5, 1.3)
	if got := b.BudgetFor(3); got != 100 {
		t.Fatalf("light budget: %v", got)
	}
	heavy := b.BudgetFor(20)
	want := 100 / math.Pow(4, 0.3)
	if math.Abs(heavy-want) > 1e-9 {
		t.Fatalf("heavy budget: %v, want %v", heavy, want)
	}
	// Drawing exactly the heavy budget at that rate must empty the battery
	// without going negative.
	useful, err := b.Draw(20, heavy/20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(useful-heavy) > 1e-6 {
		t.Fatalf("delivered %v of budget %v", useful, heavy)
	}
	if b.RemainingJ() > 1e-6 {
		t.Fatalf("remaining: %v", b.RemainingJ())
	}
}

// Property: energy conservation — delivered + wasted + remaining equals the
// initial capacity for any draw sequence.
func TestConservationProperty(t *testing.T) {
	f := func(draws []uint16) bool {
		b, _ := New(1000, 5, 1.4)
		for _, d := range draws {
			w := float64(d%400) / 10
			if _, err := b.Draw(w, 0.5); err != nil {
				break
			}
		}
		total := b.Delivered() + b.Wasted() + b.RemainingJ()
		return math.Abs(total-1000) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
