// Package battery models the energy store behind the paper's motivating
// mobile scenario (Sec. 1): "few mobile users want to minimize energy —
// they need guarantees that their battery will last until they return to a
// charger". The model is a capacity in joules with a rate-dependent
// discharge penalty (a Peukert-style effect: drawing harder wastes more of
// the stored charge), which is what makes an energy *budget* the right
// abstraction rather than a naive joule counter.
package battery

import (
	"fmt"
	"math"
)

// Battery is a dischargeable energy store.
type Battery struct {
	capacityJ float64 // energy extractable at the rated draw
	remaining float64
	ratedW    float64 // draw at which the capacity is rated
	peukert   float64 // exponent; 1 = ideal, >1 penalises heavy draw
	drawnJ    float64 // useful joules delivered so far
	wastedJ   float64 // extra charge lost to rate effects
}

// New builds a battery. capacityJ is the energy available at the rated
// draw ratedW; peukert >= 1 controls how strongly heavier draws waste
// charge (1 = ideal battery).
func New(capacityJ, ratedW, peukert float64) (*Battery, error) {
	if capacityJ <= 0 || math.IsNaN(capacityJ) {
		return nil, fmt.Errorf("battery: capacity %v must be positive", capacityJ)
	}
	if ratedW <= 0 {
		return nil, fmt.Errorf("battery: rated draw %v must be positive", ratedW)
	}
	if peukert < 1 || peukert > 2 {
		return nil, fmt.Errorf("battery: peukert exponent %v outside [1, 2]", peukert)
	}
	return &Battery{capacityJ: capacityJ, remaining: capacityJ, ratedW: ratedW, peukert: peukert}, nil
}

// Draw discharges the battery at `watts` for `dt` seconds and returns the
// useful energy delivered. Above the rated draw, extra charge is wasted:
// the store depletes by E * (watts/rated)^(peukert-1). Returns an error if
// the battery is already empty; a draw that crosses empty delivers the
// partial energy available.
func (b *Battery) Draw(watts, dt float64) (float64, error) {
	if watts < 0 || dt < 0 || math.IsNaN(watts) || math.IsNaN(dt) {
		return 0, fmt.Errorf("battery: invalid draw %v W for %v s", watts, dt)
	}
	if b.remaining <= 0 {
		return 0, fmt.Errorf("battery: empty")
	}
	useful := watts * dt
	factor := 1.0
	if watts > b.ratedW {
		factor = math.Pow(watts/b.ratedW, b.peukert-1)
	}
	depletion := useful * factor
	if depletion > b.remaining {
		frac := b.remaining / depletion
		useful *= frac
		depletion = b.remaining
	}
	b.remaining -= depletion
	b.drawnJ += useful
	b.wastedJ += depletion - useful
	return useful, nil
}

// StateOfCharge returns the remaining fraction in [0, 1].
func (b *Battery) StateOfCharge() float64 { return b.remaining / b.capacityJ }

// RemainingJ returns the remaining extractable energy at the rated draw.
func (b *Battery) RemainingJ() float64 { return b.remaining }

// Delivered returns the useful joules delivered so far.
func (b *Battery) Delivered() float64 { return b.drawnJ }

// Wasted returns the joules lost to rate effects.
func (b *Battery) Wasted() float64 { return b.wastedJ }

// Empty reports whether the battery is exhausted.
func (b *Battery) Empty() bool { return b.remaining <= 0 }

// BudgetFor returns a conservative energy budget for a workload that will
// draw approximately `expectedW`: the joules the battery can actually
// deliver at that draw. Handing this to JouleGuard as E makes the paper's
// "reach the charger" guarantee account for rate losses.
func (b *Battery) BudgetFor(expectedW float64) float64 {
	if expectedW <= b.ratedW {
		return b.remaining
	}
	return b.remaining / math.Pow(expectedW/b.ratedW, b.peukert-1)
}
