package platform

import "testing"

func BenchmarkRate(b *testing.B) {
	p := Server()
	prof := Profiles["x264"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Rate(i%p.NumConfigs(), prof)
	}
}

func BenchmarkPower(b *testing.B) {
	p := Server()
	prof := Profiles["x264"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Power(i%p.NumConfigs(), prof)
	}
}

// BenchmarkBestEfficiency is the brute-force sweep of Sec. 2.1 over the
// 1024-configuration Server space.
func BenchmarkBestEfficiency(b *testing.B) {
	p := Server()
	prof := Profiles["swish++"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.BestEfficiency(prof)
	}
}

func BenchmarkEnumerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Server()
	}
}

// BenchmarkRateDirect and BenchmarkPowerDirect measure the un-memoized
// model evaluation that used to run on the simulator's per-iteration hot
// path; the table variants above (BenchmarkRate/BenchmarkPower, which now
// hit the memo) show what the lookup costs instead.
func BenchmarkRateDirect(b *testing.B) {
	p := Server()
	prof := Profiles["x264"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.rateDirect(i%p.NumConfigs(), prof)
	}
}

func BenchmarkPowerDirect(b *testing.B) {
	p := Server()
	prof := Profiles["x264"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.powerDirect(i%p.NumConfigs(), prof)
	}
}

// BenchmarkModelTableBuild is the one-time cost a (platform, profile) pair
// pays to fill its lookup table — the price of the first Rate/Power call.
func BenchmarkModelTableBuild(b *testing.B) {
	p := Server()
	prof := Profiles["x264"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.memoMu.Lock()
		p.memo = nil
		p.memoMu.Unlock()
		p.table(prof)
	}
}
