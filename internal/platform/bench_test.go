package platform

import "testing"

func BenchmarkRate(b *testing.B) {
	p := Server()
	prof := Profiles["x264"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Rate(i%p.NumConfigs(), prof)
	}
}

func BenchmarkPower(b *testing.B) {
	p := Server()
	prof := Profiles["x264"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Power(i%p.NumConfigs(), prof)
	}
}

// BenchmarkBestEfficiency is the brute-force sweep of Sec. 2.1 over the
// 1024-configuration Server space.
func BenchmarkBestEfficiency(b *testing.B) {
	p := Server()
	prof := Profiles["swish++"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.BestEfficiency(prof)
	}
}

func BenchmarkEnumerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Server()
	}
}
