// Package platform simulates the three hardware platforms of the paper's
// evaluation (Sec. 4.2, Table 3): Mobile (an ODROID-XU3-like big.LITTLE
// SoC), Tablet (an i5-4210Y-like dual-core with firmware-collapsed
// P-states) and Server (a dual-socket Xeon with 16 cores, 16 speeds,
// hyperthreading and two memory controllers).
//
// A platform is a finite set of configurations, each assigning cores of one
// cluster at one clock speed, plus optional hyperthreading and memory-
// controller allocation. For an application characterised by an AppProfile
// (parallel fraction, memory-boundness, hyperthreading gain), the platform
// yields a computation rate (work units/second, via an Amdahl x DVFS x
// roofline speed model) and a full-system power draw (idle + per-core
// static + cubic-in-frequency dynamic power).
//
// Configuration indices follow the paper's Fig. 3 convention: the highest
// index is the default configuration (all resources at their highest
// setting) and the lowest is a single slow core.
package platform

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"jouleguard/internal/learning"
)

// AppProfile characterises how an application exercises hardware. The
// profile is what makes energy-efficiency landscapes application-specific
// (paper Sec. 4.3: every app has its own efficiency peak on Server).
type AppProfile struct {
	Name          string
	ParallelFrac  float64 // Amdahl parallel fraction, in [0, 1)
	MemFrac       float64 // fraction of time bound on memory at max clock
	HTGain        float64 // throughput multiplier from hyperthreading (>= 1)
	UnitsPerSpeed float64 // app work units per second per unit of model speed
}

// CoreType describes one cluster of identical cores.
type CoreType struct {
	Name     string
	IPC      float64   // relative instructions/cycle (LITTLE A7 = 1.0)
	Freqs    []float64 // available clock speeds in GHz, ascending
	MaxCores int
	StaticW  float64 // per active core, leakage + base
	DynW     float64 // per core at max listed frequency, full utilisation
}

// Config is one platform configuration.
type Config struct {
	Cluster  int // index into the platform's core types
	Cores    int // 1..MaxCores
	FreqIdx  int // index into the cluster's Freqs
	HT       bool
	MemCtrls int // 1 or 2 (1 when the platform has no controller knob)
}

// ResourceRow is one row of Table 3: a resource and its setting count.
type ResourceRow struct {
	Resource string
	Settings int
}

// Platform is a simulated machine.
type Platform struct {
	Name      string
	CoreTypes []CoreType
	IdleW     float64 // full-system idle power (board, DRAM, disk, ...)
	HTPowerup float64 // power multiplier when hyperthreading is enabled
	MemCtrlW  float64 // extra watts for the second memory controller
	MemSpeed  float64 // roofline memory speed in GHz-equivalents
	UncoreW   float64 // per-socket uncore power while any core is active
	DynExp    float64 // frequency exponent of dynamic power (3 = classic
	// f*V^2 scaling; low-voltage parts whose voltage barely scales sit
	// nearer 1.5, which is what makes race-to-idle win on Tablet)
	hasHT      bool
	hasMemCtrl bool
	configs    []Config
	rows       []ResourceRow

	// Memoized speed/power models. Rate and Power are pure functions of
	// (configuration index, profile), but they sit on the per-iteration hot
	// path of the simulator, the oracle's exhaustive profiling and the
	// baselines' brute-force sweeps — so each (platform, profile) pair is
	// evaluated once into a dense lookup table on first use. AppProfile is a
	// comparable value type, which makes it directly usable as the map key.
	memoMu sync.RWMutex
	memo   map[AppProfile]*modelTable
}

// modelTable holds the fully evaluated speed/power model for one profile.
type modelTable struct {
	rate  []float64
	power []float64
}

// table returns the memoized model for prof, computing it on first use. The
// tables hold exactly the values rateDirect/powerDirect produce, so lookups
// are bit-identical to direct evaluation.
func (p *Platform) table(prof AppProfile) *modelTable {
	p.memoMu.RLock()
	t := p.memo[prof]
	p.memoMu.RUnlock()
	if t != nil {
		return t
	}
	p.memoMu.Lock()
	defer p.memoMu.Unlock()
	if t = p.memo[prof]; t != nil {
		return t
	}
	t = &modelTable{
		rate:  make([]float64, len(p.configs)),
		power: make([]float64, len(p.configs)),
	}
	for i := range p.configs {
		t.rate[i] = p.rateDirect(i, prof)
		t.power[i] = p.powerDirect(i, prof)
	}
	if p.memo == nil {
		p.memo = make(map[AppProfile]*modelTable)
	}
	p.memo[prof] = t
	return t
}

// NumConfigs returns the size of the configuration space.
func (p *Platform) NumConfigs() int { return len(p.configs) }

// Configs returns a copy of the configuration list in index order. The copy
// makes the result safe to mutate; hot paths iterating the space should use
// ConfigAt instead of calling this per loop.
func (p *Platform) Configs() []Config { return append([]Config(nil), p.configs...) }

// Config returns the configuration at a dense index.
func (p *Platform) Config(i int) (Config, error) {
	if i < 0 || i >= len(p.configs) {
		return Config{}, fmt.Errorf("platform %s: config %d out of range [0,%d)", p.Name, i, len(p.configs))
	}
	return p.configs[i], nil
}

// ConfigAt is the allocation-free accessor for hot loops over the
// configuration space: it returns the configuration at a dense index and,
// like a slice access, panics when i is out of [0, NumConfigs()).
func (p *Platform) ConfigAt(i int) Config { return p.configs[i] }

// DefaultConfig is the highest index: all resources at their maximum — how
// the paper runs each application "out of the box".
func (p *Platform) DefaultConfig() int { return len(p.configs) - 1 }

// Table3 returns the platform's resource rows (for the Table 3 generator).
func (p *Platform) Table3() []ResourceRow { return append([]ResourceRow(nil), p.rows...) }

// singleCoreSpeed is the roofline single-thread speed: compute time scales
// with 1/(IPC*f), memory time is clock-independent.
func (p *Platform) singleCoreSpeed(ct CoreType, f float64, prof AppProfile) float64 {
	compute := (1 - prof.MemFrac) / (ct.IPC * f)
	memory := prof.MemFrac / p.MemSpeed
	return 1 / (compute + memory)
}

// Rate returns the application's computation rate (work units per second)
// in configuration i, from the memoized model table.
func (p *Platform) Rate(i int, prof AppProfile) float64 {
	return p.table(prof).rate[i]
}

// rateDirect evaluates the speed model from scratch (table construction and
// the memoization benchmarks).
func (p *Platform) rateDirect(i int, prof AppProfile) float64 {
	c := p.configs[i]
	ct := p.CoreTypes[c.Cluster]
	f := ct.Freqs[c.FreqIdx]
	s1 := p.singleCoreSpeed(ct, f, prof)
	capacity := float64(c.Cores)
	if c.HT {
		gain := prof.HTGain
		if gain < 1 {
			gain = 1
		}
		capacity *= gain
	}
	if c.MemCtrls > 1 {
		// A second memory controller relieves the memory roofline; the
		// most memory-bound applications gain the most (Table 3: up to
		// 1.84x on Server).
		capacity *= 1 + 1.9*prof.MemFrac
	}
	phi := prof.ParallelFrac
	speed := s1 / ((1 - phi) + phi/capacity)
	return speed * prof.UnitsPerSpeed
}

// Power returns the full-system power draw (watts) while the application
// runs in configuration i: platform idle + uncore + per-core static +
// cubic-in-frequency dynamic power, with hyperthreading and memory-
// controller powerups. Memory-bound applications stall cores and draw
// proportionally less dynamic power. Served from the memoized model table.
func (p *Platform) Power(i int, prof AppProfile) float64 {
	return p.table(prof).power[i]
}

// powerDirect evaluates the power model from scratch.
func (p *Platform) powerDirect(i int, prof AppProfile) float64 {
	c := p.configs[i]
	ct := p.CoreTypes[c.Cluster]
	fMax := ct.Freqs[len(ct.Freqs)-1]
	fRel := ct.Freqs[c.FreqIdx] / fMax
	util := 1 - 0.45*prof.MemFrac
	exp := p.DynExp
	if exp <= 0 {
		exp = 3
	}
	dyn := ct.DynW * math.Pow(fRel, exp) * util
	perCore := ct.StaticW + dyn
	power := p.IdleW + p.UncoreW + float64(c.Cores)*perCore
	if c.HT {
		power *= p.HTPowerup
	}
	if c.MemCtrls > 1 {
		power += p.MemCtrlW
	}
	return power
}

// Efficiency returns rate/power for configuration i — the paper's
// energy-efficiency metric (Sec. 4.3).
func (p *Platform) Efficiency(i int, prof AppProfile) float64 {
	t := p.table(prof)
	return t.rate[i] / t.power[i]
}

// BestEfficiency sweeps the whole space and returns the most efficient
// configuration index and its efficiency (the brute-force search of
// Sec. 2.1).
func (p *Platform) BestEfficiency(prof AppProfile) (int, float64) {
	t := p.table(prof)
	best, bestEff := 0, math.Inf(-1)
	for i := range t.rate {
		if e := t.rate[i] / t.power[i]; e > bestEff {
			best, bestEff = i, e
		}
	}
	return best, bestEff
}

// PriorShapes exposes every configuration in the normalised terms
// JouleGuard's optimistic prior initialisation needs (Sec. 3.2): linear in
// cores and clock for performance, with constant bonus factors for
// hyperthreading and memory controllers.
func (p *Platform) PriorShapes() []learning.ResourceShape {
	shapes := make([]learning.ResourceShape, len(p.configs))
	// Normalise clock by the fastest core-type peak "capability".
	var maxCap float64
	for _, ct := range p.CoreTypes {
		if c := ct.IPC * ct.Freqs[len(ct.Freqs)-1]; c > maxCap {
			maxCap = c
		}
	}
	for i, c := range p.configs {
		ct := p.CoreTypes[c.Cluster]
		// Optimistic bonus factors for the extra resources — "an
		// overestimate for all applications, but not a gross overestimate"
		// (Sec. 3.2). Grossly inflated priors would force the greedy
		// exploitation loop to deflate hundreds of arms before its best-arm
		// estimate means anything.
		extra := 1.0
		if c.HT {
			extra *= 1.35
		}
		if c.MemCtrls > 1 {
			extra *= 1.45
		}
		shapes[i] = learning.ResourceShape{
			Cores:       c.Cores,
			ClockFrac:   ct.IPC * ct.Freqs[c.FreqIdx] / maxCap,
			ExtraFactor: extra,
		}
	}
	return shapes
}

// Priors returns the paper's linear-performance / cubic-power prior
// initialisation over this platform for an application profile: a
// deliberate overestimate of both.
func (p *Platform) Priors(prof AppProfile) learning.Priors {
	// BaseRate: one max-capability core at full clock, assuming perfect
	// scaling (the overestimate the paper wants). BasePower: platform idle.
	var maxIPCf, maxDyn float64
	for _, ct := range p.CoreTypes {
		if c := ct.IPC * ct.Freqs[len(ct.Freqs)-1]; c > maxIPCf {
			maxIPCf = c
		}
		if d := ct.StaticW + ct.DynW; d > maxDyn {
			maxDyn = d
		}
	}
	// A mild global optimism factor keeps the linear model an overestimate
	// at the top of the configuration space without being the "gross
	// overestimate" Sec. 3.2 warns against. (A memory-bound application
	// loses less than linearly when the clock drops, so a linear prior
	// necessarily underestimates the slowest clocks — as the paper's own
	// linear initialisation does.)
	base := maxIPCf * prof.UnitsPerSpeed * 1.05
	return learning.LinearCubicPriors{
		Shapes:    p.PriorShapes(),
		BaseRate:  base,
		BasePower: p.IdleW + p.UncoreW,
		CorePower: maxDyn,
	}
}

// enumerate builds the dense configuration index: all combinations, sorted
// so resources grow with the index (cluster capability, then cores, then
// frequency, then memory controllers, then hyperthreading).
func (p *Platform) enumerate() {
	htOpts := []bool{false}
	if p.hasHT {
		htOpts = []bool{false, true}
	}
	memOpts := []int{1}
	if p.hasMemCtrl {
		memOpts = []int{1, 2}
	}
	for cl := range p.CoreTypes {
		ct := p.CoreTypes[cl]
		for cores := 1; cores <= ct.MaxCores; cores++ {
			for fi := range ct.Freqs {
				for _, mc := range memOpts {
					for _, ht := range htOpts {
						p.configs = append(p.configs, Config{
							Cluster: cl, Cores: cores, FreqIdx: fi, HT: ht, MemCtrls: mc,
						})
					}
				}
			}
		}
	}
	sort.SliceStable(p.configs, func(a, b int) bool {
		ca, cb := p.configs[a], p.configs[b]
		key := func(c Config) [5]float64 {
			ct := p.CoreTypes[c.Cluster]
			capability := ct.IPC * ct.Freqs[len(ct.Freqs)-1]
			ht := 0.0
			if c.HT {
				ht = 1
			}
			return [5]float64{capability, float64(c.Cores), ct.Freqs[c.FreqIdx], float64(c.MemCtrls), ht}
		}
		ka, kb := key(ca), key(cb)
		for i := range ka {
			if ka[i] != kb[i] {
				return ka[i] < kb[i]
			}
		}
		return false
	})
}
