package platform

import (
	"fmt"
	"sync"
)

// freqRange returns n ascending clock speeds from lo to hi GHz inclusive.
func freqRange(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// Mobile models the ODROID-XU3: a Samsung Exynos 5 big.LITTLE SoC with 4
// Cortex-A15 (big) cores at 19 speeds (0.2-2.0 GHz) and 4 Cortex-A7
// (LITTLE) cores at 13 speeds (0.2-1.4 GHz). The SoC idles around 0.12 W
// with another 5.8 W of board power, peaking near 6 W of SoC power
// (Sec. 4.2). Configurations pin the application to one cluster via
// affinity masks, as the paper does. The big cores are markedly less
// energy-efficient — the Fig. 3 landscape JouleGuard must learn to avoid.
func Mobile() *Platform {
	p := &Platform{
		Name: "Mobile",
		CoreTypes: []CoreType{
			{Name: "LITTLE", IPC: 1.0, Freqs: freqRange(0.2, 1.4, 13), MaxCores: 4, StaticW: 0.01, DynW: 0.12},
			// The A15s pay heavy leakage at any speed — the reason the big
			// cluster is the least efficient corner of Fig. 3's Mobile plot.
			{Name: "big", IPC: 2.0, Freqs: freqRange(0.2, 2.0, 19), MaxCores: 4, StaticW: 0.3, DynW: 1.45},
		},
		// The paper quotes 0.12 W SoC idle plus 5.8 W of other components,
		// but its Fig. 3 landscape (big cluster least efficient) is only
		// consistent with a small active floor — a large constant floor
		// would make race-to-idle on the big cores win. We therefore model
		// a small board floor; see DESIGN.md.
		IdleW:    0.85,
		MemSpeed: 1.6,
		UncoreW:  0.05,
		DynExp:   3,
	}
	p.rows = []ResourceRow{
		{"big cores", 4},
		{"big core speeds", 19},
		{"LITTLE cores", 4},
		{"LITTLE core speeds", 13},
	}
	p.enumerate()
	return p
}

// Tablet models the Sony Vaio's i5-4210Y: 2 cores, hyperthreading, and 11
// nominal P-states of which the firmware collapses most to a few effective
// frequencies — the paper's observation that "many of the clockspeed
// settings appear to produce the same energy efficiency" (Sec. 4.3). The
// system idles at 2.4 W and peaks near 9 W. With its high idle share and
// shallow dynamic range, race-to-idle wins: peak efficiency sits at the
// default configuration, again matching Sec. 4.3.
func Tablet() *Platform {
	// 11 nominal settings; the firmware honours only 0.6, 1.0 and 1.5 GHz.
	nominal := []float64{0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4, 1.45, 1.5}
	effective := make([]float64, len(nominal))
	for i, f := range nominal {
		switch {
		case f < 0.95:
			effective[i] = 0.6
		case f < 1.45:
			effective[i] = 1.0
		default:
			effective[i] = 1.5
		}
	}
	p := &Platform{
		Name: "Tablet",
		CoreTypes: []CoreType{
			{Name: "core", IPC: 2.6, Freqs: effective, MaxCores: 2, StaticW: 0.25, DynW: 2.1},
		},
		IdleW:     2.4,
		HTPowerup: 1.03, // Table 3
		MemSpeed:  2.2,
		UncoreW:   0.35,
		DynExp:    1.4, // Y-series part: voltage barely scales over its range
		hasHT:     true,
	}
	p.rows = []ResourceRow{
		{"clock speed", len(nominal)},
		{"core usage", 2},
		{"hyperthreading", 2},
	}
	p.enumerate()
	return p
}

// Server models the dual-socket Xeon E5-2690: 16 cores, 16 clock speeds
// (1.2-3.8 GHz with TurboBoost), hyperthreading and 2 memory controllers —
// 1024 configurations. The machine burns 75-90 W outside the processors
// and peaks near 280 W (Sec. 4.2, and the swish++ numbers of Sec. 2). Its
// high static power and wide dynamic range give every application a unique
// interior efficiency peak; the default configuration is never optimal
// (Sec. 4.3).
func Server() *Platform {
	p := &Platform{
		Name: "Server",
		CoreTypes: []CoreType{
			{Name: "xeon", IPC: 3.2, Freqs: freqRange(1.2, 3.8, 16), MaxCores: 16, StaticW: 1.1, DynW: 9.2},
		},
		IdleW:      85,   // non-CPU components (Sec. 4.2: 75-90 W)
		HTPowerup:  1.11, // Table 3
		MemCtrlW:   9,
		MemSpeed:   2.6,
		UncoreW:    12,
		DynExp:     3,
		hasHT:      true,
		hasMemCtrl: true,
	}
	p.rows = []ResourceRow{
		{"clock speed", 16},
		{"core usage", 16},
		{"hyperthreading", 2},
		{"mem controllers", 2},
	}
	p.enumerate()
	return p
}

var (
	byNameMu    sync.Mutex
	byNameCache = map[string]*Platform{}
)

// ByName returns a platform by its paper name. Instances are cached and
// shared process-wide: a platform is immutable after construction (the
// memoized model tables have their own lock), and enumerating + sorting
// Server's 1024-configuration space is far too expensive to repeat for
// every testbed an experiment sweep builds. Callers needing a private
// mutable instance should use the Mobile/Tablet/Server constructors, which
// always build fresh.
func ByName(name string) (*Platform, error) {
	byNameMu.Lock()
	defer byNameMu.Unlock()
	if p, ok := byNameCache[name]; ok {
		return p, nil
	}
	var p *Platform
	switch name {
	case "Mobile":
		p = Mobile()
	case "Tablet":
		p = Tablet()
	case "Server":
		p = Server()
	default:
		return nil, fmt.Errorf("platform: unknown platform %q (Mobile, Tablet, Server)", name)
	}
	byNameCache[name] = p
	return p, nil
}

// Names lists the three platforms in paper order.
func Names() []string { return []string{"Mobile", "Tablet", "Server"} }

// All returns the three platforms (the shared ByName instances).
func All() []*Platform {
	out := make([]*Platform, 0, 3)
	for _, n := range Names() {
		p, _ := ByName(n)
		out = append(out, p)
	}
	return out
}

// Profiles maps each benchmark to its hardware-interaction profile. The
// parallel fractions, memory-boundness and hyperthreading gains are set to
// reproduce the paper's qualitative landscape (Sec. 4.3, Table 3): ferret
// gains most from hyperthreading (1.92x on Server), canneal and
// streamcluster are memory-bound, swaptions is embarrassingly parallel.
// UnitsPerSpeed converts model speed into each kernel's work units per
// second, calibrated so default-configuration iteration rates land in each
// application's realistic range (e.g. ~3100 queries/s for swish++ on
// Server, Sec. 2).
var Profiles = map[string]AppProfile{
	"x264":          {Name: "x264", ParallelFrac: 0.96, MemFrac: 0.22, HTGain: 1.22, UnitsPerSpeed: 110000},
	"swaptions":     {Name: "swaptions", ParallelFrac: 0.999, MemFrac: 0.02, HTGain: 1.35, UnitsPerSpeed: 28000},
	"bodytrack":     {Name: "bodytrack", ParallelFrac: 0.93, MemFrac: 0.18, HTGain: 1.18, UnitsPerSpeed: 26000},
	"swish++":       {Name: "swish++", ParallelFrac: 0.985, MemFrac: 0.34, HTGain: 1.55, UnitsPerSpeed: 4100000},
	"radar":         {Name: "radar", ParallelFrac: 0.91, MemFrac: 0.12, HTGain: 1.28, UnitsPerSpeed: 100000},
	"canneal":       {Name: "canneal", ParallelFrac: 0.72, MemFrac: 0.52, HTGain: 1.32, UnitsPerSpeed: 21000},
	"ferret":        {Name: "ferret", ParallelFrac: 0.9, MemFrac: 0.38, HTGain: 1.92, UnitsPerSpeed: 16000},
	"streamcluster": {Name: "streamcluster", ParallelFrac: 0.94, MemFrac: 0.46, HTGain: 1.42, UnitsPerSpeed: 12000},
	// The Sec. 3.7 approximate-hardware workload (internal/hwapprox): a
	// compute-bound arithmetic stream.
	"hwapprox": {Name: "hwapprox", ParallelFrac: 0.98, MemFrac: 0.08, HTGain: 1.3, UnitsPerSpeed: 90000},
}

// ProfileFor returns the profile for a benchmark name.
func ProfileFor(name string) (AppProfile, error) {
	p, ok := Profiles[name]
	if !ok {
		return AppProfile{}, fmt.Errorf("platform: no profile for application %q", name)
	}
	return p, nil
}
