package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfigurationCounts(t *testing.T) {
	// Server must have exactly 16*16*2*2 = 1024 configurations (Fig. 3's
	// x-axis); Tablet 2*11*2 = 44; Mobile 4*19 + 4*13 = 128.
	cases := map[string]int{"Mobile": 128, "Tablet": 44, "Server": 1024}
	for name, want := range cases {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumConfigs() != want {
			t.Errorf("%s: %d configs, want %d", name, p.NumConfigs(), want)
		}
	}
}

func TestDefaultConfigIsMaxResources(t *testing.T) {
	for _, p := range All() {
		c, err := p.Config(p.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		ct := p.CoreTypes[c.Cluster]
		if c.Cores != ct.MaxCores {
			t.Errorf("%s default: %d cores, want %d", p.Name, c.Cores, ct.MaxCores)
		}
		if c.FreqIdx != len(ct.Freqs)-1 {
			t.Errorf("%s default: freq idx %d, want max", p.Name, c.FreqIdx)
		}
		// The default cluster must be the most capable one.
		for _, other := range p.CoreTypes {
			if other.IPC*other.Freqs[len(other.Freqs)-1] > ct.IPC*ct.Freqs[len(ct.Freqs)-1] {
				t.Errorf("%s default not on the fastest cluster", p.Name)
			}
		}
	}
}

func TestConfigIndexBounds(t *testing.T) {
	p := Tablet()
	if _, err := p.Config(-1); err == nil {
		t.Error("want error for negative index")
	}
	if _, err := p.Config(p.NumConfigs()); err == nil {
		t.Error("want error for index past the end")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("Laptop"); err == nil {
		t.Fatal("want error for unknown platform")
	}
}

func TestProfilesCoverAllBenchmarks(t *testing.T) {
	for _, name := range []string{"x264", "swaptions", "bodytrack", "swish++", "radar", "canneal", "ferret", "streamcluster"} {
		prof, err := ProfileFor(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prof.ParallelFrac <= 0 || prof.ParallelFrac >= 1 {
			t.Errorf("%s: parallel fraction %v", name, prof.ParallelFrac)
		}
		if prof.HTGain < 1 {
			t.Errorf("%s: HT gain %v", name, prof.HTGain)
		}
	}
	if _, err := ProfileFor("nope"); err == nil {
		t.Fatal("want error for unknown profile")
	}
}

func TestRatePositiveAndFiniteEverywhere(t *testing.T) {
	for _, p := range All() {
		for name := range Profiles {
			prof := Profiles[name]
			for i := 0; i < p.NumConfigs(); i++ {
				r := p.Rate(i, prof)
				w := p.Power(i, prof)
				if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
					t.Fatalf("%s/%s cfg %d: rate %v", p.Name, name, i, r)
				}
				if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
					t.Fatalf("%s/%s cfg %d: power %v", p.Name, name, i, w)
				}
			}
		}
	}
}

func TestDefaultConfigIsFastest(t *testing.T) {
	// The default (all resources) must deliver the highest rate — more
	// resources never slow the model down.
	for _, p := range All() {
		for name, prof := range Profiles {
			def := p.DefaultConfig()
			defRate := p.Rate(def, prof)
			for i := 0; i < p.NumConfigs(); i++ {
				if p.Rate(i, prof) > defRate*(1+1e-9) {
					t.Fatalf("%s/%s: config %d faster than default", p.Name, name, i)
				}
			}
		}
	}
}

// Sec. 4.3 landscape checks.

func TestServerLandscape(t *testing.T) {
	p := Server()
	peaks := map[int]bool{}
	for name, prof := range Profiles {
		best, bestEff := p.BestEfficiency(prof)
		if best == p.DefaultConfig() {
			t.Errorf("Server/%s: peak efficiency at the default config — paper says never", name)
		}
		defEff := p.Efficiency(p.DefaultConfig(), prof)
		if bestEff < defEff*1.05 {
			t.Errorf("Server/%s: best efficiency %.3f barely above default %.3f", name, bestEff, defEff)
		}
		peaks[best] = true
	}
	if len(peaks) < 4 {
		t.Errorf("Server: only %d distinct efficiency peaks across 8 apps — paper says each app has its own", len(peaks))
	}
}

func TestTabletLandscape(t *testing.T) {
	p := Tablet()
	for name, prof := range Profiles {
		_, bestEff := p.BestEfficiency(prof)
		defEff := p.Efficiency(p.DefaultConfig(), prof)
		if defEff < bestEff*0.90 {
			t.Errorf("Tablet/%s: default efficiency %.3f far below peak %.3f — paper says peak is at default", name, defEff, bestEff)
		}
	}
	// Firmware collapse: several distinct clock settings must produce
	// identical efficiency.
	prof := Profiles["x264"]
	effs := map[float64]int{}
	for i := 0; i < p.NumConfigs(); i++ {
		effs[math.Round(p.Efficiency(i, prof)*1e9)/1e9]++
	}
	var dup int
	for _, n := range effs {
		if n > 1 {
			dup += n
		}
	}
	if dup < p.NumConfigs()/3 {
		t.Errorf("Tablet: only %d/%d configs share an efficiency value — firmware collapse not modelled", dup, p.NumConfigs())
	}
}

func TestMobileLandscape(t *testing.T) {
	p := Mobile()
	for name, prof := range Profiles {
		best, _ := p.BestEfficiency(prof)
		c, _ := p.Config(best)
		if p.CoreTypes[c.Cluster].Name != "LITTLE" {
			t.Errorf("Mobile/%s: peak efficiency on the %s cluster — paper says big cores are least efficient",
				name, p.CoreTypes[c.Cluster].Name)
		}
	}
	// The big cluster at full tilt must be clearly less efficient than the
	// LITTLE cluster at full tilt.
	prof := Profiles["bodytrack"]
	bigEff := p.Efficiency(p.DefaultConfig(), prof)
	_, bestEff := p.BestEfficiency(prof)
	if bestEff < bigEff*1.5 {
		t.Errorf("Mobile: LITTLE peak %.0f not well above big default %.0f", bestEff, bigEff)
	}
}

func TestPowerEnvelopes(t *testing.T) {
	// Sec. 4.2 envelopes: Mobile peaks well under 10 W, Tablet under 10 W,
	// Server in the 250-300 W range at default.
	type tc struct {
		p        *Platform
		min, max float64
	}
	for _, c := range []tc{
		{Mobile(), 3, 10},
		{Tablet(), 5, 10},
		{Server(), 250, 300},
	} {
		var peak float64
		for name := range Profiles {
			if w := c.p.Power(c.p.DefaultConfig(), Profiles[name]); w > peak {
				peak = w
			}
		}
		if peak < c.min || peak > c.max {
			t.Errorf("%s: peak default power %.1f W outside [%v, %v]", c.p.Name, peak, c.min, c.max)
		}
	}
}

func TestSwishServerCalibration(t *testing.T) {
	// Sec. 2: default ~280 W; the best-efficiency configuration is ~1.25x
	// more efficient (0.09 -> 0.07 J/query) at far lower power.
	p := Server()
	prof := Profiles["swish++"]
	defPow := p.Power(p.DefaultConfig(), prof)
	if defPow < 260 || defPow > 295 {
		t.Errorf("swish++ default power %.1f W, want ~280", defPow)
	}
	best, bestEff := p.BestEfficiency(prof)
	gain := bestEff / p.Efficiency(p.DefaultConfig(), prof)
	if gain < 1.15 || gain > 1.7 {
		t.Errorf("swish++ efficiency gain %.2fx, want ~1.3x", gain)
	}
	if w := p.Power(best, prof); w > 200 {
		t.Errorf("best-efficiency power %.1f W, want well below default", w)
	}
}

func TestTable3SpeedupShapes(t *testing.T) {
	// Table 3 highlights: Server core-usage speedup ~16x for the most
	// parallel app; Server clock speedup ~3.2x; Mobile big-speed ~10x.
	srv := Server()
	prof := Profiles["swaptions"]
	oneCore := -1
	allCores := -1
	for i := 0; i < srv.NumConfigs(); i++ {
		c, _ := srv.Config(i)
		if c.FreqIdx == 15 && !c.HT && c.MemCtrls == 1 {
			if c.Cores == 1 {
				oneCore = i
			}
			if c.Cores == 16 {
				allCores = i
			}
		}
	}
	if oneCore < 0 || allCores < 0 {
		t.Fatal("could not locate core-sweep endpoints")
	}
	coreSpeedup := srv.Rate(allCores, prof) / srv.Rate(oneCore, prof)
	if coreSpeedup < 13 || coreSpeedup > 16.5 {
		t.Errorf("Server core speedup %.2f, want ~15.99", coreSpeedup)
	}
	lowClock, highClock := -1, -1
	for i := 0; i < srv.NumConfigs(); i++ {
		c, _ := srv.Config(i)
		if c.Cores == 16 && c.HT && c.MemCtrls == 2 {
			if c.FreqIdx == 0 {
				lowClock = i
			}
			if c.FreqIdx == 15 {
				highClock = i
			}
		}
	}
	clockSpeedup := srv.Rate(highClock, prof) / srv.Rate(lowClock, prof)
	if clockSpeedup < 2.5 || clockSpeedup > 3.5 {
		t.Errorf("Server clock speedup %.2f, want ~3.23", clockSpeedup)
	}
}

func TestPriorsOptimisticButNotGross(t *testing.T) {
	// Sec. 3.2: the initialisation "is an overestimate for all
	// applications, but it is not a gross overestimate". We require the
	// priors to be net-optimistic (mean prior/true rate >= 1), never
	// grossly inflated (mean <= 4), and optimistic at the top of the
	// configuration space (the default config and the true best-efficiency
	// config), which is what steers the greedy exploitation usefully.
	for _, p := range All() {
		for name, prof := range Profiles {
			priors := p.Priors(prof)
			var ratio float64
			for i := 0; i < p.NumConfigs(); i++ {
				pr, _ := priors.Estimate(i)
				ratio += pr / p.Rate(i, prof)
			}
			ratio /= float64(p.NumConfigs())
			if ratio < 1 || ratio > 12 {
				t.Errorf("%s/%s: mean prior/true rate %.2f outside [1, 12]", p.Name, name, ratio)
			}
			for _, idx := range []int{p.DefaultConfig(), firstBest(p, prof)} {
				pr, _ := priors.Estimate(idx)
				if pr < p.Rate(idx, prof)*0.98 {
					t.Errorf("%s/%s: prior underestimates rate at key config %d (%.0f < %.0f)",
						p.Name, name, idx, pr, p.Rate(idx, prof))
				}
			}
		}
	}
}

func firstBest(p *Platform, prof AppProfile) int {
	best, _ := p.BestEfficiency(prof)
	return best
}

func TestPriorShapesMatchConfigs(t *testing.T) {
	for _, p := range All() {
		shapes := p.PriorShapes()
		if len(shapes) != p.NumConfigs() {
			t.Fatalf("%s: %d shapes for %d configs", p.Name, len(shapes), p.NumConfigs())
		}
		for i, s := range shapes {
			if s.Cores < 1 || s.ClockFrac <= 0 || s.ClockFrac > 1 {
				t.Fatalf("%s shape %d: %+v", p.Name, i, s)
			}
		}
	}
}

func TestTable3Rows(t *testing.T) {
	rows := Server().Table3()
	if len(rows) != 4 || rows[0].Resource != "clock speed" || rows[0].Settings != 16 {
		t.Fatalf("Server Table 3 rows: %+v", rows)
	}
	if got := len(Mobile().Table3()); got != 4 {
		t.Fatalf("Mobile rows: %d", got)
	}
}

// Property: rate is monotone in frequency index with everything else fixed.
func TestRateMonotoneInFrequencyProperty(t *testing.T) {
	p := Server()
	prof := Profiles["x264"]
	f := func(coreRaw, fiRaw uint8, ht bool) bool {
		cores := int(coreRaw%16) + 1
		fi := int(fiRaw % 15)
		var lo, hi int = -1, -1
		for i := 0; i < p.NumConfigs(); i++ {
			c, _ := p.Config(i)
			if c.Cores == cores && c.HT == ht && c.MemCtrls == 1 {
				if c.FreqIdx == fi {
					lo = i
				}
				if c.FreqIdx == fi+1 {
					hi = i
				}
			}
		}
		if lo < 0 || hi < 0 {
			return false
		}
		return p.Rate(hi, prof) > p.Rate(lo, prof) && p.Power(hi, prof) > p.Power(lo, prof)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The memoized model tables must be bit-identical to direct evaluation:
// the whole pipeline (oracle profiling, CSV regeneration) depends on the
// memo layer being a pure cache, not an approximation.
func TestMemoTablesMatchDirectEvaluation(t *testing.T) {
	for _, p := range All() {
		for _, profName := range []string{"x264", "canneal", "swish++"} {
			prof := Profiles[profName]
			for i := 0; i < p.NumConfigs(); i++ {
				if got, want := p.Rate(i, prof), p.rateDirect(i, prof); got != want {
					t.Fatalf("%s/%s cfg %d: Rate table %v != direct %v", p.Name, profName, i, got, want)
				}
				if got, want := p.Power(i, prof), p.powerDirect(i, prof); got != want {
					t.Fatalf("%s/%s cfg %d: Power table %v != direct %v", p.Name, profName, i, got, want)
				}
			}
		}
	}
}

// ByName must return shared singletons; the constructors stay fresh.
func TestByNameCachesInstances(t *testing.T) {
	a, err := ByName("Server")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByName("Server")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("ByName returned distinct instances for the same platform")
	}
	if Server() == a {
		t.Fatal("constructor returned the cached instance; it must build fresh")
	}
}

func TestConfigAtMatchesConfig(t *testing.T) {
	p := Tablet()
	for i := 0; i < p.NumConfigs(); i++ {
		want, err := p.Config(i)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.ConfigAt(i); got != want {
			t.Fatalf("ConfigAt(%d) = %+v, want %+v", i, got, want)
		}
	}
}
