package heartbeats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewMonitorValidates(t *testing.T) {
	if _, err := NewMonitor(1); err == nil {
		t.Error("want error for window 1")
	}
	if _, err := NewMonitor(2); err != nil {
		t.Errorf("window 2 should be valid: %v", err)
	}
}

func TestBeatSequenceAndValidation(t *testing.T) {
	m, _ := NewMonitor(4)
	s1, err := m.Beat(1.0, 0)
	if err != nil || s1 != 1 {
		t.Fatalf("first beat: %d, %v", s1, err)
	}
	s2, _ := m.Beat(2.0, 0)
	if s2 != 2 {
		t.Fatalf("second beat seq: %d", s2)
	}
	if _, err := m.Beat(1.5, 0); err == nil {
		t.Error("want error for time regression")
	}
	if _, err := m.Beat(math.NaN(), 0); err == nil {
		t.Error("want error for NaN time")
	}
	if m.Count() != 2 {
		t.Fatalf("count: %d", m.Count())
	}
}

func TestRatesSteadyBeats(t *testing.T) {
	m, _ := NewMonitor(8)
	for i := 0; i <= 20; i++ {
		if _, err := m.Beat(float64(i)*0.1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.WindowRate(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("window rate: %v, want 10", got)
	}
	if got := m.InstantRate(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("instant rate: %v, want 10", got)
	}
	min, mean, max := m.LatencyStats()
	if math.Abs(min-0.1) > 1e-9 || math.Abs(mean-0.1) > 1e-9 || math.Abs(max-0.1) > 1e-9 {
		t.Fatalf("latency stats: %v %v %v", min, mean, max)
	}
}

func TestRatesBeforeTwoBeats(t *testing.T) {
	m, _ := NewMonitor(4)
	if m.WindowRate() != 0 || m.InstantRate() != 0 {
		t.Fatal("rates must be 0 before two beats")
	}
	m.Beat(1, 0)
	if m.WindowRate() != 0 {
		t.Fatal("rate with one beat must be 0")
	}
}

func TestWindowSlides(t *testing.T) {
	m, _ := NewMonitor(4)
	// Slow beats first, then fast: the window rate must converge to the
	// fast regime once the slow beats fall out of the window.
	times := []float64{0, 1, 2, 3, 3.1, 3.2, 3.3, 3.4}
	for _, ts := range times {
		m.Beat(ts, 0)
	}
	if got := m.WindowRate(); math.Abs(got-10) > 1e-6 {
		t.Fatalf("window rate after regime change: %v, want 10", got)
	}
}

func TestInstantVsWindowDisagreeDuringTransition(t *testing.T) {
	m, _ := NewMonitor(8)
	for i := 0; i < 8; i++ {
		m.Beat(float64(i), 0)
	}
	m.Beat(7.05, 0) // sudden speedup
	if m.InstantRate() <= m.WindowRate() {
		t.Fatal("instant rate should lead the window rate on a speedup")
	}
}

func TestZeroTimeSpanRate(t *testing.T) {
	m, _ := NewMonitor(4)
	m.Beat(1, 0)
	m.Beat(1, 0) // same timestamp is allowed (non-decreasing)
	if m.WindowRate() != 0 || m.InstantRate() != 0 {
		t.Fatal("zero-span rates must be 0, not Inf")
	}
}

// Property: for any positive inter-beat gaps, the window rate equals
// (n-1)/sum(last n-1 gaps).
func TestWindowRateProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 50 {
			raw = raw[:50]
		}
		m, _ := NewMonitor(8)
		t0 := 0.0
		var intervals []float64 // inter-beat gaps (excludes the first beat)
		for i, r := range raw {
			gap := float64(r%1000+1) / 1000
			t0 += gap
			if i > 0 {
				intervals = append(intervals, gap)
			}
			if _, err := m.Beat(t0, 0); err != nil {
				return false
			}
		}
		n := len(intervals)
		w := 7 // window holds 8 beats = 7 intervals
		if n < w {
			w = n
		}
		var span float64
		for _, g := range intervals[n-w:] {
			span += g
		}
		want := float64(w) / span
		return math.Abs(m.WindowRate()-want) < 1e-9*want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
