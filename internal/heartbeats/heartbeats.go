// Package heartbeats reproduces the instrumentation interface the paper's
// C runtime consumes (Sec. 3.5): applications emit a heartbeat per unit of
// work (a frame, a query batch), and the runtime reads windowed heart rates
// as its performance signal — "any performance metric can be used as long
// as it increases with increasing performance". This is the Application
// Heartbeats API (Hoffmann et al.) that PowerDial and JouleGuard build on.
package heartbeats

import (
	"fmt"
	"math"
)

// Beat is one recorded heartbeat.
type Beat struct {
	Seq  uint64
	Time float64 // seconds (virtual or wall, the monitor does not care)
	Tag  int     // optional application tag (e.g. frame type)
}

// Monitor records heartbeats and serves windowed rate statistics.
type Monitor struct {
	window   int
	beats    []Beat // ring buffer of the last `window` beats
	head     int
	count    int
	seq      uint64
	lastTime float64
	started  bool
}

// NewMonitor creates a monitor with the given window size (the number of
// recent beats over which rates are computed).
func NewMonitor(window int) (*Monitor, error) {
	if window < 2 {
		return nil, fmt.Errorf("heartbeats: window %d must be at least 2", window)
	}
	return &Monitor{window: window, beats: make([]Beat, window)}, nil
}

// Beat records a heartbeat at the given timestamp. Timestamps must be
// non-decreasing; a regression is rejected.
func (m *Monitor) Beat(time float64, tag int) (uint64, error) {
	if math.IsNaN(time) || math.IsInf(time, 0) {
		return 0, fmt.Errorf("heartbeats: invalid timestamp %v", time)
	}
	if m.started && time < m.lastTime {
		return 0, fmt.Errorf("heartbeats: timestamp %v before previous %v", time, m.lastTime)
	}
	m.seq++
	b := Beat{Seq: m.seq, Time: time, Tag: tag}
	m.beats[m.head] = b
	m.head = (m.head + 1) % m.window
	if m.count < m.window {
		m.count++
	}
	m.lastTime = time
	m.started = true
	return m.seq, nil
}

// Count returns the total number of beats recorded.
func (m *Monitor) Count() uint64 { return m.seq }

// at returns the i-th most recent beat (0 = newest).
func (m *Monitor) at(i int) Beat {
	idx := (m.head - 1 - i + 2*m.window) % m.window
	return m.beats[idx]
}

// WindowRate returns the heart rate (beats/second) over the recorded
// window, or 0 until two beats exist.
func (m *Monitor) WindowRate() float64 {
	if m.count < 2 {
		return 0
	}
	newest := m.at(0)
	oldest := m.at(m.count - 1)
	dt := newest.Time - oldest.Time
	if dt <= 0 {
		return 0
	}
	return float64(m.count-1) / dt
}

// InstantRate returns the rate implied by the two most recent beats.
func (m *Monitor) InstantRate() float64 {
	if m.count < 2 {
		return 0
	}
	dt := m.at(0).Time - m.at(1).Time
	if dt <= 0 {
		return 0
	}
	return 1 / dt
}

// LatencyStats returns the min, mean and max inter-beat latency over the
// window (zeros until two beats exist).
func (m *Monitor) LatencyStats() (min, mean, max float64) {
	if m.count < 2 {
		return 0, 0, 0
	}
	min = math.Inf(1)
	for i := 0; i < m.count-1; i++ {
		d := m.at(i).Time - m.at(i+1).Time
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
		mean += d
	}
	mean /= float64(m.count - 1)
	return min, mean, max
}

// Window returns the configured window size.
func (m *Monitor) Window() int { return m.window }
