package faults

import (
	"math"
	"testing"
)

func TestDropoutRateAndDeterminism(t *testing.T) {
	const n = 10000
	a, b := NewDropout(0.2, 42), NewDropout(0.2, 42)
	lost := 0
	for i := 0; i < n; i++ {
		va, oka := a.Reading(i, 1)
		vb, okb := b.Reading(i, 1)
		if oka != okb || va != vb {
			t.Fatalf("iteration %d: same seed diverged", i)
		}
		if !oka {
			lost++
		}
	}
	rate := float64(lost) / n
	if rate < 0.17 || rate > 0.23 {
		t.Fatalf("dropout rate %.3f, want ~0.20", rate)
	}
	other := NewDropout(0.2, 43)
	diverged := false
	for i := 0; i < n; i++ {
		_, oka := NewDropout(0.2, 42).Reading(i, 1)
		_, okb := other.Reading(i, 1)
		if oka != okb {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestStuckFreezesTailOfPeriod(t *testing.T) {
	s := NewStuck(10, 3)
	for i := 0; i < 30; i++ {
		v, ok := s.Reading(i, float64(i))
		if !ok {
			t.Fatalf("stuck fault must never lose samples")
		}
		frozen := i%10 >= 7
		if frozen && i >= 7 {
			// Held at the last live value (the one just before the freeze).
			want := float64(i - i%10 + 6)
			if v != want {
				t.Fatalf("iteration %d: got %v, want frozen %v", i, v, want)
			}
		} else if v != float64(i) {
			t.Fatalf("iteration %d: got %v, want live %v", i, v, float64(i))
		}
	}
}

func TestStuckDegenerateArgs(t *testing.T) {
	s := NewStuck(0, 5) // period clamps to 1, length clamps to period
	if s.Period != 1 || s.Len != 1 {
		t.Fatalf("clamping: period=%d len=%d", s.Period, s.Len)
	}
	if v, ok := NewStuck(10, 0).Reading(5, 7); !ok || v != 7 {
		t.Fatal("zero-length freeze must pass readings through")
	}
}

func TestSpikeTransformsCorruptSamples(t *testing.T) {
	const n = 10000
	s := NewSpike(0.1, 3, 5, 7)
	spiked := 0
	for i := 0; i < n; i++ {
		v, ok := s.Reading(i, 10)
		if !ok {
			t.Fatal("spike fault must never lose samples")
		}
		switch v {
		case 10:
		case 35: // 10*3 + 5
			spiked++
		default:
			t.Fatalf("unexpected reading %v", v)
		}
	}
	rate := float64(spiked) / n
	if rate < 0.07 || rate > 0.13 {
		t.Fatalf("spike rate %.3f, want ~0.10", rate)
	}
}

func TestDriftAndQuantize(t *testing.T) {
	d := Drift{PerIter: 0.001}
	if v, _ := d.Reading(100, 10); math.Abs(v-11) > 1e-12 {
		t.Fatalf("drift at iter 100: %v, want 11", v)
	}
	q := Quantize{Step: 0.5}
	if v, _ := q.Reading(0, 10.3); v != 10.5 {
		t.Fatalf("quantize: %v, want 10.5", v)
	}
	if v, _ := (Quantize{}).Reading(0, 10.3); v != 10.3 {
		t.Fatal("zero step must pass through")
	}
}

func TestSensorChainShortCircuitsOnLoss(t *testing.T) {
	c := SensorChain{NewDropout(1, 1), Drift{PerIter: 1}}
	if _, ok := c.Reading(5, 10); ok {
		t.Fatal("chained loss not propagated")
	}
	c = SensorChain{Drift{PerIter: 0.01}, Quantize{Step: 1}}
	if v, ok := c.Reading(100, 10); !ok || v != 20 {
		t.Fatalf("chain order: got %v ok=%v, want 20 true", v, ok)
	}
}

func TestClockFaults(t *testing.T) {
	j := NewJitter(0.1, 3)
	varies := false
	for i := 0; i < 100; i++ {
		if j.Now(i, 50) != 50 {
			varies = true
		}
	}
	if !varies {
		t.Fatal("jitter never moved the clock")
	}
	b := NewBackStep(1, 2, 3) // always steps back
	if got := b.Now(0, 10); got != 8 {
		t.Fatalf("backstep: %v, want 8", got)
	}
	chain := ClockChain{NewBackStep(1, 2, 3), NewBackStep(1, 3, 4)}
	if got := chain.Now(0, 10); got != 5 {
		t.Fatalf("clock chain: %v, want 5", got)
	}
}

func TestDelayApplyPipelines(t *testing.T) {
	d := NewDelayApply(2)
	prev := Pair{App: 0, Sys: 0}
	reqs := []Pair{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	want := []Pair{{0, 0}, {0, 0}, {1, 1}, {2, 2}}
	for i, r := range reqs {
		got, err := d.Actuate(i, r, prev)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Fatalf("iteration %d: applied %v, want %v", i, got, want[i])
		}
	}
	// Zero lag is the identity.
	z := NewDelayApply(0)
	if got, _ := z.Actuate(0, Pair{9, 9}, prev); got != (Pair{9, 9}) {
		t.Fatal("zero-lag delay must apply immediately")
	}
}

func TestDropAndFailApply(t *testing.T) {
	drop := NewDropApply(1, 5) // always drops
	prev, req := Pair{1, 1}, Pair{2, 2}
	if got, err := drop.Actuate(0, req, prev); err != nil || got != prev {
		t.Fatalf("drop: got %v err %v, want prev silently", got, err)
	}
	fail := NewFailApply(1, 5) // always fails
	got, err := fail.Actuate(3, req, prev)
	if err == nil {
		t.Fatal("fail actuator must error")
	}
	if got != prev {
		t.Fatalf("failed actuation applied %v, want prev %v", got, prev)
	}
	none := NewFailApply(0, 5)
	if got, err := none.Actuate(0, req, prev); err != nil || got != req {
		t.Fatal("zero-probability failure must apply the request")
	}
}

func TestActuatorChainFirstErrorWins(t *testing.T) {
	c := ActuatorChain{NewFailApply(1, 1), NewFailApply(1, 2)}
	_, err := c.Actuate(0, Pair{2, 2}, Pair{1, 1})
	if err == nil {
		t.Fatal("chain swallowed the error")
	}
}

func TestInjectorNilSafety(t *testing.T) {
	var inj *Injector
	if v, ok := inj.SensePower(0, 7); !ok || v != 7 {
		t.Fatal("nil injector must pass readings through")
	}
	if d := inj.Interval(0, 5, 2); d != 2 {
		t.Fatal("nil injector must pass intervals through")
	}
	if got, err := inj.Actuate(0, Pair{3, 4}, Pair{1, 2}); err != nil || got != (Pair{3, 4}) {
		t.Fatal("nil injector must apply requests")
	}
	empty := &Injector{}
	if v, ok := empty.SensePower(0, 7); !ok || v != 7 {
		t.Fatal("empty injector must pass readings through")
	}
}

func TestInjectorIntervalThroughFaultyClock(t *testing.T) {
	inj := &Injector{Clock: NewBackStep(1, 10, 3)} // both reads step back 10
	if d := inj.Interval(0, 100, 5); d != 5 {
		t.Fatalf("symmetric backstep should cancel: %v", d)
	}
}

func TestWrapEnergyReaderSurfacesDropsAsErrors(t *testing.T) {
	inj := &Injector{Sensor: NewDropout(1, 9)} // always drops
	read := inj.WrapEnergyReader(func() (float64, error) { return 42, nil })
	if _, err := read(); err == nil {
		t.Fatal("dropped reading must surface as an error")
	}
	clean := (&Injector{}).WrapEnergyReader(func() (float64, error) { return 42, nil })
	if v, err := clean(); err != nil || v != 42 {
		t.Fatal("fault-free wrap must pass through")
	}
}

func TestWrapApplyRoutesThroughFault(t *testing.T) {
	inj := &Injector{Actuator: NewDropApply(1, 9)} // always drops
	var gotApp, gotSys int
	apply := inj.WrapApply(func(a, s int) error { gotApp, gotSys = a, s; return nil })
	if err := apply(3, 4); err != nil {
		t.Fatal(err)
	}
	if gotApp != 3 || gotSys != 4 {
		t.Fatal("first request must always land")
	}
	if err := apply(7, 8); err != nil {
		t.Fatal(err)
	}
	if gotApp != 3 || gotSys != 4 {
		t.Fatalf("dropped request reached the actuator: %d/%d", gotApp, gotSys)
	}
}

func TestDefaultSuiteShape(t *testing.T) {
	suite := DefaultSuite()
	if len(suite) < 5 {
		t.Fatalf("suite too small: %d scenarios", len(suite))
	}
	if suite[0].Name != "nominal" {
		t.Fatal("first scenario must be the fault-free control")
	}
	seen := map[string]bool{}
	for _, s := range suite {
		if s.Name == "" || s.Description == "" || s.Make == nil {
			t.Fatalf("scenario %q incomplete", s.Name)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate scenario %q", s.Name)
		}
		seen[s.Name] = true
		if inj := s.Make(1, 0.1); inj == nil {
			t.Fatalf("scenario %q built a nil injector", s.Name)
		}
	}
	if _, err := SuiteByName([]string{"no-such"}); err == nil {
		t.Fatal("unknown scenario name must error")
	}
	got, err := SuiteByName([]string{"stuck", "spikes"})
	if err != nil || len(got) != 2 || got[0].Name != "stuck" || got[1].Name != "spikes" {
		t.Fatalf("SuiteByName: %v, %v", got, err)
	}
}
