// Package faults provides composable, deterministically seeded fault
// models for the three channels through which JouleGuard touches the
// world: power/energy sensing, the clock, and configuration actuation.
// Real INA231/RAPL pipelines drop samples, freeze, spike and drift
// (JetsonLEAP documents exactly this on heterogeneous SoCs); real clocks
// jitter and occasionally step backwards; real actuators silently ignore
// writes, apply them late, or fail transiently. The models here reproduce
// those behaviours so the control loop can be exercised against them — in
// the simulator through sim.Engine's Faults hook, and on the online path
// by wrapping the energy reader, clock and actuator callbacks.
//
// Every stochastic model carries its own rand.Rand so a fault schedule is
// a pure function of its seed: two runs with the same seed see the same
// faults at the same iterations.
package faults

import (
	"fmt"
	"math/rand"

	"jouleguard/internal/telemetry"
)

// SensorFault transforms one sensor reading (a power sample in the
// simulator, a cumulative-energy reading on the online path). ok=false
// means the sample was lost entirely — the consumer sees no new reading,
// the way a failed I2C transaction or hwmon read surfaces.
type SensorFault interface {
	Reading(iter int, v float64) (out float64, ok bool)
}

// ClockFault transforms a timestamp in seconds.
type ClockFault interface {
	Now(iter int, t float64) float64
}

// Pair is an (application, system) configuration request.
type Pair struct {
	App, Sys int
}

// ActuatorFault resolves which configuration actually takes effect when
// the governor requests req while prev is in effect. A non-nil error
// models a transiently failing actuator (the returned Pair still says
// what ended up applied — usually prev).
type ActuatorFault interface {
	Actuate(iter int, req, prev Pair) (Pair, error)
}

// ---------------------------------------------------------------------
// Sensor fault models.

// Dropout loses each reading independently with probability P.
type Dropout struct {
	P   float64
	rng *rand.Rand
}

// NewDropout builds a dropout fault losing readings with probability p.
func NewDropout(p float64, seed int64) *Dropout {
	return &Dropout{P: p, rng: rand.New(rand.NewSource(seed))}
}

// Reading implements SensorFault.
func (d *Dropout) Reading(_ int, v float64) (float64, bool) {
	if d.rng.Float64() < d.P {
		return v, false
	}
	return v, true
}

// Stuck freezes the sensor at its last pre-freeze value for Len
// iterations out of every Period: the classic stuck-at-last-value
// failure of a wedged sensor-hub firmware. The freeze occupies the tail
// of each period so every period starts with live readings.
type Stuck struct {
	Period, Len int
	last        float64
	primed      bool
}

// NewStuck builds a periodic stuck-sensor fault.
func NewStuck(period, length int) *Stuck {
	if period <= 0 {
		period = 1
	}
	if length > period {
		length = period
	}
	return &Stuck{Period: period, Len: length}
}

// Reading implements SensorFault.
func (s *Stuck) Reading(iter int, v float64) (float64, bool) {
	frozen := s.Len > 0 && iter%s.Period >= s.Period-s.Len
	if frozen && s.primed {
		return s.last, true
	}
	s.last, s.primed = v, true
	return v, true
}

// Spike corrupts each reading independently with probability P,
// multiplying it by Mul and adding Add — an electrical transient or a
// bit-flip in the reading path.
type Spike struct {
	P        float64
	Mul, Add float64
	rng      *rand.Rand
}

// NewSpike builds a spike fault.
func NewSpike(p, mul, add float64, seed int64) *Spike {
	return &Spike{P: p, Mul: mul, Add: add, rng: rand.New(rand.NewSource(seed))}
}

// Reading implements SensorFault.
func (s *Spike) Reading(_ int, v float64) (float64, bool) {
	if s.rng.Float64() < s.P {
		return v*s.Mul + s.Add, true
	}
	return v, true
}

// Drift scales readings by a slowly growing factor (1 + PerIter*iter):
// sensor-gain drift from temperature or ageing.
type Drift struct {
	PerIter float64
}

// Reading implements SensorFault.
func (d Drift) Reading(iter int, v float64) (float64, bool) {
	return v * (1 + d.PerIter*float64(iter)), true
}

// Quantize rounds readings to multiples of Step — coarse ADC resolution.
type Quantize struct {
	Step float64
}

// Reading implements SensorFault.
func (q Quantize) Reading(_ int, v float64) (float64, bool) {
	if q.Step <= 0 {
		return v, true
	}
	steps := float64(int64(v/q.Step + 0.5))
	return steps * q.Step, true
}

// SensorChain applies faults in order; a reading lost anywhere in the
// chain stays lost.
type SensorChain []SensorFault

// Reading implements SensorFault.
func (c SensorChain) Reading(iter int, v float64) (float64, bool) {
	for _, f := range c {
		var ok bool
		if v, ok = f.Reading(iter, v); !ok {
			return v, false
		}
	}
	return v, true
}

// ---------------------------------------------------------------------
// Clock fault models.

// Jitter adds zero-mean Gaussian noise (sigma seconds) to every
// timestamp read — scheduler and sampling jitter.
type Jitter struct {
	Sigma float64
	rng   *rand.Rand
}

// NewJitter builds a clock-jitter fault.
func NewJitter(sigma float64, seed int64) *Jitter {
	return &Jitter{Sigma: sigma, rng: rand.New(rand.NewSource(seed))}
}

// Now implements ClockFault.
func (j *Jitter) Now(_ int, t float64) float64 {
	return t + j.Sigma*j.rng.NormFloat64()
}

// BackStep makes the clock step backwards by Magnitude seconds with
// probability P per read — an unsynchronised TSC or an NTP correction on
// a clock that should have been monotone.
type BackStep struct {
	P         float64
	Magnitude float64
	rng       *rand.Rand
}

// NewBackStep builds a backwards-stepping clock fault.
func NewBackStep(p, magnitude float64, seed int64) *BackStep {
	return &BackStep{P: p, Magnitude: magnitude, rng: rand.New(rand.NewSource(seed))}
}

// Now implements ClockFault.
func (b *BackStep) Now(_ int, t float64) float64 {
	if b.rng.Float64() < b.P {
		return t - b.Magnitude
	}
	return t
}

// ClockChain applies clock faults in order.
type ClockChain []ClockFault

// Now implements ClockFault.
func (c ClockChain) Now(iter int, t float64) float64 {
	for _, f := range c {
		t = f.Now(iter, t)
	}
	return t
}

// ---------------------------------------------------------------------
// Actuator fault models.

// DropApply silently ignores each configuration request with
// probability P: the previous configuration stays in effect and nobody
// is told.
type DropApply struct {
	P   float64
	rng *rand.Rand
}

// NewDropApply builds a silently-dropping actuator fault.
func NewDropApply(p float64, seed int64) *DropApply {
	return &DropApply{P: p, rng: rand.New(rand.NewSource(seed))}
}

// Actuate implements ActuatorFault.
func (d *DropApply) Actuate(_ int, req, prev Pair) (Pair, error) {
	if d.rng.Float64() < d.P {
		return prev, nil
	}
	return req, nil
}

// DelayApply applies each request Lag iterations late — a slow sysfs
// write path or a governor that batches updates. Until the pipeline
// fills, the previous configuration stays in effect.
type DelayApply struct {
	Lag     int
	pending []Pair
}

// NewDelayApply builds a delayed actuator fault.
func NewDelayApply(lag int) *DelayApply {
	if lag < 0 {
		lag = 0
	}
	return &DelayApply{Lag: lag}
}

// Actuate implements ActuatorFault.
func (d *DelayApply) Actuate(_ int, req, prev Pair) (Pair, error) {
	if d.Lag == 0 {
		return req, nil
	}
	d.pending = append(d.pending, req)
	if len(d.pending) <= d.Lag {
		return prev, nil
	}
	out := d.pending[0]
	d.pending = d.pending[1:]
	return out, nil
}

// FailApply errors transiently with probability P, leaving the previous
// configuration in effect — a busy bus or an EPERM from a contended
// cpufreq write.
type FailApply struct {
	P   float64
	rng *rand.Rand
}

// NewFailApply builds a transiently erroring actuator fault.
func NewFailApply(p float64, seed int64) *FailApply {
	return &FailApply{P: p, rng: rand.New(rand.NewSource(seed))}
}

// Actuate implements ActuatorFault.
func (f *FailApply) Actuate(iter int, req, prev Pair) (Pair, error) {
	if f.rng.Float64() < f.P {
		return prev, fmt.Errorf("faults: actuation failed at iteration %d", iter)
	}
	return req, nil
}

// ActuatorChain applies actuator faults in order; each stage sees the
// previous stage's outcome as the request. The first error wins but the
// chain still resolves the applied configuration.
type ActuatorChain []ActuatorFault

// Actuate implements ActuatorFault.
func (c ActuatorChain) Actuate(iter int, req, prev Pair) (Pair, error) {
	var firstErr error
	for _, f := range c {
		var err error
		if req, err = f.Actuate(iter, req, prev); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return req, firstErr
}

// ---------------------------------------------------------------------
// Injector: the engine-facing bundle.

// Injector bundles one fault per channel (any may be nil) and exposes
// nil-safe application helpers. A nil *Injector injects nothing. When a
// Sink is set, every reading/timestamp/actuation the fault models
// actually perturb is reported on its channel — the "what really
// happened" counterpart to the control loop's own failure accounting.
type Injector struct {
	Sensor   SensorFault
	Clock    ClockFault
	Actuator ActuatorFault
	Sink     telemetry.Sink
}

// report counts one perturbed operation on a fault channel.
func (inj *Injector) report(ch uint8) {
	if inj != nil && inj.Sink != nil {
		inj.Sink.FaultInjected(ch)
	}
}

// SensePower passes a power/energy reading through the sensor fault.
func (inj *Injector) SensePower(iter int, v float64) (float64, bool) {
	if inj == nil || inj.Sensor == nil {
		return v, true
	}
	out, ok := inj.Sensor.Reading(iter, v)
	if !ok || out != v {
		inj.report(telemetry.FaultSensor)
	}
	return out, ok
}

// Interval measures a true interval [start, start+dur] through the
// faulty clock, the way a consumer timing an iteration with two reads
// would see it. The result can be zero or negative.
func (inj *Injector) Interval(iter int, start, dur float64) float64 {
	if inj == nil || inj.Clock == nil {
		return dur
	}
	got := inj.Clock.Now(iter, start+dur) - inj.Clock.Now(iter, start)
	if got != dur {
		inj.report(telemetry.FaultClock)
	}
	return got
}

// Actuate resolves the configuration that actually takes effect.
func (inj *Injector) Actuate(iter int, req, prev Pair) (Pair, error) {
	if inj == nil || inj.Actuator == nil {
		return req, nil
	}
	got, err := inj.Actuator.Actuate(iter, req, prev)
	if err != nil || got != req {
		inj.report(telemetry.FaultActuator)
	}
	return got, err
}

// WrapEnergyReader wraps an online cumulative-energy reader: readings
// pass through the sensor fault, and a dropped reading surfaces as an
// error, the way a failed counter read does.
func (inj *Injector) WrapEnergyReader(read func() (float64, error)) func() (float64, error) {
	iter := 0
	return func() (float64, error) {
		i := iter
		iter++
		v, err := read()
		if err != nil {
			return v, err
		}
		out, ok := inj.SensePower(i, v)
		if !ok {
			return 0, fmt.Errorf("faults: energy reading %d dropped", i)
		}
		return out, nil
	}
}

// WrapClock wraps an online clock with the clock fault.
func (inj *Injector) WrapClock(now func() float64) func() float64 {
	iter := 0
	return func() float64 {
		i := iter
		iter++
		if inj == nil || inj.Clock == nil {
			return now()
		}
		t := now()
		ft := inj.Clock.Now(i, t)
		if ft != t {
			inj.report(telemetry.FaultClock)
		}
		return ft
	}
}

// WrapApply wraps an online actuator callback: requests pass through the
// actuator fault before reaching the real apply function, and the
// configuration the fault says took effect is what gets applied.
func (inj *Injector) WrapApply(apply func(appCfg, sysCfg int) error) func(appCfg, sysCfg int) error {
	iter := 0
	prev := Pair{App: -1, Sys: -1}
	return func(appCfg, sysCfg int) error {
		i := iter
		iter++
		got, err := inj.Actuate(i, Pair{App: appCfg, Sys: sysCfg}, prev)
		if prev.App < 0 {
			// Nothing applied yet: the first request always lands.
			got = Pair{App: appCfg, Sys: sysCfg}
		}
		if aerr := apply(got.App, got.Sys); aerr != nil {
			return aerr
		}
		prev = got
		return err
	}
}

// ---------------------------------------------------------------------
// Scenarios: the chaos harness's standing fault suite.

// Scenario names one reproducible fault configuration. Make builds a
// fresh injector; iterSeconds is the workload's typical iteration
// duration, used to scale time-domain faults so a scenario stresses
// every platform equally.
type Scenario struct {
	Name        string
	Description string
	Make        func(seed int64, iterSeconds float64) *Injector
}

// DefaultSuite is the standing robustness regression suite: every
// scenario the energy guarantee must survive. The first entry is the
// fault-free control.
func DefaultSuite() []Scenario {
	return []Scenario{
		{
			Name:        "nominal",
			Description: "no faults injected (control)",
			Make: func(int64, float64) *Injector {
				return &Injector{}
			},
		},
		{
			Name:        "dropout-20",
			Description: "20% of power samples lost",
			Make: func(seed int64, _ float64) *Injector {
				return &Injector{Sensor: NewDropout(0.20, seed)}
			},
		},
		{
			Name:        "spikes",
			Description: "5% of samples spiked 3x (+5 W)",
			Make: func(seed int64, _ float64) *Injector {
				return &Injector{Sensor: NewSpike(0.05, 3, 5, seed)}
			},
		},
		{
			Name:        "stuck",
			Description: "sensor frozen 40 of every 200 iterations",
			Make: func(int64, float64) *Injector {
				return &Injector{Sensor: NewStuck(200, 40)}
			},
		},
		{
			Name:        "drift-quantized",
			Description: "0.01%/iter gain drift through a 0.1 W ADC",
			Make: func(int64, float64) *Injector {
				return &Injector{Sensor: SensorChain{Drift{PerIter: 1e-4}, Quantize{Step: 0.1}}}
			},
		},
		{
			Name:        "clock-jitter",
			Description: "timestamp jitter (30% of an iteration) + 2% backwards steps",
			Make: func(seed int64, iterSeconds float64) *Injector {
				return &Injector{Clock: ClockChain{
					NewJitter(0.3*iterSeconds, seed),
					NewBackStep(0.02, 2*iterSeconds, seed+1),
				}}
			},
		},
		{
			Name:        "actuator-flaky",
			Description: "10% of requests silently dropped, 5% transiently failing, 1-iteration lag",
			Make: func(seed int64, _ float64) *Injector {
				return &Injector{Actuator: ActuatorChain{
					NewDropApply(0.10, seed),
					NewDelayApply(1),
					NewFailApply(0.05, seed+1),
				}}
			},
		},
		{
			Name:        "combined",
			Description: "dropout + spikes + clock jitter + flaky actuator together",
			Make: func(seed int64, iterSeconds float64) *Injector {
				return &Injector{
					Sensor:   SensorChain{NewDropout(0.10, seed), NewSpike(0.03, 3, 5, seed+1)},
					Clock:    NewJitter(0.2*iterSeconds, seed+2),
					Actuator: ActuatorChain{NewDropApply(0.05, seed+3), NewFailApply(0.03, seed+4)},
				}
			},
		},
	}
}

// SuiteByName returns the named scenarios from the default suite, or the
// whole suite for an empty list.
func SuiteByName(names []string) ([]Scenario, error) {
	all := DefaultSuite()
	if len(names) == 0 {
		return all, nil
	}
	byName := map[string]Scenario{}
	for _, s := range all {
		byName[s.Name] = s
	}
	var out []Scenario
	for _, n := range names {
		s, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("faults: unknown scenario %q", n)
		}
		out = append(out, s)
	}
	return out, nil
}
