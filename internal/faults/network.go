// Network fault injection: the transport-layer sibling of the
// sensor/clock/actuator models. A Fabric stands between every HTTP hop
// of a test cluster — client to node, member to coordinator, standby to
// primary — and perturbs requests the way real networks do: messages
// dropped, delayed, duplicated, and whole pairs of endpoints
// partitioned from each other. Like every model in this package, the
// stochastic behaviour is a pure function of the seed, so a chaos run
// that found a hole is replayed exactly by naming its seed.
package faults

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"jouleguard/internal/telemetry"
)

// NetRules are one endpoint pair's (or the fabric-wide default's)
// stochastic perturbations. Zero values inject nothing.
type NetRules struct {
	// DropP loses each request independently with this probability; the
	// sender sees a transport error, the receiver sees nothing.
	DropP float64
	// DupP delivers each request twice with this probability — the
	// retransmission double-delivery every at-least-once transport
	// exhibits. The caller sees the second response, so idempotency
	// holes surface as state corruption, not test flakes.
	DupP float64
	// DelayP holds each request for Delay before delivery with this
	// probability (congestion, scheduling, a slow proxy).
	DelayP float64
	Delay  time.Duration
}

func (r NetRules) zero() bool {
	return r.DropP == 0 && r.DupP == 0 && (r.DelayP == 0 || r.Delay == 0)
}

// Fabric is a seeded network-fault plane for an in-process cluster.
// Endpoints register under stable names; every component then talks
// through Transport(name), and the fabric decides per request — from
// the seed and nothing else — whether it is dropped, delayed,
// duplicated, or blocked by a partition.
type Fabric struct {
	mu    sync.Mutex
	rng   *rand.Rand
	names map[string]string // host:port -> endpoint name
	rules map[string]NetRules
	def   NetRules
	parts map[string]bool // "a|b" with a < b
	sink  telemetry.Sink

	drops, dups, delays, blocked int
}

// NewFabric builds a fault plane; all stochastic decisions flow from
// seed.
func NewFabric(seed int64) *Fabric {
	return &Fabric{
		rng:   rand.New(rand.NewSource(seed)),
		names: map[string]string{},
		rules: map[string]NetRules{},
		parts: map[string]bool{},
	}
}

// SetSink attaches a telemetry sink; every perturbed request is
// reported on the network fault channel.
func (f *Fabric) SetSink(s telemetry.Sink) {
	f.mu.Lock()
	f.sink = s
	f.mu.Unlock()
}

// Register names an endpoint by its host:port so destination addresses
// resolve to fabric identities.
func (f *Fabric) Register(name, hostport string) {
	f.mu.Lock()
	f.names[hostport] = name
	f.mu.Unlock()
}

// SetDefault applies rules to every hop without a pair-specific rule.
func (f *Fabric) SetDefault(r NetRules) {
	f.mu.Lock()
	f.def = r
	f.mu.Unlock()
}

// SetRules applies rules to the src->dst hop (directional).
func (f *Fabric) SetRules(src, dst string, r NetRules) {
	f.mu.Lock()
	f.rules[src+">"+dst] = r
	f.mu.Unlock()
}

func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Partition blocks all traffic between a and b (both directions) until
// Heal.
func (f *Fabric) Partition(a, b string) {
	f.mu.Lock()
	f.parts[pairKey(a, b)] = true
	f.mu.Unlock()
}

// Heal removes the a-b partition.
func (f *Fabric) Heal(a, b string) {
	f.mu.Lock()
	delete(f.parts, pairKey(a, b))
	f.mu.Unlock()
}

// HealAll removes every partition.
func (f *Fabric) HealAll() {
	f.mu.Lock()
	f.parts = map[string]bool{}
	f.mu.Unlock()
}

// Stats reports how many requests the fabric perturbed, by kind.
func (f *Fabric) Stats() (drops, dups, delays, blocked int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.drops, f.dups, f.delays, f.blocked
}

// verdict is one request's fate, decided under the fabric lock so the
// rng consumption order — and therefore the whole schedule — is
// deterministic for a serialized request sequence under a fixed seed.
type verdict struct {
	blocked bool
	drop    bool
	dup     bool
	delay   time.Duration
	dst     string
}

func (f *Fabric) decide(src, hostport string) verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	dst, known := f.names[hostport]
	if !known {
		return verdict{dst: hostport}
	}
	if f.parts[pairKey(src, dst)] {
		f.blocked++
		f.reportLocked()
		return verdict{blocked: true, dst: dst}
	}
	r, ok := f.rules[src+">"+dst]
	if !ok {
		r = f.def
	}
	if r.zero() {
		return verdict{dst: dst}
	}
	v := verdict{dst: dst}
	if f.rng.Float64() < r.DropP {
		v.drop = true
		f.drops++
		f.reportLocked()
		return v
	}
	if r.Delay > 0 && f.rng.Float64() < r.DelayP {
		v.delay = r.Delay
		f.delays++
		f.reportLocked()
	}
	if f.rng.Float64() < r.DupP {
		v.dup = true
		f.dups++
		f.reportLocked()
	}
	return v
}

func (f *Fabric) reportLocked() {
	if f.sink != nil {
		f.sink.FaultInjected(telemetry.FaultNetwork)
	}
}

// netTransport is the http.RoundTripper the fabric hands each endpoint.
type netTransport struct {
	fabric *Fabric
	src    string
	next   http.RoundTripper
}

// Transport returns the RoundTripper endpoint src must send through.
// next nil uses http.DefaultTransport.
func (f *Fabric) Transport(src string, next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &netTransport{fabric: f, src: src, next: next}
}

// Client returns an http.Client sending through the fabric.
func (f *Fabric) Client(src string, timeout time.Duration) *http.Client {
	return &http.Client{Transport: f.Transport(src, nil), Timeout: timeout}
}

// RoundTrip implements http.RoundTripper.
func (t *netTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	v := t.fabric.decide(t.src, req.URL.Host)
	switch {
	case v.blocked:
		return nil, fmt.Errorf("faults: %s -> %s partitioned", t.src, v.dst)
	case v.drop:
		// The receiver never sees the request; consume the body so the
		// sender's connection bookkeeping stays sane.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("faults: %s -> %s request dropped", t.src, v.dst)
	}
	if v.delay > 0 {
		timer := time.NewTimer(v.delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		}
	}
	if v.dup {
		// Deliver twice: the first response is discarded, the caller sees
		// the second — exactly what a retransmitted-but-also-delivered
		// request does to a non-idempotent endpoint. Requests whose body
		// cannot be replayed (no GetBody) pass through singly.
		switch {
		case req.Body == nil:
			first := req.Clone(req.Context())
			if resp, err := t.next.RoundTrip(first); err == nil {
				resp.Body.Close()
			}
		case req.GetBody != nil:
			first := req.Clone(req.Context())
			if body, err := req.GetBody(); err == nil {
				first.Body = body
				if resp, err := t.next.RoundTrip(first); err == nil {
					resp.Body.Close()
				}
				if body2, err := req.GetBody(); err == nil {
					orig := req.Body
					second := req.Clone(req.Context())
					second.Body = body2
					req = second
					orig.Close()
				}
			}
		}
	}
	return t.next.RoundTrip(req)
}
