package faults

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// FakePowercap builds and drives a synthetic /sys/class/powercap tree so
// the real file-based RAPL pipeline — sensors.LinuxRAPLReader under the
// measurement service's gate — can be exercised against injected counter
// faults without hardware. The tree has the same shape the kernel
// exposes: intel-rapl:N package zones with energy_uj and
// max_energy_range_uj, plus one subzone per package that a correct
// reader must not double count.
//
// Advance moves true energy forward; the value each zone's energy_uj
// file actually shows is the true cumulative counter passed through an
// optional SensorFault chain (spikes, stuck-at-last-value, drift, ...),
// then wrapped at max_energy_range_uj the way the hardware counter
// wraps. True joules are tracked separately so tests can assert exactly
// how much energy the gate should have admitted.
type FakePowercap struct {
	Root string

	maxRange uint64
	zones    []string  // zone directories, index = zone id
	trueUJ   []float64 // true cumulative microjoules per zone
	fault    SensorFault
	iter     int
}

// NewFakePowercap creates a tree with the given zone count under dir.
// maxRangeUJ is each counter's wrap range (the kernel's
// max_energy_range_uj); choose it small to force wraps mid-test.
func NewFakePowercap(dir string, zones int, maxRangeUJ uint64) (*FakePowercap, error) {
	if zones <= 0 || maxRangeUJ == 0 {
		return nil, fmt.Errorf("faults: powercap needs >=1 zone and a nonzero range")
	}
	f := &FakePowercap{Root: dir, maxRange: maxRangeUJ, trueUJ: make([]float64, zones)}
	for z := 0; z < zones; z++ {
		name := "intel-rapl:" + strconv.Itoa(z)
		zdir := filepath.Join(dir, name)
		if err := os.MkdirAll(zdir, 0o755); err != nil {
			return nil, err
		}
		f.zones = append(f.zones, zdir)
		rangeStr := strconv.FormatUint(maxRangeUJ, 10) + "\n"
		if err := os.WriteFile(filepath.Join(zdir, "max_energy_range_uj"), []byte(rangeStr), 0o644); err != nil {
			return nil, err
		}
		// The decoy subzone: contained in its parent, poisoned with a
		// huge counter so double counting is unmissable.
		sub := filepath.Join(dir, name+":0")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, err
		}
		if err := os.WriteFile(filepath.Join(sub, "energy_uj"), []byte("999999999\n"), 0o644); err != nil {
			return nil, err
		}
		if err := f.writeZone(z, 0); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// SetFault installs the perturbation applied to every counter write.
// The fault sees cumulative microjoules; a reading it drops (ok=false)
// leaves the file unchanged — a frozen counter, exactly what a wedged
// hwmon shows.
func (f *FakePowercap) SetFault(s SensorFault) { f.fault = s }

// Zones returns the package-zone count.
func (f *FakePowercap) Zones() int { return len(f.zones) }

// TrueJoules returns the unperturbed total energy across all zones — the
// ground truth injected faults must not be allowed to move.
func (f *FakePowercap) TrueJoules() float64 {
	var sum float64
	for _, uj := range f.trueUJ {
		sum += uj
	}
	return sum / 1e6
}

// Advance adds joules of true energy, split evenly across zones, and
// rewrites every energy_uj through the fault model and the wrap range.
func (f *FakePowercap) Advance(joules float64) error {
	perZone := joules * 1e6 / float64(len(f.zones))
	iter := f.iter
	f.iter++
	for z := range f.zones {
		f.trueUJ[z] += perZone
		shown := f.trueUJ[z]
		if f.fault != nil {
			out, ok := f.fault.Reading(iter, shown)
			if !ok {
				continue // dropped write: counter freezes at its last value
			}
			shown = out
		}
		if shown < 0 {
			shown = 0
		}
		if err := f.writeZone(z, uint64(shown)%f.maxRange); err != nil {
			return err
		}
	}
	return nil
}

// RemoveZone deletes a zone directory mid-run — the hot-unplug /
// driver-reload event ErrZoneSetChanged exists for.
func (f *FakePowercap) RemoveZone(z int) error {
	if z < 0 || z >= len(f.zones) {
		return fmt.Errorf("faults: zone %d out of range", z)
	}
	return os.RemoveAll(f.zones[z])
}

func (f *FakePowercap) writeZone(z int, uj uint64) error {
	path := filepath.Join(f.zones[z], "energy_uj")
	return os.WriteFile(path, []byte(strconv.FormatUint(uj, 10)+"\n"), 0o644)
}
