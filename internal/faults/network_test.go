package faults_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"jouleguard/internal/faults"
)

func fabricServer(t *testing.T, hits *atomic.Int64) (*httptest.Server, string) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		body, _ := io.ReadAll(r.Body)
		w.Write(body)
	}))
	t.Cleanup(srv.Close)
	return srv, strings.TrimPrefix(srv.URL, "http://")
}

func TestFabricPartitionBlocksBothDirections(t *testing.T) {
	var hits atomic.Int64
	srv, hostport := fabricServer(t, &hits)
	fab := faults.NewFabric(1)
	fab.Register("node0", hostport)
	fab.Partition("client", "node0")

	cli := fab.Client("client", 0)
	if _, err := cli.Get(srv.URL); err == nil {
		t.Fatal("partitioned request went through")
	}
	if hits.Load() != 0 {
		t.Fatalf("server saw %d requests across a partition", hits.Load())
	}
	fab.Heal("client", "node0")
	resp, err := cli.Get(srv.URL)
	if err != nil {
		t.Fatalf("healed request failed: %v", err)
	}
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests after heal, want 1", hits.Load())
	}
	_, _, _, blocked := fab.Stats()
	if blocked != 1 {
		t.Fatalf("blocked = %d, want 1", blocked)
	}
}

func TestFabricDropDeterministicUnderSeed(t *testing.T) {
	schedule := func(seed int64) []bool {
		var hits atomic.Int64
		srv, hostport := fabricServer(t, &hits)
		fab := faults.NewFabric(seed)
		fab.Register("coord", hostport)
		fab.SetRules("m", "coord", faults.NetRules{DropP: 0.5})
		cli := fab.Client("m", 0)
		var outcomes []bool
		for i := 0; i < 40; i++ {
			resp, err := cli.Get(srv.URL)
			if err == nil {
				resp.Body.Close()
			}
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := schedule(7), schedule(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
	c := schedule(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 40-request schedule")
	}
}

func TestFabricDuplicateDeliversTwice(t *testing.T) {
	var hits atomic.Int64
	srv, hostport := fabricServer(t, &hits)
	fab := faults.NewFabric(3)
	fab.Register("node0", hostport)
	fab.SetRules("client", "node0", faults.NetRules{DupP: 1})

	cli := fab.Client("client", 0)
	resp, err := cli.Post(srv.URL, "application/json", bytes.NewReader([]byte(`{"x":1}`)))
	if err != nil {
		t.Fatalf("duplicated POST failed: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != `{"x":1}` {
		t.Fatalf("caller saw body %q, want the original payload", body)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d deliveries, want 2", hits.Load())
	}
}

func TestFabricUnknownDestinationUntouched(t *testing.T) {
	var hits atomic.Int64
	srv, _ := fabricServer(t, &hits)
	fab := faults.NewFabric(5)
	fab.SetDefault(faults.NetRules{DropP: 1})
	cli := fab.Client("client", 0)
	resp, err := cli.Get(srv.URL)
	if err != nil {
		t.Fatalf("request to unregistered endpoint failed: %v", err)
	}
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1", hits.Load())
	}
}
