package faults

import (
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func readUJ(t *testing.T, dir string, zone int) uint64 {
	t.Helper()
	path := filepath.Join(dir, "intel-rapl:"+strconv.Itoa(zone), "energy_uj")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestFakePowercapCleanAdvance(t *testing.T) {
	dir := t.TempDir()
	f, err := NewFakePowercap(dir, 2, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Advance(2.0); err != nil { // 1 J per zone
		t.Fatal(err)
	}
	if got := readUJ(t, dir, 0); got != 1000000 {
		t.Fatalf("zone 0 = %d uJ, want 1000000", got)
	}
	if got := f.TrueJoules(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("TrueJoules = %v, want 2", got)
	}
	// Subzone decoys exist (a correct reader must skip them).
	if _, err := os.Stat(filepath.Join(dir, "intel-rapl:0:0", "energy_uj")); err != nil {
		t.Fatalf("missing decoy subzone: %v", err)
	}
}

func TestFakePowercapWrap(t *testing.T) {
	dir := t.TempDir()
	f, err := NewFakePowercap(dir, 1, 1000000) // 1 J wrap range
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Advance(0.9); err != nil {
		t.Fatal(err)
	}
	if err := f.Advance(0.3); err != nil { // true 1.2 J: counter wraps to 200000
		t.Fatal(err)
	}
	if got := readUJ(t, dir, 0); got != 200000 {
		t.Fatalf("wrapped counter = %d uJ, want 200000", got)
	}
	if got := f.TrueJoules(); math.Abs(got-1.2) > 1e-9 {
		t.Fatalf("TrueJoules = %v, want 1.2 (wraps must not lose truth)", got)
	}
}

func TestFakePowercapStuckFault(t *testing.T) {
	dir := t.TempDir()
	f, err := NewFakePowercap(dir, 1, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	f.SetFault(NewDropout(1.0, 1)) // every write dropped: counter frozen
	before := readUJ(t, dir, 0)
	if err := f.Advance(5); err != nil {
		t.Fatal(err)
	}
	if got := readUJ(t, dir, 0); got != before {
		t.Fatalf("frozen counter moved: %d -> %d", before, got)
	}
	// Truth keeps accruing even while the shown counter is wedged.
	if got := f.TrueJoules(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("TrueJoules = %v, want 5", got)
	}
}

func TestFakePowercapSpikeFault(t *testing.T) {
	dir := t.TempDir()
	f, err := NewFakePowercap(dir, 1, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	f.SetFault(NewSpike(1.0, 3, 0, 42)) // every shown counter tripled
	if err := f.Advance(1); err != nil {
		t.Fatal(err)
	}
	if got := readUJ(t, dir, 0); got != 3000000 {
		t.Fatalf("spiked counter = %d uJ, want 3000000", got)
	}
	if got := f.TrueJoules(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("TrueJoules = %v, want 1 (spikes are lies, not energy)", got)
	}
}

func TestFakePowercapRemoveZone(t *testing.T) {
	dir := t.TempDir()
	f, err := NewFakePowercap(dir, 2, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveZone(1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "intel-rapl:1")); !os.IsNotExist(err) {
		t.Fatalf("zone 1 should be gone, stat err = %v", err)
	}
	if err := f.RemoveZone(5); err == nil {
		t.Fatal("want error for out-of-range zone")
	}
}
