package guard

import (
	"testing"

	"jouleguard/internal/telemetry"
)

// TestGuardReasonNames pins the correspondence between guard.Reason's
// stable numeric values and the metric labels telemetry uses for
// jouleguard_guard_verdicts_total. The telemetry package cannot import
// guard (guard imports telemetry), so the names are duplicated there;
// this test is the single place that keeps them in sync.
func TestGuardReasonNames(t *testing.T) {
	for r := OK; r <= Outlier; r++ {
		if got, want := telemetry.GuardReasonName(uint8(r)), r.String(); got != want {
			t.Errorf("telemetry.GuardReasonName(%d) = %q, want guard.Reason %q", r, got, want)
		}
	}
	if got := telemetry.GuardReasonName(uint8(Outlier) + 1); got != "unknown" {
		t.Errorf("out-of-range reason name = %q, want %q", got, "unknown")
	}
}

// countingSink records verdict calls for the instrumentation test.
type countingSink struct {
	telemetry.Nop
	accepted, rejected int
	lastReason         uint8
	lastPower          float64
}

func (c *countingSink) GuardVerdict(accepted bool, reason uint8, power float64) {
	if accepted {
		c.accepted++
	} else {
		c.rejected++
	}
	c.lastReason = reason
	c.lastPower = power
}

// TestSensorReportsVerdicts checks that every accept/reject path emits
// exactly one GuardVerdict, matching the Sensor's own counters.
func TestSensorReportsVerdicts(t *testing.T) {
	sink := &countingSink{}
	s := New(Config{ModelPower: 20})
	s.SetSink(sink)

	for i := 0; i < 5; i++ {
		s.Observe(20, 0.1)
	}
	v := s.Observe(-3, 0.1) // negative power: rejected
	if v.Accepted {
		t.Fatal("negative power was accepted")
	}
	if sink.lastReason != uint8(Negative) {
		t.Errorf("last reason = %s, want %s", telemetry.GuardReasonName(sink.lastReason), Negative)
	}
	if sink.lastPower != v.Power {
		t.Errorf("sink power = %v, want verdict power %v", sink.lastPower, v.Power)
	}
	s.Missing(0.1)

	acc, rej := s.Counts()
	if sink.accepted != acc || sink.rejected != rej {
		t.Errorf("sink saw %d/%d accepted/rejected, sensor counted %d/%d",
			sink.accepted, sink.rejected, acc, rej)
	}
}
