// Package guard is JouleGuard's hardened sensing layer: it sits between a
// raw power/energy instrument and the runtime's feedback loop and decides,
// sample by sample, whether a reading is trustworthy. Readings pass a
// non-finite/negative screen, a stuck-sensor detector, an absolute
// plausibility ceiling, and a median/MAD outlier gate over a sliding
// window of recently accepted samples. Rejected or missing samples are
// replaced by a model-based estimate (the platform power model when one
// is registered, otherwise the window's median), and the guard maintains
// its own cleaned cumulative-energy ledger so one corrupt sample can
// never poison the budget accounting downstream.
//
// Genuine level shifts — a configuration change moving true power by more
// than the gate — are handled two ways: callers that know they actuated
// call NoteActuation to rebase the window, and unannounced shifts are
// accepted once two consecutive out-of-gate samples agree with each
// other (a spike is lonely; a new operating point repeats).
package guard

import (
	"math"
	"sort"

	"jouleguard/internal/telemetry"
)

// Reason classifies a sample verdict.
type Reason uint8

// Verdict reasons.
const (
	OK          Reason = iota // accepted
	Missing                   // no sample arrived (dropout or reader error)
	NonFinite                 // NaN or Inf
	Negative                  // negative power (or energy counter going backwards)
	Stuck                     // sensor frozen at one value
	Implausible               // above the absolute power ceiling
	Outlier                   // outside the median/MAD gate
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case OK:
		return "ok"
	case Missing:
		return "missing"
	case NonFinite:
		return "non-finite"
	case Negative:
		return "negative"
	case Stuck:
		return "stuck"
	case Implausible:
		return "implausible"
	case Outlier:
		return "outlier"
	}
	return "unknown"
}

// Config tunes a Sensor. The zero value selects the defaults.
type Config struct {
	Window     int     // accepted-sample window for the median/MAD gate (default 16)
	MADGate    float64 // rejection threshold in MAD units (default 4)
	RelFloor   float64 // MAD floor as a fraction of the median, so a quiet window cannot shrink the gate to zero (default 0.05)
	ConfirmTol float64 // fractional agreement for two-sample level-shift confirmation (default 0.1)
	StuckRun   int     // consecutive identical readings before declaring the sensor stuck (default 8)
	MaxPower   float64 // absolute plausibility ceiling in watts (0 = no ceiling)
	ModelPower float64 // model-based fallback power estimate in watts (0 = none registered)
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.MADGate <= 0 {
		c.MADGate = 4
	}
	if c.RelFloor <= 0 {
		c.RelFloor = 0.05
	}
	if c.ConfirmTol <= 0 {
		c.ConfirmTol = 0.1
	}
	if c.StuckRun <= 0 {
		c.StuckRun = 8
	}
	return c
}

// Verdict is the guard's ruling on one sample interval.
type Verdict struct {
	Power    float64 // power to act on: the reading if accepted, else the fallback estimate
	Energy   float64 // cleaned cumulative energy (J) including this interval
	Accepted bool
	Reason   Reason
}

// Sensor is the hardened sensing state. Not safe for concurrent use.
type Sensor struct {
	cfg    Config
	win    []float64 // recently accepted samples, oldest first
	energy float64   // cleaned cumulative joules

	model float64 // model-based fallback power (0 = none)

	lastRaw     float64 // raw-stream stuck detection
	haveRaw     bool
	stuckRun    int
	expectShift bool // model power moved since the raw value last changed

	pending     float64 // last out-of-gate sample awaiting confirmation
	havePending bool

	ivals []float64 // recent intervals on the current configuration

	tmp []float64 // scratch for medianMAD; windows are a handful of samples

	rejectStreak       int
	accepted, rejected int

	sink telemetry.Sink // per-verdict telemetry; Nop when not instrumented
}

// medianMAD is the Sensor's allocation-free variant: the guard runs once
// per governed iteration on the daemon's decision path, and a fresh
// scratch slice per call was the path's dominant allocator.
func (s *Sensor) medianMAD(xs []float64) (med, mad float64) {
	if cap(s.tmp) < len(xs) {
		s.tmp = make([]float64, len(xs))
	}
	return medianMADInto(s.tmp[:len(xs)], xs)
}

// New builds a Sensor; zero-value Config fields take the defaults.
func New(cfg Config) *Sensor {
	cfg = cfg.withDefaults()
	return &Sensor{cfg: cfg, model: cfg.ModelPower, sink: telemetry.Nop{}}
}

// SetSink streams every verdict into a telemetry sink.
func (s *Sensor) SetSink(sink telemetry.Sink) { s.sink = telemetry.OrNop(sink) }

// SetModelPower registers the current model-based power estimate used as
// the fallback for rejected or missing samples.
func (s *Sensor) SetModelPower(w float64) {
	if w > 0 && !math.IsNaN(w) && !math.IsInf(w, 0) {
		if s.model > 0 && math.Abs(w-s.model) > s.cfg.ConfirmTol*s.model {
			s.expectShift = true
		}
		s.model = w
	}
}

// NoteActuation tells the guard a configuration change was just applied,
// so the next samples may legitimately sit far from the old window:
// the window is rebased rather than treating the new level as outliers.
func (s *Sensor) NoteActuation() {
	s.win = s.win[:0]
	s.havePending = false
}

// ivalWindow bounds the interval history used by Interval. Small, so a
// legitimate workload or model shift is tracked within a few iterations.
const ivalWindow = 9

// Interval returns the iteration duration the control and learning
// layers should act on. Timestamps from a jittery clock make the raw
// interval noisy, and because the layers above consume its RECIPROCAL
// (a rate), zero-mean noise on the interval becomes a systematic
// overestimate of the rate (E[1/D] > 1/E[D]) — the runtime then believes
// it is faster than reality and overspends. The median of recent
// intervals is robust to that: symmetric noise cancels in the median,
// and 1/median(D) = median(1/D).
//
// When the caller can supply a model-expected duration for the same
// interval, the filter runs on the ratio dur/expected, which is
// configuration-independent — the window stays warm across actuations
// instead of restarting every time the operating point moves. The raw
// interval must still be used for energy integration, where the noise
// is unbiased and sums out.
func (s *Sensor) Interval(dur, expected float64) float64 {
	if !(dur > 0) || math.IsInf(dur, 0) {
		return dur // gross clock faults are the caller's plausibility check
	}
	x, scale := dur, 1.0
	if expected > 0 && !math.IsInf(expected, 0) {
		x, scale = dur/expected, expected
	}
	s.ivals = slideAppend(s.ivals, x, ivalWindow)
	if len(s.ivals) < 3 {
		return dur
	}
	med, _ := s.medianMAD(s.ivals)
	return med * scale
}

// Estimate returns the current fallback power estimate: the registered
// model if one is set, otherwise the median of the accepted window.
func (s *Sensor) Estimate() float64 {
	if s.model > 0 {
		return s.model
	}
	if len(s.win) > 0 {
		med, _ := s.medianMAD(s.win)
		return med
	}
	return 0
}

// Observe rules on a measured power sample covering dur seconds.
func (s *Sensor) Observe(power, dur float64) Verdict {
	if math.IsNaN(power) || math.IsInf(power, 0) {
		return s.reject(NonFinite, dur)
	}
	if power < 0 {
		return s.reject(Negative, dur)
	}
	// Stuck detection watches the raw stream for runs of bit-identical
	// readings, but exact repeats alone are ambiguous: a deterministic or
	// heavily quantised source legitimately repeats. See isStuck.
	if s.haveRaw && power == s.lastRaw {
		s.stuckRun++
	} else {
		s.stuckRun = 1
		s.expectShift = false
	}
	s.lastRaw, s.haveRaw = power, true
	if s.isStuck() {
		return s.reject(Stuck, dur)
	}
	if s.cfg.MaxPower > 0 && power > s.cfg.MaxPower {
		return s.reject(Implausible, dur)
	}
	if len(s.win) >= 3 {
		med, mad := s.medianMAD(s.win)
		gate := s.cfg.MADGate * math.Max(mad, s.cfg.RelFloor*math.Abs(med))
		if math.Abs(power-med) > gate {
			if s.havePending && math.Abs(power-s.pending) <= s.cfg.ConfirmTol*math.Abs(s.pending) {
				// Two consecutive out-of-gate samples agree: a genuine
				// level shift, not a spike. Rebase on the new level.
				s.win = s.win[:0]
				s.havePending = false
				return s.accept(power, dur)
			}
			s.pending, s.havePending = power, true
			return s.reject(Outlier, dur)
		}
	}
	s.havePending = false
	return s.accept(power, dur)
}

// isStuck decides whether the current run of identical raw readings is a
// frozen sensor rather than a genuinely steady source. Repeats are only
// anomalous given contrary evidence: the model power level moved and the
// reading did not follow (caught within a few samples), or the accepted
// window shows the source is noisy — a noisy source never repeats
// exactly for a whole StuckRun.
func (s *Sensor) isStuck() bool {
	if s.expectShift && s.stuckRun >= 3 {
		return true
	}
	if s.stuckRun < s.cfg.StuckRun || len(s.win) < 3 {
		return false
	}
	_, mad := s.medianMAD(s.win)
	return mad > 0
}

// Missing rules on an interval for which no sample arrived.
func (s *Sensor) Missing(dur float64) Verdict {
	return s.reject(Missing, dur)
}

// ConsecutiveRejects returns the current rejection streak.
func (s *Sensor) ConsecutiveRejects() int { return s.rejectStreak }

// Healthy reports whether the most recent sample was accepted.
func (s *Sensor) Healthy() bool { return s.rejectStreak == 0 }

// Counts returns the total accepted and rejected sample counts.
func (s *Sensor) Counts() (accepted, rejected int) { return s.accepted, s.rejected }

// Energy returns the cleaned cumulative energy ledger in joules.
func (s *Sensor) Energy() float64 { return s.energy }

// AdjustEnergy applies a signed correction to the cleaned ledger and
// returns it — used when an authoritative counter delta arrives after an
// outage and replaces the provisional estimates integrated meanwhile.
// The ledger never goes negative.
func (s *Sensor) AdjustEnergy(dj float64) float64 {
	s.energy += dj
	if s.energy < 0 {
		s.energy = 0
	}
	return s.energy
}

func (s *Sensor) accept(power, dur float64) Verdict {
	s.win = slideAppend(s.win, power, s.cfg.Window)
	s.accepted++
	s.rejectStreak = 0
	s.integrate(power, dur)
	s.sink.GuardVerdict(true, uint8(OK), power)
	return Verdict{Power: power, Energy: s.energy, Accepted: true, Reason: OK}
}

func (s *Sensor) reject(why Reason, dur float64) Verdict {
	s.rejected++
	s.rejectStreak++
	est := s.Estimate()
	s.integrate(est, dur)
	s.sink.GuardVerdict(false, uint8(why), est)
	return Verdict{Power: est, Energy: s.energy, Accepted: false, Reason: why}
}

// integrate advances the cleaned ledger; negative or non-finite
// durations (a faulty clock) contribute nothing rather than corrupting
// the sum.
func (s *Sensor) integrate(power, dur float64) {
	if dur > 0 && !math.IsNaN(dur) && !math.IsInf(dur, 0) {
		s.energy += power * dur
	}
}

// slideAppend appends x to a bounded window, shifting in place once the
// window is full so the backing array never migrates forward (reslicing
// with win[1:] forces a reallocation every cap-len appends — a steady
// drip of garbage on the per-iteration path).
func slideAppend(win []float64, x float64, max int) []float64 {
	if len(win) < max {
		return append(win, x)
	}
	copy(win, win[1:])
	win[len(win)-1] = x
	return win
}

// medianMAD returns the median and the median absolute deviation of xs.
func medianMAD(xs []float64) (med, mad float64) {
	return medianMADInto(make([]float64, len(xs)), xs)
}

// medianMADInto computes medianMAD using tmp (len(tmp) == len(xs)) as
// scratch; xs is left untouched.
func medianMADInto(tmp, xs []float64) (med, mad float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	copy(tmp, xs)
	sort.Float64s(tmp)
	med = tmp[n/2]
	if n%2 == 0 {
		med = (tmp[n/2-1] + tmp[n/2]) / 2
	}
	for i, x := range tmp {
		tmp[i] = math.Abs(x - med)
	}
	sort.Float64s(tmp)
	mad = tmp[n/2]
	if n%2 == 0 {
		mad = (tmp[n/2-1] + tmp[n/2]) / 2
	}
	return med, mad
}
