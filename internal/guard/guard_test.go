package guard

import (
	"math"
	"testing"
)

// noisy returns a deterministic pseudo-noisy level: base plus a small
// varying perturbation so the window is non-degenerate like a real sensor.
func noisy(base float64, i int) float64 {
	return base + 0.01*float64(i%7) - 0.03
}

func feed(s *Sensor, base float64, n int) {
	for i := 0; i < n; i++ {
		s.Observe(noisy(base, i), 0.1)
	}
}

func TestAcceptsCleanStream(t *testing.T) {
	s := New(Config{})
	for i := 0; i < 50; i++ {
		v := s.Observe(noisy(20, i), 0.1)
		if !v.Accepted {
			t.Fatalf("sample %d rejected: %v", i, v.Reason)
		}
	}
	acc, rej := s.Counts()
	if acc != 50 || rej != 0 {
		t.Fatalf("counts: %d/%d", acc, rej)
	}
	if !s.Healthy() {
		t.Fatal("clean stream should be healthy")
	}
}

func TestRejectsNonFiniteAndNegative(t *testing.T) {
	s := New(Config{ModelPower: 20})
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -5} {
		v := s.Observe(bad, 0.1)
		if v.Accepted {
			t.Fatalf("accepted %v", bad)
		}
		if v.Power != 20 {
			t.Fatalf("fallback power %v, want model 20", v.Power)
		}
	}
	if s.Observe(math.NaN(), 0.1).Reason != NonFinite {
		t.Fatal("NaN reason")
	}
	if s.Observe(-1, 0.1).Reason != Negative {
		t.Fatal("negative reason")
	}
}

func TestOutlierRejectedSpikeThenRecovers(t *testing.T) {
	s := New(Config{})
	feed(s, 20, 20)
	v := s.Observe(65, 0.1) // 3x spike
	if v.Accepted || v.Reason != Outlier {
		t.Fatalf("spike not rejected: %+v", v)
	}
	if v.Power > 25 {
		t.Fatalf("fallback power %v should track the window, not the spike", v.Power)
	}
	v = s.Observe(noisy(20, 3), 0.1)
	if !v.Accepted {
		t.Fatalf("clean sample after spike rejected: %v", v.Reason)
	}
	if s.ConsecutiveRejects() != 0 {
		t.Fatal("reject streak should clear")
	}
}

func TestLevelShiftConfirmedByAgreement(t *testing.T) {
	s := New(Config{})
	feed(s, 20, 20)
	if v := s.Observe(40, 0.1); v.Accepted {
		t.Fatal("first out-of-gate sample must be held for confirmation")
	}
	v := s.Observe(40.5, 0.1) // agrees with the pending sample
	if !v.Accepted {
		t.Fatalf("confirmed level shift rejected: %v", v.Reason)
	}
	// The window rebased: the new level is now the norm.
	if v := s.Observe(41, 0.1); !v.Accepted {
		t.Fatalf("post-shift sample rejected: %v", v.Reason)
	}
}

func TestSpikePairMustAgreeToConfirm(t *testing.T) {
	s := New(Config{})
	feed(s, 20, 20)
	if v := s.Observe(60, 0.1); v.Accepted {
		t.Fatal("spike accepted")
	}
	if v := s.Observe(100, 0.1); v.Accepted {
		t.Fatal("disagreeing outliers must not confirm a shift")
	}
}

func TestNoteActuationRebasesWindow(t *testing.T) {
	s := New(Config{})
	feed(s, 20, 20)
	s.NoteActuation()
	v := s.Observe(noisy(45, 0), 0.1) // new operating point, far from old window
	if !v.Accepted {
		t.Fatalf("post-actuation level rejected: %v", v.Reason)
	}
}

func TestStuckSensorOnNoisySource(t *testing.T) {
	s := New(Config{StuckRun: 5})
	feed(s, 20, 20) // noisy window established
	var v Verdict
	for i := 0; i < 5; i++ {
		v = s.Observe(20.00, 0.1) // bit-identical repeats
	}
	if v.Accepted || v.Reason != Stuck {
		t.Fatalf("frozen sensor not flagged: %+v", v)
	}
	// Recovery: a changing value clears the run.
	if v := s.Observe(noisy(20, 1), 0.1); !v.Accepted {
		t.Fatalf("recovered sensor rejected: %v", v.Reason)
	}
}

func TestSteadyDeterministicSourceNotStuck(t *testing.T) {
	s := New(Config{StuckRun: 5})
	for i := 0; i < 100; i++ {
		if v := s.Observe(20, 0.1); !v.Accepted {
			t.Fatalf("sample %d: deterministic steady source flagged %v", i, v.Reason)
		}
	}
}

func TestModelShiftExposesFrozenSensor(t *testing.T) {
	s := New(Config{})
	s.SetModelPower(20)
	for i := 0; i < 10; i++ {
		s.Observe(20, 0.1) // deterministic source, accepted
	}
	// The platform moved to a much higher power state but the reading
	// stays frozen — that contradiction is the stuck signal.
	s.SetModelPower(40)
	var v Verdict
	for i := 0; i < 3; i++ {
		v = s.Observe(20, 0.1)
	}
	if v.Accepted || v.Reason != Stuck {
		t.Fatalf("frozen reading across a model shift not flagged: %+v", v)
	}
}

func TestImplausibleCeiling(t *testing.T) {
	s := New(Config{MaxPower: 100})
	if v := s.Observe(250, 0.1); v.Accepted || v.Reason != Implausible {
		t.Fatalf("over-ceiling sample: %+v", v)
	}
}

func TestMissingFallsBackToModelThenMedian(t *testing.T) {
	s := New(Config{ModelPower: 30})
	v := s.Missing(0.1)
	if v.Accepted || v.Reason != Missing {
		t.Fatalf("missing verdict: %+v", v)
	}
	if v.Power != 30 {
		t.Fatalf("fallback %v, want model 30", v.Power)
	}
	// Without a model, the window median is the estimate.
	s2 := New(Config{})
	feed(s2, 20, 10)
	v = s2.Missing(0.1)
	if v.Power < 19 || v.Power > 21 {
		t.Fatalf("fallback %v, want ~20 (window median)", v.Power)
	}
}

func TestEnergyLedgerIntegratesCleanly(t *testing.T) {
	s := New(Config{ModelPower: 10})
	s.Observe(10, 1)  // +10 J
	s.Missing(2)      // +20 J at model power
	s.Observe(10, -1) // faulty negative duration: contributes nothing
	s.Observe(10, math.NaN())
	if e := s.Energy(); math.Abs(e-30) > 1e-9 {
		t.Fatalf("ledger %v, want 30", e)
	}
	if e := s.AdjustEnergy(-20); math.Abs(e-10) > 1e-9 {
		t.Fatalf("adjusted ledger %v, want 10", e)
	}
	if e := s.AdjustEnergy(-100); e != 0 {
		t.Fatalf("ledger went negative: %v", e)
	}
}

func TestSetModelPowerIgnoresGarbage(t *testing.T) {
	s := New(Config{ModelPower: 15})
	s.SetModelPower(math.NaN())
	s.SetModelPower(math.Inf(1))
	s.SetModelPower(-3)
	s.SetModelPower(0)
	if s.Estimate() != 15 {
		t.Fatalf("model corrupted: %v", s.Estimate())
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Window != 16 || c.MADGate != 4 || c.StuckRun != 8 || c.RelFloor != 0.05 || c.ConfirmTol != 0.1 {
		t.Fatalf("defaults: %+v", c)
	}
}

func TestMedianMAD(t *testing.T) {
	med, mad := medianMAD([]float64{1, 2, 3, 4, 100})
	if med != 3 {
		t.Fatalf("median %v", med)
	}
	if mad != 1 {
		t.Fatalf("mad %v", mad)
	}
	if m, d := medianMAD(nil); m != 0 || d != 0 {
		t.Fatal("empty input")
	}
	med, mad = medianMAD([]float64{1, 3})
	if med != 2 || mad != 1 {
		t.Fatalf("even length: med %v mad %v", med, mad)
	}
}

func TestIntervalFilterCancelsSymmetricJitter(t *testing.T) {
	// A jittery clock adds symmetric noise to intervals; the reciprocal
	// (a rate) is then biased high. The median filter must converge on
	// the true interval so downstream rates stay honest.
	s := New(Config{})
	true_ := 0.1
	noise := []float64{0.3, -0.25, 0.05, -0.05, 0.2, -0.2, 0.0, 0.1, -0.1}
	var last float64
	for i, n := range noise {
		last = s.Interval(true_*(1+n), 0)
		if i < 2 && last != true_*(1+n) {
			t.Fatalf("sample %d: filter engaged before 3 samples: %v", i, last)
		}
	}
	if math.Abs(last-true_) > 0.01*true_ {
		t.Fatalf("filtered interval %v, want ~%v", last, true_)
	}
}

func TestIntervalRatioModeSurvivesConfigChanges(t *testing.T) {
	// With an expected duration supplied, the filter runs on the ratio
	// dur/expected, so the window stays warm when the operating point —
	// and with it the absolute duration — moves.
	s := New(Config{})
	for i := 0; i < 9; i++ {
		s.Interval(0.1, 0.1) // warm up at one operating point, ratio 1
	}
	// New operating point: 10x faster, one wild jittered sample.
	got := s.Interval(0.04, 0.01)
	if math.Abs(got-0.01) > 0.002 {
		t.Fatalf("ratio filter did not rescale to new operating point: %v", got)
	}
}

func TestIntervalPassesThroughGrossFaults(t *testing.T) {
	s := New(Config{})
	for _, d := range []float64{-1, 0, math.NaN(), math.Inf(1)} {
		if got := s.Interval(d, 0.1); !(got == d || math.IsNaN(got) && math.IsNaN(d)) {
			t.Fatalf("gross fault %v altered to %v; plausibility is the caller's job", d, got)
		}
	}
}
