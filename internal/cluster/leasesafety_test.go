package cluster_test

import (
	"fmt"
	"math"
	"testing"

	"jouleguard/internal/wire"
)

// TestLeaseSafetyPartitionRejoin is the fleet-guarantee stress case the
// lease design exists for: a node is partitioned from the coordinator,
// keeps spending against its lease, gets its budget pessimistically
// escrowed and its sessions failed over — then comes back and
// reconciles. The safety invariant
//
//	actual fleet spend <= booked consumption + live unspent leases <= fleet budget
//
// is asserted after every single step: no interleaving of partition,
// expiry, failover and rejoin may ever let the fleet overdraw or
// double-spend a joule.
func TestLeaseSafetyPartitionRejoin(t *testing.T) {
	f := newFleet(t, 20000, 2)

	// actualSpendJ is ground truth: what the node-side meters really drew.
	actualSpendJ := func() float64 {
		total := 0.0
		for _, srv := range f.servers {
			total += srv.TotalSpentJ()
		}
		return total
	}
	assertSafe := func(when string) {
		t.Helper()
		f.assertInvariant(when)
		info := f.info()
		if booked := info.ConsumedJ + info.LeasedUnspentJ; actualSpendJ() > booked+1e-6 {
			t.Fatalf("%s: actual spend %.3f exceeds booked cover %.3f — double-spend window",
				when, actualSpendJ(), booked)
		}
	}
	assertSafe("initial")

	// Find a key the soon-to-be-partitioned node owns.
	victim := ""
	key := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("part-%d", i)
		place, err := f.coord.Place(k)
		if err != nil {
			t.Fatal(err)
		}
		if place.Node == "node1" {
			victim, key = place.Node, k
			break
		}
	}
	_ = victim

	d := f.place(key, "tenant-p", 40, 2, 11)
	for i := 0; i < 10; i++ {
		d.step()
		assertSafe(fmt.Sprintf("pre-partition iter %d", i))
	}
	for _, m := range f.members {
		if err := m.Beat(); err != nil {
			t.Fatal(err)
		}
	}
	assertSafe("pre-partition heartbeat")

	// Partition: node1 stops heartbeating but its clients keep going.
	// Until the local fence trips this is legitimate spend against the
	// still-live lease.
	idx := f.nodeIdx("node1")
	for i := 0; i < 10; i++ {
		if code := d.tryNext(); code != "" {
			t.Fatalf("partition iter %d refused with %q before the fence tripped", i, code)
		}
		assertSafe(fmt.Sprintf("partitioned iter %d", i))
	}
	spentBeforeFence := f.servers[idx].TotalSpentJ()

	// Lease runs out: the node fences itself...
	f.clock.Advance(f.ttl + f.ttl/2)
	if err := f.members[0].Beat(); err != nil { // the healthy node keeps renewing
		t.Fatal(err)
	}
	if !f.members[idx].CheckFence() {
		t.Fatal("fence did not trip after the lease TTL")
	}
	if code := d.tryNext(); code != wire.CodeLeaseExpired {
		t.Fatalf("fenced node answered next with %q, want %q", code, wire.CodeLeaseExpired)
	}
	if got := f.servers[idx].TotalSpentJ(); got != spentBeforeFence {
		t.Fatalf("fenced node kept spending: %.3f -> %.3f", spentBeforeFence, got)
	}
	assertSafe("fenced")

	// ...and the coordinator, after the same TTL, escrows the unspent
	// lease and fails the session over to the survivor.
	if expired := f.coord.Sweep(); expired != 1 {
		t.Fatalf("sweep expired %d leases, want 1", expired)
	}
	assertSafe("escrowed")
	info := f.info()
	if info.NodesLive != 1 {
		t.Fatalf("nodes live %d after expiry, want 1", info.NodesLive)
	}
	place, err := f.coord.Place(key)
	if err != nil {
		t.Fatal(err)
	}
	if place.Node != "node0" {
		t.Fatalf("session still placed on %s after failover", place.Node)
	}
	escrowedConsumed := info.ConsumedJ

	// Rejoin: the node reports its true cumulative spend; the coordinator
	// books the partition-era spend, refunds the remaining escrow, and
	// tells the node to drop its stale copy of the moved session.
	if err := f.members[idx].Beat(); err != nil {
		t.Fatalf("rejoin beat: %v", err)
	}
	assertSafe("rejoined")
	info = f.info()
	if info.NodesLive != 2 {
		t.Fatalf("nodes live %d after rejoin, want 2", info.NodesLive)
	}
	if info.ConsumedJ >= escrowedConsumed {
		t.Fatalf("reconcile refunded nothing: consumed %.3f -> %.3f",
			escrowedConsumed, info.ConsumedJ)
	}
	if f.coord.Violations() != 0 {
		t.Fatalf("%d ledger violations across the partition lifecycle", f.coord.Violations())
	}

	// The rejoined node must have discarded its copy: the key lives on
	// the survivor, exactly once.
	for _, ex := range f.servers[idx].Export(nil) {
		if ex.Key == key && ex.Live {
			t.Fatalf("rejoined node still holds live session %q after drop order", key)
		}
	}
	place, err = f.coord.Place(key)
	if err != nil {
		t.Fatal(err)
	}
	if place.Node != "node0" || place.SessionID == "" {
		t.Fatalf("post-rejoin placement %+v, want node0 with a session id", place)
	}

	// And the unfenced node serves again.
	d2 := f.place("fresh-after-rejoin", "tenant-p", 5, 2, 3)
	for i := 0; i < 5; i++ {
		d2.step()
		assertSafe(fmt.Sprintf("post-rejoin iter %d", i))
	}
}

// TestRejoinReconcilesLeaseDownward pins the no-double-spend half of
// the rejoin reconcile on the member side: when a node's lease expires
// and it rejoins, the coordinator resets the lease to the reported
// spend and refunds the unspent escrow to the pool — so the member's
// broker pool must shrink to the new lease. Keeping the old, larger
// pool would make the refunded joules spendable twice: locally, and
// again by whichever node the pool re-leases them to.
func TestRejoinReconcilesLeaseDownward(t *testing.T) {
	f := newFleet(t, 1000, 1) // initial lease 1000*0.9/8 = 112.5 J
	broker := f.servers[0].Broker()

	// A 500 J registration forces an on-demand extension well past the
	// initial lease.
	reg := wire.RegisterRequest{
		Tenant: "t0", Key: "big", App: "radar", Platform: "Tablet",
		Iterations: 20, BudgetJ: 500, Seed: 3,
	}
	var resp wire.RegisterResponse
	if status, e := postJSON(t, f.nodeTS[0].URL+wire.BasePath, reg, &resp); status >= 300 {
		t.Fatalf("register: status %d %+v", status, e)
	}
	d := &driver{t: t, base: f.nodeTS[0].URL, id: resp.SessionID, m: newMachine(t)}
	for i := 0; i < 5; i++ {
		d.step()
	}
	if _, err := f.servers[0].Close(resp.SessionID); err != nil {
		t.Fatal(err)
	}
	if err := f.members[0].Beat(); err != nil {
		t.Fatal(err)
	}
	globalBefore := broker.Global()
	spent := f.servers[0].TotalSpentJ()
	if globalBefore <= 500 || spent <= 0 {
		t.Fatalf("setup: global %.1f J spent %.3f J, want an extended lease and real spend", globalBefore, spent)
	}

	// Partition: the lease expires and the unspent remainder is escrowed.
	f.clock.Advance(f.ttl + f.ttl/2)
	if expired := f.coord.Sweep(); expired != 1 {
		t.Fatalf("sweep expired %d leases, want 1", expired)
	}
	f.members[0].CheckFence()

	// Rejoin (the heartbeat hits unknown_node and re-enrolls). The
	// coordinator refunds the escrow; the member must shrink its pool to
	// the fresh lease instead of keeping the pre-partition peak.
	if err := f.members[0].Beat(); err != nil {
		t.Fatalf("rejoin beat: %v", err)
	}
	info := f.info()
	if len(info.Nodes) != 1 || !info.Nodes[0].Live {
		t.Fatalf("node not live after rejoin: %+v", info.Nodes)
	}
	if g := broker.Global(); g >= globalBefore {
		t.Fatalf("rejoin kept the stale pool: broker global %.3f J, pre-partition %.3f J — "+
			"the refunded escrow is spendable twice", g, globalBefore)
	}
	if g, l := broker.Global(), info.Nodes[0].LeaseJ; math.Abs(g-l) > 1e-6 {
		t.Fatalf("broker global %.3f J != coordinator lease %.3f J after rejoin", g, l)
	}
	// The coordinator's cover for this node must bound what the node can
	// still physically draw.
	if canSpend := broker.Global() - f.servers[0].TotalSpentJ(); canSpend > info.Nodes[0].UnspentJ+1e-6 {
		t.Fatalf("node can still spend %.3f J but the coordinator only covers %.3f J", canSpend, info.Nodes[0].UnspentJ)
	}
	f.assertInvariant("after rejoin reconcile")
	if f.coord.Violations() != 0 {
		t.Fatalf("%d ledger violations", f.coord.Violations())
	}
}

// TestIdleNodeTargetDecays pins that a node's top-up target does not
// ratchet forever: after a burst of demand raises the lease target, a
// stretch of idle heartbeats decays it back toward the initial share,
// so later spend is NOT topped back up to the historical peak and one
// busy-then-idle node cannot hoard the leasable pool.
func TestIdleNodeTargetDecays(t *testing.T) {
	f := newFleet(t, 1000, 1) // initial lease 112.5 J

	// Burst: a 500 J registration ratchets the target to ~530 J.
	reg := wire.RegisterRequest{
		Tenant: "t0", Key: "burst", App: "radar", Platform: "Tablet",
		Iterations: 20, BudgetJ: 500, Seed: 5,
	}
	var resp wire.RegisterResponse
	if status, e := postJSON(t, f.nodeTS[0].URL+wire.BasePath, reg, &resp); status >= 300 {
		t.Fatalf("register: status %d %+v", status, e)
	}
	d := &driver{t: t, base: f.nodeTS[0].URL, id: resp.SessionID, m: newMachine(t)}
	for i := 0; i < 5; i++ {
		d.step()
	}
	if _, err := f.servers[0].Close(resp.SessionID); err != nil {
		t.Fatal(err)
	}
	if err := f.members[0].Beat(); err != nil { // books the burst spend, tops back up
		t.Fatal(err)
	}

	// Idle: nothing spends, so every beat decays the ratcheted target.
	for i := 0; i < 80; i++ {
		if err := f.members[0].Beat(); err != nil {
			t.Fatalf("idle beat %d: %v", i, err)
		}
	}
	leaseAfterIdle := f.info().Nodes[0].LeaseJ

	// New, small spend: with the target decayed to roughly the initial
	// share, the existing unspent lease already covers it — the
	// coordinator must NOT top the node back up to its historical peak.
	reg2 := wire.RegisterRequest{
		Tenant: "t0", Key: "small", App: "radar", Platform: "Tablet",
		Iterations: 10, BudgetJ: 100, Seed: 7,
	}
	var resp2 wire.RegisterResponse
	if status, e := postJSON(t, f.nodeTS[0].URL+wire.BasePath, reg2, &resp2); status >= 300 {
		t.Fatalf("register small: status %d %+v", status, e)
	}
	d2 := &driver{t: t, base: f.nodeTS[0].URL, id: resp2.SessionID, m: newMachine(t)}
	for i := 0; i < 5; i++ {
		d2.step()
	}
	if _, err := f.servers[0].Close(resp2.SessionID); err != nil {
		t.Fatal(err)
	}
	if err := f.members[0].Beat(); err != nil {
		t.Fatal(err)
	}
	info := f.info()
	if lease := info.Nodes[0].LeaseJ; lease > leaseAfterIdle+1e-6 {
		t.Fatalf("idle decay did not hold: lease grew %.3f -> %.3f J on a small spend "+
			"(topped back up to the historical peak)", leaseAfterIdle, lease)
	}
	f.assertInvariant("after decayed top-up")
}
