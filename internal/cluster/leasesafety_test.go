package cluster_test

import (
	"fmt"
	"testing"

	"jouleguard/internal/wire"
)

// TestLeaseSafetyPartitionRejoin is the fleet-guarantee stress case the
// lease design exists for: a node is partitioned from the coordinator,
// keeps spending against its lease, gets its budget pessimistically
// escrowed and its sessions failed over — then comes back and
// reconciles. The safety invariant
//
//	actual fleet spend <= booked consumption + live unspent leases <= fleet budget
//
// is asserted after every single step: no interleaving of partition,
// expiry, failover and rejoin may ever let the fleet overdraw or
// double-spend a joule.
func TestLeaseSafetyPartitionRejoin(t *testing.T) {
	f := newFleet(t, 20000, 2)

	// actualSpendJ is ground truth: what the node-side meters really drew.
	actualSpendJ := func() float64 {
		total := 0.0
		for _, srv := range f.servers {
			total += srv.TotalSpentJ()
		}
		return total
	}
	assertSafe := func(when string) {
		t.Helper()
		f.assertInvariant(when)
		info := f.info()
		if booked := info.ConsumedJ + info.LeasedUnspentJ; actualSpendJ() > booked+1e-6 {
			t.Fatalf("%s: actual spend %.3f exceeds booked cover %.3f — double-spend window",
				when, actualSpendJ(), booked)
		}
	}
	assertSafe("initial")

	// Find a key the soon-to-be-partitioned node owns.
	victim := ""
	key := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("part-%d", i)
		place, err := f.coord.Place(k)
		if err != nil {
			t.Fatal(err)
		}
		if place.Node == "node1" {
			victim, key = place.Node, k
			break
		}
	}
	_ = victim

	d := f.place(key, "tenant-p", 40, 2, 11)
	for i := 0; i < 10; i++ {
		d.step()
		assertSafe(fmt.Sprintf("pre-partition iter %d", i))
	}
	for _, m := range f.members {
		if err := m.Beat(); err != nil {
			t.Fatal(err)
		}
	}
	assertSafe("pre-partition heartbeat")

	// Partition: node1 stops heartbeating but its clients keep going.
	// Until the local fence trips this is legitimate spend against the
	// still-live lease.
	idx := f.nodeIdx("node1")
	for i := 0; i < 10; i++ {
		if code := d.tryNext(); code != "" {
			t.Fatalf("partition iter %d refused with %q before the fence tripped", i, code)
		}
		assertSafe(fmt.Sprintf("partitioned iter %d", i))
	}
	spentBeforeFence := f.servers[idx].TotalSpentJ()

	// Lease runs out: the node fences itself...
	f.clock.Advance(f.ttl + f.ttl/2)
	if err := f.members[0].Beat(); err != nil { // the healthy node keeps renewing
		t.Fatal(err)
	}
	if !f.members[idx].CheckFence() {
		t.Fatal("fence did not trip after the lease TTL")
	}
	if code := d.tryNext(); code != wire.CodeLeaseExpired {
		t.Fatalf("fenced node answered next with %q, want %q", code, wire.CodeLeaseExpired)
	}
	if got := f.servers[idx].TotalSpentJ(); got != spentBeforeFence {
		t.Fatalf("fenced node kept spending: %.3f -> %.3f", spentBeforeFence, got)
	}
	assertSafe("fenced")

	// ...and the coordinator, after the same TTL, escrows the unspent
	// lease and fails the session over to the survivor.
	if expired := f.coord.Sweep(); expired != 1 {
		t.Fatalf("sweep expired %d leases, want 1", expired)
	}
	assertSafe("escrowed")
	info := f.info()
	if info.NodesLive != 1 {
		t.Fatalf("nodes live %d after expiry, want 1", info.NodesLive)
	}
	place, err := f.coord.Place(key)
	if err != nil {
		t.Fatal(err)
	}
	if place.Node != "node0" {
		t.Fatalf("session still placed on %s after failover", place.Node)
	}
	escrowedConsumed := info.ConsumedJ

	// Rejoin: the node reports its true cumulative spend; the coordinator
	// books the partition-era spend, refunds the remaining escrow, and
	// tells the node to drop its stale copy of the moved session.
	if err := f.members[idx].Beat(); err != nil {
		t.Fatalf("rejoin beat: %v", err)
	}
	assertSafe("rejoined")
	info = f.info()
	if info.NodesLive != 2 {
		t.Fatalf("nodes live %d after rejoin, want 2", info.NodesLive)
	}
	if info.ConsumedJ >= escrowedConsumed {
		t.Fatalf("reconcile refunded nothing: consumed %.3f -> %.3f",
			escrowedConsumed, info.ConsumedJ)
	}
	if f.coord.Violations() != 0 {
		t.Fatalf("%d ledger violations across the partition lifecycle", f.coord.Violations())
	}

	// The rejoined node must have discarded its copy: the key lives on
	// the survivor, exactly once.
	for _, ex := range f.servers[idx].Export(nil) {
		if ex.Key == key && ex.Live {
			t.Fatalf("rejoined node still holds live session %q after drop order", key)
		}
	}
	place, err = f.coord.Place(key)
	if err != nil {
		t.Fatal(err)
	}
	if place.Node != "node0" || place.SessionID == "" {
		t.Fatalf("post-rejoin placement %+v, want node0 with a session id", place)
	}

	// And the unfenced node serves again.
	d2 := f.place("fresh-after-rejoin", "tenant-p", 5, 2, 3)
	for i := 0; i < 5; i++ {
		d2.step()
		assertSafe(fmt.Sprintf("post-rejoin iter %d", i))
	}
}
