package cluster_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"jouleguard/internal/cluster"
	"jouleguard/internal/wire"
)

// owners extracts the key -> node placement map from a snapshot.
func owners(info wire.ClusterInfo) map[string]string {
	m := map[string]string{}
	for _, s := range info.Sessions {
		m[s.Key] = s.Node
	}
	return m
}

// stripVolatile clears the snapshot fields WAL replay deliberately does
// not restore: session payloads (re-shipped by owner heartbeats — only
// the key->node ownership survives, checked separately via owners).
func stripVolatile(info *wire.ClusterInfo) {
	info.Sessions = nil
}

// TestWALReplayBitIdentical is the cluster mirror of the daemon's
// TestSnapshotRestoreBitIdentical: a coordinator that joined nodes,
// booked spend, extended a lease, escrowed an expiry and reconciled a
// rejoin is killed, and a fresh coordinator replaying its WAL must land
// on a bit-identical ledger — same leases, escrow, consumed total,
// epochs and placement ownership, byte for byte.
func TestWALReplayBitIdentical(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "coordinator.wal")
	f := newFleetCfg(t, 20000, 2, func(cfg *cluster.Config) { cfg.WALPath = walPath })
	d := f.place("job-wal", "t1", 15, 2, 7)
	for i := 0; i < 15; i++ {
		d.step()
	}
	for _, m := range f.members {
		if err := m.Beat(); err != nil {
			t.Fatal(err)
		}
	}

	// Exercise the extension path: an admission that does not fit the
	// owner's initial lease forces an on-demand extend record.
	pl, err := f.coord.Place("job-wal")
	if err != nil {
		t.Fatal(err)
	}
	ownerIdx := f.nodeIdx(pl.Node)
	reg := wire.RegisterRequest{
		Tenant: "t2", Key: "job-big", App: "radar", Platform: "Tablet",
		Iterations: 50, BudgetJ: 3000,
	}
	if status, e := postJSON(t, f.nodeTS[ownerIdx].URL+wire.BasePath, reg, &wire.RegisterResponse{}); status >= 300 {
		t.Fatalf("register job-big: status %d %+v", status, e)
	}
	if err := f.members[ownerIdx].Beat(); err != nil {
		t.Fatal(err)
	}

	// Exercise expiry escrow and rejoin reconciliation on the idle node
	// (both sessions live on the owner, so no reassignment fires).
	otherIdx := 1 - ownerIdx
	f.clock.Advance(f.ttl + time.Second)
	if err := f.members[ownerIdx].Beat(); err != nil {
		t.Fatal(err)
	}
	if n := f.coord.Sweep(); n != 1 {
		t.Fatalf("expired %d leases, want 1", n)
	}
	if err := f.members[otherIdx].Beat(); err != nil {
		t.Fatal(err)
	}
	f.assertInvariant("before restart")

	pre := f.info()
	f.coord.Stop() // flush and close the WAL file — the "crash"

	restored, err := cluster.New(cluster.Config{
		FleetBudgetJ:  20000,
		LeaseTTL:      f.ttl,
		SweepInterval: -1,
		Clock:         f.clock.Now,
		WALPath:       walPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Stop()
	post := restored.Info(true)

	if !reflect.DeepEqual(owners(pre), owners(post)) {
		t.Fatalf("placement ownership diverged across restart:\n pre: %v\npost: %v", owners(pre), owners(post))
	}
	stripVolatile(&pre)
	stripVolatile(&post)
	a, _ := json.Marshal(pre)
	b, _ := json.Marshal(post)
	if !bytes.Equal(a, b) {
		t.Fatalf("restored ledger is not bit-identical:\n pre: %s\npost: %s", a, b)
	}
	if got := post.LeasedUnspentJ + post.ConsumedJ; got > post.FleetJ+1e-6 {
		t.Fatalf("restored ledger violates the invariant: %.3f > %.3f", got, post.FleetJ)
	}

	// The restored coordinator keeps appending to the same log: a member
	// rejoin must succeed and extend the history, not corrupt it.
	if _, err := restored.Join(wire.JoinRequest{Node: "node0", Addr: f.nodeTS[0].URL, ConsumedJ: f.servers[0].TotalSpentJ()}); err != nil {
		t.Fatalf("join against the restored coordinator: %v", err)
	}
	restored.Stop()
	second, err := cluster.New(cluster.Config{
		FleetBudgetJ:  20000,
		LeaseTTL:      f.ttl,
		SweepInterval: -1,
		Clock:         f.clock.Now,
		WALPath:       walPath,
	})
	if err != nil {
		t.Fatalf("second replay over the extended log: %v", err)
	}
	second.Stop()
}

// TestWALReplayRejectsMismatchedFleet pins the header check: a WAL
// written for one fleet budget must not silently seed a coordinator
// configured with another.
func TestWALReplayRejectsMismatchedFleet(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "coordinator.wal")
	f := newFleetCfg(t, 20000, 1, func(cfg *cluster.Config) { cfg.WALPath = walPath })
	f.coord.Stop()
	if _, err := cluster.New(cluster.Config{
		FleetBudgetJ:  30000,
		LeaseTTL:      f.ttl,
		SweepInterval: -1,
		Clock:         f.clock.Now,
		WALPath:       walPath,
	}); err == nil {
		t.Fatal("a 30000 J coordinator replayed a 20000 J fleet's WAL without complaint")
	}
}

// TestStandbyShadowLedgerMatchesPrimary pins HTTP WAL replication: a
// standby tailing the primary holds the same ledger the primary does,
// serves nothing until promoted, and keeps tracking as the log grows.
func TestStandbyShadowLedgerMatchesPrimary(t *testing.T) {
	f := newFleet(t, 20000, 2)
	sb, sbTS := f.addStandby("")
	d := f.place("job-shadow", "t1", 20, 2, 7)
	for i := 0; i < 8; i++ {
		d.step()
	}
	for _, m := range f.members {
		if err := m.Beat(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sb.Poll(); err != nil {
		t.Fatal(err)
	}

	compare := func(when string) {
		t.Helper()
		pre := f.info()
		shadow := sb.Coordinator().Info(true)
		if shadow.Role != "standby" {
			t.Fatalf("%s: shadow role %q, want standby", when, shadow.Role)
		}
		if !reflect.DeepEqual(owners(pre), owners(shadow)) {
			t.Fatalf("%s: shadow placement diverged:\nprimary: %v\n shadow: %v", when, owners(pre), owners(shadow))
		}
		stripVolatile(&pre)
		stripVolatile(&shadow)
		pre.Role, shadow.Role = "", ""
		a, _ := json.Marshal(pre)
		b, _ := json.Marshal(shadow)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: shadow ledger diverged:\nprimary: %s\n shadow: %s", when, a, b)
		}
	}
	compare("after first poll")

	// The shadow refuses to serve the control plane until promoted.
	join := wire.JoinRequest{Node: "nodeX", Addr: "http://x"}
	if status, werr := postJSON(t, sbTS.URL+wire.ClusterBasePath+"/join", join, nil); status != http.StatusServiceUnavailable || werr.Code != wire.CodeNotPrimary {
		t.Fatalf("standby answered a join with %d %q, want 503 not_primary", status, werr.Code)
	}

	// Incremental tailing: more history, another poll, still identical.
	for i := 0; i < 6; i++ {
		d.step()
	}
	for _, m := range f.members {
		if err := m.Beat(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sb.Poll(); err != nil {
		t.Fatal(err)
	}
	compare("after incremental poll")
}
