package cluster_test

// Cluster chaos suite: coordinator crash with standby promotion,
// split-brain attempts, network partitions, and member flapping — each
// scenario asserting the fleet lease-safety invariant and that no joule
// is ever granted by two coordinators across an epoch change. Network
// faults come from the seeded faults.Fabric, so every schedule here is
// reproducible by its seed.

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"jouleguard/internal/cluster"
	"jouleguard/internal/faults"
	"jouleguard/internal/wire"
)

// addStandby builds a follower coordinator shadowing f's primary over
// the HTTP WAL tail, served on its own listener so members can fail
// over to it.
func (f *fleet) addStandby(walPath string) (*cluster.Standby, *httptest.Server) {
	f.t.Helper()
	shadow, err := cluster.New(cluster.Config{
		FleetBudgetJ:  f.coord.Info(false).FleetJ,
		LeaseTTL:      f.ttl,
		SweepInterval: -1,
		Clock:         f.clock.Now,
		WALPath:       walPath,
		Follower:      true,
	})
	if err != nil {
		f.t.Fatal(err)
	}
	f.t.Cleanup(shadow.Stop)
	sb, err := cluster.NewStandby(shadow, cluster.StandbyConfig{
		PrimaryURL: f.coordTS.URL,
		Clock:      f.clock.Now,
	})
	if err != nil {
		f.t.Fatal(err)
	}
	ts := httptest.NewServer(shadow.Handler())
	f.t.Cleanup(ts.Close)
	return sb, ts
}

// assertCoordInvariant is fleet.assertInvariant for a coordinator the
// fleet struct does not own (a promoted standby).
func assertCoordInvariant(t *testing.T, c *cluster.Coordinator, when string) {
	t.Helper()
	info := c.Info(false)
	if got := info.LeasedUnspentJ + info.ConsumedJ; got > info.FleetJ+1e-6 {
		t.Fatalf("%s: unspent %.3f + consumed %.3f = %.3f exceeds fleet budget %.3f",
			when, info.LeasedUnspentJ, info.ConsumedJ, got, info.FleetJ)
	}
	if info.InvariantViolations != 0 {
		t.Fatalf("%s: coordinator recorded %d ledger violations", when, info.InvariantViolations)
	}
}

func hostport(url string) string { return strings.TrimPrefix(url, "http://") }

// beatUntilOK retries a heartbeat through injected faults; the bound
// keeps a broken retry path from hanging the suite.
func beatUntilOK(t *testing.T, m *cluster.Member, tries int) {
	t.Helper()
	var err error
	for i := 0; i < tries; i++ {
		if err = m.Beat(); err == nil {
			return
		}
	}
	t.Fatalf("heartbeat failed %d times in a row: %v", tries, err)
}

// TestChaosCoordinatorCrashMidExtend kills the primary after it booked a
// lease extension whose response the member never received. The phantom
// grant is in the replicated WAL, so the promoted standby escrows it
// with the rest of the node's unspent lease; the member's
// rejoin-reconcile then refunds everything it never actually spent —
// the crashed grant cannot be drawn under the old reign (the member
// never got it) nor double-booked under the new one.
func TestChaosCoordinatorCrashMidExtend(t *testing.T) {
	f := newFleet(t, 20000, 0)
	sb, sbTS := f.addStandby("")
	m0 := f.addNodeWith("node0", []string{sbTS.URL}, nil)
	d := f.place("job-mid", "t1", 30, 2, 7)
	for i := 0; i < 10; i++ {
		d.step()
	}
	if err := m0.Beat(); err != nil {
		t.Fatal(err)
	}
	if err := sb.Poll(); err != nil {
		t.Fatal(err)
	}

	// The crash window: the primary books an extension (logged,
	// replicated) but dies before the member sees the response.
	ep := f.info().Nodes[0].Epoch
	if _, err := f.coord.Extend(wire.ExtendRequest{Node: "node0", Epoch: ep, NeedJ: 500}); err != nil {
		t.Fatal(err)
	}
	if err := sb.Poll(); err != nil {
		t.Fatal(err)
	}
	f.coordTS.Close()

	fence := sb.Promote()
	if fence != 1 {
		t.Fatalf("fence %d after first promotion, want 1", fence)
	}
	np := sb.Coordinator()
	assertCoordInvariant(t, np, "after promotion")
	info := np.Info(true)
	if info.NodesLive != 0 {
		t.Fatalf("%d nodes live right after promotion, want 0 (all escrowed)", info.NodesLive)
	}
	if info.Nodes[0].EscrowJ <= 0 {
		t.Fatalf("escrow %.3f after promotion, want the unspent lease (incl. the phantom grant)", info.Nodes[0].EscrowJ)
	}

	// The member's next beats rotate to the standby, rejoin at the new
	// fence, and reconcile: escrow beyond the true spend is refunded.
	for i := 0; i < 3; i++ {
		if err := m0.Beat(); err != nil {
			t.Fatalf("beat %d after failover: %v", i, err)
		}
	}
	if got := m0.Fence(); got != fence {
		t.Fatalf("member fence %d after rejoin, want %d", got, fence)
	}
	info = np.Info(true)
	if !info.Nodes[0].Live {
		t.Fatal("node not live on the new primary after rejoin")
	}
	if info.Nodes[0].EscrowJ != 0 {
		t.Fatalf("escrow %.3f after reconcile, want 0", info.Nodes[0].EscrowJ)
	}
	spent := f.servers[0].TotalSpentJ()
	if diff := info.ConsumedJ - spent; diff < -1e-6 || diff > 1e-6 {
		t.Fatalf("new primary books %.6f J consumed, node actually spent %.6f J: the epoch change double- or under-counted",
			info.ConsumedJ, spent)
	}

	// The session survives the failover and the new primary learns its
	// progress from re-shipped heartbeat reports.
	for i := 0; i < 5; i++ {
		d.step()
	}
	for i := 0; i < 2; i++ {
		if err := m0.Beat(); err != nil {
			t.Fatal(err)
		}
	}
	info = np.Info(true)
	found := false
	for _, s := range info.Sessions {
		if s.Key == "job-mid" {
			found = true
			if s.Done != 15 {
				t.Fatalf("new primary holds %d iterations for job-mid, want 15", s.Done)
			}
		}
	}
	if !found {
		t.Fatal("new primary lost job-mid across the failover")
	}
	assertCoordInvariant(t, np, "after failover workload")
}

// TestChaosSplitBrainAttempt promotes the standby while the old primary
// is still serving. The window before any peer relays the new fence is
// safe by escrow (the new primary booked the whole unspent lease as
// consumed); the moment the old primary sees the new fence it deposes
// itself, and members that learned the fence reject its grants — the
// regression pinned here is that a deposed primary's stale-epoch push
// is refused by nodes, so one joule can never be granted by two
// coordinators.
func TestChaosSplitBrainAttempt(t *testing.T) {
	f := newFleet(t, 20000, 0)
	sb, sbTS := f.addStandby("")
	m0 := f.addNodeWith("node0", []string{sbTS.URL}, nil)
	d := f.place("job-split", "t1", 20, 2, 7)
	for i := 0; i < 5; i++ {
		d.step()
	}
	if err := m0.Beat(); err != nil {
		t.Fatal(err)
	}
	if err := sb.Poll(); err != nil {
		t.Fatal(err)
	}
	ep := f.info().Nodes[0].Epoch

	fence := sb.Promote() // the split-brain attempt: both coordinators think they serve
	np := sb.Coordinator()

	// TTL-bounded honesty window: the member has not met the new primary
	// yet, so the old one still answers it — safely, because the new
	// primary escrowed the node's entire unspent lease at promotion.
	if err := m0.Beat(); err != nil {
		t.Fatal(err)
	}
	assertCoordInvariant(t, np, "split-brain window")

	// The old primary becomes unreachable for one beat; the member
	// rotates to the standby and rejoins at the new fence.
	f.coordTS.Close()
	for i := 0; i < 2; i++ {
		if err := m0.Beat(); err != nil {
			t.Fatal(err)
		}
	}
	if got := m0.Fence(); got != fence {
		t.Fatalf("member fence %d, want %d", got, fence)
	}

	// The old primary comes back (same process state, new listener). The
	// first request carrying the new fence deposes it on the spot...
	revived := httptest.NewServer(f.coord.Handler())
	defer revived.Close()
	hb := wire.HeartbeatRequest{Node: "node0", Epoch: ep, Fence: fence}
	if status, werr := postJSON(t, revived.URL+wire.ClusterBasePath+"/heartbeat", hb, nil); status != 409 || werr.Code != wire.CodeStaleEpoch {
		t.Fatalf("old primary answered fence-%d heartbeat with %d %q, want 409 stale_epoch", fence, status, werr.Code)
	}
	// ...and it stays deposed even for peers that never learned the fence.
	hb.Fence = 0
	if status, werr := postJSON(t, revived.URL+wire.ClusterBasePath+"/heartbeat", hb, nil); status != 409 || werr.Code != wire.CodeStaleEpoch {
		t.Fatalf("deposed primary answered fence-0 heartbeat with %d %q, want 409 stale_epoch", status, werr.Code)
	}
	if role := f.coord.Info(false).Role; role != "deposed" {
		t.Fatalf("old primary role %q, want deposed", role)
	}
	// Single-writer: a deposed ledger never expires leases or reassigns
	// sessions again.
	if n := f.coord.Sweep(); n != 0 {
		t.Fatalf("deposed primary expired %d leases", n)
	}

	// A deposed primary's grant push is refused by the member outright.
	adopt := wire.AdoptRequest{Fence: 0}
	if status, werr := postJSON(t, f.nodeTS[0].URL+wire.ClusterBasePath+"/adopt", adopt, nil); status != 409 || werr.Code != wire.CodeStaleEpoch {
		t.Fatalf("member accepted a stale-fence adopt push: %d %q, want 409 stale_epoch", status, werr.Code)
	}
	assertCoordInvariant(t, np, "after deposition")
}

// TestChaosPartitionThenHeal cuts the member-coordinator link with the
// fault fabric: the coordinator escrows the silent node's lease while
// the node self-fences, so the books stay safe on both sides; healing
// reconciles the escrow back to the true spend and the stranded session
// resumes.
func TestChaosPartitionThenHeal(t *testing.T) {
	fab := faults.NewFabric(11)
	f := newFleet(t, 20000, 0)
	fab.Register("coordinator", hostport(f.coordTS.URL))
	m0 := f.addNodeWith("node0", nil, fab.Client("node0", 0))
	d := f.place("job-part", "t1", 20, 2, 7)
	for i := 0; i < 6; i++ {
		d.step()
	}
	if err := m0.Beat(); err != nil {
		t.Fatal(err)
	}
	f.assertInvariant("before partition")

	fab.Partition("node0", "coordinator")
	if err := m0.Beat(); err == nil {
		t.Fatal("heartbeat crossed a partition")
	}
	f.clock.Advance(f.ttl + time.Second)
	if n := f.coord.Sweep(); n != 1 {
		t.Fatalf("expired %d leases, want 1", n)
	}
	f.assertInvariant("after escrow")
	if !m0.CheckFence() {
		t.Fatal("partitioned member did not self-fence past the lease deadline")
	}
	if code := d.tryNext(); code == "" {
		t.Fatal("fenced node still served iterations")
	}
	// No survivors to move to: the session waits for its owner.
	if n := len(f.info().Sessions); n != 1 {
		t.Fatalf("%d sessions on the books during the partition, want 1", n)
	}

	fab.Heal("node0", "coordinator")
	for i := 0; i < 2; i++ {
		if err := m0.Beat(); err != nil {
			t.Fatalf("beat %d after heal: %v", i, err)
		}
	}
	f.assertInvariant("after heal")
	info := f.info()
	if info.Nodes[0].EscrowJ != 0 {
		t.Fatalf("escrow %.3f after rejoin, want 0 (refunded)", info.Nodes[0].EscrowJ)
	}
	spent := f.servers[0].TotalSpentJ()
	if diff := info.ConsumedJ - spent; diff < -1e-6 || diff > 1e-6 {
		t.Fatalf("consumed %.6f J vs actual spend %.6f J after reconcile", info.ConsumedJ, spent)
	}
	if code := d.tryNext(); code != "" {
		t.Fatalf("session did not resume after heal: %s", code)
	}
	if _, _, _, blocked := fab.Stats(); blocked == 0 {
		t.Fatal("fabric never blocked a partitioned request")
	}
}

// TestChaosMemberFlapping runs a node through repeated
// expire-rejoin-reconcile cycles under seeded message loss: every round
// must hold the invariant, and after the final rejoin the coordinator's
// consumed total must equal the node's true metered spend exactly — the
// escrow refunded on every lap, never leaked and never double-booked.
func TestChaosMemberFlapping(t *testing.T) {
	fab := faults.NewFabric(23)
	f := newFleet(t, 20000, 0)
	fab.Register("coordinator", hostport(f.coordTS.URL))
	m0 := f.addNodeWith("node0", nil, fab.Client("node0", 0))
	fab.SetRules("node0", "coordinator", faults.NetRules{DropP: 0.3})
	d := f.place("job-flap", "t1", 40, 2, 7)

	for round := 0; round < 5; round++ {
		beatUntilOK(t, m0, 20) // rejoin after the previous flap (round 0: plain renewal)
		for i := 0; i < 4; i++ {
			d.step()
		}
		beatUntilOK(t, m0, 20)
		f.assertInvariant(fmt.Sprintf("round %d reported", round))
		f.clock.Advance(f.ttl + time.Second)
		f.coord.Sweep()
		m0.CheckFence()
		f.assertInvariant(fmt.Sprintf("round %d expired", round))
	}
	beatUntilOK(t, m0, 20)
	f.assertInvariant("final")
	info := f.info()
	spent := f.servers[0].TotalSpentJ()
	if diff := info.ConsumedJ - spent; diff < -1e-6 || diff > 1e-6 {
		t.Fatalf("after 5 flaps: consumed %.6f J vs actual spend %.6f J", info.ConsumedJ, spent)
	}
	if drops, _, _, _ := fab.Stats(); drops == 0 {
		t.Fatal("seeded fabric never dropped a request; the flapping ran unchallenged")
	}
}
