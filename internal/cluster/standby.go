package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"jouleguard/internal/wire"
)

// StandbyConfig tunes a Standby replication loop. PrimaryURL is
// required.
type StandbyConfig struct {
	// PrimaryURL is the primary coordinator's base URL.
	PrimaryURL string
	// PollEvery paces the WAL tail polls (default: the coordinator's
	// heartbeat cadence).
	PollEvery time.Duration
	// PromoteAfter auto-promotes the standby once the primary has been
	// silent this long (0 disables auto-promotion — an operator or test
	// calls Promote). It should comfortably exceed the lease TTL: the
	// members' self-fencing is what makes a late, spurious promotion
	// safe, but an eager one still forces a full fleet rejoin.
	PromoteAfter time.Duration
	// HTTPClient performs the tail polls (nil builds a 5s-timeout one).
	HTTPClient *http.Client
	// Clock is injectable for tests (nil = time.Now).
	Clock func() time.Time
}

// Standby tails a primary coordinator's write-ahead log into a follower
// Coordinator, keeping a promotion-ready shadow of the fleet ledger.
// On promotion the shadow becomes the serving primary: the fencing
// epoch bumps, all live leases are escrowed pending rejoin
// reconciliation, and the old primary is deposed the moment any peer
// relays the new fence to it.
type Standby struct {
	c     *Coordinator
	cfg   StandbyConfig
	httpc *http.Client
	clock func() time.Time

	mu       sync.Mutex
	cursor   uint64
	lastOK   time.Time
	promoted bool

	stop chan struct{}
	done chan struct{}
}

// NewStandby wraps a follower coordinator (built with Config.Follower)
// with a replication loop against the primary.
func NewStandby(c *Coordinator, cfg StandbyConfig) (*Standby, error) {
	if cfg.PrimaryURL == "" {
		return nil, fmt.Errorf("cluster: standby requires the primary's URL")
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = c.cfg.HeartbeatEvery
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = &http.Client{Timeout: 5 * time.Second}
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	return &Standby{c: c, cfg: cfg, httpc: httpc, clock: clock}, nil
}

// Coordinator returns the shadow (or, after promotion, primary)
// coordinator.
func (s *Standby) Coordinator() *Coordinator { return s.c }

// Poll performs one WAL tail round against the primary and folds the
// records into the shadow ledger. Tests and the Run loop share it.
func (s *Standby) Poll() error {
	s.mu.Lock()
	cursor := s.cursor
	s.mu.Unlock()
	resp, err := s.httpc.Get(s.cfg.PrimaryURL + wire.ClusterBasePath + "/wal?from=" + fmt.Sprint(cursor))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: WAL tail: primary answered %s", resp.Status)
	}
	var tail walTailResponse
	if err := json.NewDecoder(resp.Body).Decode(&tail); err != nil {
		return err
	}
	next, err := s.c.ApplyTail(tail)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.cursor = next
	s.lastOK = s.clock()
	s.mu.Unlock()
	return nil
}

// Promote ends replication and makes the shadow the serving primary.
// It returns the new fencing epoch.
func (s *Standby) Promote() int64 {
	s.mu.Lock()
	if s.promoted {
		s.mu.Unlock()
		return s.c.Fence()
	}
	s.promoted = true
	s.mu.Unlock()
	return s.c.Promote()
}

// Promoted reports whether promotion has happened.
func (s *Standby) Promoted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promoted
}

// Run starts the replication loop: tail the primary on PollEvery and,
// when PromoteAfter is set, promote once the primary has been silent
// that long. The loop exits after promotion (the coordinator's own
// sweeper takes over) or Stop.
func (s *Standby) Run() {
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	s.lastOK = s.clock()
	stop, done := s.stop, s.done
	s.mu.Unlock()
	go s.loop(stop, done)
}

func (s *Standby) loop(stop chan struct{}, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(s.cfg.PollEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = s.Poll()
			if s.cfg.PromoteAfter > 0 {
				s.mu.Lock()
				silent := s.clock().Sub(s.lastOK)
				s.mu.Unlock()
				if silent > s.cfg.PromoteAfter {
					s.Promote()
					return
				}
			}
		case <-stop:
			return
		}
	}
}

// Stop halts the replication loop (a promoted standby's coordinator
// keeps running; stop that separately).
func (s *Standby) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop = nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
