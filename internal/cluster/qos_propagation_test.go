package cluster_test

import (
	"testing"

	"jouleguard/internal/qos"
	"jouleguard/internal/server"
	"jouleguard/internal/wire"
)

// TestQoSPolicyPropagatesAcrossFleet pins the no-escape-by-re-placing
// property: a tenant whose ladder escalates to suspended on one node is
// refused registrations on every other node after one heartbeat round —
// and the enforcement lifts fleet-wide once the origin node de-escalates
// (the overlay must not ratchet).
func TestQoSPolicyPropagatesAcrossFleet(t *testing.T) {
	f := newFleetCfg(t, 40000, 0, nil)
	// Only node0 runs the ladder; node1 enforces purely what the
	// coordinator merge tells it, which is exactly the deployment shape
	// where a tenant tries to dodge enforcement by landing elsewhere.
	mA := f.addNodeCfg("node0", nil, nil, func(c *server.Config) {
		c.QoS = qos.Config{Enabled: true, EscalateAfter: 1, DeescalateAfter: 1}
	})
	mB := f.addNodeCfg("node1", nil, nil, nil)
	engA, engB := f.servers[0].QoS(), f.servers[1].QoS()

	// Three overrun observations climb node0's local ladder one rung
	// each: throttled, degraded, suspended.
	engA.SetTier("noisy", qos.BestEffort)
	for i := 0; i < 3; i++ {
		engA.Observe([]qos.Observation{{Tenant: "noisy", Overrun: 10, Sessions: 1}}, 0)
	}
	if st := engA.StateOf("noisy"); st != qos.StateSuspended {
		t.Fatalf("node0 local ladder at %v after three overruns, want suspended", st)
	}
	// Before any heartbeat, node1 knows nothing — the policy travels on
	// the heartbeat, not by magic.
	if st := engB.StateOf("noisy"); st != qos.StateOK {
		t.Fatalf("node1 at %v before any heartbeat, want ok", st)
	}

	// node0's beat ships its local verdicts; node1's beat brings back
	// the coordinator's fleet-wide merge.
	if err := mA.Beat(); err != nil {
		t.Fatal(err)
	}
	if err := mB.Beat(); err != nil {
		t.Fatal(err)
	}
	if st := engB.StateOf("noisy"); st != qos.StateSuspended {
		t.Fatalf("node1 at %v after heartbeat round, want suspended: the verdict did not propagate", st)
	}

	// The teeth: a real registration against node1's HTTP surface is
	// refused with the enforcement code, while an honest tenant on the
	// same node registers untouched.
	status, werr := postJSON(t, f.nodeTS[1].URL+wire.BasePath, wire.RegisterRequest{
		Tenant: "noisy", App: "radar", Platform: "Tablet", Iterations: 5, Factor: 2,
	}, nil)
	if status != 503 || werr.Code != wire.CodeTenantSuspended {
		t.Fatalf("suspended tenant registering on node1: status %d code %q, want 503 %s",
			status, werr.Code, wire.CodeTenantSuspended)
	}
	var reg wire.RegisterResponse
	if status, werr := postJSON(t, f.nodeTS[1].URL+wire.BasePath, wire.RegisterRequest{
		Tenant: "polite", App: "radar", Platform: "Tablet", Iterations: 5, Factor: 2,
	}, &reg); status != 201 {
		t.Fatalf("honest tenant on node1 under fleet enforcement: status %d code %q", status, werr.Code)
	}

	// De-escalation must propagate the same way: clean observations walk
	// node0 back to ok, its heartbeat report empties, and the next merge
	// clears node1's overlay.
	for i := 0; i < 3; i++ {
		engA.Observe([]qos.Observation{{Tenant: "noisy", Overrun: 0, Sessions: 1}}, 0)
	}
	// StateOf still reads suspended here: node0's own first beat brought
	// the fleet merge back to it, and the effective rung is the max of
	// local and remote. The local ladder is what its next report ships.
	if pol := engA.LocalPolicies(); len(pol) != 0 {
		t.Fatalf("node0 still reporting %v after three clean observations, want an empty report", pol)
	}
	if err := mA.Beat(); err != nil {
		t.Fatal(err)
	}
	// node0's beat both emptied its stored report and returned the
	// recomputed merge, so its own overlay clears immediately.
	if st := engA.StateOf("noisy"); st != qos.StateOK {
		t.Fatalf("node0 at %v after its clean beat, want ok", st)
	}
	if err := mB.Beat(); err != nil {
		t.Fatal(err)
	}
	if st := engB.StateOf("noisy"); st != qos.StateOK {
		t.Fatalf("node1 still at %v after the origin de-escalated: the fleet overlay ratcheted", st)
	}
	if d := engB.CheckRegister("noisy"); d != nil {
		t.Fatalf("node1 still refusing the de-escalated tenant: %v", d)
	}
	f.assertInvariant("after QoS propagation round-trips")
}
