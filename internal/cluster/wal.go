package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

func nsToTime(ns int64) time.Time {
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// The coordinator's write-ahead log makes the fleet ledger survive the
// death of the coordinator itself — the same event-sourcing move
// internal/server/snapshot.go makes for one daemon, applied one level
// up. Every ledger mutation (join, heartbeat book/top-up, extend,
// expiry escrow, reassign funding, promotion) appends one JSONL record
// carrying the op that caused it (the audit trail) plus the resulting
// authoritative values of the touched node and the coordinator's global
// counters. Replay applies the values, not the ops, so the rebuilt
// ledger cannot drift from the one that wrote the log: a restarted
// coordinator lands on a bit-identical ledger, and a standby tailing
// the log over HTTP holds a promotion-ready shadow of it.
//
// Placement mutations (a key placed, moved, or closed) are logged too —
// key and owner only, never iteration logs or registrations, which are
// re-shipped by member heartbeats after a failover. That keeps the log
// small while letting a promoted standby answer "who owns key K"
// without ever inventing a second owner for a session that is still
// running somewhere.

const walVersion = 1

// walRec is one WAL record. Kind selects the payload:
//
//   - "hdr":  log header (version, fleet budget, fence at open)
//   - "node": a ledger mutation — the touched node's full post-mutation
//     record plus the coordinator's consumed total and epoch counter
//   - "sess": a placement mutation (op "place"/"move"/"close")
//   - "fence": a fencing-epoch bump (standby promotion)
type walRec struct {
	Kind  string `json:"kind"`
	Seq   uint64 `json:"seq"`
	Fence int64  `json:"fence"`
	Op    string `json:"op,omitempty"`

	// "hdr" payload.
	V      int     `json:"v,omitempty"`
	FleetJ float64 `json:"fleet_j,omitempty"`

	// "node" payload: the post-mutation node record and globals.
	Node     string  `json:"node,omitempty"`
	Addr     string  `json:"addr,omitempty"`
	Epoch    int64   `json:"epoch,omitempty"`
	LeaseJ   float64 `json:"lease_j,omitempty"`
	AckedJ   float64 `json:"acked_j,omitempty"`
	EscrowJ  float64 `json:"escrow_j,omitempty"`
	TargetJ  float64 `json:"target_j,omitempty"`
	Live     bool    `json:"live,omitempty"`
	BeatNS   int64   `json:"beat_ns,omitempty"`
	Consumed float64 `json:"consumed_j,omitempty"`
	EpochCtr int64   `json:"epoch_ctr,omitempty"`

	// "sess" payload: key and (for place/move) the owning node.
	Key string `json:"key,omitempty"`
}

// walTailResponse is the body of GET /v1/cluster/wal?from=N: records
// with Seq >= From (compacted records first when the requested cursor
// has been folded away), and the cursor to poll from next.
type walTailResponse struct {
	From  uint64   `json:"from"`
	Next  uint64   `json:"next"`
	Fence int64    `json:"fence"`
	Recs  []walRec `json:"recs,omitempty"`
}

// walCompactAt bounds the in-memory tail: once it outgrows this, the
// oldest records are folded into the compacted base (latest record per
// node and per session key — sufficient because records carry resulting
// values, so the latest one per entity IS the state).
const walCompactAt = 4096

// ledgerWAL accumulates the coordinator's ledger log: an in-memory
// tail served to standbys over HTTP, optionally mirrored to an
// append-only JSONL file for restart durability.
type ledgerWAL struct {
	mu      sync.Mutex
	seq     uint64
	baseSeq uint64            // first seq held in tail
	base    map[string]walRec // compacted state by entity key ("n:"+node / "s:"+key)
	closed  map[string]bool   // session keys closed since their base record
	tail    []walRec
	hdr     walRec

	f  *os.File
	bw *bufio.Writer
}

// newLedgerWAL opens the log, appending to path when non-empty. The
// header records the fleet budget so replay can reject a mismatched
// restart.
func newLedgerWAL(path string, fleetJ float64, fence int64) (*ledgerWAL, error) {
	w := &ledgerWAL{base: map[string]walRec{}, closed: map[string]bool{}}
	w.hdr = walRec{Kind: "hdr", V: walVersion, FleetJ: fleetJ, Fence: fence}
	if path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("cluster: opening WAL %s: %w", path, err)
		}
		w.f = f
		w.bw = bufio.NewWriter(f)
	}
	if err := w.write(w.hdr); err != nil {
		w.Close()
		return nil, err
	}
	return w, nil
}

// append logs one record, stamping its sequence number.
func (w *ledgerWAL) append(rec walRec) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	rec.Seq = w.seq
	w.tail = append(w.tail, rec)
	if len(w.tail) > walCompactAt {
		w.compactLocked(len(w.tail) / 2)
	}
	_ = w.write(rec)
}

// mirror folds a record replicated from another coordinator's log into
// this one, preserving the original sequence number — a durable standby
// writes the primary's history to its own file, and its own tail can
// serve it onward.
func (w *ledgerWAL) mirror(rec walRec) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if rec.Seq > w.seq {
		w.seq = rec.Seq
	}
	if rec.Kind == "fence" && rec.Fence > w.hdr.Fence {
		w.hdr.Fence = rec.Fence
	}
	w.tail = append(w.tail, rec)
	if len(w.tail) > walCompactAt {
		w.compactLocked(len(w.tail) / 2)
	}
	_ = w.write(rec)
}

// write appends one record to the file mirror (no-op without one).
// Each append is flushed and fsynced: the WAL's whole point is that the
// grant survives the crash that follows it, and the log is written on
// the control plane (joins/heartbeats/extends), never the per-iteration
// decision path.
func (w *ledgerWAL) write(rec walRec) error {
	if w.bw == nil {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := w.bw.Write(append(b, '\n')); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// compactLocked folds the oldest n tail records into the compacted
// base. Caller holds w.mu.
func (w *ledgerWAL) compactLocked(n int) {
	for _, rec := range w.tail[:n] {
		switch rec.Kind {
		case "node":
			w.base["n:"+rec.Node] = rec
		case "sess":
			if rec.Op == "close" {
				delete(w.base, "s:"+rec.Key)
				w.closed[rec.Key] = true
			} else {
				w.base["s:"+rec.Key] = rec
				delete(w.closed, rec.Key)
			}
		case "fence":
			w.hdr.Fence = rec.Fence
		}
		w.baseSeq = rec.Seq
	}
	w.tail = append(w.tail[:0:0], w.tail[n:]...)
}

// baseRecsLocked renders the compacted base as a deterministic record
// list (header first, then entities in sorted key order).
func (w *ledgerWAL) baseRecsLocked() []walRec {
	keys := make([]string, 0, len(w.base))
	for k := range w.base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	recs := make([]walRec, 0, len(keys)+1)
	hdr := w.hdr
	hdr.Seq = 0
	recs = append(recs, hdr)
	for _, k := range keys {
		recs = append(recs, w.base[k])
	}
	return recs
}

// Tail returns the records from seq `from` on. A cursor older than the
// retained tail is answered with the compacted base followed by the
// whole tail — the caller resets its shadow state from it (records
// carry resulting values, so re-applying is idempotent).
func (w *ledgerWAL) Tail(from uint64) walTailResponse {
	w.mu.Lock()
	defer w.mu.Unlock()
	resp := walTailResponse{From: from, Next: w.seq + 1, Fence: w.hdr.Fence}
	// A cursor the log cannot serve incrementally — older than the
	// retained tail, or ahead of the log (the primary restarted with a
	// shorter history) — gets a full resync: compacted base plus tail.
	if (from <= w.baseSeq && w.baseSeq > 0) || from > w.seq+1 {
		resp.Recs = append(w.baseRecsLocked(), w.tail...)
		return resp
	}
	for _, rec := range w.tail {
		if rec.Seq >= from {
			resp.Recs = append(resp.Recs, rec)
		}
	}
	return resp
}

// Close releases the file mirror.
func (w *ledgerWAL) Close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.bw != nil {
		_ = w.bw.Flush()
	}
	if w.f != nil {
		_ = w.f.Sync()
		_ = w.f.Close()
		w.f, w.bw = nil, nil
	}
}

// ---------------------------------------------------------------------
// Coordinator-side logging hooks and replay.

// logNodeLocked appends one ledger mutation for n. Caller holds c.mu.
func (c *Coordinator) logNodeLocked(op string, n *node) {
	if c.wal == nil {
		return
	}
	c.wal.append(walRec{
		Kind: "node", Op: op, Fence: c.fence,
		Node: n.id, Addr: n.addr, Epoch: n.epoch,
		LeaseJ: n.leaseJ, AckedJ: n.ackedJ, EscrowJ: n.escrowJ,
		TargetJ: n.targetJ, Live: n.live, BeatNS: n.lastBeat.UnixNano(),
		Consumed: c.consumedJ, EpochCtr: c.epochCtr,
	})
}

// logSessLocked appends one placement mutation. Caller holds c.mu.
func (c *Coordinator) logSessLocked(op, key, nodeID string) {
	if c.wal == nil {
		return
	}
	c.wal.append(walRec{Kind: "sess", Op: op, Fence: c.fence, Key: key, Node: nodeID})
}

// logFenceLocked appends a fencing-epoch bump. Caller holds c.mu.
func (c *Coordinator) logFenceLocked(op string) {
	if c.wal == nil {
		return
	}
	c.wal.mu.Lock()
	c.wal.hdr.Fence = c.fence
	c.wal.mu.Unlock()
	c.wal.append(walRec{Kind: "fence", Op: op, Fence: c.fence})
}

// applyWAL folds one replicated record into the ledger. It is the
// single replay path for both a restarted coordinator reading its file
// and a standby tailing the primary over HTTP.
func (c *Coordinator) applyWAL(rec walRec) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch rec.Kind {
	case "hdr":
		if rec.V != walVersion {
			return fmt.Errorf("cluster: WAL version %d, want %d", rec.V, walVersion)
		}
		if rec.FleetJ != c.cfg.FleetBudgetJ {
			return fmt.Errorf("cluster: WAL written for a %.1f J fleet, this coordinator has %.1f J",
				rec.FleetJ, c.cfg.FleetBudgetJ)
		}
		if rec.Fence > c.fence {
			c.fence = rec.Fence
		}
	case "node":
		n := c.nodes[rec.Node]
		if n == nil {
			n = &node{id: rec.Node}
			c.nodes[rec.Node] = n
		}
		n.addr = rec.Addr
		n.epoch = rec.Epoch
		n.leaseJ = rec.LeaseJ
		n.ackedJ = rec.AckedJ
		n.escrowJ = rec.EscrowJ
		n.targetJ = rec.TargetJ
		n.live = rec.Live
		n.lastBeat = nsToTime(rec.BeatNS)
		c.consumedJ = rec.Consumed
		if rec.EpochCtr > c.epochCtr {
			c.epochCtr = rec.EpochCtr
		}
		if rec.Fence > c.fence {
			c.fence = rec.Fence
		}
	case "sess":
		switch rec.Op {
		case "close":
			if old := c.sessions[rec.Key]; old != nil {
				delete(c.byID, old.id)
			}
			delete(c.sessions, rec.Key)
		default: // place, move
			sr := c.sessions[rec.Key]
			if sr == nil {
				// Ownership only: the registration and log are re-shipped
				// by the owner's heartbeats (walGhost marks the record as
				// not-yet-restorable so Reassign doesn't push empty state).
				sr = &sessRec{key: rec.Key, walGhost: true}
				c.sessions[rec.Key] = sr
			}
			sr.node = rec.Node
		}
	case "fence":
		if rec.Fence > c.fence {
			c.fence = rec.Fence
		}
	default:
		return fmt.Errorf("cluster: unknown WAL record kind %q", rec.Kind)
	}
	if rec.Seq > c.walSeq {
		c.walSeq = rec.Seq
	}
	if c.wal != nil && rec.Seq > 0 && rec.Kind != "hdr" {
		// Replicated history (a standby tailing the primary): mirror the
		// record into our own log, preserving its sequence number, so a
		// durable standby persists it and a promotion extends it.
		c.wal.mirror(rec)
	}
	return nil
}

// ApplyTail folds one tail response from the primary into the shadow
// ledger and returns the cursor to poll from next.
func (c *Coordinator) ApplyTail(resp walTailResponse) (uint64, error) {
	for _, rec := range resp.Recs {
		if err := c.applyWAL(rec); err != nil {
			return 0, err
		}
	}
	c.mu.Lock()
	if resp.Fence > c.fence {
		c.fence = resp.Fence
	}
	c.publishLocked()
	c.mu.Unlock()
	return resp.Next, nil
}

// ReplayWAL rebuilds the ledger from a JSONL log stream. It must run on
// a fresh coordinator (no nodes yet) — typically at boot, before the
// listener opens.
func (c *Coordinator) ReplayWAL(r io.Reader) error {
	c.mu.Lock()
	if len(c.nodes) != 0 {
		c.mu.Unlock()
		return fmt.Errorf("cluster: WAL replay requires a fresh coordinator, have %d nodes", len(c.nodes))
	}
	c.mu.Unlock()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line, seen := 0, false
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec walRec
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("cluster: WAL line %d: %w", line, err)
		}
		if rec.Kind == "hdr" {
			seen = true
		} else if !seen {
			return fmt.Errorf("cluster: WAL line %d: record before header", line)
		}
		if err := c.applyWAL(rec); err != nil {
			return fmt.Errorf("cluster: WAL line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !seen && line > 0 {
		return fmt.Errorf("cluster: WAL has no header")
	}
	c.mu.Lock()
	// Ghost placements get one lease term for their owners to rejoin and
	// re-report before Reassign concludes they are gone.
	c.graceUntil = c.clock().Add(c.cfg.LeaseTTL)
	c.publishLocked()
	c.mu.Unlock()
	return nil
}

// ReplayWALFile replays a WAL file; a missing file is a cold start, not
// an error.
func (c *Coordinator) ReplayWALFile(path string) (replayed bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	defer f.Close()
	if err := c.ReplayWAL(f); err != nil {
		return false, err
	}
	return true, nil
}
