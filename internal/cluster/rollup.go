package cluster

import (
	"sort"
	"time"

	"jouleguard/internal/qos"
	"jouleguard/internal/telemetry"
	"jouleguard/internal/wire"
)

// Cluster metrics rollup: members ship cumulative counter summaries on
// the heartbeats they already send (the coordinator never scrapes), and
// the coordinator folds the deltas into fleet-level series served at
// /v1/cluster/metrics — a separate registry from the coordinator's own
// control-plane metrics, so a fleet dashboard scrapes one endpoint and
// sees the whole fleet's decision volume and energy burn.

// burnAlpha is the EWMA smoothing for burn-rate gauges: heavy enough to
// ride out heartbeat-to-heartbeat jitter, light enough that a tenant
// going quiet shows within a few beats.
const burnAlpha = 0.3

// unixS renders a wall-clock instant as float seconds for span records.
func unixS(t time.Time) float64 { return float64(t.UnixNano()) / 1e9 }

// tenantRoll is one tenant's rollup state: cumulative spend counter,
// EWMA burn gauge, and the fleet-wide QoS position (tier and merged
// ladder rung) jgtop's tenant panel reads.
type tenantRoll struct {
	burn    float64
	gBurn   *telemetry.Gauge
	cSpent  *telemetry.Counter
	gTier   *telemetry.Gauge
	gLadder *telemetry.Gauge
}

// rollup is the coordinator's fleet-metrics aggregator. All mutation
// happens under the coordinator's mutex (from Heartbeat), so the struct
// itself needs no lock; the registry handles concurrent scrapes.
type rollup struct {
	reg *telemetry.Registry

	cDecisions *telemetry.Counter
	cIters     *telemetry.Counter
	cGuardRej  *telemetry.Counter
	cWatchdog  *telemetry.Counter
	cFaults    *telemetry.Counter
	cDecSumS   *telemetry.Counter
	cDecCount  *telemetry.Counter

	gBurn    *telemetry.Gauge
	gNodes   *telemetry.Gauge
	burnEWMA float64

	last    map[string]wire.MetricSummary // per-node last cumulative summary
	tenants map[string]*tenantRoll
}

func newRollup() *rollup {
	reg := telemetry.NewRegistry()
	return &rollup{
		reg: reg,

		cDecisions: reg.Counter("jouleguard_fleet_decisions_total", "Control decisions across all member daemons."),
		cIters:     reg.Counter("jouleguard_fleet_iterations_total", "Governed iterations completed across the fleet."),
		cGuardRej:  reg.Counter("jouleguard_fleet_guard_rejected_total", "Sensing-guard rejections across the fleet."),
		cWatchdog:  reg.Counter("jouleguard_fleet_watchdog_trips_total", "Watchdog degradations across the fleet."),
		cFaults:    reg.Counter("jouleguard_fleet_faults_injected_total", "Injected faults across the fleet."),
		cDecSumS:   reg.Counter("jouleguard_fleet_decision_seconds_sum", "Summed server-side decision latency across the fleet."),
		cDecCount:  reg.Counter("jouleguard_fleet_decision_seconds_count", "Decision-latency observations across the fleet."),

		gBurn:  reg.Gauge("jouleguard_fleet_burn_watts", "Fleet-wide energy burn rate (EWMA of booked spend per heartbeat)."),
		gNodes: reg.Gauge("jouleguard_fleet_nodes_reporting", "Member daemons whose heartbeats carried a metric summary."),

		last:    map[string]wire.MetricSummary{},
		tenants: map[string]*tenantRoll{},
	}
}

// foldNode merges one node's cumulative summary: the positive deltas
// since its previous report advance the fleet counters. A field that
// shrank means the node restarted (counters reset); the whole summary
// re-baselines and the current values count as fresh deltas — nothing
// already rolled up is ever subtracted back out.
func (r *rollup) foldNode(node string, cur *wire.MetricSummary) {
	if cur == nil {
		return
	}
	prev, seen := r.last[node]
	if cur.Decisions < prev.Decisions || cur.Iterations < prev.Iterations ||
		cur.DecisionCount < prev.DecisionCount {
		prev = wire.MetricSummary{}
	}
	r.cDecisions.Add(cur.Decisions - prev.Decisions)
	r.cIters.Add(cur.Iterations - prev.Iterations)
	r.cGuardRej.Add(cur.GuardRejected - prev.GuardRejected)
	r.cWatchdog.Add(cur.WatchdogTrips - prev.WatchdogTrips)
	r.cFaults.Add(cur.FaultsInjected - prev.FaultsInjected)
	r.cDecSumS.Add(cur.DecisionSecondsSum - prev.DecisionSecondsSum)
	r.cDecCount.Add(cur.DecisionCount - prev.DecisionCount)
	r.last[node] = *cur
	if !seen {
		r.gNodes.Set(float64(len(r.last)))
	}
}

// observeBurn folds one heartbeat's booked consumption into the
// fleet-wide burn gauge: bookedJ joules over the dt seconds since the
// node's previous beat.
func (r *rollup) observeBurn(bookedJ, dtS float64) {
	if dtS <= 0 {
		return
	}
	r.burnEWMA += burnAlpha * (bookedJ/dtS - r.burnEWMA)
	r.gBurn.Set(r.burnEWMA)
}

// tenantLocked lazily creates a tenant's rollup record and series.
func (r *rollup) tenantLocked(tenant string) *tenantRoll {
	t := r.tenants[tenant]
	if t == nil {
		t = &tenantRoll{
			gBurn: r.reg.Gauge("jouleguard_fleet_tenant_burn_watts",
				"Per-tenant energy burn rate (EWMA).", telemetry.Label{Name: "tenant", Value: tenant}),
			cSpent: r.reg.Counter("jouleguard_fleet_tenant_spent_joules",
				"Per-tenant cumulative energy spend across the fleet.", telemetry.Label{Name: "tenant", Value: tenant}),
			gTier: r.reg.Gauge("jouleguard_fleet_tenant_tier",
				"Tenant QoS tier (0 standard, 1 best-effort, 2 guaranteed).", telemetry.Label{Name: "tenant", Value: tenant}),
			gLadder: r.reg.Gauge("jouleguard_fleet_tenant_ladder_state",
				"Fleet-merged tenant ladder rung (0 ok, 1 throttled, 2 degraded, 3 suspended, 4 killed).",
				telemetry.Label{Name: "tenant", Value: tenant}),
		}
		r.tenants[tenant] = t
	}
	return t
}

// observeTenantQoS publishes a tenant's fleet-wide QoS position: its
// claimed tier and the max-merged ladder rung. state "ok" (or a tenant
// dropping out of the policy merge) resets the rung to 0.
func (r *rollup) observeTenantQoS(tenant, tier, state string) {
	if tenant == "" {
		tenant = "default"
	}
	t := r.tenantLocked(tenant)
	t.gTier.Set(float64(qos.ParseTier(tier)))
	t.gLadder.Set(float64(qos.ParseState(state)))
}

// observeTenant folds one session report's spend delta into its
// tenant's cumulative counter and burn gauge.
func (r *rollup) observeTenant(tenant string, spentDeltaJ, dtS float64) {
	if tenant == "" {
		tenant = "default"
	}
	t := r.tenantLocked(tenant)
	if spentDeltaJ > 0 {
		t.cSpent.Add(spentDeltaJ)
	}
	if dtS > 0 {
		t.burn += burnAlpha * (spentDeltaJ/dtS - t.burn)
		t.gBurn.Set(t.burn)
	}
}

// ---------------------------------------------------------------------
// Cluster provenance: the upper half of the custody chain.

// Provenance renders the coordinator's custody chain: the fleet budget
// split into the leasable pool, the failover reserve, live nodes'
// unspent leases, and booked consumption. PoolJ here excludes the
// reserve (ClusterInfo.PoolJ includes it) so the four parts of the
// fleet layer are disjoint and sum back to the budget.
func (c *Coordinator) Provenance() wire.ClusterProvenance {
	c.mu.Lock()
	defer c.mu.Unlock()
	role := "primary"
	switch {
	case c.follower:
		role = "standby"
	case c.deposed:
		role = "deposed"
	}
	reserve := c.reserveJ()
	unspent := c.unspentLocked()
	p := wire.ClusterProvenance{
		Fence:          c.fence,
		Role:           role,
		FleetJ:         c.cfg.FleetBudgetJ,
		PoolJ:          c.poolLocked() - reserve,
		ReserveJ:       reserve,
		LeasedUnspentJ: unspent,
		ConsumedJ:      c.consumedJ,
	}
	ids := make([]string, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var nodeUnspent float64
	for _, id := range ids {
		n := c.nodes[id]
		nodeUnspent += n.unspent()
		p.Nodes = append(p.Nodes, wire.NodeCustody{
			Node: id, Live: n.live,
			LeaseJ: n.leaseJ, AckedJ: n.ackedJ, EscrowJ: n.escrowJ, UnspentJ: n.unspent(),
		})
	}
	p.Layers = []wire.ProvenanceLayer{
		provLayer("fleet", p.FleetJ, p.PoolJ+p.ReserveJ+p.LeasedUnspentJ+p.ConsumedJ),
		provLayer("nodes", p.LeasedUnspentJ, nodeUnspent),
	}
	return p
}

func provLayer(name string, expect, sum float64) wire.ProvenanceLayer {
	return wire.ProvenanceLayer{Layer: name, ExpectJ: expect, SumJ: sum, DriftJ: expect - sum}
}
