package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"jouleguard"
	"jouleguard/internal/cluster"
	"jouleguard/internal/server"
	"jouleguard/internal/wire"
)

// manualClock is a shared, hand-advanced clock so lease TTLs and fences
// line up deterministically across coordinator and members.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Unix(1700000000, 0)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// machine simulates the governed application's clock and energy meter
// (same model the client tests use).
type machine struct {
	tb      *jouleguard.Testbed
	clockS  float64
	energyJ float64
}

func newMachine(t *testing.T) *machine {
	t.Helper()
	tb, err := jouleguard.NewTestbed("radar", "Tablet")
	if err != nil {
		t.Fatal(err)
	}
	return &machine{tb: tb}
}

func (m *machine) step(appCfg, sysCfg, iter int) float64 {
	work, acc := m.tb.App.Step(appCfg, iter)
	dur := work / m.tb.Platform.Rate(sysCfg, m.tb.Profile)
	m.clockS += dur
	m.energyJ += m.tb.Platform.Power(sysCfg, m.tb.Profile) * dur
	return acc
}

// fleet is a coordinator plus N member daemons, all on httptest servers
// with the shared manual clock and manual heartbeats/sweeps.
type fleet struct {
	t       *testing.T
	clock   *manualClock
	coord   *cluster.Coordinator
	coordTS *httptest.Server
	members []*cluster.Member
	servers []*server.Server
	nodeTS  []*httptest.Server
	ttl     time.Duration

	mu        sync.Mutex
	intercept []func(*http.Request) // per-node request hook (race tests)
}

// setIntercept installs a hook run before node idx serves each request.
func (f *fleet) setIntercept(idx int, h func(*http.Request)) {
	f.mu.Lock()
	f.intercept[idx] = h
	f.mu.Unlock()
}

func (f *fleet) getIntercept(idx int) func(*http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.intercept[idx]
}

func newFleet(t *testing.T, fleetJ float64, nodes int) *fleet {
	return newFleetCfg(t, fleetJ, nodes, nil)
}

// newFleetCfg builds a fleet letting the test adjust the coordinator
// config (e.g. a WAL path) before it starts.
func newFleetCfg(t *testing.T, fleetJ float64, nodes int, edit func(*cluster.Config)) *fleet {
	t.Helper()
	clk := newManualClock()
	ttl := 3 * time.Second
	cfg := cluster.Config{
		FleetBudgetJ:  fleetJ,
		LeaseTTL:      ttl,
		SweepInterval: -1, // tests call Sweep explicitly
		Clock:         clk.Now,
	}
	if edit != nil {
		edit(&cfg)
	}
	coord, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Stop)
	f := &fleet{t: t, clock: clk, coord: coord, ttl: ttl}
	f.coordTS = httptest.NewServer(coord.Handler())
	t.Cleanup(f.coordTS.Close)
	for i := 0; i < nodes; i++ {
		f.addNode(fmt.Sprintf("node%d", i))
	}
	return f
}

// addNode builds one member daemon and joins it to the fleet. The
// server is deliberately seeded with the daemon's default 10000 J
// -budget so the join must prove the lease — not the local flag — is
// the only budget source.
func (f *fleet) addNode(name string) *cluster.Member {
	return f.addNodeWith(name, nil, nil)
}

// addNodeWith builds a member with an explicit standby coordinator list
// and/or HTTP client (for fault-fabric transports); nils take defaults.
func (f *fleet) addNodeWith(name string, standbys []string, httpc *http.Client) *cluster.Member {
	return f.addNodeCfg(name, standbys, httpc, nil)
}

// addNodeCfg additionally lets the test adjust the node's server config
// before it starts (e.g. enabling the QoS ladder on one node).
func (f *fleet) addNodeCfg(name string, standbys []string, httpc *http.Client, edit func(*server.Config)) *cluster.Member {
	f.t.Helper()
	const seedJ = 10000
	scfg := server.Config{GlobalBudgetJ: seedJ, SweepInterval: -1, Clock: f.clock.Now}
	if edit != nil {
		edit(&scfg)
	}
	srv, err := server.New(scfg)
	if err != nil {
		f.t.Fatal(err)
	}
	idx := len(f.members)
	f.mu.Lock()
	f.intercept = append(f.intercept, nil)
	f.mu.Unlock()
	var m *cluster.Member
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h := f.getIntercept(idx); h != nil {
			h(r)
		}
		m.Handler().ServeHTTP(w, r)
	}))
	f.t.Cleanup(ts.Close)
	m, err = cluster.NewMember(cluster.MemberConfig{
		CoordinatorURL:  f.coordTS.URL,
		CoordinatorURLs: standbys,
		Node:            name,
		Advertise:       ts.URL,
		Server:          srv,
		Clock:           f.clock.Now,
		HTTPClient:      httpc,
	})
	if err != nil {
		f.t.Fatal(err)
	}
	if err := m.Join(); err != nil {
		f.t.Fatalf("join %s: %v", name, err)
	}
	if g := srv.Broker().Global(); g != m.LeaseJ() || g == seedJ {
		f.t.Fatalf("join left %s broker at %.1f J (lease %.1f J): the pre-join budget must be replaced by the lease",
			name, g, m.LeaseJ())
	}
	f.members = append(f.members, m)
	f.servers = append(f.servers, srv)
	f.nodeTS = append(f.nodeTS, ts)
	return m
}

func (f *fleet) info() wire.ClusterInfo { return f.coord.Info(true) }

// assertInvariant checks the fleet safety condition from the ledger's
// own view and fails the test on any recorded self-check violation.
func (f *fleet) assertInvariant(when string) {
	f.t.Helper()
	info := f.info()
	if got := info.LeasedUnspentJ + info.ConsumedJ; got > info.FleetJ+1e-6 {
		f.t.Fatalf("%s: unspent %.3f + consumed %.3f = %.3f exceeds fleet budget %.3f",
			when, info.LeasedUnspentJ, info.ConsumedJ, got, info.FleetJ)
	}
	if info.InvariantViolations != 0 {
		f.t.Fatalf("%s: coordinator recorded %d ledger violations", when, info.InvariantViolations)
	}
}

// nodeIdx maps a node name back to its fleet index.
func (f *fleet) nodeIdx(name string) int {
	for i := range f.members {
		if fmt.Sprintf("node%d", i) == name {
			return i
		}
	}
	f.t.Fatalf("unknown node %q", name)
	return -1
}

// driver speaks the raw wire protocol against whichever node currently
// owns its session.
type driver struct {
	t    *testing.T
	base string
	id   string
	m    *machine
	iter int
}

// noRedirect surfaces 307s instead of following them, so tests can pin
// the redirect contract (plain clients do follow them transparently —
// TestRegisterRedirectFollowable proves that).
var noRedirect = &http.Client{
	CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
}

func postJSON(t *testing.T, url string, in, out any) (int, wire.ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := noRedirect.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var werr wire.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&werr)
		return resp.StatusCode, werr
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, wire.ErrorResponse{}
}

// place asks the coordinator where key lives and registers there.
func (f *fleet) place(key, tenant string, iters int, factor float64, seed int64) *driver {
	f.t.Helper()
	reg := wire.RegisterRequest{
		Tenant: tenant, Key: key, App: "radar", Platform: "Tablet",
		Iterations: iters, Factor: factor, Seed: seed,
	}
	status, werr := postJSON(f.t, f.coordTS.URL+wire.BasePath, reg, nil)
	if status != http.StatusTemporaryRedirect || werr.Code != wire.CodeNotOwner || werr.Addr == "" {
		f.t.Fatalf("coordinator register: status %d code %q addr %q", status, werr.Code, werr.Addr)
	}
	var resp wire.RegisterResponse
	if status, e := postJSON(f.t, werr.Addr+wire.BasePath, reg, &resp); status >= 300 {
		f.t.Fatalf("node register: status %d %+v", status, e)
	}
	return &driver{t: f.t, base: werr.Addr, id: resp.SessionID, m: newMachine(f.t)}
}

// step runs one governed iteration; it returns the decision so golden
// tests can compare sequences.
func (d *driver) step() (wire.NextResponse, wire.DoneResponse) {
	d.t.Helper()
	var next wire.NextResponse
	if status, e := postJSON(d.t, d.base+wire.BasePath+"/"+d.id+"/next", wire.NextRequest{NowS: d.m.clockS}, &next); status != http.StatusOK {
		d.t.Fatalf("next: status %d %+v", status, e)
	}
	acc := d.m.step(next.AppConfig, next.SysConfig, d.iter)
	d.iter++
	var done wire.DoneResponse
	if status, e := postJSON(d.t, d.base+wire.BasePath+"/"+d.id+"/done",
		wire.DoneRequest{NowS: d.m.clockS, EnergyJ: d.m.energyJ, Accuracy: acc}, &done); status != http.StatusOK {
		d.t.Fatalf("done: status %d %+v", status, e)
	}
	return next, done
}

// tryNext attempts a bare next call and reports the wire error code ("" on
// success, in which case the iteration is immediately completed).
func (d *driver) tryNext() string {
	d.t.Helper()
	var next wire.NextResponse
	status, e := postJSON(d.t, d.base+wire.BasePath+"/"+d.id+"/next", wire.NextRequest{NowS: d.m.clockS}, &next)
	if status != http.StatusOK {
		return e.Code
	}
	acc := d.m.step(next.AppConfig, next.SysConfig, d.iter)
	d.iter++
	var done wire.DoneResponse
	if status, e := postJSON(d.t, d.base+wire.BasePath+"/"+d.id+"/done",
		wire.DoneRequest{NowS: d.m.clockS, EnergyJ: d.m.energyJ, Accuracy: acc}, &done); status != http.StatusOK {
		d.t.Fatalf("done after successful next: status %d %+v", status, e)
	}
	return ""
}

// TestFleetLeaseLifecycle pins the basic loop: join grants leases,
// sessions run under them, heartbeats book consumption and ship
// iteration logs to the coordinator, and the ledger invariant holds
// throughout.
func TestFleetLeaseLifecycle(t *testing.T) {
	f := newFleet(t, 20000, 2)
	f.assertInvariant("after join")

	info := f.info()
	if info.NodesLive != 2 {
		t.Fatalf("nodes live %d, want 2", info.NodesLive)
	}
	if info.LeasedUnspentJ <= 0 || info.PoolJ <= 0 {
		t.Fatalf("leases %.1f pool %.1f, want both positive", info.LeasedUnspentJ, info.PoolJ)
	}

	d := f.place("job-alpha", "t1", 20, 2, 7)
	for i := 0; i < 20; i++ {
		d.step()
	}
	if d.m.energyJ <= 0 {
		t.Fatal("workload consumed no energy")
	}

	// Heartbeats from both nodes: the owner books spend and ships the log.
	for _, m := range f.members {
		if err := m.Beat(); err != nil {
			t.Fatal(err)
		}
	}
	f.assertInvariant("after heartbeat")

	info = f.info()
	if info.ConsumedJ <= 0 {
		t.Fatalf("consumed %.3f after a full workload, want > 0", info.ConsumedJ)
	}
	var rec *wire.PlacementInfo
	for i := range info.Sessions {
		if info.Sessions[i].Key == "job-alpha" {
			rec = &info.Sessions[i]
		}
	}
	if rec == nil {
		t.Fatal("coordinator never learned about job-alpha")
	}
	if rec.Done != 20 || !rec.Complete {
		t.Fatalf("coordinator log: done %d complete %v, want 20/true", rec.Done, rec.Complete)
	}
}

// TestPlacementStability pins rendezvous hashing: repeated lookups for
// one key land on one node, and keys spread across the fleet.
func TestPlacementStability(t *testing.T) {
	f := newFleet(t, 20000, 3)
	owners := map[string]int{}
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("job-%02d", i)
		first, err := f.coord.Place(key)
		if err != nil {
			t.Fatal(err)
		}
		again, err := f.coord.Place(key)
		if err != nil {
			t.Fatal(err)
		}
		if first.Node != again.Node {
			t.Fatalf("key %s moved from %s to %s without a failure", key, first.Node, again.Node)
		}
		owners[first.Node]++
	}
	if len(owners) < 2 {
		t.Fatalf("30 keys all landed on one node: %v", owners)
	}
}

// TestRegisterRedirectFollowable pins that a plain redirect-following
// HTTP client pointed at the coordinator lands its registration on the
// owning node with no protocol awareness at all (307 preserves the POST
// body).
func TestRegisterRedirectFollowable(t *testing.T) {
	f := newFleet(t, 20000, 2)
	body, _ := json.Marshal(wire.RegisterRequest{
		Tenant: "t1", Key: "follow-me", App: "radar", Platform: "Tablet",
		Iterations: 5, Factor: 2,
	})
	resp, err := http.Post(f.coordTS.URL+wire.BasePath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reg wire.RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	if reg.SessionID == "" || reg.GrantJ <= 0 {
		t.Fatalf("followed registration: %+v (status %d)", reg, resp.StatusCode)
	}
	place, err := f.coord.Place("follow-me")
	if err != nil {
		t.Fatal(err)
	}
	if place.Node == "" {
		t.Fatalf("placement lost after follow: %+v", place)
	}
}

// TestRegisterViaCoordinatorRequiresKey pins the redirect contract.
func TestRegisterViaCoordinatorRequiresKey(t *testing.T) {
	f := newFleet(t, 20000, 1)
	status, werr := postJSON(t, f.coordTS.URL+wire.BasePath, wire.RegisterRequest{
		Tenant: "t1", App: "radar", Platform: "Tablet", Iterations: 5, Factor: 2,
	}, nil)
	if status != http.StatusBadRequest || werr.Code != wire.CodeBadRequest {
		t.Fatalf("keyless register via coordinator: status %d code %q", status, werr.Code)
	}
}

// TestAdmitAssistExtendsLease pins the on-demand extension path: a
// registration that does not fit the node's current lease triggers the
// admission-assist hook, the member asks the coordinator for the
// shortfall, and the registration is admitted on the grown lease — the
// tenant never sees the intermediate budget_exhausted.
func TestAdmitAssistExtendsLease(t *testing.T) {
	f := newFleet(t, 20000, 1)
	// Initial lease: 20000 * 0.9 / 8 = 2250 J. Three 1000 J requests
	// commit 1050 J each — the third only fits after an extension.
	for i := 0; i < 3; i++ {
		reg := wire.RegisterRequest{
			Tenant: fmt.Sprintf("t%d", i), Key: fmt.Sprintf("assist-%d", i),
			App: "radar", Platform: "Tablet", Iterations: 50, BudgetJ: 1000,
		}
		var resp wire.RegisterResponse
		if status, e := postJSON(t, f.nodeTS[0].URL+wire.BasePath, reg, &resp); status >= 300 {
			t.Fatalf("register %d: status %d %+v", i, status, e)
		}
	}
	if lease := f.servers[0].Broker().Global(); lease <= 2250 {
		t.Fatalf("lease %.1f J after three admissions, want extended beyond the initial 2250", lease)
	}
	f.assertInvariant("after assisted admissions")
}
