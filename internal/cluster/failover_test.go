package cluster_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"jouleguard/internal/server"
	"jouleguard/internal/wire"
)

// TestFailoverGoldenReplay extends the snapshot-replay determinism
// guarantee across nodes: a session that is migrated mid-run by the
// coordinator (owner dies, survivor adopts by replaying the acked
// iteration log) must take exactly the decisions the uninterrupted run
// takes, and land on the same final estimates. Energy accounting is
// event-sourced and the control path is deterministic given its inputs,
// so failover is invisible to the governed application.
func TestFailoverGoldenReplay(t *testing.T) {
	const iters = 30
	const preFail = 12

	type decision struct {
		App, Sys int
	}

	// Golden run: one standalone daemon, no interruptions.
	golden := make([]decision, 0, iters)
	var goldenInfo wire.SessionInfo
	{
		srv, err := server.New(server.Config{GlobalBudgetJ: 50000, SweepInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		var reg wire.RegisterResponse
		if status, e := postJSON(t, ts.URL+wire.BasePath, wire.RegisterRequest{
			Tenant: "golden", Key: "golden-key", App: "radar", Platform: "Tablet",
			Iterations: iters, Factor: 2, Seed: 17,
		}, &reg); status >= 300 {
			t.Fatalf("golden register: %d %+v", status, e)
		}
		d := &driver{t: t, base: ts.URL, id: reg.SessionID, m: newMachine(t)}
		for i := 0; i < iters; i++ {
			next, _ := d.step()
			golden = append(golden, decision{next.AppConfig, next.SysConfig})
		}
		resp, err := http.Get(ts.URL + wire.BasePath + "/" + reg.SessionID)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&goldenInfo); err != nil {
			t.Fatal(err)
		}
	}

	// Fleet run: same registration, owner killed after preFail iterations.
	f := newFleet(t, 50000, 2)
	key := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("gold-%d", i)
		place, err := f.coord.Place(k)
		if err != nil {
			t.Fatal(err)
		}
		if place.Node == "node1" {
			key = k
			break
		}
	}
	reg := wire.RegisterRequest{
		Tenant: "golden", Key: key, App: "radar", Platform: "Tablet",
		Iterations: iters, Factor: 2, Seed: 17,
	}
	status, werr := postJSON(t, f.coordTS.URL+wire.BasePath, reg, nil)
	if status != http.StatusTemporaryRedirect || werr.Addr == "" {
		t.Fatalf("coordinator register: %d %+v", status, werr)
	}
	var regResp wire.RegisterResponse
	if status, e := postJSON(t, werr.Addr+wire.BasePath, reg, &regResp); status >= 300 {
		t.Fatalf("node register: %d %+v", status, e)
	}
	d := &driver{t: t, base: werr.Addr, id: regResp.SessionID, m: newMachine(t)}

	got := make([]decision, 0, iters)
	for i := 0; i < preFail; i++ {
		next, _ := d.step()
		got = append(got, decision{next.AppConfig, next.SysConfig})
	}
	// The owner's heartbeat ships the log; then it goes silent and dies.
	idx := f.nodeIdx("node1")
	if err := f.members[idx].Beat(); err != nil {
		t.Fatal(err)
	}
	f.clock.Advance(f.ttl + f.ttl/2)
	if err := f.members[0].Beat(); err != nil {
		t.Fatal(err)
	}
	f.members[idx].CheckFence()
	if expired := f.coord.Sweep(); expired != 1 {
		t.Fatalf("sweep expired %d leases, want 1", expired)
	}
	f.assertInvariant("after failover")

	// The survivor adopted the session: find it and finish the workload
	// on the same simulated machine (the meter and clock carry over).
	place, err := f.coord.Place(key)
	if err != nil {
		t.Fatal(err)
	}
	if place.Node != "node0" || place.SessionID == "" {
		t.Fatalf("post-failover placement %+v", place)
	}
	d.base = f.nodeTS[0].URL
	d.id = place.SessionID
	for i := preFail; i < iters; i++ {
		next, _ := d.step()
		got = append(got, decision{next.AppConfig, next.SysConfig})
	}

	for i := range golden {
		if golden[i] != got[i] {
			t.Fatalf("decision %d diverged after failover: golden %+v, migrated %+v",
				i, golden[i], got[i])
		}
	}

	// Estimates must agree too: the learner's state, not just its
	// choices, survived the migration bit-for-bit.
	resp, err := http.Get(f.nodeTS[0].URL + wire.BasePath + "/" + place.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var migratedInfo wire.SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&migratedInfo); err != nil {
		t.Fatal(err)
	}
	if len(migratedInfo.Estimates) != len(goldenInfo.Estimates) {
		t.Fatalf("estimate count: golden %d, migrated %d",
			len(goldenInfo.Estimates), len(migratedInfo.Estimates))
	}
	for i := range goldenInfo.Estimates {
		if goldenInfo.Estimates[i] != migratedInfo.Estimates[i] {
			t.Fatalf("estimate %d: golden %+v, migrated %+v",
				i, goldenInfo.Estimates[i], migratedInfo.Estimates[i])
		}
	}
	if migratedInfo.State != "complete" {
		t.Fatalf("migrated session state %q, want complete", migratedInfo.State)
	}
}

// TestReassignRejoinRaceDropsStaleCopy pins the failover ownership
// handoff against a resurrecting owner: the dead node rejoins exactly
// while the adopt push to the survivor is in flight. The coordinator
// marks the record in-transit before releasing its lock, so the rejoin
// must be told to drop its stale copy — otherwise the session would run
// live on two nodes, with their heartbeats flip-flopping ownership and
// the stranded copy's budget leaking until idle expiry.
func TestReassignRejoinRaceDropsStaleCopy(t *testing.T) {
	const iters = 20
	const preFail = 8

	f := newFleet(t, 50000, 2)
	key := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("race-%d", i)
		place, err := f.coord.Place(k)
		if err != nil {
			t.Fatal(err)
		}
		if place.Node == "node1" {
			key = k
			break
		}
	}
	d := f.place(key, "race", iters, 2, 5)
	for i := 0; i < preFail; i++ {
		d.step()
	}
	idx := f.nodeIdx("node1")
	if err := f.members[idx].Beat(); err != nil { // ship the log
		t.Fatal(err)
	}

	// node1 goes silent past the TTL; node0 stays healthy.
	f.clock.Advance(f.ttl + f.ttl/2)
	if err := f.members[0].Beat(); err != nil {
		t.Fatal(err)
	}
	f.members[idx].CheckFence()

	// Rejoin node1 from inside the adopt push to node0 — the exact
	// window between the coordinator collecting the move and committing
	// the new placement.
	rejoined := make(chan error, 1)
	f.setIntercept(0, func(r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/adopt") {
			f.setIntercept(0, nil)
			rejoined <- f.members[idx].Join()
		}
	})
	if expired := f.coord.Sweep(); expired != 1 {
		t.Fatalf("sweep expired %d leases, want 1", expired)
	}
	if err := <-rejoined; err != nil {
		t.Fatalf("rejoin during adopt push: %v", err)
	}

	// Exactly one live copy, owned by the survivor.
	place, err := f.coord.Place(key)
	if err != nil {
		t.Fatal(err)
	}
	if place.Node != "node0" || place.SessionID == "" {
		t.Fatalf("post-race placement %+v, want node0 with a session id", place)
	}
	for _, ex := range f.servers[idx].Export(nil) {
		if ex.Key == key && ex.Live {
			t.Fatalf("rejoined node still holds a live copy of %q: the session is live on two nodes", key)
		}
	}

	// Ownership must not flip-flop under subsequent heartbeats from both
	// nodes.
	for round := 0; round < 3; round++ {
		for _, m := range f.members {
			if err := m.Beat(); err != nil {
				t.Fatal(err)
			}
		}
		place, err := f.coord.Place(key)
		if err != nil {
			t.Fatal(err)
		}
		if place.Node != "node0" {
			t.Fatalf("heartbeat round %d flipped ownership to %s", round, place.Node)
		}
	}
	f.assertInvariant("after rejoin race")

	// The migrated session still finishes cleanly on its new owner.
	d.base = f.nodeTS[0].URL
	d.id = place.SessionID
	for i := preFail; i < iters; i++ {
		d.step()
	}
}
