package cluster_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"jouleguard/internal/server"
	"jouleguard/internal/wire"
)

// TestFailoverGoldenReplay extends the snapshot-replay determinism
// guarantee across nodes: a session that is migrated mid-run by the
// coordinator (owner dies, survivor adopts by replaying the acked
// iteration log) must take exactly the decisions the uninterrupted run
// takes, and land on the same final estimates. Energy accounting is
// event-sourced and the control path is deterministic given its inputs,
// so failover is invisible to the governed application.
func TestFailoverGoldenReplay(t *testing.T) {
	const iters = 30
	const preFail = 12

	type decision struct {
		App, Sys int
	}

	// Golden run: one standalone daemon, no interruptions.
	golden := make([]decision, 0, iters)
	var goldenInfo wire.SessionInfo
	{
		srv, err := server.New(server.Config{GlobalBudgetJ: 50000, SweepInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		var reg wire.RegisterResponse
		if status, e := postJSON(t, ts.URL+wire.BasePath, wire.RegisterRequest{
			Tenant: "golden", Key: "golden-key", App: "radar", Platform: "Tablet",
			Iterations: iters, Factor: 2, Seed: 17,
		}, &reg); status >= 300 {
			t.Fatalf("golden register: %d %+v", status, e)
		}
		d := &driver{t: t, base: ts.URL, id: reg.SessionID, m: newMachine(t)}
		for i := 0; i < iters; i++ {
			next, _ := d.step()
			golden = append(golden, decision{next.AppConfig, next.SysConfig})
		}
		resp, err := http.Get(ts.URL + wire.BasePath + "/" + reg.SessionID)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&goldenInfo); err != nil {
			t.Fatal(err)
		}
	}

	// Fleet run: same registration, owner killed after preFail iterations.
	f := newFleet(t, 50000, 2)
	key := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("gold-%d", i)
		place, err := f.coord.Place(k)
		if err != nil {
			t.Fatal(err)
		}
		if place.Node == "node1" {
			key = k
			break
		}
	}
	reg := wire.RegisterRequest{
		Tenant: "golden", Key: key, App: "radar", Platform: "Tablet",
		Iterations: iters, Factor: 2, Seed: 17,
	}
	status, werr := postJSON(t, f.coordTS.URL+wire.BasePath, reg, nil)
	if status != http.StatusTemporaryRedirect || werr.Addr == "" {
		t.Fatalf("coordinator register: %d %+v", status, werr)
	}
	var regResp wire.RegisterResponse
	if status, e := postJSON(t, werr.Addr+wire.BasePath, reg, &regResp); status >= 300 {
		t.Fatalf("node register: %d %+v", status, e)
	}
	d := &driver{t: t, base: werr.Addr, id: regResp.SessionID, m: newMachine(t)}

	got := make([]decision, 0, iters)
	for i := 0; i < preFail; i++ {
		next, _ := d.step()
		got = append(got, decision{next.AppConfig, next.SysConfig})
	}
	// The owner's heartbeat ships the log; then it goes silent and dies.
	idx := f.nodeIdx("node1")
	if err := f.members[idx].Beat(); err != nil {
		t.Fatal(err)
	}
	f.clock.Advance(f.ttl + f.ttl/2)
	if err := f.members[0].Beat(); err != nil {
		t.Fatal(err)
	}
	f.members[idx].CheckFence()
	if expired := f.coord.Sweep(); expired != 1 {
		t.Fatalf("sweep expired %d leases, want 1", expired)
	}
	f.assertInvariant("after failover")

	// The survivor adopted the session: find it and finish the workload
	// on the same simulated machine (the meter and clock carry over).
	place, err := f.coord.Place(key)
	if err != nil {
		t.Fatal(err)
	}
	if place.Node != "node0" || place.SessionID == "" {
		t.Fatalf("post-failover placement %+v", place)
	}
	d.base = f.nodeTS[0].URL
	d.id = place.SessionID
	for i := preFail; i < iters; i++ {
		next, _ := d.step()
		got = append(got, decision{next.AppConfig, next.SysConfig})
	}

	for i := range golden {
		if golden[i] != got[i] {
			t.Fatalf("decision %d diverged after failover: golden %+v, migrated %+v",
				i, golden[i], got[i])
		}
	}

	// Estimates must agree too: the learner's state, not just its
	// choices, survived the migration bit-for-bit.
	resp, err := http.Get(f.nodeTS[0].URL + wire.BasePath + "/" + place.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var migratedInfo wire.SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&migratedInfo); err != nil {
		t.Fatal(err)
	}
	if len(migratedInfo.Estimates) != len(goldenInfo.Estimates) {
		t.Fatalf("estimate count: golden %d, migrated %d",
			len(goldenInfo.Estimates), len(migratedInfo.Estimates))
	}
	for i := range goldenInfo.Estimates {
		if goldenInfo.Estimates[i] != migratedInfo.Estimates[i] {
			t.Fatalf("estimate %d: golden %+v, migrated %+v",
				i, goldenInfo.Estimates[i], migratedInfo.Estimates[i])
		}
	}
	if migratedInfo.State != "complete" {
		t.Fatalf("migrated session state %q, want complete", migratedInfo.State)
	}
}
