package cluster_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"jouleguard/internal/client"
)

// TestClientRidesThroughNodeDeath is the end-to-end failover story: an
// application opens its session through the coordinator, the owning
// node dies mid-workload, and the client library — without the
// application noticing anything but latency — asks the coordinator
// where the session went, re-attaches on the survivor, replays the
// iterations the coordinator had not yet acked from its own history,
// and finishes the workload.
func TestClientRidesThroughNodeDeath(t *testing.T) {
	f := newFleet(t, 50000, 2)

	// Pick a key owned by node1, the node we are going to kill.
	key := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("ride-%d", i)
		place, err := f.coord.Place(k)
		if err != nil {
			t.Fatal(err)
		}
		if place.Node == "node1" {
			key = k
			break
		}
	}

	ctx := context.Background()
	m := newMachine(t)
	sess, err := client.Open(ctx, client.Options{
		CoordinatorURL: f.coordTS.URL,
		Key:            key,
		Tenant:         "rider", App: "radar", Platform: "Tablet",
		Iterations: 30, Factor: 2, Seed: 23,
		Retry: client.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	}, func() (float64, error) { return m.energyJ, nil }, func() float64 { return m.clockS })
	if err != nil {
		t.Fatal(err)
	}

	const preFail = 9
	iter := 0
	step := func() {
		t.Helper()
		appCfg, sysCfg, err := sess.Next(ctx)
		if err != nil {
			t.Fatalf("next %d: %v", iter, err)
		}
		acc := m.step(appCfg, sysCfg, iter)
		if err := sess.Done(ctx, acc); err != nil {
			t.Fatalf("done %d: %v", iter, err)
		}
		iter++
	}
	for i := 0; i < preFail; i++ {
		step()
	}

	// The owner heartbeats once (acking part of the log — the rest must
	// come from the client's catch-up replay), then dies: its httptest
	// server closes, its lease expires, the survivor adopts.
	idx := f.nodeIdx("node1")
	if err := f.members[idx].Beat(); err != nil {
		t.Fatal(err)
	}
	step() // iterations 9..10 happen after the last ack
	step()
	f.nodeTS[idx].Close()
	// Closing the httptest listener does not sever hijacked v2 streams
	// (the HTTP server forgot them at upgrade); a real crash kills the
	// TCP connection too, so the simulated one must as well.
	f.servers[idx].CloseV2Streams()
	f.clock.Advance(f.ttl + f.ttl/2)
	if err := f.members[0].Beat(); err != nil {
		t.Fatal(err)
	}
	if expired := f.coord.Sweep(); expired != 1 {
		t.Fatalf("sweep expired %d leases, want 1", expired)
	}
	f.assertInvariant("after node death")

	// The application just keeps calling Next/Done.
	for iter < 30 {
		step()
	}
	if st := sess.LastStatus(); !st.Complete {
		t.Fatalf("workload incomplete after failover: %+v", st)
	}
	if sess.Failovers() != 1 {
		t.Fatalf("failovers %d, want 1", sess.Failovers())
	}

	// The governor's full 30-iteration state lives on the survivor.
	info, err := sess.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "complete" || info.IterDone != 30 {
		t.Fatalf("migrated session info: %+v", info)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	f.assertInvariant("after close")
}
