package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"jouleguard/internal/server"
	"jouleguard/internal/telemetry"
	"jouleguard/internal/wire"
)

// MemberSeedBudgetJ seeds a fleet member daemon's broker before its
// first lease arrives: effectively zero (the broker requires a positive
// pool), so the coordinator's lease is the only real budget source and
// nothing can be admitted against a local -budget flag the fleet never
// granted.
const MemberSeedBudgetJ = 1e-9

// MemberConfig wires a governor daemon into a fleet.
type MemberConfig struct {
	// CoordinatorURL is the coordinator's base URL (e.g. http://host:port).
	CoordinatorURL string
	// CoordinatorURLs is the ordered failover list tried after
	// CoordinatorURL: a standby that answers not_primary (or a deposed
	// primary answering stale_epoch, or one that is simply unreachable)
	// rotates the member to the next entry.
	CoordinatorURLs []string
	// Node is this daemon's stable fleet identity.
	Node string
	// Advertise is the base URL clients and the coordinator reach this
	// daemon's wire API at.
	Advertise string
	// Server is the local governor daemon the lease feeds.
	Server *server.Server
	// Heartbeat overrides the coordinator-suggested cadence (<= 0 keeps
	// the suggestion; tests drive Beat/CheckFence manually via Run not
	// being started).
	Heartbeat time.Duration
	// HTTPClient performs coordinator calls (nil builds one).
	HTTPClient *http.Client
	// Clock is injectable for tests (nil = time.Now).
	Clock func() time.Time
}

// Member runs the node side of the lease protocol: join, heartbeat,
// self-fence when the lease runs out, and adopt sessions pushed over
// from dead nodes. The safety half lives here: the member never lets
// its daemon admit or advance work past the lease deadline, which is
// exactly the window the coordinator waits before escrowing the unspent
// lease — so node and coordinator can never both spend the same joules.
type Member struct {
	cfg    MemberConfig
	srv    *server.Server
	httpc  *http.Client
	clock  func() time.Time
	coords []string // ordered coordinator list; immutable after New

	mu        sync.Mutex
	cur       int // index into coords of the coordinator we believe serves
	fence     int64
	joined    bool
	epoch     int64
	leaseJ    float64
	deadline  time.Time
	beatEvery time.Duration
	acked     map[string]int // session id -> log length the coordinator holds

	stop chan struct{}
	done chan struct{}
}

// NewMember wires srv into the fleet (the first Join happens on Run or
// an explicit Join call).
func NewMember(cfg MemberConfig) (*Member, error) {
	coords := make([]string, 0, 1+len(cfg.CoordinatorURLs))
	if cfg.CoordinatorURL != "" {
		coords = append(coords, cfg.CoordinatorURL)
	}
	coords = append(coords, cfg.CoordinatorURLs...)
	if len(coords) == 0 || cfg.Node == "" || cfg.Advertise == "" || cfg.Server == nil {
		return nil, fmt.Errorf("cluster: member needs coordinator URL(s), node name, advertise address and a server")
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = &http.Client{Timeout: 5 * time.Second}
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	m := &Member{
		cfg:    cfg,
		srv:    cfg.Server,
		httpc:  httpc,
		clock:  clock,
		coords: coords,
		acked:  map[string]int{},
	}
	// When local admission runs out of lease, ask the coordinator for an
	// on-demand extension before rejecting the tenant.
	m.srv.SetAdmitAssist(m.assist)
	// Observability identity: spans this daemon records carry the fleet
	// node name, and /healthz reports the member role with the highest
	// fence it has seen.
	tel := m.srv.Telemetry()
	tel.Spans.SetNode(cfg.Node)
	tel.SetHealth(func() telemetry.HealthInfo {
		return telemetry.HealthInfo{Role: "member", Fence: m.Fence()}
	})
	return m, nil
}

// Server returns the governor daemon this member feeds.
func (m *Member) Server() *server.Server { return m.srv }

// Mount registers the member's cluster routes (the adoption endpoint)
// alongside the daemon's own wire routes.
func (m *Member) Mount(mux *http.ServeMux) {
	m.srv.Mount(mux)
	mux.HandleFunc("POST "+wire.ClusterBasePath+"/adopt", m.handleAdopt)
}

// Handler returns the node's full surface: wire protocol, adoption
// endpoint, and the shared telemetry exposition.
func (m *Member) Handler() http.Handler {
	mux := http.NewServeMux()
	m.srv.Telemetry().Mount(mux)
	m.Mount(mux)
	return mux
}

// Join enrolls with the coordinator and applies the resulting lease. A
// rejoin after a partition reconciles: the reported cumulative spend
// lets the coordinator refund the escrow it booked pessimistically.
func (m *Member) Join() error {
	held := []string{}
	for _, ex := range m.srv.Export(nil) {
		if ex.Live && ex.Key != "" {
			held = append(held, ex.Key)
		}
	}
	var resp wire.JoinResponse
	err := m.post("/join", wire.JoinRequest{
		Node:      m.cfg.Node,
		Addr:      m.cfg.Advertise,
		ConsumedJ: m.srv.TotalSpentJ(),
		HeldKeys:  held,
		Fence:     m.Fence(),
	}, &resp)
	if err != nil {
		return err
	}
	if !m.acceptFence(resp.Fence) {
		return &wireError{wire.CodeStaleEpoch, "join answered by a deposed coordinator; grant dropped"}
	}
	// Sessions that failed over while we were away: their budget was
	// escrowed and their state restored elsewhere, so the local copies
	// must go before we resume serving.
	if len(resp.Drop) > 0 {
		drop := map[string]bool{}
		for _, key := range resp.Drop {
			drop[key] = true
		}
		for _, ex := range m.srv.Export(nil) {
			if drop[ex.Key] {
				_, _ = m.srv.Close(ex.ID)
			}
		}
	}

	m.mu.Lock()
	m.joined = true
	m.epoch = resp.Epoch
	m.beatEvery = time.Duration(resp.HeartbeatMS) * time.Millisecond
	if m.cfg.Heartbeat > 0 {
		m.beatEvery = m.cfg.Heartbeat
	}
	m.mu.Unlock()
	m.applyLease(resp.LeaseJ, resp.TTLMS, true)
	return nil
}

// Beat renews the lease: report cumulative spend and per-session
// iteration logs, receive the topped-up lease and acked log cursors.
// An unknown_node answer means our lease expired while we were silent —
// rejoin, which reconciles the books.
func (m *Member) Beat() error {
	m.mu.Lock()
	joined, epoch := m.joined, m.epoch
	acked := make(map[string]int, len(m.acked))
	for id, n := range m.acked {
		acked[id] = n
	}
	m.mu.Unlock()
	if !joined {
		return m.Join()
	}

	exports := m.srv.Export(acked)
	summary := m.srv.MetricSummary()
	// Sampled trace contexts ride the beat so the coordinator can close
	// each trace with its lease span; a beat that fails requeues them for
	// the next one (a coordinator failover would otherwise swallow every
	// ref drained into beats against the dead primary).
	traces := m.srv.DrainTraceRefs()
	req := wire.HeartbeatRequest{
		Node:      m.cfg.Node,
		Epoch:     epoch,
		ConsumedJ: m.srv.TotalSpentJ(),
		Fence:     m.Fence(),
		Traces:    traces,
		Metrics:   &summary,
		// Only this node's own ladder verdicts ship — never the merged
		// effective state, or the coordinator's merge would echo back as
		// our "local" opinion and ratchet the fleet to max forever.
		Tenants: m.srv.QoS().LocalPolicies(),
	}
	seen := map[string]bool{}
	for _, ex := range exports {
		seen[ex.ID] = true
		if !ex.Live {
			req.Closed = append(req.Closed, ex.ID)
			continue
		}
		if ex.Key == "" {
			continue // keyless sessions are node-local; nothing to restore
		}
		req.Sessions = append(req.Sessions, wire.SessionReport{
			ID:        ex.ID,
			Key:       ex.Key,
			Reg:       ex.Reg,
			GrantJ:    ex.GrantJ,
			ImportedJ: ex.ImportedJ,
			SpentJ:    ex.SpentJ,
			Done:      ex.Done,
			Complete:  ex.Complete,
			From:      ex.Done - len(ex.NewIters),
			NewIters:  ex.NewIters,
		})
	}

	var resp wire.HeartbeatResponse
	if err := m.post("/heartbeat", req, &resp); err != nil {
		m.srv.RequeueTraceRefs(traces)
		if werr, ok := err.(*wireError); ok && werr.code == wire.CodeUnknownNode {
			m.mu.Lock()
			m.joined = false
			m.mu.Unlock()
			return m.Join()
		}
		return err
	}
	if !m.acceptFence(resp.Fence) {
		m.srv.RequeueTraceRefs(traces)
		return &wireError{wire.CodeStaleEpoch, "heartbeat answered by a deposed coordinator; grant dropped"}
	}

	m.mu.Lock()
	for id, n := range resp.Acked {
		m.acked[id] = n
	}
	for id := range m.acked {
		if !seen[id] {
			delete(m.acked, id) // session record gone server-side
		}
	}
	m.mu.Unlock()
	m.applyLease(resp.LeaseJ, resp.TTLMS, false)
	// Fleet-wide tenant policy: the coordinator's max-merge across live
	// nodes becomes this node's remote overlay (an empty list clears it),
	// so a tenant escalated anywhere is enforced everywhere and cannot
	// escape its ladder by re-placing sessions.
	m.srv.QoS().ApplyRemote(resp.Policies)
	return nil
}

// applyLease feeds the renewed lease into the local broker and pushes
// the fence deadline out.
//
// A heartbeat renewal (reconcile=false) applies the lease monotonically:
// the cumulative lease never shrinks within an epoch, but a heartbeat
// reply that raced an on-demand extension can arrive carrying the older,
// smaller value — applying it would claw back budget admissions already
// rely on.
//
// A (re)join (reconcile=true) must instead reconcile *downward*: the
// coordinator has just reset our lease to the reported cumulative spend
// (plus a fresh top-up) and refunded the unspent escrow to the pool.
// Keeping the old, larger pool here would let the refunded joules be
// spent twice — locally, and again by whichever node the pool re-leases
// them to. The lease is the budget; it is floored only at what is
// already committed+consumed locally (grants cannot be clawed back),
// and the coordinator is asked to fund that shortfall.
func (m *Member) applyLease(leaseJ float64, ttlMS int64, reconcile bool) {
	b := m.srv.Broker()
	if reconcile {
		if floor := b.Global() - b.Available(); leaseJ < floor {
			if extended, ok := m.requestExtend(floor - leaseJ); ok && extended > leaseJ {
				leaseJ = extended
			}
			if leaseJ < floor {
				leaseJ = floor
			}
		}
	} else if cur := b.Global(); leaseJ < cur {
		leaseJ = cur
	}
	if err := b.SetGlobal(leaseJ); err != nil {
		// A concurrent admission grew committed past our floor snapshot;
		// ask for the shortfall before giving up.
		if need := (b.Global() - b.Available()) - leaseJ; need > 0 {
			if extended, ok := m.requestExtend(need); ok {
				_ = b.SetGlobal(extended)
			}
		}
	}
	m.mu.Lock()
	m.leaseJ = b.Global()
	m.deadline = m.clock().Add(time.Duration(ttlMS) * time.Millisecond)
	m.mu.Unlock()
	m.srv.SetFenced(false)
}

// CheckFence trips the local fence once the lease deadline passes: the
// daemon stops admitting and advancing work until a heartbeat gets
// through again. This is the node's half of the no-double-spend
// bargain — the coordinator escrows the unspent lease only after the
// same TTL, by which point we have provably stopped drawing on it.
func (m *Member) CheckFence() bool {
	m.mu.Lock()
	fence := m.joined && m.clock().After(m.deadline)
	m.mu.Unlock()
	if fence {
		m.srv.SetFenced(true)
	}
	return fence
}

// assist is the broker's admission escape hatch: a tenant that does not
// fit the current lease triggers an on-demand extension request. The
// pool also grows when the coordinator granted nothing new but reports
// a cumulative lease we have not applied yet (e.g. failover pre-funding
// pushed ahead of our next heartbeat).
func (m *Member) assist(needJ float64) bool {
	extended, ok := m.requestExtend(needJ)
	if !ok || extended <= m.srv.Broker().Global() {
		return false
	}
	if err := m.srv.Broker().SetGlobal(extended); err != nil {
		return false
	}
	m.mu.Lock()
	m.leaseJ = extended
	m.mu.Unlock()
	return true
}

func (m *Member) requestExtend(needJ float64) (float64, bool) {
	m.mu.Lock()
	joined, epoch := m.joined, m.epoch
	m.mu.Unlock()
	if !joined {
		return 0, false
	}
	var resp wire.ExtendResponse
	if err := m.post("/lease", wire.ExtendRequest{Node: m.cfg.Node, Epoch: epoch, NeedJ: needJ, Fence: m.Fence()}, &resp); err != nil {
		return 0, false
	}
	if !m.acceptFence(resp.Fence) {
		return 0, false // extension granted by a deposed coordinator
	}
	return resp.LeaseJ, true
}

// Fence reports the highest coordinator fencing epoch this member has
// seen.
func (m *Member) Fence() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fence
}

// acceptFence records a response's fencing epoch and reports whether
// the grant it came with may be applied: a fence below the highest one
// we have seen identifies a deposed primary whose grants are no longer
// backed by the fleet ledger (the promoted coordinator escrowed them) —
// applying one would let the same joules be spent under both reigns.
func (m *Member) acceptFence(fence int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if fence < m.fence {
		return false
	}
	m.fence = fence
	return true
}

// handleAdopt restores sessions the coordinator reassigned to this node
// after their previous owner died: replay the acked log, import the
// prior spend, resume under the local broker.
func (m *Member) handleAdopt(w http.ResponseWriter, r *http.Request) {
	var req wire.AdoptRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// A deposed primary must not seed sessions: its placement decisions
	// are no longer backed by the ledger the promoted coordinator owns.
	if !m.acceptFence(req.Fence) {
		writeError(w, &wireError{wire.CodeStaleEpoch,
			fmt.Sprintf("adopt push carries fence %d, node has seen %d", req.Fence, m.Fence())})
		return
	}
	ids := make(map[string]string, len(req.Sessions))
	for _, a := range req.Sessions {
		id, err := m.srv.Adopt(a)
		if err != nil {
			writeError(w, err)
			return
		}
		ids[a.Key] = id
		m.mu.Lock()
		m.acked[id] = len(a.Log)
		m.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, wire.AdoptResponse{IDs: ids})
}

// Run joins and then heartbeats until Stop; heartbeat failures are
// tolerated (the fence keeps the books safe) and retried with jittered
// capped-exponential backoff. The jitter is seeded from the node name:
// deterministic per node, but different across the fleet, so a
// restarting coordinator sees the herd of rejoins spread over the
// backoff window instead of arriving in one synchronized thundering
// wave.
func (m *Member) Run() error {
	if err := m.Join(); err != nil {
		return err
	}
	m.mu.Lock()
	every := m.beatEvery
	if every <= 0 {
		every = 500 * time.Millisecond
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	stop, done := m.stop, m.done
	m.mu.Unlock()
	seed := fnv.New64a()
	seed.Write([]byte(m.cfg.Node))
	rng := rand.New(rand.NewSource(int64(seed.Sum64())))
	go func() {
		defer close(done)
		fails := 0
		for {
			delay := every
			if fails > 0 {
				// Exponential in the failure count, capped at 8 beats, with
				// a uniform [0.5, 1.5) jitter factor.
				backoff := every << uint(min(fails-1, 3))
				if max := 8 * every; backoff > max {
					backoff = max
				}
				delay = backoff/2 + time.Duration(rng.Int63n(int64(backoff)))
			}
			t := time.NewTimer(delay)
			select {
			case <-t.C:
				if err := m.Beat(); err != nil {
					fails++
				} else {
					fails = 0
				}
				m.CheckFence()
			case <-stop:
				t.Stop()
				return
			}
		}
	}()
	return nil
}

// Stop halts the heartbeat loop (the lease is left to expire).
func (m *Member) Stop() {
	m.mu.Lock()
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// LeaseJ reports the current cumulative lease (introspection/tests).
func (m *Member) LeaseJ() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.leaseJ
}

// post sends one coordinator call, rotating through the ordered
// coordinator list: an unreachable coordinator, a standby answering
// not_primary, or a deposed primary answering stale_epoch all advance
// to the next entry; any other protocol answer comes from the serving
// primary and is returned to the caller. The coordinator that finally
// answers becomes the member's active one.
func (m *Member) post(path string, in, out any) error {
	m.mu.Lock()
	start, coords := m.cur, m.coords
	m.mu.Unlock()
	var lastErr error
	for i := 0; i < len(coords); i++ {
		idx := (start + i) % len(coords)
		err := m.postTo(coords[idx], path, in, out)
		var werr *wireError
		retryNext := err != nil && (!errorAs(err, &werr) ||
			werr.code == wire.CodeNotPrimary || werr.code == wire.CodeStaleEpoch)
		if !retryNext {
			m.mu.Lock()
			m.cur = idx
			m.mu.Unlock()
			return err
		}
		lastErr = err
	}
	return lastErr
}

// errorAs is errors.As narrowed to *wireError (post's only sniff).
func errorAs(err error, target **wireError) bool {
	if werr, ok := err.(*wireError); ok {
		*target = werr
		return true
	}
	return false
}

// postTo sends one coordinator call and decodes the reply, converting
// protocol error bodies into *wireError so callers can branch on codes.
func (m *Member) postTo(coord, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, coord+wire.ClusterBasePath+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := m.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var werr wire.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&werr)
		if werr.Code == "" {
			return fmt.Errorf("cluster: coordinator %s: HTTP %d", path, resp.StatusCode)
		}
		return &wireError{werr.Code, werr.Error}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
