package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"jouleguard/internal/wire"
)

// wireError pairs a stable protocol code with a message (the cluster
// protocol reuses the session protocol's error envelope).
type wireError struct {
	code string
	msg  string
}

func (e *wireError) Error() string { return e.msg }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code, msg := wire.CodeBadRequest, err.Error()
	var werr *wireError
	if errors.As(err, &werr) {
		code = werr.code
	}
	status := http.StatusBadRequest
	switch code {
	case wire.CodeUnknownNode:
		status = http.StatusConflict
	case wire.CodeNoNodes, wire.CodeLeaseExpired:
		status = http.StatusServiceUnavailable
	case wire.CodeStaleEpoch:
		// Conflict, not retryable-here: the caller must move to the
		// coordinator holding the higher fence, never retry this one.
		status = http.StatusConflict
	case wire.CodeNotPrimary:
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, wire.ErrorResponse{Code: code, Error: msg})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, &wireError{wire.CodeBadRequest, "invalid JSON body: " + err.Error()})
		return false
	}
	return true
}

// Mount registers the coordinator's routes on mux: the cluster control
// plane plus a redirecting POST /v1/sessions so clients can point at
// the coordinator and be steered to the owning node.
func (c *Coordinator) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST "+wire.ClusterBasePath+"/join", c.handleJoin)
	mux.HandleFunc("POST "+wire.ClusterBasePath+"/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST "+wire.ClusterBasePath+"/lease", c.handleExtend)
	mux.HandleFunc("GET "+wire.ClusterBasePath, c.handleInfo)
	mux.HandleFunc("GET "+wire.ClusterBasePath+"/sessions/{key}", c.handlePlacement)
	mux.HandleFunc("GET "+wire.ClusterBasePath+"/wal", c.handleWAL)
	mux.HandleFunc("GET "+wire.ClusterBasePath+"/metrics", c.handleClusterMetrics)
	mux.HandleFunc("GET "+wire.ClusterBasePath+"/provenance", c.handleClusterProvenance)
	mux.HandleFunc("POST "+wire.BasePath, c.handleRegister)
}

// Handler returns the coordinator's full surface: the cluster control
// plane plus the shared telemetry exposition.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	c.tel.Mount(mux)
	c.Mount(mux)
	return mux
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req wire.JoinRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := c.Join(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req wire.HeartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := c.Heartbeat(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleExtend(w http.ResponseWriter, r *http.Request) {
	var req wire.ExtendRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := c.Extend(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Info(r.URL.Query().Get("detail") != ""))
}

// handleWAL serves the ledger log tail to a replicating standby:
// GET /v1/cluster/wal?from=N returns the records with Seq >= N (or a
// full compacted resync when N has been folded away).
func (c *Coordinator) handleWAL(w http.ResponseWriter, r *http.Request) {
	var from uint64
	if s := r.URL.Query().Get("from"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			writeError(w, &wireError{wire.CodeBadRequest, "invalid from cursor: " + err.Error()})
			return
		}
		from = v
	}
	writeJSON(w, http.StatusOK, c.wal.Tail(from))
}

// handleClusterMetrics serves the fleet-level rollup — member counters
// aggregated from heartbeat summaries — as Prometheus text exposition.
func (c *Coordinator) handleClusterMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = c.roll.reg.WritePrometheus(w)
}

// handleClusterProvenance serves the coordinator's half of the joule
// custody chain.
func (c *Coordinator) handleClusterProvenance(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.Provenance())
}

func (c *Coordinator) handlePlacement(w http.ResponseWriter, r *http.Request) {
	resp, err := c.Place(r.PathValue("key"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRegister steers a session registration to its owning node: a
// 307 redirect carrying a not_owner error body with the owner's
// address, so both redirect-following HTTP clients and protocol-aware
// ones (internal/client reads Addr) find their way.
func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req wire.RegisterRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Key == "" {
		writeError(w, &wireError{wire.CodeBadRequest,
			"registering through the coordinator requires a session key for placement"})
		return
	}
	place, err := c.Place(req.Key)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", place.Addr+wire.BasePath)
	writeJSON(w, http.StatusTemporaryRedirect, wire.ErrorResponse{
		Code:  wire.CodeNotOwner,
		Error: "session " + req.Key + " is owned by node " + place.Node,
		Addr:  place.Addr,
	})
}

// pushAdopt delivers stranded sessions to their new owner node.
func (c *Coordinator) pushAdopt(addr string, req wire.AdoptRequest) (wire.AdoptResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return wire.AdoptResponse{}, err
	}
	httpReq, err := http.NewRequest(http.MethodPost, addr+wire.ClusterBasePath+"/adopt", bytes.NewReader(body))
	if err != nil {
		return wire.AdoptResponse{}, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(httpReq)
	if err != nil {
		return wire.AdoptResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var werr wire.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&werr)
		return wire.AdoptResponse{}, &wireError{werr.Code, "adopt push: " + werr.Error}
	}
	var out wire.AdoptResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return wire.AdoptResponse{}, err
	}
	return out, nil
}
